# Convenience targets; `make check` is the tier-1 gate CI runs.

DDPROF = dune exec --no-print-directory bin/ddprof.exe --
MODES  = serial perfect parallel mt shadow hashtable

.PHONY: all build check test smoke bench clean

all: build

build:
	dune build

test:
	dune runtest

check:
	dune build && dune runtest

# One workload through every registered CLI engine: proves the whole
# Engine/Source/Sink stack end to end, not just the unit suites.
smoke: build
	$(DDPROF) list-modes
	@for mode in $(MODES); do \
	  echo "== kmeans --mode $$mode =="; \
	  $(DDPROF) run kmeans --mode $$mode || exit 1; \
	done

bench:
	dune exec bench/main.exe

clean:
	dune clean
