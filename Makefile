# Convenience targets; `make check` is the tier-1 gate CI runs.

DDPROF   = dune exec --no-print-directory bin/ddprof.exe --
DDPCHECK = dune exec --no-print-directory bin/ddpcheck.exe --
MODES    = serial perfect parallel mt shadow hashtable hybrid dag hybrid-dag

# Fixed seed so smoke runs are reproducible; override: make fuzz-smoke DDP_SEED=...
DDP_SEED ?= 421

# A hung test or fuzz run must fail the gate, not stall it: every
# long-running target runs under a wall-clock cap (timeout(1) exits 124).
# Override or disable: make test TIMEOUT=
TIMEOUT ?= timeout 1200

.PHONY: all build check test smoke obs-smoke static-smoke foreign-smoke dag-smoke race-smoke daemon-smoke daemon-chaos fuzz-smoke fuzz-nightly bench _bench-collect bench-json bench-quick bench-baseline bench-ratchet bench-ratchet-selftest clean

all: build

build:
	dune build

test:
	$(TIMEOUT) dune runtest

check:
	dune build && $(TIMEOUT) dune runtest

# One workload through every registered CLI engine: proves the whole
# Engine/Source/Sink stack end to end, not just the unit suites.
smoke: build
	$(DDPROF) list-modes
	@for mode in $(MODES); do \
	  echo "== kmeans --mode $$mode =="; \
	  $(DDPROF) run kmeans --mode $$mode || exit 1; \
	done

# Telemetry end to end: profile a real workload with the tracer,
# allocation attribution, GC runtime-events fusion and the live
# progress meter all on; check the Chrome-trace JSON parses and carries
# >= 1 span per worker track, the progress NDJSON is well-formed and
# monotone, and the exported metrics pass the schema gate.  Artifacts
# land in _obs/ (load the trace in Perfetto / chrome://tracing).
obs-smoke: build
	@mkdir -p _obs
	$(DDPROF) run kmeans --mode parallel --workers 4 \
	  --trace-out _obs/trace.json --metrics-out _obs/metrics.json \
	  --memprof-rate 0.001 --runtime-events \
	  --progress-out _obs/progress.ndjson --progress-interval 0.1
	$(DDPROF) check-trace _obs/trace.json --workers 4
	$(DDPROF) check-progress _obs/progress.ndjson --min-samples 2
	$(DDPROF) stats --from _obs/metrics.json
	$(DDPROF) stats kmeans --workers 4

# The static analyzer end to end: lint every registered workload
# (Serial verdict against a parallel annotation fails the gate), check
# static-vs-dynamic verdict agreement on three representative workloads,
# and push a small fuzz budget through the may ⊇ dynamic soundness gate
# (plus its mutant-static fire drill).  The lint report lands in
# _static/lint.json for the CI artifact.
static-smoke: build
	@mkdir -p _static
	$(DDPROF) static --lint-workloads --json-out _static/lint.json
	@for w in rgbyuv cg kmeans; do \
	  echo "== static $$w --compare perfect =="; \
	  $(DDPROF) static $$w --compare perfect || exit 1; \
	done
	$(TIMEOUT) $(DDPCHECK) soundness --seed $(DDP_SEED) --count 25 --out _static

# The foreign-trace import path end to end: export a workload's native
# stream as a lackey-style trace, profile the import through the serial,
# parallel and hybrid engines, and diff each dependence set against the
# native run (foreign-diff exits 1 on any mismatch).  The trace lands in
# _foreign/ for the CI artifact.
foreign-smoke: build
	@mkdir -p _foreign
	$(DDPROF) foreign-export kmeans -o _foreign/kmeans.lackey
	$(DDPROF) run --foreign _foreign/kmeans.lackey --mode serial
	@for mode in serial parallel hybrid; do \
	  echo "== foreign-diff kmeans --mode $$mode =="; \
	  $(DDPROF) foreign-diff kmeans --trace _foreign/kmeans.lackey --mode $$mode || exit 1; \
	done

# The SP-DAG race engine end to end: every task-family workload under
# --mode dag must match its @race/@norace ground truth exactly (zero
# flags on the clean variants, >= 1 on the racy ones), then a 25-program
# exhaustive-interleaving sweep diffs the engine against the vector-clock
# oracle on every schedule.  Counterexamples land in _dag/ for the CI
# artifact.
dag-smoke: build
	@for w in fib-task msort-task scan-task; do \
	  echo "== $$w --mode dag (@norace) =="; \
	  out=$$($(DDPROF) run $$w --mode dag) || exit 1; \
	  echo "$$out" | grep -q ", 0 race-flagged" \
	    || { echo "FAIL: $$w is @norace but the dag engine flagged a race"; echo "$$out"; exit 1; }; \
	done
	@for w in fib-task-racy msort-task-racy scan-task-racy; do \
	  echo "== $$w --mode dag (@race) =="; \
	  out=$$($(DDPROF) run $$w --mode dag) || exit 1; \
	  if echo "$$out" | grep -q ", 0 race-flagged"; then \
	    echo "FAIL: $$w is @race but the dag engine saw nothing"; echo "$$out"; exit 1; \
	  fi; \
	done
	@mkdir -p _dag
	$(TIMEOUT) $(DDPCHECK) dag --seed $(DDP_SEED) --count 25 --out _dag

# The static race lint end to end: `static --races` on every task-family
# workload (the confusion check vs --mode dag exits 1 when the lint
# missed a dynamically-observed race edge, and on any @race/@norace
# ground-truth contradiction), the whole-registry lint with its
# per-workload race verdicts, and a 25-program exhaustive-interleaving
# sweep through the race-soundness gate (plus its lockset-mutant fire
# drill).  The lint report lands in _race/lint.json for the CI artifact.
race-smoke: build
	@mkdir -p _race
	@for w in fib-task fib-task-racy msort-task msort-task-racy scan-task scan-task-racy; do \
	  echo "== static $$w --races =="; \
	  $(DDPROF) static $$w --races || exit 1; \
	done
	$(DDPROF) static --lint-workloads --json-out _race/lint.json
	$(TIMEOUT) $(DDPCHECK) races --seed $(DDP_SEED) --count 25 --out _race

# The daemon end to end, with the real ddpd binary: boot it on a fresh
# socket, submit the kmeans workload (~5M events) and diff the daemon's
# dependence keys against an in-process batch run (submit exits 1 on
# any mismatch), scrape STATUS, then SIGTERM — the drain must flush
# metrics and exit 0.  Log + final metrics land in _daemon/.
daemon-smoke: build
	@mkdir -p _daemon; rm -f _daemon/ddpd.sock; \
	_build/default/bin/ddpd.exe --socket _daemon/ddpd.sock --idle-timeout 60 \
	  --metrics-out _daemon/metrics.json >_daemon/ddpd.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	sleep 1; \
	$(TIMEOUT) $(DDPROF) submit kmeans --daemon _daemon/ddpd.sock --mode serial --diff-batch || exit 1; \
	$(DDPROF) daemon-status --daemon _daemon/ddpd.sock || exit 1; \
	echo "== SIGTERM drain =="; \
	kill -TERM $$pid; \
	wait $$pid; code=$$?; \
	trap - EXIT; \
	test $$code -eq 0 || { echo "FAIL: drain exited $$code"; cat _daemon/ddpd.log; exit 1; }; \
	test -f _daemon/metrics.json || { echo "FAIL: no metrics flushed on shutdown"; exit 1; }; \
	echo "daemon-smoke OK: keys == batch run, STATUS served, drained with exit 0"

# Supervision under fire: concurrent clients against an in-process
# server with injected crashes, corrupt frames, truncations, stalls and
# disconnects.  Victims must end Partial with loss == their obs
# counters; survivors must match a serial batch run exactly.  Failure
# reports land in _daemon/.
daemon-chaos: build
	@mkdir -p _daemon
	$(TIMEOUT) $(DDPCHECK) daemon --seed $(DDP_SEED) --count 10 --clients 5 --out _daemon

# Differential fuzzing + schedule exploration, small fixed-seed budget
# (~30s): every engine diffed against the perfect oracle, the virtual
# scheduler swept for queue-full / drain-barrier interleavings, and the
# mutation fire drill.  Reproduce any failure with the printed seed pair:
#   dune exec bin/ddpcheck.exe -- diff --seed <prog_seed>
fuzz-smoke: build
	$(TIMEOUT) $(DDPCHECK) all --seed $(DDP_SEED) --count 40 --par --out _fuzz

# The long-haul nightly budget.  Shrunk counterexamples land in _fuzz/.
fuzz-nightly: build
	$(TIMEOUT) $(DDPCHECK) all --seed $(DDP_SEED) --count 400 --par --out _fuzz

bench:
	dune exec bench/main.exe

# Full machine-readable snapshot (every experiment; slow).
bench-json: build
	dune exec bench/main.exe -- json

# Micro-metric subset the perf gate runs on (~12s per snapshot).
bench-quick: build
	dune exec bench/main.exe -- json-quick

# Collect RATCHET_RUNS quick snapshots back to back into _bench/q*.json.
# The ratchet gates on the per-key minimum: one process can be 10%+ slow
# from scheduler/cache luck alone, but the min of a few is stable.
RATCHET_RUNS ?= 3
RATCHET_FLAGS ?=
_bench-collect: build
	@mkdir -p _bench
	@for i in $$(seq 1 $(RATCHET_RUNS)); do \
	  echo "== bench snapshot $$i/$(RATCHET_RUNS) =="; \
	  dune exec bench/main.exe -- json-quick >/dev/null || exit 1; \
	  cp _bench/BENCH_quick.json _bench/q$$i.json; \
	done

# Regenerate the checked-in baseline from fresh snapshots (run on a
# quiet machine, then commit bench/baseline.json).
bench-baseline: _bench-collect
	dune exec bench/ratchet.exe -- \
	  $$(for i in $$(seq 1 $(RATCHET_RUNS)); do echo --fresh _bench/q$$i.json; done) \
	  --write-baseline bench/baseline.json

# The CI perf gate: fresh min-of-$(RATCHET_RUNS) vs bench/baseline.json.
# Fails (exit 1) when any gated metric regresses past its tolerance;
# appends the outcome to BENCH_history.jsonl and writes the comparison
# to _bench/ratchet-diff.json for the CI artifact.  CI runners pass
# RATCHET_FLAGS="--tolerance-scale 3" for noisy-neighbour headroom.
bench-ratchet: _bench-collect
	dune exec bench/ratchet.exe -- \
	  $$(for i in $$(seq 1 $(RATCHET_RUNS)); do echo --fresh _bench/q$$i.json; done) \
	  --baseline bench/baseline.json --history BENCH_history.jsonl \
	  --diff-out _bench/ratchet-diff.json $(RATCHET_FLAGS)

# Prove the gate has teeth: a clean run must pass, then the same gate
# with a seeded 10% worker slowdown (DDP_PERTURB_WORKER busy-spins 10%
# of each chunk's processing time) must fail.
bench-ratchet-selftest:
	$(MAKE) bench-ratchet
	@echo "== seeded 10% slowdown must fail the gate =="
	! DDP_PERTURB_WORKER=0.10 $(MAKE) bench-ratchet
	@echo "ratchet selftest OK: clean pass, perturbed fail"

clean:
	dune clean
