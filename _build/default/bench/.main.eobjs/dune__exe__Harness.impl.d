bench/harness.ml: Array Ddp_core Ddp_minir Ddp_util Ddp_workloads Domain Option Printf String Unix
