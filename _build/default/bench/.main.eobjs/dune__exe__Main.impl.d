bench/main.ml: Analyze Array Bechamel Benchmark Ddp_analyses Ddp_baselines Ddp_core Ddp_minir Ddp_util Ddp_workloads Harness Hashtbl List Measure Printf Staged String Sys Test Time Toolkit
