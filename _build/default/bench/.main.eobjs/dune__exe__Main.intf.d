bench/main.mli:
