(* Shared machinery for the experiment harnesses: timing, calibration,
   the multicore pipeline (makespan) model, and table printing.

   Timing methodology (see DESIGN.md): the evaluation machine has one
   core, so parallel-profiler wall clock cannot show multicore speedup.
   Every timing experiment therefore reports
   - measured wall-clock on this machine, and
   - a modeled multicore time: the steady-state makespan of the
     producer/consumer pipeline,
       max(producer time, slowest worker's work) + merge,
     with per-event costs calibrated from serial runs and queue
     micro-benchmarks.  The model is the quantity a multicore run
     measures when queues neither starve nor overflow. *)

module Clock = Ddp_util.Clock
module Config = Ddp_core.Config

let fprintf = Printf.printf

(* -- workload runs -------------------------------------------------------- *)

type native_run = {
  native_time : float;
  events : int;
  addresses : int;
  lines : int;
}

let run_native ?(sched_seed = 42) prog_fn =
  let prog = prog_fn () in
  let t0 = Clock.now () in
  let stats = Ddp_minir.Interp.run ~sched_seed prog in
  let native_time = Clock.now () -. t0 in
  { native_time; events = stats.accesses; addresses = stats.addresses; lines = stats.lines }

let run_serial ?(sched_seed = 42) ~config prog_fn =
  let prog = prog_fn () in
  let profiler = Ddp_core.Serial_profiler.create_signature config in
  let t0 = Clock.now () in
  let stats = Ddp_minir.Interp.run ~sched_seed ~hooks:profiler.Ddp_core.Serial_profiler.hooks prog in
  let time = Clock.now () -. t0 in
  (time, stats, profiler)

let run_parallel ?(sched_seed = 42) ?(mt = false) ~config prog_fn =
  let prog = prog_fn () in
  let t = Ddp_core.Parallel_profiler.create config in
  Ddp_core.Parallel_profiler.start t;
  let hooks = Ddp_core.Parallel_profiler.hooks t in
  let hooks, front =
    if mt then begin
      let f = Ddp_core.Mt_frontend.create ~window:config.Config.reorder_window hooks in
      (Ddp_core.Mt_frontend.hooks f, Some f)
    end
    else (hooks, None)
  in
  let t0 = Clock.now () in
  let stats = Ddp_minir.Interp.run ~sched_seed ~hooks prog in
  Option.iter Ddp_core.Mt_frontend.finish front;
  let result = Ddp_core.Parallel_profiler.finish t in
  let time = Clock.now () -. t0 in
  let frontend_bytes =
    match front with Some f -> Ddp_core.Mt_frontend.peak_bytes f | None -> 0
  in
  (time, stats, result, frontend_bytes)

(* -- calibration ---------------------------------------------------------- *)

type calibration = {
  t_process : float;  (* consumer-side Algorithm 1 cost per event, seconds *)
  t_route_lock_free : float;  (* producer-side chunk+queue cost per event *)
  t_route_lock_based : float;
  t_frontend : float;  (* MT reorder-window push layer cost per event *)
  t_queue_chunk_lf : float;  (* contended transfer cost per chunk, lock-free *)
  t_queue_chunk_lb : float;
}

(* Queue transfer cost per event under real producer/consumer contention:
   a producer domain streams chunks to a consumer domain through the
   queue; wall time over transported events.  This is where the
   lock-based and lock-free designs actually differ — the uncontended
   per-op costs are close, but the mutex serializes producer and
   consumers on the pipeline's critical path. *)
let queue_cost ~lock_free ~chunk_size =
  let rounds = 4000 in
  let chunk = Ddp_core.Chunk.create ~capacity:chunk_size in
  let push, pop =
    if lock_free then begin
      let q = Ddp_core.Spsc_queue.create ~capacity:64 ~dummy:chunk in
      ((fun c -> Ddp_core.Spsc_queue.try_push q c), fun () -> Ddp_core.Spsc_queue.try_pop q)
    end
    else begin
      let q = Ddp_core.Locked_queue.create ~capacity:64 ~dummy:chunk in
      ((fun c -> Ddp_core.Locked_queue.try_push q c), fun () -> Ddp_core.Locked_queue.try_pop q)
    end
  in
  let backoff spins = if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_05 in
  let t0 = Clock.now () in
  let consumer =
    Domain.spawn (fun () ->
        let received = ref 0 and spins = ref 0 in
        while !received < rounds do
          match pop () with
          | Some _ ->
            spins := 0;
            incr received
          | None ->
            incr spins;
            backoff !spins
        done)
  in
  let spins = ref 0 in
  for _ = 1 to rounds do
    spins := 0;
    while not (push chunk) do
      incr spins;
      backoff !spins
    done
  done;
  Domain.join consumer;
  (Clock.now () -. t0) /. float_of_int (rounds * chunk_size)

(* Producer-side per-event routing cost (dispatch + chunk fill), measured
   by filling chunks without any worker. *)
let route_cost ~chunk_size =
  let n = 300_000 in
  let dispatch = Ddp_core.Dispatch.create ~workers:8 ~sample:16 ~hot_set_size:10 in
  let chunk = Ddp_core.Chunk.create ~capacity:chunk_size in
  let t0 = Clock.now () in
  for i = 0 to n - 1 do
    Ddp_core.Dispatch.note_access dispatch i;
    let (_ : int) = Ddp_core.Dispatch.worker_of dispatch i in
    if Ddp_core.Chunk.is_full chunk then Ddp_core.Chunk.clear chunk;
    Ddp_core.Chunk.push chunk ~addr:i ~op:Ddp_core.Chunk.op_read ~payload:1 ~time:i
  done;
  (Clock.now () -. t0) /. float_of_int n

(* Per-event cost of the Sec.-V push layer (reorder buffering), measured
   by streaming a synthetic unlocked multi-thread event sequence through
   an Mt_frontend wrapped around null hooks. *)
let frontend_cost () =
  let n = 200_000 in
  let front = Ddp_core.Mt_frontend.create ~window:6 Ddp_minir.Event.null in
  let hooks = Ddp_core.Mt_frontend.hooks front in
  let loc = Ddp_minir.Loc.make ~file:1 ~line:1 in
  let t0 = Clock.now () in
  for i = 0 to n - 1 do
    hooks.Ddp_minir.Event.on_write ~addr:(i land 63) ~loc ~var:0 ~thread:(1 + (i land 3)) ~time:i
      ~locked:false
  done;
  Ddp_core.Mt_frontend.finish front;
  (Clock.now () -. t0) /. float_of_int n

(* Per-event consumer cost from a serial run of a calibration workload:
   (serial - native) / events covers Algorithm 1 + dependence merging. *)
let calibrate ~config () =
  let prog_fn () = (Ddp_workloads.Registry.find "mg").Ddp_workloads.Wl.seq ~scale:1 in
  let native = run_native prog_fn in
  let serial_time, stats, _ = run_serial ~config prog_fn in
  let t_process = (serial_time -. native.native_time) /. float_of_int stats.accesses in
  let fill = route_cost ~chunk_size:config.Config.chunk_size in
  let q_lf = queue_cost ~lock_free:true ~chunk_size:config.Config.chunk_size in
  let q_lb = queue_cost ~lock_free:false ~chunk_size:config.Config.chunk_size in
  {
    t_process = max t_process 1e-9;
    t_route_lock_free = fill +. q_lf;
    t_route_lock_based = fill +. q_lb;
    t_frontend = frontend_cost ();
    t_queue_chunk_lf = q_lf *. float_of_int config.Config.chunk_size;
    t_queue_chunk_lb = q_lb *. float_of_int config.Config.chunk_size;
  }

(* Modeled multicore wall time of a parallel profiling run.  [mt] adds
   the Sec.-V push-layer cost to the producer term. *)
let modeled_time ?(mt = false) cal ~lock_free ~native_time ~per_worker_events =
  let events = Array.fold_left ( + ) 0 per_worker_events in
  let t_route = if lock_free then cal.t_route_lock_free else cal.t_route_lock_based in
  let t_route = if mt then t_route +. cal.t_frontend else t_route in
  let producer = native_time +. (float_of_int events *. t_route) in
  let slowest =
    Array.fold_left (fun acc e -> max acc (float_of_int e *. cal.t_process)) 0.0 per_worker_events
  in
  max producer slowest

(* Modeled time for a hypothetical worker count, assuming the observed
   load distribution scales as its maximum share: used to trace the
   speedup curve between serial and the saturated producer-bound
   regime. *)
let modeled_time_at ?(mt = false) cal ~lock_free ~native_time ~events ~workers ~imbalance =
  let t_route = if lock_free then cal.t_route_lock_free else cal.t_route_lock_based in
  let t_route = if mt then t_route +. cal.t_frontend else t_route in
  let producer = native_time +. (float_of_int events *. t_route) in
  let slowest =
    float_of_int events /. float_of_int workers *. imbalance *. cal.t_process
  in
  max producer slowest

(* -- output helpers ------------------------------------------------------- *)

let rule () = fprintf "%s\n" (String.make 78 '-')

let header title =
  fprintf "\n";
  rule ();
  fprintf "%s\n" title;
  rule ()

let pp_slowdown x = Printf.sprintf "%.1fx" x

let mib bytes = float_of_int bytes /. 1048576.0
