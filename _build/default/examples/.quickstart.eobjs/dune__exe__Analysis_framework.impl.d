examples/analysis_framework.ml: Array Ddp_analyses Ddp_core Ddp_minir Ddp_workloads List Printf String Sys
