examples/analysis_framework.mli:
