examples/comm_matrix.ml: Array Ddp_analyses Ddp_core Ddp_util Ddp_workloads Printf Sys
