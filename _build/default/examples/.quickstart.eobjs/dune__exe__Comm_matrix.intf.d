examples/comm_matrix.mli:
