examples/find_parallel_loops.ml: Array Ddp_analyses Ddp_minir Ddp_workloads Format List Printf Sys
