examples/find_parallel_loops.mli:
