examples/quickstart.ml: Ddp_core Ddp_minir Printf
