examples/quickstart.mli:
