examples/race_hunt.ml: Ddp_analyses Ddp_core Ddp_minir List Printf
