examples/signature_sizing.ml: Array Ddp_core Ddp_minir Ddp_workloads List Printf Sys
