(* Parallelism discovery (the paper's Sec. VII-A application): feed the
   profiler's dependences to the DiscoPoP-style loop classifier and
   compare against the workload's ground-truth annotations.

     dune exec examples/find_parallel_loops.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cg" in
  let w = Ddp_workloads.Registry.find name in
  let prog = w.Ddp_workloads.Wl.seq ~scale:1 in
  Printf.printf "=== %s: loop-parallelism discovery ===\n" name;
  (* Perfect signature = the DiscoPoP oracle column of Table II. *)
  let oracle = Ddp_analyses.Loop_parallelism.analyze ~perfect:true prog in
  (* Real signature = the paper's profiler. *)
  let sig_based = Ddp_analyses.Loop_parallelism.analyze ~perfect:false prog in
  Format.printf "--- oracle (perfect signature) ---@.%a"
    (fun ppf () -> Ddp_analyses.Loop_parallelism.pp_summary ppf oracle) ();
  Format.printf "--- signature-based ---@.%a"
    (fun ppf () -> Ddp_analyses.Loop_parallelism.pp_summary ppf sig_based) ();
  let agree = oracle.identified = sig_based.identified && oracle.missed = sig_based.missed in
  Printf.printf "signature agrees with oracle: %b  (identified %d/%d annotated loops)\n" agree
    sig_based.identified sig_based.annotated_total;
  List.iter
    (fun (l : Ddp_analyses.Loop_parallelism.loop_result) ->
      if not l.parallelizable then begin
        Printf.printf "loop@%d blocked by carried RAW:\n" l.header_line;
        List.iter
          (fun (o : Ddp_analyses.Loop_parallelism.offender) ->
            Printf.printf "    %s -> %s\n"
              (Ddp_minir.Loc.to_string o.o_src)
              (Ddp_minir.Loc.to_string o.o_sink))
          l.carried_raw
      end)
    sig_based.loops
