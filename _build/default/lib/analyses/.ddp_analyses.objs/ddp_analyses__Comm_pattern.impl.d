lib/analyses/comm_pattern.ml: Ddp_core Ddp_util Format
