lib/analyses/comm_pattern.mli: Ddp_core Ddp_util
