lib/analyses/dep_distance.ml: Array Buffer Ddp_core Ddp_minir Hashtbl Int List Printf
