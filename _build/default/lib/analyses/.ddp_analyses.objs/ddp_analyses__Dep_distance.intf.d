lib/analyses/dep_distance.mli: Ddp_core Ddp_minir
