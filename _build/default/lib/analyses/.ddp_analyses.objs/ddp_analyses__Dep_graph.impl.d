lib/analyses/dep_graph.ml: Buffer Ddp_core Ddp_minir Fun Hashtbl Int List Printf String
