lib/analyses/dep_graph.mli: Ddp_core Ddp_minir
