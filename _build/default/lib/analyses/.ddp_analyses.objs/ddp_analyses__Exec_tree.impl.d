lib/analyses/exec_tree.ml: Buffer Ddp_minir List Printf String
