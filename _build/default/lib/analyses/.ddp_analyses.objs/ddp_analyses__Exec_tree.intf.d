lib/analyses/exec_tree.mli: Ddp_minir
