lib/analyses/loop_parallelism.ml: Ddp_core Ddp_minir Ddp_util Format Hashtbl Int List Set String
