lib/analyses/loop_parallelism.mli: Ddp_core Ddp_minir Format
