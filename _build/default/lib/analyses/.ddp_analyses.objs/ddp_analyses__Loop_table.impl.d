lib/analyses/loop_table.ml: Buffer Ddp_core Ddp_minir Int List Loop_parallelism Option Printf
