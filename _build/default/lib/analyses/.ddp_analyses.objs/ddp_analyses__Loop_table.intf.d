lib/analyses/loop_table.mli: Ddp_core Ddp_minir Loop_parallelism
