lib/analyses/race_report.ml: Buffer Ddp_core Ddp_minir List Printf
