lib/analyses/race_report.mli: Ddp_core Ddp_minir
