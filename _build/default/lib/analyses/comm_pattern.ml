(* Communication-pattern detection (paper Sec. VII-B, Fig. 9).

   Producer-consumer communication in shared memory is a read-after-write
   across threads: thread P writes, thread C reads the value.  Those are
   exactly the cross-thread RAW dependences the profiler already records
   with thread ids, so the communication matrix falls out of the merged
   dependence map directly — the occurrence count of each cross-thread
   RAW is the communication intensity. *)

module Matrix = Ddp_util.Matrix

let threads_in (deps : Ddp_core.Dep_store.t) =
  Ddp_core.Dep_store.fold deps
    (fun dep _ acc ->
      let acc = max acc (Ddp_core.Dep.sink_thread dep) in
      if dep.Ddp_core.Dep.src = 0 then acc else max acc (Ddp_core.Dep.src_thread dep))
    0

(* [threads]: matrix dimension; defaults to 1 + highest thread id seen. *)
let of_deps ?threads (deps : Ddp_core.Dep_store.t) =
  let n = match threads with Some n -> n | None -> threads_in deps + 1 in
  let m = Matrix.create ~rows:n ~cols:n in
  Ddp_core.Dep_store.iter deps (fun dep count ->
      if dep.Ddp_core.Dep.kind = Ddp_core.Dep.RAW && Ddp_core.Dep.is_cross_thread dep then
        Matrix.add m (Ddp_core.Dep.src_thread dep) (Ddp_core.Dep.sink_thread dep)
          (float_of_int count));
  m

(* Restrict to worker threads (drop the main thread's row/column), which
   is how the paper's Fig. 9 presents splash2x.water-spatial. *)
let workers_only m =
  let n = Matrix.rows m in
  if n <= 1 then m
  else begin
    let w = Matrix.create ~rows:(n - 1) ~cols:(n - 1) in
    for r = 1 to n - 1 do
      for c = 1 to n - 1 do
        Matrix.set w (r - 1) (c - 1) (Matrix.get m r c)
      done
    done;
    w
  end

let total_volume m =
  let acc = ref 0.0 in
  for r = 0 to Matrix.rows m - 1 do
    for c = 0 to Matrix.cols m - 1 do
      acc := !acc +. Matrix.get m r c
    done
  done;
  !acc

let render ?(row_label = "producer") ?(col_label = "consumer") m =
  Format.asprintf "%a" (Matrix.pp_heatmap ~row_label ~col_label) m
