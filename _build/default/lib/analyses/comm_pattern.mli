(** Communication-pattern detection (paper Sec. VII-B, Fig. 9): the
    producer/consumer matrix derived from cross-thread RAW dependences. *)

val of_deps : ?threads:int -> Ddp_core.Dep_store.t -> Ddp_util.Matrix.t
(** [m[p][c]] = occurrences of RAW dependences written by thread [p] and
    read by thread [c]. *)

val workers_only : Ddp_util.Matrix.t -> Ddp_util.Matrix.t
(** Drop row/column 0 (the main thread). *)

val total_volume : Ddp_util.Matrix.t -> float

val render : ?row_label:string -> ?col_label:string -> Ddp_util.Matrix.t -> string
(** ASCII heatmap. *)
