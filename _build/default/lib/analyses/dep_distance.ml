(* Loop-carried dependence distances.

   The paper positions its profiler as a generic base for analyses that
   previously needed custom profilers; dependence *distance* (how many
   iterations apart source and sink of a carried dependence are) is the
   canonical example — Alchemist (cited as [4]) was built around it.  A
   minimum carried distance d means d iterations can run concurrently
   (skewing / pipelining), so the metric refines the binary
   parallelizable/serial verdict of Table II.

   Implemented as its own serial profiling pass: a region tracker records
   every iteration's start time for each active loop, and the dependence
   observer maps source timestamps to iteration indices by binary
   search. *)

module Loc = Ddp_minir.Loc

type active = {
  header_line : int;
  activation_time : int;
  mutable iter_starts : int array;  (* start time of iteration i *)
  mutable iters : int;
}

type loop_stats = {
  line : int;
  mutable carried_deps : int;  (* carried RAW occurrences *)
  mutable min_distance : int;
  mutable max_distance : int;
  mutable d1 : int;  (* occurrences at distance 1 *)
  mutable d_small : int;  (* 2..7 *)
  mutable d_large : int;  (* >= 8 *)
}

type t = {
  stats : (int, loop_stats) Hashtbl.t;
  mutable stack : active list;  (* innermost first; serial pass: thread 0 *)
}

let create () = { stats = Hashtbl.create 16; stack = [] }

let stats_of t line =
  match Hashtbl.find_opt t.stats line with
  | Some s -> s
  | None ->
    let s =
      {
        line;
        carried_deps = 0;
        min_distance = max_int;
        max_distance = 0;
        d1 = 0;
        d_small = 0;
        d_large = 0;
      }
    in
    Hashtbl.add t.stats line s;
    s

let on_enter t ~loc ~time =
  t.stack <-
    { header_line = Loc.line loc; activation_time = time; iter_starts = Array.make 8 0; iters = 0 }
    :: t.stack

let on_iter t ~time =
  match t.stack with
  | a :: _ ->
    if a.iters >= Array.length a.iter_starts then begin
      let bigger = Array.make (2 * Array.length a.iter_starts) 0 in
      Array.blit a.iter_starts 0 bigger 0 a.iters;
      a.iter_starts <- bigger
    end;
    a.iter_starts.(a.iters) <- time;
    a.iters <- a.iters + 1
  | [] -> invalid_arg "Dep_distance: iteration without active loop"

let on_exit t = match t.stack with _ :: rest -> t.stack <- rest | [] -> ()

(* Index of the iteration containing [time]: the last start <= time. *)
let iteration_of a time =
  let lo = ref 0 and hi = ref (a.iters - 1) in
  if a.iters = 0 || time < a.iter_starts.(0) then -1
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if a.iter_starts.(mid) <= time then lo := mid else hi := mid - 1
    done;
    !lo
  end

let on_raw t ~src_line ~src_time ~sink_time =
  (* Innermost active loop for which the source is a previous iteration.
     The loop's own index update (source at the header line) is exempt,
     as in the Table II analysis: the parallel runtime privatizes it. *)
  match
    List.find_opt
      (fun a ->
        a.iters > 0 && src_time >= a.activation_time
        && src_line <> a.header_line
        && iteration_of a src_time < iteration_of a sink_time)
      t.stack
  with
  | None -> ()
  | Some a ->
    let d = iteration_of a sink_time - iteration_of a src_time in
    let s = stats_of t a.header_line in
    s.carried_deps <- s.carried_deps + 1;
    if d < s.min_distance then s.min_distance <- d;
    if d > s.max_distance then s.max_distance <- d;
    if d = 1 then s.d1 <- s.d1 + 1
    else if d < 8 then s.d_small <- s.d_small + 1
    else s.d_large <- s.d_large + 1

type summary = loop_stats list

(* Serial pass over [prog] with its own perfect- or signature-store
   Algorithm 1 instance. *)
let analyze ?(config = Ddp_core.Config.default) ?(perfect = true) ?sched_seed ?input_seed prog =
  let t = create () in
  let profiler =
    if perfect then Ddp_core.Serial_profiler.create_perfect config
    else Ddp_core.Serial_profiler.create_signature config
  in
  profiler.Ddp_core.Serial_profiler.set_observer (fun kind ~sink:_ ~src ~src_time ~sink_time ->
      if kind = Ddp_core.Dep.RAW then
        on_raw t
          ~src_line:(Loc.line (Ddp_core.Payload.loc src))
          ~src_time ~sink_time);
  let inner = profiler.Ddp_core.Serial_profiler.hooks in
  let hooks =
    {
      inner with
      Ddp_minir.Event.on_region_enter =
        (fun ~loc ~kind ~thread ~time ->
          on_enter t ~loc ~time;
          inner.Ddp_minir.Event.on_region_enter ~loc ~kind ~thread ~time);
      on_region_iter =
        (fun ~loc ~thread ~time ->
          on_iter t ~time;
          inner.Ddp_minir.Event.on_region_iter ~loc ~thread ~time);
      on_region_exit =
        (fun ~loc ~end_loc ~kind ~iterations ~thread ~time ->
          on_exit t;
          inner.Ddp_minir.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time);
    }
  in
  let (_ : Ddp_minir.Interp.stats) = Ddp_minir.Interp.run ~hooks ?sched_seed ?input_seed prog in
  Hashtbl.fold (fun _ s acc -> s :: acc) t.stats []
  |> List.sort (fun a b -> Int.compare a.line b.line)

let render summary =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-8s %10s %6s %6s %8s %8s %8s\n" "loop" "carried" "min-d" "max-d" "d=1"
       "d in 2-7" "d>=8");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%-8s %10d %6d %6d %8d %8d %8d\n"
           (Printf.sprintf "@%d" s.line)
           s.carried_deps
           (if s.min_distance = max_int then 0 else s.min_distance)
           s.max_distance s.d1 s.d_small s.d_large))
    summary;
  Buffer.contents buf
