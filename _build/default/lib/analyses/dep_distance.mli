(** Loop-carried dependence distances (the Alchemist-style metric): a
    minimum carried distance of d iterations permits d-way concurrency
    via skewing or pipelining, refining Table II's binary verdict. *)

type loop_stats = {
  line : int;  (** loop header line *)
  mutable carried_deps : int;
  mutable min_distance : int;  (** [max_int] when no carried RAW *)
  mutable max_distance : int;
  mutable d1 : int;
  mutable d_small : int;  (** distance 2..7 *)
  mutable d_large : int;  (** distance >= 8 *)
}

type summary = loop_stats list

val analyze :
  ?config:Ddp_core.Config.t ->
  ?perfect:bool ->
  ?sched_seed:int ->
  ?input_seed:int ->
  Ddp_minir.Ast.program ->
  summary
(** Serial profiling pass recording the iteration distance of every
    loop-carried RAW occurrence, per loop, innermost carrying loop. *)

val render : summary -> string
