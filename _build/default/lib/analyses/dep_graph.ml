(* Dependence graph: one of the derived representations of the
   integrated program-analysis framework the paper announces in its
   conclusion ("dynamic execution tree, call tree, dependence graph, loop
   table, etc.").

   Nodes are source locations (optionally qualified by thread); edges are
   directed source -> sink dependences aggregated over kinds, with
   occurrence counts.  [collapse_to_regions] additionally folds statement
   nodes into their enclosing loop regions — the "set-based profiling"
   granularity the paper discusses in Sec. VI-B (dependences between code
   sections instead of statements). *)

module Loc = Ddp_minir.Loc

type edge = {
  e_src : Loc.t;
  e_sink : Loc.t;
  mutable raw : int;
  mutable war : int;
  mutable waw : int;
  mutable occurrences : int;
  mutable race : bool;
}

type t = {
  edges : (Loc.t * Loc.t, edge) Hashtbl.t;
  nodes : (Loc.t, unit) Hashtbl.t;
}

let create () = { edges = Hashtbl.create 64; nodes = Hashtbl.create 64 }

let note_node t loc = if not (Hashtbl.mem t.nodes loc) then Hashtbl.add t.nodes loc ()

let add_edge t ~src ~sink ~kind ~count ~race =
  note_node t src;
  note_node t sink;
  let e =
    match Hashtbl.find_opt t.edges (src, sink) with
    | Some e -> e
    | None ->
      let e = { e_src = src; e_sink = sink; raw = 0; war = 0; waw = 0; occurrences = 0; race = false } in
      Hashtbl.add t.edges (src, sink) e;
      e
  in
  (match kind with
  | Ddp_core.Dep.RAW -> e.raw <- e.raw + 1
  | Ddp_core.Dep.WAR -> e.war <- e.war + 1
  | Ddp_core.Dep.WAW -> e.waw <- e.waw + 1
  | Ddp_core.Dep.INIT -> ());
  e.occurrences <- e.occurrences + count;
  e.race <- e.race || race

let of_store (deps : Ddp_core.Dep_store.t) =
  let t = create () in
  Ddp_core.Dep_store.iter deps (fun dep count ->
      match dep.Ddp_core.Dep.kind with
      | Ddp_core.Dep.INIT -> note_node t (Ddp_core.Dep.sink_loc dep)
      | (Ddp_core.Dep.RAW | Ddp_core.Dep.WAR | Ddp_core.Dep.WAW) as kind ->
        add_edge t ~src:(Ddp_core.Dep.src_loc dep) ~sink:(Ddp_core.Dep.sink_loc dep) ~kind
          ~count ~race:dep.Ddp_core.Dep.race);
  t

let node_count t = Hashtbl.length t.nodes
let edge_count t = Hashtbl.length t.edges

let edges t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.edges []
  |> List.sort (fun a b ->
         let c = Loc.compare a.e_src b.e_src in
         if c <> 0 then c else Loc.compare a.e_sink b.e_sink)

let successors t loc =
  Hashtbl.fold (fun (src, sink) _ acc -> if src = loc then sink :: acc else acc) t.edges []
  |> List.sort_uniq Loc.compare

let predecessors t loc =
  Hashtbl.fold (fun (src, sink) _ acc -> if sink = loc then src :: acc else acc) t.edges []
  |> List.sort_uniq Loc.compare

(* Fold statement-level nodes into their enclosing loop region: a node
   inside [begin, end] of a recorded region is represented by the
   region's header location.  Nested regions: the innermost wins.  This
   is the paper's "set-based" granularity (Sec. VI-B). *)
let collapse_to_regions ~(regions : Ddp_core.Region.t) t =
  let spans =
    Ddp_core.Region.fold regions
      (fun loc info acc -> (Loc.line loc, Loc.line info.Ddp_core.Region.end_loc, loc) :: acc)
      []
    (* innermost = narrowest span first *)
    |> List.sort (fun (b1, e1, _) (b2, e2, _) -> Int.compare (e1 - b1) (e2 - b2))
  in
  let owner loc =
    let line = Loc.line loc in
    let rec find = function
      | (b, e, header) :: rest -> if line >= b && line <= e then header else find rest
      | [] -> loc
    in
    if Loc.is_none loc then loc else find spans
  in
  let g = create () in
  Hashtbl.iter (fun loc () -> note_node g (owner loc)) t.nodes;
  Hashtbl.iter
    (fun _ e ->
      let src = owner e.e_src and sink = owner e.e_sink in
      if src <> sink then begin
        (* aggregate per kind with the original multiplicities *)
        for _ = 1 to e.raw do
          add_edge g ~src ~sink ~kind:Ddp_core.Dep.RAW ~count:0 ~race:e.race
        done;
        for _ = 1 to e.war do
          add_edge g ~src ~sink ~kind:Ddp_core.Dep.WAR ~count:0 ~race:false
        done;
        for _ = 1 to e.waw do
          add_edge g ~src ~sink ~kind:Ddp_core.Dep.WAW ~count:0 ~race:false
        done;
        (match Hashtbl.find_opt g.edges (src, sink) with
        | Some ge -> ge.occurrences <- ge.occurrences + e.occurrences
        | None -> ())
      end)
    t.edges;
  g

(* Graphviz export: RAW edges solid, WAR dashed, WAW dotted; potential
   races in red. *)
let to_dot ?(name = "deps") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n  node [shape=box];\n" name);
  Hashtbl.iter
    (fun loc () ->
      Buffer.add_string buf (Printf.sprintf "  %S;\n" (Loc.to_string loc)))
    t.nodes;
  List.iter
    (fun e ->
      let style =
        if e.raw > 0 then "solid" else if e.war > 0 then "dashed" else "dotted"
      in
      let color = if e.race then "red" else "black" in
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [style=%s, color=%s, label=\"%s x%d\"];\n"
           (Loc.to_string e.e_src) (Loc.to_string e.e_sink) style color
           (String.concat "/"
              (List.filter_map Fun.id
                 [
                   (if e.raw > 0 then Some "RAW" else None);
                   (if e.war > 0 then Some "WAR" else None);
                   (if e.waw > 0 then Some "WAW" else None);
                 ]))
           e.occurrences))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
