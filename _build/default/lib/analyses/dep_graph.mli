(** Dependence graph over source locations: a derived representation of
    the program-analysis framework the paper announces (Sec. VIII), with
    the "set-based" section granularity of Sec. VI-B via
    {!collapse_to_regions}. *)

module Loc = Ddp_minir.Loc

type edge = {
  e_src : Loc.t;
  e_sink : Loc.t;
  mutable raw : int;  (** distinct RAW dependences on this edge *)
  mutable war : int;
  mutable waw : int;
  mutable occurrences : int;  (** total dynamic occurrences *)
  mutable race : bool;
}

type t

val of_store : Ddp_core.Dep_store.t -> t
val node_count : t -> int
val edge_count : t -> int
val edges : t -> edge list
(** Sorted by (src, sink). *)

val successors : t -> Loc.t -> Loc.t list
val predecessors : t -> Loc.t -> Loc.t list

val collapse_to_regions : regions:Ddp_core.Region.t -> t -> t
(** Fold statement nodes into their innermost enclosing loop region:
    dependences between code sections instead of statements. *)

val to_dot : ?name:string -> t -> string
(** Graphviz export: RAW solid, WAR dashed, WAW dotted, races red. *)
