(* Dynamic execution tree and call tree: the remaining derived
   representations of the paper's announced analysis framework
   (Sec. VIII: "dynamic execution tree, call tree, dependence graph,
   loop table").

   The tree is built from call/return and region enter/exit events of one
   run.  Nodes are procedure activations or loop regions, merged by
   (parent, kind, location): calling the same procedure twice from the
   same context increments the node's count instead of adding a sibling,
   so the tree stays bounded (this is the classical calling-context-tree
   compression).  Memory accesses are attributed to the innermost open
   node of their thread.  Per-thread subtrees hang off a common root so
   multi-threaded targets produce one tree. *)

module Loc = Ddp_minir.Loc

type node_kind =
  | Root
  | Thread of int
  | Proc of int  (* interned procedure name *)
  | Loop of Loc.t

type node = {
  kind : node_kind;
  mutable count : int;  (* activations (calls / region entries) *)
  mutable accesses : int;  (* memory accesses attributed to this node *)
  mutable children : node list;  (* reverse discovery order *)
}

type t = {
  root : node;
  mutable stacks : (int * node list) list;  (* thread -> open path, innermost first *)
  mutable total_accesses : int;
}

let new_node kind = { kind; count = 0; accesses = 0; children = [] }

let create () = { root = new_node Root; stacks = []; total_accesses = 0 }

let child_of parent kind =
  match List.find_opt (fun c -> c.kind = kind) parent.children with
  | Some c -> c
  | None ->
    let c = new_node kind in
    parent.children <- c :: parent.children;
    c

let stack t thread =
  match List.assoc_opt thread t.stacks with
  | Some s -> s
  | None ->
    let tnode = child_of t.root (Thread thread) in
    tnode.count <- tnode.count + 1;
    let s = [ tnode ] in
    t.stacks <- (thread, s) :: t.stacks;
    s

let set_stack t thread s = t.stacks <- (thread, s) :: List.remove_assoc thread t.stacks

let push t thread kind =
  let s = stack t thread in
  let top = List.hd s in
  let node = child_of top kind in
  node.count <- node.count + 1;
  set_stack t thread (node :: s)

let pop t thread kind =
  match stack t thread with
  | top :: (_ :: _ as rest) when top.kind = kind -> set_stack t thread rest
  | _ -> invalid_arg "Exec_tree: unbalanced call/region events"

let on_access t thread =
  t.total_accesses <- t.total_accesses + 1;
  let top = List.hd (stack t thread) in
  top.accesses <- top.accesses + 1

(* Hooks that build the tree during a run; regions and calls both become
   tree levels, giving the dynamic execution tree.  Other events are
   ignored. *)
let hooks t =
  {
    Ddp_minir.Event.null with
    Ddp_minir.Event.on_read = (fun ~addr:_ ~loc:_ ~var:_ ~thread ~time:_ ~locked:_ -> on_access t thread);
    on_write = (fun ~addr:_ ~loc:_ ~var:_ ~thread ~time:_ ~locked:_ -> on_access t thread);
    on_region_enter =
      (fun ~loc ~kind:Ddp_minir.Event.Loop ~thread ~time:_ -> push t thread (Loop loc));
    on_region_exit =
      (fun ~loc ~end_loc:_ ~kind:Ddp_minir.Event.Loop ~iterations:_ ~thread ~time:_ ->
        pop t thread (Loop loc));
    on_call = (fun ~loc:_ ~func ~thread ~time:_ -> push t thread (Proc func));
    on_return = (fun ~func ~thread ~time:_ -> pop t thread (Proc func));
    on_thread_end =
      (fun ~thread ->
        (* Close the thread's path: a later Par reusing the id counts as a
           new activation of the thread node. *)
        t.stacks <- List.remove_assoc thread t.stacks);
  }

let build ?sched_seed ?input_seed prog =
  let t = create () in
  let symtab = Ddp_minir.Symtab.create () in
  let (_ : Ddp_minir.Interp.stats) =
    Ddp_minir.Interp.run ~hooks:(hooks t) ?sched_seed ?input_seed ~symtab prog
  in
  (t, symtab)

let root t = t.root
let total_accesses t = t.total_accesses

(* Restrict to procedure activations (loop levels spliced out): the call
   tree. *)
let call_tree t =
  let rec gather c =
    match c.kind with
    | Loop _ -> List.concat_map gather c.children
    | Root | Thread _ | Proc _ -> [ { c with children = List.concat_map gather c.children } ]
  in
  match gather t.root with
  | [ r ] -> r
  | _ -> assert false

let kind_to_string ~func_name = function
  | Root -> "<root>"
  | Thread n -> Printf.sprintf "thread %d" n
  | Proc f -> Printf.sprintf "%s()" (func_name f)
  | Loop loc -> Printf.sprintf "loop@%s" (Loc.to_string loc)

let render ?(max_depth = 12) ~func_name t_or_node =
  let buf = Buffer.create 512 in
  let rec go depth node =
    if depth <= max_depth then begin
      Buffer.add_string buf
        (Printf.sprintf "%s%s  [count %d, accesses %d]\n"
           (String.make (2 * depth) ' ')
           (kind_to_string ~func_name node.kind)
           node.count node.accesses);
      List.iter (go (depth + 1)) (List.rev node.children)
    end
  in
  go 0 t_or_node;
  Buffer.contents buf

(* Total nodes in the (context-compressed) tree. *)
let rec size node = 1 + List.fold_left (fun acc c -> acc + size c) 0 node.children

let rec find_proc node fid =
  if node.kind = Proc fid then Some node
  else List.find_map (fun c -> find_proc c fid) node.children
