(** Dynamic execution tree and call tree (paper Sec. VIII): procedure
    activations and loop regions of one run, context-compressed (one node
    per (parent, kind, location)), with per-node activation and access
    counts. *)

module Loc = Ddp_minir.Loc

type node_kind =
  | Root
  | Thread of int
  | Proc of int  (** interned procedure name *)
  | Loop of Loc.t

type node = {
  kind : node_kind;
  mutable count : int;
  mutable accesses : int;
  mutable children : node list;
}

type t

val create : unit -> t

val hooks : t -> Ddp_minir.Event.hooks
(** Attach to an interpreter run to build the tree. *)

val build :
  ?sched_seed:int -> ?input_seed:int -> Ddp_minir.Ast.program -> t * Ddp_minir.Symtab.t
(** Run a program under tree-building hooks. *)

val root : t -> node
val total_accesses : t -> int

val call_tree : t -> node
(** Loop levels spliced out: procedure activations only. *)

val size : node -> int

val find_proc : node -> int -> node option
(** First node for the given interned procedure name. *)

val render : ?max_depth:int -> func_name:(int -> string) -> node -> string
(** Indented tree with activation and access counts. *)
