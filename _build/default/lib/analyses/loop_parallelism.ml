(* Loop-parallelism discovery (paper Sec. VII-A, Table II): the
   DiscoPoP-style analysis fed by the profiler's dependences.

   A loop is considered parallelizable when it carries no loop-carried
   true (RAW) dependence, with two OpenMP-style exemptions:
   - induction updates: the loop's own index increment (source at the
     loop header line) is handled by the parallel runtime;
   - reductions: a carried RAW whose source and sink are the same line
     and whose variable is in the loop's reduction clause would be
     privatized by "reduction(op:var)".
   Loop-carried WAR/WAW are ignored: privatization removes them.

   Carried-ness is decided dynamically, at dependence-build time, through
   the profiler's dependence observer: a RAW is carried by an active loop
   iff its source executed during the current activation but before the
   current iteration began (see Ddp_core.Region.carrying_regions).  The
   ground truth is the [parallel] annotation on MiniIR For loops — the
   analogue of the paper's comparison against OpenMP-annotated NAS. *)

module Loc = Ddp_minir.Loc
module Ast = Ddp_minir.Ast

type offender = {
  o_src : Loc.t;
  o_sink : Loc.t;
  o_var : int;
}

type loop_result = {
  header_line : int;
  annotated : bool;
  reduction_vars : string list;
  iterations : int;
  carried_raw : offender list;  (* deduplicated *)
  parallelizable : bool;
}

type summary = {
  loops : loop_result list;
  annotated_total : int;  (* "# OMP" *)
  identified : int;  (* annotated loops found parallelizable *)
  missed : int;  (* annotated loops we failed to identify *)
  extra : int;  (* unannotated loops found parallelizable *)
}

module Offender_set = Set.Make (struct
  type t = offender

  let compare = compare
end)

type loop_state = {
  info : Ast.loop_info;
  reduction_ids : int list;  (* resolved against the run's symtab, lazily *)
  mutable offenders : Offender_set.t;
}

(* Analysis driver: profile [prog] serially (signature or perfect store)
   with an observer that classifies each RAW as it is built. *)
let analyze ?(config = Ddp_core.Config.default) ?(perfect = false) ?sched_seed ?input_seed prog
    =
  let (_ : int) = Ast.number prog in
  let symtab = Ddp_minir.Symtab.create () in
  let profiler =
    if perfect then Ddp_core.Serial_profiler.create_perfect config
    else Ddp_core.Serial_profiler.create_signature config
  in
  let table = Hashtbl.create 32 in
  List.iter
    (fun (info : Ast.loop_info) ->
      Hashtbl.replace table info.loop_line { info; reduction_ids = []; offenders = Offender_set.empty })
    (Ast.loops prog);
  let regions = profiler.Ddp_core.Serial_profiler.regions in
  let reduction_ids st =
    (* Names resolve only once the interpreter has interned them; missing
       names simply never match. *)
    List.filter_map
      (fun name -> Ddp_util.Intern.find_opt symtab.Ddp_minir.Symtab.vars name)
      st.info.Ast.reduction_vars
  in
  let observer kind ~sink ~src ~src_time ~sink_time:_ =
    if kind = Ddp_core.Dep.RAW then begin
      let thread = Ddp_core.Payload.thread sink in
      let carriers = Ddp_core.Region.carrying_regions regions ~thread ~src_time in
      List.iter
        (fun (a : Ddp_core.Region.active) ->
          match Hashtbl.find_opt table (Loc.line a.a_loc) with
          | None -> ()  (* While loops: not classified in Table II *)
          | Some st ->
            let src_loc = Ddp_core.Payload.loc src in
            let sink_loc = Ddp_core.Payload.loc sink in
            let var = Ddp_core.Payload.var src in
            let induction = Loc.line src_loc = Loc.line a.a_loc in
            let reduction =
              Loc.line src_loc = Loc.line sink_loc && List.mem var (reduction_ids st)
            in
            if not (induction || reduction) then
              st.offenders <-
                Offender_set.add { o_src = src_loc; o_sink = sink_loc; o_var = var } st.offenders)
        carriers
    end
  in
  profiler.Ddp_core.Serial_profiler.set_observer observer;
  let (_ : Ddp_minir.Interp.stats) =
    Ddp_minir.Interp.run ~hooks:profiler.Ddp_core.Serial_profiler.hooks ?sched_seed ?input_seed
      ~symtab prog
  in
  let loops =
    Hashtbl.fold
      (fun line st acc ->
        let iterations =
          (* total iterations recorded for this header, if it ever ran *)
          Ddp_core.Region.fold regions
            (fun loc info acc -> if Loc.line loc = line then acc + info.Ddp_core.Region.iterations else acc)
            0
        in
        {
          header_line = line;
          annotated = st.info.Ast.annotated_parallel;
          reduction_vars = st.info.Ast.reduction_vars;
          iterations;
          carried_raw = Offender_set.elements st.offenders;
          parallelizable = Offender_set.is_empty st.offenders;
        }
        :: acc)
      table []
    |> List.sort (fun a b -> Int.compare a.header_line b.header_line)
  in
  let annotated_total = List.length (List.filter (fun l -> l.annotated) loops) in
  let identified =
    List.length (List.filter (fun l -> l.annotated && l.parallelizable) loops)
  in
  let missed = annotated_total - identified in
  let extra =
    List.length (List.filter (fun l -> (not l.annotated) && l.parallelizable) loops)
  in
  { loops; annotated_total; identified; missed; extra }

let pp_summary ppf s =
  Format.fprintf ppf "loops: %d annotated, %d identified, %d missed, %d extra parallelizable@."
    s.annotated_total s.identified s.missed s.extra;
  List.iter
    (fun l ->
      Format.fprintf ppf "  loop@%d %s%s: %s"
        l.header_line
        (if l.annotated then "[parallel] " else "")
        (match l.reduction_vars with [] -> "" | vs -> "(reduction: " ^ String.concat "," vs ^ ")")
        (if l.parallelizable then "parallelizable" else "serial");
      if not l.parallelizable then
        Format.fprintf ppf " — %d carried RAW" (List.length l.carried_raw);
      Format.fprintf ppf "@.")
    s.loops
