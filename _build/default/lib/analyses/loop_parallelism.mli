(** Loop-parallelism discovery (paper Sec. VII-A, Table II): classify
    every For loop as parallelizable iff it carries no loop-carried RAW
    dependence, with induction and reduction exemptions. *)

module Loc = Ddp_minir.Loc

type offender = {
  o_src : Loc.t;
  o_sink : Loc.t;
  o_var : int;
}

type loop_result = {
  header_line : int;
  annotated : bool;  (** ground truth (the OpenMP pragma analogue) *)
  reduction_vars : string list;
  iterations : int;
  carried_raw : offender list;
  parallelizable : bool;
}

type summary = {
  loops : loop_result list;
  annotated_total : int;  (** "# OMP" of Table II *)
  identified : int;  (** "# identified" *)
  missed : int;  (** "# missed" *)
  extra : int;
}

val analyze :
  ?config:Ddp_core.Config.t ->
  ?perfect:bool ->
  ?sched_seed:int ->
  ?input_seed:int ->
  Ddp_minir.Ast.program ->
  summary
(** Profile serially ([perfect] selects the oracle store, the "DP" column;
    default signature store is the "sig" column) and classify loops. *)

val pp_summary : Format.formatter -> summary -> unit
