(* Loop table: another derived representation of the announced analysis
   framework — every loop region with entry counts, total and average
   iterations, and whether the profiler found it parallelizable when a
   Loop_parallelism summary is supplied. *)

module Loc = Ddp_minir.Loc

type entry = {
  header : Loc.t;
  end_loc : Loc.t;
  entries : int;
  total_iterations : int;
  avg_iterations : float;
  parallelizable : bool option;  (* None when no analysis summary given *)
}

let of_regions ?summary (regions : Ddp_core.Region.t) =
  let classify line =
    match summary with
    | None -> None
    | Some (s : Loop_parallelism.summary) ->
      List.find_opt (fun (l : Loop_parallelism.loop_result) -> l.header_line = line) s.loops
      |> Option.map (fun (l : Loop_parallelism.loop_result) -> l.parallelizable)
  in
  Ddp_core.Region.to_sorted_list regions
  |> List.map (fun (loc, (info : Ddp_core.Region.info)) ->
         {
           header = loc;
           end_loc = info.Ddp_core.Region.end_loc;
           entries = info.Ddp_core.Region.entries;
           total_iterations = info.Ddp_core.Region.iterations;
           avg_iterations =
             (if info.Ddp_core.Region.entries = 0 then 0.0
              else float_of_int info.Ddp_core.Region.iterations /. float_of_int info.Ddp_core.Region.entries);
           parallelizable = classify (Loc.line loc);
         })

let render table =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-10s %8s %12s %10s  %s\n" "loop" "end" "entries" "iterations"
       "avg-iters" "parallel?");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %-10s %8d %12d %10.1f  %s\n" (Loc.to_string e.header)
           (Loc.to_string e.end_loc) e.entries e.total_iterations e.avg_iterations
           (match e.parallelizable with
           | None -> "-"
           | Some true -> "yes"
           | Some false -> "no")))
    table;
  Buffer.contents buf

(* Hottest loops by total iterations — the "hottest 20 loops" selection
   the paper contrasts its whole-program profiling against (SD3 profiles
   only these). *)
let hottest ?(n = 20) table =
  List.sort (fun a b -> Int.compare b.total_iterations a.total_iterations) table
  |> List.filteri (fun i _ -> i < n)
