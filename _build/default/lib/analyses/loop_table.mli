(** Loop table: loop regions with entry/iteration statistics, optionally
    joined with parallelizability verdicts. *)

module Loc = Ddp_minir.Loc

type entry = {
  header : Loc.t;
  end_loc : Loc.t;
  entries : int;
  total_iterations : int;
  avg_iterations : float;
  parallelizable : bool option;
}

val of_regions : ?summary:Loop_parallelism.summary -> Ddp_core.Region.t -> entry list
val render : entry list -> string

val hottest : ?n:int -> entry list -> entry list
(** Top-n loops by total iterations (the paper's "hottest 20 loops"
    selection used by SD3). *)
