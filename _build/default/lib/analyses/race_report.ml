(* Unenforced-dependence reporting (paper Sec. V-B).

   A dependence flagged by the worker-side timestamp check was observed
   with reversed access/push order, which can only happen when the two
   accesses were not protected by a common lock — the absence of mutual
   exclusion exposes a potential data race. *)

type entry = {
  dep : Ddp_core.Dep.t;
  occurrences : int;
}

let collect (deps : Ddp_core.Dep_store.t) =
  Ddp_core.Dep_store.fold deps
    (fun dep count acc -> if dep.Ddp_core.Dep.race then { dep; occurrences = count } :: acc else acc)
    []
  |> List.sort (fun a b -> Ddp_core.Dep.compare a.dep b.dep)

let count deps = List.length (collect deps)

(* Pairs of (location, location) involved in any flagged dependence:
   the deduplicated "look here" list a user acts on. *)
let suspect_pairs deps =
  collect deps
  |> List.map (fun e -> (Ddp_core.Dep.src_loc e.dep, Ddp_core.Dep.sink_loc e.dep))
  |> List.sort_uniq compare

let render ~var_name deps =
  let entries = collect deps in
  if entries = [] then "no potential races detected\n"
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "%d dependence(s) observed with reversed order (potential data races):\n"
         (List.length entries));
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "  %s|%d <- %s  (%d occurrence(s))\n"
             (Ddp_minir.Loc.to_string (Ddp_core.Dep.sink_loc e.dep))
             (Ddp_core.Dep.sink_thread e.dep)
             (Ddp_core.Dep.to_string ~show_threads:true ~var_name e.dep)
             e.occurrences))
      entries;
    Buffer.contents buf
  end
