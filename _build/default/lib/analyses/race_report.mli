(** Unenforced-dependence (potential data race) reporting, paper
    Sec. V-B. *)

type entry = {
  dep : Ddp_core.Dep.t;
  occurrences : int;
}

val collect : Ddp_core.Dep_store.t -> entry list
val count : Ddp_core.Dep_store.t -> int
val suspect_pairs : Ddp_core.Dep_store.t -> (Ddp_minir.Loc.t * Ddp_minir.Loc.t) list
val render : var_name:(int -> string) -> Ddp_core.Dep_store.t -> string
