lib/baselines/hash_profiler.ml: Array Ddp_core Ddp_util
