lib/baselines/hash_profiler.mli: Ddp_core Ddp_util
