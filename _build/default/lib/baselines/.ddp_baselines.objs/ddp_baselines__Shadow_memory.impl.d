lib/baselines/shadow_memory.ml: Array Ddp_core Ddp_util Hashtbl
