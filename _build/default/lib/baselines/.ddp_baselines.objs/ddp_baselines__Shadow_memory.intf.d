lib/baselines/shadow_memory.mli: Ddp_core Ddp_util
