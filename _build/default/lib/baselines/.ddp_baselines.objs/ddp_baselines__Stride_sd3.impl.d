lib/baselines/stride_sd3.ml: Ddp_core Hashtbl
