lib/baselines/stride_sd3.mli: Ddp_core
