(* Chained-hash-table access store: the "alternative ... to record memory
   accesses using a hash table" of the paper's Sec. III-B, which it
   measures at 1.5-3.7x slower than signatures because colliding buckets
   must be searched for the exact address.

   Implemented deliberately in the classic chained style (bucket array of
   association lists keyed by the *exact* address) rather than reusing
   stdlib Hashtbl, so the bucket-walk cost the paper describes is really
   paid and really measurable.  Exact: no false positives or negatives.
   Satisfies Ddp_core.Algo.STORE. *)

type node = {
  n_addr : int;
  mutable payload : int;
  mutable time : int;
  mutable next : node option;
}

type t = {
  mutable buckets : node option array;
  mutable entries : int;
  account : (Ddp_util.Mem_account.t * string) option;
}

let node_bytes = 6 * 8

let create ?account ?(initial_buckets = 4096) () =
  { buckets = Array.make initial_buckets None; entries = 0; account }

let charge t n =
  match t.account with
  | Some (acct, cat) -> Ddp_util.Mem_account.add acct cat n
  | None -> ()

let bucket_of t addr = (addr * 0x9E3779B1 land max_int) mod Array.length t.buckets

let rec find_node node addr =
  match node with
  | None -> None
  | Some n -> if n.n_addr = addr then Some n else find_node n.next addr

let probe t ~addr =
  match find_node t.buckets.(bucket_of t addr) addr with Some n -> n.payload | None -> 0

let probe_time t ~addr =
  match find_node t.buckets.(bucket_of t addr) addr with Some n -> n.time | None -> 0

let grow t =
  let old = t.buckets in
  t.buckets <- Array.make (2 * Array.length old) None;
  charge t (2 * Array.length old * 8);
  Array.iter
    (fun chain ->
      let rec reinsert = function
        | None -> ()
        | Some n ->
          let next = n.next in
          let b = bucket_of t n.n_addr in
          n.next <- t.buckets.(b);
          t.buckets.(b) <- Some n;
          reinsert next
      in
      reinsert chain)
    old

let set t ~addr ~payload ~time =
  match find_node t.buckets.(bucket_of t addr) addr with
  | Some n ->
    n.payload <- payload;
    n.time <- time
  | None ->
    if t.entries > 2 * Array.length t.buckets then grow t;
    let b = bucket_of t addr in
    t.buckets.(b) <- Some { n_addr = addr; payload; time; next = t.buckets.(b) };
    t.entries <- t.entries + 1;
    charge t node_bytes

let remove t ~addr =
  let b = bucket_of t addr in
  let rec filter = function
    | None -> None
    | Some n ->
      if n.n_addr = addr then begin
        t.entries <- t.entries - 1;
        charge t (-node_bytes);
        n.next
      end
      else begin
        n.next <- filter n.next;
        Some n
      end
  in
  t.buckets.(b) <- filter t.buckets.(b)

let entries t = t.entries
let bytes t = (Array.length t.buckets * 8) + (t.entries * node_bytes)

module Algo = Ddp_core.Algo.Make (struct
  type nonrec t = t

  let probe = probe
  let probe_time = probe_time
  let set = set
  let remove = remove
end)
