(** Chained-hash-table access store: the exact-but-slower alternative to
    signatures that the paper measures at 1.5-3.7x slower (Sec. III-B). *)

type t

val create : ?account:Ddp_util.Mem_account.t * string -> ?initial_buckets:int -> unit -> t
val probe : t -> addr:int -> int
val probe_time : t -> addr:int -> int
val set : t -> addr:int -> payload:int -> time:int -> unit
val remove : t -> addr:int -> unit
val entries : t -> int
val bytes : t -> int

module Algo : Ddp_core.Algo.S with type store = t
