(* Shadow-memory access stores: the traditional approach the paper argues
   against (Sec. III-B).

   [Flat] is the literal scheme: one table entry per address covering the
   range from the lowest to the highest address the program touches.  On
   real 64-bit address spaces this wastes enormous memory (the paper cites
   runs impossible under 16 GB); our MiniIR address space is dense, so the
   ablation bench emulates realistic pointer spread by scaling addresses
   (see Addr_spread below) before feeding this store.

   [Paged] is the multilevel-table mitigation the paper mentions: shadow
   pages are allocated on demand, so memory follows the touched footprint
   rather than the address range.  Both are exact (no false positives or
   negatives) and both satisfy Ddp_core.Algo.STORE, so Algorithm 1 runs
   unchanged over them. *)

module Flat = struct
  type t = {
    mutable payloads : int array;
    mutable times : int array;
    mutable limit : int;  (* one past the highest address seen *)
    account : (Ddp_util.Mem_account.t * string) option;
  }

  let bytes_per_entry = 16

  let create ?account () =
    { payloads = Array.make 1024 0; times = Array.make 1024 0; limit = 0; account }

  let charge t n =
    match t.account with
    | Some (acct, cat) -> Ddp_util.Mem_account.add acct cat n
    | None -> ()

  let ensure t addr =
    if addr >= t.limit then t.limit <- addr + 1;
    let cap = Array.length t.payloads in
    if addr >= cap then begin
      let cap' = max (2 * cap) (addr + 1) in
      let payloads = Array.make cap' 0 and times = Array.make cap' 0 in
      Array.blit t.payloads 0 payloads 0 cap;
      Array.blit t.times 0 times 0 cap;
      charge t ((cap' - cap) * bytes_per_entry);
      t.payloads <- payloads;
      t.times <- times
    end

  let probe t ~addr = if addr < Array.length t.payloads then t.payloads.(addr) else 0
  let probe_time t ~addr = if addr < Array.length t.times then t.times.(addr) else 0

  let set t ~addr ~payload ~time =
    ensure t addr;
    t.payloads.(addr) <- payload;
    t.times.(addr) <- time

  let remove t ~addr =
    if addr < Array.length t.payloads then begin
      t.payloads.(addr) <- 0;
      t.times.(addr) <- 0
    end

  let bytes t = Array.length t.payloads * bytes_per_entry
  let covered_range t = t.limit
end

module Paged = struct
  let page_bits = 12
  let page_size = 1 lsl page_bits
  let page_mask = page_size - 1

  type page = { payloads : int array; times : int array }

  type t = {
    pages : (int, page) Hashtbl.t;
    account : (Ddp_util.Mem_account.t * string) option;
  }

  let bytes_per_page = (2 * page_size * 8) + 64

  let create ?account () = { pages = Hashtbl.create 64; account }

  let page_of t addr ~create:c =
    let key = addr lsr page_bits in
    match Hashtbl.find_opt t.pages key with
    | Some p -> Some p
    | None ->
      if not c then None
      else begin
        let p = { payloads = Array.make page_size 0; times = Array.make page_size 0 } in
        Hashtbl.add t.pages key p;
        (match t.account with
        | Some (acct, cat) -> Ddp_util.Mem_account.add acct cat bytes_per_page
        | None -> ());
        Some p
      end

  let probe t ~addr =
    match page_of t addr ~create:false with
    | Some p -> p.payloads.(addr land page_mask)
    | None -> 0

  let probe_time t ~addr =
    match page_of t addr ~create:false with
    | Some p -> p.times.(addr land page_mask)
    | None -> 0

  let set t ~addr ~payload ~time =
    match page_of t addr ~create:true with
    | Some p ->
      p.payloads.(addr land page_mask) <- payload;
      p.times.(addr land page_mask) <- time
    | None -> assert false

  let remove t ~addr =
    match page_of t addr ~create:false with
    | Some p ->
      p.payloads.(addr land page_mask) <- 0;
      p.times.(addr land page_mask) <- 0
    | None -> ()

  let bytes t = Hashtbl.length t.pages * bytes_per_page
  let pages t = Hashtbl.length t.pages
end

(* Emulation of realistic pointer spread: MiniIR addresses are dense cell
   indices, while real programs scatter allocations across a huge address
   space.  Scaling an address by [factor] (plus a per-block offset salt)
   reproduces the sparsity that makes flat shadow memory blow up. *)
module Addr_spread = struct
  let spread ~factor addr = (addr * factor) + (addr land 0xFF)
end

module Algo_flat = Ddp_core.Algo.Make (Flat)
module Algo_paged = Ddp_core.Algo.Make (Paged)
