(** Shadow-memory access stores — the traditional, exact approach the
    paper's signatures replace (Sec. III-B).  Both satisfy
    {!Ddp_core.Algo.STORE}. *)

module Flat : sig
  type t

  val create : ?account:Ddp_util.Mem_account.t * string -> unit -> t
  val probe : t -> addr:int -> int
  val probe_time : t -> addr:int -> int
  val set : t -> addr:int -> payload:int -> time:int -> unit
  val remove : t -> addr:int -> unit

  val bytes : t -> int
  val covered_range : t -> int
  (** One past the highest address seen: flat shadow memory pays for the
      whole range. *)
end

module Paged : sig
  type t

  val create : ?account:Ddp_util.Mem_account.t * string -> unit -> t
  val probe : t -> addr:int -> int
  val probe_time : t -> addr:int -> int
  val set : t -> addr:int -> payload:int -> time:int -> unit
  val remove : t -> addr:int -> unit

  val bytes : t -> int
  val pages : t -> int
  val page_size : int
end

module Addr_spread : sig
  val spread : factor:int -> int -> int
  (** Emulate sparse 64-bit pointer layouts over MiniIR's dense addresses
      (used by the shadow-memory ablation bench). *)
end

module Algo_flat : Ddp_core.Algo.S with type store = Flat.t
module Algo_paged : Ddp_core.Algo.S with type store = Paged.t
