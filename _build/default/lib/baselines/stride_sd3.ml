(* SD3-style stride compression (Kim, Kim & Luk, MICRO'10), the
   memory-reduction technique of the paper's main related-work baseline
   (Sec. II): instead of one record per address, accesses issued by one
   source line are summarized by a finite state machine that learns
   "base + k*stride" patterns, so a million-element array walk costs one
   record.

   This module reproduces the *compression* idea as an ablation
   comparator: it answers how many records SD3-style bookkeeping needs
   for a trace versus the per-address entries of shadow/hash approaches,
   and extracts pairwise dependences by stride-set intersection.  The FSM
   follows SD3's three states: Start (first access), FirstObserved (one
   address seen), StrideLearned (constant stride confirmed); an access
   breaking the stride retires the current run into a fixed list and
   restarts learning.  Point accesses (stride 0) stay point records. *)

type state =
  | Start
  | First_observed
  | Stride_learned

type run = {
  base : int;
  stride : int;  (* 0 for a point *)
  count : int;  (* addresses covered *)
  payload : int;  (* source payload of the last access in the run *)
}

type line_record = {
  mutable st : state;
  mutable cur_base : int;
  mutable cur_stride : int;
  mutable cur_count : int;
  mutable last_addr : int;
  mutable last_payload : int;
  mutable retired : run list;
  mutable retired_count : int;
}

type t = {
  (* one record per (source location, access kind) *)
  writes : (int, line_record) Hashtbl.t;
  reads : (int, line_record) Hashtbl.t;
  deps : Ddp_core.Dep_store.t;
  max_retired : int;  (* cap per line to bound worst-case memory *)
}

let create ?(max_retired = 64) () =
  {
    writes = Hashtbl.create 128;
    reads = Hashtbl.create 128;
    deps = Ddp_core.Dep_store.create ();
    max_retired;
  }

let fresh_record () =
  {
    st = Start;
    cur_base = 0;
    cur_stride = 0;
    cur_count = 0;
    last_addr = 0;
    last_payload = 0;
    retired = [];
    retired_count = 0;
  }

let record_of tbl loc =
  match Hashtbl.find_opt tbl loc with
  | Some r -> r
  | None ->
    let r = fresh_record () in
    Hashtbl.add tbl loc r;
    r

(* Does a run cover [addr]? *)
let run_covers r addr =
  if r.stride = 0 then addr = r.base
  else begin
    let offset = addr - r.base in
    offset >= 0 && offset mod r.stride = 0 && offset / r.stride < r.count
  end

let current_run rec_ =
  match rec_.st with
  | Start -> None
  | First_observed ->
    Some { base = rec_.last_addr; stride = 0; count = 1; payload = rec_.last_payload }
  | Stride_learned ->
    Some
      {
        base = rec_.cur_base;
        stride = rec_.cur_stride;
        count = rec_.cur_count;
        payload = rec_.last_payload;
      }

let covers rec_ addr =
  let in_current = match current_run rec_ with Some r -> run_covers r addr | None -> false in
  if in_current then Some rec_.last_payload
  else
    let rec search = function
      | [] -> None
      | r :: rest -> if run_covers r addr then Some r.payload else search rest
    in
    search rec_.retired

let retire rec_ ~max_retired =
  (match current_run rec_ with
  | Some r ->
    if rec_.retired_count < max_retired then begin
      rec_.retired <- r :: rec_.retired;
      rec_.retired_count <- rec_.retired_count + 1
    end
  | None -> ());
  rec_.st <- Start

(* Advance the FSM of one line record with a new address. *)
let observe t rec_ ~addr ~payload =
  rec_.last_payload <- payload;
  (match rec_.st with
  | Start ->
    rec_.st <- First_observed;
    rec_.last_addr <- addr
  | First_observed ->
    let stride = addr - rec_.last_addr in
    if stride = 0 then ()
    else begin
      rec_.st <- Stride_learned;
      rec_.cur_base <- rec_.last_addr;
      rec_.cur_stride <- stride;
      rec_.cur_count <- 2;
      rec_.last_addr <- addr
    end
  | Stride_learned ->
    if addr - rec_.last_addr = rec_.cur_stride then begin
      rec_.cur_count <- rec_.cur_count + 1;
      rec_.last_addr <- addr
    end
    else begin
      retire rec_ ~max_retired:t.max_retired;
      rec_.st <- First_observed;
      rec_.last_addr <- addr
    end);
  ()

(* Dependence checks intersect the incoming address with every line's
   runs of the opposite kind: O(#lines) per access — the price of range
   granularity, acceptable because #lines is small and fixed. *)
let check_deps t tbl ~kind ~addr ~sink =
  Hashtbl.iter
    (fun _loc rec_ ->
      match covers rec_ addr with
      | Some src_payload -> Ddp_core.Dep_store.add t.deps ~kind ~sink ~src:src_payload ~race:false
      | None -> ())
    tbl

let on_write t ~addr ~payload ~time:_ =
  check_deps t t.writes ~kind:Ddp_core.Dep.WAW ~addr ~sink:payload;
  check_deps t t.reads ~kind:Ddp_core.Dep.WAR ~addr ~sink:payload;
  let loc = Ddp_core.Payload.loc payload in
  observe t (record_of t.writes loc) ~addr ~payload

let on_read t ~addr ~payload ~time:_ =
  check_deps t t.writes ~kind:Ddp_core.Dep.RAW ~addr ~sink:payload;
  let loc = Ddp_core.Payload.loc payload in
  observe t (record_of t.reads loc) ~addr ~payload

let deps t = t.deps

let records t =
  let count tbl =
    Hashtbl.fold (fun _ r acc -> acc + r.retired_count + 1) tbl 0
  in
  count t.writes + count t.reads

(* Per-record footprint: ~10 words, plus retired runs at 5 words. *)
let bytes t =
  let of_tbl tbl =
    Hashtbl.fold (fun _ r acc -> acc + (10 * 8) + (r.retired_count * 5 * 8)) tbl 0
  in
  of_tbl t.writes + of_tbl t.reads

(* Compression ratio versus one record per distinct address. *)
let compression_vs ~distinct_addresses t =
  if records t = 0 then 1.0 else float_of_int distinct_addresses /. float_of_int (records t)
