(** SD3-style stride-compressed access bookkeeping (the paper's main
    related-work baseline): per-source-line finite state machines learn
    "base + k*stride" runs, trading per-address exactness for range
    granularity.  Used by the ablation benches. *)

type t

val create : ?max_retired:int -> unit -> t
val on_write : t -> addr:int -> payload:int -> time:int -> unit
val on_read : t -> addr:int -> payload:int -> time:int -> unit

val deps : t -> Ddp_core.Dep_store.t
(** Dependences at stride-run granularity. *)

val records : t -> int
(** Stride/point records currently held. *)

val bytes : t -> int

val compression_vs : distinct_addresses:int -> t -> float
(** How many per-address entries one stride record replaces. *)
