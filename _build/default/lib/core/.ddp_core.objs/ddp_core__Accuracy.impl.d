lib/core/accuracy.ml: Dep_store Format
