lib/core/accuracy.mli: Dep_store Format
