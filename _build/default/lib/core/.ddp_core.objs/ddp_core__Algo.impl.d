lib/core/algo.ml: Dep Dep_store Perfect_sig Sig_store
