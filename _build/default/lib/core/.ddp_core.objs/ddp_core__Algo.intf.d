lib/core/algo.mli: Dep Dep_store Perfect_sig Sig_store
