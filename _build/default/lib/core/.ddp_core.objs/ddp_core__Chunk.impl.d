lib/core/chunk.ml: Array
