lib/core/chunk.mli:
