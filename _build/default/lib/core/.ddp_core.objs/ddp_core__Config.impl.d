lib/core/config.ml:
