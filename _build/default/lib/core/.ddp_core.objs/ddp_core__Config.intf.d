lib/core/config.mli:
