lib/core/dep.ml: Bool Ddp_minir Hashtbl Int Payload Printf
