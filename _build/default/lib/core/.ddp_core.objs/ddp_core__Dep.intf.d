lib/core/dep.mli: Ddp_minir
