lib/core/dep_store.ml: Ddp_util Dep Hashtbl Set
