lib/core/dep_store.mli: Ddp_util Dep Set
