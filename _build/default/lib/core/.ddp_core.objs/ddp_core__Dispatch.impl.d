lib/core/dispatch.ml: Array Hashtbl Int List
