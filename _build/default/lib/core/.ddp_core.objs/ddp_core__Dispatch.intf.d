lib/core/dispatch.mli:
