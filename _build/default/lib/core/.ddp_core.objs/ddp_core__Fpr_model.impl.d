lib/core/fpr_model.ml:
