lib/core/fpr_model.mli:
