lib/core/locked_queue.ml: Domain Mutex Queue
