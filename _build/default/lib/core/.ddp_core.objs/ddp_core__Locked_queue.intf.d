lib/core/locked_queue.mli:
