lib/core/mt_frontend.ml: Ddp_minir Ddp_util Hashtbl List Queue
