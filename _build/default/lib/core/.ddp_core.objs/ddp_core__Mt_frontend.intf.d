lib/core/mt_frontend.mli: Ddp_minir
