lib/core/parallel_profiler.ml: Algo Array Atomic Chunk Config Ddp_minir Ddp_util Dep_store Dispatch Domain List Locked_queue Option Payload Region Sig_store Spsc_queue Unix
