lib/core/parallel_profiler.mli: Config Ddp_minir Ddp_util Dep_store Region
