lib/core/payload.ml:
