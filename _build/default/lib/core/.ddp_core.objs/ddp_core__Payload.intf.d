lib/core/payload.mli: Ddp_minir
