lib/core/perfect_sig.ml: Ddp_util Hashtbl
