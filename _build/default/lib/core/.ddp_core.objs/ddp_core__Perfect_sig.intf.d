lib/core/perfect_sig.mli: Ddp_util
