lib/core/profiler.ml: Config Ddp_minir Ddp_util Dep_store Mt_frontend Option Parallel_profiler Region Report Serial_profiler
