lib/core/profiler.mli: Config Ddp_minir Ddp_util Dep_store Parallel_profiler Region
