lib/core/region.ml: Ddp_minir Hashtbl List
