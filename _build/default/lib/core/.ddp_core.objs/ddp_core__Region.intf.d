lib/core/region.mli: Ddp_minir
