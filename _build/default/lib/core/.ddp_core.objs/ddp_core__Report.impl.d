lib/core/report.ml: Buffer Ddp_minir Dep Dep_store Int List Map Option Printf Region String
