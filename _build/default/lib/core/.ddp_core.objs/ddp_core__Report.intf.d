lib/core/report.mli: Dep_store Region
