lib/core/serial_profiler.ml: Algo Config Ddp_minir Dep_store Option Payload Perfect_sig Region Sig_store
