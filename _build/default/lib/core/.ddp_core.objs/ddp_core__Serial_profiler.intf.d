lib/core/serial_profiler.mli: Algo Config Ddp_minir Ddp_util Dep_store Region
