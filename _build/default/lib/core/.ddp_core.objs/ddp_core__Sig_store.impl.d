lib/core/sig_store.ml: Array Ddp_util
