lib/core/sig_store.mli: Ddp_util
