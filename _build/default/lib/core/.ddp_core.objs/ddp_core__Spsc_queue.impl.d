lib/core/spsc_queue.ml: Array Atomic Domain
