lib/core/spsc_queue.mli:
