(* Accuracy of profiled dependences against the perfect-signature baseline
   (paper Sec. VI-A, Table I).

   A false positive is a dependence the signature profiler reports that
   the perfect signature does not (a collision made a stranger's payload
   look like the last access).  A false negative is a true dependence the
   signature profiler misses (the true source was overwritten by a
   collider, so the built dependence carries the wrong source).  Rates
   are relative to the respective set sizes. *)

type t = {
  reported : int;
  ground_truth : int;
  false_positives : int;
  false_negatives : int;
  fpr : float;  (* false_positives / reported *)
  fnr : float;  (* false_negatives / ground_truth *)
}

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let of_key_sets ~reported ~ground_truth =
  let module S = Dep_store.Key_set in
  let fp = S.cardinal (S.diff reported ground_truth) in
  let fn = S.cardinal (S.diff ground_truth reported) in
  {
    reported = S.cardinal reported;
    ground_truth = S.cardinal ground_truth;
    false_positives = fp;
    false_negatives = fn;
    fpr = ratio fp (S.cardinal reported);
    fnr = ratio fn (S.cardinal ground_truth);
  }

let compare_stores ~profiled ~perfect =
  of_key_sets ~reported:(Dep_store.key_set_no_race profiled)
    ~ground_truth:(Dep_store.key_set_no_race perfect)

let pp ppf t =
  Format.fprintf ppf "reported %d, truth %d, FP %d (%.2f%%), FN %d (%.2f%%)" t.reported
    t.ground_truth t.false_positives (100.0 *. t.fpr) t.false_negatives (100.0 *. t.fnr)
