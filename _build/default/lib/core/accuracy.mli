(** False-positive / false-negative rates of a profiled dependence set
    against the perfect-signature baseline (Table I). *)

type t = {
  reported : int;
  ground_truth : int;
  false_positives : int;
  false_negatives : int;
  fpr : float;  (** FP / reported *)
  fnr : float;  (** FN / ground truth *)
}

val of_key_sets :
  reported:Dep_store.Key_set.t -> ground_truth:Dep_store.Key_set.t -> t

val compare_stores : profiled:Dep_store.t -> perfect:Dep_store.t -> t
(** Race flags are ignored in the comparison. *)

val pp : Format.formatter -> t -> unit
