(* Data dependences.

   A dependence is the triple <sink, type, source> of the paper's
   Sec. III-A, where sink and source are (location, thread) pairs plus the
   variable name, and type is RAW / WAR / WAW or the pseudo-type INIT
   marking the first write to an address.  Source and sink are kept in
   packed payload form (see Payload); [view] decodes them for display. *)

module Loc = Ddp_minir.Loc

type kind =
  | RAW
  | WAR
  | WAW
  | INIT

let kind_to_string = function RAW -> "RAW" | WAR -> "WAR" | WAW -> "WAW" | INIT -> "INIT"

let kind_compare a b =
  let rank = function RAW -> 0 | WAR -> 1 | WAW -> 2 | INIT -> 3 in
  Int.compare (rank a) (rank b)

(* The merged-dependence key: identical keys are stored once (paper:
   "we merge identical dependences", Sec. III-B).  [race] marks a
   dependence whose access order was observed reversed at the worker — a
   potential data race on an unenforced dependence (Sec. V-B). *)
type t = {
  kind : kind;
  sink : int;  (* packed payload; never 0 *)
  src : int;  (* packed payload; 0 for INIT *)
  race : bool;
}

let compare a b =
  let c = Int.compare a.sink b.sink in
  if c <> 0 then c
  else
    let c = kind_compare a.kind b.kind in
    if c <> 0 then c
    else
      let c = Int.compare a.src b.src in
      if c <> 0 then c else Bool.compare a.race b.race

let equal a b = a.kind = b.kind && a.sink = b.sink && a.src = b.src && a.race = b.race
let hash t = Hashtbl.hash t

let sink_loc t = Payload.loc t.sink
let sink_thread t = Payload.thread t.sink
let src_loc t = if t.src = 0 then Loc.none else Payload.loc t.src
let src_thread t = if t.src = 0 then -1 else Payload.thread t.src
let var t = if t.src = 0 then Payload.var t.sink else Payload.var t.src

let is_cross_thread t = t.src <> 0 && Payload.thread t.src <> Payload.thread t.sink

(* Render one dependence the way the paper's Fig. 1 / Fig. 3 print it:
   "{RAW 1:59|temp1}" sequentially, "{RAW 4:77|2|iter}" with thread ids.
   INIT has no source: "{INIT *}". *)
let to_string ?(show_threads = false) ~var_name t =
  match t.kind with
  | INIT -> "{INIT *}"
  | RAW | WAR | WAW ->
    let name = var_name (var t) in
    let race = if t.race then "?" else "" in
    if show_threads then
      Printf.sprintf "{%s%s %s|%d|%s}" (kind_to_string t.kind) race
        (Loc.to_string (src_loc t))
        (src_thread t) name
    else
      Printf.sprintf "{%s%s %s|%s}" (kind_to_string t.kind) race (Loc.to_string (src_loc t)) name
