(** Data dependences: the triple <sink, type, source> of the paper's
    Sec. III-A, in packed-payload form. *)

type kind =
  | RAW
  | WAR
  | WAW
  | INIT  (** pseudo-type: first write to an address *)

val kind_to_string : kind -> string
val kind_compare : kind -> kind -> int

type t = {
  kind : kind;
  sink : int;  (** packed payload of the later access; never 0 *)
  src : int;  (** packed payload of the earlier access; 0 for INIT *)
  race : bool;  (** observed-reversed timestamps: potential data race (Sec. V-B) *)
}

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val sink_loc : t -> Ddp_minir.Loc.t
val sink_thread : t -> int
val src_loc : t -> Ddp_minir.Loc.t
val src_thread : t -> int

val var : t -> int
(** Variable id of the accessed location (the source's, falling back to
    the sink's for INIT). *)

val is_cross_thread : t -> bool

val to_string : ?show_threads:bool -> var_name:(int -> string) -> t -> string
(** Paper-style rendering: ["{RAW 1:59|temp1}"], ["{RAW 4:77|2|iter}"]
    with thread ids, ["{INIT *}"].  A trailing ["?"] after the kind marks
    a potential race. *)
