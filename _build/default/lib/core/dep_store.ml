(* Merged storage of dependences.

   The paper merges identical dependences to cut output size by ~1e5
   (Sec. III-B); a hash map keyed by the full dependence does exactly
   that, keeping an occurrence count per unique dependence (the count
   feeds the communication-intensity matrix of Sec. VII-B).

   One store is single-owner: the serial profiler has one, each parallel
   worker has its own thread-local store, and [merge_into] combines them
   at the end (paper Sec. IV: "at the end, we merge the data from all
   local maps into a global map"). *)

type t = {
  tbl : (Dep.t, int ref) Hashtbl.t;
  mutable total : int;  (* occurrences including duplicates, for the merge-factor stat *)
  account : (Ddp_util.Mem_account.t * string) option;
}

(* Rough per-entry footprint: key record (5 words) + count ref (2 words) +
   hashtable bucket (3 words) = 10 words. *)
let entry_bytes = 10 * 8

let create ?account () = { tbl = Hashtbl.create 256; total = 0; account }

let charge t n =
  match t.account with
  | Some (acct, cat) -> Ddp_util.Mem_account.add acct cat n
  | None -> ()

let add_key t key ~occurrences =
  t.total <- t.total + occurrences;
  match Hashtbl.find_opt t.tbl key with
  | Some r -> r := !r + occurrences
  | None ->
    Hashtbl.add t.tbl key (ref occurrences);
    charge t entry_bytes

let add t ~kind ~sink ~src ~race = add_key t { Dep.kind; sink; src; race } ~occurrences:1

let add_init t ~sink = add t ~kind:Dep.INIT ~sink ~src:0 ~race:false

let mem t key = Hashtbl.mem t.tbl key
let count t key = match Hashtbl.find_opt t.tbl key with Some r -> !r | None -> 0
let distinct t = Hashtbl.length t.tbl
let total_occurrences t = t.total

(* Output-size reduction achieved by merging: the paper reports an average
   factor of ~1e5 for NAS. *)
let merge_factor t =
  if Hashtbl.length t.tbl = 0 then 1.0
  else float_of_int t.total /. float_of_int (Hashtbl.length t.tbl)

let iter t f = Hashtbl.iter (fun k r -> f k !r) t.tbl

let fold t f init = Hashtbl.fold (fun k r acc -> f k !r acc) t.tbl init

let to_list t = fold t (fun k c acc -> (k, c) :: acc) []

let merge_into ~src ~dst = iter src (fun k c -> add_key dst k ~occurrences:c)

(* Set of unique dependence keys, for accuracy comparisons. *)
module Key_set = Set.Make (Dep)

let key_set t = fold t (fun k _ acc -> Key_set.add k acc) Key_set.empty

(* Ignore race flags (and counts): used when comparing dependence sets
   across profiling modes that differ only in race detection. *)
let key_set_no_race t =
  fold t (fun k _ acc -> Key_set.add { k with Dep.race = false } acc) Key_set.empty

let clear t =
  charge t (-(entry_bytes * Hashtbl.length t.tbl));
  Hashtbl.reset t.tbl;
  t.total <- 0

let approx_bytes t = entry_bytes * Hashtbl.length t.tbl
