(** Merged dependence storage: identical dependences are stored once with
    an occurrence count (paper Sec. III-B, output reduction ~1e5x). *)

type t

val create : ?account:Ddp_util.Mem_account.t * string -> unit -> t

val add : t -> kind:Dep.kind -> sink:int -> src:int -> race:bool -> unit
val add_init : t -> sink:int -> unit
val add_key : t -> Dep.t -> occurrences:int -> unit

val mem : t -> Dep.t -> bool
val count : t -> Dep.t -> int

val distinct : t -> int
(** Number of unique dependences: "#dependences" of Table I. *)

val total_occurrences : t -> int

val merge_factor : t -> float
(** Occurrences over distinct: the output-size reduction from merging. *)

val iter : t -> (Dep.t -> int -> unit) -> unit
val fold : t -> (Dep.t -> int -> 'a -> 'a) -> 'a -> 'a
val to_list : t -> (Dep.t * int) list

val merge_into : src:t -> dst:t -> unit
(** End-of-run merge of a worker-local store into the global one. *)

module Key_set : Set.S with type elt = Dep.t

val key_set : t -> Key_set.t
val key_set_no_race : t -> Key_set.t

val clear : t -> unit
val approx_bytes : t -> int
