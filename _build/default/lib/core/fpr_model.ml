(* Analytical false-positive model of the paper's Sec. VI-A, Eq. (2):

     P_fp = 1 - (1 - 1/m)^n

   the probability that a given slot of an m-slot signature is already
   occupied after inserting n distinct addresses — i.e. the chance a
   membership check reports a colliding stranger.  The model predicts the
   trend of Table I: FPR inversely proportional to m, proportional to n. *)

let p_fp ~slots ~addresses =
  if slots <= 0 then invalid_arg "Fpr_model.p_fp: slots must be positive";
  if addresses < 0 then invalid_arg "Fpr_model.p_fp: addresses must be non-negative";
  let m = float_of_int slots and n = float_of_int addresses in
  (* log1p-based form stays accurate for large m. *)
  1.0 -. exp (n *. log1p (-1.0 /. m))

(* Smallest signature size whose predicted collision probability stays
   under [target] for [addresses] distinct addresses — the sizing helper
   the paper suggests ("if an estimation of the total number of memory
   accesses ... is available, the signature size can also be estimated"). *)
let slots_for ~addresses ~target =
  if target <= 0.0 || target >= 1.0 then invalid_arg "Fpr_model.slots_for: target must be in (0,1)";
  if addresses <= 0 then 1
  else begin
    let n = float_of_int addresses in
    (* Solve 1 - (1 - 1/m)^n <= t  =>  m >= 1 / (1 - (1-t)^{1/n}) *)
    let m = 1.0 /. (1.0 -. exp (log1p (-.target) /. n)) in
    int_of_float (ceil m)
  end

(* Expected number of occupied slots after n inserts (balls in bins):
   m * P_fp.  Useful to sanity-check measured signature occupancy. *)
let expected_occupancy ~slots ~addresses = float_of_int slots *. p_fp ~slots ~addresses
