(** The analytical false-positive model of the paper's Eq. (2):
    [P_fp = 1 - (1 - 1/m)^n]. *)

val p_fp : slots:int -> addresses:int -> float
(** Probability that a membership check hits a colliding slot after
    inserting [addresses] distinct addresses into a [slots]-slot
    signature. *)

val slots_for : addresses:int -> target:float -> int
(** Smallest signature size keeping the predicted collision probability
    at or below [target]. *)

val expected_occupancy : slots:int -> addresses:int -> float
