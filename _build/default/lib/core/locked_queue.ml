(* Mutex-protected bounded queue with the same interface as Spsc_queue.

   This is the "8T_lock-based" configuration of the paper's Fig. 5: the
   paper identifies queue locking/unlocking as the dominant
   synchronization cost and reports a 1.3-1.6x speedup from going
   lock-free.  Keeping both implementations behind one interface lets the
   bench reproduce that comparison directly. *)

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
}

let create ~capacity ~dummy:_ =
  if capacity <= 0 then invalid_arg "Locked_queue.create: capacity must be positive";
  { q = Queue.create (); capacity; mutex = Mutex.create () }

let capacity t = t.capacity

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n

let is_empty t = length t = 0

let try_push t x =
  Mutex.lock t.mutex;
  let ok = Queue.length t.q < t.capacity in
  if ok then Queue.push x t.q;
  Mutex.unlock t.mutex;
  ok

let push_blocking t x =
  while not (try_push t x) do
    Domain.cpu_relax ()
  done

let try_pop t =
  Mutex.lock t.mutex;
  let r = Queue.take_opt t.q in
  Mutex.unlock t.mutex;
  r

let bytes t = (t.capacity + 8) * 8
