(** The parallel profiler (paper Sec. IV, Fig. 2): producer/worker
    pipeline over OCaml 5 domains with per-worker lock-free SPSC chunk
    queues (or the lock-based variant), modulo address distribution,
    hot-address redistribution and end-of-run merge of thread-local
    dependence maps. *)

type t

type result = {
  deps : Dep_store.t;  (** merged global dependence map *)
  regions : Region.t;
  chunks : int;
  redistributions : int;
  per_worker_events : int array;  (** feeds the makespan model *)
  per_worker_busy : float array;
  signature_bytes : int;
  queue_bytes : int;
  chunk_bytes : int;
  dispatch_bytes : int;
}

val create : ?account:Ddp_util.Mem_account.t * string -> Config.t -> t

val start : t -> unit
(** Spawn the worker domains. *)

val hooks : t -> Ddp_minir.Event.hooks
(** Producer-side instrumentation hooks; attach to an interpreter run
    between {!start} and {!finish}. *)

val finish : t -> result
(** Flush, stop workers, join domains, merge local dependence maps. *)

val profile :
  ?account:Ddp_util.Mem_account.t * string ->
  ?config:Config.t ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Ddp_minir.Symtab.t ->
  Ddp_minir.Ast.program ->
  result * Ddp_minir.Interp.stats
