(* Signature-slot payloads.

   The paper stores the source line of the last access in each signature
   slot (Sec. III-B); for multi-threaded targets the record is extended
   with a thread id (Sec. V).  We pack location (24 bits), variable id
   (20 bits) and thread id (10 bits) into one OCaml int.  A packed payload
   is never 0 because a real location always has line >= 1, so 0 serves as
   the empty-slot sentinel. *)

let thread_bits = 10
let var_bits = 20
let loc_bits = 24

let max_thread = (1 lsl thread_bits) - 1
let max_var = (1 lsl var_bits) - 1
let max_loc = (1 lsl loc_bits) - 1

let empty = 0

let pack ~loc ~var ~thread =
  if loc <= 0 || loc > max_loc then invalid_arg "Payload.pack: loc out of range";
  if var < 0 || var > max_var then invalid_arg "Payload.pack: var out of range";
  if thread < 0 || thread > max_thread then invalid_arg "Payload.pack: thread out of range";
  (loc lsl (var_bits + thread_bits)) lor (var lsl thread_bits) lor thread

(* Unchecked variant for the instrumentation hot path: callers guarantee
   ranges (the interpreter validates lines and thread counts up front). *)
let pack_unsafe ~loc ~var ~thread =
  (loc lsl (var_bits + thread_bits)) lor (var lsl thread_bits) lor thread

let loc p = p lsr (var_bits + thread_bits)
let var p = (p lsr thread_bits) land max_var
let thread p = p land max_thread
let is_empty p = p = 0
