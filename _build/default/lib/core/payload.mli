(** Packed signature-slot payloads: location (24 bits) + variable id
    (20 bits) + thread id (10 bits) in one int; 0 is the empty sentinel. *)

val empty : int
val is_empty : int -> bool

val pack : loc:Ddp_minir.Loc.t -> var:int -> thread:int -> int
(** Range-checked; raises [Invalid_argument]. *)

val pack_unsafe : loc:Ddp_minir.Loc.t -> var:int -> thread:int -> int
(** No range checks; for the instrumentation hot path. *)

val loc : int -> Ddp_minir.Loc.t
val var : int -> int
val thread : int -> int

val max_thread : int
val max_var : int
val max_loc : int
