(* The "perfect signature" of the paper's Sec. VI-A: every address has its
   own entry, so hash collisions — and therefore false positives and
   false negatives — cannot happen.  It is the accuracy baseline for
   Table I and the dependence oracle for the loop-parallelism comparison
   of Table II.

   Implemented as a hash table from address to (payload, time); unbounded
   memory, which is exactly the trade-off signatures avoid. *)

type entry = { mutable payload : int; mutable time : int }

type t = {
  tbl : (int, entry) Hashtbl.t;
  account : (Ddp_util.Mem_account.t * string) option;
}

(* Key + boxed entry + bucket: ~8 words. *)
let entry_bytes = 8 * 8

let create ?account () = { tbl = Hashtbl.create 4096; account }

let charge t n =
  match t.account with
  | Some (acct, cat) -> Ddp_util.Mem_account.add acct cat n
  | None -> ()

let probe t ~addr =
  match Hashtbl.find_opt t.tbl addr with Some e -> e.payload | None -> 0

let probe_time t ~addr =
  match Hashtbl.find_opt t.tbl addr with Some e -> e.time | None -> 0

let set t ~addr ~payload ~time =
  match Hashtbl.find_opt t.tbl addr with
  | Some e ->
    e.payload <- payload;
    e.time <- time
  | None ->
    Hashtbl.add t.tbl addr { payload; time };
    charge t entry_bytes

let remove t ~addr =
  if Hashtbl.mem t.tbl addr then begin
    Hashtbl.remove t.tbl addr;
    charge t (-entry_bytes)
  end

let clear t =
  charge t (-(entry_bytes * Hashtbl.length t.tbl));
  Hashtbl.reset t.tbl

let entries t = Hashtbl.length t.tbl
let bytes t = entry_bytes * Hashtbl.length t.tbl
