(** The "perfect signature" (paper Sec. VI-A): one entry per address, no
    collisions, no false positives/negatives — the accuracy baseline. *)

type t

val create : ?account:Ddp_util.Mem_account.t * string -> unit -> t
val probe : t -> addr:int -> int
val probe_time : t -> addr:int -> int
val set : t -> addr:int -> payload:int -> time:int -> unit
val remove : t -> addr:int -> unit
val clear : t -> unit
val entries : t -> int
val bytes : t -> int
