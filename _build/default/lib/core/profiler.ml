(* Unified façade: pick a mode, profile a program, get dependences,
   regions and a paper-style report.  This is the public entry point the
   examples and the CLI use; benches drive the individual profilers
   directly when they need finer control. *)

module Interp = Ddp_minir.Interp
module Symtab = Ddp_minir.Symtab

type mode =
  | Serial  (* signature store, inline Algorithm 1 (paper Sec. III) *)
  | Perfect  (* perfect signature: the accuracy oracle (Sec. VI-A) *)
  | Parallel  (* worker pipeline over domains (Sec. IV) *)

type outcome = {
  deps : Dep_store.t;
  regions : Region.t;
  symtab : Symtab.t;
  run_stats : Interp.stats;
  parallel : Parallel_profiler.result option;
  mt_delayed : int;  (* accesses that went through the MT reorder buffer *)
  elapsed : float;  (* wall-clock of the instrumented run, seconds *)
}

let report ?show_threads outcome =
  Report.render ?show_threads
    ~var_name:(Symtab.var_name outcome.symtab)
    ~deps:outcome.deps ~regions:outcome.regions ()

(* [mt] enables the Sec. V machinery for multi-threaded targets: the
   non-atomic push emulation plus worker-side timestamp race checks. *)
let profile ?(mode = Serial) ?(config = Config.default) ?(mt = false) ?account ?sched_seed
    ?input_seed prog =
  let config = if mt then { config with check_timestamps = true } else config in
  let symtab = Symtab.create () in
  let wrap hooks =
    if mt then begin
      let front = Mt_frontend.create ~window:config.reorder_window ~seed:config.seed hooks in
      (Mt_frontend.hooks front, Some front)
    end
    else (hooks, None)
  in
  match mode with
  | Serial | Perfect ->
    let p =
      if mode = Perfect then Serial_profiler.create_perfect ?account config
      else Serial_profiler.create_signature ?account config
    in
    let hooks, front = wrap p.Serial_profiler.hooks in
    let t0 = Ddp_util.Clock.now () in
    let run_stats = Interp.run ~hooks ?sched_seed ?input_seed ~symtab prog in
    Option.iter Mt_frontend.finish front;
    let elapsed = Ddp_util.Clock.now () -. t0 in
    {
      deps = p.Serial_profiler.deps;
      regions = p.Serial_profiler.regions;
      symtab;
      run_stats;
      parallel = None;
      mt_delayed = (match front with Some f -> Mt_frontend.delayed f | None -> 0);
      elapsed;
    }
  | Parallel ->
    let t = Parallel_profiler.create ?account config in
    Parallel_profiler.start t;
    let hooks, front = wrap (Parallel_profiler.hooks t) in
    let t0 = Ddp_util.Clock.now () in
    let run_stats = Interp.run ~hooks ?sched_seed ?input_seed ~symtab prog in
    Option.iter Mt_frontend.finish front;
    let result = Parallel_profiler.finish t in
    let elapsed = Ddp_util.Clock.now () -. t0 in
    {
      deps = result.Parallel_profiler.deps;
      regions = result.Parallel_profiler.regions;
      symtab;
      run_stats;
      parallel = Some result;
      mt_delayed = (match front with Some f -> Mt_frontend.delayed f | None -> 0);
      elapsed;
    }
