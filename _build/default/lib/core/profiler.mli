(** Unified profiling façade: the public entry point for examples and the
    CLI. *)

type mode =
  | Serial  (** signature store, inline Algorithm 1 *)
  | Perfect  (** perfect signature — the accuracy oracle *)
  | Parallel  (** producer/worker pipeline over domains *)

type outcome = {
  deps : Dep_store.t;
  regions : Region.t;
  symtab : Ddp_minir.Symtab.t;
  run_stats : Ddp_minir.Interp.stats;
  parallel : Parallel_profiler.result option;
  mt_delayed : int;
  elapsed : float;
}

val profile :
  ?mode:mode ->
  ?config:Config.t ->
  ?mt:bool ->
  ?account:Ddp_util.Mem_account.t * string ->
  ?sched_seed:int ->
  ?input_seed:int ->
  Ddp_minir.Ast.program ->
  outcome
(** [mt] enables the multi-threaded-target machinery (Sec. V):
    reorder-window push emulation and timestamp race flags. *)

val report : ?show_threads:bool -> outcome -> string
(** Paper-style (Fig. 1 / Fig. 3) textual report. *)
