(** Textual dependence report in the paper's Fig. 1 / Fig. 3 format. *)

val render :
  ?show_threads:bool ->
  var_name:(int -> string) ->
  deps:Dep_store.t ->
  regions:Region.t ->
  unit ->
  string

val kind_counts : Dep_store.t -> int * int * int * int * int
(** (RAW, WAR, WAW, INIT, race-flagged) distinct dependence counts. *)
