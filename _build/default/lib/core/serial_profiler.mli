(** The serial profiler (paper Sec. III): Algorithm 1 applied inline to
    one run's instrumentation stream, over either the real or the perfect
    signature. *)

type t = {
  hooks : Ddp_minir.Event.hooks;  (** attach to an interpreter run *)
  deps : Dep_store.t;
  regions : Region.t;
  set_observer : Algo.dep_observer -> unit;
  store_bytes : unit -> int;
  release : unit -> unit;  (** return accounted signature bytes *)
}

val create_signature : ?account:Ddp_util.Mem_account.t * string -> Config.t -> t
val create_perfect : ?account:Ddp_util.Mem_account.t * string -> Config.t -> t

val profile :
  ?account:Ddp_util.Mem_account.t * string ->
  ?config:Config.t ->
  ?perfect:bool ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Ddp_minir.Symtab.t ->
  Ddp_minir.Ast.program ->
  t * Ddp_minir.Interp.stats
(** Profile one program end to end. *)
