lib/minir/ast.ml: List Value
