lib/minir/ast.mli: Value
