lib/minir/builder.ml: Ast List Value
