lib/minir/event.ml: List Loc
