lib/minir/event.mli: Loc
