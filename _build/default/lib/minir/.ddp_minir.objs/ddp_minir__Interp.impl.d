lib/minir/interp.ml: Array Ast Ddp_util Effect Event Float Fun Hashtbl List Loc Map Memory Printf String Symtab Value
