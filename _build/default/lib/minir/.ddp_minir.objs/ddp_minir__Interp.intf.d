lib/minir/interp.mli: Ast Event Symtab
