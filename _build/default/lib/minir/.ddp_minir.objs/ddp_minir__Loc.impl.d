lib/minir/loc.ml: Format Int Printf
