lib/minir/loc.mli: Format
