lib/minir/memory.ml: Array Hashtbl Value
