lib/minir/memory.mli: Value
