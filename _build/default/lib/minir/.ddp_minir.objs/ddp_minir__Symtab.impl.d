lib/minir/symtab.ml: Ddp_util
