lib/minir/symtab.mli: Ddp_util
