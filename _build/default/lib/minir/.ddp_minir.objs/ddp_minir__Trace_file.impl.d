lib/minir/trace_file.ml: Ddp_util Event Interp List Printf Scanf String Symtab
