lib/minir/trace_file.mli: Ast Event Symtab
