lib/minir/value.ml: Float Format Printf
