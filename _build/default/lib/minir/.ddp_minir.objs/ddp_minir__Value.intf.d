lib/minir/value.mli: Format
