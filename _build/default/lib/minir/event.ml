(* Instrumentation events.

   The interpreter plays the role of the paper's LLVM instrumentation
   pass: every load/store, loop-region boundary and allocation event is
   delivered through a [hooks] record.  Hooks are plain labelled functions
   (not a variant) so the hot path allocates nothing. *)

type region_kind = Loop

type hooks = {
  on_read : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_write : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_region_enter : loc:Loc.t -> kind:region_kind -> thread:int -> time:int -> unit;
  on_region_iter : loc:Loc.t -> thread:int -> time:int -> unit;
  on_region_exit :
    loc:Loc.t -> end_loc:Loc.t -> kind:region_kind -> iterations:int -> thread:int -> time:int -> unit;
  on_alloc : base:int -> len:int -> var:int -> unit;
  on_free : base:int -> len:int -> var:int -> unit;
  on_call : loc:Loc.t -> func:int -> thread:int -> time:int -> unit;
      (* [loc] is the call site, [func] the interned procedure name *)
  on_return : func:int -> thread:int -> time:int -> unit;
  on_thread_end : thread:int -> unit;
}

let null =
  {
    on_read = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> ());
    on_write = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> ());
    on_region_enter = (fun ~loc:_ ~kind:_ ~thread:_ ~time:_ -> ());
    on_region_iter = (fun ~loc:_ ~thread:_ ~time:_ -> ());
    on_region_exit = (fun ~loc:_ ~end_loc:_ ~kind:_ ~iterations:_ ~thread:_ ~time:_ -> ());
    on_alloc = (fun ~base:_ ~len:_ ~var:_ -> ());
    on_free = (fun ~base:_ ~len:_ ~var:_ -> ());
    on_call = (fun ~loc:_ ~func:_ ~thread:_ ~time:_ -> ());
    on_return = (fun ~func:_ ~thread:_ ~time:_ -> ());
    on_thread_end = (fun ~thread:_ -> ());
  }

(* Concrete event values, used by tests and by trace-replay oracles. *)
type t =
  | Read of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Write of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Region_enter of { loc : Loc.t; thread : int; time : int }
  | Region_iter of { loc : Loc.t; thread : int; time : int }
  | Region_exit of { loc : Loc.t; end_loc : Loc.t; iterations : int; thread : int; time : int }
  | Alloc of { base : int; len : int; var : int }
  | Free of { base : int; len : int; var : int }
  | Call of { loc : Loc.t; func : int; thread : int; time : int }
  | Return of { func : int; thread : int; time : int }
  | Thread_end of { thread : int }

let collector () =
  let acc = ref [] in
  let push e = acc := e :: !acc in
  let hooks =
    {
      on_read =
        (fun ~addr ~loc ~var ~thread ~time ~locked ->
          push (Read { addr; loc; var; thread; time; locked }));
      on_write =
        (fun ~addr ~loc ~var ~thread ~time ~locked ->
          push (Write { addr; loc; var; thread; time; locked }));
      on_region_enter = (fun ~loc ~kind:Loop ~thread ~time -> push (Region_enter { loc; thread; time }));
      on_region_iter = (fun ~loc ~thread ~time -> push (Region_iter { loc; thread; time }));
      on_region_exit =
        (fun ~loc ~end_loc ~kind:Loop ~iterations ~thread ~time ->
          push (Region_exit { loc; end_loc; iterations; thread; time }));
      on_alloc = (fun ~base ~len ~var -> push (Alloc { base; len; var }));
      on_free = (fun ~base ~len ~var -> push (Free { base; len; var }));
      on_call = (fun ~loc ~func ~thread ~time -> push (Call { loc; func; thread; time }));
      on_return = (fun ~func ~thread ~time -> push (Return { func; thread; time }));
      on_thread_end = (fun ~thread -> push (Thread_end { thread }));
    }
  in
  (hooks, fun () -> List.rev !acc)

(* Replay a concrete event list into a hooks record: lets oracles and
   profilers consume recorded traces interchangeably with live runs. *)
let replay hooks events =
  List.iter
    (fun e ->
      match e with
      | Read { addr; loc; var; thread; time; locked } ->
        hooks.on_read ~addr ~loc ~var ~thread ~time ~locked
      | Write { addr; loc; var; thread; time; locked } ->
        hooks.on_write ~addr ~loc ~var ~thread ~time ~locked
      | Region_enter { loc; thread; time } -> hooks.on_region_enter ~loc ~kind:Loop ~thread ~time
      | Region_iter { loc; thread; time } -> hooks.on_region_iter ~loc ~thread ~time
      | Region_exit { loc; end_loc; iterations; thread; time } ->
        hooks.on_region_exit ~loc ~end_loc ~kind:Loop ~iterations ~thread ~time
      | Alloc { base; len; var } -> hooks.on_alloc ~base ~len ~var
      | Free { base; len; var } -> hooks.on_free ~base ~len ~var
      | Call { loc; func; thread; time } -> hooks.on_call ~loc ~func ~thread ~time
      | Return { func; thread; time } -> hooks.on_return ~func ~thread ~time
      | Thread_end { thread } -> hooks.on_thread_end ~thread)
    events
