(** Instrumentation events emitted by the MiniIR interpreter.

    This is the contract between the "instrumented target program" (the
    interpreter, standing in for the paper's LLVM pass) and every
    profiler.  Hooks are plain functions so the hot path allocates
    nothing. *)

type region_kind = Loop

type hooks = {
  on_read : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_write : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_region_enter : loc:Loc.t -> kind:region_kind -> thread:int -> time:int -> unit;
  on_region_iter : loc:Loc.t -> thread:int -> time:int -> unit;
  on_region_exit :
    loc:Loc.t -> end_loc:Loc.t -> kind:region_kind -> iterations:int -> thread:int -> time:int -> unit;
  on_alloc : base:int -> len:int -> var:int -> unit;
  on_free : base:int -> len:int -> var:int -> unit;
  on_call : loc:Loc.t -> func:int -> thread:int -> time:int -> unit;
      (** [loc] is the call site, [func] the interned procedure name *)
  on_return : func:int -> thread:int -> time:int -> unit;
  on_thread_end : thread:int -> unit;
}

val null : hooks
(** Discards everything: the "uninstrumented" baseline run. *)

(** Concrete events, for tests and replay oracles. *)
type t =
  | Read of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Write of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Region_enter of { loc : Loc.t; thread : int; time : int }
  | Region_iter of { loc : Loc.t; thread : int; time : int }
  | Region_exit of { loc : Loc.t; end_loc : Loc.t; iterations : int; thread : int; time : int }
  | Alloc of { base : int; len : int; var : int }
  | Free of { base : int; len : int; var : int }
  | Call of { loc : Loc.t; func : int; thread : int; time : int }
  | Return of { func : int; thread : int; time : int }
  | Thread_end of { thread : int }

val collector : unit -> hooks * (unit -> t list)
(** A hooks record that records events, and a function returning them in
    program order. *)

val replay : hooks -> t list -> unit
(** Feed a recorded trace into a hooks record. *)
