(** The instrumenting MiniIR interpreter — the reproduction's analogue of
    the paper's LLVM instrumentation pass.

    Simulated threads are interleaved by a seeded deterministic scheduler
    built on OCaml 5 effects, so profiled traces are replayable. *)

exception Runtime_error of string

type stats = {
  reads : int;
  writes : int;
  accesses : int;  (** reads + writes: "#accesses" of Table I *)
  addresses : int;  (** distinct cells allocated: "#addresses" of Table I *)
  final_time : int;
  lines : int;  (** numbered source lines: the "LOC" analogue *)
}

val run :
  ?hooks:Event.hooks ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Symtab.t ->
  Ast.program ->
  stats
(** Execute a program, delivering instrumentation events to [hooks]
    (default: none — the "uninstrumented" baseline).  [sched_seed] drives
    the thread interleaving, [input_seed] the [rand]/[rand_int]
    intrinsics.  Numbers the program's lines as a side effect. *)

val trace :
  ?sched_seed:int -> ?input_seed:int -> ?symtab:Symtab.t -> Ast.program -> Event.t list * stats
(** Run and collect the full event trace (tests and oracles only — the
    trace of a real workload is large). *)
