(* Source locations, packed into a single int.

   The paper prints locations as "file:line" (e.g. "1:60").  We pack the
   file id into the high bits and the line into the low 16 so a location
   fits the 24-bit field of a signature-slot payload (see
   Ddp_core.Sig_store). *)

type t = int

let line_bits = 16
let line_mask = (1 lsl line_bits) - 1
let max_line = line_mask
let max_file = (1 lsl 8) - 1

let none = 0

let make ~file ~line =
  if file < 0 || file > max_file then invalid_arg "Loc.make: file id out of range";
  if line <= 0 || line > max_line then invalid_arg "Loc.make: line out of range";
  (file lsl line_bits) lor line

let file loc = loc lsr line_bits
let line loc = loc land line_mask
let is_none loc = loc = 0

let to_string loc =
  if is_none loc then "*" else Printf.sprintf "%d:%d" (file loc) (line loc)

let pp ppf loc = Format.pp_print_string ppf (to_string loc)

(* Order by file, then line: the order in which the reporter lists sinks. *)
let compare = Int.compare
