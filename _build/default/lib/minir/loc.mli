(** Source locations packed into a single int ("file:line", as printed by
    the paper's profiler, e.g. ["1:60"]).

    The packed form fits the 24-bit location field of a signature-slot
    payload. *)

type t = int

val none : t
(** The absent location, printed ["*"] (used by INIT dependences). *)

val make : file:int -> line:int -> t
(** Raises [Invalid_argument] if [file > 255] or [line] outside
    [\[1, 65535\]]. *)

val file : t -> int
val line : t -> int
val is_none : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int

val max_line : int
val max_file : int
