(* The target program's flat address space.

   Addresses are simple cell indices.  Freed blocks are kept on per-size
   free lists and reused first, so address reuse across variable lifetimes
   actually happens — this is what makes the profiler's variable-lifetime
   analysis (removal of freed addresses from signatures, Sec. III-B of the
   paper) observable: without removal, a reused address would inherit the
   dead variable's access history and produce false dependences. *)

type t = {
  mutable cells : Value.t array;
  mutable top : int;  (* bump pointer; also the address-space high-water mark *)
  free_lists : (int, int list ref) Hashtbl.t;  (* block size -> freed bases *)
  mutable live_blocks : int;
}

let create ?(capacity = 1024) () =
  {
    cells = Array.make (max capacity 1) Value.zero;
    top = 0;
    free_lists = Hashtbl.create 16;
    live_blocks = 0;
  }

let high_water t = t.top

let ensure t n =
  let cap = Array.length t.cells in
  if t.top + n > cap then begin
    let cap' = max (2 * cap) (t.top + n) in
    let cells = Array.make cap' Value.zero in
    Array.blit t.cells 0 cells 0 t.top;
    t.cells <- cells
  end

let alloc ?(reuse = true) t n =
  if n <= 0 then invalid_arg "Memory.alloc: size must be positive";
  t.live_blocks <- t.live_blocks + 1;
  let reused =
    if not reuse then None
    else
      match Hashtbl.find_opt t.free_lists n with
      | Some ({ contents = base :: rest } as cell) ->
        cell := rest;
        Some base
      | Some { contents = [] } | None -> None
  in
  match reused with
  | Some base ->
    Array.fill t.cells base n Value.zero;
    base
  | None ->
    ensure t n;
    let base = t.top in
    t.top <- t.top + n;
    base

let free t ~base ~len =
  if len <= 0 then invalid_arg "Memory.free: size must be positive";
  t.live_blocks <- t.live_blocks - 1;
  match Hashtbl.find_opt t.free_lists len with
  | Some cell -> cell := base :: !cell
  | None -> Hashtbl.add t.free_lists len (ref [ base ])

let get t addr =
  if addr < 0 || addr >= t.top then invalid_arg "Memory.get: address out of range";
  t.cells.(addr)

let set t addr v =
  if addr < 0 || addr >= t.top then invalid_arg "Memory.set: address out of range";
  t.cells.(addr) <- v

let live_blocks t = t.live_blocks
