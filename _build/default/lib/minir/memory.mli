(** The target program's flat address space.

    Freed blocks are reused (per-size free lists), so address reuse across
    variable lifetimes occurs and the profiler's variable-lifetime
    analysis has observable effect. *)

type t

val create : ?capacity:int -> unit -> t

val alloc : ?reuse:bool -> t -> int -> int
(** [alloc t n] returns the base address of a zeroed block of [n] cells,
    reusing a freed block of the same size when available (unless
    [~reuse:false]). *)

val free : t -> base:int -> len:int -> unit

val get : t -> int -> Value.t
val set : t -> int -> Value.t -> unit

val high_water : t -> int
(** Number of distinct cells ever allocated: the "#addresses" column of
    the paper's Table I. *)

val live_blocks : t -> int
