(* Symbol table shared between the interpreter (which emits events with
   interned ids) and the reporters (which need names back).  One instance
   per profiling run. *)

type t = {
  vars : Ddp_util.Intern.t;
  files : Ddp_util.Intern.t;
}

let create () =
  { vars = Ddp_util.Intern.create (); files = Ddp_util.Intern.create () }

let var t name = Ddp_util.Intern.intern t.vars name
let var_name t id = Ddp_util.Intern.name t.vars id

let file t name =
  let id = Ddp_util.Intern.intern t.files name in
  (* File ids are printed and packed; id 0 is reserved so the first file is
     "1", matching the paper's "1:60" style. *)
  id + 1

let file_name t id =
  if id = 0 then "*" else Ddp_util.Intern.name t.files (id - 1)
