(** Symbol table shared by one profiling run: interns variable names and
    file (program) names so events can carry small integer ids. *)

type t = {
  vars : Ddp_util.Intern.t;
  files : Ddp_util.Intern.t;
}

val create : unit -> t

val var : t -> string -> int
val var_name : t -> int -> string

val file : t -> string -> int
(** File ids start at 1; 0 is reserved for "no location". *)

val file_name : t -> int -> string
