(* Runtime values of MiniIR: 63-bit integers and floats, with C-like
   promotion (int op float -> float).  Bitwise and shift operators require
   integer operands. *)

type t =
  | I of int
  | F of float

let zero = I 0

let to_float = function I n -> float_of_int n | F x -> x
let to_int = function I n -> n | F x -> int_of_float x
let truth = function I n -> n <> 0 | F x -> x <> 0.0
let of_bool b = I (if b then 1 else 0)

let equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | F x, F y -> x = y
  | (I _ | F _), _ -> to_float a = to_float b

let pp ppf = function
  | I n -> Format.fprintf ppf "%d" n
  | F x -> Format.fprintf ppf "%g" x

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Min
  | Max

type unop = Neg | Not | Bnot

let int_only op =
  invalid_arg (Printf.sprintf "Value: operator %s requires integer operands" op)

let binop op a b =
  match (op, a, b) with
  | Add, I x, I y -> I (x + y)
  | Add, _, _ -> F (to_float a +. to_float b)
  | Sub, I x, I y -> I (x - y)
  | Sub, _, _ -> F (to_float a -. to_float b)
  | Mul, I x, I y -> I (x * y)
  | Mul, _, _ -> F (to_float a *. to_float b)
  | Div, I x, I y -> if y = 0 then invalid_arg "Value: division by zero" else I (x / y)
  | Div, _, _ -> F (to_float a /. to_float b)
  | Mod, I x, I y -> if y = 0 then invalid_arg "Value: modulo by zero" else I (x mod y)
  | Mod, _, _ -> F (Float.rem (to_float a) (to_float b))
  | Band, I x, I y -> I (x land y)
  | Band, _, _ -> int_only "land"
  | Bor, I x, I y -> I (x lor y)
  | Bor, _, _ -> int_only "lor"
  | Bxor, I x, I y -> I (x lxor y)
  | Bxor, _, _ -> int_only "lxor"
  | Shl, I x, I y -> I (x lsl y)
  | Shl, _, _ -> int_only "lsl"
  | Shr, I x, I y -> I (x lsr y)
  | Shr, _, _ -> int_only "lsr"
  | Lt, I x, I y -> of_bool (x < y)
  | Lt, _, _ -> of_bool (to_float a < to_float b)
  | Le, I x, I y -> of_bool (x <= y)
  | Le, _, _ -> of_bool (to_float a <= to_float b)
  | Gt, I x, I y -> of_bool (x > y)
  | Gt, _, _ -> of_bool (to_float a > to_float b)
  | Ge, I x, I y -> of_bool (x >= y)
  | Ge, _, _ -> of_bool (to_float a >= to_float b)
  | Eq, _, _ -> of_bool (equal a b)
  | Ne, _, _ -> of_bool (not (equal a b))
  | Min, I x, I y -> I (min x y)
  | Min, _, _ -> F (Float.min (to_float a) (to_float b))
  | Max, I x, I y -> I (max x y)
  | Max, _, _ -> F (Float.max (to_float a) (to_float b))

let unop op a =
  match (op, a) with
  | Neg, I x -> I (-x)
  | Neg, F x -> F (-.x)
  | Not, _ -> of_bool (not (truth a))
  | Bnot, I x -> I (lnot x)
  | Bnot, F _ -> int_only "lnot"
