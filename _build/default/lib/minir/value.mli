(** MiniIR runtime values: integers and floats with C-like promotion. *)

type t =
  | I of int
  | F of float

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Min
  | Max

type unop = Neg | Not | Bnot

val zero : t
val to_float : t -> float
val to_int : t -> int
val truth : t -> bool
val of_bool : bool -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val binop : binop -> t -> t -> t
(** Raises [Invalid_argument] on division by zero or bitwise ops over
    floats. *)

val unop : unop -> t -> t
