lib/util/clock.mli:
