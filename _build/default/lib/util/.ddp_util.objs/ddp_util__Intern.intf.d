lib/util/intern.mli:
