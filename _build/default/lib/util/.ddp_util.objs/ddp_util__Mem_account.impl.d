lib/util/mem_account.ml: Atomic Format Hashtbl List Mutex
