lib/util/mem_account.mli: Format
