lib/util/rng.mli:
