lib/util/stats.mli:
