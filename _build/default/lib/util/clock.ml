(* Wall-clock timing.  [Unix.gettimeofday] is adequate for the
   millisecond-scale intervals measured here; benches that need finer
   resolution use bechamel's monotonic clock directly. *)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let time_unit f =
  let t0 = now () in
  f ();
  now () -. t0
