(** Wall-clock timing helpers. *)

val now : unit -> float
(** Seconds since the epoch (wall clock). *)

val time : (unit -> 'a) -> 'a * float
(** Result and elapsed seconds. *)

val time_unit : (unit -> unit) -> float
(** Elapsed seconds of a unit computation. *)
