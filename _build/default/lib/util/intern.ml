(* String interner: bidirectional mapping between strings and dense ids.

   The profiler packs identifiers (variable names, source locations) into
   machine words stored in signature slots, so every name must be reduced
   to a small integer.  Ids are dense, starting at 0, and stable for the
   lifetime of the table. *)

type t = {
  tbl : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable next : int;
}

let create ?(capacity = 64) () =
  { tbl = Hashtbl.create capacity; names = Array.make (max capacity 1) ""; next = 0 }

let size t = t.next

let grow t =
  let cap = Array.length t.names in
  if t.next >= cap then begin
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names
  end

let intern t name =
  match Hashtbl.find_opt t.tbl name with
  | Some id -> id
  | None ->
    let id = t.next in
    grow t;
    t.names.(id) <- name;
    t.next <- id + 1;
    Hashtbl.add t.tbl name id;
    id

let find_opt t name = Hashtbl.find_opt t.tbl name

let name t id =
  if id < 0 || id >= t.next then invalid_arg "Intern.name: id out of range";
  t.names.(id)

let mem t name = Hashtbl.mem t.tbl name

let iter t f =
  for id = 0 to t.next - 1 do
    f id t.names.(id)
  done
