(** Bidirectional string interner with dense integer ids.

    Used to reduce variable names and source locations to small integers
    that fit in packed signature-slot payloads. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty table. *)

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating the next dense id on
    first sight. *)

val find_opt : t -> string -> int option
(** Id of an already-interned string, if any. *)

val name : t -> int -> string
(** Inverse of {!intern}.  Raises [Invalid_argument] on unknown ids. *)

val mem : t -> string -> bool

val size : t -> int
(** Number of interned strings (also the next id to be allocated). *)

val iter : t -> (int -> string -> unit) -> unit
(** Iterate over all (id, name) pairs in id order. *)
