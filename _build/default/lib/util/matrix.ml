(* Dense float matrices with an ASCII heatmap renderer, used for the
   communication-pattern figures (paper Fig. 9). *)

type t = {
  rows : int;
  cols : int;
  data : float array;
}

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows t = t.rows
let cols t = t.cols

let check t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then invalid_arg "Matrix: index out of range"

let get t r c =
  check t r c;
  t.data.((r * t.cols) + c)

let set t r c v =
  check t r c;
  t.data.((r * t.cols) + c) <- v

let add t r c v =
  check t r c;
  let i = (r * t.cols) + c in
  t.data.(i) <- t.data.(i) +. v

let max_value t = Array.fold_left max 0.0 t.data

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix.map2: shape mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let frobenius_distance a b =
  let d = map2 (fun x y -> (x -. y) *. (x -. y)) a b in
  sqrt (Array.fold_left ( +. ) 0.0 d.data)

let normalize t =
  let m = max_value t in
  if m = 0.0 then { t with data = Array.copy t.data }
  else { t with data = Array.map (fun x -> x /. m) t.data }

(* Ten intensity levels from blank to saturated, matching the grey scale of
   the paper's figure. *)
let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let shade_of_intensity v =
  let v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v in
  let i = int_of_float (v *. 9.0 +. 0.5) in
  shades.(i)

let pp_heatmap ?(row_label = "producer") ?(col_label = "consumer") ppf t =
  let m = max_value t in
  Format.fprintf ppf "     %s ->@." col_label;
  Format.fprintf ppf "     ";
  for c = 0 to t.cols - 1 do
    Format.fprintf ppf "%3d " c
  done;
  Format.fprintf ppf "@.";
  for r = 0 to t.rows - 1 do
    Format.fprintf ppf "%3d  " r;
    for c = 0 to t.cols - 1 do
      let v = if m = 0.0 then 0.0 else get t r c /. m in
      let ch = shade_of_intensity v in
      Format.fprintf ppf " %c%c " ch ch
    done;
    if r = 0 then Format.fprintf ppf "  (%s)" row_label;
    Format.fprintf ppf "@."
  done;
  Format.fprintf ppf "     scale: '%c' = 0  ..  '%c' = %.0f@." shades.(0) shades.(9) m
