(** Dense float matrices with an ASCII heatmap renderer (for the
    communication-pattern experiment, paper Fig. 9). *)

type t

val create : rows:int -> cols:int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add : t -> int -> int -> float -> unit
val max_value : t -> float

val normalize : t -> t
(** Scale so the maximum entry is 1.0 (identity on the zero matrix). *)

val frobenius_distance : t -> t -> float
(** Raises [Invalid_argument] on shape mismatch. *)

val shade_of_intensity : float -> char
(** Map an intensity in [\[0., 1.\]] (clamped) to a ten-level ASCII shade. *)

val pp_heatmap : ?row_label:string -> ?col_label:string -> Format.formatter -> t -> unit
