(* Explicit byte accounting of profiler data structures.

   The paper measures maximum resident set size with /usr/bin/time -v.  On
   a shared managed heap that number is dominated by GC policy, so the
   reproduction instead counts the bytes of every structure the profiler
   allocates (signatures, queues, chunk pools, dependence maps, access
   statistics).  Counters are atomic because worker domains allocate
   dependence-map entries concurrently.  A high-water mark is maintained
   per category, mirroring "maximum" RSS. *)

type counter = {
  current : int Atomic.t;
  peak : int Atomic.t;
}

type t = {
  mutex : Mutex.t;
  tbl : (string, counter) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); tbl = Hashtbl.create 16 }

let counter t category =
  match Hashtbl.find_opt t.tbl category with
  | Some c -> c
  | None ->
    Mutex.lock t.mutex;
    let c =
      match Hashtbl.find_opt t.tbl category with
      | Some c -> c
      | None ->
        let c = { current = Atomic.make 0; peak = Atomic.make 0 } in
        Hashtbl.add t.tbl category c;
        c
    in
    Mutex.unlock t.mutex;
    c

let rec raise_peak c v =
  let p = Atomic.get c.peak in
  if v > p && not (Atomic.compare_and_set c.peak p v) then raise_peak c v

let add t category bytes =
  let c = counter t category in
  let v = Atomic.fetch_and_add c.current bytes + bytes in
  if bytes > 0 then raise_peak c v

let sub t category bytes = add t category (-bytes)

let current t category =
  match Hashtbl.find_opt t.tbl category with
  | Some c -> Atomic.get c.current
  | None -> 0

let peak t category =
  match Hashtbl.find_opt t.tbl category with
  | Some c -> Atomic.get c.peak
  | None -> 0

let fold t f init =
  Hashtbl.fold
    (fun cat c acc -> f cat ~current:(Atomic.get c.current) ~peak:(Atomic.get c.peak) acc)
    t.tbl init

let total_current t = fold t (fun _ ~current ~peak:_ acc -> acc + current) 0
let total_peak t = fold t (fun _ ~current:_ ~peak acc -> acc + peak) 0

let pp_bytes ppf n =
  let f = float_of_int n in
  if n >= 1 lsl 30 then Format.fprintf ppf "%.2f GiB" (f /. 1073741824.0)
  else if n >= 1 lsl 20 then Format.fprintf ppf "%.2f MiB" (f /. 1048576.0)
  else if n >= 1 lsl 10 then Format.fprintf ppf "%.2f KiB" (f /. 1024.0)
  else Format.fprintf ppf "%d B" n

let report ppf t =
  let rows = fold t (fun cat ~current ~peak acc -> (cat, current, peak) :: acc) [] in
  let rows = List.sort compare rows in
  List.iter
    (fun (cat, cur, peak) ->
      Format.fprintf ppf "  %-24s current %a, peak %a@." cat pp_bytes cur pp_bytes peak)
    rows;
  Format.fprintf ppf "  %-24s current %a, peak %a@." "TOTAL" pp_bytes (total_current t)
    pp_bytes (total_peak t)
