(** Explicit, categorized byte accounting with per-category peaks.

    Substitutes for the paper's max-RSS measurements (see DESIGN.md):
    every profiler data structure registers its footprint here, giving a
    deterministic memory figure independent of GC policy. *)

type t

val create : unit -> t

val add : t -> string -> int -> unit
(** [add t category bytes] records an allocation; thread-safe. *)

val sub : t -> string -> int -> unit
(** Record a release. *)

val current : t -> string -> int
val peak : t -> string -> int

val total_current : t -> int
val total_peak : t -> int

val fold : t -> (string -> current:int -> peak:int -> 'a -> 'a) -> 'a -> 'a

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable byte count. *)

val report : Format.formatter -> t -> unit
(** Per-category table plus totals. *)
