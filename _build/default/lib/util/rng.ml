(* Deterministic pseudo-random number generator (splitmix64).

   All randomness in the reproduction — workload inputs, the MiniIR thread
   scheduler, the reorder window of the multi-threaded push layer — flows
   through explicitly seeded instances so every experiment is replayable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step; the golden-gamma increment guarantees a full period. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (next_int64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 random bits mapped to [0, bound) *)
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))
