(** Deterministic splitmix64 pseudo-random number generator.

    Every source of randomness in the reproduction is an explicitly seeded
    instance of this module, so experiments are bit-replayable. *)

type t

val create : int -> t
(** [create seed] returns a generator with the given seed. *)

val copy : t -> t

val bits : t -> int
(** A non-negative pseudo-random integer with 62 usable bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises on [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0., bound)]. *)

val bool : t -> bool

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for per-thread streams). *)
