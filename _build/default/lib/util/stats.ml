(* Small descriptive-statistics helpers used by benches and load-balance
   diagnostics. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. log (max x 1e-300)) a;
    exp (!acc /. float_of_int n)
  end

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) a;
    sqrt (!acc /. float_of_int (n - 1))
  end

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty";
  let lo = ref a.(0) and hi = ref a.(0) in
  Array.iter
    (fun x ->
      if x < !lo then lo := x;
      if x > !hi then hi := x)
    a;
  (!lo, !hi)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

(* Imbalance of a load vector: max over mean.  1.0 means perfectly even. *)
let imbalance loads =
  let m = mean loads in
  if m = 0.0 then 1.0 else snd (min_max loads) /. m
