(** Descriptive statistics for benchmarks and load-balance diagnostics. *)

val mean : float array -> float
val geomean : float array -> float
val stddev : float array -> float

val min_max : float array -> float * float
(** Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile a p] is the linearly interpolated [p]-th percentile,
    [p] in [\[0., 100.\]].  Raises on an empty array. *)

val imbalance : float array -> float
(** Max-over-mean of a load vector; 1.0 is perfectly balanced. *)
