lib/workloads/nas_bt.ml: Ddp_minir Wl
