lib/workloads/nas_cg.ml: Ddp_minir Wl
