lib/workloads/nas_ep.ml: Ddp_minir Wl
