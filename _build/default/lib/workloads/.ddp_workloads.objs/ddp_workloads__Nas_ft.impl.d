lib/workloads/nas_ft.ml: Ddp_minir Wl
