lib/workloads/nas_is.ml: Ddp_minir Wl
