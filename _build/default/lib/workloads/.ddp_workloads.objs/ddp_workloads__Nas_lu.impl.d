lib/workloads/nas_lu.ml: Ddp_minir Wl
