lib/workloads/nas_mg.ml: Ddp_minir Wl
