lib/workloads/nas_sp.ml: Ddp_minir Wl
