lib/workloads/registry.mli: Wl
