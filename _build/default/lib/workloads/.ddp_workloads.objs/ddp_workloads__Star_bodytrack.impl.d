lib/workloads/star_bodytrack.ml: Ddp_minir Printf Wl
