lib/workloads/star_cray.ml: Ddp_minir Printf Wl
