lib/workloads/star_h264dec.ml: Ddp_minir Printf Wl
