lib/workloads/star_kmeans.ml: Ddp_minir Printf Wl
