lib/workloads/star_md5.ml: Ddp_minir Printf Wl
