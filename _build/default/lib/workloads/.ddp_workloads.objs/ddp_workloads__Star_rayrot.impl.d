lib/workloads/star_rayrot.ml: Ddp_minir Printf Wl
