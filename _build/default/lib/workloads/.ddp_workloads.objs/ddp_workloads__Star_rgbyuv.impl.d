lib/workloads/star_rgbyuv.ml: Ddp_minir Printf Wl
