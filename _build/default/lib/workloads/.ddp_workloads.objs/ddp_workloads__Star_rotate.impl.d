lib/workloads/star_rotate.ml: Ddp_minir Printf Wl
