lib/workloads/star_rotcc.ml: Ddp_minir Printf Wl
