lib/workloads/star_streamcluster.ml: Ddp_minir Printf Wl
