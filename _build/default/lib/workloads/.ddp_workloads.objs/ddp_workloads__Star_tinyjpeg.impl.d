lib/workloads/star_tinyjpeg.ml: Ddp_minir Printf Wl
