lib/workloads/water_spatial.ml: Array Ddp_minir List Printf Wl
