lib/workloads/wl.ml: Ddp_minir List
