lib/workloads/wl.mli: Ddp_minir
