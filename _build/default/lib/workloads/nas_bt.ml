(* BT — block tridiagonal solver (NAS).  ADI-style structure on an NxN
   grid: RHS computation from a 5-point stencil (parallel over all
   cells), then line solves — a forward elimination and backward
   substitution along each row (x-sweep) and each column (y-sweep).  The
   sweeps are carried *along* the line but independent *across* lines, so
   the outer line loops are annotated parallel and the inner substitution
   loops are serial — the dependence split BT's OpenMP version exploits. *)

module B = Ddp_minir.Builder

let seq ~scale =
  let n = 100 * scale in
  let cells = n * n in
  let steps = 2 in
  let at r c = B.((r *: i n) +: c) in
  B.program ~name:"bt"
    [
      B.arr "u" (B.i cells);
      B.arr "rhs" (B.i cells);
      B.arr "lhs" (B.i cells);
      Wl.fill_rand_loop "u" cells;
      Wl.zero_loop "rhs" cells;
      B.for_ "step" (B.i 0) (B.i steps) (fun _ ->
          [
            (* RHS from 5-point stencil: pure gather, parallel. *)
            B.for_ ~parallel:true "rr" (B.i 1) (B.i (n - 1)) (fun r ->
                [
                  B.for_ "rc" (B.i 1) (B.i (n - 1)) (fun c ->
                      [
                        B.store "rhs" (at r c)
                          B.(
                            idx "u" (at r c)
                            -: (f 0.25
                               *: (idx "u" (at (r -: i 1) c)
                                  +: idx "u" (at (r +: i 1) c)
                                  +: idx "u" (at r (c -: i 1))
                                  +: idx "u" (at r (c +: i 1)))));
                      ]);
                ]);
            (* x-sweep: rows independent (parallel); along a row the
               elimination/substitution is carried (serial inner loops). *)
            B.for_ ~parallel:true "xr" (B.i 0) (B.i n) (fun r ->
                [
                  B.for_ "fe" (B.i 1) (B.i n) (fun c ->
                      [
                        B.store "lhs" (at r c)
                          B.(idx "rhs" (at r c) +: (f 0.4 *: idx "lhs" (at r (c -: i 1))));
                      ]);
                  B.for_ "bsub" (B.i 1) (B.i n) (fun c ->
                      [
                        B.local "cc" B.(i n -: i 1 -: c);
                        B.store "lhs" (at r (B.v "cc"))
                          B.(idx "lhs" (at r (v "cc")) +: (f 0.3 *: idx "lhs" (at r (v "cc" +: i 1))));
                      ]);
                ]);
            (* y-sweep: columns independent. *)
            B.for_ ~parallel:true "yc" (B.i 0) (B.i n) (fun c ->
                [
                  B.for_ "fey" (B.i 1) (B.i n) (fun r ->
                      [
                        B.store "lhs" (at r c)
                          B.(idx "lhs" (at r c) +: (f 0.4 *: idx "lhs" (at (r -: i 1) c)));
                      ]);
                ]);
            (* Update solution: parallel. *)
            B.for_ ~parallel:true "up" (B.i 0) (B.i cells) (fun p ->
                [ B.store "u" p B.(idx "u" p -: (f 0.1 *: idx "lhs" p)) ]);
          ]);
      (* self-check: the solve stayed finite (NaN fails x = x) *)
      B.assert_ B.(idx "u" (i 1) =: idx "u" (i 1));
    ]

let workload =
  { Wl.name = "bt"; suite = Wl.Nas; description = "block-tridiagonal ADI solver"; seq; par = None }
