(* CG — conjugate gradient (NAS).  Sparse matrix-vector products with
   data-dependent column indices (the access pattern static analysis
   cannot resolve), dot-product reductions, and axpy updates.  One
   accumulation loop is annotated (OMP parallelizes it with a critical
   section) but deliberately lacks the reduction clause analogue, so the
   analysis reports a carried RAW — giving CG its annotated-but-missed
   loops as in the paper's Table II (9/16). *)

module B = Ddp_minir.Builder

let nnz_per_row = 8

(* Sparse row dot-product: the per-row kernel as a procedure, so CG's
   call tree shows the matvec leaf under the row loop. *)
let spmv_row_proc =
  B.proc "spmv_row" [ "row" ]
    [
      B.local "sum" (B.f 0.0);
      B.for_ "k" (B.i 0) (B.i nnz_per_row) (fun k ->
          [
            B.assign "sum"
              B.(
                v "sum"
                +: idx "aval" ((v "row" *: i nnz_per_row) +: k)
                   *: idx "x" (idx "colidx" ((v "row" *: i nnz_per_row) +: k)));
          ]);
      B.store "q" (B.v "row") (B.v "sum");
    ]

let seq ~scale =
  let n = 3_000 * scale in
  let nnz = n * nnz_per_row in
  let iters = 3 in
  B.program ~name:"cg" ~funcs:[ spmv_row_proc ]
    [
      B.arr "colidx" (B.i nnz);
      B.arr "aval" (B.i nnz);
      B.arr "x" (B.i n);
      B.arr "q" (B.i n);
      B.arr "r" (B.i n);
      B.local "rho" (B.f 0.0);
      B.local "checksum" (B.f 0.0);
      Wl.fill_rand_int_loop ~index:"ci" "colidx" nnz n;
      Wl.fill_rand_loop ~index:"ai" "aval" nnz;
      B.for_ ~parallel:true "xi" (B.i 0) (B.i n) (fun iv -> [ B.store "x" iv (B.f 1.0) ]);
      B.for_ "it" (B.i 0) (B.i iters) (fun _ ->
          [
            (* Sparse matvec: rows independent; the per-call accumulator is
               a fresh local each activation (lifetime analysis keeps its
               reused address from leaking a false carried dep). *)
            B.for_ ~parallel:true "row" (B.i 0) (B.i n) (fun row ->
                [ B.call_proc "spmv_row" [ row ] ]);
            (* rho = x . q : proper reduction clause. *)
            B.assign "rho" (B.f 0.0);
            B.for_ ~parallel:true ~reduction:[ "rho" ] "d" (B.i 0) (B.i n) (fun iv ->
                [ B.assign "rho" B.(v "rho" +: (idx "x" iv *: idx "q" iv)) ]);
            (* axpy update: parallel. *)
            B.for_ ~parallel:true "u" (B.i 0) (B.i n) (fun iv ->
                [ B.store "r" iv B.(idx "x" iv -: (f 0.5 *: idx "q" iv)) ]);
            B.for_ ~parallel:true "c" (B.i 0) (B.i n) (fun iv -> [ B.store "x" iv (B.idx "r" iv) ]);
          ]);
      (* Residual-norm accumulation: OMP uses a critical section; without a
         reduction clause the carried RAW is real -> annotated, missed. *)
      B.for_ ~parallel:true "nrm" (B.i 0) (B.i n) (fun iv ->
          [ B.assign "checksum" B.(v "checksum" +: (idx "r" iv *: idx "r" iv)) ]);
      (* self-check: a sum of squares is non-negative and not NaN *)
      B.assert_ B.(v "checksum" >=: f 0.0);
    ]

let workload =
  { Wl.name = "cg"; suite = Wl.Nas; description = "sparse conjugate-gradient kernel"; seq; par = None }
