(* EP — embarrassingly parallel (NAS).  Gaussian-pair generation with
   scalar reductions; the single hot loop is fully parallel under an
   OpenMP reduction clause, which is why the paper's Table II shows 1/1
   for EP.  The annulus histogram is kept in a separate, unannotated loop
   pass so the main loop stays reduction-only. *)

module B = Ddp_minir.Builder

let nbins = 10

let seq ~scale =
  let n = 60_000 * scale in
  B.program ~name:"ep"
    [
      B.local "sx" (B.f 0.0);
      B.local "sy" (B.f 0.0);
      B.local "hits" (B.i 0);
      B.arr "q" (B.i nbins);
      Wl.zero_loop "q" nbins;
      B.for_ ~parallel:true ~reduction:[ "sx"; "sy"; "hits" ] "i" (B.i 0) (B.i n) (fun _ ->
          [
            B.local "t1" B.(rand_ *: f 2.0 -: f 1.0);
            B.local "t2" B.(rand_ *: f 2.0 -: f 1.0);
            B.local "tsq" B.((v "t1" *: v "t1") +: (v "t2" *: v "t2"));
            B.if_
              B.(v "tsq" <=: f 1.0)
              [
                B.assign "sx" B.(v "sx" +: v "t1");
                B.assign "sy" B.(v "sy" +: v "t2");
                B.assign "hits" B.(v "hits" +: i 1);
              ]
              [];
          ]);
      (* self-check: acceptance bound *)
      B.assert_ B.(v "hits" >=: i 0 &&: (v "hits" <=: i n));
      (* Annulus histogram: read-modify-write on data-dependent bins is a
         carried RAW, so this loop is (correctly) not annotated. *)
      B.for_ "j" (B.i 0) (B.i (n / 64)) (fun _ ->
          [
            B.local "b" (B.rand_int (B.i nbins));
            B.store "q" (B.v "b") B.(idx "q" (v "b") +: f 1.0);
          ]);
    ]

let workload = { Wl.name = "ep"; suite = Wl.Nas; description = "embarrassingly parallel"; seq; par = None }
