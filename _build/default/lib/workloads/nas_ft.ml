(* FT — FFT kernel (NAS).  Bit-reversal permutation (parallel scatter to
   distinct targets) followed by log2(n) in-place butterfly stages: the
   stage loop is serial, but butterflies within a stage touch disjoint
   pairs and are annotated parallel.  The final checksum loop mirrors the
   paper's one missed FT loop: OMP sums it in a critical section, so the
   carried RAW is real. *)

module B = Ddp_minir.Builder

let log2 n =
  let rec go k acc = if k <= 1 then acc else go (k / 2) (acc + 1) in
  go n 0

let seq ~scale =
  let n = 8_192 * scale in
  let stages = log2 n in
  B.program ~name:"ft"
    [
      B.arr "re" (B.i n);
      B.arr "im" (B.i n);
      B.arr "tr" (B.i n);
      B.arr "rev" (B.i n);
      Wl.fill_rand_loop "re" n;
      Wl.zero_loop "im" n;
      (* Bit-reversal table: each element computed independently. *)
      B.for_ ~parallel:true "bi" (B.i 0) (B.i n) (fun iv ->
          [
            B.local "x" iv;
            B.local "acc" (B.i 0);
            B.for_ "b" (B.i 0) (B.i stages) (fun _ ->
                [
                  B.assign "acc" B.((v "acc" <<: i 1) ||: (v "x" &&: i 1));
                  B.assign "x" B.(v "x" >>: i 1);
                ]);
            B.store "rev" iv (B.v "acc");
          ]);
      (* self-check: bit-reversal fixes 0 and sends 1 to n/2 *)
      B.assert_ B.(idx "rev" (i 0) =: i 0);
      B.assert_ B.(idx "rev" (i 1) =: i (n / 2));
      (* Permute: distinct targets (rev is a bijection) — parallel. *)
      B.for_ ~parallel:true "pm" (B.i 0) (B.i n) (fun iv ->
          [ B.store "tr" (B.idx "rev" iv) (B.idx "re" iv) ]);
      B.for_ ~parallel:true "cp" (B.i 0) (B.i n) (fun iv -> [ B.store "re" iv (B.idx "tr" iv) ]);
      (* Butterfly stages: outer serial, inner parallel over disjoint pairs. *)
      B.for_ "s" (B.i 0) (B.i stages) (fun s ->
          [
            B.local "half" B.(i 1 <<: s);
            B.for_ ~parallel:true "bf" (B.i 0) (B.i (n / 2)) (fun bf ->
                [
                  B.local "blk" B.(bf /: v "half");
                  B.local "off" B.(bf %: v "half");
                  B.local "lo" B.((v "blk" *: (v "half" *: i 2)) +: v "off");
                  B.local "hi" B.(v "lo" +: v "half");
                  B.local "w" B.(call "cos" [ call "float" [ v "off" ] /: call "float" [ v "half" ] ]);
                  B.local "a" (B.idx "re" (B.v "lo"));
                  B.local "bv" B.(idx "re" (v "hi") *: v "w");
                  B.store "re" (B.v "lo") B.(v "a" +: v "bv");
                  B.store "re" (B.v "hi") B.(v "a" -: v "bv");
                  B.local "ai" (B.idx "im" (B.v "lo"));
                  B.local "bvi" B.(idx "im" (v "hi") *: v "w");
                  B.store "im" (B.v "lo") B.(v "ai" +: v "bvi");
                  B.store "im" (B.v "hi") B.(v "ai" -: v "bvi");
                ]);
          ]);
      (* Checksum: annotated (OMP critical) but genuinely carried. *)
      B.local "chk" (B.f 0.0);
      B.for_ ~parallel:true "ck" (B.i 0) (B.i n) (fun iv ->
          [ B.assign "chk" B.(v "chk" +: idx "re" iv) ]);
    ]

let workload = { Wl.name = "ft"; suite = Wl.Nas; description = "radix-2 FFT butterfly kernel"; seq; par = None }
