(* IS — integer sort (NAS).  Bucket/counting sort: key generation and
   ranking are parallel; the histogram loop is OpenMP-parallelizable only
   with atomics, so dependence analysis (correctly) reports a carried RAW
   and the loop shows up as annotated-but-missed, mirroring the 8/11 row
   of the paper's Table II.  The prefix sum is genuinely serial. *)

module B = Ddp_minir.Builder

let max_key = 512

let seq ~scale =
  let n = 40_000 * scale in
  B.program ~name:"is"
    [
      B.arr "keys" (B.i n);
      B.arr "count" (B.i max_key);
      B.arr "ranked" (B.i n);
      Wl.fill_rand_int_loop "keys" n max_key;
      Wl.zero_loop "count" max_key;
      (* Histogram: OMP parallelizes it with atomic increments, but the
         carried RAW on count[] is real — annotated yet not identifiable. *)
      B.for_ ~parallel:true "h" (B.i 0) (B.i n) (fun iv ->
          [
            B.local "k" (B.idx "keys" iv);
            B.store "count" (B.v "k") B.(idx "count" (v "k") +: i 1);
          ]);
      (* Prefix sum: inherently serial, not annotated. *)
      B.for_ "p" (B.i 1) (B.i max_key) (fun iv ->
          [ B.store "count" iv B.(idx "count" iv +: idx "count" (iv -: i 1)) ]);
      (* Ranking: pure gather, parallel. *)
      B.for_ ~parallel:true "r" (B.i 0) (B.i n) (fun iv ->
          [ B.store "ranked" iv B.(idx "count" (idx "keys" iv) -: i 1) ]);
      (* self-check: the prefix sum totals n, ranks stay in range *)
      B.assert_ B.(idx "count" (i (max_key - 1)) =: i n);
      B.assert_ B.(idx "ranked" (i 0) >=: i 0 &&: (idx "ranked" (i 0) <: i n));
    ]

let workload = { Wl.name = "is"; suite = Wl.Nas; description = "integer (counting) sort"; seq; par = None }
