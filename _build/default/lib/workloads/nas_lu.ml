(* LU — SSOR solver (NAS).  The lower/upper triangular wavefront sweeps
   carry dependences in both grid dimensions, so they stay serial and
   unannotated; the OpenMP version of LU parallelizes the surrounding
   flux/RHS/norm loops, which are the annotated ones here (matching LU's
   33/33 row in the paper's Table II: every annotated loop is
   dependence-free). *)

module B = Ddp_minir.Builder

let seq ~scale =
  let n = 90 * scale in
  let cells = n * n in
  let steps = 2 in
  let at r c = B.((r *: i n) +: c) in
  B.program ~name:"lu"
    [
      B.arr "u" (B.i cells);
      B.arr "rsd" (B.i cells);
      B.arr "flux" (B.i cells);
      B.local "rsdnm" (B.f 0.0);
      Wl.fill_rand_loop "u" cells;
      Wl.zero_loop "rsd" cells;
      B.for_ "step" (B.i 0) (B.i steps) (fun _ ->
          [
            (* Flux computation: parallel. *)
            B.for_ ~parallel:true "fl" (B.i 1) (B.i (n - 1)) (fun r ->
                [
                  B.for_ "fc" (B.i 1) (B.i (n - 1)) (fun c ->
                      [
                        B.store "flux" (at r c)
                          B.(
                            (idx "u" (at r (c +: i 1)) -: idx "u" (at r (c -: i 1)))
                            *: f 0.5);
                      ]);
                ]);
            (* RHS from flux: parallel. *)
            B.for_ ~parallel:true "rh" (B.i 1) (B.i (n - 1)) (fun r ->
                [
                  B.for_ "rc" (B.i 1) (B.i (n - 1)) (fun c ->
                      [
                        B.store "rsd" (at r c)
                          B.(
                            idx "flux" (at r c)
                            +: (f 0.25
                               *: (idx "u" (at (r -: i 1) c) +: idx "u" (at (r +: i 1) c))));
                      ]);
                ]);
            (* Lower wavefront sweep: carried in both dimensions, serial. *)
            B.for_ "lr" (B.i 1) (B.i (n - 1)) (fun r ->
                [
                  B.for_ "lc" (B.i 1) (B.i (n - 1)) (fun c ->
                      [
                        B.store "rsd" (at r c)
                          B.(
                            idx "rsd" (at r c)
                            +: (f 0.2 *: (idx "rsd" (at (r -: i 1) c) +: idx "rsd" (at r (c -: i 1)))));
                      ]);
                ]);
            (* Upper wavefront sweep: carried, serial. *)
            B.for_ "ur" (B.i 1) (B.i (n - 1)) (fun rr ->
                [
                  B.local "r" B.(i n -: i 1 -: rr);
                  B.for_ "uc" (B.i 1) (B.i (n - 1)) (fun cc ->
                      [
                        B.local "c" B.(i n -: i 1 -: cc);
                        B.store "rsd" (at (B.v "r") (B.v "c"))
                          B.(
                            idx "rsd" (at (v "r") (v "c"))
                            +: (f 0.2
                               *: (idx "rsd" (at (v "r" +: i 1) (v "c"))
                                  +: idx "rsd" (at (v "r") (v "c" +: i 1)))));
                      ]);
                ]);
            (* Solution update + residual norm (proper reduction): parallel. *)
            B.for_ ~parallel:true "up" (B.i 0) (B.i cells) (fun p ->
                [ B.store "u" p B.(idx "u" p +: (f 0.1 *: idx "rsd" p)) ]);
            B.assign "rsdnm" (B.f 0.0);
            B.for_ ~parallel:true ~reduction:[ "rsdnm" ] "nm" (B.i 0) (B.i cells) (fun p ->
                [ B.assign "rsdnm" B.(v "rsdnm" +: (idx "rsd" p *: idx "rsd" p)) ]);
          ]);
      (* self-check: the solve stayed finite (NaN fails x = x) *)
      B.assert_ B.(idx "u" (i 1) =: idx "u" (i 1));
    ]

let workload = { Wl.name = "lu"; suite = Wl.Nas; description = "SSOR wavefront solver"; seq; par = None }
