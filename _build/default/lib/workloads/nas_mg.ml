(* MG — multigrid (NAS).  A 1-D V-cycle: Jacobi smoothing (two-array,
   parallel), residual restriction to a coarser grid (parallel), a
   Gauss-Seidel sweep at the coarsest level (in-place, carried, serial)
   and prolongation back (parallel).  Strided neighbour accesses give the
   signature distinctly non-uniform slot pressure. *)

module B = Ddp_minir.Builder

let seq ~scale =
  let n = 16_384 * scale in
  let n2 = n / 2 and n4 = n / 4 in
  let cycles = 2 in
  B.program ~name:"mg"
    [
      B.arr "u" (B.i n);
      B.arr "v" (B.i n);
      B.arr "r1" (B.i n2);
      B.arr "r2" (B.i n4);
      Wl.fill_rand_loop "u" n;
      Wl.zero_loop ~index:"z1" "r1" n2;
      Wl.zero_loop ~index:"z2" "r2" n4;
      B.for_ "cyc" (B.i 0) (B.i cycles) (fun _ ->
          [
            (* Jacobi smooth u -> v : parallel (distinct in/out arrays). *)
            B.for_ ~parallel:true "s" (B.i 1) (B.i (n - 1)) (fun iv ->
                [
                  B.store "v" iv
                    B.(f 0.25 *: (idx "u" (iv -: i 1) +: (f 2.0 *: idx "u" iv) +: idx "u" (iv +: i 1)));
                ]);
            (* Restrict v -> r1 : parallel, stride-2 gather. *)
            B.for_ ~parallel:true "rs" (B.i 0) (B.i n2) (fun iv ->
                [ B.store "r1" iv B.(f 0.5 *: (idx "v" (iv *: i 2) +: idx "v" ((iv *: i 2) +: i 1))) ]);
            (* Restrict r1 -> r2. *)
            B.for_ ~parallel:true "rt" (B.i 0) (B.i n4) (fun iv ->
                [ B.store "r2" iv B.(f 0.5 *: (idx "r1" (iv *: i 2) +: idx "r1" ((iv *: i 2) +: i 1))) ]);
            (* Coarsest level: in-place Gauss-Seidel — genuinely carried. *)
            B.for_ "gs" (B.i 1) (B.i (n4 - 1)) (fun iv ->
                [
                  B.store "r2" iv
                    B.(f 0.5 *: (idx "r2" (iv -: i 1) +: idx "r2" (iv +: i 1)));
                ]);
            (* Prolongate r2 -> r1 -> u : parallel scatter, disjoint targets. *)
            B.for_ ~parallel:true "p1" (B.i 0) (B.i n4) (fun iv ->
                [
                  B.store "r1" (B.( *: ) iv (B.i 2)) B.(idx "r1" (iv *: i 2) +: idx "r2" iv);
                  B.store "r1" B.((iv *: i 2) +: i 1) B.(idx "r1" ((iv *: i 2) +: i 1) +: idx "r2" iv);
                ]);
            B.for_ ~parallel:true "p0" (B.i 0) (B.i n2) (fun iv ->
                [ B.store "u" (B.( *: ) iv (B.i 2)) B.(idx "u" (iv *: i 2) +: idx "r1" iv) ]);
          ]);
      (* self-check: non-negative inputs stay non-negative (and not NaN) *)
      B.assert_ B.(idx "u" (i 2) >=: f 0.0);
      B.assert_ B.(idx "u" (i 2) =: idx "u" (i 2));
    ]

let workload = { Wl.name = "mg"; suite = Wl.Nas; description = "1-D multigrid V-cycle"; seq; par = None }
