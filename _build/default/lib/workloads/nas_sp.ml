(* SP — scalar pentadiagonal solver (NAS).  Same ADI skeleton as BT but
   with distance-2 (pentadiagonal) couplings along each line and a
   9-point RHS stencil, so the address stride pattern and the dependence
   distances differ from BT while the parallel/serial loop split is the
   same: line loops parallel, along-line recurrences serial. *)

module B = Ddp_minir.Builder

let seq ~scale =
  let n = 90 * scale in
  let cells = n * n in
  let steps = 2 in
  let at r c = B.((r *: i n) +: c) in
  B.program ~name:"sp"
    [
      B.arr "u" (B.i cells);
      B.arr "rhs" (B.i cells);
      B.arr "lhs" (B.i cells);
      Wl.fill_rand_loop "u" cells;
      Wl.zero_loop "lhs" cells;
      B.for_ "step" (B.i 0) (B.i steps) (fun _ ->
          [
            (* 9-point RHS: parallel gather. *)
            B.for_ ~parallel:true "rr" (B.i 1) (B.i (n - 1)) (fun r ->
                [
                  B.for_ "rc" (B.i 1) (B.i (n - 1)) (fun c ->
                      [
                        B.store "rhs" (at r c)
                          B.(
                            idx "u" (at r c)
                            -: (f 0.125
                               *: (idx "u" (at (r -: i 1) (c -: i 1))
                                  +: idx "u" (at (r -: i 1) c)
                                  +: idx "u" (at (r -: i 1) (c +: i 1))
                                  +: idx "u" (at r (c -: i 1))
                                  +: idx "u" (at r (c +: i 1))
                                  +: idx "u" (at (r +: i 1) (c -: i 1))
                                  +: idx "u" (at (r +: i 1) c)
                                  +: idx "u" (at (r +: i 1) (c +: i 1)))));
                      ]);
                ]);
            (* x-sweep with distance-2 recurrence: rows parallel. *)
            B.for_ ~parallel:true "xr" (B.i 0) (B.i n) (fun r ->
                [
                  B.for_ "fe" (B.i 2) (B.i n) (fun c ->
                      [
                        B.store "lhs" (at r c)
                          B.(
                            idx "rhs" (at r c)
                            +: (f 0.3 *: idx "lhs" (at r (c -: i 1)))
                            +: (f 0.1 *: idx "lhs" (at r (c -: i 2))));
                      ]);
                ]);
            (* y-sweep: columns parallel. *)
            B.for_ ~parallel:true "yc" (B.i 0) (B.i n) (fun c ->
                [
                  B.for_ "fey" (B.i 2) (B.i n) (fun r ->
                      [
                        B.store "lhs" (at r c)
                          B.(
                            idx "lhs" (at r c)
                            +: (f 0.3 *: idx "lhs" (at (r -: i 1) c))
                            +: (f 0.1 *: idx "lhs" (at (r -: i 2) c)));
                      ]);
                ]);
            B.for_ ~parallel:true "up" (B.i 0) (B.i cells) (fun p ->
                [ B.store "u" p B.(idx "u" p -: (f 0.05 *: idx "lhs" p)) ]);
          ]);
      (* self-check: the solve stayed finite (NaN fails x = x) *)
      B.assert_ B.(idx "u" (i 1) =: idx "u" (i 1));
    ]

let workload =
  { Wl.name = "sp"; suite = Wl.Nas; description = "scalar-pentadiagonal ADI solver"; seq; par = None }
