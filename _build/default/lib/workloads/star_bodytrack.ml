(* bodytrack — particle filter (Starbench/PARSEC).  Per frame: weight
   evaluation is parallel over particles; weight normalization is a
   reduction; cumulative-sum resampling is serial; the state update
   gathers from the old state array into a new one (parallel) and then
   swaps.  Particle indices selected by resampling are data-dependent
   gathers — the dynamic access pattern dependence profiling exists for. *)

module B = Ddp_minir.Builder

let frames = 3

let setup nparticles =
  [
    B.arr "state" (B.i nparticles);
    B.arr "nstate" (B.i nparticles);
    B.arr "weight" (B.i nparticles);
    B.arr "cum" (B.i nparticles);
    B.arr "pick" (B.i nparticles);
    B.local "wsum" (B.f 0.0);
    Wl.fill_rand_loop "state" nparticles;
  ]

let weigh_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "x" (B.idx "state" p);
        B.local "err" B.((v "x" -: f 0.5) *: (v "x" -: f 0.5));
        B.store "weight" p (B.call "exp" [ B.(f 0.0 -: (v "err" *: f 4.0)) ]);
      ])

let update_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.store "nstate" p
          B.(idx "state" (idx "pick" p) +: ((rand_ -: f 0.5) *: f 0.05));
      ])

let copy_back ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p -> [ B.store "state" p (B.idx "nstate" p) ])

let frame_body ~nparticles ~par_stage =
  [
    par_stage `Weigh;
    (* Normalization sum: proper reduction. *)
    B.assign "wsum" (B.f 0.0);
    B.for_ ~parallel:true ~reduction:[ "wsum" ] "ws" (B.i 0) (B.i nparticles) (fun p ->
        [ B.assign "wsum" B.(v "wsum" +: idx "weight" p) ]);
    (* Cumulative sum: serial recurrence. *)
    B.store "cum" (B.i 0) (B.idx "weight" (B.i 0));
    B.for_ "cs" (B.i 1) (B.i nparticles) (fun p ->
        [ B.store "cum" p B.(idx "cum" (p -: i 1) +: idx "weight" p) ]);
    (* Systematic resampling: serial two-pointer walk. *)
    B.local "j" (B.i 0);
    B.for_ "rs" (B.i 0) (B.i nparticles) (fun p ->
        [
          B.local "target" B.(call "float" [ p ] *: v "wsum" /: call "float" [ i nparticles ]);
          B.while_
            B.((v "j" <: i (nparticles - 1)) &&: (idx "cum" (v "j") <: v "target"))
            [ B.assign "j" B.(v "j" +: i 1) ];
          B.store "pick" p (B.v "j");
        ]);
    par_stage `Update;
    par_stage `Copy;
  ]

let seq ~scale =
  let nparticles = 2_500 * scale in
  let par_stage = function
    | `Weigh -> weigh_range ~index:"wp" (B.i 0) (B.i nparticles)
    | `Update -> update_range ~index:"up" (B.i 0) (B.i nparticles)
    | `Copy -> copy_back ~index:"cp" (B.i 0) (B.i nparticles)
  in
  B.program ~name:"bodytrack"
    (setup nparticles
    @ [
        B.for_ "fr" (B.i 0) (B.i frames) (fun _ -> frame_body ~nparticles ~par_stage);
        (* self-check: weights are positive (exp never returns <= 0) *)
        B.assert_ B.(v "wsum" >: f 0.0);
      ])

let par ~threads ~scale =
  let nparticles = 2_500 * scale in
  let par_stage stage =
    let build ~t ~lo ~hi =
      match stage with
      | `Weigh -> [ weigh_range ~index:(Printf.sprintf "wp%d" t) (B.i lo) (B.i hi) ]
      | `Update -> [ update_range ~index:(Printf.sprintf "up%d" t) (B.i lo) (B.i hi) ]
      | `Copy -> [ copy_back ~index:(Printf.sprintf "cp%d" t) (B.i lo) (B.i hi) ]
    in
    Wl.par_range ~threads ~n:nparticles build
  in
  B.program ~name:"bodytrack"
    (setup nparticles
    @ [ B.for_ "fr" (B.i 0) (B.i frames) (fun _ -> frame_body ~nparticles ~par_stage) ])

let workload =
  { Wl.name = "bodytrack"; suite = Wl.Starbench; description = "particle-filter tracker"; seq; par = Some par }
