(* c-ray — ray tracer (Starbench).  Per-pixel ray/sphere intersection:
   pixels are independent (annotated parallel); the per-pixel nearest-hit
   search over the sphere list is a serial inner reduction on locals.
   The pthread variant block-partitions the pixel range, reproducing the
   read-shared (spheres) / write-private (image rows) pattern of the real
   benchmark. *)

module B = Ddp_minir.Builder

let nspheres = 12

let setup w h =
  [
    B.arr "sx" (B.i nspheres);
    B.arr "sy" (B.i nspheres);
    B.arr "sz" (B.i nspheres);
    B.arr "sr" (B.i nspheres);
    B.arr "img" (B.i (w * h));
    Wl.fill_rand_loop ~index:"i1" "sx" nspheres;
    Wl.fill_rand_loop ~index:"i2" "sy" nspheres;
    Wl.fill_rand_loop ~index:"i3" "sz" nspheres;
    Wl.fill_rand_loop ~index:"i4" "sr" nspheres;
  ]

(* Trace the pixels in [lo, hi): the shared per-pixel kernel. *)
let trace_range ~w ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "px" B.(call "float" [ p %: i w ] /: f (float_of_int w));
        B.local "py" B.(call "float" [ p /: i w ] /: f (float_of_int w));
        B.local "best" (B.f 1.0e9);
        B.for_ "s" (B.i 0) (B.i nspheres) (fun s ->
            [
              B.local "dx" B.(idx "sx" s -: v "px");
              B.local "dy" B.(idx "sy" s -: v "py");
              B.local "dz" (B.idx "sz" s);
              B.local "d2" B.((v "dx" *: v "dx") +: (v "dy" *: v "dy") +: (v "dz" *: v "dz"));
              B.local "rr" B.(idx "sr" s *: idx "sr" s);
              B.if_ B.(v "d2" <: v "rr" *: f 40.0)
                [
                  B.local "t" (B.sqrt_ (B.v "d2"));
                  B.if_ B.(v "t" <: v "best") [ B.assign "best" (B.v "t") ] [];
                ]
                [];
            ]);
        B.store "img" p B.(f 255.0 /: (f 1.0 +: v "best"));
      ])

let seq ~scale =
  let w = 64 * scale and h = 48 in
  B.program ~name:"c-ray" (setup w h @ [ trace_range ~w ~index:"p" (B.i 0) (B.i (w * h)) ])

let par ~threads ~scale =
  let w = 64 * scale and h = 48 in
  let n = w * h in
  B.program ~name:"c-ray"
    (setup w h
    @ [
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ trace_range ~w ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "c-ray"; suite = Wl.Starbench; description = "ray/sphere tracer"; seq; par = Some par }
