(* h264dec — video decoding (Starbench).  Frames decode serially (each
   frame's motion compensation reads the previous frame), while
   macroblocks within a frame are independent (parallel).  Motion
   vectors are data-dependent, so the reference-frame reads are dynamic
   gathers — unresolvable statically, the profiler's home turf.  h264dec
   is the paper's biggest benchmark (42.8 kLOC, 31k deps): here its role
   is to contribute the largest dependence count of the suite. *)

module B = Ddp_minir.Builder

let mb = 16 (* pixels per macroblock (1-D layout) *)
let frames = 4

let setup nmb =
  let fsize = nmb * mb in
  [
    B.arr "ref" (B.i fsize);
    B.arr "cur" (B.i fsize);
    B.arr "resid" (B.i fsize);
    B.arr "mv" (B.i nmb);
    Wl.fill_rand_int_loop ~index:"i1" "ref" fsize 256;
  ]

let decode_range ~nmb ~index lo hi =
  let fsize = nmb * mb in
  B.for_ ~parallel:true index lo hi (fun m ->
      [
        B.local "vvec" (B.idx "mv" m);
        B.for_ "px" (B.i 0) (B.i mb) (fun px ->
            [
              B.local "src" B.(((m *: i mb) +: px +: v "vvec") %: i fsize);
              B.store "cur"
                B.((m *: i mb) +: px)
                (B.min_
                   B.(idx "ref" (v "src") +: idx "resid" ((m *: i mb) +: px))
                   (B.i 255));
            ]);
      ])

let frame_body ~nmb ~threads_opt =
  let fsize = nmb * mb in
  [
    (* New residuals and motion vectors arrive with each frame. *)
    Wl.fill_rand_int_loop ~index:"rs" "resid" fsize 16;
    Wl.fill_rand_int_loop ~index:"mvv" "mv" nmb (mb * 4);
  ]
  @ (match threads_opt with
    | None -> [ decode_range ~nmb ~index:"m" (B.i 0) (B.i nmb) ]
    | Some threads ->
      [
        Wl.par_range ~threads ~n:nmb (fun ~t ~lo ~hi ->
            [ decode_range ~nmb ~index:(Printf.sprintf "m%d" t) (B.i lo) (B.i hi) ]);
      ])
  @ [
      (* The decoded frame becomes the next reference: the serial
         frame-to-frame carried dependence. *)
      B.for_ ~parallel:true "cpf" (B.i 0) (B.i fsize) (fun p ->
          [ B.store "ref" p (B.idx "cur" p) ]);
    ]

let seq ~scale =
  let nmb = 800 * scale in
  B.program ~name:"h264dec"
    (setup nmb
    @ [
        B.for_ "fr" (B.i 0) (B.i frames) (fun _ -> frame_body ~nmb ~threads_opt:None);
        (* self-check: reconstructed pixels stay clamped *)
        B.assert_ B.(idx "ref" (i 0) >=: i 0 &&: (idx "ref" (i 0) <=: i 255));
      ])

let par ~threads ~scale =
  let nmb = 800 * scale in
  B.program ~name:"h264dec"
    (setup nmb
    @ [ B.for_ "fr" (B.i 0) (B.i frames) (fun _ -> frame_body ~nmb ~threads_opt:(Some threads)) ])

let workload =
  { Wl.name = "h264dec"; suite = Wl.Starbench; description = "motion-compensated block decoder"; seq; par = Some par }
