(* kmeans — clustering (Starbench).  Per-round structure: the assignment
   step is parallel over points (nearest-centroid search on locals); the
   accumulation step is a data-dependent histogram (annotated — the
   pthread/OMP versions use locks/atomics — but genuinely carried, so
   dependence analysis reports it, as for CG-class loops in Table II);
   the centroid update is parallel over clusters.

   The pthread variant partitions points; each thread folds its slice
   into the shared per-cluster sums *inside a lock region*, which is
   exactly the Sec. V pattern: cross-thread dependences on the sum arrays
   with lock-protected (hence in-order, never race-flagged) pushes. *)

module B = Ddp_minir.Builder

let k = 8
let rounds = 3

let setup npts =
  [
    B.arr "px" (B.i npts);
    B.arr "py" (B.i npts);
    B.arr "cx" (B.i k);
    B.arr "cy" (B.i k);
    B.arr "label" (B.i npts);
    B.arr "sumx" (B.i k);
    B.arr "sumy" (B.i k);
    B.arr "cnt" (B.i k);
    Wl.fill_rand_loop ~index:"i1" "px" npts;
    Wl.fill_rand_loop ~index:"i2" "py" npts;
    Wl.fill_rand_loop ~index:"i3" "cx" k;
    Wl.fill_rand_loop ~index:"i4" "cy" k;
  ]

let assign_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "best" (B.f 1.0e18);
        B.local "bi" (B.i 0);
        B.for_ "c" (B.i 0) (B.i k) (fun c ->
            [
              B.local "dx" B.(idx "px" p -: idx "cx" c);
              B.local "dy" B.(idx "py" p -: idx "cy" c);
              B.local "d" B.((v "dx" *: v "dx") +: (v "dy" *: v "dy"));
              B.if_ B.(v "d" <: v "best")
                [ B.assign "best" (B.v "d"); B.assign "bi" c ]
                [];
            ]);
        B.store "label" p (B.v "bi");
      ])

let zero_sums =
  [
    Wl.zero_loop ~index:"z1" "sumx" k;
    Wl.zero_loop ~index:"z2" "sumy" k;
    Wl.zero_loop ~index:"z3" "cnt" k;
  ]

let update_centroids =
  B.for_ ~parallel:true "uc" (B.i 0) (B.i k) (fun c ->
      [
        B.local "n" (B.max_ (B.idx "cnt" c) (B.f 1.0));
        B.store "cx" c B.(idx "sumx" c /: v "n");
        B.store "cy" c B.(idx "sumy" c /: v "n");
      ])

let seq ~scale =
  let npts = 6_000 * scale in
  B.program ~name:"kmeans"
    (setup npts
    @ [
        B.for_ "round" (B.i 0) (B.i rounds) (fun _ ->
            [ assign_range ~index:"p" (B.i 0) (B.i npts) ]
            @ zero_sums
            @ [
                (* Accumulation: annotated (parallelized with atomics in
                   the native benchmark), genuinely carried. *)
                B.for_ ~parallel:true "acc" (B.i 0) (B.i npts) (fun p ->
                    [
                      B.local "l" (B.idx "label" p);
                      B.store "sumx" (B.v "l") B.(idx "sumx" (v "l") +: idx "px" p);
                      B.store "sumy" (B.v "l") B.(idx "sumy" (v "l") +: idx "py" p);
                      B.store "cnt" (B.v "l") B.(idx "cnt" (v "l") +: f 1.0);
                    ]);
                update_centroids;
              ]);
        (* self-check: every point was counted in exactly one cluster *)
        B.local "total" (B.f 0.0);
        B.for_ "tc" (B.i 0) (B.i k) (fun c -> [ B.assign "total" B.(v "total" +: idx "cnt" c) ]);
        B.assert_ B.(v "total" =: f (float_of_int npts));
      ])

let par ~threads ~scale =
  let npts = 6_000 * scale in
  B.program ~name:"kmeans"
    (setup npts
    @ [
        B.for_ "round" (B.i 0) (B.i rounds) (fun _ ->
            [
              Wl.par_range ~threads ~n:npts (fun ~t ~lo ~hi ->
                  [ assign_range ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi) ]);
            ]
            @ zero_sums
            @ [
                (* Each thread folds its slice into thread-local partials,
                   then merges into the shared sums under a lock: the
                   locked cross-thread writes of Sec. V. *)
                Wl.par_range ~threads ~n:npts (fun ~t ~lo ~hi ->
                    let ix name = Printf.sprintf "%s%d" name t in
                    [
                      B.arr (ix "lsx") (B.i k);
                      B.arr (ix "lsy") (B.i k);
                      B.arr (ix "lcn") (B.i k);
                      Wl.zero_loop ~index:(ix "z1") (ix "lsx") k;
                      Wl.zero_loop ~index:(ix "z2") (ix "lsy") k;
                      Wl.zero_loop ~index:(ix "z3") (ix "lcn") k;
                      B.for_ (ix "a") (B.i lo) (B.i hi) (fun p ->
                          [
                            B.local "l" (B.idx "label" p);
                            B.store (ix "lsx") (B.v "l") B.(idx (ix "lsx") (v "l") +: idx "px" p);
                            B.store (ix "lsy") (B.v "l") B.(idx (ix "lsy") (v "l") +: idx "py" p);
                            B.store (ix "lcn") (B.v "l") B.(idx (ix "lcn") (v "l") +: f 1.0);
                          ]);
                      B.lock 1;
                      B.for_ (ix "m") (B.i 0) (B.i k) (fun c ->
                          [
                            B.store "sumx" c B.(idx "sumx" c +: idx (ix "lsx") c);
                            B.store "sumy" c B.(idx "sumy" c +: idx (ix "lsy") c);
                            B.store "cnt" c B.(idx "cnt" c +: idx (ix "lcn") c);
                          ]);
                      B.unlock 1;
                    ]);
                update_centroids;
              ]);
      ])

let workload =
  { Wl.name = "kmeans"; suite = Wl.Starbench; description = "k-means clustering"; seq; par = Some par }
