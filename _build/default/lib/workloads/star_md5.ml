(* md5 — hash throughput (Starbench).  Independent messages hashed in
   parallel; inside each message the 64-round mixing chain on the four
   state words a/b/c/d is a tight serial recurrence on locals (integer
   rotates, xors, adds).  A small address footprint revisited very many
   times — the opposite profile of rgbyuv, and the workload whose skewed
   access counts stress the profiler's load balancing (paper Sec. VI-B). *)

module B = Ddp_minir.Builder

let words_per_msg = 16
let rounds = 64

let setup nmsg =
  [
    B.arr "msg" (B.i (nmsg * words_per_msg));
    B.arr "digest" (B.i (nmsg * 4));
    Wl.fill_rand_int_loop "msg" (nmsg * words_per_msg) 65536;
  ]

(* One message digested per call: the per-block procedure of the real
   benchmark, giving the call tree a hot leaf. *)
let md5_block_proc =
  B.proc "md5_block" [ "m" ]
    [
      B.local "a" (B.i 0x67452301);
      B.local "b" (B.i 0xefcdab89);
      B.local "c" (B.i 0x98badcfe);
      B.local "d" (B.i 0x10325476);
      B.for_ "r" (B.i 0) (B.i rounds) (fun r ->
          [
            (* f = (b & c) | (~b & d), simplified round schedule g = r mod 16 *)
            B.local "f" B.((v "b" &&: v "c") ||: (bnot (v "b") &&: v "d"));
            B.local "w" (B.idx "msg" B.((v "m" *: i words_per_msg) +: (r %: i words_per_msg)));
            B.local "tmp" (B.v "d");
            B.assign "d" (B.v "c");
            B.assign "c" (B.v "b");
            B.assign "b" B.(v "b" +: ((v "a" +: v "f" +: v "w") &&: i 0xffffffff));
            B.assign "a" (B.v "tmp");
          ]);
      B.store "digest" B.(v "m" *: i 4) (B.v "a");
      B.store "digest" B.((v "m" *: i 4) +: i 1) (B.v "b");
      B.store "digest" B.((v "m" *: i 4) +: i 2) (B.v "c");
      B.store "digest" B.((v "m" *: i 4) +: i 3) (B.v "d");
    ]

let hash_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun m -> [ B.call_proc "md5_block" [ m ] ])

let seq ~scale =
  let nmsg = 600 * scale in
  B.program ~name:"md5" ~funcs:[ md5_block_proc ]
    (setup nmsg
    @ [
        hash_range ~index:"m" (B.i 0) (B.i nmsg);
        (* self-check: digests computed and in range *)
        B.assert_ B.(idx "digest" (i 0) >=: i 0);
        B.assert_ B.(idx "digest" (i 1) >: i 0);
      ])

let par ~threads ~scale =
  let nmsg = 600 * scale in
  B.program ~name:"md5" ~funcs:[ md5_block_proc ]
    (setup nmsg
    @ [
        Wl.par_range ~threads ~n:nmsg (fun ~t ~lo ~hi ->
            [ hash_range ~index:(Printf.sprintf "m%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "md5"; suite = Wl.Starbench; description = "MD5-style message digests"; seq; par = Some par }
