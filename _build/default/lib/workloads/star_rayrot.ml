(* ray-rot — ray tracing + rotation (Starbench).  A two-stage pipeline:
   a lightweight shading pass renders into a framebuffer, then the frame
   is rotated into the output.  Combines c-ray's compute-dense pattern
   with rotate's permutation stride. *)

module B = Ddp_minir.Builder

let nspheres = 8

let setup w h =
  let n = w * h in
  [
    B.arr "sx" (B.i nspheres);
    B.arr "sy" (B.i nspheres);
    B.arr "fb" (B.i n);
    B.arr "out" (B.i n);
    Wl.fill_rand_loop ~index:"i1" "sx" nspheres;
    Wl.fill_rand_loop ~index:"i2" "sy" nspheres;
  ]

let shade_range ~w ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "px" B.(call "float" [ p %: i w ] /: f (float_of_int w));
        B.local "py" B.(call "float" [ p /: i w ] /: f (float_of_int w));
        B.local "acc" (B.f 0.0);
        B.for_ "s" (B.i 0) (B.i nspheres) (fun s ->
            [
              B.local "dx" B.(idx "sx" s -: v "px");
              B.local "dy" B.(idx "sy" s -: v "py");
              B.assign "acc" B.(v "acc" +: (f 1.0 /: (f 0.1 +: (v "dx" *: v "dx") +: (v "dy" *: v "dy"))));
            ]);
        B.store "fb" p (B.v "acc");
      ])

let rot_range ~w ~h ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "x" B.(p %: i w);
        B.local "yy" B.(p /: i w);
        B.store "out" B.((v "x" *: i h) +: (i (h - 1) -: v "yy")) (B.idx "fb" p);
      ])

let seq ~scale =
  let w = 110 * scale and h = 80 in
  let n = w * h in
  B.program ~name:"ray-rot"
    (setup w h
    @ [ shade_range ~w ~index:"p" (B.i 0) (B.i n); rot_range ~w ~h ~index:"q" (B.i 0) (B.i n) ])

let par ~threads ~scale =
  let w = 110 * scale and h = 80 in
  let n = w * h in
  B.program ~name:"ray-rot"
    (setup w h
    @ [
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ shade_range ~w ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi) ]);
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ rot_range ~w ~h ~index:(Printf.sprintf "q%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "ray-rot"; suite = Wl.Starbench; description = "shading + rotation pipeline"; seq; par = Some par }
