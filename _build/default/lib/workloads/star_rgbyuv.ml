(* rgbyuv — RGB to YUV color conversion (Starbench).  A pure streaming
   map over six arrays: every pixel independent, integer arithmetic with
   shifts.  The large number of distinct addresses touched exactly once
   is what gives rgbyuv its high signature false-positive rate in the
   paper's Table I. *)

module B = Ddp_minir.Builder

let setup n =
  [
    B.arr "r" (B.i n);
    B.arr "g" (B.i n);
    B.arr "b" (B.i n);
    B.arr "y" (B.i n);
    B.arr "u" (B.i n);
    B.arr "w" (B.i n);
    Wl.fill_rand_int_loop ~index:"i1" "r" n 256;
    Wl.fill_rand_int_loop ~index:"i2" "g" n 256;
    Wl.fill_rand_int_loop ~index:"i3" "b" n 256;
  ]

let convert_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "cr" (B.idx "r" p);
        B.local "cg" (B.idx "g" p);
        B.local "cb" (B.idx "b" p);
        B.store "y" p
          B.((((i 66 *: v "cr") +: (i 129 *: v "cg") +: (i 25 *: v "cb") +: i 128) >>: i 8) +: i 16);
        B.store "u" p
          B.((((i 0 -: (i 38 *: v "cr")) -: (i 74 *: v "cg") +: (i 112 *: v "cb") +: i 128) >>: i 8)
             +: i 128);
        B.store "w" p
          B.((((i 112 *: v "cr") -: (i 94 *: v "cg") -: (i 18 *: v "cb") +: i 128) >>: i 8) +: i 128);
      ])

let seq ~scale =
  let n = 60_000 * scale in
  B.program ~name:"rgbyuv"
    (setup n
    @ [
        convert_range ~index:"p" (B.i 0) (B.i n);
        (* self-check: BT.601 luma stays in [16, 235] for 8-bit input *)
        B.assert_ B.(idx "y" (i 0) >=: i 16 &&: (idx "y" (i 0) <=: i 235));
      ])

let par ~threads ~scale =
  let n = 60_000 * scale in
  B.program ~name:"rgbyuv"
    (setup n
    @ [
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ convert_range ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "rgbyuv"; suite = Wl.Starbench; description = "RGB->YUV conversion"; seq; par = Some par }
