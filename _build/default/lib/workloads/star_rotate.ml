(* rotate — 90-degree image rotation (Starbench).  A pure permutation:
   out[x*h + (h-1-y)] = in[y*w + x].  Every target is written exactly
   once, so all loops are parallel; the transposed write stride defeats
   simple cache/stride assumptions, which is the point of the original
   benchmark. *)

module B = Ddp_minir.Builder

let setup w h =
  [
    B.arr "src" (B.i (w * h));
    B.arr "dst" (B.i (w * h));
    Wl.fill_rand_int_loop "src" (w * h) 256;
  ]

let rotate_range ~w ~h ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "x" B.(p %: i w);
        B.local "yy" B.(p /: i w);
        B.store "dst" B.((v "x" *: i h) +: (i (h - 1) -: v "yy")) (B.idx "src" p);
      ])

let seq ~scale =
  let w = 300 * scale and h = 200 in
  B.program ~name:"rotate"
    (setup w h
    @ [
        rotate_range ~w ~h ~index:"p" (B.i 0) (B.i (w * h));
        (* self-check: the rotation really is the transpose-flip permutation *)
        B.assert_ B.(idx "dst" (i (h - 1)) =: idx "src" (i 0));
        B.assert_ B.(idx "dst" (i ((w - 1) * h)) =: idx "src" (i ((w * h) - 1)));
      ])

let par ~threads ~scale =
  let w = 300 * scale and h = 200 in
  let n = w * h in
  B.program ~name:"rotate"
    (setup w h
    @ [
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ rotate_range ~w ~h ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "rotate"; suite = Wl.Starbench; description = "90-degree image rotation"; seq; par = Some par }
