(* rot-cc — rotate + color conversion (Starbench).  The two pipeline
   stages of rotate and rgbyuv fused over the same image: stage 1
   permutes, stage 2 converts the permuted pixels.  The cross-stage RAW
   dependences (rotated output feeding conversion input) are what made
   rot-cc the worst FPR case in the paper's Table I — twice the address
   footprint, all touched twice. *)

module B = Ddp_minir.Builder

let setup w h =
  let n = w * h in
  [
    B.arr "src" (B.i n);
    B.arr "mid" (B.i n);
    B.arr "out" (B.i n);
    Wl.fill_rand_int_loop "src" n 256;
  ]

let rotate_range ~w ~h ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "x" B.(p %: i w);
        B.local "yy" B.(p /: i w);
        B.store "mid" B.((v "x" *: i h) +: (i (h - 1) -: v "yy")) (B.idx "src" p);
      ])

let convert_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "c" (B.idx "mid" p);
        B.store "out" p B.((((i 66 *: v "c") +: i 128) >>: i 8) +: i 16);
      ])

let seq ~scale =
  let w = 280 * scale and h = 180 in
  let n = w * h in
  B.program ~name:"rot-cc"
    (setup w h
    @ [
        rotate_range ~w ~h ~index:"p" (B.i 0) (B.i n);
        convert_range ~index:"q" (B.i 0) (B.i n);
      ])

let par ~threads ~scale =
  let w = 280 * scale and h = 180 in
  let n = w * h in
  B.program ~name:"rot-cc"
    (setup w h
    @ [
        (* Stage barrier between rotate and convert: fork/join twice, as
           the pthread benchmark does between pipeline stages. *)
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ rotate_range ~w ~h ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi) ]);
        Wl.par_range ~threads ~n (fun ~t ~lo ~hi ->
            [ convert_range ~index:(Printf.sprintf "q%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "rot-cc"; suite = Wl.Starbench; description = "rotate + color-convert pipeline"; seq; par = Some par }
