(* streamcluster — online clustering (Starbench/PARSEC).  Points arrive
   in batches; distance evaluation against the current centers is
   parallel over the batch, while the decision to open a new center
   mutates shared clustering state and is inherently serial.  The tiny
   live address set (paper Table I: 8.6e3 addresses for 1.2e7 accesses)
   means signatures barely collide — streamcluster is the low-FPR anchor
   of the accuracy table.

   In the pthread variant the serial center-opening runs inside a lock
   region after each thread's parallel distance pass. *)

module B = Ddp_minir.Builder

let max_centers = 24
let batch = 250

let setup () =
  [
    B.arr "ctr_x" (B.i max_centers);
    B.arr "ctr_y" (B.i max_centers);
    B.arr "dist" (B.i batch);
    B.arr "bx" (B.i batch);
    B.arr "by" (B.i batch);
    B.local "ncenters" (B.i 1);
    B.store "ctr_x" (B.i 0) (B.f 0.5);
    B.store "ctr_y" (B.i 0) (B.f 0.5);
  ]

let fill_batch ~index =
  [
    Wl.fill_rand_loop ~index:(index ^ "x") "bx" batch;
    Wl.fill_rand_loop ~index:(index ^ "y") "by" batch;
  ]

let eval_range ~index lo hi =
  (* Nearest-center distance per point: parallel over the batch. *)
  B.for_ ~parallel:true index lo hi (fun p ->
      [
        B.local "best" (B.f 1.0e18);
        B.for_ "c" (B.i 0) (B.v "ncenters") (fun c ->
            [
              B.local "dx" B.(idx "bx" p -: idx "ctr_x" c);
              B.local "dy" B.(idx "by" p -: idx "ctr_y" c);
              B.local "d" B.((v "dx" *: v "dx") +: (v "dy" *: v "dy"));
              B.if_ B.(v "d" <: v "best") [ B.assign "best" (B.v "d") ] [];
            ]);
        B.store "dist" p (B.v "best");
      ])

let open_centers lo hi =
  (* Serial: opening a center changes the state later points compare to. *)
  B.for_ "oc" (B.i lo) (B.i hi) (fun p ->
      [
        B.if_
          B.(idx "dist" p >: f 0.18 &&: (v "ncenters" <: i max_centers))
          [
            B.store "ctr_x" (B.v "ncenters") (B.idx "bx" p);
            B.store "ctr_y" (B.v "ncenters") (B.idx "by" p);
            B.assign "ncenters" B.(v "ncenters" +: i 1);
          ]
          [];
      ])

let seq ~scale =
  let batches = 10 * scale in
  B.program ~name:"streamcluster"
    (setup ()
    @ [
        B.for_ "bt" (B.i 0) (B.i batches) (fun _ ->
            fill_batch ~index:"f"
            @ [ eval_range ~index:"p" (B.i 0) (B.i batch); open_centers 0 batch ]);
        (* self-check: the clustering opened a sane number of centers *)
        B.assert_ B.(v "ncenters" >=: i 1 &&: (v "ncenters" <=: i max_centers));
      ])

let par ~threads ~scale =
  let batches = 10 * scale in
  B.program ~name:"streamcluster"
    (setup ()
    @ [
        B.for_ "bt" (B.i 0) (B.i batches) (fun _ ->
            fill_batch ~index:"f"
            @ [
                Wl.par_range ~threads ~n:batch (fun ~t ~lo ~hi ->
                    [
                      eval_range ~index:(Printf.sprintf "p%d" t) (B.i lo) (B.i hi);
                      B.lock 1;
                      open_centers lo hi;
                      B.unlock 1;
                    ]);
              ]);
      ])

let workload =
  {
    Wl.name = "streamcluster";
    suite = Wl.Starbench;
    description = "online stream clustering";
    seq;
    par = Some par;
  }
