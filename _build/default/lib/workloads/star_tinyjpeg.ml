(* tinyjpeg — JPEG-style block decoding (Starbench).  Independent 8x8
   blocks (parallel); inside each block, a separable row/column IDCT-like
   pass works through a block-local scratch array that is allocated and
   freed every block — heavy allocator churn over a small footprint,
   which is what exercises the profiler's variable-lifetime analysis
   (address reuse across block lifetimes must not fabricate cross-block
   dependences). *)

module B = Ddp_minir.Builder

let bsize = 64 (* 8x8 *)

let setup nblocks =
  [
    B.arr "coef" (B.i (nblocks * bsize));
    B.arr "out" (B.i (nblocks * bsize));
    Wl.fill_rand_int_loop "coef" (nblocks * bsize) 2048;
  ]

let decode_range ~index lo hi =
  B.for_ ~parallel:true index lo hi (fun blk ->
      [
        (* Block-local scratch: fresh lifetime per block. *)
        B.arr "tmp" (B.i bsize);
        (* Row pass: tmp[r][c] = sum-ish over the coefficient row. *)
        B.for_ "r" (B.i 0) (B.i 8) (fun r ->
            [
              B.local "acc" (B.i 0);
              B.for_ "c" (B.i 0) (B.i 8) (fun c ->
                  [
                    B.assign "acc"
                      B.(v "acc" +: idx "coef" ((blk *: i bsize) +: (r *: i 8) +: c));
                    B.store "tmp" B.((r *: i 8) +: c) B.(v "acc" >>: i 1);
                  ]);
            ]);
        (* Column pass into the output, with clamping. *)
        B.for_ "cc" (B.i 0) (B.i 8) (fun c ->
            [
              B.local "acc2" (B.i 0);
              B.for_ "rr" (B.i 0) (B.i 8) (fun r ->
                  [
                    B.assign "acc2" B.(v "acc2" +: idx "tmp" ((r *: i 8) +: c));
                    B.store "out"
                      B.((blk *: i bsize) +: (r *: i 8) +: c)
                      (B.min_ B.(v "acc2" >>: i 2) (B.i 255));
                  ]);
            ]);
        B.free "tmp";
      ])

let seq ~scale =
  let nblocks = 700 * scale in
  B.program ~name:"tinyjpeg"
    (setup nblocks
    @ [
        decode_range ~index:"b" (B.i 0) (B.i nblocks);
        (* self-check: the clamp held *)
        B.assert_ B.(idx "out" (i 63) <=: i 255);
      ])

let par ~threads ~scale =
  let nblocks = 700 * scale in
  B.program ~name:"tinyjpeg"
    (setup nblocks
    @ [
        Wl.par_range ~threads ~n:nblocks (fun ~t ~lo ~hi ->
            [ decode_range ~index:(Printf.sprintf "b%d" t) (B.i lo) (B.i hi) ]);
      ])

let workload =
  { Wl.name = "tinyjpeg"; suite = Wl.Starbench; description = "8x8 block decoder"; seq; par = Some par }
