(* water-spatial — the splash2x kernel behind the paper's Fig. 9
   communication matrix.

   Spatial domain decomposition of a 3-D cell grid: threads own
   contiguous z-slabs of cells; each iteration every thread recomputes
   its own cells from the 6-neighbour stencil, reading halo cells owned
   by the adjacent slabs.  Written values flow to the neighbouring
   threads only, which is what produces the banded (diagonal plus
   off-diagonal) producer/consumer matrix of Fig. 9.  A lock-protected
   global energy accumulation adds the faint all-to-all background the
   original analysis also observes.

   Iterations are separated by fork/join (the pthread original uses
   barriers), with the main thread swapping the density arrays between
   steps. *)

module B = Ddp_minir.Builder

let g = 8 (* grid side; cells = g^3 *)

let cell x y z = B.(((x *: i (g * g)) +: (y *: i g)) +: z)

let stencil_range ~src ~dst ~index lo hi =
  (* Cells [lo, hi) in linear order; reads the 6-neighbour halo in [src],
     writes own cells in [dst]. *)
  B.for_ ~parallel:true index (B.i lo) (B.i hi) (fun c ->
      [
        B.local "x" B.(c /: i (g * g));
        B.local "y" B.(c /: i g %: i g);
        B.local "z" B.(c %: i g);
        B.local "xm" (B.max_ B.(v "x" -: i 1) (B.i 0));
        B.local "xp" (B.min_ B.(v "x" +: i 1) (B.i (g - 1)));
        B.local "ym" (B.max_ B.(v "y" -: i 1) (B.i 0));
        B.local "yp" (B.min_ B.(v "y" +: i 1) (B.i (g - 1)));
        B.local "zm" (B.max_ B.(v "z" -: i 1) (B.i 0));
        B.local "zp" (B.min_ B.(v "z" +: i 1) (B.i (g - 1)));
        B.store dst c
          B.(
            f (1.0 /. 7.0)
            *: (idx src c
               +: idx src (cell (v "xm") (v "y") (v "z"))
               +: idx src (cell (v "xp") (v "y") (v "z"))
               +: idx src (cell (v "x") (v "ym") (v "z"))
               +: idx src (cell (v "x") (v "yp") (v "z"))
               +: idx src (cell (v "x") (v "y") (v "zm"))
               +: idx src (cell (v "x") (v "y") (v "zp"))));
      ])

let energy_fold ~src ~t lo hi =
  let acc = Printf.sprintf "eacc%d" t in
  [
    B.local acc (B.f 0.0);
    B.for_ (Printf.sprintf "ea%d" t) (B.i lo) (B.i hi) (fun c ->
        [ B.assign acc B.(v acc +: idx src c) ]);
    B.lock 1;
    B.assign "energy" B.(v "energy" +: v acc);
    B.unlock 1;
  ]

let par ~threads ~scale =
  let cells = g * g * g in
  let iters = 3 * scale in
  let arrays = [| "d0"; "d1" |] in
  B.program ~name:"water-spatial"
    ([
       B.arr "d0" (B.i cells);
       B.arr "d1" (B.i cells);
       B.local "energy" (B.f 0.0);
       Wl.fill_rand_loop "d0" cells;
       Wl.zero_loop "d1" cells;
     ]
    @ List.concat
        (List.init iters (fun it ->
             let src = arrays.(it mod 2) and dst = arrays.((it + 1) mod 2) in
             [
               Wl.par_range ~threads ~n:cells (fun ~t ~lo ~hi ->
                   stencil_range ~src ~dst ~index:(Printf.sprintf "c%d_%d" it t) lo hi
                   :: energy_fold ~src ~t lo hi);
             ]))
    @ [
        (* self-check: averaging keeps densities in [0,1); the lock-summed
           energy is positive *)
        B.assert_ B.(idx arrays.(iters mod 2) (i 0) >=: f 0.0);
        B.assert_ B.(v "energy" >: f 0.0);
      ])

let seq ~scale = par ~threads:1 ~scale

let workload =
  {
    Wl.name = "water-spatial";
    suite = Wl.Splash;
    description = "3-D spatial-decomposition stencil (splash2x analogue)";
    seq;
    par = Some par;
  }
