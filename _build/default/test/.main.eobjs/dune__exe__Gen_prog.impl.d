test/gen_prog.ml: Array Ddp_minir Float Printf QCheck
