test/main.mli:
