test/test_accuracy.ml: Alcotest Ddp_core Ddp_minir Ddp_util Float List Printf QCheck QCheck_alcotest
