test/test_algo.ml: Alcotest Ddp_core Ddp_minir Gen Hashtbl List QCheck QCheck_alcotest
