test/test_analyses.ml: Alcotest Ddp_analyses Ddp_core Ddp_minir Ddp_util Ddp_workloads List Option String
