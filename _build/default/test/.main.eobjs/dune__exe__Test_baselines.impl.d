test/test_baselines.ml: Alcotest Ddp_baselines Ddp_core Ddp_minir Gen List Printf QCheck QCheck_alcotest
