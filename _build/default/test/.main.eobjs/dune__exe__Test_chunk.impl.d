test/test_chunk.ml: Alcotest Ddp_core Ddp_minir
