test/test_dep_store.ml: Alcotest Ddp_core Ddp_minir List QCheck QCheck_alcotest
