test/test_dispatch.ml: Alcotest Array Ddp_core List QCheck QCheck_alcotest
