test/test_framework.ml: Alcotest Ddp_analyses Ddp_core Ddp_minir List String
