test/test_interp.ml: Alcotest Builder Ddp_minir Event Interp List Loc Printf
