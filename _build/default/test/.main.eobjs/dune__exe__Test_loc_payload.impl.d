test/test_loc_payload.ml: Alcotest Ddp_core Ddp_minir QCheck QCheck_alcotest
