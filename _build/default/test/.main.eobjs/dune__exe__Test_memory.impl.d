test/test_memory.ml: Alcotest Ddp_minir Gen List Memory QCheck QCheck_alcotest Value
