test/test_mt.ml: Alcotest Ddp_analyses Ddp_core Ddp_minir Fun Gen List Printf QCheck QCheck_alcotest
