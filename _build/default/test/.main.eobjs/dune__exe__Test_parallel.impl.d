test/test_parallel.ml: Alcotest Array Ddp_core Ddp_minir Ddp_workloads Fun Gen List QCheck QCheck_alcotest
