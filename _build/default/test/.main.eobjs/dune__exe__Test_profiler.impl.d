test/test_profiler.ml: Alcotest Array Ddp_core Ddp_minir Ddp_util String
