test/test_queues.ml: Alcotest Ddp_core Domain List QCheck QCheck_alcotest Queue
