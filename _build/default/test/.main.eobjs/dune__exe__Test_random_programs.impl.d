test/test_random_programs.ml: Array Ddp_core Ddp_minir Gen_prog Hashtbl List QCheck QCheck_alcotest String
