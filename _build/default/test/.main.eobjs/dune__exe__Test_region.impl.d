test/test_region.ml: Alcotest Ddp_core Ddp_minir List
