test/test_report.ml: Alcotest Ddp_core Ddp_minir List String
