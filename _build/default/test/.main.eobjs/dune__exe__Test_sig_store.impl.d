test/test_sig_store.ml: Alcotest Ddp_core Ddp_minir Ddp_util Gen Hashtbl List QCheck QCheck_alcotest
