test/test_trace_file.ml: Alcotest Ddp_core Ddp_minir Ddp_util Filename List Sys
