test/test_util.ml: Alcotest Array Ddp_util Domain Fun Gen Intern List Matrix Mem_account Printf QCheck QCheck_alcotest Rng Stats
