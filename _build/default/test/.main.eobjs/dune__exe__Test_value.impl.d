test/test_value.ml: Alcotest Ddp_minir QCheck QCheck_alcotest Value
