test/test_workloads.ml: Alcotest Ddp_analyses Ddp_core Ddp_minir Ddp_workloads List Option
