(* Random MiniIR program generator for end-to-end property tests.

   Generated programs are safe by construction: array indices are loop
   variables or in-range constants, loop bounds are small constants,
   conditions only read declared variables, and there are no while loops
   (termination) and no Par blocks (those are exercised by dedicated MT
   tests).  A generated program always declares three global arrays
   (a0..a2, 16 cells) and three global scalars (s0..s2) before the random
   body, so every name reference is valid. *)

module B = Ddp_minir.Builder
module Gen = QCheck.Gen

let arr_size = 16
let arrays = [| "a0"; "a1"; "a2" |]
let scalars = [| "s0"; "s1"; "s2" |]

let gen_array = Gen.map (fun i -> arrays.(i mod Array.length arrays)) Gen.small_nat
let gen_scalar = Gen.map (fun i -> scalars.(i mod Array.length scalars)) Gen.small_nat

(* Expressions: depth-bounded; [idx_vars] are in-scope loop variables,
   always in [0, arr_size). *)
let rec gen_expr ~idx_vars depth =
  let open Gen in
  let leaf =
    oneof
      ([
         map (fun n -> B.i (n mod 64)) small_nat;
         map (fun x -> B.f (Float.of_int (x mod 100) /. 7.0)) small_nat;
         map B.v gen_scalar;
       ]
      @ (if idx_vars = [] then [] else [ map B.v (oneofl idx_vars) ]))
  in
  if depth <= 0 then leaf
  else
    frequency
      [
        (3, leaf);
        (2, map2 (fun a e -> B.idx a e) gen_array (gen_index ~idx_vars));
        ( 3,
          map3
            (fun op l r -> Ddp_minir.Ast.Binop (op, l, r))
            (oneofl [ Ddp_minir.Value.Add; Sub; Mul; Min; Max ])
            (gen_expr ~idx_vars (depth - 1))
            (gen_expr ~idx_vars (depth - 1)) );
      ]

(* Indices stay in range: a loop variable, a constant, or (var + c) mod
   size via min/max clamping. *)
and gen_index ~idx_vars =
  let open Gen in
  oneof
    ([ map (fun n -> B.i (n mod arr_size)) small_nat ]
    @
    if idx_vars = [] then []
    else
      [
        map B.v (oneofl idx_vars);
        map2
          (fun name c -> B.(min_ (max_ (v name +: i (c mod 3)) (i 0)) (i (arr_size - 1))))
          (oneofl idx_vars) small_nat;
      ])

let gen_cond ~idx_vars =
  let open Gen in
  map3
    (fun op l r -> Ddp_minir.Ast.Binop (op, l, r))
    (oneofl [ Ddp_minir.Value.Lt; Le; Gt; Ge; Eq; Ne ])
    (gen_expr ~idx_vars 1) (gen_expr ~idx_vars 1)

(* Statements; [depth] bounds loop/if nesting, [fuel] total statements. *)
let rec gen_stmt ~idx_vars ~depth =
  let open Gen in
  let simple =
    [
      (3, map2 (fun s e -> B.assign s e) gen_scalar (gen_expr ~idx_vars 2));
      ( 3,
        map3 (fun a ix e -> B.store a ix e) gen_array (gen_index ~idx_vars)
          (gen_expr ~idx_vars 2) );
    ]
  in
  let nested =
    if depth <= 0 then []
    else
      [
        ( 1,
          (* fresh loop variable name derived from depth to avoid capture *)
          let lv = Printf.sprintf "i%d" depth in
          map2
            (fun bound body -> B.for_ lv (B.i 0) (B.i (2 + (bound mod 6))) (fun _ -> body))
            small_nat
            (gen_block ~idx_vars:(lv :: idx_vars) ~depth:(depth - 1) ~len:2) );
        ( 1,
          map3
            (fun c t e -> B.if_ c t e)
            (gen_cond ~idx_vars)
            (gen_block ~idx_vars ~depth:(depth - 1) ~len:2)
            (gen_block ~idx_vars ~depth:(depth - 1) ~len:1) );
      ]
  in
  frequency (simple @ nested)

and gen_block ~idx_vars ~depth ~len =
  Gen.list_size (Gen.int_range 1 len) (gen_stmt ~idx_vars ~depth)

let gen_program =
  Gen.map
    (fun body ->
      B.program ~name:"rand"
        ([
           B.arr "a0" (B.i arr_size);
           B.arr "a1" (B.i arr_size);
           B.arr "a2" (B.i arr_size);
           B.local "s0" (B.i 1);
           B.local "s1" (B.f 2.0);
           B.local "s2" (B.i 3);
         ]
        @ body))
    (gen_block ~idx_vars:[] ~depth:3 ~len:8)

let arbitrary_program = QCheck.make gen_program
