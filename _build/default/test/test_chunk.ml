(* Tests for the access-chunk transfer unit. *)

let test_push_read_back () =
  let c = Ddp_core.Chunk.create ~capacity:8 in
  Ddp_core.Chunk.push c ~addr:42 ~op:Ddp_core.Chunk.op_write ~payload:7 ~time:13;
  Ddp_core.Chunk.push c ~addr:43 ~op:Ddp_core.Chunk.op_read ~payload:9 ~time:14;
  Ddp_core.Chunk.push c ~addr:44 ~op:Ddp_core.Chunk.op_free ~payload:1 ~time:0;
  Alcotest.(check int) "len" 3 (Ddp_core.Chunk.length c);
  Alcotest.(check int) "addr" 42 (Ddp_core.Chunk.addr c 0);
  Alcotest.(check int) "op write" Ddp_core.Chunk.op_write (Ddp_core.Chunk.op c 0);
  Alcotest.(check int) "payload" 7 (Ddp_core.Chunk.payload c 0);
  Alcotest.(check int) "time" 13 (Ddp_core.Chunk.time c 0);
  Alcotest.(check int) "op read" Ddp_core.Chunk.op_read (Ddp_core.Chunk.op c 1);
  Alcotest.(check int) "op free" Ddp_core.Chunk.op_free (Ddp_core.Chunk.op c 2)

let test_full_and_clear () =
  let c = Ddp_core.Chunk.create ~capacity:2 in
  Alcotest.(check bool) "not full" false (Ddp_core.Chunk.is_full c);
  Ddp_core.Chunk.push c ~addr:1 ~op:0 ~payload:1 ~time:1;
  Ddp_core.Chunk.push c ~addr:2 ~op:0 ~payload:1 ~time:2;
  Alcotest.(check bool) "full" true (Ddp_core.Chunk.is_full c);
  Ddp_core.Chunk.clear c;
  Alcotest.(check int) "cleared" 0 (Ddp_core.Chunk.length c);
  Alcotest.(check bool) "reusable" false (Ddp_core.Chunk.is_full c)

let test_payload_width () =
  (* The largest packable payload must survive the op tag packing. *)
  let loc = Ddp_minir.Loc.make ~file:Ddp_minir.Loc.max_file ~line:Ddp_minir.Loc.max_line in
  let payload =
    Ddp_core.Payload.pack ~loc ~var:Ddp_core.Payload.max_var ~thread:Ddp_core.Payload.max_thread
  in
  let c = Ddp_core.Chunk.create ~capacity:1 in
  Ddp_core.Chunk.push c ~addr:0 ~op:Ddp_core.Chunk.op_write ~payload ~time:0;
  Alcotest.(check int) "payload intact" payload (Ddp_core.Chunk.payload c 0);
  Alcotest.(check int) "op intact" Ddp_core.Chunk.op_write (Ddp_core.Chunk.op c 0)

let test_invalid_capacity () =
  Alcotest.check_raises "zero" (Invalid_argument "Chunk.create: capacity must be positive")
    (fun () -> ignore (Ddp_core.Chunk.create ~capacity:0))

let test_bytes_scale () =
  let small = Ddp_core.Chunk.create ~capacity:16 in
  let big = Ddp_core.Chunk.create ~capacity:1024 in
  Alcotest.(check bool) "bytes grow with capacity" true
    (Ddp_core.Chunk.bytes big > Ddp_core.Chunk.bytes small)

let suite =
  [
    Alcotest.test_case "push and read back" `Quick test_push_read_back;
    Alcotest.test_case "full and clear" `Quick test_full_and_clear;
    Alcotest.test_case "payload width" `Quick test_payload_width;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
    Alcotest.test_case "bytes scale" `Quick test_bytes_scale;
  ]
