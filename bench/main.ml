(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Sec. VI and VII) plus the ablations called out in
   DESIGN.md.

     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- table1 fig9  -- a selection
     dune exec bench/main.exe -- --list

   Experiment ids: table1 fig5 fig6 fig7 fig8 table2 fig9 eq2 merge
   ablate-baselines ablate-war ablate-redist micro.
   (fig5/fig7 share one measurement pass, as do fig6/fig8.)

   See EXPERIMENTS.md for paper-vs-measured discussion; DESIGN.md for the
   1-core makespan-model methodology. *)

module Config = Ddp_core.Config
module H = Harness
module Wl = Ddp_workloads.Wl

let fprintf = Printf.printf

(* Baseline engines register themselves on load; the explicit call forces
   linkage so "shadow"/"hashtable"/"stride" resolve in the registry. *)
let () = Ddp_baselines.Baseline_engines.register ()

let bench_config =
  {
    Config.default with
    slots = 1 lsl 20;
    chunk_size = 1024;
    queue_capacity = 64;
    redistribution_interval = 500;
    stats_sample = 16;
  }

let seq_prog name () = (Ddp_workloads.Registry.find name).Wl.seq ~scale:1

let par_prog ?(threads = 4) name () =
  match (Ddp_workloads.Registry.find name).Wl.par with
  | Some par -> par ~threads ~scale:1
  | None -> invalid_arg (name ^ " has no parallel variant")

let nas_names = List.map (fun (w : Wl.t) -> w.name) Ddp_workloads.Registry.nas
let star_names = List.map (fun (w : Wl.t) -> w.name) Ddp_workloads.Registry.starbench

(* ==== Table I: accuracy of profiled dependences ========================== *)

(* The paper sweeps 1e6 / 1e7 / 1e8 slots over workloads with 4e2..6e6
   addresses.  Our scaled workloads touch 1e2..4e5 addresses, so the
   sweep is scaled to keep the slots-to-addresses ratios comparable. *)
let table1_slot_sizes = [ 1 lsl 12; 1 lsl 15; 1 lsl 19 ]

let table1 () =
  H.header
    "Table I: false positive / false negative rates of profiled dependences (Starbench)";
  (* Every approximate engine in the registry is measured against the
     exact "perfect" oracle: adding an engine adds rows, not wiring. *)
  let engines =
    List.filter (fun (e : Ddp_core.Engine.t) -> not e.exact) (Ddp_core.Engine.all ())
  in
  fprintf "%-16s %5s %9s %10s %6s" "program/engine" "LOC" "#addr" "#accesses" "#deps";
  List.iter
    (fun slots -> fprintf " | m=2^%-2d FPR%%  FNR%%" (int_of_float (log (float_of_int slots) /. log 2.0)))
    table1_slot_sizes;
  fprintf "\n";
  let sums = Hashtbl.create 8 in
  let sums_of (e : Ddp_core.Engine.t) =
    match Hashtbl.find_opt sums e.name with
    | Some a -> a
    | None ->
      let a = Array.make (2 * List.length table1_slot_sizes) 0.0 in
      Hashtbl.add sums e.name a;
      a
  in
  let count = ref 0 in
  List.iter
    (fun name ->
      let perfect =
        Ddp_core.Profiler.profile ~mode:"perfect" ~config:bench_config (seq_prog name ())
      in
      fprintf "%-16s %5d %9d %10d %6d\n" name perfect.run_stats.lines
        perfect.run_stats.addresses perfect.run_stats.accesses
        (Ddp_core.Dep_store.distinct perfect.deps);
      incr count;
      List.iter
        (fun (engine : Ddp_core.Engine.t) ->
          let a = sums_of engine in
          fprintf "  %-14s %5s %9s %10s %6s" engine.name "" "" "" "";
          List.iteri
            (fun i slots ->
              let o =
                Ddp_core.Profiler.profile ~mode:engine.name
                  ~config:{ bench_config with slots }
                  (seq_prog name ())
              in
              let acc = Ddp_core.Accuracy.compare_stores ~profiled:o.deps ~perfect:perfect.deps in
              a.(2 * i) <- a.(2 * i) +. acc.fpr;
              a.((2 * i) + 1) <- a.((2 * i) + 1) +. acc.fnr;
              fprintf " | %11.2f %5.2f" (100.0 *. acc.fpr) (100.0 *. acc.fnr))
            table1_slot_sizes;
          fprintf "\n%!")
        engines)
    star_names;
  List.iter
    (fun (engine : Ddp_core.Engine.t) ->
      let a = sums_of engine in
      fprintf "%-16s %5s %9s %10s %6s" ("avg:" ^ engine.name) "" "" "" "";
      List.iteri
        (fun i _ ->
          fprintf " | %11.2f %5.2f"
            (100.0 *. a.(2 * i) /. float_of_int !count)
            (100.0 *. a.((2 * i) + 1) /. float_of_int !count))
        table1_slot_sizes;
      fprintf "\n")
    engines;
  fprintf
    "shape check (paper: 24.5/5.4 -> 4.7/0.7 -> 0.35/0.04): signature-engine rates fall\n\
     steeply with slots; mt/parallel must match serial (same stores behind other\n\
     plumbing); stride is slot-independent (range compression, not hashing).\n"

(* ==== Fig. 5 + Fig. 7: sequential slowdown and memory =================== *)

type seq_row = {
  sr_name : string;
  sr_suite : string;
  sr_native : float;
  sr_serial : float;
  sr_serial_mem : int;
  sr_events : int;
  sr_imbalance : float;  (* max/mean worker load at 8 workers *)
  sr_lb8 : float;  (* measured wall, lock-based 8 workers *)
  sr_lb8_model : float;
  sr_lf8 : float;
  sr_lf8_model : float;
  sr_lf8_mem : int;
  sr_lf16 : float;
  sr_lf16_model : float;
  sr_lf16_mem : int;
  sr_curve : (int * float) list;  (* modeled slowdown at 1/2/4/8/16 workers *)
}

let parallel_mem (r : Ddp_core.Parallel_profiler.result) =
  r.signature_bytes + r.queue_bytes + r.chunk_bytes + r.dispatch_bytes
  + Ddp_core.Dep_store.approx_bytes r.deps

(* The paper fixes the signature size *per profiling thread* (6.25e6
   slots each, aggregating to 1e8 at 16 threads), so signature memory
   grows with the thread count; we scale the same way: [slots_per_worker]
   each, the serial profiler getting the 16-worker aggregate. *)
let slots_per_worker = bench_config.Config.slots / 16

let seq_config ~workers ~lock_free =
  { bench_config with workers; lock_free; slots = slots_per_worker * workers }

let measure_seq cal name suite =
  let prog_fn = seq_prog name in
  let native = H.run_native prog_fn in
  let serial_time, _, sp = H.run_serial ~config:bench_config prog_fn in
  let serial_mem =
    sp.Ddp_core.Serial_profiler.store_bytes ()
    + Ddp_core.Dep_store.approx_bytes sp.Ddp_core.Serial_profiler.deps
  in
  let run ~workers ~lock_free =
    let config = seq_config ~workers ~lock_free in
    let time, _, result, _ = H.run_parallel ~config prog_fn in
    let model =
      H.modeled_time cal ~lock_free ~native_time:native.native_time
        ~per_worker_events:result.per_worker_events
    in
    (time, model, parallel_mem result, result)
  in
  let lb8, lb8_model, _, _ = run ~workers:8 ~lock_free:false in
  let lf8, lf8_model, lf8_mem, r8 = run ~workers:8 ~lock_free:true in
  let lf16, lf16_model, lf16_mem, _ = run ~workers:16 ~lock_free:true in
  let imbalance =
    Ddp_util.Stats.imbalance (Array.map float_of_int r8.per_worker_events)
  in
  let events = Array.fold_left ( + ) 0 r8.per_worker_events in
  let curve =
    List.map
      (fun workers ->
        ( workers,
          H.modeled_time_at cal ~lock_free:true ~native_time:native.native_time ~events ~workers
            ~imbalance
          /. native.native_time ))
      [ 1; 2; 4; 8; 16 ]
  in
  {
    sr_name = name;
    sr_suite = suite;
    sr_native = native.native_time;
    sr_serial = serial_time;
    sr_serial_mem = serial_mem;
    sr_events = events;
    sr_imbalance = imbalance;
    sr_lb8 = lb8;
    sr_lb8_model = lb8_model;
    sr_lf8 = lf8;
    sr_lf8_model = lf8_model;
    sr_lf8_mem = lf8_mem;
    sr_lf16 = lf16;
    sr_lf16_model = lf16_model;
    sr_lf16_mem = lf16_mem;
    sr_curve = curve;
  }

let seq_rows = ref ([] : seq_row list)

let get_seq_rows () =
  if !seq_rows = [] then begin
    let cal = H.calibrate ~config:bench_config () in
    fprintf
      "calibration: t_process=%.0f ns/ev, t_route(lock-free)=%.0f ns/ev, t_route(lock-based)=%.0f ns/ev\n"
      (1e9 *. cal.H.t_process)
      (1e9 *. cal.H.t_route_lock_free)
      (1e9 *. cal.H.t_route_lock_based);
    fprintf
      "             contended queue transfer: %.2f us/chunk lock-free vs %.2f us/chunk lock-based (%.1fx);\n\
      \             at %d accesses/chunk the queue cost amortizes to <1%% of routing, so the\n\
      \             model predicts near-parity; any lock-free gain appears only in the\n\
      \             measured (contended) columns, and 1-core timeslicing makes those noisy.\n%!"
      (1e6 *. cal.H.t_queue_chunk_lf) (1e6 *. cal.H.t_queue_chunk_lb)
      (cal.H.t_queue_chunk_lb /. cal.H.t_queue_chunk_lf)
      bench_config.Config.chunk_size;
    seq_rows :=
      List.map (fun n -> measure_seq cal n "NAS") nas_names
      @ List.map (fun n -> measure_seq cal n "Starbench") star_names
  end;
  !seq_rows

let avg f rows = Ddp_util.Stats.mean (Array.of_list (List.map f rows))

let fig5 () =
  H.header "Fig. 5: profiler slowdowns, sequential NAS + Starbench";
  fprintf "(measured = 1-core wall clock; modeled = multicore pipeline makespan)\n";
  let rows = get_seq_rows () in
  fprintf "%-14s | %8s | %9s %9s %9s | %9s %9s %9s\n" "program" "serial" "8T-lock" "8T-free"
    "16T-free" "8T-lock*" "8T-free*" "16T-free*";
  fprintf "%-14s | %8s | %27s | %29s\n" "" "" "measured slowdown (1 core)"
    "modeled multicore slowdown";
  let print_row r =
    let s x = x /. r.sr_native in
    fprintf "%-14s | %8s | %9s %9s %9s | %9s %9s %9s\n" r.sr_name
      (H.pp_slowdown (s r.sr_serial))
      (H.pp_slowdown (s r.sr_lb8))
      (H.pp_slowdown (s r.sr_lf8))
      (H.pp_slowdown (s r.sr_lf16))
      (H.pp_slowdown (s r.sr_lb8_model))
      (H.pp_slowdown (s r.sr_lf8_model))
      (H.pp_slowdown (s r.sr_lf16_model))
  in
  List.iter print_row rows;
  let averages suite =
    let rs = List.filter (fun r -> r.sr_suite = suite) rows in
    fprintf "%-14s | %8s | %9s %9s %9s | %9s %9s %9s\n" (suite ^ "-average")
      (H.pp_slowdown (avg (fun r -> r.sr_serial /. r.sr_native) rs))
      (H.pp_slowdown (avg (fun r -> r.sr_lb8 /. r.sr_native) rs))
      (H.pp_slowdown (avg (fun r -> r.sr_lf8 /. r.sr_native) rs))
      (H.pp_slowdown (avg (fun r -> r.sr_lf16 /. r.sr_native) rs))
      (H.pp_slowdown (avg (fun r -> r.sr_lb8_model /. r.sr_native) rs))
      (H.pp_slowdown (avg (fun r -> r.sr_lf8_model /. r.sr_native) rs))
      (H.pp_slowdown (avg (fun r -> r.sr_lf16_model /. r.sr_native) rs))
  in
  averages "NAS";
  averages "Starbench";
  fprintf "\nmodeled slowdown curve vs profiling threads (lock-free; the paper's scaling story):\n";
  fprintf "%-14s %9s %9s %9s %9s %9s %9s  %s\n" "program" "serial" "W=1" "W=2" "W=4" "W=8"
    "W=16" "imbalance";
  List.iter
    (fun r ->
      fprintf "%-14s %9s" r.sr_name (H.pp_slowdown (r.sr_serial /. r.sr_native));
      List.iter (fun (_, s) -> fprintf " %9s" (H.pp_slowdown s)) r.sr_curve;
      fprintf " %9.2f\n" r.sr_imbalance)
    rows;
  fprintf
    "shape check (paper: serial 190x -> 8T ~100x -> 16T ~78-93x, i.e. 2.4x speedup\n\
     at 16T, sub-linear; lock-free beats lock-based by 1.3-1.6x): the modeled curve\n\
     must fall with workers and then saturate at the producer bound, with skewed\n\
     workloads (high imbalance, cf. md5/kmeans) saturating earlier — the paper's\n\
     own explanation for its non-linear speedup (Sec. VI-B).\n"

let fig7 () =
  H.header "Fig. 7: profiler memory consumption, sequential NAS + Starbench (accounted bytes)";
  let rows = get_seq_rows () in
  fprintf "%-14s %12s %12s %12s\n" "program" "serial(MiB)" "8T(MiB)" "16T(MiB)";
  List.iter
    (fun r ->
      fprintf "%-14s %12.1f %12.1f %12.1f\n" r.sr_name (H.mib r.sr_serial_mem)
        (H.mib r.sr_lf8_mem) (H.mib r.sr_lf16_mem))
    rows;
  let averages suite =
    let rs = List.filter (fun r -> r.sr_suite = suite) rows in
    fprintf "%-14s %12.1f %12.1f %12.1f\n" (suite ^ "-average")
      (H.mib (int_of_float (avg (fun r -> float_of_int r.sr_serial_mem) rs)))
      (H.mib (int_of_float (avg (fun r -> float_of_int r.sr_lf8_mem) rs)))
      (H.mib (int_of_float (avg (fun r -> float_of_int r.sr_lf16_mem) rs)))
  in
  averages "NAS";
  averages "Starbench";
  fprintf
    "shape check (paper: 473-505 MB at 8T, 649-1390 MB at 16T, signatures dominate):\n\
     signature bytes scale with total slots; queue/chunk pools grow with workers.\n"

(* ==== Fig. 6 + Fig. 8: multi-threaded targets ============================ *)

type mt_row = {
  mr_name : string;
  mr_native : float;
  mr_w8 : float;
  mr_w8_model : float;
  mr_w8_mem : int;
  mr_w16 : float;
  mr_w16_model : float;
  mr_w16_mem : int;
  mr_races : int;
}

let mt_rows = ref ([] : mt_row list)

let get_mt_rows () =
  if !mt_rows = [] then begin
    let cal = H.calibrate ~config:bench_config () in
    mt_rows :=
      List.map
        (fun name ->
          let prog_fn = par_prog ~threads:4 name in
          let native = H.run_native prog_fn in
          let run workers =
            let config =
              { (seq_config ~workers ~lock_free:true) with check_timestamps = true }
            in
            let time, _, result, mt_bytes = H.run_parallel ~mt:true ~config prog_fn in
            let model =
              H.modeled_time ~mt:true cal ~lock_free:true ~native_time:native.H.native_time
                ~per_worker_events:result.per_worker_events
            in
            (time, model, parallel_mem result + mt_bytes, result)
          in
          let w8, w8_model, w8_mem, _ = run 8 in
          let w16, w16_model, w16_mem, r16 = run 16 in
          {
            mr_name = name;
            mr_native = native.H.native_time;
            mr_w8 = w8;
            mr_w8_model = w8_model;
            mr_w8_mem = w8_mem;
            mr_w16 = w16;
            mr_w16_model = w16_model;
            mr_w16_mem = w16_mem;
            mr_races = Ddp_analyses.Race_report.count r16.Ddp_core.Parallel_profiler.deps;
          })
        star_names
  end;
  !mt_rows

let fig6 () =
  H.header "Fig. 6: profiler slowdown, parallel Starbench targets (pthread-style, 4 threads)";
  let rows = get_mt_rows () in
  fprintf "%-14s | %9s %9s | %9s %9s | %6s\n" "program" "8T-wall" "16T-wall" "8T-model"
    "16T-model" "races";
  List.iter
    (fun r ->
      fprintf "%-14s | %9s %9s | %9s %9s | %6d\n" r.mr_name
        (H.pp_slowdown (r.mr_w8 /. r.mr_native))
        (H.pp_slowdown (r.mr_w16 /. r.mr_native))
        (H.pp_slowdown (r.mr_w8_model /. r.mr_native))
        (H.pp_slowdown (r.mr_w16_model /. r.mr_native))
        r.mr_races)
    rows;
  fprintf "%-14s | %9s %9s | %9s %9s |\n" "average"
    (H.pp_slowdown (avg (fun r -> r.mr_w8 /. r.mr_native) rows))
    (H.pp_slowdown (avg (fun r -> r.mr_w16 /. r.mr_native) rows))
    (H.pp_slowdown (avg (fun r -> r.mr_w8_model /. r.mr_native) rows))
    (H.pp_slowdown (avg (fun r -> r.mr_w16_model /. r.mr_native) rows));
  fprintf
    "shape check (paper: 346x at 8T -> 261x at 16T, higher than sequential profiling):\n\
     MT overhead exceeds the sequential case (reorder buffers, timestamps), and the\n\
     modeled slowdown falls with more profiling threads.\n"

let fig8 () =
  H.header "Fig. 8: profiler memory, parallel Starbench targets (accounted bytes)";
  let rows = get_mt_rows () in
  fprintf "%-14s %12s %12s\n" "program" "8T(MiB)" "16T(MiB)";
  List.iter
    (fun r -> fprintf "%-14s %12.1f %12.1f\n" r.mr_name (H.mib r.mr_w8_mem) (H.mib r.mr_w16_mem))
    rows;
  fprintf "%-14s %12.1f %12.1f\n" "average"
    (H.mib (int_of_float (avg (fun r -> float_of_int r.mr_w8_mem) rows)))
    (H.mib (int_of_float (avg (fun r -> float_of_int r.mr_w16_mem) rows)));
  fprintf
    "shape check (paper: 995 MB at 8T / 1920 MB at 16T, above the sequential case):\n\
     memory grows with profiling threads and exceeds the Fig. 7 numbers.\n"

(* ==== Table II: parallelizable-loop detection ============================ *)

let table2 () =
  H.header "Table II: detection of parallelizable loops in NAS benchmarks";
  fprintf "%-8s %7s %15s %16s %9s\n" "program" "# OMP" "# identified(DP)" "# identified(sig)"
    "# missed";
  let totals = Array.make 4 0 in
  List.iter
    (fun name ->
      let prog () = seq_prog name () in
      let dp = Ddp_analyses.Loop_parallelism.analyze ~perfect:true (prog ()) in
      let sg =
        Ddp_analyses.Loop_parallelism.analyze ~config:bench_config ~perfect:false (prog ())
      in
      let missed_vs_dp = dp.identified - sg.identified in
      fprintf "%-8s %7d %15d %16d %9d\n" name dp.annotated_total dp.identified sg.identified
        missed_vs_dp;
      totals.(0) <- totals.(0) + dp.annotated_total;
      totals.(1) <- totals.(1) + dp.identified;
      totals.(2) <- totals.(2) + sg.identified;
      totals.(3) <- totals.(3) + missed_vs_dp)
    nas_names;
  fprintf "%-8s %7d %15d %16d %9d\n" "Overall" totals.(0) totals.(1) totals.(2) totals.(3);
  fprintf
    "shape check (paper: 136/147 identified, signature misses 0 vs DiscoPoP): the\n\
     signature column must equal the DP column (0 missed), with some annotated\n\
     loops unprovable for both (atomics/criticals invisible to dependence tests).\n"

(* ==== Fig. 9: communication pattern ===================================== *)

let fig9 () =
  H.header "Fig. 9: communication pattern of water-spatial (4 worker threads)";
  let prog = Ddp_workloads.Water_spatial.par ~threads:4 ~scale:2 in
  let outcome = Ddp_core.Profiler.profile ~mode:"serial" ~mt:true prog in
  let m = Ddp_analyses.Comm_pattern.workers_only (Ddp_analyses.Comm_pattern.of_deps outcome.deps) in
  print_string (Ddp_analyses.Comm_pattern.render m);
  let total = Ddp_analyses.Comm_pattern.total_volume m in
  let banded = ref 0.0 in
  let n = Ddp_util.Matrix.rows m in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if abs (r - c) = 1 then banded := !banded +. Ddp_util.Matrix.get m r c
    done
  done;
  fprintf "cross-thread RAW volume: %.0f; neighbour-band share: %.1f%%\n" total
    (100.0 *. !banded /. total);
  fprintf
    "shape check (paper Fig. 9): halo exchange between adjacent slab owners gives a\n\
     banded matrix; the lock-protected global sum adds a faint background.\n"

(* ==== Eq. (2): FPR model ================================================= *)

let eq2 () =
  H.header "Eq. (2): predicted vs measured false-positive behaviour";
  List.iter
    (fun name ->
      let prog_fn = seq_prog name in
      let native = H.run_native prog_fn in
      let perfect =
        Ddp_core.Profiler.profile ~mode:"perfect" ~config:bench_config (prog_fn ())
      in
      fprintf "%s (%d addresses):\n" name native.H.addresses;
      List.iter
        (fun slots ->
          let predicted = Ddp_core.Fpr_model.p_fp ~slots ~addresses:native.H.addresses in
          let o =
            Ddp_core.Profiler.profile ~mode:"serial" ~config:{ bench_config with slots }
              (prog_fn ())
          in
          let acc = Ddp_core.Accuracy.compare_stores ~profiled:o.deps ~perfect:perfect.deps in
          fprintf "  slots %8d: predicted slot collision %6.2f%%   measured dep FPR %6.2f%% FNR %5.2f%%\n"
            slots (100.0 *. predicted) (100.0 *. acc.fpr) (100.0 *. acc.fnr))
        [ 1 lsl 12; 1 lsl 14; 1 lsl 16; 1 lsl 18; 1 lsl 20 ])
    [ "rotate"; "rgbyuv"; "streamcluster" ];
  fprintf
    "shape check: measured FPR/FNR fall monotonically as predicted collision falls;\n\
     P_fp is inversely proportional to m and proportional to n (paper Sec. VI-A).\n"

(* ==== merging ablation =================================================== *)

let merge () =
  H.header "Merging identical dependences (paper Sec. III-B: ~1e5x output reduction)";
  fprintf "%-14s %12s %10s %12s %14s\n" "program" "occurrences" "distinct" "merge-factor"
    "est. raw size";
  List.iter
    (fun name ->
      let o =
        Ddp_core.Profiler.profile ~mode:"serial" ~config:bench_config (seq_prog name ())
      in
      (* ~40 bytes per textual dependence record, the paper's 6.1 GB -> 53 KB
         comparison in miniature *)
      let raw_bytes = 40 * Ddp_core.Dep_store.total_occurrences o.deps in
      fprintf "%-14s %12d %10d %11.0fx %11.1f MiB\n" name
        (Ddp_core.Dep_store.total_occurrences o.deps)
        (Ddp_core.Dep_store.distinct o.deps)
        (Ddp_core.Dep_store.merge_factor o.deps)
        (H.mib raw_bytes))
    nas_names

(* ==== baselines ablation ================================================= *)

let ablate_baselines () =
  H.header "Ablation: signature vs hash table vs shadow memory (paper Sec. III-B)";
  (* The comparison is made on a synthetic access stream (flat int
     arrays), so the measured time is purely the engine's: this mirrors
     the paper's setting, where instrumentation is cheap native code and
     the access-record bookkeeping dominates.  Every store-style engine
     in the registry gets a row ("parallel"/"mt" are pipeline plumbing
     around the serial store, not stores, so they are skipped); the same
     Source feeds each one. *)
  let n = 3_000_000 in
  let distinct = 200_000 in
  let rng = Ddp_util.Rng.create 17 in
  let addrs = Array.init n (fun _ -> Ddp_util.Rng.int rng distinct) in
  let is_write = Array.init n (fun _ -> Ddp_util.Rng.bool rng) in
  let loc = Ddp_minir.Loc.make ~file:1 ~line:1 in
  let source =
    Ddp_core.Source.of_fn ~name:"synthetic-trace" (fun hooks ->
        for i = 0 to n - 1 do
          if is_write.(i) then
            hooks.Ddp_minir.Event.on_write ~addr:addrs.(i) ~loc ~var:0 ~thread:0 ~time:i
              ~locked:false
          else
            hooks.Ddp_minir.Event.on_read ~addr:addrs.(i) ~loc ~var:0 ~thread:0 ~time:i
              ~locked:false
        done;
        n)
  in
  let engines =
    List.filter
      (fun (e : Ddp_core.Engine.t) -> e.name <> "parallel" && e.name <> "mt")
      (Ddp_core.Engine.all ())
  in
  fprintf "trace: %d accesses over %d distinct addresses\n" n distinct;
  fprintf "%-22s %10s %12s %12s\n" "engine" "time(s)" "ns/access" "memory(MiB)";
  let t_sig = ref 0.0 in
  List.iter
    (fun (engine : Ddp_core.Engine.t) ->
      let o = Ddp_core.Profiler.run ~mode:engine.name ~config:bench_config source in
      if engine.name = "serial" then t_sig := o.elapsed;
      fprintf "%-22s %10.3f %12.1f %12.2f%s\n" engine.name o.elapsed
        (1e9 *. o.elapsed /. float_of_int n)
        (H.mib o.store_bytes)
        (if engine.name = "serial" || !t_sig = 0.0 then ""
         else Printf.sprintf "   (%.2fx vs signature)" (o.elapsed /. !t_sig)))
    engines;
  (* flat shadow under realistic (sparse) pointer spread *)
  (* Flat shadow memory pays for the whole address range.  Under a
     realistic 4096x pointer spread the table for this trace would need
     ~13 GiB — the paper's "impossible ... if no more than 16 GB of
     memory is available" case — so the requirement is computed, and
     demonstrated by allocation only on a 1000-address slice. *)
  let spread_factor = 4096 in
  let full_range =
    Ddp_baselines.Shadow_memory.Addr_spread.spread ~factor:spread_factor (distinct - 1) + 1
  in
  fprintf "%-22s %10s %12s %12.2f   (computed: flat table over a %dx-spread space)\n"
    "flat shadow memory" "-" "-"
    (H.mib (full_range * 16))
    spread_factor;
  let flat = Ddp_baselines.Shadow_memory.Flat.create () in
  for a = 0 to 999 do
    Ddp_baselines.Shadow_memory.Flat.set flat
      ~addr:(Ddp_baselines.Shadow_memory.Addr_spread.spread ~factor:spread_factor a)
      ~payload:1 ~time:0
  done;
  fprintf "%-22s %10s %12s %12.2f   (allocated: same layout, first 1000 addresses)\n"
    "  (1000-addr slice)" "-" "-"
    (H.mib (Ddp_baselines.Shadow_memory.Flat.bytes flat));
  fprintf
    "shape check (paper: hash table 1.5-3.7x slower than signatures; flat shadow\n\
     infeasible on sparse address spaces; signatures bound memory by construction).\n"

(* ==== WAR pseudocode ablation ============================================ *)

let ablate_war () =
  H.header "Ablation: literal Algorithm 1 WAR (requires prior write) vs prose behaviour";
  fprintf "%-14s %12s %14s %10s\n" "program" "WAR (prose)" "WAR (literal)" "lost";
  List.iter
    (fun name ->
      let war_count config =
        let o = Ddp_core.Profiler.profile ~mode:"serial" ~config (seq_prog name ()) in
        let _, war, _, _, _ = Ddp_core.Report.kind_counts o.deps in
        war
      in
      let prose = war_count bench_config in
      let literal = war_count { bench_config with war_requires_prior_write = true } in
      fprintf "%-14s %12d %14d %9.1f%%\n" name prose literal
        (100.0 *. float_of_int (prose - literal) /. float_of_int (max prose 1)))
    [ "is"; "cg"; "mg"; "c-ray"; "kmeans"; "tinyjpeg" ];
  (* The workloads above initialize arrays before reading them, so both
     variants agree there.  An in-place update of *externally initialized*
     data (zero-filled buffers, memory-mapped input) reads before any
     recorded write — the case the literal pseudocode silently drops. *)
  let module B = Ddp_minir.Builder in
  let inplace () =
    B.program ~name:"inplace"
      [
        B.arr "buf" (B.i 256);
        (* scale in place: read buf[i] (never written), then overwrite *)
        B.for_ "i" (B.i 0) (B.i 256) (fun iv ->
            [ B.store "buf" iv B.(idx "buf" iv *: i 3) ]);
      ]
  in
  let war_of config =
    let o = Ddp_core.Profiler.profile ~mode:"serial" ~config (inplace ()) in
    let _, war, _, _, _ = Ddp_core.Report.kind_counts o.deps in
    war
  in
  let prose = war_of bench_config in
  let literal = war_of { bench_config with war_requires_prior_write = true } in
  fprintf "%-14s %12d %14d %9.1f%%   (uninitialized-input update)\n" "inplace-scale" prose
    literal
    (100.0 *. float_of_int (prose - literal) /. float_of_int (max prose 1));
  fprintf
    "the literal pseudocode silently drops WAR dependences whose address was read\n\
     but never previously written (externally initialized / zero-filled inputs);\n\
     on write-before-read workloads the two variants agree.\n"

(* ==== redistribution ablation ============================================ *)

(* A histogram whose counters sit at stride-W addresses: under the modulo
   rule every hot counter lands on the *same* worker — the pathological
   skew the paper's redistribution exists for.  (Real workloads below it
   for contrast: their hot scalars have consecutive addresses, which the
   modulo rule already spreads, so redistribution rarely fires — matching
   the paper's "at most 20 times per benchmark".) *)
let skewed_histogram () =
  let module B = Ddp_minir.Builder in
  let w = 8 in
  B.program ~name:"skewed-histogram"
    [
      B.arr "h" (B.i (w * w));
      Ddp_workloads.Wl.zero_loop "h" (w * w);
      B.for_ "i" (B.i 0) (B.i 150_000) (fun _ ->
          [
            B.local "b" B.(rand_int (i w) *: i w);  (* hot cells at stride 8 *)
            B.store "h" (B.v "b") B.(idx "h" (v "b") +: i 1);
          ]);
    ]

let ablate_redist () =
  H.header "Ablation: hot-address redistribution (paper Sec. IV-A)";
  fprintf "%-18s %12s %14s %14s %12s\n" "program" "redistrib." "imbalance-on" "imbalance-off"
    "model-gain";
  let cases =
    ("skewed-histogram", fun () -> skewed_histogram ())
    :: List.map (fun name -> (name, seq_prog name)) [ "md5"; "kmeans"; "streamcluster" ]
  in
  List.iter
    (fun (name, prog_fn) ->
      let run interval =
        let config =
          { bench_config with workers = 8; redistribution_interval = interval; stats_sample = 4 }
        in
        let _, _, result, _ = H.run_parallel ~config prog_fn in
        result
      in
      let on = run 50 in
      let off = run 0 in
      let imb (r : Ddp_core.Parallel_profiler.result) =
        Ddp_util.Stats.imbalance (Array.map float_of_int r.per_worker_events)
      in
      let max_events (r : Ddp_core.Parallel_profiler.result) =
        Array.fold_left max 0 r.per_worker_events
      in
      fprintf "%-18s %12d %14.2f %14.2f %11.2fx\n" name on.redistributions (imb on) (imb off)
        (float_of_int (max_events off) /. float_of_int (max 1 (max_events on))))
    cases;
  fprintf
    "imbalance = max worker events / mean; the modeled multicore time is bounded by\n\
     the slowest worker, so lowering imbalance lowers the makespan (model-gain).\n\
     Redistribution fires on the stride-congruent histogram and stays quiet on\n\
     workloads the modulo rule already balances (paper: <= 20 redistributions).\n"

(* ==== set-based profiling ablation ======================================= *)

let ablate_sections () =
  H.header
    "Ablation: statement-level vs set-based (loop-section) profiling (paper Sec. VI-B)";
  fprintf "%-14s | %10s %10s | %10s %10s | %8s\n" "program" "stmt-deps" "sect-deps" "stmt-time"
    "sect-time" "dep-cut";
  List.iter
    (fun name ->
      let run section_level =
        let config = { bench_config with section_level } in
        let t0 = Ddp_util.Clock.now () in
        let o = Ddp_core.Profiler.profile ~mode:"serial" ~config (seq_prog name ()) in
        (Ddp_core.Dep_store.distinct o.deps, Ddp_util.Clock.now () -. t0)
      in
      let stmt_deps, stmt_time = run false in
      let sect_deps, sect_time = run true in
      fprintf "%-14s | %10d %10d | %9.2fs %9.2fs | %7.1fx\n" name stmt_deps sect_deps stmt_time
        sect_time
        (float_of_int stmt_deps /. float_of_int (max 1 sect_deps)))
    [ "is"; "cg"; "mg"; "c-ray"; "tinyjpeg"; "h264dec" ];
  fprintf
    "set-based profiling reports dependences between code sections instead of\n\
     statements.  Measured: the cut is small (1.0-1.2x) and runtime does not\n\
     improve — post-merge dependence sets are already tiny, and loop-boundary\n\
     accesses (bound evaluation before entry) can even split across sections.\n\
     This supports the paper's choice to stay statement-level for generality\n\
     (Sec. VI-B); the offline equivalent is Dep_graph.collapse_to_regions.\n"

(* ==== telemetry overhead ================================================= *)

(* The always-on contract of lib/obs: with no hub configured every call
   site is one untaken branch, so the pipeline must run at baseline
   speed; an enabled hub adds chunk-granularity work only (never on the
   per-access path).  Best-of-N wall times bound the 1-core scheduler
   noise. *)
type obs_overhead_row = {
  oo_baseline : float;  (* config.obs = None *)
  oo_disabled : float;  (* config.obs = Some Obs.disabled — same branch *)
  oo_enabled : float;  (* live hub, monotonic clock *)
  oo_noise_pct : float;  (* spread of the baseline repetitions, % of best *)
}

let measure_obs_overhead ?(repeats = 3) ?(workload = "kmeans") () =
  let prog_fn = seq_prog workload in
  let config = seq_config ~workers:4 ~lock_free:true in
  (* warm up allocators / code paths so the first measured column doesn't
     absorb one-time costs *)
  ignore (H.run_parallel ~config prog_fn);
  let time obs =
    let config = { config with Config.obs = obs } in
    let time, _, _, _ = H.run_parallel ~config prog_fn in
    time
  in
  (* Interleave the three configurations within each repetition (A/B/C,
     A/B/C, ...) rather than measuring each column's k runs in a block:
     slow machine drift (thermal, page cache, competing jobs) then hits
     every column equally instead of whichever happened to run last —
     the old blocked order made "disabled" reproducibly *faster* than
     baseline by double-digit percent on a busy host.  Min-of-k bounds
     the remaining fast noise, and the baseline's own spread across
     repetitions is reported so the overhead columns are judged against
     the measured noise floor, not an assumed one. *)
  let base = Array.make repeats infinity in
  let dis = ref infinity and ena = ref infinity in
  for i = 0 to repeats - 1 do
    base.(i) <- time None;
    dis := min !dis (time (Some Ddp_obs.Obs.disabled));
    ena := min !ena (time (Some (Ddp_obs.Obs.create ~domains:5 ())))
  done;
  let best_base = Array.fold_left min infinity base in
  let worst_base = Array.fold_left max 0.0 base in
  {
    oo_baseline = best_base;
    oo_disabled = !dis;
    oo_enabled = !ena;
    oo_noise_pct = 100.0 *. ((worst_base /. best_base) -. 1.0);
  }

let obs_overhead () =
  H.header "Telemetry overhead: parallel pipeline, disabled vs enabled hub (interleaved, best of 3)";
  let r = measure_obs_overhead () in
  let pct t = 100.0 *. ((t /. r.oo_baseline) -. 1.0) in
  fprintf "%-28s %10.3fs  (repetition spread %.2f%%)\n" "no hub (obs = None)" r.oo_baseline
    r.oo_noise_pct;
  fprintf "%-28s %10.3fs  (%+.2f%%)\n" "disabled hub" r.oo_disabled (pct r.oo_disabled);
  fprintf "%-28s %10.3fs  (%+.2f%%)\n" "enabled hub" r.oo_enabled (pct r.oo_enabled);
  fprintf
    "contract: the disabled hub is the same one-branch call sites as no hub, so its\n\
     column must sit within the measured noise; the enabled hub pays per *chunk*,\n\
     never per access, so even live telemetry stays within a few percent.\n"

(* Fixed-work calibration probe: xorshift-addressed read-modify-writes
   over an 8 MiB array — deliberately the same shape of work as a
   signature probe/set (random access over a multi-MiB table), not a
   register spin.  On shared hosts the effective speed of a core drifts
   by tens of percent between runs (frequency scaling, steal, cache
   partition changes), and memory-bound loops drift differently from
   ALU loops; matching the probe's profile to the gated metric's lets
   the ratchet divide the drift out, while a real regression in the
   profiler's own code still moves the normalized value 1:1. *)
let measure_calib_spin_ns ?(repeats = 5) ?(iters = 4_000_000) () =
  let a = Array.make (1 lsl 20) 0 in
  let best = ref infinity in
  for _ = 1 to repeats do
    let s = ref 0x9E3779B9 in
    let t0 = Ddp_util.Clock.now () in
    for _ = 1 to iters do
      let x = !s in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      s := x;
      let i = x land ((1 lsl 20) - 1) in
      Array.unsafe_set a i (Array.unsafe_get a i + 1)
    done;
    ignore (Sys.opaque_identity !s);
    let ns = 1e9 *. (Ddp_util.Clock.now () -. t0) /. float_of_int iters in
    if ns < !best then best := ns
  done;
  ignore (Sys.opaque_identity a.(0));
  !best

(* Pure worker-step cost, ns/event: pre-fill a virtual-mode single-worker
   pipeline (full chunks, queues, dispatch — but no domains, so no
   scheduler interference), then time nothing but the drain loop, where
   each [worker_step] pops and processes one chunk.  This isolates the
   per-event store work from producer routing and interpretation,
   making it the ratchet's most sensitive gate: a regression in the
   signature probe/set path moves this number almost 1:1
   (DDP_PERTURB_WORKER inflates exactly this loop, which is how the
   ratchet selftest proves the gate fires). *)
let measure_worker_step_ns ?(repeats = 24) ?(chunks = 196) () =
  let module PP = Ddp_core.Parallel_profiler in
  let module E = Ddp_minir.Event in
  let chunk_size = 1024 in
  let events = chunks * chunk_size in
  let config =
    {
      bench_config with
      Config.workers = 1;
      chunk_size;
      queue_capacity = chunks + 2;
      redistribution_interval = 0;
      (* Small signatures (256 KiB for both stores) so the drain runs
         from cache: with the default 16 MiB stores the number is
         dominated by physical-page luck (±20% between processes on
         shared hosts), which would drown the regressions this gate
         exists to catch.  The addr space is 0xFFFF, so 2^14 slots keep
         the same ~4:1 slot pressure as the big config. *)
      slots = 1 lsl 14;
    }
  in
  let loc = Ddp_minir.Loc.make ~file:1 ~line:1 in
  let best = ref infinity in
  (* repetition 0 is a discarded warmup: it faults in the signature
     arrays and brings the chunk pool and code paths into cache, which
     otherwise costs the first measured repetition ~10%. *)
  for rep = 0 to repeats do
    let t = PP.create ~virtual_mode:true config in
    PP.set_vsched t
      {
        PP.on_chunk = (fun _ -> ());
        (* With the queue sized to hold the whole pre-fill this never
           fires; kept as a safety valve so a config change degrades to a
           slightly-contaminated measurement instead of a livelock. *)
        on_stall =
          (fun (PP.Queue_full w | PP.Drain_wait w) -> ignore (PP.worker_step t w : bool));
      };
    let hooks = PP.hooks t in
    for i = 1 to events do
      if i land 3 = 0 then
        hooks.E.on_write ~addr:(i land 0xFFFF) ~loc ~var:0 ~thread:0 ~time:i ~locked:false
      else hooks.E.on_read ~addr:(i land 0xFFFF) ~loc ~var:0 ~thread:0 ~time:i ~locked:false
    done;
    let steps = ref 0 in
    let t0 = Ddp_util.Clock.now () in
    while PP.worker_step t 0 do
      incr steps
    done;
    let dt = Ddp_util.Clock.now () -. t0 in
    ignore (PP.finish t : PP.result);
    if rep > 0 && !steps > 0 then begin
      let ns = 1e9 *. dt /. float_of_int (!steps * chunk_size) in
      if ns < !best then best := ns
    end
  done;
  !best

(* ==== machine-readable bench snapshot ==================================== *)

let geomean l =
  match List.filter (fun x -> x > 0.0) l with
  | [] -> 0.0
  | l -> exp (Ddp_util.Stats.mean (Array.of_list (List.map log l)))

(* Per-event dispatch cost through the algebra's fused hot path: one
   memory event into (a) the shared null record, (b) a single-subscriber
   fusion (the subscriber's closures, physically), (c) a two-subscriber
   tee.  (b) within noise of a direct closure call is the bench-level
   witness of the no-boxing contract surviving the Handler layer. *)
let measure_dispatch_ns ?(repeats = 5) ?(events = 2_000_000) () =
  let module E = Ddp_minir.Event in
  let sink = ref 0 in
  let count =
    {
      E.on_read = (fun ~addr ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> sink := !sink + addr);
      on_write = (fun ~addr ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> sink := !sink + addr);
    }
  in
  let loc = Ddp_minir.Loc.make ~file:1 ~line:1 in
  let time_once (hooks : E.hooks) =
    let t0 = Ddp_util.Clock.now () in
    for i = 1 to events do
      hooks.E.on_read ~addr:(i land 0xFFFF) ~loc ~var:0 ~thread:0 ~time:i ~locked:false
    done;
    ignore (Sys.opaque_identity !sink);
    (Ddp_util.Clock.now () -. t0) *. 1e9 /. float_of_int events
  in
  (* Sub-ns/event measures over a few-ms window are at the mercy of one
     badly-timed preemption; min-of-k keeps them honest. *)
  let time hooks =
    let best = ref infinity in
    for _ = 1 to repeats do
      let t = time_once hooks in
      if t < !best then best := t
    done;
    !best
  in
  let null_ns = time E.null in
  let one = Ddp_minir.Handler.make ~memory:count () in
  let fused1_ns = time (Ddp_minir.Handler.fuse [ one ]) in
  let fused2_ns = time (Ddp_minir.Handler.fuse [ one; one ]) in
  (null_ns, fused1_ns, fused2_ns)

(* BENCH_profiler.json: the headline profiler numbers in one parseable
   file (geomean slowdowns vs native and vs serial, accounted peak bytes
   by category, per-event dispatch cost, telemetry overhead) for CI
   trend lines and EXPERIMENTS.md tables. *)
let bench_json () =
  H.header "BENCH_profiler.json: machine-readable profiler overhead snapshot";
  let module J = Ddp_obs.Json in
  let workloads = [ "c-ray"; "kmeans"; "md5"; "rgbyuv" ] in
  let config = seq_config ~workers:8 ~lock_free:true in
  let account = Ddp_util.Mem_account.create () in
  let rows =
    List.map
      (fun name ->
        let native = H.run_native (seq_prog name) in
        let serial =
          Ddp_core.Profiler.profile ~mode:"serial" ~config:bench_config (seq_prog name ())
        in
        let par =
          Ddp_core.Profiler.profile ~mode:"parallel" ~config ~account:(account, "deps")
            (seq_prog name ())
        in
        let dag =
          Ddp_core.Profiler.profile ~mode:"dag" ~config:bench_config (seq_prog name ())
        in
        let s_slow = serial.elapsed /. native.H.native_time in
        let p_slow = par.elapsed /. native.H.native_time in
        let d_slow = dag.elapsed /. native.H.native_time in
        fprintf "%-14s native %6.3fs  serial %6.2fx  parallel(8T wall) %6.2fx  dag %6.2fx\n"
          name native.H.native_time s_slow p_slow d_slow;
        ( name,
          J.Obj
            [
              ("accesses", J.Int native.H.events);
              ("native_s", J.Float native.H.native_time);
              ("serial_slowdown", J.Float s_slow);
              ("parallel_slowdown", J.Float p_slow);
              ("dag_slowdown", J.Float d_slow);
            ],
          (s_slow, p_slow, d_slow) ))
      workloads
  in
  let s_slows = List.map (fun (_, _, (s, _, _)) -> s) rows in
  let p_slows = List.map (fun (_, _, (_, p, _)) -> p) rows in
  let d_slows = List.map (fun (_, _, (_, _, d)) -> d) rows in
  let overhead = measure_obs_overhead () in
  let calib_spin_ns = measure_calib_spin_ns () in
  let worker_step_ns = measure_worker_step_ns () in
  let null_ns, fused1_ns, fused2_ns = measure_dispatch_ns () in
  let peaks =
    Ddp_util.Mem_account.fold account
      (fun cat ~current:_ ~peak acc -> (cat, J.Int peak) :: acc)
      []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let json =
    J.Obj
      [
        ("schema", J.Str "ddp-bench/2");
        ("calib_spin_ns", J.Float calib_spin_ns);
        ( "config",
          J.Obj
            [
              ("workers", J.Int config.Config.workers);
              ("chunk_size", J.Int config.Config.chunk_size);
              ("slots", J.Int config.Config.slots);
            ] );
        ("workloads", J.Obj (List.map (fun (n, j, _) -> (n, j)) rows));
        ( "geomean",
          J.Obj
            [
              ("serial_slowdown", J.Float (geomean s_slows));
              ("parallel_slowdown", J.Float (geomean p_slows));
              ("dag_slowdown", J.Float (geomean d_slows));
              ( "parallel_vs_serial",
                J.Float (geomean (List.map2 (fun p s -> p /. s) p_slows s_slows)) );
            ] );
        ( "peak_bytes",
          J.Obj (peaks @ [ ("total", J.Int (Ddp_util.Mem_account.total_peak account)) ]) );
        ("worker_step_ns", J.Float worker_step_ns);
        ( "dispatch_ns",
          J.Obj
            [
              ("null", J.Float null_ns);
              ("fused_1sub", J.Float fused1_ns);
              ("fused_tee2", J.Float fused2_ns);
            ] );
        ( "obs_overhead",
          J.Obj
            [
              ("baseline_s", J.Float overhead.oo_baseline);
              ("disabled_s", J.Float overhead.oo_disabled);
              ("enabled_s", J.Float overhead.oo_enabled);
              ( "disabled_pct",
                J.Float (100.0 *. ((overhead.oo_disabled /. overhead.oo_baseline) -. 1.0)) );
              ( "enabled_pct",
                J.Float (100.0 *. ((overhead.oo_enabled /. overhead.oo_baseline) -. 1.0)) );
              ("noise_pct", J.Float overhead.oo_noise_pct);
            ] );
      ]
  in
  let path = "BENCH_profiler.json" in
  J.to_file path json;
  fprintf
    "geomean: serial %.2fx, parallel(wall) %.2fx, dag %.2fx; telemetry disabled %+.2f%%, enabled %+.2f%% (noise %.2f%%)\n"
    (geomean s_slows) (geomean p_slows) (geomean d_slows)
    (100.0 *. ((overhead.oo_disabled /. overhead.oo_baseline) -. 1.0))
    (100.0 *. ((overhead.oo_enabled /. overhead.oo_baseline) -. 1.0))
    overhead.oo_noise_pct;
  fprintf "dispatch: null %.1f ns/ev, fused(1 sub) %.1f ns/ev, fused(tee 2) %.1f ns/ev\n"
    null_ns fused1_ns fused2_ns;
  fprintf "worker_step: %.1f ns/ev (virtual-mode drain, min of 3)\n" worker_step_ns;
  fprintf "written to %s\n" path

(* A seconds-scale subset of the snapshot for the ratchet selftest and
   short-budget CI: the micro metrics only (worker_step, dispatch,
   telemetry overhead) — no workload sweeps — written to
   _bench/BENCH_quick.json with the same schema and key layout as
   BENCH_profiler.json, so ratchet.exe reads either file. *)
let bench_json_quick () =
  H.header "BENCH_quick.json: micro-metrics-only snapshot (ratchet selftest / short CI)";
  let module J = Ddp_obs.Json in
  let calib_spin_ns = measure_calib_spin_ns () in
  let worker_step_ns = measure_worker_step_ns () in
  let overhead = measure_obs_overhead () in
  let null_ns, fused1_ns, fused2_ns = measure_dispatch_ns () in
  let json =
    J.Obj
      [
        ("schema", J.Str "ddp-bench/2");
        ("calib_spin_ns", J.Float calib_spin_ns);
        ("worker_step_ns", J.Float worker_step_ns);
        ( "dispatch_ns",
          J.Obj
            [
              ("null", J.Float null_ns);
              ("fused_1sub", J.Float fused1_ns);
              ("fused_tee2", J.Float fused2_ns);
            ] );
        ( "obs_overhead",
          J.Obj
            [
              ("baseline_s", J.Float overhead.oo_baseline);
              ("disabled_s", J.Float overhead.oo_disabled);
              ("enabled_s", J.Float overhead.oo_enabled);
              ( "disabled_pct",
                J.Float (100.0 *. ((overhead.oo_disabled /. overhead.oo_baseline) -. 1.0)) );
              ( "enabled_pct",
                J.Float (100.0 *. ((overhead.oo_enabled /. overhead.oo_baseline) -. 1.0)) );
              ("noise_pct", J.Float overhead.oo_noise_pct);
            ] );
      ]
  in
  (try Unix.mkdir "_bench" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = "_bench/BENCH_quick.json" in
  J.to_file path json;
  fprintf
    "worker_step: %.1f ns/ev (calib spin %.2f ns/it); telemetry disabled %+.2f%%, enabled %+.2f%% (noise %.2f%%)\n"
    worker_step_ns calib_spin_ns
    (100.0 *. ((overhead.oo_disabled /. overhead.oo_baseline) -. 1.0))
    (100.0 *. ((overhead.oo_enabled /. overhead.oo_baseline) -. 1.0))
    overhead.oo_noise_pct;
  fprintf "written to %s\n" path

(* ==== bechamel micro-benchmarks ========================================== *)

let micro () =
  H.header "Micro-benchmarks of the profiler's hot kernels (bechamel)";
  let open Bechamel in
  let sig_store = Ddp_core.Sig_store.create ~slots:(1 lsl 16) () in
  let perfect = Ddp_core.Perfect_sig.create () in
  let hash = Ddp_baselines.Hash_profiler.create () in
  let dispatch = Ddp_core.Dispatch.create ~workers:8 ~sample:16 ~hot_set_size:10 in
  let chunk = Ddp_core.Chunk.create ~capacity:1024 in
  let spsc = Ddp_core.Spsc_queue.create ~capacity:8 ~dummy:chunk in
  let locked = Ddp_core.Locked_queue.create ~capacity:8 ~dummy:chunk in
  let counter = ref 0 in
  let next () =
    incr counter;
    !counter land 0xFFFF
  in
  let obs_hub = Ddp_obs.Obs.create ~domains:1 () in
  let dispatch_sink = ref 0 in
  let count_memory =
    {
      Ddp_minir.Event.on_read =
        (fun ~addr ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> dispatch_sink := !dispatch_sink + addr);
      on_write =
        (fun ~addr ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> dispatch_sink := !dispatch_sink + addr);
    }
  in
  let count_handler = Ddp_minir.Handler.make ~memory:count_memory () in
  let fused_one = Ddp_minir.Handler.fuse [ count_handler ] in
  let fused_tee = Ddp_minir.Handler.fuse [ count_handler; count_handler ] in
  let bench_loc = Ddp_minir.Loc.make ~file:1 ~line:1 in
  let tests =
    [
      Test.make ~name:"sig_store set+probe"
        (Staged.stage (fun () ->
             let a = next () in
             Ddp_core.Sig_store.set sig_store ~addr:a ~payload:1 ~time:a;
             Ddp_core.Sig_store.probe sig_store ~addr:a));
      Test.make ~name:"perfect_sig set+probe"
        (Staged.stage (fun () ->
             let a = next () in
             Ddp_core.Perfect_sig.set perfect ~addr:a ~payload:1 ~time:a;
             Ddp_core.Perfect_sig.probe perfect ~addr:a));
      Test.make ~name:"hash_table set+probe"
        (Staged.stage (fun () ->
             let a = next () in
             Ddp_baselines.Hash_profiler.set hash ~addr:a ~payload:1 ~time:a;
             Ddp_baselines.Hash_profiler.probe hash ~addr:a));
      Test.make ~name:"dispatch route"
        (Staged.stage (fun () ->
             let a = next () in
             Ddp_core.Dispatch.note_access dispatch a;
             Ddp_core.Dispatch.worker_of dispatch a));
      Test.make ~name:"fused dispatch (1 sub)"
        (Staged.stage (fun () ->
             let a = next () in
             fused_one.Ddp_minir.Event.on_read ~addr:a ~loc:bench_loc ~var:0 ~thread:0 ~time:a
               ~locked:false));
      Test.make ~name:"fused dispatch (tee 2)"
        (Staged.stage (fun () ->
             let a = next () in
             fused_tee.Ddp_minir.Event.on_read ~addr:a ~loc:bench_loc ~var:0 ~thread:0 ~time:a
               ~locked:false));
      Test.make ~name:"spsc push+pop"
        (Staged.stage (fun () ->
             ignore (Ddp_core.Spsc_queue.try_push spsc chunk : bool);
             Ddp_core.Spsc_queue.try_pop spsc));
      Test.make ~name:"locked push+pop"
        (Staged.stage (fun () ->
             ignore (Ddp_core.Locked_queue.try_push locked chunk : bool);
             Ddp_core.Locked_queue.try_pop locked));
      Test.make ~name:"obs span disabled"
        (Staged.stage (fun () ->
             let module O = Ddp_obs.Obs in
             let t0 = O.now O.disabled in
             ignore (O.span O.disabled ~dom:0 O.Tag.Process ~arg:1 ~t0 : int)));
      Test.make ~name:"obs span enabled"
        (Staged.stage (fun () ->
             let module O = Ddp_obs.Obs in
             let t0 = O.now obs_hub in
             ignore (O.span obs_hub ~dom:0 O.Tag.Process ~arg:1 ~t0 : int)));
      Test.make ~name:"obs counter enabled"
        (Staged.stage (fun () ->
             Ddp_obs.Obs.incr obs_hub ~dom:0 Ddp_obs.Obs.C.events_processed));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:true () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> fprintf "  %-26s %10.1f ns/op\n" name ns
          | Some _ | None -> fprintf "  %-26s (no estimate)\n" name)
        analyzed)
    tests;
  fprintf "(spsc vs locked push+pop is the per-chunk synchronization cost the paper's\n";
  fprintf " lock-free design removes from the pipeline's critical path.)\n"

(* ==== driver ============================================================= *)

let experiments =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table2", table2);
    ("fig9", fig9);
    ("eq2", eq2);
    ("merge", merge);
    ("ablate-baselines", ablate_baselines);
    ("ablate-war", ablate_war);
    ("ablate-redist", ablate_redist);
    ("ablate-sections", ablate_sections);
    ("obs-overhead", obs_overhead);
    ("json", bench_json);
    ("json-quick", bench_json_quick);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--list" args then
    List.iter (fun (name, _) -> print_endline name) experiments
  else begin
    let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
    let to_run =
      if selected = [] then experiments
      else
        List.map
          (fun name ->
            match List.assoc_opt name experiments with
            | Some fn -> (name, fn)
            | None ->
              Printf.eprintf "unknown experiment %s (use --list)\n" name;
              exit 1)
          selected
    in
    let t0 = Ddp_util.Clock.now () in
    List.iter (fun (_, fn) -> fn ()) to_run;
    Printf.printf "\ntotal bench time: %.1fs\n" (Ddp_util.Clock.now () -. t0)
  end
