(* CI perf ratchet: compare fresh bench snapshots (BENCH_profiler.json
   or the quick subset _bench/BENCH_quick.json) against the checked-in
   bench/baseline.json and fail — exit 1 — when any gated metric
   regresses past its tolerance.

     dune exec bench/ratchet.exe -- --fresh _bench/q1.json \
       --fresh _bench/q2.json --fresh _bench/q3.json \
       --baseline bench/baseline.json --history BENCH_history.jsonl

   --fresh is repeatable: the gate compares the per-key MINIMUM across
   the given snapshots.  On shared hosts a single process can be 10%+
   slow purely from scheduler and cache luck, but the minimum of a few
   back-to-back processes is stable to a few percent — and a genuine
   slowdown (more work per event) inflates every process, so it
   survives the min.  We record the min rather than normalizing by a
   calibration probe: experiments showed the probe's own run-to-run
   drift exceeds the signal, making normalized values noisier than raw
   ones.  calib_spin_ns stays in the snapshot and the history line as a
   machine-speed indicator for reading trends, not as a divisor.

   Each gated key carries its own tolerance, sized to that metric's
   observed min-of-k repeatability; --tolerance-scale multiplies all of
   them, so CI runners with noisy neighbours can run the same gate with
   headroom (scale 3) while local runs keep the tight ratchet (scale 1).

   Two kinds of check:
   - ratchet keys: min(fresh) must not exceed baseline * (1 + tol/100);
     missing on either side is skipped (the quick snapshot carries only
     the micro metrics).
   - absolute keys: the telemetry overhead percentages are judged
     against the measured noise floor (obs_overhead.noise_pct) of the
     same snapshot rather than a stale baseline, since they are already
     relative measurements; the gate passes if ANY fresh snapshot sits
     inside its own bound (the best-case run shows the true overhead,
     the others show noise).

   --write-baseline FILE skips the comparison and instead writes the
   recursive per-key min-merge of the fresh snapshots — the procedure
   that regenerates bench/baseline.json (`make bench-baseline`).

   Every gate outcome is appended to --history as one JSON line
   (timestamped) and the full comparison goes to --diff-out for the CI
   artifact. *)

module J = Ddp_obs.Json

(* (dotted key, tolerance %) — all "lower is better" values.
   worker_step_ns is the sharp gate: min-of-3 processes repeats within
   ~5% on a loaded 1-core host, and the selftest's seeded 10% slowdown
   (DDP_PERTURB_WORKER=0.10) inflates every process's drain loop, so
   its min stays >= +10% while 6% headroom still clears the clean
   min-of-3, which repeats within ~3%. *)
let ratchet_keys =
  [
    ("worker_step_ns", 6.0);
    ("dispatch_ns.null", 20.0);
    ("dispatch_ns.fused_1sub", 20.0);
    ("dispatch_ns.fused_tee2", 20.0);
    ("geomean.serial_slowdown", 12.0);
    ("geomean.parallel_slowdown", 12.0);
    ("geomean.dag_slowdown", 12.0);
  ]

let schema_expected = "ddp-bench/2"

let fail_usage msg =
  prerr_endline ("ratchet: " ^ msg);
  exit 2

let lookup json dotted =
  let rec go j = function
    | [] -> Some j
    | k :: rest -> ( match J.member k j with Some v -> go v rest | None -> None)
  in
  Option.bind (go json (String.split_on_char '.' dotted)) J.to_float

let load ~what path =
  let j =
    try J.of_file path with
    | J.Parse_error msg -> fail_usage (Printf.sprintf "%s %s: JSON parse error: %s" what path msg)
    | Sys_error msg -> fail_usage msg
  in
  (match Option.bind (J.member "schema" j) J.to_str with
  | Some s when s = schema_expected -> ()
  | Some s ->
    fail_usage
      (Printf.sprintf "%s %s: schema %S, this ratchet reads %S — regenerate with `make bench-json`"
         what path s schema_expected)
  | None -> fail_usage (Printf.sprintf "%s %s: no schema field" what path));
  j

(* Recursive min-merge: numbers take the minimum, objects merge by key
   (union — a key present in either side survives), everything else
   keeps the first snapshot's value.  Arrays stay first-wins too: the
   gated metrics all live in scalar fields. *)
let rec min_merge a b =
  match (a, b) with
  | J.Float x, J.Float y -> J.Float (Float.min x y)
  | J.Int x, J.Int y -> J.Int (min x y)
  | J.Float x, J.Int y | J.Int y, J.Float x -> J.Float (Float.min x (float_of_int y))
  | J.Obj xs, J.Obj ys ->
    let merged =
      List.map
        (fun (k, v) -> match List.assoc_opt k ys with Some w -> (k, min_merge v w) | None -> (k, v))
        xs
    in
    let extra = List.filter (fun (k, _) -> not (List.mem_assoc k xs)) ys in
    J.Obj (merged @ extra)
  | x, _ -> x

type verdict = Pass | Improved | Regressed

let verdict_str = function Pass -> "pass" | Improved -> "improved" | Regressed -> "REGRESSED"

let () =
  let fresh_paths = ref [] in
  let baseline_path = ref "bench/baseline.json" in
  let history_path = ref None in
  let diff_path = ref None in
  let write_baseline = ref None in
  let scale = ref 1.0 in
  let specs =
    [
      ( "--fresh",
        Arg.String (fun s -> fresh_paths := s :: !fresh_paths),
        "FILE fresh bench snapshot (repeatable; the gate takes the per-key min)" );
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE checked-in baseline (default bench/baseline.json)" );
      ( "--history",
        Arg.String (fun s -> history_path := Some s),
        "FILE append one JSON line per run (trend record)" );
      ( "--diff-out",
        Arg.String (fun s -> diff_path := Some s),
        "FILE write the full comparison JSON (CI artifact)" );
      ( "--write-baseline",
        Arg.String (fun s -> write_baseline := Some s),
        "FILE write the min-merge of the fresh snapshots and exit (no comparison)" );
      ( "--tolerance-scale",
        Arg.Set_float scale,
        "K multiply every tolerance by K (CI leniency; default 1.0)" );
    ]
  in
  Arg.parse specs (fun a -> fail_usage ("unexpected argument " ^ a)) "ratchet [options]";
  if !scale <= 0.0 then fail_usage "--tolerance-scale must be positive";
  let fresh_paths =
    match List.rev !fresh_paths with [] -> [ "BENCH_profiler.json" ] | ps -> ps
  in
  let snapshots = List.map (fun p -> (p, load ~what:"fresh" p)) fresh_paths in
  let fresh = List.fold_left (fun acc (_, j) -> min_merge acc j) (snd (List.hd snapshots)) (List.tl snapshots) in
  (match !write_baseline with
  | Some path ->
    J.to_file path fresh;
    Printf.printf "baseline written to %s (min-merge of %d snapshot%s)\n" path
      (List.length snapshots)
      (if List.length snapshots = 1 then "" else "s");
    exit 0
  | None -> ());
  let baseline = load ~what:"baseline" !baseline_path in
  let failures = ref 0 in
  let rows = ref [] in
  let note key ~base ~now ~tol v =
    rows :=
      ( key,
        J.Obj
          [
            ("baseline", match base with Some b -> J.Float b | None -> J.Null);
            ("fresh", J.Float now);
            ( "delta_pct",
              match base with
              | Some b when b > 0.0 -> J.Float (100.0 *. ((now /. b) -. 1.0))
              | _ -> J.Null );
            ("tolerance_pct", J.Float tol);
            ("status", J.Str (verdict_str v));
          ] )
      :: !rows
  in
  Printf.printf "perf ratchet: min of [%s] vs %s (tolerance scale %.1f)\n"
    (String.concat ", " fresh_paths) !baseline_path !scale;
  (match (lookup fresh "calib_spin_ns", lookup baseline "calib_spin_ns") with
  | Some f, Some b ->
    Printf.printf "  machine-speed probe (not a gate): base %.2f fresh %.2f ns/it\n" b f
  | _ -> ());
  Printf.printf "  %-28s %12s %12s %9s %7s  %s\n" "metric" "baseline" "fresh" "delta" "tol"
    "status";
  List.iter
    (fun (key, tol0) ->
      let tol = tol0 *. !scale in
      match (lookup fresh key, lookup baseline key) with
      | Some now, Some base ->
        let delta = 100.0 *. ((now /. base) -. 1.0) in
        let v =
          if now > base *. (1.0 +. (tol /. 100.0)) then begin
            incr failures;
            Regressed
          end
          else if delta < -.tol then Improved
          else Pass
        in
        Printf.printf "  %-28s %12.2f %12.2f %+8.1f%% %6.1f%%  %s\n" key base now delta tol
          (verdict_str v);
        note key ~base:(Some base) ~now ~tol v
      | Some now, None ->
        Printf.printf "  %-28s %12s %12.2f %9s %6.1f%%  (no baseline, skipped)\n" key "-" now "-"
          tol;
        note key ~base:None ~now ~tol Pass
      | None, _ -> Printf.printf "  %-28s (absent in fresh snapshots, skipped)\n" key)
    ratchet_keys;
  (* Absolute telemetry-overhead gates: disabled-hub call sites are one
     untaken branch, so their overhead must sit inside the measured
     noise floor of the same run; the enabled hub gets the floor plus
     the few-percent chunk-granularity budget.  A snapshot's overhead
     and noise come from the same process, so each snapshot is judged
     against its own floor, and the gate passes if any snapshot does. *)
  let absolute_gate ~key ~measure ~bound_of =
    let candidates =
      List.filter_map
        (fun (_, j) ->
          match (lookup j key, lookup j "obs_overhead.noise_pct") with
          | Some v, Some noise -> Some (v, bound_of noise *. !scale)
          | _ -> None)
        snapshots
    in
    match candidates with
    | [] -> ()
    | _ ->
      let best = List.fold_left (fun a c -> if measure (fst c) < measure (fst a) then c else a)
          (List.hd candidates) (List.tl candidates)
      in
      let v, bound = best in
      let ok = List.exists (fun (v, b) -> measure v <= b) candidates in
      let verdict = if ok then Pass else begin incr failures; Regressed end in
      Printf.printf "  %-28s %12s %+11.2f%% %9s %6.1f%%  %s\n" key "(noise floor)" v "-" bound
        (verdict_str verdict);
      note key ~base:None ~now:v ~tol:bound verdict
  in
  absolute_gate ~key:"obs_overhead.disabled_pct" ~measure:Float.abs
    ~bound_of:(fun noise -> Float.max 3.0 ((noise *. 1.5) +. 1.0));
  absolute_gate ~key:"obs_overhead.enabled_pct" ~measure:(fun x -> x)
    ~bound_of:(fun noise -> Float.max 4.0 ((noise *. 1.5) +. 2.0));
  let diff_json =
    J.Obj
      [
        ("schema", J.Str "ddp-ratchet/1");
        ("fresh", J.List (List.map (fun p -> J.Str p) fresh_paths));
        ("baseline", J.Str !baseline_path);
        ("tolerance_scale", J.Float !scale);
        ("failures", J.Int !failures);
        ("metrics", J.Obj (List.rev !rows));
      ]
  in
  (match !diff_path with
  | Some path ->
    J.to_file path diff_json;
    Printf.printf "comparison written to %s\n" path
  | None -> ());
  (match !history_path with
  | Some path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    let line =
      J.Obj
        [
          ("t", J.Float (Unix.time ()));
          ("failures", J.Int !failures);
          ( "metrics",
            J.Obj
              (List.filter_map
                 (fun (key, _) -> Option.map (fun v -> (key, J.Float v)) (lookup fresh key))
                 ratchet_keys
              @ List.filter_map
                  (fun key -> Option.map (fun v -> (key, J.Float v)) (lookup fresh key))
                  [
                    "calib_spin_ns";
                    "obs_overhead.disabled_pct";
                    "obs_overhead.enabled_pct";
                    "obs_overhead.noise_pct";
                  ]) );
        ]
    in
    output_string oc (J.to_string line);
    output_char oc '\n';
    close_out oc;
    Printf.printf "history appended to %s\n" path
  | None -> ());
  if !failures > 0 then begin
    Printf.printf "ratchet: %d metric(s) regressed past tolerance\n" !failures;
    exit 1
  end
  else print_endline "ratchet: all gated metrics within tolerance"
