(* ddpcheck — differential fuzzing and deterministic schedule exploration
   for the profiler pipeline.

     ddpcheck all                       # fixed-seed smoke sweep (CI)
     ddpcheck diff --seed 7 --count 200 # engine-vs-oracle differential fuzz
     ddpcheck sched --count 50          # virtual-scheduler interleavings
     ddpcheck mutants                   # the harness catches broken engines
     DDP_SEED=1234 ddpcheck all         # env-var seed plumbing

   Every failure prints (and, with --out DIR, writes) the shrunk
   counterexample program together with the exact seed pair that replays
   it.  Exit status 1 on any genuine discrepancy. *)

open Cmdliner
module TK = Ddp_testkit
module Config = Ddp_core.Config
module Accuracy = Ddp_core.Accuracy

let () = Ddp_baselines.Baseline_engines.register ()
let () = TK.Vsched.register_engine ()

(* -- common args ---------------------------------------------------------- *)

let seed_arg =
  let doc = "Master seed (default: $(b,DDP_SEED) from the environment, else 421)." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"S" ~doc)

let count_arg =
  Arg.(value & opt int 25 & info [ "count" ] ~docv:"N" ~doc:"Programs per sweep.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR" ~doc:"Write shrunk counterexamples under DIR.")

let par_arg =
  Arg.(value & flag & info [ "par" ] ~doc:"Generate multi-threaded (Par) programs too.")

let resolve_seed = function Some s -> s | None -> TK.Seed.resolve ()

let save_counterexample ~out ~tag ~seed ~body =
  match out with
  | None -> ()
  | Some dir ->
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
    let path = Filename.concat dir (Printf.sprintf "%s-seed%d.txt" tag seed) in
    Out_channel.with_open_text path (fun oc -> output_string oc body);
    Printf.printf "  counterexample written to %s\n%!" path

(* -- diff ----------------------------------------------------------------- *)

(* One seed: generate, run every engine against the oracle, shrink on
   genuine discrepancy.  Returns true on success. *)
let diff_one ~out ~shape ~master k =
  let prog_seed = TK.Seed.derive master (2 * k) in
  let sched_seed = TK.Seed.derive master ((2 * k) + 1) in
  let prog = TK.Prog_gen.generate ~shape ~seed:prog_seed () in
  let outcome = TK.Diff.run ~sched_seed prog in
  if outcome.TK.Diff.ok then true
  else begin
    let shrunk = TK.Diff.shrink ~sched_seed outcome in
    let body =
      Printf.sprintf
        "ddpcheck diff: genuine engine/oracle discrepancy\n\
         master seed: %d (program #%d; prog_seed=%d sched_seed=%d)\n\
         repro: DDP_SEED=%d ddpcheck diff --count %d\n\n\
         shrunk program (%d statements):\n%s\n%s\n%s"
        master k prog_seed sched_seed master (k + 1)
        (TK.Prog_gen.stmt_count shrunk.TK.Diff.prog)
        (TK.Prog_gen.print shrunk.TK.Diff.prog)
        (TK.Diff.report_to_string shrunk)
        (TK.Diff.trace_excerpt ~sched_seed shrunk.TK.Diff.prog)
    in
    Printf.printf "FAIL [diff] seed %d program %d %s\n%s%!" master k
      (TK.Seed.describe master) body;
    save_counterexample ~out ~tag:"diff" ~seed:prog_seed ~body;
    false
  end

let run_diff seed count out par =
  let master = resolve_seed seed in
  let shapes =
    TK.Prog_gen.default_shape :: (if par then [ TK.Prog_gen.par_shape ] else [])
  in
  Printf.printf "ddpcheck diff: %d programs x %d engines, master seed %d\n%!" count
    (List.length (TK.Diff.engines_under_test ()))
    master;
  let failures = ref 0 in
  List.iter
    (fun shape ->
      for k = 0 to count - 1 do
        if not (diff_one ~out ~shape ~master k) then incr failures
      done)
    shapes;
  if !failures = 0 then begin
    Printf.printf "diff: ok (%d programs)\n%!" (count * List.length shapes);
    0
  end
  else begin
    Printf.printf "diff: %d genuine discrepancies\n%!" !failures;
    1
  end

(* -- sched ---------------------------------------------------------------- *)

(* Small queues and tight redistribution make the interesting stalls
   (queue-full, drain-barrier) common instead of rare. *)
let stress_config =
  {
    Config.default with
    workers = 3;
    chunk_size = 4;
    queue_capacity = 2;
    redistribution_interval = 8;
    hot_set_size = 2;
    stats_sample = 1;  (* sample every access so the hot set is populated *)
  }

let sched_one ~out ~master k =
  let prog_seed = TK.Seed.derive master (3 * k) in
  let vseed = TK.Seed.derive master ((3 * k) + 1) in
  let prog = TK.Prog_gen.generate ~shape:TK.Prog_gen.par_shape ~seed:prog_seed () in
  let run () = TK.Vsched.profile ~config:stress_config ~sched_seed:vseed prog in
  let a = run () in
  let b = run () in
  let ok = ref true in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        ok := false;
        let body =
          Printf.sprintf
            "ddpcheck sched: %s\nmaster seed %d program #%d (prog_seed=%d vsched_seed=%d)\n\
             repro: DDP_SEED=%d ddpcheck sched --count %d\n\n%s"
            msg master k prog_seed vseed master (k + 1) (TK.Prog_gen.print prog)
        in
        Printf.printf "FAIL [sched] %s\n%!" body;
        save_counterexample ~out ~tag:"sched" ~seed:prog_seed ~body)
      fmt
  in
  (* Replay determinism: same (program, schedule) seed pair, identical
     interleaving and identical output. *)
  if a.TK.Vsched.trace.TK.Vsched.fingerprint <> b.TK.Vsched.trace.TK.Vsched.fingerprint then
    fail "same seed pair produced different interleavings (fingerprint mismatch)";
  let keys r = Ddp_core.Dep_store.key_set_no_race r.TK.Vsched.result.Ddp_core.Parallel_profiler.deps in
  if not (Ddp_core.Dep_store.Key_set.equal (keys a) (keys b)) then
    fail "same seed pair produced different dependence sets";
  (* Accuracy under the explored interleaving: signature-modeled bound
     against the perfect oracle. *)
  let oracle = Ddp_core.Profiler.profile ~mode:"perfect" ~sched_seed:42 prog in
  let acc =
    Accuracy.compare_stores
      ~profiled:a.TK.Vsched.result.Ddp_core.Parallel_profiler.deps
      ~perfect:oracle.Ddp_core.Profiler.deps
  in
  let addresses = max 1 oracle.Ddp_core.Profiler.run_stats.Ddp_minir.Interp.addresses in
  let allow n =
    TK.Diff.allowance ~slack:1.0 ~slots:stress_config.Config.slots ~addresses n
  in
  if
    acc.Accuracy.false_positives > allow (max acc.Accuracy.reported acc.Accuracy.ground_truth)
    || acc.Accuracy.false_negatives > allow acc.Accuracy.ground_truth
  then
    fail "virtual-schedule run diverged from oracle beyond the signature model (FP %d FN %d)"
      acc.Accuracy.false_positives acc.Accuracy.false_negatives;
  (* Fault storms (semantics-preserving classes only: back-pressure,
     forced redistribution, worker stalls) must not change the output. *)
  let faults = Ddp_core.Fault.create ~queue_full:5 ~redistributions:2 ~stalls:6 () in
  let f =
    TK.Vsched.profile
      ~config:{ stress_config with Config.faults = Some faults }
      ~sched_seed:vseed prog
  in
  if not (Ddp_core.Dep_store.Key_set.equal (keys a) (keys f)) then
    fail "semantics-preserving fault injection changed the dependence set";
  (a.TK.Vsched.trace, !ok)

let run_sched seed count out =
  let master = resolve_seed seed in
  Printf.printf "ddpcheck sched: %d programs under the virtual scheduler, master seed %d\n%!"
    count master;
  let failures = ref 0 in
  let qf = ref 0 and dr = ref 0 in
  for k = 0 to count - 1 do
    let tr, ok = sched_one ~out ~master k in
    qf := !qf + tr.TK.Vsched.queue_full_stalls;
    dr := !dr + tr.TK.Vsched.drain_stalls;
    if not ok then incr failures
  done;
  Printf.printf "sched: %d queue-full stalls, %d drain-barrier waits explored\n%!" !qf !dr;
  (* The sweep must actually reach the interesting blocking points —
     a silent zero here means the stress config stopped stressing. *)
  if !qf = 0 || !dr = 0 then begin
    Printf.printf "sched: FAIL — sweep never hit %s\n%!"
      (if !qf = 0 then "a queue-full stall" else "a drain barrier");
    incr failures
  end;
  if !failures = 0 then begin
    Printf.printf "sched: ok (%d programs, deterministic and within model)\n%!" count;
    0
  end
  else begin
    Printf.printf "sched: %d failures\n%!" !failures;
    1
  end

(* -- mutants -------------------------------------------------------------- *)

let run_mutants seed count out =
  let master = resolve_seed seed in
  let names = TK.Mutant.register () in
  Printf.printf "ddpcheck mutants: %d mutants x %d programs, master seed %d\n%!"
    (List.length names) count master;
  let code = ref 0 in
  List.iter
    (fun name ->
      let witness = ref None in
      let k = ref 0 in
      while !witness = None && !k < count do
        let prog_seed = TK.Seed.derive master (100 + !k) in
        let sched_seed = TK.Seed.derive master (500 + !k) in
        let prog = TK.Prog_gen.generate ~seed:prog_seed () in
        let outcome = TK.Diff.run ~engines:[ name ] ~sched_seed prog in
        if not outcome.TK.Diff.ok then witness := Some (TK.Diff.shrink ~sched_seed outcome);
        incr k
      done;
      match !witness with
      | None ->
        Printf.printf "FAIL [mutants] %s survived %d programs — harness lost its teeth\n%!"
          name count;
        code := 1
      | Some shrunk ->
        let n = TK.Prog_gen.stmt_count shrunk.TK.Diff.prog in
        Printf.printf "  %s caught (program %d, shrunk witness: %d statements)\n%!" name !k n;
        save_counterexample ~out ~tag:("mutant-" ^ name) ~seed:master
          ~body:
            (Printf.sprintf "mutant %s witness (%d statements):\n%s\n%s\n%s" name n
               (TK.Prog_gen.print shrunk.TK.Diff.prog)
               (TK.Diff.report_to_string shrunk)
               (TK.Diff.trace_excerpt shrunk.TK.Diff.prog)))
    names;
  if !code = 0 then Printf.printf "mutants: ok (all caught)\n%!";
  !code

(* -- soundness ------------------------------------------------------------ *)

(* The static analyzer's contract: its may set over-approximates every
   dynamic run, its must set under-approximates every complete run.
   Sweep generated programs for violations (shrinking any witness), then
   fire-drill the gate itself: a deliberately unsound mutant analyzer
   (loop-carried edges dropped) must be caught. *)
let run_soundness seed count out =
  let master = resolve_seed seed in
  Printf.printf
    "ddpcheck soundness: static may/must vs dynamic over %d generated programs, master seed %d\n%!"
    count master;
  let code = ref 0 in
  (match TK.Soundness.sweep ~count ~base_seed:master () with
  | None, checked ->
    Printf.printf "soundness: ok (%d programs, zero violations)\n%!" checked
  | Some o, checked ->
    let body =
      Printf.sprintf
        "ddpcheck soundness: static analysis violated its contract\n\
         master seed: %d (program #%d of sweep)\n\
         repro: DDP_SEED=%d ddpcheck soundness --count %d\n\n\
         shrunk witness (%d statements):\n%s"
        master checked master count
        (TK.Prog_gen.stmt_count o.TK.Soundness.prog)
        (TK.Soundness.report_to_string o)
    in
    Printf.printf "FAIL [soundness] %s\n%!" body;
    save_counterexample ~out ~tag:"soundness" ~seed:master ~body;
    code := 1);
  (* fire drill *)
  let drill = max 50 count in
  (match TK.Soundness.sweep ~mutant:true ~count:drill ~base_seed:master () with
  | Some o, k ->
    Printf.printf "  mutant-static caught (program %d, shrunk witness: %d statements)\n%!" k
      (TK.Prog_gen.stmt_count o.TK.Soundness.prog)
  | None, k ->
    Printf.printf
      "FAIL [soundness] mutant-static survived %d programs — the gate lost its teeth\n%!" k;
    code := 1);
  if !code = 0 then Printf.printf "soundness: gate armed and green\n%!";
  !code

(* -- races ---------------------------------------------------------------- *)

(* The race half of the static contract: over every schedule the
   exhaustive oracle enumerates for a task program (Spawn/Sync/Lock
   shape), the dependences the dag engine race-flags must all carry a
   static race flag, and — as everywhere — every dynamic dependence
   must sit in the static may set.  Then the fire drill: an analyzer
   mutant with the race layer disabled must be caught. *)
let run_races seed count out =
  let master = resolve_seed seed in
  Printf.printf
    "ddpcheck races: static race lint vs the dag engine over %d task programs (every schedule), master seed %d\n%!"
    count master;
  let code = ref 0 in
  (match TK.Soundness.sweep_races ~count ~base_seed:master () with
  | None, checked, racy ->
    Printf.printf "races: ok (%d programs, %d with dag races, all statically flagged)\n%!"
      checked racy;
    (* Coverage, not just absence of violations: a sweep in which no
       program ever raced proves nothing about the lint. *)
    if racy = 0 then begin
      Printf.printf
        "races: FAIL — sweep never saw a dag-engine race (generator stopped racing?)\n%!";
      code := 1
    end
  | Some o, checked, _ ->
    let body =
      Printf.sprintf
        "ddpcheck races: static race lint violated its soundness contract\n\
         master seed: %d (program #%d of sweep)\n\
         repro: DDP_SEED=%d ddpcheck races --count %d\n\n\
         shrunk witness (%d statements):\n%s"
        master checked master count
        (TK.Prog_gen.stmt_count o.TK.Soundness.r_prog)
        (TK.Soundness.race_report_to_string o)
    in
    Printf.printf "FAIL [races] %s\n%!" body;
    save_counterexample ~out ~tag:"races" ~seed:master ~body;
    code := 1);
  (* fire drill: drop the race layer, the sweep must notice *)
  let drill = max 50 count in
  (match TK.Soundness.sweep_races ~lockset_mutant:true ~count:drill ~base_seed:master () with
  | Some o, k, _ ->
    Printf.printf "  mutant-lockset caught (program %d, shrunk witness: %d statements)\n%!" k
      (TK.Prog_gen.stmt_count o.TK.Soundness.r_prog)
  | None, k, _ ->
    Printf.printf
      "FAIL [races] mutant-lockset survived %d programs — the gate lost its teeth\n%!" k;
    code := 1);
  if !code = 0 then Printf.printf "races: gate armed and green\n%!";
  !code

(* -- dag ------------------------------------------------------------------ *)

(* Schedules enumerated per program: deep enough that every small
   program's tree is usually exhausted, bounded so a spawn-heavy outlier
   cannot stall the sweep. *)
let dag_limit = 64

(* One seed: generate a task-shaped program, enumerate its interleavings
   and compare the dag engine's dependence set (race flags included)
   against the vector-clock oracle on every one. *)
let dag_one ~out ~master k =
  let prog_seed = TK.Seed.derive master (7 * k) in
  let input_seed = TK.Seed.derive master ((7 * k) + 1) land 0xffff in
  let prog = TK.Prog_gen.generate ~shape:TK.Prog_gen.task_shape ~seed:prog_seed () in
  let o = TK.Dag_oracle.check ~limit:dag_limit ~input_seed prog in
  match o.TK.Dag_oracle.mismatch with
  | None -> (o, true)
  | Some _ ->
    let shrunk = TK.Dag_oracle.shrink ~limit:dag_limit ~input_seed prog in
    let symtab = Ddp_minir.Symtab.create () in
    let so = TK.Dag_oracle.check ~limit:dag_limit ~input_seed ~symtab shrunk in
    let report =
      match so.TK.Dag_oracle.mismatch with
      | Some m -> TK.Dag_oracle.report_to_string ~symtab m
      | None -> "(mismatch did not survive shrinking; original program below)\n"
    in
    let body =
      Printf.sprintf
        "ddpcheck dag: dag engine disagrees with the exhaustive-interleaving oracle\n\
         master seed: %d (program #%d; prog_seed=%d input_seed=%d)\n\
         repro: DDP_SEED=%d ddpcheck dag --count %d\n\n\
         shrunk program (%d statements):\n%s\n%s"
        master k prog_seed input_seed master (k + 1)
        (TK.Prog_gen.stmt_count shrunk)
        (TK.Prog_gen.print shrunk) report
    in
    Printf.printf "FAIL [dag] seed %d program %d %s\n%s%!" master k (TK.Seed.describe master)
      body;
    save_counterexample ~out ~tag:"dag" ~seed:prog_seed ~body;
    (o, false)

let run_dag seed count out =
  let master = resolve_seed seed in
  Printf.printf
    "ddpcheck dag: %d task programs, every schedule (cap %d) vs the VC oracle, master seed %d\n%!"
    count dag_limit master;
  let failures = ref 0 in
  let schedules = ref 0 and exhausted = ref 0 and branched = ref 0 and stalled = ref 0 in
  for k = 0 to count - 1 do
    let o, ok = dag_one ~out ~master k in
    schedules := !schedules + o.TK.Dag_oracle.schedules;
    if o.TK.Dag_oracle.exhausted then incr exhausted;
    if o.TK.Dag_oracle.branched then incr branched;
    if o.TK.Dag_oracle.stalled then incr stalled;
    if not ok then incr failures
  done;
  Printf.printf
    "dag: %d schedules across %d programs (%d exhausted, %d branched, %d stalled a sync)\n%!"
    !schedules count !exhausted !branched !stalled;
  (* Coverage, not just absence of mismatches: the sweep must actually
     exercise a scheduling choice and a sync that had to wait for a
     child — all-zero counters mean the generator stopped spawning. *)
  if !branched = 0 || !stalled = 0 then begin
    Printf.printf "dag: FAIL — sweep never hit %s\n%!"
      (if !branched = 0 then "a scheduling choice (no program branched)"
       else "a stalling sync (spawn/join stall points unexercised)");
    incr failures
  end;
  if !failures = 0 then begin
    Printf.printf "dag: ok (%d programs, engine == oracle on every schedule)\n%!" count;
    0
  end
  else begin
    Printf.printf "dag: %d failures\n%!" !failures;
    1
  end

(* -- daemon chaos ---------------------------------------------------------- *)

let clients_arg =
  Arg.(
    value & opt int 5
    & info [ "clients" ] ~docv:"K"
        ~doc:"Concurrent clients per run (minimum 4; at least one is a fault-injected victim).")

let run_daemon seed count clients out =
  let master = resolve_seed seed in
  TK.Daemon_chaos.run ~clients ~count ~seed:master ?out ()

(* -- commands ------------------------------------------------------------- *)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff" ~doc:"Differential fuzz: every engine vs. the perfect oracle.")
    Term.(const (fun s c o p -> Stdlib.exit (run_diff s c o p)) $ seed_arg $ count_arg $ out_arg $ par_arg)

let sched_cmd =
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Explore producer/worker interleavings with the deterministic virtual scheduler.")
    Term.(const (fun s c o -> Stdlib.exit (run_sched s c o)) $ seed_arg $ count_arg $ out_arg)

let mutants_cmd =
  Cmd.v
    (Cmd.info "mutants" ~doc:"Check the harness catches deliberately broken engines.")
    Term.(const (fun s c o -> Stdlib.exit (run_mutants s c o)) $ seed_arg $ count_arg $ out_arg)

let run_all seed count out par =
  let d = run_diff seed count out par in
  let s = run_sched seed (max 10 (count / 2)) out in
  let m = run_mutants seed count out in
  (* ISSUE 5 acceptance: >= 200 programs through the soundness gate. *)
  let z = run_soundness seed (max 200 count) out in
  let g = run_dag seed count out in
  (* ISSUE 10 acceptance: >= 200 task programs through the race gate. *)
  let r = run_races seed (max 200 count) out in
  if d + s + m + z + g + r = 0 then begin
    Printf.printf "ddpcheck: all sweeps green\n%!";
    0
  end
  else 1

let soundness_cmd =
  Cmd.v
    (Cmd.info "soundness"
       ~doc:
         "Check the static analyzer's soundness contract (static may-deps over-approximate every \
          dynamic run) on generated programs, then fire-drill the gate with a mutant analyzer.")
    Term.(const (fun s c o -> Stdlib.exit (run_soundness s c o)) $ seed_arg $ count_arg $ out_arg)

let dag_cmd =
  Cmd.v
    (Cmd.info "dag"
       ~doc:
         "Differentially test the SP-DAG race engine: every interleaving of generated task \
          programs against a vector-clock happens-before oracle.")
    Term.(const (fun s c o -> Stdlib.exit (run_dag s c o)) $ seed_arg $ count_arg $ out_arg)

let races_cmd =
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Check the static race lint's soundness contract (every dependence the SP-DAG engine \
          race-flags on any enumerated schedule carries a static race flag) on generated task \
          programs, then fire-drill the gate with a lockset-dropping mutant analyzer.")
    Term.(const (fun s c o -> Stdlib.exit (run_races s c o)) $ seed_arg $ count_arg $ out_arg)

let all_cmd =
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run diff, sched, mutants, soundness, dag and races sweeps (the CI smoke entry point).")
    Term.(const (fun s c o p -> Stdlib.exit (run_all s c o p)) $ seed_arg $ count_arg $ out_arg $ par_arg)

let daemon_cmd =
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Chaos-test the profiling daemon: concurrent clients against an in-process server with \
          injected crashes, corrupt frames, truncations, stalls and disconnects; victims must end \
          Partial with loss matching their obs counters, survivors must match a serial batch run \
          exactly.")
    Term.(const (fun s c k o -> Stdlib.exit (run_daemon s c k o)) $ seed_arg $ count_arg $ clients_arg $ out_arg)

let () =
  let info =
    Cmd.info "ddpcheck" ~version:"1.0"
      ~doc:"Differential fuzzing and schedule exploration for the dependence profiler."
  in
  let default = Term.(const (fun s c o p -> Stdlib.exit (run_all s c o p)) $ seed_arg $ count_arg $ out_arg $ par_arg) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            all_cmd;
            diff_cmd;
            sched_cmd;
            mutants_cmd;
            soundness_cmd;
            dag_cmd;
            races_cmd;
            daemon_cmd;
          ]))
