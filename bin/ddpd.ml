(* ddpd: the data-dependence profiling daemon.

   One process, one Unix-domain socket, N concurrent profiling sessions
   multiplexed over a fixed pool of W worker domains.  See DESIGN.md
   (lib/daemon) for the wire protocol and the supervision/degradation
   ladder; `ddprof submit --daemon SOCK` is the matching client.

   SIGTERM/SIGINT trigger a graceful drain: stop admitting, let
   in-flight sessions finish (salvaging stragglers as Partial), flush
   metrics, exit 0. *)

let () = Ddp_baselines.Baseline_engines.register ()

open Cmdliner

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"SOCK" ~doc:"Unix-domain socket path to listen on.")

let workers_arg =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"W" ~doc:"Shared worker pool size (domains).")

let max_sessions_arg =
  Arg.(
    value & opt int 8
    & info [ "max-sessions" ] ~docv:"N"
        ~doc:"Admission slots: concurrent sessions beyond this get a typed BUSY retry-after reply.")

let queue_budget_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-budget" ] ~docv:"N"
        ~doc:
          "Max queued batches per session; overflow is handled by the session's backpressure \
           policy (from its HELLO).")

let batch_size_arg =
  Arg.(
    value & opt int 512
    & info [ "batch-size" ] ~docv:"N" ~doc:"Events per batch handed to the worker pool.")

let idle_timeout_arg =
  Arg.(
    value & opt float 10.0
    & info [ "idle-timeout" ] ~docv:"SECS"
        ~doc:
          "A session that sends no frame for SECS is aborted as stalled (Partial verdict, slots \
           reclaimed).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:"Default wall-clock budget per session (a HELLO deadline= overrides it).")

let watermark_arg =
  Arg.(
    value & opt int 256
    & info [ "degrade-watermark" ] ~docv:"N"
        ~doc:
          "Global queued-batch level at which the daemon degrades: sessions with a block policy \
           are escalated to sampling before any admission is refused.")

let drain_grace_arg =
  Arg.(
    value & opt float 5.0
    & info [ "drain-grace" ] ~docv:"SECS"
        ~doc:"Seconds to let in-flight sessions finish on SIGTERM before salvaging them.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the final ddpd-status/1 document to FILE on shutdown (crash-safe tmp+rename).")

let quiet_arg = Arg.(value & flag & info [ "quiet" ] ~doc:"No per-session log lines on stderr.")

let run socket workers max_sessions queue_budget batch_size idle_timeout deadline watermark
    drain_grace metrics_out quiet =
  let log = if quiet then fun _ -> () else fun s -> Printf.eprintf "ddpd: %s\n%!" s in
  let cfg =
    {
      (Ddp_daemon.Server.default_config ~socket_path:socket) with
      Ddp_daemon.Server.workers;
      max_sessions;
      queue_budget;
      batch_size;
      idle_timeout;
      session_deadline = deadline;
      degrade_watermark = watermark;
      drain_grace;
      metrics_out;
      log;
    }
  in
  let server =
    try Ddp_daemon.Server.start cfg
    with Unix.Unix_error (e, _, arg) ->
      Printf.eprintf "ddpd: cannot listen on %s: %s %s\n" socket (Unix.error_message e) arg;
      exit 1
  in
  (* Graceful drain on both signals; the handler only flips a flag, the
     main thread (parked in [wait]) runs the actual drain and exits 0. *)
  let request _ = Ddp_daemon.Server.request_stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request);
  Ddp_daemon.Server.wait server

let main =
  Cmd.v
    (Cmd.info "ddpd"
       ~doc:
         "Data-dependence profiling daemon: concurrent sessions over a Unix-domain socket, \
          multiplexed onto a fixed worker-domain pool, with admission control, per-tenant fault \
          isolation and graceful degradation.  SIGTERM drains and exits 0.")
    Term.(
      const run $ socket_arg $ workers_arg $ max_sessions_arg $ queue_budget_arg $ batch_size_arg
      $ idle_timeout_arg $ deadline_arg $ watermark_arg $ drain_grace_arg $ metrics_out_arg
      $ quiet_arg)

let () = exit (Cmd.eval main)
