(* ddprof — command-line front end to the data-dependence profiler.

     ddprof list
     ddprof list-modes
     ddprof run kmeans --mode parallel --workers 8 --report
     ddprof run kmeans --mode shadow --record /tmp/kmeans.trace
     ddprof run water-spatial --variant par --mt --report --show-threads
     ddprof replay --trace /tmp/kmeans.trace --mode hashtable
     ddprof loops cg
     ddprof comm water-spatial --target-threads 4
     ddprof races streamcluster *)

open Cmdliner

(* Baseline engines (shadow/hashtable/stride) live in a separate library;
   registration must be forced before mode names resolve. *)
let () = Ddp_baselines.Baseline_engines.register ()

let get_program ~variant ~target_threads ~scale name =
  let w = Ddp_workloads.Registry.find name in
  match variant with
  | `Seq -> w.Ddp_workloads.Wl.seq ~scale
  | `Par -> (
    match w.Ddp_workloads.Wl.par with
    | Some par -> par ~threads:target_threads ~scale
    | None -> failwith (Printf.sprintf "workload %s has no parallel (pthread-style) variant" name))

(* -- common args --------------------------------------------------------- *)

let name_arg =
  let doc = "Workload name (see `ddprof list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"K" ~doc:"Problem-size multiplier.")

let variant_arg =
  let v = Arg.enum [ ("seq", `Seq); ("par", `Par) ] in
  Arg.(value & opt v `Seq & info [ "variant" ] ~docv:"V" ~doc:"Target variant: seq or par (pthread-style).")

let target_threads_arg =
  Arg.(value & opt int 4 & info [ "target-threads" ] ~docv:"N" ~doc:"Threads of the parallel target program.")

let workers_arg =
  Arg.(value & opt int 8 & info [ "workers" ] ~docv:"W" ~doc:"Profiling worker threads (parallel mode).")

let queue_capacity_arg =
  Arg.(
    value
    & opt int Ddp_core.Config.default.Ddp_core.Config.queue_capacity
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Bounded chunk-queue capacity per worker.  Small values congest the pipeline — useful \
           with the lossy --backpressure policies.")

let slots_arg =
  Arg.(value & opt int (1 lsl 20) & info [ "slots" ] ~docv:"M" ~doc:"Total signature slots per direction.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Scheduler seed.")

let mode_arg =
  let doc = "Profiler engine (see `ddprof list-modes')." in
  Arg.(value & opt string "serial" & info [ "mode" ] ~docv:"MODE" ~doc)

(* Queue-full policy: block | drop-new | drop-oldest | sample:<p>. *)
let backpressure_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "block" -> Ok Ddp_core.Config.Block
    | "drop-new" -> Ok Ddp_core.Config.Drop_new
    | "drop-oldest" -> Ok Ddp_core.Config.Drop_oldest
    | s when String.length s > 7 && String.sub s 0 7 = "sample:" -> (
      let p = String.sub s 7 (String.length s - 7) in
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Ddp_core.Config.Sample p)
      | _ -> Error (`Msg (Printf.sprintf "bad sample probability %S (want sample:<p> with 0<=p<=1)" p)))
    | _ ->
      Error
        (`Msg
          (Printf.sprintf "unknown backpressure policy %S (block|drop-new|drop-oldest|sample:<p>)" s))
  in
  let print ppf = function
    | Ddp_core.Config.Block -> Format.pp_print_string ppf "block"
    | Ddp_core.Config.Drop_new -> Format.pp_print_string ppf "drop-new"
    | Ddp_core.Config.Drop_oldest -> Format.pp_print_string ppf "drop-oldest"
    | Ddp_core.Config.Sample p -> Format.fprintf ppf "sample:%g" p
  in
  Arg.conv ~docv:"POLICY" (parse, print)

let backpressure_arg =
  Arg.(
    value
    & opt backpressure_conv Ddp_core.Config.Block
    & info [ "backpressure" ] ~docv:"POLICY"
        ~doc:
          "Queue-full policy for the parallel pipeline: $(b,block) (wait, lossless), \
           $(b,drop-new), $(b,drop-oldest) (needs --lock-based) or $(b,sample:)$(i,P) (shed each \
           overflowing chunk with probability P).  Anything but block degrades the run to a \
           partial result with exact loss accounting.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Abort profiling after SECS seconds and salvage whatever the workers completed (the \
           result is marked partial).")

let check_backpressure (config : Ddp_core.Config.t) =
  match config.backpressure with
  | Ddp_core.Config.Drop_oldest when config.lock_free ->
    Printf.eprintf "--backpressure drop-oldest requires --lock-based queues\n";
    exit 1
  | _ -> ()

(* Partial results are still printed in full (that is the point of the
   salvage path), but the process exits 3 so scripts can tell a degraded
   run from a complete one. *)
let conclude (outcome : Ddp_core.Profiler.outcome) =
  if Ddp_core.Health.is_partial outcome.health then begin
    print_newline ();
    print_endline (Ddp_core.Health.to_string outcome.health);
    exit 3
  end

let check_mode mode =
  match Ddp_core.Engine.find mode with
  | Some _ -> ()
  | None ->
    Printf.eprintf "unknown mode %s; registered modes:\n" mode;
    List.iter (fun (name, _) -> Printf.eprintf "  %s\n" name) (Ddp_core.Profiler.modes ());
    exit 1

(* -- shared outcome summary ----------------------------------------------- *)

let summarize ?account (outcome : Ddp_core.Profiler.outcome) =
  let raw, war, waw, init, races = Ddp_core.Report.kind_counts outcome.deps in
  Printf.printf "dependences: %d distinct (RAW %d, WAR %d, WAW %d, INIT %d), %d race-flagged\n"
    (Ddp_core.Dep_store.distinct outcome.deps) raw war waw init races;
  Printf.printf "merge factor: %.1fx (%d occurrences folded)\n"
    (Ddp_core.Dep_store.merge_factor outcome.deps)
    (Ddp_core.Dep_store.total_occurrences outcome.deps);
  Printf.printf "engine %s: %.2f MiB access-store footprint\n" outcome.engine
    (float_of_int outcome.store_bytes /. 1048576.0);
  if outcome.mt_delayed > 0 then
    Printf.printf "mt push layer: %d accesses delayed\n" outcome.mt_delayed;
  Printf.printf "instrumented wall time: %.3fs\n" outcome.elapsed;
  (match outcome.parallel with
  | Some r ->
    Printf.printf "parallel: %d chunks, %d redistributions, worker events: [%s]\n" r.chunks
      r.redistributions
      (String.concat "; " (Array.to_list (Array.map string_of_int r.per_worker_events)))
  | None -> ());
  (match outcome.extra with
  | Ddp_core.Engines.Hybrid { pruned_events; pruned_sites } ->
    Printf.printf "hybrid: %d access events skipped at %d statically pruned sites\n"
      pruned_events pruned_sites
  | Ddp_core.Engines.Dag { strands; spawns; joins } ->
    Printf.printf "sp-dag: %d strands over %d spawns / %d joins; race flags are schedule-independent\n"
      strands spawns joins
  | Ddp_core.Engines.Hybrid_dag { pruned_events; pruned_sites; inner } ->
    Printf.printf "hybrid-dag: %d access events skipped at %d statically pruned sites\n"
      pruned_events pruned_sites;
    (match inner with
    | Ddp_core.Engines.Dag { strands; spawns; joins } ->
      Printf.printf
        "sp-dag: %d strands over %d spawns / %d joins; race flags are schedule-independent\n"
        strands spawns joins
    | _ -> ())
  | _ -> ());
  match account with
  | Some acct ->
    Format.printf "memory (accounted):@.%a" (fun ppf () -> Ddp_util.Mem_account.report ppf acct) ()
  | None -> ()

(* -- telemetry helpers ----------------------------------------------------- *)

(* The hub needs one cell per pipeline domain: producer + workers for the
   parallel engine, a single domain for everything else. *)
let obs_domains ~mode ~workers = if mode = "parallel" then workers + 1 else 1

(* Any self-profiling feature wants a hub; allocation tracking only when
   the per-stage table was asked for (it is wall-world state and costs
   two Gc counter reads per span boundary). *)
let make_obs ~mode ~workers ~track_alloc ~wanted =
  if not wanted then None
  else Some (Ddp_obs.Obs.create ~domains:(obs_domains ~mode ~workers) ~track_alloc ())

(* Process-global allocation so far, in bytes: the external measurement
   the per-stage attribution table is cross-checked against. *)
let gc_alloc_bytes () =
  let gs = Gc.quick_stat () in
  int_of_float
    ((gs.Gc.minor_words +. gs.Gc.major_words -. gs.Gc.promoted_words)
    *. float_of_int (Sys.word_size / 8))

let export_obs ?(gc = []) ~account ~trace_out ~metrics_out ~extra obs =
  match obs with
  | None -> ()
  | Some obs ->
    let snap = Ddp_obs.Obs.snapshot obs in
    (match trace_out with
    | Some path ->
      Ddp_obs.Json.to_file path (Ddp_obs.Export.chrome_trace ~gc snap);
      Printf.printf "chrome trace written to %s (load in ui.perfetto.dev)\n" path
    | None -> ());
    (match metrics_out with
    | Some path ->
      Ddp_obs.Json.to_file path (Ddp_obs.Export.metrics_json ?account ~extra snap);
      Printf.printf "metrics written to %s\n" path
    | None -> ())

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the profiling pipeline to FILE.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write a flat metrics JSON snapshot to FILE.")

let memprof_rate_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "memprof-rate" ] ~docv:"RATE"
        ~doc:
          "Enable per-stage allocation attribution and print the allocation table after the run. \
           RATE is the statmemprof sampling rate (e.g. 0.001 = one sample per ~1000 words); the \
           span-boundary Gc accounting runs regardless, so the table is exact even where \
           statmemprof is unavailable (multicore runtimes).")

let runtime_events_arg =
  Arg.(
    value & flag
    & info [ "runtime-events" ]
        ~doc:
          "Subscribe to the OCaml runtime-events ring and fuse GC phase spans into the \
           --trace-out Chrome trace (tracks gc ring N).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Show a live status line (events/s, queue occupancy, drops, ETA) on stderr.")

let progress_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "progress-out" ] ~docv:"FILE"
        ~doc:"Append one NDJSON progress sample per interval to FILE (schema ddp-progress/1).")

let progress_interval_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "progress-interval" ] ~docv:"SECONDS" ~doc:"Progress sampling interval (default 0.5s).")

(* -- run ------------------------------------------------------------------ *)

let run_cmd =
  let opt_name_arg =
    let doc = "Workload name (see `ddprof list'); omit with --foreign." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let foreign_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "foreign" ] ~docv:"FILE"
          ~doc:
            "Profile a foreign lackey-style trace (L/S/M access lines, A/F allocation lines, \
             optional attribution markers) instead of a workload.  The imported stream carries \
             only the Memory and Alloc event classes and runs through any --mode unchanged.")
  in
  let mt_arg =
    Arg.(value & flag & info [ "mt" ] ~doc:"Enable multi-threaded-target machinery (Sec. V).")
  in
  let report_arg = Arg.(value & flag & info [ "report" ] ~doc:"Print the Fig.-1-style dependence report.") in
  let show_threads_arg =
    Arg.(value & flag & info [ "show-threads" ] ~doc:"Include thread ids in the report (Fig. 3 format).")
  in
  let lock_based_arg =
    Arg.(value & flag & info [ "lock-based" ] ~doc:"Use mutex queues instead of lock-free SPSC.")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:"Record the instrumentation stream to FILE while profiling (one pass).")
  in
  let run name foreign scale variant target_threads mode mt workers slots seed report
      show_threads lock_based record backpressure deadline queue_capacity trace_out metrics_out
      memprof_rate runtime_events progress progress_out progress_interval =
    check_mode mode;
    let name, prog =
      match (name, foreign) with
      | Some name, None -> (name, Some (get_program ~variant ~target_threads ~scale name))
      | None, Some path -> ("foreign:" ^ path, None)
      | Some _, Some _ ->
        Printf.eprintf "ddprof run: give either a WORKLOAD or --foreign FILE, not both\n";
        exit 2
      | None, None ->
        Printf.eprintf "ddprof run: WORKLOAD required (or pass --foreign FILE)\n";
        exit 2
    in
    (* The hybrid engines need their pruning plan up front: the static
       analysis decides which variables are dependence-free, and their
       pre-interned ids ride in on the config.  A foreign trace has no
       program to analyze, so they degenerate to their inner engine
       (empty prune list). *)
    let plan =
      match (mode, prog) with
      | ("hybrid" | "hybrid-dag"), Some prog -> Some (Ddp_static.Hybrid.plan prog)
      | _ -> None
    in
    let config =
      {
        Ddp_core.Config.default with
        workers;
        slots;
        seed;
        lock_free = not lock_based;
        backpressure;
        deadline;
        queue_capacity;
        static_prune =
          (match plan with Some p -> p.Ddp_static.Hybrid.prune_ids | None -> []);
        memprof_rate;
      }
    in
    check_backpressure config;
    (match plan with
    | Some p when p.Ddp_static.Hybrid.prune_names <> [] ->
      Printf.printf "static prune plan: %s\n"
        (String.concat " " p.Ddp_static.Hybrid.prune_names)
    | Some _ -> print_endline "static prune plan: (no variable proved dependence-free)"
    | None -> ());
    let account = Ddp_util.Mem_account.create () in
    (* SIGINT/SIGTERM mid-record must not leave a stale FILE.tmp *)
    if record <> None then Ddp_util.Tmp_file.install_signal_cleanup ();
    let recording = Option.map (fun path -> Ddp_minir.Trace_file.start_recording ~path) record in
    let tee = Option.map Ddp_minir.Trace_file.recording_hooks recording in
    let track_alloc = memprof_rate > 0.0 in
    let obs =
      make_obs ~mode ~workers ~track_alloc
        ~wanted:
          (trace_out <> None || metrics_out <> None || track_alloc || progress
          || progress_out <> None || runtime_events)
    in
    let source =
      match (prog, foreign) with
      | Some prog, _ ->
        Ddp_core.Source.live ~sched_seed:seed
          ?symtab:(Option.map (fun p -> p.Ddp_static.Hybrid.symtab) plan)
          prog
      | None, Some path -> Ddp_core.Source.of_foreign ~path
      | None, None -> assert false
    in
    (* Runtime-events consumer attaches before the run so the GC phases
       of engine construction are captured too; degrades to a warning on
       runtimes without the instrumented-ring support. *)
    let rtev = if runtime_events then Ddp_obs.Runtime_ev.start () else None in
    if runtime_events && rtev = None then
      prerr_endline "ddprof: --runtime-events requested but unavailable on this runtime";
    let progress_out_oc = Option.map open_out progress_out in
    let prog_handle =
      match obs with
      | Some o when progress || progress_out_oc <> None ->
        let status =
          if progress then
            Some
              (fun s ->
                output_string stderr s;
                flush stderr)
          else None
        in
        Some
          (Ddp_obs.Progress.start ~interval:progress_interval ?status ?out:progress_out_oc o)
      | _ -> None
    in
    (* Bracket the run with process-global Gc readings: the attribution
       table's coverage is judged against this external delta. *)
    let gc0 = gc_alloc_bytes () in
    let outcome =
      try Ddp_core.Profiler.run ~mode ~config ~mt ?obs ~account:(account, "deps") ?tee source
      with e ->
        (* A crashed run must not publish a truncated trace: the recording
           stays in its .tmp file and is deleted here. *)
        let bt = Printexc.get_raw_backtrace () in
        Option.iter Ddp_minir.Trace_file.abort_recording recording;
        Option.iter Ddp_obs.Progress.stop prog_handle;
        Option.iter close_out progress_out_oc;
        Printexc.raise_with_backtrace e bt
    in
    let gc_delta = gc_alloc_bytes () - gc0 in
    Option.iter Ddp_obs.Progress.stop prog_handle;
    Option.iter close_out progress_out_oc;
    (match (progress_out, progress_out_oc) with
    | Some path, Some _ -> Printf.printf "progress samples written to %s\n" path
    | _ -> ());
    let gc_phases =
      match (rtev, obs) with
      | Some r, Some o ->
        (* Runtime-events timestamps share the CLOCK_MONOTONIC base with
           the hub's clock; rebasing by the hub epoch puts the GC phases
           on the same Chrome-trace timeline as the pipeline spans. *)
        let epoch = Ddp_obs.Obs.epoch_ns o in
        List.map
          (fun (p : Ddp_obs.Runtime_ev.phase) -> { p with Ddp_obs.Runtime_ev.ts_ns = p.ts_ns - epoch })
          (Ddp_obs.Runtime_ev.finish r)
      | Some r, None -> ignore (Ddp_obs.Runtime_ev.finish r : Ddp_obs.Runtime_ev.phase list); []
      | None, _ -> []
    in
    (match rtev with
    | Some r ->
      Printf.printf "runtime-events: %d gc phase spans captured%s\n" (List.length gc_phases)
        (let l = Ddp_obs.Runtime_ev.lost r in
         if l > 0 then Printf.sprintf " (%d events lost)" l else "")
    | None -> ());
    (match (recording, record) with
    | Some r, Some path ->
      Ddp_minir.Trace_file.finish_recording r outcome.symtab;
      Printf.printf "trace written to %s\n" path
    | _ -> ());
    Printf.printf "workload %s (%s): %d accesses over %d addresses, %d lines\n" name
      (match (prog, variant) with
      | None, _ -> "foreign"
      | Some _, `Seq -> "seq"
      | Some _, `Par -> "par")
      outcome.run_stats.accesses outcome.run_stats.addresses outcome.run_stats.lines;
    summarize ~account outcome;
    List.iter (fun n -> Printf.printf "note: %s\n" n) outcome.notes;
    (match obs with
    | Some o when Ddp_obs.Obs.alloc_tracked o ->
      Ddp_obs.Export.pp_alloc_table ~total_bytes:gc_delta Format.std_formatter
        (Ddp_obs.Obs.snapshot o)
    | _ -> ());
    export_obs ~gc:gc_phases ~account:(Some account) ~trace_out ~metrics_out
      ~extra:
        [
          ("engine", Ddp_obs.Json.Str mode);
          ("workload", Ddp_obs.Json.Str name);
          ("seed", Ddp_obs.Json.Int seed);
        ]
      obs;
    if report then begin
      print_newline ();
      print_string (Ddp_core.Profiler.report ~show_threads outcome)
    end;
    conclude outcome
  in
  let term =
    Term.(
      const run $ opt_name_arg $ foreign_arg $ scale_arg $ variant_arg $ target_threads_arg
      $ mode_arg $ mt_arg $ workers_arg $ slots_arg $ seed_arg $ report_arg $ show_threads_arg
      $ lock_based_arg $ record_arg $ backpressure_arg $ deadline_arg $ queue_capacity_arg
      $ trace_out_arg $ metrics_out_arg $ memprof_rate_arg $ runtime_events_arg $ progress_arg
      $ progress_out_arg $ progress_interval_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Profile a workload (or a --foreign trace) and summarize its dependences.")
    term

(* -- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Ddp_workloads.Wl.t) ->
        Printf.printf "%-14s %-10s %s%s\n" w.name
          (Ddp_workloads.Wl.suite_name w.suite)
          w.description
          (if w.par <> None then "  [has par variant]" else ""))
      Ddp_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads.") Term.(const run $ const ())

(* -- list-modes ------------------------------------------------------------ *)

let list_modes_cmd =
  let run () =
    List.iter
      (fun (e : Ddp_core.Engine.t) ->
        Printf.printf "%-10s %-24s %s%s\n" e.name
          (Ddp_minir.Handler.pp_class_list e.consumes)
          e.description
          (if e.exact then "  [exact]" else ""))
      (Ddp_core.Engine.all ())
  in
  Cmd.v
    (Cmd.info "list-modes"
       ~doc:"List registered profiling engines (the --mode values) and the event classes each consumes.")
    Term.(const run $ const ())

(* -- loops ---------------------------------------------------------------- *)

let loops_cmd =
  let perfect_arg = Arg.(value & flag & info [ "perfect" ] ~doc:"Use the perfect-signature oracle.") in
  let run name scale perfect slots =
    let w = Ddp_workloads.Registry.find name in
    let prog = w.Ddp_workloads.Wl.seq ~scale in
    let config = { Ddp_core.Config.default with slots } in
    let summary = Ddp_analyses.Loop_parallelism.analyze ~config ~perfect prog in
    Ddp_analyses.Loop_parallelism.pp_summary Format.std_formatter summary
  in
  Cmd.v
    (Cmd.info "loops" ~doc:"Classify loops as parallelizable (the Table II analysis).")
    Term.(const run $ name_arg $ scale_arg $ perfect_arg $ slots_arg)

(* -- comm ----------------------------------------------------------------- *)

let comm_cmd =
  let run name scale target_threads seed =
    let prog = get_program ~variant:`Par ~target_threads ~scale name in
    let outcome = Ddp_core.Profiler.profile ~mode:"serial" ~mt:true ~sched_seed:seed prog in
    let m = Ddp_analyses.Comm_pattern.of_deps outcome.deps in
    print_string
      (Ddp_analyses.Comm_pattern.render (Ddp_analyses.Comm_pattern.workers_only m));
    Printf.printf "total cross-thread RAW volume: %.0f\n"
      (Ddp_analyses.Comm_pattern.total_volume m)
  in
  Cmd.v
    (Cmd.info "comm" ~doc:"Producer/consumer communication matrix (the Fig. 9 analysis).")
    Term.(const run $ name_arg $ scale_arg $ target_threads_arg $ seed_arg)

(* -- record / replay ------------------------------------------------------ *)

let path_arg =
  Arg.(required & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc:"Trace file path.")

let record_cmd =
  let run name scale variant target_threads seed path =
    let prog = get_program ~variant ~target_threads ~scale name in
    Ddp_util.Tmp_file.install_signal_cleanup ();
    Ddp_minir.Trace_file.record ~sched_seed:seed ~path prog;
    Printf.printf "trace written to %s\n" path
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a workload's instrumentation stream to a trace file.")
    Term.(const run $ name_arg $ scale_arg $ variant_arg $ target_threads_arg $ seed_arg $ path_arg)

let replay_cmd =
  let report_arg = Arg.(value & flag & info [ "report" ] ~doc:"Print the dependence report.") in
  let run path mode slots backpressure deadline report =
    check_mode mode;
    let config = { Ddp_core.Config.default with slots; backpressure; deadline } in
    check_backpressure config;
    let outcome = Ddp_core.Profiler.run ~mode ~config (Ddp_core.Source.of_trace ~path) in
    Printf.printf "replayed %s through engine %s: %d accesses over %d addresses\n" path mode
      outcome.run_stats.accesses outcome.run_stats.addresses;
    summarize outcome;
    if report then begin
      print_newline ();
      print_string (Ddp_core.Profiler.report outcome)
    end;
    conclude outcome
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Profile a previously recorded trace under any engine (collect once, analyze many).")
    Term.(const run $ path_arg $ mode_arg $ slots_arg $ backpressure_arg $ deadline_arg $ report_arg)

(* -- foreign-export / foreign-diff ---------------------------------------- *)

(* Collect a workload's native stream and keep only what the lackey
   dialect can express (Memory + Alloc classes, with attribution
   markers).  The exported file round-trips: dependence keys carry no
   timestamps, so re-importing reproduces the native dep set exactly. *)
let collect_events ~variant ~target_threads ~scale ~seed name =
  let prog = get_program ~variant ~target_threads ~scale name in
  let hooks, get = Ddp_minir.Event.collector () in
  let symtab = Ddp_minir.Symtab.create () in
  let (_ : Ddp_minir.Interp.stats) =
    Ddp_minir.Interp.run ~hooks ~sched_seed:seed ~symtab prog
  in
  (get (), symtab)

let foreign_export_cmd =
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the lackey-style trace to FILE.")
  in
  let run name scale variant target_threads seed out =
    let events, symtab = collect_events ~variant ~target_threads ~scale ~seed name in
    Ddp_minir.Foreign.export ~path:out events symtab;
    let expressible =
      List.length
        (List.filter
           (fun e ->
             match Ddp_minir.Event.class_of e with
             | Ddp_minir.Event.Class.Memory | Ddp_minir.Event.Class.Alloc -> true
             | _ -> false)
           events)
    in
    Printf.printf "foreign trace written to %s (%d of %d events expressible in the dialect)\n"
      out expressible (List.length events)
  in
  Cmd.v
    (Cmd.info "foreign-export"
       ~doc:
         "Export a workload's instrumentation stream as a lackey-style foreign trace (Memory and \
          Alloc classes only, with attribution markers).")
    Term.(const run $ name_arg $ scale_arg $ variant_arg $ target_threads_arg $ seed_arg $ out_arg)

let foreign_diff_cmd =
  let run name scale variant target_threads seed mode slots path =
    check_mode mode;
    let config = { Ddp_core.Config.default with slots; seed } in
    let prog = get_program ~variant ~target_threads ~scale name in
    let native =
      Ddp_core.Profiler.run ~mode ~config (Ddp_core.Source.live ~sched_seed:seed prog)
    in
    let imported =
      Ddp_core.Profiler.run ~mode ~config (Ddp_core.Source.of_foreign ~path)
    in
    let native_keys = Ddp_core.Dep_store.key_set native.deps in
    let imported_keys = Ddp_core.Dep_store.key_set imported.deps in
    let module KS = Ddp_core.Dep_store.Key_set in
    Printf.printf "engine %s: native %d deps, imported %d deps\n" mode
      (KS.cardinal native_keys) (KS.cardinal imported_keys);
    if KS.equal native_keys imported_keys then
      print_endline "foreign-diff: dependence sets identical"
    else begin
      let missing = KS.diff native_keys imported_keys in
      let spurious = KS.diff imported_keys native_keys in
      Printf.printf "foreign-diff: MISMATCH (%d missing, %d spurious)\n" (KS.cardinal missing)
        (KS.cardinal spurious);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "foreign-diff"
       ~doc:
         "Profile WORKLOAD natively and via an exported foreign trace (--trace) under the same \
          engine, and fail unless the dependence sets are identical.")
    Term.(
      const run $ name_arg $ scale_arg $ variant_arg $ target_threads_arg $ seed_arg $ mode_arg
      $ slots_arg $ path_arg)

(* -- distance -------------------------------------------------------------- *)

let distance_cmd =
  let run name scale =
    let w = Ddp_workloads.Registry.find name in
    let summary = Ddp_analyses.Dep_distance.analyze (w.Ddp_workloads.Wl.seq ~scale) in
    print_string (Ddp_analyses.Dep_distance.render summary)
  in
  Cmd.v
    (Cmd.info "distance" ~doc:"Loop-carried dependence distances per loop.")
    Term.(const run $ name_arg $ scale_arg)

(* -- calltree --------------------------------------------------------------- *)

let calltree_cmd =
  let full_arg =
    Arg.(value & flag & info [ "exec-tree" ] ~doc:"Show the full execution tree (loops included).")
  in
  let run name scale full =
    let w = Ddp_workloads.Registry.find name in
    let tree, symtab = Ddp_analyses.Exec_tree.build (w.Ddp_workloads.Wl.seq ~scale) in
    let func_name = Ddp_minir.Symtab.var_name symtab in
    let node =
      if full then Ddp_analyses.Exec_tree.root tree else Ddp_analyses.Exec_tree.call_tree tree
    in
    print_string (Ddp_analyses.Exec_tree.render ~func_name node)
  in
  Cmd.v
    (Cmd.info "calltree" ~doc:"Call tree (or full dynamic execution tree) of a workload run.")
    Term.(const run $ name_arg $ scale_arg $ full_arg)

(* -- graph ---------------------------------------------------------------- *)

let graph_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Write Graphviz to FILE.")
  in
  let sections_arg =
    Arg.(value & flag & info [ "sections" ] ~doc:"Collapse statements into loop regions (set-based granularity).")
  in
  let run name scale sections out =
    let w = Ddp_workloads.Registry.find name in
    let prog = w.Ddp_workloads.Wl.seq ~scale in
    let summary = Ddp_analyses.Loop_parallelism.analyze ~perfect:true prog in
    let outcome = Ddp_core.Profiler.profile ~mode:"serial" prog in
    let g = Ddp_analyses.Dep_graph.of_store outcome.deps in
    let g =
      if sections then Ddp_analyses.Dep_graph.collapse_to_regions ~regions:outcome.regions g
      else g
    in
    Printf.printf "dependence graph: %d nodes, %d edges\n" (Ddp_analyses.Dep_graph.node_count g)
      (Ddp_analyses.Dep_graph.edge_count g);
    print_string
      (Ddp_analyses.Loop_table.render (Ddp_analyses.Loop_table.of_regions ~summary outcome.regions));
    match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Ddp_analyses.Dep_graph.to_dot ~name g);
      close_out oc;
      Printf.printf "Graphviz written to %s\n" file
    | None -> ()
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Dependence graph + loop table (the framework representations).")
    Term.(const run $ name_arg $ scale_arg $ sections_arg $ out_arg)

(* -- stats ----------------------------------------------------------------- *)

let stats_cmd =
  (* Offline mode: summarize a previously saved --metrics-out file.  The
     schema gate is strict — a file written by an older/newer ddprof is
     rejected with the expected/found versions, not half-parsed. *)
  let stats_from path =
    let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "ddprof stats: %s\n" s; exit 1) fmt in
    let j =
      try Ddp_obs.Json.of_file path with
      | Ddp_obs.Json.Parse_error msg -> fail "%s: JSON parse error: %s" path msg
      | Sys_error msg -> fail "%s" msg
    in
    (match Ddp_obs.Export.check_schema j with
    | Error msg -> fail "%s: %s" path msg
    | Ok () -> ());
    let int_field name = Option.bind (Ddp_obs.Json.member name j) Ddp_obs.Json.to_int in
    let counter name =
      match Option.bind (Ddp_obs.Json.member "counters" j) (Ddp_obs.Json.member name) with
      | Some v -> Option.value ~default:0 (Ddp_obs.Json.to_int v)
      | None -> 0
    in
    Printf.printf "metrics file %s (schema %s)\n" path Ddp_obs.Export.schema_version;
    Printf.printf "  domains              %d\n" (Option.value ~default:0 (int_field "domains"));
    Printf.printf "  events processed     %d\n" (counter "events_processed");
    Printf.printf "  chunks pushed        %d (%d events routed)\n" (counter "chunks_pushed")
      (counter "chunk_events");
    Printf.printf "  stalls               %d queue-full, %d drain (%d ns stalled)\n"
      (counter "queue_full_stalls") (counter "drain_stalls") (counter "stall_ns");
    Printf.printf "  redistributions      %d (%d addresses migrated)\n" (counter "redistributions")
      (counter "migrated_addrs");
    Printf.printf "  dropped trace events %d\n"
      (Option.value ~default:0 (int_field "dropped_events"));
    match Option.bind (Ddp_obs.Json.member "alloc" j) (Ddp_obs.Json.member "attributed_bytes") with
    | Some v ->
      Printf.printf "  attributed alloc     %d bytes\n" (Option.value ~default:0 (Ddp_obs.Json.to_int v))
    | None -> ()
  in
  let run name from scale variant target_threads mode workers slots seed trace_out metrics_out =
    match (from, name) with
    | Some path, _ -> stats_from path
    | None, None ->
      Printf.eprintf "ddprof stats: WORKLOAD required (or pass --from FILE)\n";
      exit 2
    | None, Some name ->
    check_mode mode;
    let prog = get_program ~variant ~target_threads ~scale name in
    let config = { Ddp_core.Config.default with workers; slots; seed } in
    let account = Ddp_util.Mem_account.create () in
    let obs = Ddp_obs.Obs.create ~domains:(obs_domains ~mode ~workers) () in
    let outcome =
      Ddp_core.Profiler.run ~mode ~config ~obs ~account:(account, "deps")
        (Ddp_core.Source.live ~sched_seed:seed prog)
    in
    Printf.printf "workload %s, engine %s: %d accesses, %d distinct dependences\n" name mode
      outcome.run_stats.accesses
      (Ddp_core.Dep_store.distinct outcome.deps);
    let snap = Ddp_obs.Obs.snapshot obs in
    Ddp_obs.Export.pp_summary Format.std_formatter snap;
    export_obs ~account:(Some account) ~trace_out ~metrics_out
      ~extra:
        [
          ("engine", Ddp_obs.Json.Str mode);
          ("workload", Ddp_obs.Json.Str name);
          ("seed", Ddp_obs.Json.Int seed);
        ]
      (Some obs)
  in
  let mode_arg =
    Arg.(value & opt string "parallel" & info [ "mode" ] ~docv:"MODE"
           ~doc:"Profiler engine (default parallel: pipeline telemetry).")
  in
  let opt_name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (omit with --from).")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"FILE"
          ~doc:
            "Summarize a previously saved --metrics-out FILE instead of running a workload.  \
             Fails (exit 1) if the file's schema version does not match this ddprof.")
  in
  let term =
    Term.(
      const run $ opt_name_arg $ from_arg $ scale_arg $ variant_arg $ target_threads_arg
      $ mode_arg $ workers_arg $ slots_arg $ seed_arg $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Profile a workload with telemetry on and print the pipeline summary (stalls, load \
          imbalance, redistribution timeline), or summarize a saved metrics file (--from).")
    term

(* -- check-trace ------------------------------------------------------------ *)

(* Validate a Chrome trace-event file: parses, has events, and (with
   --workers) every worker track carries at least one complete span.
   Used by the CI smoke job. *)
let check_trace_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Chrome trace JSON file.")
  in
  let check_workers_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"W"
          ~doc:"Require at least one complete span on each worker track 1..W.")
  in
  let run file workers =
    let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "check-trace: %s\n" s; exit 1) fmt in
    let j =
      try Ddp_obs.Json.of_file file with
      | Ddp_obs.Json.Parse_error msg -> fail "%s: JSON parse error: %s" file msg
      | Sys_error msg -> fail "%s" msg
    in
    let events =
      match Option.bind (Ddp_obs.Json.member "traceEvents" j) Ddp_obs.Json.to_list with
      | Some l -> l
      | None -> fail "%s: no traceEvents array" file
    in
    let span_tids = Hashtbl.create 8 in
    let n_spans = ref 0 in
    List.iter
      (fun e ->
        match Option.bind (Ddp_obs.Json.member "ph" e) Ddp_obs.Json.to_str with
        | Some "X" ->
          incr n_spans;
          (match Option.bind (Ddp_obs.Json.member "tid" e) Ddp_obs.Json.to_int with
          | Some tid -> Hashtbl.replace span_tids tid ()
          | None -> fail "%s: span without tid" file)
        | _ -> ())
      events;
    if !n_spans = 0 then fail "%s: no complete spans" file;
    (match workers with
    | Some w ->
      for tid = 1 to w do
        if not (Hashtbl.mem span_tids tid) then
          fail "%s: worker track %d has no spans" file tid
      done
    | None -> ());
    Printf.printf "%s: OK (%d events, %d spans, %d tracks with spans)\n" file
      (List.length events) !n_spans (Hashtbl.length span_tids)
  in
  Cmd.v
    (Cmd.info "check-trace" ~doc:"Validate a --trace-out Chrome trace JSON file.")
    Term.(const run $ file_arg $ check_workers_arg)

(* -- check-progress --------------------------------------------------------- *)

(* Validate a --progress-out NDJSON file: every line parses, carries the
   ddp-progress/1 schema and the required fields, and the time/event
   series are monotone.  Used by the CI obs-smoke job. *)
let check_progress_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Progress NDJSON file.")
  in
  let min_samples_arg =
    Arg.(
      value
      & opt int 1
      & info [ "min-samples" ] ~docv:"N" ~doc:"Require at least N samples (default 1).")
  in
  let run file min_samples =
    let fail fmt =
      Printf.ksprintf (fun s -> Printf.eprintf "check-progress: %s\n" s; exit 1) fmt
    in
    let ic = try open_in file with Sys_error msg -> fail "%s" msg in
    let n = ref 0 and lineno = ref 0 in
    let last_t = ref neg_infinity and last_events = ref min_int in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         if String.trim line <> "" then begin
           let j =
             try Ddp_obs.Json.parse line
             with Ddp_obs.Json.Parse_error msg ->
               fail "%s:%d: JSON parse error: %s" file !lineno msg
           in
           (match Option.bind (Ddp_obs.Json.member "schema" j) Ddp_obs.Json.to_str with
           | Some s when s = Ddp_obs.Progress.schema -> ()
           | Some s ->
             fail "%s:%d: schema %S, expected %S" file !lineno s Ddp_obs.Progress.schema
           | None -> fail "%s:%d: no schema field" file !lineno);
           let num name =
             match Option.bind (Ddp_obs.Json.member name j) Ddp_obs.Json.to_float with
             | Some v -> v
             | None -> fail "%s:%d: missing numeric field %S" file !lineno name
           in
           let t = num "t_s" in
           let events = int_of_float (num "events") in
           ignore (num "events_per_s");
           ignore (num "queue_chunks");
           ignore (num "dropped_events");
           ignore (num "worker_crashes");
           if t < !last_t then fail "%s:%d: t_s went backwards (%.3f after %.3f)" file !lineno t !last_t;
           if events < !last_events then
             fail "%s:%d: events went backwards (%d after %d)" file !lineno events !last_events;
           last_t := t;
           last_events := events;
           incr n
         end
       done
     with End_of_file -> close_in ic);
    if !n < min_samples then fail "%s: only %d sample(s), need at least %d" file !n min_samples;
    Printf.printf "%s: OK (%d samples, monotone, final events=%d)\n" file !n !last_events
  in
  Cmd.v
    (Cmd.info "check-progress" ~doc:"Validate a --progress-out NDJSON progress file.")
    Term.(const run $ file_arg $ min_samples_arg)

(* -- static ---------------------------------------------------------------- *)

module Static_dep = Ddp_static.Static_dep

(* Analyze every registered workload and cross-check loop verdicts
   against the ground-truth annotations.  A Serial verdict on a loop
   annotated parallel would mean the analyzer proved a carried RAW that
   cannot exist — a hard (exit-1) contradiction.  Parallel on a loop
   annotated serial is reported but tolerated: annotations are
   conservative for some workloads and the proof may simply be sharper. *)
(* Race-verdict lint of one workload against the @race/@norace ground
   truth of the task family.  A [Race_free] verdict on a @race workload
   would mean the lint proved silence where a race provably exists; a
   [Racy] (must-race) verdict on a @norace workload proves noise that
   cannot happen.  Both are hard contradictions; [Race_unknown] is the
   honest middle and never fails the gate. *)
let race_contradiction ~name ~(verdict : Static_dep.race_verdict) =
  match List.assoc_opt name Ddp_workloads.Tasks.ground_truth with
  | None -> None
  | Some racy -> (
    match verdict with
    | Static_dep.Race_free when racy -> Some "race-free-verdict-on-@race"
    | Static_dep.Racy when not racy -> Some "racy-verdict-on-@norace"
    | _ -> None)

let static_lint ~json_out () =
  let hard = ref 0 and soft = ref 0 and loops = ref 0 in
  let per_workload =
    List.map
      (fun (w : Ddp_workloads.Wl.t) ->
        let prog = w.Ddp_workloads.Wl.seq ~scale:1 in
        let report = Ddp_static.Analyze.analyze prog in
        let entries =
          List.map
            (fun (v : Static_dep.loop_verdict) ->
              incr loops;
              let contradiction =
                match v.Static_dep.v_verdict with
                | Static_dep.Serial when v.Static_dep.v_annotated ->
                  incr hard;
                  Some "serial-verdict-on-annotated-parallel"
                | Static_dep.Parallel when not v.Static_dep.v_annotated ->
                  incr soft;
                  Some "proved-parallel-on-annotated-serial"
                | _ -> None
              in
              (match contradiction with
              | Some c ->
                Printf.printf "  %-16s line %d: %s (static %s)\n" w.name
                  v.Static_dep.v_header c
                  (Static_dep.verdict_to_string v.Static_dep.v_verdict)
              | None -> ());
              (v, contradiction))
            report.Static_dep.loops
        in
        let rv = Static_dep.program_race_verdict report in
        let rc = race_contradiction ~name:w.Ddp_workloads.Wl.name ~verdict:rv in
        (match rc with Some _ -> incr hard | None -> ());
        (match List.assoc_opt w.Ddp_workloads.Wl.name Ddp_workloads.Tasks.ground_truth with
        | Some racy ->
          Printf.printf "  %-16s race: static=%s (annotated %s)%s\n" w.Ddp_workloads.Wl.name
            (Static_dep.race_verdict_to_string rv)
            (if racy then "@race" else "@norace")
            (match rc with Some c -> " — " ^ c | None -> "")
        | None -> ());
        (w.Ddp_workloads.Wl.name, report, entries, rv, rc))
      Ddp_workloads.Registry.all
  in
  Printf.printf
    "lint: %d workloads, %d loops — %d hard contradiction(s), %d sharper-than-annotation\n"
    (List.length per_workload) !loops !hard !soft;
  (match json_out with
  | Some path ->
    let j =
      Ddp_obs.Json.Obj
        [
          ("hard_contradictions", Ddp_obs.Json.Int !hard);
          ("sharper_than_annotation", Ddp_obs.Json.Int !soft);
          ("loops", Ddp_obs.Json.Int !loops);
          ( "workloads",
            Ddp_obs.Json.List
              (List.map
                 (fun (name, report, entries, rv, rc) ->
                   Ddp_obs.Json.Obj
                     [
                       ("name", Ddp_obs.Json.Str name);
                       ( "race_verdict",
                         Ddp_obs.Json.Str (Static_dep.race_verdict_to_string rv) );
                       ( "race_contradiction",
                         match rc with
                         | Some c -> Ddp_obs.Json.Str c
                         | None -> Ddp_obs.Json.Null );
                       ( "prunable",
                         Ddp_obs.Json.List
                           (List.map
                              (fun v -> Ddp_obs.Json.Str v)
                              report.Static_dep.prunable) );
                       ( "loops",
                         Ddp_obs.Json.List
                           (List.map
                              (fun ((v : Static_dep.loop_verdict), contradiction) ->
                                Ddp_obs.Json.Obj
                                  [
                                    ("line", Ddp_obs.Json.Int v.Static_dep.v_header);
                                    ( "verdict",
                                      Ddp_obs.Json.Str
                                        (Static_dep.verdict_to_string
                                           v.Static_dep.v_verdict) );
                                    ( "annotated_parallel",
                                      Ddp_obs.Json.Bool v.Static_dep.v_annotated );
                                    ( "contradiction",
                                      match contradiction with
                                      | Some c -> Ddp_obs.Json.Str c
                                      | None -> Ddp_obs.Json.Null );
                                  ])
                              entries) );
                     ])
                 per_workload) );
        ]
    in
    Ddp_obs.Json.to_file path j;
    Printf.printf "lint report written to %s\n" path
  | None -> ());
  if !hard > 0 then exit 1

let static_cmd =
  let opt_name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload name (omit with --lint-workloads).")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Write the full static report (JSON) to FILE.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"MODE"
          ~doc:
            "Also profile dynamically under engine MODE and print the per-kind static-vs-dynamic \
             confusion matrix plus the loop-verdict agreement table.")
  in
  let lint_arg =
    Arg.(
      value & flag
      & info [ "lint-workloads" ]
          ~doc:
            "Analyze every registered workload and report loop verdicts that contradict the \
             ground-truth annotations (exit 1 on a Serial verdict for an annotated-parallel \
             loop, a race-free verdict on a @race task workload, or a racy verdict on a \
             @norace one).")
  in
  let races_arg =
    Arg.(
      value & flag
      & info [ "races" ]
          ~doc:
            "Race lint: print the per-spawn and whole-program race verdicts, diff the static \
             race set against the SP-DAG engine's race-flagged dependences (exit 1 if the \
             engine saw a race the lint did not flag), and check the @race/@norace ground \
             truth where the workload has one.")
  in
  let run name scale seed json_out compare_mode lint races =
    if lint then static_lint ~json_out ()
    else
      match name with
      | None ->
        Printf.eprintf "ddprof static: WORKLOAD required (or pass --lint-workloads)\n";
        exit 2
      | Some name ->
        let w = Ddp_workloads.Registry.find name in
        let prog = w.Ddp_workloads.Wl.seq ~scale in
        let report = Ddp_static.Analyze.analyze prog in
        print_string (Static_dep.render report);
        if races then begin
          let verdict = Static_dep.program_race_verdict report in
          Printf.printf "\nrace lint: program verdict %s (%d race edge(s), %d proven)\n"
            (Static_dep.race_verdict_to_string verdict)
            report.Static_dep.stats.Static_dep.s_race_may
            report.Static_dep.stats.Static_dep.s_race_must;
          (* Confusion against the dag engine: its race flags are
             schedule-independent, so one run is a full reference. *)
          let outcome = Ddp_core.Profiler.profile ~mode:"dag" ~sched_seed:seed prog in
          let var_name = Ddp_minir.Symtab.var_name outcome.Ddp_core.Profiler.symtab in
          let dyn = Ddp_core.Accuracy.project_races ~var_name outcome.Ddp_core.Profiler.deps in
          let sr = Static_dep.race_set report in
          let module ES = Ddp_core.Accuracy.Edge_set in
          let both = ES.inter sr dyn in
          let missed = ES.diff dyn sr in
          Printf.printf
            "race confusion vs --mode dag: static %d, dynamic %d, both %d, static-only %d, \
             dynamic-only %d, sound=%b\n"
            (ES.cardinal sr) (ES.cardinal dyn) (ES.cardinal both)
            (ES.cardinal (ES.diff sr dyn))
            (ES.cardinal missed) (ES.is_empty missed);
          ES.iter
            (fun e ->
              Printf.printf "  MISSED by lint: %s\n" (Ddp_core.Accuracy.Edge.to_string e))
            missed;
          (match race_contradiction ~name ~verdict with
          | Some c ->
            Printf.printf "race lint: ground-truth contradiction — %s\n" c;
            exit 1
          | None ->
            (match List.assoc_opt name Ddp_workloads.Tasks.ground_truth with
            | Some racy ->
              Printf.printf "race lint: ground truth %s — consistent\n"
                (if racy then "@race" else "@norace")
            | None -> ()));
          if not (ES.is_empty missed) then exit 1
        end;
        (match compare_mode with
        | Some mode ->
          check_mode mode;
          let outcome = Ddp_core.Profiler.profile ~mode ~sched_seed:seed prog in
          let dyn =
            Ddp_core.Accuracy.project
              ~var_name:(Ddp_minir.Symtab.var_name outcome.symtab)
              outcome.deps
          in
          print_newline ();
          Format.printf "%a@."
            Ddp_core.Accuracy.pp_confusion
            (Ddp_core.Accuracy.confusion ~may:(Static_dep.may_set report)
               ~must:(Static_dep.must_set report) ~dynamic:dyn);
          Format.printf "@.@[<v>%a@]@." Ddp_analyses.Static_dynamic.pp_summary
            (Ddp_analyses.Static_dynamic.compare ~sched_seed:seed prog)
        | None -> ());
        (match json_out with
        | Some path ->
          Ddp_obs.Json.to_file path (Static_dep.to_json report);
          Printf.printf "static report written to %s\n" path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "static"
       ~doc:
         "Static whole-program dependence analysis: must/may edges, affine loop verdicts, the \
          task race lint (--races), and the hybrid engines' pruning candidates — no execution \
          involved.")
    Term.(
      const run $ opt_name_arg $ scale_arg $ seed_arg $ json_out_arg $ compare_arg $ lint_arg
      $ races_arg)

(* -- daemon client --------------------------------------------------------- *)

let daemon_socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "daemon" ] ~docv:"SOCK" ~doc:"Unix-domain socket path of a running ddpd.")

let submit_cmd =
  let retries_arg =
    Arg.(
      value & opt int 6
      & info [ "retries" ] ~docv:"N"
          ~doc:"Connect/BUSY retries before giving up (capped exponential backoff with jitter).")
  in
  let chunk_arg =
    Arg.(
      value
      & opt int (64 * 1024)
      & info [ "chunk-bytes" ] ~docv:"B"
          ~doc:
            "DATA frame payload size.  Small values stress the daemon's incremental decoder with \
             arbitrary byte splits.")
  in
  let label_arg =
    Arg.(
      value & opt (some string) None
      & info [ "label" ] ~docv:"NAME" ~doc:"Session label shown in ddpd status (default: the workload name).")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE" ~doc:"Submit a recorded trace file instead of running a workload.")
  in
  let diff_batch_arg =
    Arg.(
      value & flag
      & info [ "diff-batch" ]
          ~doc:
            "Also profile the same stream as a one-shot batch run in this process and fail (exit \
             1) unless the daemon's dependence keys are identical.")
  in
  let crash_arg =
    Arg.(
      value & opt int 0
      & info [ "inject-crash" ] ~docv:"N"
          ~doc:"Ask the daemon to arm an N-shot crash budget against this session (chaos testing).")
  in
  let run opt_name trace scale variant target_threads seed mode socket policy deadline retries
      chunk label inject_crash diff_batch =
    let events, symtab, default_label =
      match (opt_name, trace) with
      | Some name, None ->
        let events, symtab = collect_events ~variant ~target_threads ~scale ~seed name in
        (events, symtab, name)
      | None, Some path ->
        let events, symtab = Ddp_minir.Trace_file.load ~path in
        (events, symtab, Filename.basename path)
      | Some _, Some _ ->
        Printf.eprintf "ddprof submit: give either a WORKLOAD or --trace FILE, not both\n";
        exit 2
      | None, None ->
        Printf.eprintf "ddprof submit: need a WORKLOAD or --trace FILE\n";
        exit 2
    in
    let name = Option.value label ~default:default_label in
    match
      Ddp_daemon.Client.submit ~retries ~seed ~policy ?deadline
        ?inject_crash:(if inject_crash > 0 then Some inject_crash else None)
        ~chunk_bytes:chunk ~socket ~name ~mode ~events ~symtab ()
    with
    | Error e ->
      Printf.eprintf "ddprof submit: %s\n" (Ddp_daemon.Client.error_to_string e);
      exit 1
    | Ok r ->
      Printf.printf "session %d (%s, mode %s): %s\n" r.Ddp_daemon.Client.session name mode
        (if r.Ddp_daemon.Client.complete then "complete" else "PARTIAL");
      Printf.printf "dependences: %d distinct, %d occurrences folded\n"
        r.Ddp_daemon.Client.distinct r.Ddp_daemon.Client.occurrences;
      Printf.printf "events: %d received, %d processed\n" r.Ddp_daemon.Client.events_received
        r.Ddp_daemon.Client.events_processed;
      if not r.Ddp_daemon.Client.complete then begin
        List.iter (fun reason -> Printf.printf "  reason: %s\n" reason) r.Ddp_daemon.Client.reasons;
        let l = r.Ddp_daemon.Client.loss in
        Printf.printf "  loss: %d chunks dropped (%d events), %d unprocessed\n"
          l.Ddp_core.Health.dropped_chunks l.Ddp_core.Health.dropped_events
          l.Ddp_core.Health.unprocessed_chunks
      end;
      let diff_failed =
        diff_batch
        &&
        let batch =
          Ddp_core.Profiler.run ~mode (Ddp_core.Source.of_events ~symtab events)
        in
        let batch_keys = Ddp_core.Dep_store.key_set batch.Ddp_core.Profiler.deps in
        let daemon_keys = Ddp_daemon.Client.dep_key_set r in
        if Ddp_core.Dep_store.Key_set.equal batch_keys daemon_keys then begin
          Printf.printf "diff-batch: %d dependence keys identical to the batch run\n"
            (Ddp_core.Dep_store.Key_set.cardinal batch_keys);
          false
        end
        else begin
          Printf.eprintf "diff-batch: daemon %d keys vs batch %d keys — MISMATCH\n"
            (Ddp_core.Dep_store.Key_set.cardinal daemon_keys)
            (Ddp_core.Dep_store.Key_set.cardinal batch_keys);
          true
        end
      in
      if diff_failed then exit 1;
      if not r.Ddp_daemon.Client.complete then exit 3
  in
  let opt_name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc:"Workload to profile remotely.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Profile through a running ddpd instead of in-process: stream the workload's trace over \
          the daemon socket and print the returned report.  Exit 3 when the daemon salvaged a \
          partial result, 1 on daemon errors or a --diff-batch mismatch.")
    Term.(
      const run $ opt_name_arg $ trace_arg $ scale_arg $ variant_arg $ target_threads_arg
      $ seed_arg $ mode_arg $ daemon_socket_arg $ backpressure_arg $ deadline_arg $ retries_arg
      $ chunk_arg $ label_arg $ crash_arg $ diff_batch_arg)

let daemon_status_cmd =
  let run socket =
    match Ddp_daemon.Client.status ~socket () with
    | Error e ->
      Printf.eprintf "ddprof daemon-status: %s\n" (Ddp_daemon.Client.error_to_string e);
      exit 1
    | Ok json -> print_endline (Ddp_obs.Json.to_string json)
  in
  Cmd.v
    (Cmd.info "daemon-status"
       ~doc:"Print a running ddpd's ddpd-status/1 document (admission state, per-tenant counters).")
    Term.(const run $ daemon_socket_arg)

(* -- races ---------------------------------------------------------------- *)

let races_cmd =
  let run name scale target_threads seed =
    let prog = get_program ~variant:`Par ~target_threads ~scale name in
    let outcome = Ddp_core.Profiler.profile ~mode:"serial" ~mt:true ~sched_seed:seed prog in
    print_string
      (Ddp_analyses.Race_report.render
         ~var_name:(Ddp_minir.Symtab.var_name outcome.symtab)
         outcome.deps)
  in
  Cmd.v
    (Cmd.info "races" ~doc:"Report dependences observed with reversed order (potential races).")
    Term.(const run $ name_arg $ scale_arg $ target_threads_arg $ seed_arg)

let main =
  let doc = "generic data-dependence profiler (IPDPS'15 reproduction)" in
  Cmd.group (Cmd.info "ddprof" ~doc)
    [
      run_cmd;
      stats_cmd;
      check_trace_cmd;
      check_progress_cmd;
      list_cmd;
      list_modes_cmd;
      loops_cmd;
      comm_cmd;
      races_cmd;
      graph_cmd;
      record_cmd;
      replay_cmd;
      foreign_export_cmd;
      foreign_diff_cmd;
      submit_cmd;
      daemon_status_cmd;
      distance_cmd;
      calltree_cmd;
      static_cmd;
    ]

let () = exit (Cmd.eval main)
