(* The integrated analysis framework the paper announces in its
   conclusion: profiled dependences reorganized into derived
   representations — here the dependence graph (with Graphviz export and
   the Sec. VI-B "set-based" section granularity) and the loop table.

     dune exec examples/analysis_framework.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mg" in
  let w = Ddp_workloads.Registry.find name in
  let prog = w.Ddp_workloads.Wl.seq ~scale:1 in
  let summary = Ddp_analyses.Loop_parallelism.analyze ~perfect:true prog in
  let outcome = Ddp_core.Profiler.profile ~mode:"serial" prog in
  Printf.printf "=== %s: derived representations ===\n\n" name;

  (* Loop table with parallelizability verdicts. *)
  let table = Ddp_analyses.Loop_table.of_regions ~summary outcome.regions in
  print_endline "--- loop table ---";
  print_string (Ddp_analyses.Loop_table.render table);
  let hottest = Ddp_analyses.Loop_table.hottest ~n:3 table in
  Printf.printf "hottest 3 loops by iterations: %s\n\n"
    (String.concat ", "
       (List.map
          (fun (e : Ddp_analyses.Loop_table.entry) -> Ddp_minir.Loc.to_string e.header)
          hottest));

  (* Statement-level dependence graph. *)
  let g = Ddp_analyses.Dep_graph.of_store outcome.deps in
  Printf.printf "--- dependence graph ---\nstatement level: %d nodes, %d edges\n"
    (Ddp_analyses.Dep_graph.node_count g)
    (Ddp_analyses.Dep_graph.edge_count g);

  (* Section (loop-region) level: the set-based granularity. *)
  let sg = Ddp_analyses.Dep_graph.collapse_to_regions ~regions:outcome.regions g in
  Printf.printf "section level:   %d nodes, %d edges (set-based granularity, Sec. VI-B)\n"
    (Ddp_analyses.Dep_graph.node_count sg)
    (Ddp_analyses.Dep_graph.edge_count sg);

  (* Export both to Graphviz. *)
  let file = Printf.sprintf "/tmp/%s_deps.dot" name in
  let oc = open_out file in
  output_string oc (Ddp_analyses.Dep_graph.to_dot ~name sg);
  close_out oc;
  Printf.printf "section-level graph written to %s (render with: dot -Tpng %s)\n" file file;

  (* A taste of graph queries. *)
  (match Ddp_analyses.Dep_graph.edges sg with
  | e :: _ ->
    Printf.printf "example edge: %s -> %s (RAW %d, WAR %d, WAW %d, %d occurrences)\n"
      (Ddp_minir.Loc.to_string e.Ddp_analyses.Dep_graph.e_src)
      (Ddp_minir.Loc.to_string e.Ddp_analyses.Dep_graph.e_sink)
      e.Ddp_analyses.Dep_graph.raw e.Ddp_analyses.Dep_graph.war e.Ddp_analyses.Dep_graph.waw
      e.Ddp_analyses.Dep_graph.occurrences
  | [] -> print_endline "no cross-section dependences");

  (* Dynamic execution tree / call tree. *)
  let tree, tsym = Ddp_analyses.Exec_tree.build prog in
  let func_name = Ddp_minir.Symtab.var_name tsym in
  Printf.printf "\n--- dynamic execution tree (%d nodes, %d attributed accesses) ---\n"
    (Ddp_analyses.Exec_tree.size (Ddp_analyses.Exec_tree.root tree))
    (Ddp_analyses.Exec_tree.total_accesses tree);
  print_string (Ddp_analyses.Exec_tree.render ~max_depth:4 ~func_name (Ddp_analyses.Exec_tree.root tree));
  Printf.printf "--- call tree ---\n";
  print_string (Ddp_analyses.Exec_tree.render ~func_name (Ddp_analyses.Exec_tree.call_tree tree));

  (* Loop-carried dependence distances. *)
  print_endline "\n--- loop-carried dependence distances ---";
  print_string (Ddp_analyses.Dep_distance.render (Ddp_analyses.Dep_distance.analyze prog))
