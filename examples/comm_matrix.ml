(* Communication-pattern detection (the paper's Sec. VII-B application,
   Fig. 9): profile the water-spatial analogue with thread ids and derive
   the producer/consumer matrix from cross-thread RAW dependences.

     dune exec examples/comm_matrix.exe [threads] *)

let () =
  let threads = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let prog = Ddp_workloads.Water_spatial.par ~threads ~scale:2 in
  let outcome = Ddp_core.Profiler.profile ~mode:"serial" ~mt:true prog in
  Printf.printf "=== water-spatial with %d threads ===\n" threads;
  Printf.printf "%d accesses, %d distinct dependences\n" outcome.run_stats.accesses
    (Ddp_core.Dep_store.distinct outcome.deps);
  let m = Ddp_analyses.Comm_pattern.of_deps outcome.deps in
  let workers = Ddp_analyses.Comm_pattern.workers_only m in
  print_endline "producer/consumer matrix (cross-thread RAW volume, worker threads only):";
  print_string (Ddp_analyses.Comm_pattern.render workers);
  print_endline
    "expected: a banded pattern — each z-slab owner exchanges halos with its\n\
     neighbours only, plus a faint all-to-all from the lock-protected energy sum.";
  (* Quantify bandedness: fraction of volume on the +/-1 off-diagonals. *)
  let total = Ddp_analyses.Comm_pattern.total_volume workers in
  let banded = ref 0.0 in
  let n = Ddp_util.Matrix.rows workers in
  for r = 0 to n - 1 do
    for c = 0 to n - 1 do
      if abs (r - c) = 1 then banded := !banded +. Ddp_util.Matrix.get workers r c
    done
  done;
  Printf.printf "neighbour-band share of communication volume: %.1f%%\n"
    (if total = 0.0 then 0.0 else 100.0 *. !banded /. total)
