(* Write-your-own-engine demo: a per-line access heatmap in ~15 lines,
   registered next to the built-in profilers and driven through the same
   façade, sources and sinks.

     dune exec examples/custom_engine.exe *)

(* -- the engine (this is the part the README quotes) -------------------- *)

type Ddp_core.Engine.extra += Heat of (Ddp_minir.Loc.t, int) Hashtbl.t

let heatmap =
  (* Subscribe to exactly the event classes the engine consumes — here
     just Memory; every other class costs nothing (the fused record
     carries the shared null closures for them). *)
  Ddp_core.Engine.make ~name:"heatmap" ~description:"per-line access counts (demo)"
    ~exact:false
    ~consumes:[ Ddp_minir.Event.Class.Memory ]
    (fun ?account:_ _config ->
      let heat = Hashtbl.create 64 in
      let bump ~addr:_ ~loc ~var:_ ~thread:_ ~time:_ ~locked:_ =
        Hashtbl.replace heat loc (1 + Option.value ~default:0 (Hashtbl.find_opt heat loc))
      in
      let hooks =
        Ddp_minir.Handler.hooks
          (Ddp_minir.Handler.make
             ~memory:{ Ddp_minir.Event.on_read = bump; on_write = bump }
             ())
      in
      let finish () =
        { Ddp_core.Engine.deps = Ddp_core.Dep_store.create (); regions = Ddp_core.Region.create ();
          health = Ddp_core.Health.Complete; store_bytes = 0; extra = Heat heat }
      in
      { Ddp_core.Engine.hooks; finish })

let () = Ddp_core.Engine.register heatmap

(* -- driving it --------------------------------------------------------- *)

let () =
  let prog = (Ddp_workloads.Registry.find "kmeans").Ddp_workloads.Wl.seq ~scale:1 in

  (* Once registered, the custom engine is a mode like any other: the
     ddprof CLI would accept --mode heatmap the same way. *)
  let outcome = Ddp_core.Profiler.profile ~mode:"heatmap" prog in
  (match outcome.extra with
  | Heat heat ->
    let rows = Hashtbl.fold (fun loc n acc -> (n, loc) :: acc) heat [] in
    Printf.printf "hottest lines of kmeans (%d touched):\n" (List.length rows);
    List.iteri
      (fun i (n, loc) ->
        if i < 5 then Printf.printf "  %-8s %d accesses\n" (Ddp_minir.Loc.to_string loc) n)
      (List.sort (fun a b -> compare b a) rows)
  | _ -> assert false);

  (* Sinks compose: tee one live run into the heatmap engine AND a
     counter; sources interchange: replay the same captured stream. *)
  let capture, captured = Ddp_minir.Event.collector () in
  let counting, count = Ddp_core.Sink.counter () in
  let (_ : Ddp_core.Profiler.outcome) =
    Ddp_core.Profiler.run ~mode:"serial" ~tee:(Ddp_core.Sink.tee capture counting)
      (Ddp_core.Source.live prog)
  in
  Printf.printf "teed sink saw %d events during the serial run\n" (count ());
  let replayed =
    Ddp_core.Profiler.run ~mode:"heatmap" (Ddp_core.Source.of_events (captured ()))
  in
  match replayed.extra with
  | Heat heat -> Printf.printf "replayed heatmap touches %d lines (same stream, second engine)\n"
                   (Hashtbl.length heat)
  | _ -> assert false
