(* Quickstart: write a small program in the MiniIR builder DSL, profile
   it serially, and print the paper-style (Fig. 1) dependence report.

     dune exec examples/quickstart.exe *)

module B = Ddp_minir.Builder

let () =
  (* A little image-smoothing kernel with a deliberate mix of dependence
     kinds: an initialization loop (INIT + no carried deps), an in-place
     smoothing loop (carried RAW: reads a[i-1] written in the previous
     iteration), and a reduction. *)
  let n = 64 in
  let prog =
    B.program ~name:"quickstart"
      [
        B.arr "a" (B.i n);
        B.local "total" (B.f 0.0);
        B.for_ ~parallel:true "i" (B.i 0) (B.i n) (fun iv ->
            [ B.store "a" iv B.(call "float" [ iv ] /: f 8.0) ]);
        B.for_ "j" (B.i 1) (B.i n) (fun jv ->
            [ B.store "a" jv B.(f 0.5 *: (idx "a" (jv -: i 1) +: idx "a" jv)) ]);
        B.for_ ~parallel:true ~reduction:[ "total" ] "k" (B.i 0) (B.i n) (fun k ->
            [ B.assign "total" B.(v "total" +: idx "a" k) ]);
      ]
  in
  let outcome = Ddp_core.Profiler.profile ~mode:"serial" prog in
  print_endline "=== dependence report (paper Fig. 1 format) ===";
  print_string (Ddp_core.Profiler.report outcome);
  let raw, war, waw, init, _ = Ddp_core.Report.kind_counts outcome.deps in
  Printf.printf "\n%d distinct dependences: %d RAW, %d WAR, %d WAW, %d INIT\n"
    (Ddp_core.Dep_store.distinct outcome.deps)
    raw war waw init;
  Printf.printf "(from %d instrumented memory accesses; merging folded %d occurrences)\n"
    outcome.run_stats.accesses
    (Ddp_core.Dep_store.total_occurrences outcome.deps);
  (* The same program under the parallel profiler produces the same
     dependences — the paper's Sec. IV correctness claim. *)
  let par =
    Ddp_core.Profiler.profile ~mode:"parallel"
      ~config:{ Ddp_core.Config.default with workers = 4 }
      prog
  in
  let equal =
    Ddp_core.Dep_store.Key_set.equal
      (Ddp_core.Dep_store.key_set outcome.deps)
      (Ddp_core.Dep_store.key_set par.deps)
  in
  Printf.printf "parallel profiler (4 workers) agrees with serial: %b\n" equal
