(* Unenforced-dependence detection (the paper's Sec. V-B): profile a
   deliberately racy multi-threaded program and show the reversed-order
   flags, then fix the race with a lock and show the flags disappear.

     dune exec examples/race_hunt.exe *)

module B = Ddp_minir.Builder

(* Four threads bump a shared counter [iters] times.  With [locked]
   the update is in a lock region (access+push atomic, Fig. 4 of the
   paper); without, pushes can be delayed past other threads' accesses
   and the worker observes reversed timestamps. *)
let counter_program ~locked ~iters =
  let body t =
    let guard stmts = if locked then (B.lock 1 :: stmts) @ [ B.unlock 1 ] else stmts in
    [
      B.for_ (Printf.sprintf "i%d" t) (B.i 0) (B.i iters) (fun _ ->
          guard [ B.assign "counter" B.(v "counter" +: i 1) ]);
    ]
  in
  B.program
    ~name:(if locked then "counter-locked" else "counter-racy")
    [
      B.local "counter" (B.i 0);
      B.par (List.init 4 body);
      B.local "snapshot" (B.v "counter");
    ]

let run ~locked =
  let prog = counter_program ~locked ~iters:400 in
  let outcome = Ddp_core.Profiler.profile ~mode:"serial" ~mt:true prog in
  let flagged = Ddp_analyses.Race_report.count outcome.deps in
  Printf.printf "%-16s: %d dependences, %d race-flagged\n"
    (if locked then "with lock" else "without lock")
    (Ddp_core.Dep_store.distinct outcome.deps)
    flagged;
  if flagged > 0 then
    print_string
      (Ddp_analyses.Race_report.render
         ~var_name:(Ddp_minir.Symtab.var_name outcome.symtab)
         outcome.deps);
  flagged

let () =
  print_endline "=== potential-data-race detection via reversed dependences ===";
  let racy = run ~locked:false in
  let clean = run ~locked:true in
  Printf.printf "\nracy version flagged: %d, locked version flagged: %d\n" racy clean;
  if racy > 0 && clean = 0 then
    print_endline "the profiler exposed the missing lock, as in the paper's Sec. V-B."
