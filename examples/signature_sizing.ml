(* Signature sizing with the paper's Eq. (2): predict the collision
   probability for a workload, pick a slot count for a target accuracy,
   and verify the prediction against measured FPR.

     dune exec examples/signature_sizing.exe [workload] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "rotate" in
  let w = Ddp_workloads.Registry.find name in
  let prog = w.Ddp_workloads.Wl.seq ~scale:1 in
  (* One uninstrumented run to count addresses (the paper suggests sizing
     from an estimate of the address count). *)
  let stats = Ddp_minir.Interp.run prog in
  Printf.printf "=== %s: %d distinct addresses ===\n" name stats.addresses;
  let perfect = Ddp_core.Profiler.profile ~mode:"perfect" prog in
  List.iter
    (fun slots ->
      let predicted = Ddp_core.Fpr_model.p_fp ~slots ~addresses:stats.addresses in
      let o =
        Ddp_core.Profiler.profile ~mode:"serial"
          ~config:{ Ddp_core.Config.default with slots }
          prog
      in
      let acc = Ddp_core.Accuracy.compare_stores ~profiled:o.deps ~perfect:perfect.deps in
      Printf.printf
        "slots %8d: predicted slot-collision %.2f%%, measured dep FPR %.2f%% FNR %.2f%%\n" slots
        (100.0 *. predicted) (100.0 *. acc.fpr) (100.0 *. acc.fnr))
    [ 1 lsl 12; 1 lsl 14; 1 lsl 16; 1 lsl 18; 1 lsl 20 ];
  let target = 0.01 in
  let needed = Ddp_core.Fpr_model.slots_for ~addresses:stats.addresses ~target in
  Printf.printf "Eq. (2) sizing: %d slots keep slot-collision probability <= %.0f%%\n" needed
    (100.0 *. target)
