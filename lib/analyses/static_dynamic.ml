module Static_dep = Ddp_static.Static_dep

type row = {
  header_line : int;
  annotated : bool;
  static_verdict : Static_dep.verdict;
  dynamic_parallelizable : bool;
  agree : bool;
}

type summary = { rows : row list; agreements : int; conflicts : int; unknowns : int }

let compare ?config ?sched_seed ?input_seed prog =
  let report = Ddp_static.Analyze.analyze prog in
  let dyn = Loop_parallelism.analyze ?config ~perfect:true ?sched_seed ?input_seed prog in
  let dyn_by_line = Hashtbl.create 16 in
  List.iter
    (fun (l : Loop_parallelism.loop_result) ->
      Hashtbl.replace dyn_by_line l.header_line l.parallelizable)
    dyn.Loop_parallelism.loops;
  let rows =
    List.filter_map
      (fun (v : Static_dep.loop_verdict) ->
        match Hashtbl.find_opt dyn_by_line v.Static_dep.v_header with
        | None -> None (* loop never reached dynamically *)
        | Some par ->
            let agree =
              match v.Static_dep.v_verdict with
              | Static_dep.Parallel -> par
              | Static_dep.Serial -> not par
              (* A reduction loop is serial as written and parallel after
                 the transformation: consistent with either dynamic
                 outcome, like Unknown it never conflicts. *)
              | Static_dep.Reduction | Static_dep.Unknown -> true
            in
            Some
              {
                header_line = v.Static_dep.v_header;
                annotated = v.Static_dep.v_annotated;
                static_verdict = v.Static_dep.v_verdict;
                dynamic_parallelizable = par;
                agree;
              })
      report.Static_dep.loops
  in
  let unknowns =
    List.length
      (List.filter (fun r -> r.static_verdict = Static_dep.Unknown) rows)
  in
  let agreements = List.length (List.filter (fun r -> r.agree) rows) in
  { rows; agreements; conflicts = List.length rows - agreements; unknowns }

let pp_summary fmt s =
  Format.fprintf fmt "static-vs-dynamic loop verdicts: %d agree, %d conflict, %d unknown@,"
    s.agreements s.conflicts s.unknowns;
  List.iter
    (fun r ->
      Format.fprintf fmt "  line %d: static %-9s dynamic %-12s annotated %-8s %s@,"
        r.header_line
        (Static_dep.verdict_to_string r.static_verdict)
        (if r.dynamic_parallelizable then "parallel" else "serial")
        (if r.annotated then "parallel" else "serial")
        (if r.agree then "" else "<== CONFLICT"))
    s.rows
