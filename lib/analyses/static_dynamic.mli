(** Static-vs-dynamic loop-verdict agreement: lines up the static
    analyzer's per-loop verdicts with the dynamic profiler's
    {!Loop_parallelism} classification of the same loops. *)

type row = {
  header_line : int;
  annotated : bool;
  static_verdict : Ddp_static.Static_dep.verdict;
  dynamic_parallelizable : bool;
  agree : bool;
      (** static Parallel ⇔ dynamic parallelizable, Serial ⇔ not;
          Reduction and Unknown agree with either (a reduction loop is
          serial as written, parallel once transformed) *)
}

type summary = {
  rows : row list;
  agreements : int;
  conflicts : int;
      (** static Parallel but dynamic found a carried RAW, or static
          Serial but the dynamic run saw none *)
  unknowns : int;
}

val compare :
  ?config:Ddp_core.Config.t ->
  ?sched_seed:int ->
  ?input_seed:int ->
  Ddp_minir.Ast.program ->
  summary
(** Runs {!Ddp_static.Analyze.analyze} and a perfect-oracle dynamic
    profile, then joins loop verdicts by header line. *)

val pp_summary : Format.formatter -> summary -> unit
