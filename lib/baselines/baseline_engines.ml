(* Engine adapters for the Sec. III-B baseline profilers, registered
   under "shadow", "hashtable" and "stride".  Each is the ~30-line
   pattern the Engine abstraction exists for: build the store pair, run
   Algorithm 1 over it via the shared serial hook wiring, report the
   store's own byte accounting.

   Core cannot depend on this library, so registration is explicit:
   call [register] (idempotent) before resolving these mode names. *)

module Core = Ddp_core
module Engine = Ddp_core.Engine

(* Shadow and hash stores satisfy Algo.STORE, so they reuse the exact
   serial wiring — only the store constructors and byte counters
   differ. *)
let of_store (type s a) ~name ~description ~category
    (module A : Core.Algo.S with type store = s and type t = a)
    ~(create_store : ?account:Ddp_util.Mem_account.t * string -> unit -> s)
    ~(store_bytes : s -> int) =
  Engine.make ~name ~description ~exact:true (fun ?account (config : Core.Config.t) ->
      let deps = Core.Dep_store.create ?account () in
      let regions = Core.Region.create () in
      let store_account = Option.map (fun (a, _) -> (a, category)) account in
      let reads = create_store ?account:store_account () in
      let writes = create_store ?account:store_account () in
      let algo =
        A.create ~track_init:config.track_init
          ~war_requires_prior_write:config.war_requires_prior_write
          ~check_timestamps:config.check_timestamps ~reads ~writes ~deps ()
      in
      let hooks =
        Core.Serial_profiler.make_hooks (module A) algo regions
          ~lifetime:config.lifetime_analysis ~section_level:config.section_level
      in
      {
        Engine.hooks;
        finish =
          (fun () ->
            {
              Engine.deps;
              regions;
              health = Engine.health_of_regions regions;
              store_bytes = store_bytes reads + store_bytes writes;
              extra = Engine.No_extra;
            });
      })

let shadow =
  of_store ~name:"shadow"
    ~description:"paged shadow memory: exact per-address store (Sec. III-B baseline)"
    ~category:"shadow"
    (module Shadow_memory.Algo_paged)
    ~create_store:(fun ?account () -> Shadow_memory.Paged.create ?account ())
    ~store_bytes:Shadow_memory.Paged.bytes

let hashtable =
  of_store ~name:"hashtable"
    ~description:"chained hash table: exact but 1.5-3.7x slower than signatures (Sec. III-B)"
    ~category:"hashtable"
    (module Hash_profiler.Algo)
    ~create_store:(fun ?account () -> Hash_profiler.create ?account ())
    ~store_bytes:Hash_profiler.bytes

type Engine.extra += Stride of { records : int }

(* SD3 strides have their own access bookkeeping (no STORE instance), so
   this adapter wires the hooks by hand; region events still feed a
   Region.t so reports and loop tables keep working. *)
let stride =
  Engine.make ~name:"stride"
    ~description:"SD3-style stride compression: range-granularity dependences (related work)"
    ~exact:false
    (fun ?account:_ (_ : Core.Config.t) ->
      let t = Stride_sd3.create () in
      let regions = Core.Region.create () in
      let hooks =
        {
          Ddp_minir.Event.null with
          Ddp_minir.Event.on_read =
            (fun ~addr ~loc ~var ~thread ~time ~locked:_ ->
              Stride_sd3.on_read t ~addr ~payload:(Core.Payload.pack_unsafe ~loc ~var ~thread) ~time);
          on_write =
            (fun ~addr ~loc ~var ~thread ~time ~locked:_ ->
              Stride_sd3.on_write t ~addr ~payload:(Core.Payload.pack_unsafe ~loc ~var ~thread) ~time);
          on_region_enter =
            (fun ~loc ~kind:Ddp_minir.Event.Loop ~thread ~time ->
              Core.Region.on_enter regions ~loc ~thread ~time);
          on_region_iter =
            (fun ~loc ~thread ~time -> Core.Region.on_iter regions ~loc ~thread ~time);
          on_region_exit =
            (fun ~loc ~end_loc ~kind:Ddp_minir.Event.Loop ~iterations ~thread ~time:_ ->
              Core.Region.on_exit regions ~loc ~end_loc ~iterations ~thread);
        }
      in
      {
        Engine.hooks;
        finish =
          (fun () ->
            {
              Engine.deps = Stride_sd3.deps t;
              regions;
              health = Engine.health_of_regions regions;
              store_bytes = Stride_sd3.bytes t;
              extra = Stride { records = Stride_sd3.records t };
            });
      })

let engines = [ shadow; hashtable; stride ]
let register () = List.iter Engine.register engines
let () = register ()
