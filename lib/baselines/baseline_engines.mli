(** Engine adapters for the baseline profilers, registered under
    "shadow", "hashtable" and "stride". *)

type Ddp_core.Engine.extra += Stride of { records : int }

val shadow : Ddp_core.Engine.t
val hashtable : Ddp_core.Engine.t
val stride : Ddp_core.Engine.t

val engines : Ddp_core.Engine.t list

val register : unit -> unit
(** Idempotent.  Call before resolving baseline mode names through the
    registry (also runs on module load, but executables that never
    otherwise touch this library must call it to force linkage). *)
