(* Accuracy of profiled dependences against the perfect-signature baseline
   (paper Sec. VI-A, Table I).

   A false positive is a dependence the signature profiler reports that
   the perfect signature does not (a collision made a stranger's payload
   look like the last access).  A false negative is a true dependence the
   signature profiler misses (the true source was overwritten by a
   collider, so the built dependence carries the wrong source).  Rates
   are relative to the respective set sizes. *)

type t = {
  reported : int;
  ground_truth : int;
  false_positives : int;
  false_negatives : int;
  fpr : float;  (* false_positives / reported *)
  fnr : float;  (* false_negatives / ground_truth *)
}

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let of_key_sets ~reported ~ground_truth =
  let module S = Dep_store.Key_set in
  let fp = S.cardinal (S.diff reported ground_truth) in
  let fn = S.cardinal (S.diff ground_truth reported) in
  {
    reported = S.cardinal reported;
    ground_truth = S.cardinal ground_truth;
    false_positives = fp;
    false_negatives = fn;
    fpr = ratio fp (S.cardinal reported);
    fnr = ratio fn (S.cardinal ground_truth);
  }

let compare_stores ~profiled ~perfect =
  of_key_sets ~reported:(Dep_store.key_set_no_race profiled)
    ~ground_truth:(Dep_store.key_set_no_race perfect)

let pp ppf t =
  Format.fprintf ppf "reported %d, truth %d, FP %d (%.2f%%), FN %d (%.2f%%)" t.reported
    t.ground_truth t.false_positives (100.0 *. t.fpr) t.false_negatives (100.0 *. t.fnr)

(* ------------------------------------------------------------------ *)
(* Static-vs-dynamic comparison space.

   Static results name variables and lines, not addresses and threads,
   so both sides are projected to (kind, src line, sink line, var name)
   edges: INIT entries are dropped (a static pass has no notion of
   first-touch) and race flags are ignored. *)

module Edge = struct
  type t = { kind : Dep.kind; src_line : int; sink_line : int; var : string }

  let compare = compare

  let to_string e =
    Printf.sprintf "%s %s: %d -> %d" (Dep.kind_to_string e.kind) e.var e.src_line
      e.sink_line
end

module Edge_set = Set.Make (Edge)

let project ~var_name store =
  Dep_store.fold store
    (fun (d : Dep.t) _count acc ->
      match d.kind with
      | Dep.INIT -> acc
      | kind ->
          Edge_set.add
            {
              Edge.kind;
              src_line = Ddp_minir.Loc.line (Dep.src_loc d);
              sink_line = Ddp_minir.Loc.line (Dep.sink_loc d);
              var = var_name (Dep.var d);
            }
            acc)
    Edge_set.empty

(* Same projection, restricted to the race-flagged dependences: the
   comparison space for the static race lint's soundness contract. *)
let project_races ~var_name store =
  Dep_store.fold store
    (fun (d : Dep.t) _count acc ->
      match d.kind with
      | Dep.INIT -> acc
      | _ when not d.race -> acc
      | kind ->
          Edge_set.add
            {
              Edge.kind;
              src_line = Ddp_minir.Loc.line (Dep.src_loc d);
              sink_line = Ddp_minir.Loc.line (Dep.sink_loc d);
              var = var_name (Dep.var d);
            }
            acc)
    Edge_set.empty

type confusion_row = {
  c_kind : Dep.kind;
  c_static_may : int;  (* static may-edges of this kind *)
  c_dynamic : int;  (* dynamic edges of this kind *)
  c_both : int;  (* intersection: observed and predicted *)
  c_static_only : int;  (* predicted, never observed (conservatism) *)
  c_dynamic_only : int;  (* observed, not predicted: soundness violations *)
  c_must : int;  (* static must-edges of this kind *)
  c_must_confirmed : int;  (* must-edges the dynamic run observed *)
}

type confusion = {
  rows : confusion_row list;  (* RAW, WAR, WAW *)
  precision : float;  (* both / static_may, over all kinds *)
  coverage : float;  (* both / dynamic, over all kinds *)
  sound : bool;  (* no dynamic edge outside the static may set *)
  must_sound : bool;  (* every must edge observed dynamically *)
}

let confusion ~may ~must ~dynamic =
  let of_kind k s = Edge_set.filter (fun (e : Edge.t) -> e.kind = k) s in
  let row k =
    let sm = of_kind k may and dy = of_kind k dynamic and mu = of_kind k must in
    {
      c_kind = k;
      c_static_may = Edge_set.cardinal sm;
      c_dynamic = Edge_set.cardinal dy;
      c_both = Edge_set.cardinal (Edge_set.inter sm dy);
      c_static_only = Edge_set.cardinal (Edge_set.diff sm dy);
      c_dynamic_only = Edge_set.cardinal (Edge_set.diff dy sm);
      c_must = Edge_set.cardinal mu;
      c_must_confirmed = Edge_set.cardinal (Edge_set.inter mu dy);
    }
  in
  let rows = List.map row [ Dep.RAW; Dep.WAR; Dep.WAW ] in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  {
    rows;
    precision = ratio (sum (fun r -> r.c_both)) (sum (fun r -> r.c_static_may));
    coverage = ratio (sum (fun r -> r.c_both)) (sum (fun r -> r.c_dynamic));
    sound = sum (fun r -> r.c_dynamic_only) = 0;
    must_sound = sum (fun r -> r.c_must) = sum (fun r -> r.c_must_confirmed);
  }

let pp_confusion ppf c =
  Format.fprintf ppf "%-5s %11s %8s %6s %12s %13s %11s@." "kind" "static-may"
    "dynamic" "both" "static-only" "dynamic-only" "must-hit";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-5s %11d %8d %6d %12d %13d %6d/%d@."
        (Dep.kind_to_string r.c_kind) r.c_static_may r.c_dynamic r.c_both
        r.c_static_only r.c_dynamic_only r.c_must_confirmed r.c_must)
    c.rows;
  Format.fprintf ppf
    "precision %.2f%%, coverage %.2f%%, sound=%b, must-confirmed=%b"
    (100.0 *. c.precision) (100.0 *. c.coverage) c.sound c.must_sound
