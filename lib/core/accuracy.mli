(** False-positive / false-negative rates of a profiled dependence set
    against the perfect-signature baseline (Table I). *)

type t = {
  reported : int;
  ground_truth : int;
  false_positives : int;
  false_negatives : int;
  fpr : float;  (** FP / reported *)
  fnr : float;  (** FN / ground truth *)
}

val of_key_sets :
  reported:Dep_store.Key_set.t -> ground_truth:Dep_store.Key_set.t -> t

val compare_stores : profiled:Dep_store.t -> perfect:Dep_store.t -> t
(** Race flags are ignored in the comparison. *)

val pp : Format.formatter -> t -> unit

(** {1 Static-vs-dynamic comparison}

    Static analysis names variables and source lines, not addresses and
    threads, so both sides are projected into [(kind, src line, sink
    line, var name)] edges.  INIT pseudo-dependences are dropped and race
    flags ignored. *)

module Edge : sig
  type t = { kind : Dep.kind; src_line : int; sink_line : int; var : string }

  val compare : t -> t -> int
  val to_string : t -> string
end

module Edge_set : Set.S with type elt = Edge.t

val project : var_name:(int -> string) -> Dep_store.t -> Edge_set.t
(** Project a dynamic dependence store into the edge space; [var_name]
    maps profiler variable ids back to source names (usually
    [Symtab.var_name]). *)

val project_races : var_name:(int -> string) -> Dep_store.t -> Edge_set.t
(** {!project} restricted to race-flagged dependences — the dynamic side
    of the static race lint's soundness contract. *)

type confusion_row = {
  c_kind : Dep.kind;
  c_static_may : int;
  c_dynamic : int;
  c_both : int;
  c_static_only : int;  (** predicted, never observed: conservatism *)
  c_dynamic_only : int;  (** observed, not predicted: soundness violations *)
  c_must : int;
  c_must_confirmed : int;
}

type confusion = {
  rows : confusion_row list;  (** one row each for RAW, WAR, WAW *)
  precision : float;  (** both / static-may, across kinds *)
  coverage : float;  (** both / dynamic, across kinds *)
  sound : bool;  (** no dynamic edge outside the static may set *)
  must_sound : bool;  (** every static must edge observed dynamically *)
}

val confusion :
  may:Edge_set.t -> must:Edge_set.t -> dynamic:Edge_set.t -> confusion
(** Per-kind confusion matrix of a static result against a dynamic
    reference (conventionally the perfect-signature oracle). *)

val pp_confusion : Format.formatter -> confusion -> unit
