(* Algorithm 1 of the paper: signature-based data-dependence detection.

   Two access stores (one for reads, one for writes) record the last
   access that mapped to each slot.  On a write: an empty write slot
   means this is the address's first write (INIT); otherwise a WAW is
   built; a non-empty read slot builds a WAR.  On a read: a non-empty
   write slot builds a RAW.  Read-after-read is deliberately not tracked.

   Deviation from the paper's printed pseudocode: there, WAR is nested
   under the "write slot non-empty" branch, so a read-then-write with no
   earlier write would be missed.  We build WAR from the read slot alone,
   which matches the paper's prose; the literal behaviour is available
   via [war_requires_prior_write] and quantified by the `ablate-war`
   bench.

   The functor abstracts the store so the same kernel runs over the real
   signature (Sig_store), the perfect signature (Perfect_sig) and the
   baseline stores. *)

module type STORE = sig
  type t

  val probe : t -> addr:int -> int
  val probe_time : t -> addr:int -> int
  val set : t -> addr:int -> payload:int -> time:int -> unit
  val remove : t -> addr:int -> unit
end

(* Optional observer invoked for every dependence as it is built, with the
   timestamps of both end points — the hook the loop-parallelism analysis
   (Sec. VII-A) uses to decide whether a dependence is loop-carried. *)
type dep_observer = Dep.kind -> sink:int -> src:int -> src_time:int -> sink_time:int -> unit

(* Output signature of [Make], usable as a first-class module so store-
   agnostic code (e.g. Serial_profiler) can be written once. *)
module type S = sig
  type store
  type t

  val create :
    ?track_init:bool ->
    ?war_requires_prior_write:bool ->
    ?check_timestamps:bool ->
    ?race_of:(src_time:int -> sink_time:int -> bool) ->
    reads:store ->
    writes:store ->
    deps:Dep_store.t ->
    unit ->
    t

  val set_observer : t -> dep_observer -> unit
  val on_write : t -> addr:int -> payload:int -> time:int -> unit
  val on_read : t -> addr:int -> payload:int -> time:int -> unit
  val on_free : t -> addr:int -> unit
end

module Make (S : STORE) = struct
  type store = S.t
  type t = {
    reads : S.t;
    writes : S.t;
    deps : Dep_store.t;
    track_init : bool;
    war_requires_prior_write : bool;
    check_timestamps : bool;
    race_of : (src_time:int -> sink_time:int -> bool) option;
    mutable observer : dep_observer option;
  }

  let create ?(track_init = true) ?(war_requires_prior_write = false)
      ?(check_timestamps = false) ?race_of ~reads ~writes ~deps () =
    {
      reads;
      writes;
      deps;
      track_init;
      war_requires_prior_write;
      check_timestamps;
      race_of;
      observer = None;
    }

  let set_observer t obs = t.observer <- Some obs

  let build t kind ~sink ~src ~src_time ~sink_time =
    (* Default verdict: a source timestamp later than the sink's means
       the push order was observed reversed — flag a potential race
       (Sec. V-B).  [race_of] replaces the heuristic wholesale: the dag
       engine passes strand stamps as times and decides by SP order. *)
    let race =
      match t.race_of with
      | Some f -> f ~src_time ~sink_time
      | None -> t.check_timestamps && src_time > sink_time
    in
    Dep_store.add t.deps ~kind ~sink ~src ~race;
    match t.observer with
    | Some f -> f kind ~sink ~src ~src_time ~sink_time
    | None -> ()

  let on_write t ~addr ~payload ~time =
    let w = S.probe t.writes ~addr in
    if w = 0 then begin
      if t.track_init then Dep_store.add_init t.deps ~sink:payload
    end
    else build t Dep.WAW ~sink:payload ~src:w ~src_time:(S.probe_time t.writes ~addr) ~sink_time:time;
    let r = S.probe t.reads ~addr in
    if r <> 0 && ((not t.war_requires_prior_write) || w <> 0) then
      build t Dep.WAR ~sink:payload ~src:r ~src_time:(S.probe_time t.reads ~addr) ~sink_time:time;
    S.set t.writes ~addr ~payload ~time

  let on_read t ~addr ~payload ~time =
    let w = S.probe t.writes ~addr in
    if w <> 0 then
      build t Dep.RAW ~sink:payload ~src:w ~src_time:(S.probe_time t.writes ~addr) ~sink_time:time;
    S.set t.reads ~addr ~payload ~time

  (* Variable-lifetime analysis: a freed address's history must not leak
     into the next variable that reuses the address. *)
  let on_free t ~addr =
    S.remove t.reads ~addr;
    S.remove t.writes ~addr
end

module Over_signature = Make (Sig_store)
module Over_perfect = Make (Perfect_sig)
