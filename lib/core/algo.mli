(** Algorithm 1 of the paper: the signature-based dependence-detection
    kernel, as a functor over the access store so the same code runs over
    real signatures, the perfect signature and baseline stores. *)

module type STORE = sig
  type t

  val probe : t -> addr:int -> int
  (** Packed payload of the last recorded access; 0 if none. *)

  val probe_time : t -> addr:int -> int
  val set : t -> addr:int -> payload:int -> time:int -> unit
  val remove : t -> addr:int -> unit
end

type dep_observer = Dep.kind -> sink:int -> src:int -> src_time:int -> sink_time:int -> unit

module type S = sig
  type store
  type t

  val create :
    ?track_init:bool ->
    ?war_requires_prior_write:bool ->
    ?check_timestamps:bool ->
    ?race_of:(src_time:int -> sink_time:int -> bool) ->
    reads:store ->
    writes:store ->
    deps:Dep_store.t ->
    unit ->
    t
  (** [war_requires_prior_write] restores the paper's literal pseudocode
      (WAR only after an earlier write); [check_timestamps] enables the
      reversed-order race flag of Sec. V-B.  [race_of] replaces the race
      verdict wholesale, receiving both endpoints' stored times — the dag
      engine threads SP-DAG strand stamps through the time field and
      decides by logical parallelism instead of observed order. *)

  val set_observer : t -> dep_observer -> unit
  val on_write : t -> addr:int -> payload:int -> time:int -> unit
  val on_read : t -> addr:int -> payload:int -> time:int -> unit
  val on_free : t -> addr:int -> unit
end

module Make (S : STORE) : S with type store = S.t

module Over_signature : S with type store = Sig_store.t
module Over_perfect : S with type store = Perfect_sig.t
