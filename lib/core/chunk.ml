(* Chunks of memory accesses (paper Sec. IV): the unit of transfer from
   the producer (the instrumented program) to the worker threads.

   Struct-of-arrays layout with pre-sized int lanes: filling a chunk
   allocates nothing, and chunks are recycled through a return queue, so
   steady-state profiling is allocation-free on the producer side. *)

(* Operation tags packed into the low bits of the meta lane. *)
let op_read = 0
let op_write = 1
let op_free = 2

type t = {
  addrs : int array;
  meta : int array;  (* payload lsl 2 | op *)
  times : int array;
  capacity : int;
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Chunk.create: capacity must be positive";
  {
    addrs = Array.make capacity 0;
    meta = Array.make capacity 0;
    times = Array.make capacity 0;
    capacity;
    len = 0;
  }

let is_full t = t.len >= t.capacity
let length t = t.len
let clear t = t.len <- 0

(* Drop events past [len] (fault injection: simulated chunk corruption). *)
let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Chunk.truncate: bad length";
  t.len <- len

let push t ~addr ~op ~payload ~time =
  let i = t.len in
  t.addrs.(i) <- addr;
  t.meta.(i) <- (payload lsl 2) lor op;
  t.times.(i) <- time;
  t.len <- i + 1

let addr t i = t.addrs.(i)
let op t i = t.meta.(i) land 3
let payload t i = t.meta.(i) lsr 2
let time t i = t.times.(i)

let bytes t = (3 * t.capacity * 8) + 40
