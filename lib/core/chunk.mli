(** Chunks of memory accesses: the producer-to-worker transfer unit of the
    paper's parallel design.  Struct-of-arrays, recycled, allocation-free
    to fill. *)

type t

val op_read : int
val op_write : int
val op_free : int

val create : capacity:int -> t
val is_full : t -> bool
val length : t -> int
val clear : t -> unit

val truncate : t -> int -> unit
(** Drop events past the given length (fault injection only). *)

val push : t -> addr:int -> op:int -> payload:int -> time:int -> unit
(** Precondition: [not (is_full t)]. *)

val addr : t -> int -> int
val op : t -> int -> int
val payload : t -> int -> int
val time : t -> int -> int

val bytes : t -> int
