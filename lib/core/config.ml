(* Profiler configuration.  Defaults mirror the paper's choices scaled to
   the reproduction's workload sizes (the paper checks redistribution
   every 50,000 chunks on billion-access runs; our runs are ~1e6-1e8
   accesses, so intervals scale down accordingly). *)

(* What the producer does when a worker queue stays full after the
   normal stall path.  [Block] is the paper's behavior (spin until space
   frees up); the lossy policies trade dependence recall for bounded
   producer latency, with every dropped chunk accounted in the run's
   {!Health.t}. *)
type backpressure =
  | Block  (* spin-wait until the queue drains (lossless, default) *)
  | Drop_new  (* discard the chunk being pushed *)
  | Drop_oldest  (* steal + discard the consumer's oldest queued chunk;
                    requires lock-based queues (lock_free = false) *)
  | Sample of float  (* drop the new chunk with probability p at each
                        queue-full event (deterministic seeded RNG) *)

type t = {
  slots : int;  (* total signature slots per direction (read/write) *)
  track_init : bool;
  war_requires_prior_write : bool;  (* literal Algorithm 1 pseudocode *)
  lifetime_analysis : bool;  (* remove freed addresses from signatures *)
  check_timestamps : bool;  (* Sec. V-B reversed-order race flagging *)
  workers : int;  (* profiling threads (the paper's 8/16) *)
  chunk_size : int;  (* accesses per chunk *)
  queue_capacity : int;  (* chunks per worker queue (power of two) *)
  lock_free : bool;  (* SPSC queues vs the lock-based variant of Fig. 5 *)
  redistribution_interval : int;  (* chunks between load-balance checks; 0 = off *)
  hot_set_size : int;  (* top-N hot addresses kept balanced (paper: 10) *)
  stats_sample : int;  (* sample 1 in N accesses for the statistics map *)
  reorder_window : int;  (* MT push layer: max delay of an unlocked push *)
  section_level : bool;
  (* Sec. VI-B "set-based profiling": record accesses at the granularity
     of the innermost enclosing loop region instead of the statement.
     Fewer distinct payloads -> fewer distinct dependences and less
     merging work, at the price of statement precision.  Serial profiler
     only. *)
  seed : int;
  backpressure : backpressure;
  (* Queue-full policy; [Block] — the default — keeps today's lossless
     spin-wait and makes the lossy machinery cost one match per storm. *)
  deadline : float option;
  (* Wall-clock run budget in seconds.  When it expires the supervisor
     aborts the run: workers stop, [finish] salvages whatever was
     processed and the result is marked partial.  [None] = no watchdog. *)
  faults : Fault.t option;
  (* Fault-injection plan for the parallel pipeline (testkit only).
     [None] — the default — compiles the checks down to one [match] per
     chunk operation; the per-access hot path never consults it. *)
  obs : Ddp_obs.Obs.t option;
  (* Telemetry hub (metrics + trace rings).  [None] — the default —
     makes every engine fall back to Obs.disabled, whose call sites
     cost one branch each; the per-access hot path has none. *)
  static_prune : int list;
  (* Variable ids (in the run's pre-interned symtab) a static analysis
     proved dependence-free: the hybrid engine drops their accesses
     before detection.  [] — the default — disables pruning. *)
  memprof_rate : float;
  (* Gc.Memprof sampling rate (samples per allocated word) for the
     self-profiling allocation attribution; 0.0 — the default —
     never touches Gc.Memprof.  Requires an alloc-tracking obs hub;
     degrades to a warning on runtimes without statmemprof (5.0-5.2). *)
}

let default =
  {
    slots = 1 lsl 20;
    track_init = true;
    war_requires_prior_write = false;
    lifetime_analysis = true;
    check_timestamps = false;
    workers = 8;
    chunk_size = 1024;
    queue_capacity = 64;
    lock_free = true;
    redistribution_interval = 500;
    hot_set_size = 10;
    stats_sample = 16;
    section_level = false;
    seed = 1;
    reorder_window = 6;
    backpressure = Block;
    deadline = None;
    faults = None;
    obs = None;
    static_prune = [];
    memprof_rate = 0.0;
  }

(* Slot budget per worker: the paper splits the global signature evenly
   (6.25e6 slots per thread x 16 threads = 1e8 total). *)
let slots_per_worker t = max 16 (t.slots / max 1 t.workers)
