(** Profiler configuration (see DESIGN.md for the mapping to the paper's
    parameters). *)

type backpressure =
  | Block  (** lossless spin-wait at queue-full (the default) *)
  | Drop_new  (** discard the chunk being pushed *)
  | Drop_oldest
      (** steal + discard the consumer's oldest queued chunk; requires
          lock-based queues ([lock_free = false]) *)
  | Sample of float
      (** drop the new chunk with probability [p] per queue-full event
          (seeded, deterministic) *)

type t = {
  slots : int;
  track_init : bool;
  war_requires_prior_write : bool;
  lifetime_analysis : bool;
  check_timestamps : bool;
  workers : int;
  chunk_size : int;
  queue_capacity : int;
  lock_free : bool;
  redistribution_interval : int;
  hot_set_size : int;
  stats_sample : int;
  reorder_window : int;
  section_level : bool;
      (** Sec. VI-B set-based profiling: loop-region granularity instead
          of statements (serial profiler only). *)
  seed : int;
  backpressure : backpressure;
      (** Queue-full policy; lossy policies account every drop in the
          run's {!Health.t}. *)
  deadline : float option;
      (** Wall-clock run budget (seconds); expiry aborts the run and
          salvages a partial result.  [None] — the default — no watchdog. *)
  faults : Fault.t option;
      (** Fault-injection plan (testkit only); [None] — the default —
          leaves the pipeline untouched. *)
  obs : Ddp_obs.Obs.t option;
      (** Telemetry hub; [None] — the default — costs one branch per
          telemetry call site (chunk granularity, never per access). *)
  static_prune : int list;
      (** Variable ids (in the run's pre-interned symtab) proved
          dependence-free statically; the hybrid engine skips their
          accesses.  [[]] — the default — disables pruning. *)
  memprof_rate : float;
      (** Gc.Memprof sampling rate (samples per allocated word) for the
          self-profiling allocation attribution; [0.0] — the default —
          never touches Gc.Memprof. *)
}

val default : t
val slots_per_worker : t -> int
