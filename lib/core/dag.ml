(* Series-parallel DAG order maintenance (see dag.mli for the model).

   Representation: the spawn tree, one node per task, each carrying
   - [spawn_step]/[join_step]: the interval of the node in its parent's
     step counter ([join_step = max_int] while the task is running);
   - [step]: the node's own step counter, advanced at every spawn and
     join it performs, so a (node, step) pair — a strand — is a maximal
     sequential run of the task;
   - a one-entry stamp cache: the hot path (every memory access asks for
     the current strand id) allocates one dense id per strand, not per
     access.

   Queries lift both strands to the deepest common ancestor by walking
   parent links (the spawn tree is as deep as the task nesting;
   divide-and-conquer programs keep it logarithmic). *)

type node = {
  parent : node option;
  depth : int;
  spawn_step : int;  (* parent's step when this task was spawned *)
  mutable join_step : int;  (* parent's step after joining it; max_int if open *)
  mutable step : int;
  mutable cache_step : int;  (* step of [cache_sid], -1 when invalid *)
  mutable cache_sid : int;
}

type t = {
  mutable snodes : node array;  (* strand id -> node *)
  mutable ssteps : int array;  (* strand id -> step within that node *)
  mutable nstrands : int;
  threads : (int, node) Hashtbl.t;  (* live thread id -> node *)
  root : node;
}

let mk_node ~parent ~spawn_step =
  let depth = match parent with None -> 0 | Some p -> p.depth + 1 in
  { parent; depth; spawn_step; join_step = max_int; step = 0; cache_step = -1; cache_sid = -1 }

let create () =
  let root = mk_node ~parent:None ~spawn_step:0 in
  let t =
    { snodes = Array.make 64 root; ssteps = Array.make 64 0; nstrands = 0;
      threads = Hashtbl.create 64; root }
  in
  Hashtbl.replace t.threads 0 root;
  t

(* Adopt a thread the stream never introduced (foreign/mt traces): a
   child of the root, spawned "now", never joined — concurrent with
   everything after its first appearance, ordered after everything the
   root did before it. *)
let node_of t thread =
  match Hashtbl.find_opt t.threads thread with
  | Some n -> n
  | None ->
    let n = mk_node ~parent:(Some t.root) ~spawn_step:t.root.step in
    t.root.step <- t.root.step + 1;
    Hashtbl.replace t.threads thread n;
    n

let on_spawn t ~parent ~child =
  let p = node_of t parent in
  let c = mk_node ~parent:(Some p) ~spawn_step:p.step in
  p.step <- p.step + 1;
  (* Rebinding deliberately orphans any previous node with this tid
     (run_par reuses tids across sequential Par blocks); old stamps keep
     pointing at the old node, whose interval is already closed. *)
  Hashtbl.replace t.threads child c

let on_join t ~parent ~child =
  let p = node_of t parent in
  match Hashtbl.find_opt t.threads child with
  | Some c when c.join_step = max_int && c != p ->
    p.step <- p.step + 1;
    c.join_step <- p.step
  | Some _ | None -> ()

let stamp t ~thread =
  let n = node_of t thread in
  if n.cache_step = n.step then n.cache_sid
  else begin
    let sid = t.nstrands in
    if sid = Array.length t.snodes then begin
      let cap = 2 * sid in
      let snodes = Array.make cap t.root and ssteps = Array.make cap 0 in
      Array.blit t.snodes 0 snodes 0 sid;
      Array.blit t.ssteps 0 ssteps 0 sid;
      t.snodes <- snodes;
      t.ssteps <- ssteps
    end;
    t.snodes.(sid) <- n;
    t.ssteps.(sid) <- n.step;
    t.nstrands <- sid + 1;
    n.cache_step <- n.step;
    n.cache_sid <- sid;
    sid
  end

let strands t = t.nstrands

(* Lift the deeper node until both sides sit at the same depth, then
   walk both up in lockstep to the first common node.  Along the way we
   keep, for each side, the interval of its subtree root directly under
   the meeting node — or the strand's own step when the node itself is
   the meeting point. *)
let precedes t a b =
  if a < 0 || a >= t.nstrands || b < 0 || b >= t.nstrands then
    invalid_arg "Dag.precedes: not a stamp";
  let na = t.snodes.(a) and nb = t.snodes.(b) in
  let sa = t.ssteps.(a) and sb = t.ssteps.(b) in
  if na == nb then sa <= sb
  else begin
    (* (node under scrutiny, spawn/join interval of the subtree carrying
       the original strand, seen from that node's parent) *)
    let up (n : node) = (Option.get n.parent, n.spawn_step, n.join_step) in
    let rec lift n s j target_depth =
      if n.depth > target_depth then
        let n', s', j' = up n in
        lift n' s' j' target_depth
      else (n, s, j)
    in
    (* Sentinels: before any lift, the "interval" of side x under its own
       node is the strand step itself on both bounds. *)
    let da = na.depth and db = nb.depth in
    let common = min da db in
    let xa, sa_lo, sa_hi = lift na sa sa common in
    let xb, sb_lo, sb_hi = lift nb sb sb common in
    let rec meet (xa, sa_lo, sa_hi) (xb, sb_lo, sb_hi) =
      if xa == xb then (xa, sa_lo, sa_hi, sb_lo, sb_hi)
      else
        let pa, sa', ja' = up xa and pb, sb', jb' = up xb in
        meet (pa, sa', ja') (pb, sb', jb')
    in
    let _, _a_lo, a_hi, b_lo, _b_hi = meet (xa, sa_lo, sa_hi) (xb, sb_lo, sb_hi) in
    (* At the meeting node: side a occupies [a_lo, a_hi] of its step
       counter (a single step when the strand lives in the node itself,
       the child interval otherwise); likewise b.  a precedes b iff a's
       upper bound closes at or before b's lower bound opens.

       - both strands in the node itself: a_hi = a_lo = step of a.
       - a in the node, b in a child subtree: a ≺ b iff step_a <= spawn_b.
       - a in a child subtree, b in the node: a ≺ b iff join_a <= step_b.
       - disjoint subtrees: a ≺ b iff join_a <= spawn_b.
       All four collapse to the same comparison. *)
    a_hi <= b_lo
  end
