(** Series-parallel DAG order maintenance for fork-join task programs.

    The MT frontend flags a cross-thread dependence as a race when the
    observed timestamps happen to be reversed — the paper's Sec. V
    heuristic, faithfully racy.  This module decides "logically
    parallel" {e exactly} for fork-join programs, in the style of DePa
    (arXiv 2204.14168): each task is a node of the spawn tree carrying
    an interval label [(spawn_step, join_step)] in its parent's step
    counter, and each access belongs to a {e strand} — a (task, step)
    pair delimited by the task's own spawn/join points.

    Ordering rule, for strands [a = (ta, sa)] and [b = (tb, sb)]:
    - same task: [a ≺ b] iff [sa <= sb];
    - [ta] an ancestor of [tb] through child subtree [c]:
      [a ≺ b] iff [sa <= spawn_step c], and [b ≺ a] iff [join_step c <= sa];
    - disjoint subtrees [ca], [cb] under the deepest common ancestor:
      [a ≺ b] iff [join_step ca <= spawn_step cb].

    A query walks to the common ancestor — O(depth of the spawn tree),
    O(1) on the balanced divide-and-conquer shapes the workloads use
    (DePa's bit-packed labels would make it O(1) worst-case; we keep
    the simple representation and document the honest bound). *)

type t

val create : unit -> t
(** A DAG containing only the root task (thread id 0) at step 0. *)

val on_spawn : t -> parent:int -> child:int -> unit
(** [parent] spawned [child]: label the child with the parent's current
    step and advance the parent to a fresh strand.  A thread id already
    known (run_par reuses tids 1..n across sequential Par blocks) is
    rebound to the new node. *)

val on_join : t -> parent:int -> child:int -> unit
(** [parent] joined [child]: advance the parent to a fresh strand and
    close the child's interval there.  Joining an unknown or
    already-joined child is a no-op. *)

val stamp : t -> thread:int -> int
(** Dense id of [thread]'s current strand, for use as a synthetic
    timestamp in a shadow store.  Stamps are allocated lazily (one per
    strand actually observed) and are strictly increasing per task.  A
    thread never introduced by {!on_spawn} is adopted as a child of the
    root, spawned at the root's current step and never joined — the
    sound default for foreign streams with no sync events: concurrent
    with everything that follows. *)

val precedes : t -> int -> int -> bool
(** [precedes t a b]: does strand [a] happen before (or equal) strand
    [b] in the series-parallel order?  [a] and [b] must be stamps
    returned by {!stamp}.  Two strands with [not (precedes a b) &&
    not (precedes b a)] are logically parallel. *)

val strands : t -> int
(** Number of strand ids allocated so far (stamps are [0..strands-1]). *)
