(* Address-to-worker distribution with hot-address load balancing
   (paper Sec. IV-A).

   Baseline rule: worker = address mod W (the paper's Eq. 1).  On top of
   that, a sampled access-statistics map tracks how often each address is
   touched; at regular intervals the dispatcher checks whether the
   [hot_set_size] most-accessed addresses are spread evenly over workers
   and, if not, produces an explicit redistribution: hot addresses are
   reassigned round-robin and recorded in an override map that takes
   priority over the modulo rule.  The caller (Parallel_profiler) is
   responsible for migrating signature state of moved addresses. *)

type t = {
  workers : int;
  overrides : (int, int) Hashtbl.t;  (* addr -> worker, beats the modulo rule *)
  stats : (int, int ref) Hashtbl.t;  (* sampled access counts *)
  sample : int;  (* note 1 in [sample] accesses *)
  hot_set_size : int;
  mutable clock : int;  (* accesses seen, for sampling *)
  mutable redistributions : int;
  mutable moved : int;  (* total addresses migrated across all rebalances *)
}

let create ~workers ~sample ~hot_set_size =
  if workers <= 0 then invalid_arg "Dispatch.create: workers must be positive";
  {
    workers;
    overrides = Hashtbl.create 64;
    stats = Hashtbl.create 4096;
    sample = max 1 sample;
    hot_set_size;
    clock = 0;
    redistributions = 0;
    moved = 0;
  }

let worker_of t addr =
  match Hashtbl.find_opt t.overrides addr with
  | Some w -> w
  | None -> addr mod t.workers

(* Sampled statistics update: the paper updates on every access; sampling
   by a fixed stride keeps the producer overhead bounded while preserving
   the ranking of heavily accessed addresses. *)
let note_access t addr =
  t.clock <- t.clock + 1;
  if t.clock mod t.sample = 0 then
    match Hashtbl.find_opt t.stats addr with
    | Some r -> incr r
    | None -> Hashtbl.add t.stats addr (ref 1)

let hot_addresses t =
  let all = Hashtbl.fold (fun addr r acc -> (addr, !r) :: acc) t.stats [] in
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare b a) all in
  List.filteri (fun i _ -> i < t.hot_set_size) sorted |> List.map fst

(* Check balance of the hot set; if any worker owns more than its fair
   share, reassign hot addresses round-robin (most-accessed first).
   Returns the moves (addr, old_worker, new_worker) so the caller can
   migrate signature state.  An empty list means the distribution was
   already acceptable. *)
let rebalance t =
  let hot = hot_addresses t in
  let n = List.length hot in
  if n = 0 then []
  else begin
    let per_worker = Array.make t.workers 0 in
    List.iter (fun addr -> per_worker.(worker_of t addr) <- per_worker.(worker_of t addr) + 1) hot;
    let fair = (n + t.workers - 1) / t.workers in
    let unbalanced = Array.exists (fun c -> c > fair) per_worker in
    if not unbalanced then []
    else begin
      t.redistributions <- t.redistributions + 1;
      let moves = ref [] in
      List.iteri
        (fun i addr ->
          let target = i mod t.workers in
          let current = worker_of t addr in
          if current <> target then begin
            Hashtbl.replace t.overrides addr target;
            moves := (addr, current, target) :: !moves
          end)
        hot;
      let moves = List.rev !moves in
      t.moved <- t.moved + List.length moves;
      moves
    end
  end

(* Forced redistribution (fault injection): rotate the hot set across
   workers unconditionally, even when the distribution is balanced.  The
   rotation offset advances with the redistribution count so repeated
   forcing keeps producing fresh migrations. *)
let force_rebalance t =
  match hot_addresses t with
  | [] -> []
  | hot ->
    t.redistributions <- t.redistributions + 1;
    let moves = ref [] in
    List.iteri
      (fun i addr ->
        let target = (i + t.redistributions) mod t.workers in
        let current = worker_of t addr in
        if current <> target then begin
          Hashtbl.replace t.overrides addr target;
          moves := (addr, current, target) :: !moves
        end)
      hot;
    let moves = List.rev !moves in
    t.moved <- t.moved + List.length moves;
    moves

let redistributions t = t.redistributions
let moved_addresses t = t.moved
let override_count t = Hashtbl.length t.overrides
let stats_entries t = Hashtbl.length t.stats

(* stats map + overrides, ~6 words per entry *)
let bytes t = 6 * 8 * (Hashtbl.length t.stats + Hashtbl.length t.overrides)
