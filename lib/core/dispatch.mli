(** Address-to-worker distribution: the modulo rule of the paper's Eq. (1)
    plus sampled access statistics and hot-address redistribution
    (Sec. IV-A). *)

type t

val create : workers:int -> sample:int -> hot_set_size:int -> t

val worker_of : t -> int -> int
(** Owning worker of an address (override map, falling back to modulo). *)

val note_access : t -> int -> unit
(** Record one access into the sampled statistics. *)

val hot_addresses : t -> int list
(** The current top-N most-accessed addresses, hottest first. *)

val rebalance : t -> (int * int * int) list
(** Check the hot-set balance; returns [(addr, old, new)] moves performed
    (empty when already balanced).  Caller must migrate signature state. *)

val force_rebalance : t -> (int * int * int) list
(** Unconditionally rotate the hot set across workers (fault injection);
    same contract as {!rebalance}.  Empty only when no statistics have
    been sampled yet or a move-free rotation comes up. *)

val redistributions : t -> int

val moved_addresses : t -> int
(** Total addresses migrated across all rebalances (telemetry). *)

val override_count : t -> int
val stats_entries : t -> int
val bytes : t -> int
