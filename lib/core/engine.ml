(* The Engine abstraction: one uniform interface over every profiling
   backend in the repo — serial signature, perfect-signature oracle,
   parallel pipeline, MT-wrapped variants, and the Sec. III-B baseline
   stores (shadow memory, chained hash table, SD3 strides).

   An engine is a value: [create] opens a [session] whose [hooks] consume
   an instrumentation stream (from any {!Source}) and whose [finish]
   returns a uniform [outcome].  Engine-specific statistics travel in the
   extensible [extra] variant, so adding a backend never changes the
   outcome type: a new engine is a ~50-line adapter plus one [register]
   call.

   The registry maps mode names ("serial", "shadow", ...) to engines;
   the {!Profiler} façade, the ddprof CLI and the comparative benches all
   key off it instead of hard-coding per-backend wiring. *)

module Event = Ddp_minir.Event

type extra = ..
type extra += No_extra

(* The MT push layer wraps any engine, so its stats nest around the
   wrapped engine's own. *)
type extra += Mt of { delayed : int; peak_bytes : int; inner : extra }

type outcome = {
  deps : Dep_store.t;
  regions : Region.t;
  health : Health.t;  (* Complete, or Partial with exact loss accounting *)
  store_bytes : int;  (* access-store footprint at end of run *)
  extra : extra;
}

(* Health for engines with no pipeline of their own (serial, baselines):
   the only degradation they can see is a corrupt region stream. *)
let health_of_regions regions =
  match Region.corruption regions with
  | None -> Health.Complete
  | Some msg -> Health.degraded ~reasons:[ Health.Stream_corrupt msg ] Health.no_loss

type session = {
  hooks : Event.hooks;
  finish : unit -> outcome;
}

type t = {
  name : string;
  description : string;
  exact : bool;  (* no false positives/negatives: oracle-comparable *)
  consumes : Event.Class.t list;  (* event classes this engine subscribes to *)
  create : ?account:Ddp_util.Mem_account.t * string -> Config.t -> session;
}

(* Default subscription: the classes the standard serial wiring consumes
   (Serial_profiler.consumed_classes).  Engines with a narrower or wider
   vocabulary declare it explicitly. *)
let make ~name ~description ?(exact = false)
    ?(consumes = Serial_profiler.consumed_classes) create =
  { name; description; exact; consumes; create }

(* Normalize a class set to Class.all order, without duplicates. *)
let normalize_classes classes =
  List.filter (fun c -> List.memq c classes) Event.Class.all

let with_mt ?name ?description engine =
  {
    name = Option.value name ~default:(engine.name ^ "+mt");
    description =
      Option.value description
        ~default:(engine.description ^ "; MT push layer (reorder window + race flags, Sec. V)");
    exact = false;  (* cross-thread reordering can change observed orders *)
    (* the push layer flushes on thread-end, so Frame joins the set *)
    consumes = normalize_classes (Event.Class.Frame :: engine.consumes);
    create =
      (fun ?account config ->
        let config = { config with check_timestamps = true } in
        let inner = engine.create ?account config in
        let front =
          Mt_frontend.create ~window:config.reorder_window ~seed:config.seed inner.hooks
        in
        {
          hooks = Mt_frontend.hooks front;
          finish =
            (fun () ->
              Mt_frontend.finish front;
              let o = inner.finish () in
              {
                o with
                extra =
                  Mt
                    {
                      delayed = Mt_frontend.delayed front;
                      peak_bytes = Mt_frontend.peak_bytes front;
                      inner = o.extra;
                    };
              });
        });
  }

(* Telemetry wrapper: inject the hub into the engine's config (so the
   parallel pipeline and the serial stores pick it up), tee an
   access-counting sink in front of the hooks, and wrap the whole
   session in a Run span.  Identity on a disabled hub: a run without
   telemetry pays nothing at this layer. *)
let with_obs obs engine =
  let module Obs = Ddp_obs.Obs in
  if not (Obs.enabled obs) then engine
  else
    {
      engine with
      create =
        (fun ?account config ->
          let config = { config with Config.obs = Some obs } in
          (* The Run frame opens *before* the inner create so engine
             construction — signature store arrays, queue rings, worker
             domain spawns — is attributed to the run, not lost: the
             per-stage allocation table's coverage check depends on the
             producer's whole session sitting under this frame. *)
          Obs.bind_domain obs ~dom:0;
          Obs.enter obs ~dom:0 Obs.Tag.Run;
          let inner = engine.create ?account config in
          {
            hooks = Sink.tee (Sink.obs_events obs) inner.hooks;
            finish =
              (fun () ->
                let o = inner.finish () in
                let d = Obs.leave obs ~dom:0 ~arg:0 in
                Obs.add obs ~dom:0 Obs.C.run_ns d;
                Obs.add obs ~dom:0 Obs.C.store_bytes o.store_bytes;
                o);
          });
    }

(* -- registry ------------------------------------------------------------- *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let register e =
  if not (Hashtbl.mem registry e.name) then order := !order @ [ e.name ];
  Hashtbl.replace registry e.name e

let find name = Hashtbl.find_opt registry name
let all () = List.filter_map (fun n -> Hashtbl.find_opt registry n) !order
let names () = List.map (fun e -> e.name) (all ())

let get name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Engine.get: unknown mode %S (registered: %s)" name
         (String.concat ", " (names ())))
