(** The Engine abstraction: one uniform interface over every profiling
    backend (serial, perfect, parallel, MT-wrapped, and the Sec. III-B
    baseline stores), plus the mode-name registry that the {!Profiler}
    façade, the CLI and the comparative benches key off.

    A new backend is a small adapter: build a [t] whose [create] opens a
    [session], then {!register} it under a mode name. *)

type extra = ..
(** Engine-specific end-of-run statistics.  Each adapter may declare its
    own constructor (e.g. the parallel engine carries its
    {!Parallel_profiler.result}); consumers pattern-match what they know
    and ignore the rest. *)

type extra += No_extra

type extra += Mt of { delayed : int; peak_bytes : int; inner : extra }
(** Added by {!with_mt} around the wrapped engine's own [extra]. *)

type outcome = {
  deps : Dep_store.t;
  regions : Region.t;
  health : Health.t;
      (** [Complete], or [Partial] with abort reasons and exact loss
          accounting; {!finish} never raises on degradation *)
  store_bytes : int;  (** access-store footprint at end of run *)
  extra : extra;
}

val health_of_regions : Region.t -> Health.t
(** Health for engines with no pipeline of their own: [Complete] unless
    the region stream was corrupt. *)

type session = {
  hooks : Ddp_minir.Event.hooks;  (** feed any {!Source} into these *)
  finish : unit -> outcome;  (** call once, after the stream ends *)
}

type t = {
  name : string;
  description : string;
  exact : bool;  (** no false positives/negatives: oracle-comparable *)
  consumes : Ddp_minir.Event.Class.t list;
      (** event classes this engine subscribes to; informational (shown
          by [ddprof list-modes]) — unsubscribed classes are dropped by
          the fused null closures either way *)
  create : ?account:Ddp_util.Mem_account.t * string -> Config.t -> session;
}

val make :
  name:string ->
  description:string ->
  ?exact:bool ->
  ?consumes:Ddp_minir.Event.Class.t list ->
  (?account:Ddp_util.Mem_account.t * string -> Config.t -> session) ->
  t
(** [consumes] defaults to {!Serial_profiler.consumed_classes}
    ([Memory]+[Region]+[Alloc]), the standard serial wiring. *)

val with_mt : ?name:string -> ?description:string -> t -> t
(** Wrap an engine with the Sec. V multi-threaded-target machinery: the
    reorder-window push emulation in front of its hooks, and
    [check_timestamps] forced on in its config. *)

val with_obs : Ddp_obs.Obs.t -> t -> t
(** Wrap an engine with the telemetry hub: injects it into the config
    (picked up by the parallel pipeline and the serial stores), counts
    accesses into the hub, and wraps the session in a [Run] span.
    Identity when the hub is disabled. *)

(** {2 Registry} *)

val register : t -> unit
(** Idempotent; re-registering a name replaces the engine. *)

val find : string -> t option
val get : string -> t  (** @raise Invalid_argument on unknown names. *)

val all : unit -> t list
(** In registration order. *)

val names : unit -> string list
