(* Built-in engine adapters: the four core modes, registered under the
   names the CLI and DESIGN.md advertise.  The Sec. III-B baseline
   engines (shadow, hashtable, stride) live in Ddp_baselines.
   Baseline_engines, since core cannot depend on baselines. *)

(* Serial profilers (signature and perfect) share the Serial_profiler
   record shape, so one adapter covers both. *)
let of_serial ~name ~description ~exact make_profiler =
  Engine.make ~name ~description ~exact (fun ?account config ->
      let p : Serial_profiler.t = make_profiler ?account config in
      {
        Engine.hooks = p.Serial_profiler.hooks;
        finish =
          (fun () ->
            (match config.Config.obs with
            | Some obs -> p.Serial_profiler.fold_obs obs
            | None -> ());
            {
              Engine.deps = p.Serial_profiler.deps;
              regions = p.Serial_profiler.regions;
              health = Engine.health_of_regions p.Serial_profiler.regions;
              store_bytes = p.Serial_profiler.store_bytes ();
              extra = Engine.No_extra;
            });
      })

let serial =
  of_serial ~name:"serial" ~exact:false
    ~description:"signature store, inline Algorithm 1 (paper Sec. III)"
    Serial_profiler.create_signature

let perfect =
  of_serial ~name:"perfect" ~exact:true
    ~description:"perfect signature: the accuracy oracle (Sec. VI-A)"
    Serial_profiler.create_perfect

type Engine.extra += Parallel_result of Parallel_profiler.result

let parallel =
  Engine.make ~name:"parallel"
    ~description:"producer/worker pipeline over domains (Sec. IV)" ~exact:false
    (fun ?account config ->
      let t = Parallel_profiler.create ?account config in
      Parallel_profiler.start t;
      {
        Engine.hooks = Parallel_profiler.hooks t;
        finish =
          (fun () ->
            let r = Parallel_profiler.finish t in
            {
              Engine.deps = r.Parallel_profiler.deps;
              regions = r.Parallel_profiler.regions;
              health = r.Parallel_profiler.health;
              store_bytes = r.Parallel_profiler.signature_bytes;
              extra = Parallel_result r;
            });
      })

let mt =
  Engine.with_mt ~name:"mt"
    ~description:
      "serial signature engine behind the MT push layer (reorder window + race flags, Sec. V)"
    serial

type Engine.extra += Hybrid of { pruned_events : int; pruned_sites : int }

(* The hybrid static/dynamic filter, shared by "hybrid" and "hybrid-dag":
   an inner session behind a Memory-class gate that drops accesses to
   variables a static pass proved dependence-free ([Config.static_prune],
   ids in the run's pre-interned symtab).  The ids arrive through the
   config so the engines still fit the registry's [Config.t -> session]
   shape; with the default empty list the wrapper is one closure
   indirection.  [wrap] turns the inner outcome plus pruning counters
   into the engine's own [extra]. *)
module Event = Ddp_minir.Event
module Obs = Ddp_obs.Obs

let prune_session config (inner : Engine.session) ~wrap =
  match config.Config.static_prune with
  | [] ->
      {
        inner with
        Engine.finish =
          (fun () ->
            let o = inner.Engine.finish () in
            { o with Engine.extra = wrap ~events:0 ~sites:0 o.Engine.extra });
      }
  | ids ->
      let max_id = List.fold_left max 0 ids in
      let mask = Bytes.make (max_id + 1) '\000' in
      List.iter (fun i -> if i >= 0 then Bytes.set mask i '\001') ids;
      let pruned v = v >= 0 && v <= max_id && Bytes.unsafe_get mask v = '\001' in
      let events = ref 0 in
      let sites = Hashtbl.create 32 in
      let h = inner.Engine.hooks in
      let skip ~loc ~var ~write =
        incr events;
        Hashtbl.replace sites (loc, var, write) ()
      in
      (* Override only the Memory class; every other class keeps the
         inner engine's own closures (physically, via the fuse). *)
      let hooks =
        Ddp_minir.Handler.hooks
          (Ddp_minir.Handler.make
             ~memory:
               {
                 Event.on_read =
                   (fun ~addr ~loc ~var ~thread ~time ~locked ->
                     if pruned var then skip ~loc ~var ~write:false
                     else h.Event.on_read ~addr ~loc ~var ~thread ~time ~locked);
                 on_write =
                   (fun ~addr ~loc ~var ~thread ~time ~locked ->
                     if pruned var then skip ~loc ~var ~write:true
                     else h.Event.on_write ~addr ~loc ~var ~thread ~time ~locked);
               }
             ~region:(Event.region_of h) ~frame:(Event.frame_of h)
             ~alloc:(Event.alloc_of h) ~sync:(Event.sync_of h) ())
      in
      {
        Engine.hooks;
        finish =
          (fun () ->
            let o = inner.Engine.finish () in
            (match config.Config.obs with
            | Some obs when Obs.enabled obs ->
                Obs.add obs ~dom:0 Obs.C.static_pruned_events !events;
                Obs.add obs ~dom:0 Obs.C.static_pruned_deps (Hashtbl.length sites)
            | _ -> ());
            {
              o with
              Engine.extra = wrap ~events:!events ~sites:(Hashtbl.length sites) o.Engine.extra;
            });
      }

let hybrid =
  Engine.make ~name:"hybrid"
    ~description:
      "serial signature engine skipping statically-proved independent accesses (Config.static_prune)"
    ~exact:false
    (fun ?account config ->
      prune_session config
        (serial.Engine.create ?account config)
        ~wrap:(fun ~events ~sites _inner ->
          Hybrid { pruned_events = events; pruned_sites = sites }))

(* The SP-DAG engine: fork-join race detection done right.  The perfect
   store and Algorithm 1, with two substitutions: each access's
   timestamp becomes its task's current SP-DAG strand stamp (shifted
   left one bit to carry the lock flag), and the race verdict [race_of]
   asks the DAG whether the two strands are logically parallel instead
   of comparing observed push times (the Sec. V-B heuristic, which only
   sees the one interleaving that happened to run).  A dependence
   between mutually-unordered strands is a race unless both accesses
   held a lock; everything else is ordered by the series-parallel
   structure under *every* schedule. *)
type Engine.extra += Dag of { strands : int; spawns : int; joins : int }

let dag =
  Engine.make ~name:"dag"
    ~description:
      "perfect store + SP-DAG order maintenance: schedule-independent race verdicts for fork-join programs"
    ~exact:true
    ~consumes:Event.Class.[ Memory; Region; Frame; Alloc; Sync ]
    (fun ?account config ->
      let deps = Dep_store.create ?account () in
      let regions = Region.create () in
      let store_account = Option.map (fun (a, _) -> (a, "dag-store")) account in
      let reads = Perfect_sig.create ?account:store_account () in
      let writes = Perfect_sig.create ?account:store_account () in
      let sp = Dag.create () in
      let spawns = ref 0 and joins = ref 0 in
      (* Stored times are [stamp*2 + locked]; both orders are probed so a
         reordered stream (e.g. behind the MT push layer) cannot turn an
         ordered pair into a race. *)
      let race_of ~src_time ~sink_time =
        let both_locked = src_time land 1 = 1 && sink_time land 1 = 1 in
        let src = src_time lsr 1 and sink = sink_time lsr 1 in
        (not both_locked)
        && (not (Dag.precedes sp src sink))
        && not (Dag.precedes sp sink src)
      in
      let algo =
        Algo.Over_perfect.create ~track_init:config.Config.track_init
          ~war_requires_prior_write:config.Config.war_requires_prior_write ~race_of ~reads
          ~writes ~deps ()
      in
      let time_of ~thread ~locked = (Dag.stamp sp ~thread * 2) + Bool.to_int locked in
      let memory : Event.memory_handler =
        {
          Event.on_read =
            (fun ~addr ~loc ~var ~thread ~time:_ ~locked ->
              Algo.Over_perfect.on_read algo ~addr
                ~payload:(Payload.pack_unsafe ~loc ~var ~thread)
                ~time:(time_of ~thread ~locked));
          on_write =
            (fun ~addr ~loc ~var ~thread ~time:_ ~locked ->
              Algo.Over_perfect.on_write algo ~addr
                ~payload:(Payload.pack_unsafe ~loc ~var ~thread)
                ~time:(time_of ~thread ~locked));
        }
      in
      let sync : Event.sync_handler =
        {
          Event.on_sync =
            (fun ~kind ~obj ~thread ~time:_ ->
              match kind with
              | Event.Task_spawn ->
                incr spawns;
                Dag.on_spawn sp ~parent:thread ~child:obj
              | Event.Task_join ->
                incr joins;
                Dag.on_join sp ~parent:thread ~child:obj
              | Event.Lock_acquire | Event.Lock_release ->
                (* mutual exclusion travels on each access's locked bit *)
                ());
        }
      in
      let alloc : Event.alloc_handler =
        {
          Event.on_alloc = (fun ~base:_ ~len:_ ~var:_ -> ());
          on_free =
            (fun ~base ~len ~var:_ ->
              if config.Config.lifetime_analysis then
                for a = base to base + len - 1 do
                  Algo.Over_perfect.on_free algo ~addr:a
                done);
        }
      in
      let hooks =
        Ddp_minir.Handler.hooks
          (Ddp_minir.Handler.make ~memory
             ~region:(Serial_profiler.region_handler regions)
             ~frame:Event.null_frame ~alloc ~sync ())
      in
      {
        Engine.hooks;
        finish =
          (fun () ->
            {
              Engine.deps;
              regions;
              health = Engine.health_of_regions regions;
              store_bytes = Perfect_sig.bytes reads + Perfect_sig.bytes writes;
              extra = Dag { strands = Dag.strands sp; spawns = !spawns; joins = !joins };
            });
      })

type Engine.extra += Hybrid_dag of { pruned_events : int; pruned_sites : int; inner : Engine.extra }

(* The dag engine behind the same static prune gate: the race lint's
   prune plan marks variables with no static dependence edge at all
   (hence no race flag either), and by the race-soundness contract the
   dag engine cannot derive a non-INIT dependence — let alone a race —
   from their accesses on any schedule, so skipping them leaves the
   dependence and race sets bit-identical while the perfect store holds
   fewer addresses. *)
let hybrid_dag =
  Engine.make ~name:"hybrid-dag"
    ~description:
      "SP-DAG race engine skipping statically race- and dependence-free accesses (Config.static_prune)"
    ~exact:true
    ~consumes:Event.Class.[ Memory; Region; Frame; Alloc; Sync ]
    (fun ?account config ->
      prune_session config
        (dag.Engine.create ?account config)
        ~wrap:(fun ~events ~sites inner ->
          Hybrid_dag { pruned_events = events; pruned_sites = sites; inner }))

let builtin = [ serial; perfect; parallel; mt; hybrid; dag; hybrid_dag ]
let () = List.iter Engine.register builtin
