(* Built-in engine adapters: the four core modes, registered under the
   names the CLI and DESIGN.md advertise.  The Sec. III-B baseline
   engines (shadow, hashtable, stride) live in Ddp_baselines.
   Baseline_engines, since core cannot depend on baselines. *)

(* Serial profilers (signature and perfect) share the Serial_profiler
   record shape, so one adapter covers both. *)
let of_serial ~name ~description ~exact make_profiler =
  Engine.make ~name ~description ~exact (fun ?account config ->
      let p : Serial_profiler.t = make_profiler ?account config in
      {
        Engine.hooks = p.Serial_profiler.hooks;
        finish =
          (fun () ->
            (match config.Config.obs with
            | Some obs -> p.Serial_profiler.fold_obs obs
            | None -> ());
            {
              Engine.deps = p.Serial_profiler.deps;
              regions = p.Serial_profiler.regions;
              health = Engine.health_of_regions p.Serial_profiler.regions;
              store_bytes = p.Serial_profiler.store_bytes ();
              extra = Engine.No_extra;
            });
      })

let serial =
  of_serial ~name:"serial" ~exact:false
    ~description:"signature store, inline Algorithm 1 (paper Sec. III)"
    Serial_profiler.create_signature

let perfect =
  of_serial ~name:"perfect" ~exact:true
    ~description:"perfect signature: the accuracy oracle (Sec. VI-A)"
    Serial_profiler.create_perfect

type Engine.extra += Parallel_result of Parallel_profiler.result

let parallel =
  Engine.make ~name:"parallel"
    ~description:"producer/worker pipeline over domains (Sec. IV)" ~exact:false
    (fun ?account config ->
      let t = Parallel_profiler.create ?account config in
      Parallel_profiler.start t;
      {
        Engine.hooks = Parallel_profiler.hooks t;
        finish =
          (fun () ->
            let r = Parallel_profiler.finish t in
            {
              Engine.deps = r.Parallel_profiler.deps;
              regions = r.Parallel_profiler.regions;
              health = r.Parallel_profiler.health;
              store_bytes = r.Parallel_profiler.signature_bytes;
              extra = Parallel_result r;
            });
      })

let mt =
  Engine.with_mt ~name:"mt"
    ~description:
      "serial signature engine behind the MT push layer (reorder window + race flags, Sec. V)"
    serial

type Engine.extra += Hybrid of { pruned_events : int; pruned_sites : int }

(* The hybrid static/dynamic engine: the serial signature engine behind a
   filter that drops accesses to variables a static pass proved
   dependence-free ([Config.static_prune], ids in the run's pre-interned
   symtab).  The ids arrive through the config so the engine still fits
   the registry's [Config.t -> session] shape; with the default empty
   list it is the serial engine plus one closure indirection. *)
module Event = Ddp_minir.Event
module Obs = Ddp_obs.Obs

let hybrid =
  Engine.make ~name:"hybrid"
    ~description:
      "serial signature engine skipping statically-proved independent accesses (Config.static_prune)"
    ~exact:false
    (fun ?account config ->
      let inner = serial.Engine.create ?account config in
      match config.Config.static_prune with
      | [] ->
          {
            inner with
            Engine.finish =
              (fun () ->
                let o = inner.Engine.finish () in
                { o with Engine.extra = Hybrid { pruned_events = 0; pruned_sites = 0 } });
          }
      | ids ->
          let max_id = List.fold_left max 0 ids in
          let mask = Bytes.make (max_id + 1) '\000' in
          List.iter (fun i -> if i >= 0 then Bytes.set mask i '\001') ids;
          let pruned v = v >= 0 && v <= max_id && Bytes.unsafe_get mask v = '\001' in
          let events = ref 0 in
          let sites = Hashtbl.create 32 in
          let h = inner.Engine.hooks in
          let skip ~loc ~var ~write =
            incr events;
            Hashtbl.replace sites (loc, var, write) ()
          in
          (* Override only the Memory class; every other class keeps the
             inner engine's own closures (physically, via the fuse). *)
          let hooks =
            Ddp_minir.Handler.hooks
              (Ddp_minir.Handler.make
                 ~memory:
                   {
                     Event.on_read =
                       (fun ~addr ~loc ~var ~thread ~time ~locked ->
                         if pruned var then skip ~loc ~var ~write:false
                         else h.Event.on_read ~addr ~loc ~var ~thread ~time ~locked);
                     on_write =
                       (fun ~addr ~loc ~var ~thread ~time ~locked ->
                         if pruned var then skip ~loc ~var ~write:true
                         else h.Event.on_write ~addr ~loc ~var ~thread ~time ~locked);
                   }
                 ~region:(Event.region_of h) ~frame:(Event.frame_of h)
                 ~alloc:(Event.alloc_of h) ~sync:(Event.sync_of h) ())
          in
          {
            Engine.hooks;
            finish =
              (fun () ->
                let o = inner.Engine.finish () in
                (match config.Config.obs with
                | Some obs when Obs.enabled obs ->
                    Obs.add obs ~dom:0 Obs.C.static_pruned_events !events;
                    Obs.add obs ~dom:0 Obs.C.static_pruned_deps (Hashtbl.length sites)
                | _ -> ());
                {
                  o with
                  Engine.extra =
                    Hybrid { pruned_events = !events; pruned_sites = Hashtbl.length sites };
                });
          })

let builtin = [ serial; perfect; parallel; mt; hybrid ]
let () = List.iter Engine.register builtin
