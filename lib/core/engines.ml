(* Built-in engine adapters: the four core modes, registered under the
   names the CLI and DESIGN.md advertise.  The Sec. III-B baseline
   engines (shadow, hashtable, stride) live in Ddp_baselines.
   Baseline_engines, since core cannot depend on baselines. *)

(* Serial profilers (signature and perfect) share the Serial_profiler
   record shape, so one adapter covers both. *)
let of_serial ~name ~description ~exact make_profiler =
  Engine.make ~name ~description ~exact (fun ?account config ->
      let p : Serial_profiler.t = make_profiler ?account config in
      {
        Engine.hooks = p.Serial_profiler.hooks;
        finish =
          (fun () ->
            (match config.Config.obs with
            | Some obs -> p.Serial_profiler.fold_obs obs
            | None -> ());
            {
              Engine.deps = p.Serial_profiler.deps;
              regions = p.Serial_profiler.regions;
              health = Engine.health_of_regions p.Serial_profiler.regions;
              store_bytes = p.Serial_profiler.store_bytes ();
              extra = Engine.No_extra;
            });
      })

let serial =
  of_serial ~name:"serial" ~exact:false
    ~description:"signature store, inline Algorithm 1 (paper Sec. III)"
    Serial_profiler.create_signature

let perfect =
  of_serial ~name:"perfect" ~exact:true
    ~description:"perfect signature: the accuracy oracle (Sec. VI-A)"
    Serial_profiler.create_perfect

type Engine.extra += Parallel_result of Parallel_profiler.result

let parallel =
  Engine.make ~name:"parallel"
    ~description:"producer/worker pipeline over domains (Sec. IV)" ~exact:false
    (fun ?account config ->
      let t = Parallel_profiler.create ?account config in
      Parallel_profiler.start t;
      {
        Engine.hooks = Parallel_profiler.hooks t;
        finish =
          (fun () ->
            let r = Parallel_profiler.finish t in
            {
              Engine.deps = r.Parallel_profiler.deps;
              regions = r.Parallel_profiler.regions;
              health = r.Parallel_profiler.health;
              store_bytes = r.Parallel_profiler.signature_bytes;
              extra = Parallel_result r;
            });
      })

let mt =
  Engine.with_mt ~name:"mt"
    ~description:
      "serial signature engine behind the MT push layer (reorder window + race flags, Sec. V)"
    serial

let builtin = [ serial; perfect; parallel; mt ]
let () = List.iter Engine.register builtin
