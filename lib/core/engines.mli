(** Built-in engines, registered under "serial", "perfect", "parallel"
    and "mt".  Referencing this module (e.g. [Engines.builtin]) forces
    registration; the {!Profiler} façade does so for you. *)

type Engine.extra += Parallel_result of Parallel_profiler.result
(** Full pipeline statistics of the "parallel" engine. *)

val serial : Engine.t
val perfect : Engine.t
val parallel : Engine.t
val mt : Engine.t

val builtin : Engine.t list
