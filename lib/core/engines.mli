(** Built-in engines, registered under "serial", "perfect", "parallel",
    "mt" and "hybrid".  Referencing this module (e.g. [Engines.builtin])
    forces registration; the {!Profiler} façade does so for you. *)

type Engine.extra += Parallel_result of Parallel_profiler.result
(** Full pipeline statistics of the "parallel" engine. *)

type Engine.extra += Hybrid of { pruned_events : int; pruned_sites : int }
(** Pruning volume of the "hybrid" engine: accesses dropped on static
    independence proof, and the distinct (location, var, is-write) sites
    they came from.  Mirrored into the Obs counters
    [static_pruned_events] / [static_pruned_deps] when a hub is wired. *)

type Engine.extra += Dag of { strands : int; spawns : int; joins : int }
(** Shape statistics of the "dag" engine's series-parallel DAG: strand
    ids allocated, and Task_spawn/Task_join events consumed. *)

type Engine.extra += Hybrid_dag of { pruned_events : int; pruned_sites : int; inner : Engine.extra }
(** Pruning volume of the "hybrid-dag" engine, wrapped around the inner
    dag session's own {!Dag} statistics.  Also mirrored into the Obs
    counters [static_pruned_events] / [static_pruned_deps]. *)

val serial : Engine.t
val perfect : Engine.t
val parallel : Engine.t
val mt : Engine.t

val hybrid : Engine.t
(** The serial signature engine behind an access filter driven by
    [Config.static_prune] (variable ids in the run's pre-interned symtab,
    as produced by the static analyzer's pruning plan).  With the default
    empty list it behaves exactly like "serial". *)

val dag : Engine.t
(** Exact dependences (perfect store) with race verdicts decided by
    series-parallel order maintenance over the stream's Task_spawn /
    Task_join events (see {!Dag}): a cross-strand dependence is flagged
    iff the strands are logically parallel and not both lock-protected —
    independent of the schedule that happened to run. *)

val hybrid_dag : Engine.t
(** The dag engine behind the same [Config.static_prune] access filter
    as "hybrid".  Pruned variables carry no static dependence edge (so
    no race flag either); by the race-soundness contract their accesses
    cannot contribute a non-INIT dependence or race on any schedule, so
    the pruned run's dependence and race sets match the unpruned dag
    engine's exactly (INIT pseudo-deps of pruned variables excepted). *)

val builtin : Engine.t list
