(* Fault injection for the parallel pipeline (testkit infrastructure).

   A fault plan is a small mutable budget record threaded through
   {!Config}: [Config.faults = None] in production, so the pipeline pays
   exactly one [match] per *chunk*-granularity operation (flush, worker
   pop, redistribution check) and nothing on the per-access hot path.
   When a plan is present, the profiler consumes budgets at well-defined
   points:

   - [queue_full]: the next pushes behave as if the bounded queue were
     full [burst] extra times before the real attempt — a back-pressure
     storm that drives the producer through its stall path;
   - [redistributions]: the next redistribution checks fire regardless
     of the interval and force the dispatcher to move the hot set even
     when it is balanced, exercising the drain barrier + migration;
   - [truncations]: the next flushed chunks silently lose their last
     event — a deliberate corruption that a differential harness must
     detect (used to guard the guard);
   - [stalls]: workers in [stall_mask] refuse scheduling opportunities
     under the virtual scheduler while budget remains.

   - [crashes]: workers in [crash_mask] raise {!Injected_crash} at the
     top of their next chunk consumption — the supervised pipeline must
     contain the death, unblock the drain barrier and salvage a partial
     result (the crash-containment tests and mutant fire drills).

   Budgets make every fault finite, so injected stalls can never
   livelock a deterministic schedule.  Counters record what was actually
   injected, so tests can assert the fault fired. *)

exception Injected_crash of int  (* worker id *)

type t = {
  mutable queue_full_budget : int;
  mutable queue_full_burst : int;  (* simulated failures per affected push *)
  mutable redistribution_budget : int;
  mutable truncation_budget : int;
  mutable stall_budget : int;
  mutable stall_mask : int;  (* bit w set: worker w may stall *)
  mutable crash_budget : int;
  mutable crash_mask : int;  (* bit w set: worker w may crash *)
  (* observability: what actually fired *)
  mutable queue_full_injected : int;
  mutable redistributions_forced : int;
  mutable truncations_injected : int;
  mutable stalls_injected : int;
  mutable crashes_injected : int;
}

let create ?(queue_full = 0) ?(queue_full_burst = 3) ?(redistributions = 0) ?(truncations = 0)
    ?(stalls = 0) ?(stall_mask = -1) ?(crashes = 0) ?(crash_mask = -1) () =
  {
    queue_full_budget = queue_full;
    queue_full_burst = max 1 queue_full_burst;
    redistribution_budget = redistributions;
    truncation_budget = truncations;
    stall_budget = stalls;
    stall_mask;
    crash_budget = crashes;
    crash_mask;
    queue_full_injected = 0;
    redistributions_forced = 0;
    truncations_injected = 0;
    stalls_injected = 0;
    crashes_injected = 0;
  }

(* Number of simulated queue-full failures to inject before this push
   (0 when the budget is spent). *)
let take_queue_full t =
  if t.queue_full_budget <= 0 then 0
  else begin
    let n = min t.queue_full_burst t.queue_full_budget in
    t.queue_full_budget <- t.queue_full_budget - n;
    t.queue_full_injected <- t.queue_full_injected + n;
    n
  end

let take_forced_redistribution t =
  t.redistribution_budget > 0
  && begin
       t.redistribution_budget <- t.redistribution_budget - 1;
       t.redistributions_forced <- t.redistributions_forced + 1;
       true
     end

let take_truncation t =
  t.truncation_budget > 0
  && begin
       t.truncation_budget <- t.truncation_budget - 1;
       t.truncations_injected <- t.truncations_injected + 1;
       true
     end

let take_stall t ~worker =
  t.stall_budget > 0
  && t.stall_mask land (1 lsl worker) <> 0
  && begin
       t.stall_budget <- t.stall_budget - 1;
       t.stalls_injected <- t.stalls_injected + 1;
       true
     end

(* Consumed from the worker's own domain at the top of chunk
   consumption.  Give each worker its own mask bit when testing with
   several crashing workers — the budget fields are plain mutable (the
   usual testkit single-writer discipline). *)
let take_crash t ~worker =
  t.crash_budget > 0
  && t.crash_mask land (1 lsl worker) <> 0
  && begin
       t.crash_budget <- t.crash_budget - 1;
       t.crashes_injected <- t.crashes_injected + 1;
       true
     end

let exhausted t =
  t.queue_full_budget <= 0 && t.redistribution_budget <= 0 && t.truncation_budget <= 0
  && t.stall_budget <= 0 && t.crash_budget <= 0

let pp ppf t =
  Format.fprintf ppf "queue-full %d, forced-redistributions %d, truncations %d, stalls %d, crashes %d"
    t.queue_full_injected t.redistributions_forced t.truncations_injected t.stalls_injected
    t.crashes_injected

let () =
  Printexc.register_printer (function
    | Injected_crash w -> Some (Printf.sprintf "Fault.Injected_crash(worker %d)" w)
    | _ -> None)
