(** Fault injection plans for the parallel pipeline.

    A plan is a record of finite budgets consumed by the profiler at
    chunk-granularity points (never the per-access hot path); with
    [Config.faults = None] — the default — the pipeline is unchanged.
    Counters record what actually fired so tests can assert injection
    happened.  See the implementation header for the exact semantics of
    each fault class. *)

exception Injected_crash of int
(** Raised inside a worker when its crash budget fires (payload: worker
    id).  The supervised pipeline must contain it and salvage. *)

type t = {
  mutable queue_full_budget : int;
  mutable queue_full_burst : int;
  mutable redistribution_budget : int;
  mutable truncation_budget : int;
  mutable stall_budget : int;
  mutable stall_mask : int;
  mutable crash_budget : int;
  mutable crash_mask : int;
  mutable queue_full_injected : int;
  mutable redistributions_forced : int;
  mutable truncations_injected : int;
  mutable stalls_injected : int;
  mutable crashes_injected : int;
}

val create :
  ?queue_full:int ->
  ?queue_full_burst:int ->
  ?redistributions:int ->
  ?truncations:int ->
  ?stalls:int ->
  ?stall_mask:int ->
  ?crashes:int ->
  ?crash_mask:int ->
  unit ->
  t
(** All budgets default to 0 (no injection); [stall_mask] defaults to
    every worker; [queue_full_burst] (simulated failures per affected
    push) defaults to 3. *)

val take_queue_full : t -> int
(** Simulated queue-full failures to inject before the next push. *)

val take_forced_redistribution : t -> bool
val take_truncation : t -> bool

val take_stall : t -> worker:int -> bool
(** Should [worker] decline this (virtual) scheduling opportunity? *)

val take_crash : t -> worker:int -> bool
(** Should [worker] raise {!Injected_crash} before its next chunk? *)

val exhausted : t -> bool
val pp : Format.formatter -> t -> unit
