(* Run health: the structured answer to "can I trust this dependence
   report?".

   The supervised pipeline (Parallel_profiler) degrades gracefully
   instead of hanging or crashing: a worker that dies mid-run, an
   expired run deadline, or a lossy backpressure policy all leave the
   run *finishable*, but the merged dependence set is then a subset of
   the truth.  This module is the accounting for that degradation — a
   run is either [Complete] (every routed event reached Algorithm 1) or
   [Partial] with an itemized loss summary, so accuracy claims stay
   honest downstream (reports carry a PARTIAL banner, the CLI exits
   non-zero, Obs counters mirror the same numbers).

   The type is deliberately engine-agnostic: serial engines use it too
   (a corrupt region stream makes a serial run partial), so it lives
   below {!Engine} with no dependencies of its own. *)

type worker_fault = {
  worker : int;
  exn_text : string;  (* Printexc.to_string of the captured exception *)
  backtrace : string;  (* may be empty when backtrace recording is off *)
}

type abort_reason =
  | Worker_crash  (* >= 1 worker died; per-worker detail in [faults] *)
  | Deadline of float  (* the configured deadline (seconds) expired *)
  | Stream_corrupt of string  (* unmatched region events; first anomaly *)

type loss = {
  dropped_chunks : int;  (* chunks discarded by backpressure or abort *)
  dropped_events : int;  (* accesses inside those chunks *)
  dead_partitions : int;  (* workers whose dependence maps were lost *)
  unprocessed_chunks : int;  (* queue depth left behind at shutdown *)
}

let no_loss =
  { dropped_chunks = 0; dropped_events = 0; dead_partitions = 0; unprocessed_chunks = 0 }

type degradation = {
  reasons : abort_reason list;  (* in detection order; empty for pure loss *)
  faults : worker_fault list;
  loss : loss;
}

type t =
  | Complete
  | Partial of degradation

(* Raised by callers that want fail-fast semantics ({!of_result}-style
   strict wrappers, the CLI's --strict mode); the supervised pipeline
   itself never throws it — salvage is the default. *)
exception Run_error of degradation

let is_partial = function Complete -> false | Partial _ -> true

let degraded ?(reasons = []) ?(faults = []) loss =
  if reasons = [] && faults = [] && loss = no_loss then Complete
  else Partial { reasons; faults; loss }

(* Combine two health values (e.g. the pipeline's own verdict with the
   region stream's): reasons and faults concatenate, losses add. *)
let merge a b =
  match (a, b) with
  | Complete, h | h, Complete -> h
  | Partial x, Partial y ->
    Partial
      {
        reasons = x.reasons @ y.reasons;
        faults = x.faults @ y.faults;
        loss =
          {
            dropped_chunks = x.loss.dropped_chunks + y.loss.dropped_chunks;
            dropped_events = x.loss.dropped_events + y.loss.dropped_events;
            dead_partitions = x.loss.dead_partitions + y.loss.dead_partitions;
            unprocessed_chunks = x.loss.unprocessed_chunks + y.loss.unprocessed_chunks;
          };
      }

let reason_to_string = function
  | Worker_crash -> "worker crash"
  | Deadline d -> Printf.sprintf "deadline %.3fs exceeded" d
  | Stream_corrupt msg -> Printf.sprintf "region stream corrupt (%s)" msg

let loss_to_string l =
  Printf.sprintf "%d chunks dropped (%d events), %d dead partitions, %d chunks unprocessed"
    l.dropped_chunks l.dropped_events l.dead_partitions l.unprocessed_chunks

let pp ppf = function
  | Complete -> Format.fprintf ppf "complete"
  | Partial d ->
    Format.fprintf ppf "PARTIAL";
    if d.reasons <> [] then
      Format.fprintf ppf " [%s]"
        (String.concat "; " (List.map reason_to_string d.reasons));
    Format.fprintf ppf ": %s" (loss_to_string d.loss);
    List.iter
      (fun f -> Format.fprintf ppf "@.  worker %d crashed: %s" f.worker f.exn_text)
      d.faults

let to_string h = Format.asprintf "%a" pp h

(* Fail-fast adapter: identity on Complete, Run_error on Partial. *)
let strict = function
  | Complete -> ()
  | Partial d -> raise (Run_error d)

let () =
  Printexc.register_printer (function
    | Run_error d -> Some (Printf.sprintf "Health.Run_error (%s)" (to_string (Partial d)))
    | _ -> None)
