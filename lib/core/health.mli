(** Run health: [Complete], or [Partial] with an itemized loss summary
    (dropped chunks, dead worker partitions, unprocessed queue depth)
    and the abort reasons / per-worker faults behind it.  Produced by
    every engine; the supervised parallel pipeline is the main source. *)

type worker_fault = {
  worker : int;
  exn_text : string;  (** [Printexc.to_string] of the captured exception *)
  backtrace : string;  (** empty when backtrace recording is off *)
}

type abort_reason =
  | Worker_crash  (** >= 1 worker died; detail in the [faults] list *)
  | Deadline of float  (** the configured run deadline (seconds) expired *)
  | Stream_corrupt of string  (** unmatched region events; first anomaly *)

type loss = {
  dropped_chunks : int;
  dropped_events : int;
  dead_partitions : int;
  unprocessed_chunks : int;
}

val no_loss : loss

type degradation = {
  reasons : abort_reason list;  (** detection order; empty for pure loss *)
  faults : worker_fault list;
  loss : loss;
}

type t =
  | Complete
  | Partial of degradation

exception Run_error of degradation
(** Raised only by {!strict} (and callers that opt in): the supervised
    pipeline itself always salvages instead of throwing. *)

val is_partial : t -> bool

val degraded : ?reasons:abort_reason list -> ?faults:worker_fault list -> loss -> t
(** [Complete] when everything is empty/zero, [Partial] otherwise. *)

val merge : t -> t -> t
(** Combine two verdicts: reasons/faults concatenate, losses add. *)

val strict : t -> unit
(** Identity on [Complete]; raises {!Run_error} on [Partial]. *)

val reason_to_string : abort_reason -> string
val loss_to_string : loss -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
