(* Mutex-protected bounded queue with the same interface as Spsc_queue.

   This is the "8T_lock-based" configuration of the paper's Fig. 5: the
   paper identifies queue locking/unlocking as the dominant
   synchronization cost and reports a 1.3-1.6x speedup from going
   lock-free.  Keeping both implementations behind one interface lets the
   bench reproduce that comparison directly. *)

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  (* Telemetry op counters, updated under the mutex. *)
  mutable pushes : int;
  mutable push_failures : int;
  mutable pops : int;
  mutable pop_empties : int;
}

let create ~capacity ~dummy:_ =
  if capacity <= 0 then invalid_arg "Locked_queue.create: capacity must be positive";
  {
    q = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    pushes = 0;
    push_failures = 0;
    pops = 0;
    pop_empties = 0;
  }

let capacity t = t.capacity

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.q in
  Mutex.unlock t.mutex;
  n

let is_empty t = length t = 0

let try_push t x =
  Mutex.lock t.mutex;
  let ok = Queue.length t.q < t.capacity in
  if ok then begin
    Queue.push x t.q;
    t.pushes <- t.pushes + 1
  end
  else t.push_failures <- t.push_failures + 1;
  Mutex.unlock t.mutex;
  ok

let push_blocking t x =
  while not (try_push t x) do
    Domain.cpu_relax ()
  done

let try_pop t =
  Mutex.lock t.mutex;
  let r = Queue.take_opt t.q in
  (match r with
  | Some _ -> t.pops <- t.pops + 1
  | None -> t.pop_empties <- t.pop_empties + 1);
  Mutex.unlock t.mutex;
  r

(* Producer-side steal of the consumer's oldest queued element — the
   mutex makes this safe from any domain, which is exactly why the
   Drop_oldest backpressure policy requires the lock-based queue (an
   SPSC ring's head is consumer-owned). *)
let steal = try_pop

let bytes t = (t.capacity + 8) * 8

let op_counts t =
  Mutex.lock t.mutex;
  let r = (t.pushes, t.push_failures, t.pops, t.pop_empties) in
  Mutex.unlock t.mutex;
  r
