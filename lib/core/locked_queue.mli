(** Mutex-protected bounded queue, interface-compatible with
    {!Spsc_queue}: the lock-based baseline of the paper's Fig. 5. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val try_push : 'a t -> 'a -> bool
val push_blocking : 'a t -> 'a -> unit
val try_pop : 'a t -> 'a option

val steal : 'a t -> 'a option
(** Remove the oldest queued element from any domain (the mutex makes
    this producer-safe, unlike an SPSC ring).  Used by the
    [Drop_oldest] backpressure policy. *)

val bytes : 'a t -> int

val op_counts : 'a t -> int * int * int * int
(** [(pushes, push_failures, pops, pop_empties)] — telemetry counters. *)
