(* Push layer for multi-threaded target programs (paper Sec. V).

   In a real multi-threaded execution, a memory access and the push of its
   record into the profiler are atomic only when the access is inside a
   lock region (the instrumentation inserts the push into the same region,
   Fig. 4).  Unlocked accesses can be pushed after other threads have
   accessed the same address, so the worker can observe timestamps out of
   order — which the profiler turns into a potential-data-race flag
   (Sec. V-B).

   Our interpreter is deterministic, so this non-atomicity must be
   *emulated*: each simulated thread gets a FIFO buffer of pending pushes;
   a locked access first flushes its thread's buffer and is then forwarded
   immediately (access+push atomic), while an unlocked access is held back
   by a seeded random delay of up to [window] push-layer steps.  Per
   thread the push order stays program order (as in reality); reordering
   happens only across threads, and only for unlocked accesses — exactly
   the phenomenon the paper describes. *)

module Event = Ddp_minir.Event

type pending = {
  is_write : bool;
  addr : int;
  loc : Ddp_minir.Loc.t;
  var : int;
  thread : int;
  time : int;
  deadline : int;
}

type t = {
  inner : Event.hooks;
  window : int;
  rng : Ddp_util.Rng.t;
  buffers : (int, pending Queue.t) Hashtbl.t;
  mutable active : int list;  (* threads with possibly non-empty buffers *)
  mutable seq : int;  (* push-layer step counter *)
  mutable delayed : int;  (* accesses that were buffered, for diagnostics *)
  mutable pending : int;  (* currently buffered pushes *)
  mutable peak_pending : int;  (* high-water mark of buffered pushes *)
}

let create ?(window = 6) ?(seed = 99) inner =
  {
    inner;
    window;
    rng = Ddp_util.Rng.create seed;
    buffers = Hashtbl.create 16;
    active = [];
    seq = 0;
    delayed = 0;
    pending = 0;
    peak_pending = 0;
  }

let buffer t thread =
  match Hashtbl.find_opt t.buffers thread with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.buffers thread q;
    t.active <- thread :: t.active;
    q

let forward t (p : pending) =
  t.pending <- t.pending - 1;
  if p.is_write then
    t.inner.Event.on_write ~addr:p.addr ~loc:p.loc ~var:p.var ~thread:p.thread ~time:p.time
      ~locked:false
  else
    t.inner.Event.on_read ~addr:p.addr ~loc:p.loc ~var:p.var ~thread:p.thread ~time:p.time
      ~locked:false

(* Flush, per thread in FIFO order, every buffered push whose deadline has
   passed.  Thread visiting order follows the (stable) active list. *)
let flush_expired t =
  List.iter
    (fun thread ->
      let q = Hashtbl.find t.buffers thread in
      let continue_ = ref true in
      while !continue_ do
        match Queue.peek_opt q with
        | Some p when p.deadline <= t.seq -> forward t (Queue.pop q)
        | Some _ | None -> continue_ := false
      done)
    t.active

let flush_thread t thread =
  match Hashtbl.find_opt t.buffers thread with
  | None -> ()
  | Some q ->
    while not (Queue.is_empty q) do
      forward t (Queue.pop q)
    done

let flush_all t = List.iter (flush_thread t) t.active

let on_access t ~is_write ~addr ~loc ~var ~thread ~time ~locked =
  t.seq <- t.seq + 1;
  flush_expired t;
  if locked then begin
    (* Access and push are atomic inside a lock region: preserve order. *)
    flush_thread t thread;
    let p = { is_write; addr; loc; var; thread; time; deadline = 0 } in
    if is_write then
      t.inner.Event.on_write ~addr ~loc ~var ~thread ~time ~locked:true
    else t.inner.Event.on_read ~addr ~loc ~var ~thread ~time ~locked:true;
    ignore p
  end
  else begin
    t.delayed <- t.delayed + 1;
    let delay = 1 + Ddp_util.Rng.int t.rng (max 1 t.window) in
    Queue.push
      { is_write; addr; loc; var; thread; time; deadline = t.seq + delay }
      (buffer t thread);
    t.pending <- t.pending + 1;
    if t.pending > t.peak_pending then t.peak_pending <- t.pending
  end

(* The push layer intercepts the Memory class (buffering), the free half
   of Alloc (a free invalidates signature state, so every pending push
   must land first) and thread-end (retire the thread's buffer); every
   other class is the inner sink's own handler, passed through
   physically by the fuse. *)
let handler t =
  Ddp_minir.Handler.make
    ~memory:
      {
        Event.on_read =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            on_access t ~is_write:false ~addr ~loc ~var ~thread ~time ~locked);
        on_write =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            on_access t ~is_write:true ~addr ~loc ~var ~thread ~time ~locked);
      }
    ~region:(Event.region_of t.inner)
    ~frame:
      {
        Event.on_call = t.inner.Event.on_call;
        on_return = t.inner.Event.on_return;
        on_thread_end =
          (fun ~thread ->
            flush_thread t thread;
            t.inner.Event.on_thread_end ~thread);
      }
    ~alloc:
      {
        Event.on_alloc = t.inner.Event.on_alloc;
        on_free =
          (fun ~base ~len ~var ->
            (* All pending pushes must land before a free, whatever
               their thread. *)
            flush_all t;
            t.inner.Event.on_free ~base ~len ~var);
      }
    ~sync:(Event.sync_of t.inner)
    ()

let hooks t = Ddp_minir.Handler.hooks (handler t)

let finish t = flush_all t
let delayed t = t.delayed

(* Pending-buffer footprint: one boxed record of 8 words per entry plus
   queue cells, at the high-water mark.  Part of the "additional data
   structures to record thread interleaving events" the paper cites for
   the higher MT memory (Fig. 8). *)
let peak_bytes t = t.peak_pending * 10 * 8
