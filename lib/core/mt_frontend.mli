(** Push layer for multi-threaded targets (paper Sec. V): emulates the
    non-atomicity of access+push outside lock regions by delaying unlocked
    pushes per thread (FIFO within a thread, reorderable across threads),
    so the worker-side timestamp check can observe reversed orders and
    flag potential races. *)

type t

val create : ?window:int -> ?seed:int -> Ddp_minir.Event.hooks -> t
(** Wrap profiler hooks.  [window] bounds the random push delay of an
    unlocked access in push-layer steps. *)

val handler : t -> Ddp_minir.Handler.t
(** The push layer as a handler bundle: Memory buffered, free and
    thread-end intercepted for flushing, everything else the inner
    sink's own closures. *)

val hooks : t -> Ddp_minir.Event.hooks
(** The wrapped hooks to attach to the interpreter ([handler] fused). *)

val finish : t -> unit
(** Flush all pending pushes (call after the run). *)

val delayed : t -> int
(** Number of accesses that went through the delay buffer. *)

val peak_bytes : t -> int
(** High-water footprint of the pending buffers (part of the extra MT
    memory of the paper's Fig. 8). *)
