(* The parallel profiler (paper Sec. IV, Fig. 2).

   The main thread executes the instrumented program and fills per-worker
   chunks of memory accesses; addresses are assigned to workers by
   Dispatch (modulo rule + hot-address redistribution) so every address
   is owned by exactly one worker and dependence types stay correct.
   Full chunks travel through per-worker bounded queues — lock-free SPSC
   rings by default, the mutex-based variant for the Fig. 5 comparison —
   and workers run Algorithm 1 on their own signature pair, storing
   dependences in thread-local maps that are merged at the end.  Empty
   chunks return to the producer over per-worker recycle queues, so
   steady-state profiling allocates nothing.

   Redistribution (Sec. IV-A) uses a drain barrier: the producer waits
   until every worker has consumed its queue (pushed == processed), then
   migrates the signature slots of moved addresses and resumes.  The
   paper performs at most ~20 redistributions per run, so the barrier
   cost is negligible.

   On the 1-core evaluation machine workers cannot run truly in parallel;
   idle loops therefore back off to the OS scheduler after a bounded spin
   so the producer is not starved.  Per-worker event counts and busy
   times are recorded for the multicore makespan model described in
   DESIGN.md. *)

module Clock = Ddp_util.Clock
module Event = Ddp_minir.Event

type queue = {
  try_push : Chunk.t -> bool;
  pop : unit -> Chunk.t option;
  q_bytes : int;
}

let dummy_chunk = Chunk.create ~capacity:1

let make_queue ~lock_free ~capacity =
  if lock_free then begin
    let q = Spsc_queue.create ~capacity ~dummy:dummy_chunk in
    {
      try_push = (fun c -> Spsc_queue.try_push q c);
      pop = (fun () -> Spsc_queue.try_pop q);
      q_bytes = Spsc_queue.bytes q;
    }
  end
  else begin
    let q = Locked_queue.create ~capacity ~dummy:dummy_chunk in
    {
      try_push = (fun c -> Locked_queue.try_push q c);
      pop = (fun () -> Locked_queue.try_pop q);
      q_bytes = Locked_queue.bytes q;
    }
  end

(* Bounded spin, then yield the timeslice: mandatory on machines with
   fewer cores than domains. *)
let backoff spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_05

(* Producer-side blocking points, exposed to the virtual scheduler. *)
type stall =
  | Queue_full of int  (* worker id whose queue rejected a push *)
  | Drain_wait of int  (* worker id the drain barrier is waiting on *)

(* Virtual-scheduler callbacks (single-domain deterministic mode).
   [on_chunk w] fires before each chunk push to worker [w] — a plain
   interleaving opportunity; [on_stall] fires when the producer cannot
   make progress and MUST advance the named worker (via {!worker_step})
   or the run livelocks. *)
type vsched = {
  on_chunk : int -> unit;
  on_stall : stall -> unit;
}

type worker = {
  id : int;
  work_q : queue;
  recycle_q : queue;
  reads : Sig_store.t;
  writes : Sig_store.t;
  algo : Algo.Over_signature.t;
  deps : Dep_store.t;
  pushed : int Atomic.t;  (* chunks handed to this worker *)
  processed : int Atomic.t;  (* chunks fully consumed *)
  mutable events : int;
  mutable busy : float;
}

type t = {
  config : Config.t;
  workers : worker array;
  dispatch : Dispatch.t;
  open_chunks : Chunk.t array;
  regions : Region.t;
  global_deps : Dep_store.t;
  stop : bool Atomic.t;
  virtual_mode : bool;  (* no domains; workers advance via worker_step *)
  mutable vsched : vsched option;
  mutable domains : unit Domain.t array;
  mutable chunks_pushed : int;
  mutable last_redistribution_check : int;  (* chunks_pushed at the last check *)
  mutable extra_chunks : int;  (* allocated beyond the initial pool *)
  account : (Ddp_util.Mem_account.t * string) option;
}

type result = {
  deps : Dep_store.t;
  regions : Region.t;
  chunks : int;
  redistributions : int;
  per_worker_events : int array;
  per_worker_busy : float array;
  signature_bytes : int;
  queue_bytes : int;
  chunk_bytes : int;
  dispatch_bytes : int;
}

(* -- worker side --------------------------------------------------------- *)

let process_chunk w chunk =
  let n = Chunk.length chunk in
  for i = 0 to n - 1 do
    let addr = Chunk.addr chunk i in
    let op = Chunk.op chunk i in
    if op = Chunk.op_read then
      Algo.Over_signature.on_read w.algo ~addr ~payload:(Chunk.payload chunk i)
        ~time:(Chunk.time chunk i)
    else if op = Chunk.op_write then
      Algo.Over_signature.on_write w.algo ~addr ~payload:(Chunk.payload chunk i)
        ~time:(Chunk.time chunk i)
    else Algo.Over_signature.on_free w.algo ~addr
  done;
  w.events <- w.events + n

(* Consume one popped chunk: the worker's unit of progress, shared by the
   domain loop and the virtual scheduler's worker_step. *)
let consume w chunk =
  let t0 = Clock.now () in
  process_chunk w chunk;
  w.busy <- w.busy +. (Clock.now () -. t0);
  Chunk.clear chunk;
  Atomic.incr w.processed;
  (* Recycle; if the return queue is full the chunk is dropped and the
     producer will allocate a fresh one. *)
  ignore (w.recycle_q.try_push chunk : bool)

let worker_loop stop w =
  let spins = ref 0 in
  let running = ref true in
  while !running do
    match w.work_q.pop () with
    | Some chunk ->
      spins := 0;
      consume w chunk
    | None ->
      if Atomic.get stop && Atomic.get w.pushed = Atomic.get w.processed then running := false
      else begin
        incr spins;
        backoff !spins
      end
  done

(* -- producer side ------------------------------------------------------- *)

(* Pool allocations (chunks, queues, dispatch maps) get their own
   category regardless of the caller-supplied one. *)
let charge t n =
  match t.account with
  | Some (acct, _) -> Ddp_util.Mem_account.add acct "pools" n
  | None -> ()

let acquire_chunk t w =
  match w.recycle_q.pop () with
  | Some c -> c
  | None ->
    t.extra_chunks <- t.extra_chunks + 1;
    let c = Chunk.create ~capacity:t.config.chunk_size in
    charge t (Chunk.bytes c);
    c

(* Virtual mode: advance worker [w_id] by one chunk.  Returns false when
   its queue is empty.  Only meaningful without domains — with real
   workers running this would violate SPSC single-consumer ownership. *)
let worker_step t w_id =
  let w = t.workers.(w_id) in
  match t.config.faults with
  | Some f when Fault.take_stall f ~worker:w_id ->
    false (* injected stall: the worker declines this opportunity *)
  | _ -> (
    match w.work_q.pop () with
    | Some chunk ->
      consume w chunk;
      true
    | None -> false)

(* One blocked-producer beat: under the virtual scheduler, hand control
   to the schedule chooser (which must advance the named worker); in
   virtual mode without a chooser, advance the blocked-on worker
   directly (a plain sequential schedule); with real domains, back off
   and retry. *)
let stall t reason spins =
  match t.vsched with
  | Some vs -> vs.on_stall reason
  | None ->
    if t.virtual_mode then (
      match reason with
      | Queue_full w | Drain_wait w -> ignore (worker_step t w : bool))
    else begin
      incr spins;
      backoff !spins
    end

let queue_depth t w_id =
  let w = t.workers.(w_id) in
  Atomic.get w.pushed - Atomic.get w.processed

(* Drain barrier: wait until every worker has consumed everything pushed
   to it.  Used by redistribution and at shutdown. *)
let drain t =
  Array.iter
    (fun w ->
      let spins = ref 0 in
      while Atomic.get w.pushed <> Atomic.get w.processed do
        stall t (Drain_wait w.id) spins
      done)
    t.workers

(* Move the signature state of a redistributed address (Sec. IV-A).
   Safe only while drained. *)
let migrate t ~addr ~from_w ~to_w =
  let src = t.workers.(from_w) and dst = t.workers.(to_w) in
  let move src_store dst_store =
    let payload = Sig_store.probe src_store ~addr in
    if payload <> 0 then begin
      Sig_store.set dst_store ~addr ~payload ~time:(Sig_store.probe_time src_store ~addr);
      Sig_store.remove src_store ~addr
    end
  in
  move src.reads dst.reads;
  move src.writes dst.writes

(* Push one worker's open chunk (if non-empty) without triggering a
   redistribution check. *)
let flush_chunk t w_id =
  let chunk = t.open_chunks.(w_id) in
  if Chunk.length chunk > 0 then begin
    let w = t.workers.(w_id) in
    (* Fault injection (chunk granularity, compiled to one match when
       off): simulated corruption and back-pressure storms. *)
    (match t.config.faults with
    | Some f ->
      if Fault.take_truncation f then Chunk.truncate chunk (Chunk.length chunk - 1);
      let storm = Fault.take_queue_full f in
      let spins = ref 0 in
      for _ = 1 to storm do
        stall t (Queue_full w_id) spins
      done
    | None -> ());
    (match t.vsched with Some vs -> vs.on_chunk w_id | None -> ());
    Atomic.incr w.pushed;
    let spins = ref 0 in
    while not (w.work_q.try_push chunk) do
      stall t (Queue_full w_id) spins
    done;
    t.open_chunks.(w_id) <- acquire_chunk t w;
    t.chunks_pushed <- t.chunks_pushed + 1
  end

(* One check per [interval] pushed chunks.  The trigger compares against
   the count at the last check rather than testing [chunks_pushed mod
   interval = 0]: several chunks can flush in one call path (full-chunk
   flush plus the flush-all inside a redistribution barrier), so the
   counter may step over a multiple — or sit exactly on one across
   several calls — making the modulo test skip intervals or fire twice
   at the same count. *)
let maybe_redistribute t =
  let interval = t.config.redistribution_interval in
  let forced =
    match t.config.faults with
    | Some f -> Fault.take_forced_redistribution f
    | None -> false
  in
  if forced || (interval > 0 && t.chunks_pushed - t.last_redistribution_check >= interval)
  then begin
    t.last_redistribution_check <- t.chunks_pushed;
    let moves_needed =
      if forced then Dispatch.force_rebalance t.dispatch else Dispatch.rebalance t.dispatch
    in
    match moves_needed with
    | [] -> ()
    | moves ->
      (* Accesses to a moved address may still sit in open chunks routed
         under the old assignment: flush everything, let the old owners
         consume it, and only then migrate signature state.  Without this
         barrier the old owner would process in-flight accesses against a
         signature whose slots were just migrated away. *)
      Array.iteri (fun w_id _ -> flush_chunk t w_id) t.open_chunks;
      drain t;
      List.iter (fun (addr, from_w, to_w) -> migrate t ~addr ~from_w ~to_w) moves
  end

let flush t w_id =
  flush_chunk t w_id;
  maybe_redistribute t

let route t ~addr ~op ~payload ~time =
  Dispatch.note_access t.dispatch addr;
  let w = Dispatch.worker_of t.dispatch addr in
  let chunk = t.open_chunks.(w) in
  Chunk.push chunk ~addr ~op ~payload ~time;
  if Chunk.is_full chunk then flush t w

(* -- construction -------------------------------------------------------- *)

let create ?account ?(virtual_mode = false) (config : Config.t) =
  let nw = max 1 config.workers in
  let sig_account = Option.map (fun (a, _) -> (a, "signatures")) account in
  let slots = Config.slots_per_worker { config with workers = nw } in
  let workers =
    Array.init nw (fun id ->
        let reads = Sig_store.create ?account:sig_account ~slots () in
        let writes = Sig_store.create ?account:sig_account ~slots () in
        let deps = Dep_store.create ?account:(Option.map (fun (a, _) -> (a, "deps-local")) account) () in
        let algo =
          Algo.Over_signature.create ~track_init:config.track_init
            ~war_requires_prior_write:config.war_requires_prior_write
            ~check_timestamps:config.check_timestamps ~reads ~writes ~deps ()
        in
        {
          id;
          work_q = make_queue ~lock_free:config.lock_free ~capacity:config.queue_capacity;
          recycle_q = make_queue ~lock_free:config.lock_free ~capacity:config.queue_capacity;
          reads;
          writes;
          algo;
          deps;
          pushed = Atomic.make 0;
          processed = Atomic.make 0;
          events = 0;
          busy = 0.0;
        })
  in
  let regions = Region.create () in
  let global_deps =
    Dep_store.create ?account:(Option.map (fun (a, _) -> (a, "deps-global")) account) ()
  in
  {
    config = { config with workers = nw };
    workers;
    dispatch =
      Dispatch.create ~workers:nw ~sample:config.stats_sample ~hot_set_size:config.hot_set_size;
    open_chunks = Array.map (fun _ -> Chunk.create ~capacity:config.chunk_size) workers;
    regions;
    global_deps;
    stop = Atomic.make false;
    virtual_mode;
    vsched = None;
    domains = [||];
    chunks_pushed = 0;
    last_redistribution_check = 0;
    extra_chunks = 0;
    account;
  }

let set_vsched t vs =
  if not t.virtual_mode then
    invalid_arg "Parallel_profiler.set_vsched: profiler was not created with ~virtual_mode";
  t.vsched <- Some vs

let start t =
  (* Charge the fixed pools once: open chunks and queues. *)
  Array.iter (fun c -> charge t (Chunk.bytes c)) t.open_chunks;
  Array.iter (fun w -> charge t (w.work_q.q_bytes + w.recycle_q.q_bytes)) t.workers;
  (* Virtual mode runs everything on the calling domain: workers advance
     only through worker_step, driven by the vsched callbacks. *)
  if not t.virtual_mode then
    t.domains <- Array.map (fun w -> Domain.spawn (fun () -> worker_loop t.stop w)) t.workers

let hooks t =
  let on_read ~addr ~loc ~var ~thread ~time ~locked:_ =
    route t ~addr ~op:Chunk.op_read ~payload:(Payload.pack_unsafe ~loc ~var ~thread) ~time
  in
  let on_write ~addr ~loc ~var ~thread ~time ~locked:_ =
    route t ~addr ~op:Chunk.op_write ~payload:(Payload.pack_unsafe ~loc ~var ~thread) ~time
  in
  let on_free ~base ~len ~var:_ =
    if t.config.lifetime_analysis then
      for a = base to base + len - 1 do
        route t ~addr:a ~op:Chunk.op_free ~payload:1 ~time:0
      done
  in
  {
    Event.on_read;
    on_write;
    on_region_enter =
      (fun ~loc ~kind:Event.Loop ~thread ~time -> Region.on_enter t.regions ~loc ~thread ~time);
    on_region_iter = (fun ~loc ~thread ~time -> Region.on_iter t.regions ~loc ~thread ~time);
    on_region_exit =
      (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time:_ ->
        Region.on_exit t.regions ~loc ~end_loc ~iterations ~thread);
    on_alloc = (fun ~base:_ ~len:_ ~var:_ -> ());
    on_free;
    on_call = (fun ~loc:_ ~func:_ ~thread:_ ~time:_ -> ());
    on_return = (fun ~func:_ ~thread:_ ~time:_ -> ());
    on_thread_end = (fun ~thread:_ -> ());
  }

let finish t =
  Array.iteri (fun w_id _ -> flush t w_id) t.open_chunks;
  drain t;
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  Array.iter (fun (w : worker) -> Dep_store.merge_into ~src:w.deps ~dst:t.global_deps) t.workers;
  charge t (Dispatch.bytes t.dispatch);
  {
    deps = t.global_deps;
    regions = t.regions;
    chunks = t.chunks_pushed;
    redistributions = Dispatch.redistributions t.dispatch;
    per_worker_events = Array.map (fun (w : worker) -> w.events) t.workers;
    per_worker_busy = Array.map (fun (w : worker) -> w.busy) t.workers;
    signature_bytes =
      Array.fold_left (fun acc (w : worker) -> acc + Sig_store.bytes w.reads + Sig_store.bytes w.writes) 0
        t.workers;
    queue_bytes = Array.fold_left (fun acc (w : worker) -> acc + w.work_q.q_bytes + w.recycle_q.q_bytes) 0 t.workers;
    chunk_bytes =
      (Array.length t.open_chunks + t.extra_chunks) * Chunk.bytes t.open_chunks.(0);
    dispatch_bytes = Dispatch.bytes t.dispatch;
  }

(* Profile one program end to end under the parallel profiler. *)
let profile ?account ?(config = Config.default) ?sched_seed ?input_seed ?symtab prog =
  let t = create ?account config in
  start t;
  let stats = Ddp_minir.Interp.run ~hooks:(hooks t) ?sched_seed ?input_seed ?symtab prog in
  let result = finish t in
  (result, stats)
