(* The parallel profiler (paper Sec. IV, Fig. 2).

   The main thread executes the instrumented program and fills per-worker
   chunks of memory accesses; addresses are assigned to workers by
   Dispatch (modulo rule + hot-address redistribution) so every address
   is owned by exactly one worker and dependence types stay correct.
   Full chunks travel through per-worker bounded queues — lock-free SPSC
   rings by default, the mutex-based variant for the Fig. 5 comparison —
   and workers run Algorithm 1 on their own signature pair, storing
   dependences in thread-local maps that are merged at the end.  Empty
   chunks return to the producer over per-worker recycle queues, so
   steady-state profiling allocates nothing.

   Redistribution (Sec. IV-A) uses a drain barrier: the producer waits
   until every worker has consumed its queue (pushed == processed), then
   migrates the signature slots of moved addresses and resumes.  The
   paper performs at most ~20 redistributions per run, so the barrier
   cost is negligible.

   On the 1-core evaluation machine workers cannot run truly in parallel;
   idle loops therefore back off to the OS scheduler after a bounded spin
   so the producer is not starved.  Per-worker event counts and busy
   times are recorded for the multicore makespan model described in
   DESIGN.md.

   Supervision (ISSUE 4): the pipeline degrades gracefully instead of
   hanging.  Every worker runs inside an exception boundary that records
   the exception + backtrace in a per-worker status cell; the producer
   plays supervisor at its chunk-granularity blocking points (flush,
   queue-full retries, drain waits), where it notices dead workers and
   an expired [Config.deadline], releases the drain barrier, and routes
   the run to a salvage path: [finish] always returns, merging the
   surviving workers' dependence maps and reporting the damage as a
   {!Health.t} with exact loss accounting.  Queue-full handling is
   policy-driven ([Config.backpressure]): [Block] is the paper's
   lossless spin-wait; [Drop_new]/[Drop_oldest]/[Sample] trade recall
   for bounded producer latency, with every dropped chunk counted. *)

module Clock = Ddp_util.Clock
module Rng = Ddp_util.Rng
module Event = Ddp_minir.Event
module Obs = Ddp_obs.Obs

type queue = {
  try_push : Chunk.t -> bool;
  pop : unit -> Chunk.t option;
  steal : unit -> Chunk.t option;
      (* producer-side removal of the oldest queued chunk; always [None]
         on SPSC rings (the head is consumer-owned), so the Drop_oldest
         policy is gated to lock-based queues at [create] *)
  q_bytes : int;
  op_counts : unit -> int * int * int * int;  (* pushes, push fails, pops, pop empties *)
}

let dummy_chunk = Chunk.create ~capacity:1

let make_queue ~lock_free ~capacity =
  if lock_free then begin
    let q = Spsc_queue.create ~capacity ~dummy:dummy_chunk in
    {
      try_push = (fun c -> Spsc_queue.try_push q c);
      pop = (fun () -> Spsc_queue.try_pop q);
      steal = (fun () -> None);
      q_bytes = Spsc_queue.bytes q;
      op_counts = (fun () -> Spsc_queue.op_counts q);
    }
  end
  else begin
    let q = Locked_queue.create ~capacity ~dummy:dummy_chunk in
    {
      try_push = (fun c -> Locked_queue.try_push q c);
      pop = (fun () -> Locked_queue.try_pop q);
      steal = (fun () -> Locked_queue.steal q);
      q_bytes = Locked_queue.bytes q;
      op_counts = (fun () -> Locked_queue.op_counts q);
    }
  end

(* Bounded spin, then yield the timeslice: mandatory on machines with
   fewer cores than domains. *)
let backoff spins =
  if spins < 64 then Domain.cpu_relax () else Unix.sleepf 0.000_05

(* Producer-side blocking points, exposed to the virtual scheduler. *)
type stall =
  | Queue_full of int  (* worker id whose queue rejected a push *)
  | Drain_wait of int  (* worker id the drain barrier is waiting on *)

(* Virtual-scheduler callbacks (single-domain deterministic mode).
   [on_chunk w] fires before each chunk push to worker [w] — a plain
   interleaving opportunity; [on_stall] fires when the producer cannot
   make progress and MUST advance the named worker (via {!worker_step})
   or the run livelocks. *)
type vsched = {
  on_chunk : int -> unit;
  on_stall : stall -> unit;
}

(* Per-worker status cell: the exception boundary's single write, the
   supervisor's single read. *)
type worker_status =
  | Alive
  | Crashed of Health.worker_fault

type worker = {
  id : int;
  work_q : queue;
  recycle_q : queue;
  reads : Sig_store.t;
  writes : Sig_store.t;
  algo : Algo.Over_signature.t;
  deps : Dep_store.t;
  pushed : int Atomic.t;  (* chunks handed to this worker *)
  processed : int Atomic.t;  (* chunks fully consumed *)
  status : worker_status Atomic.t;
  faults : Fault.t option;  (* crash injection, read on the worker's own domain *)
  mutable events : int;
  mutable busy : float;
  obs : Obs.t;  (* worker [id] writes telemetry domain [id + 1] *)
}

type t = {
  config : Config.t;
  workers : worker array;
  dispatch : Dispatch.t;
  open_chunks : Chunk.t array;
  regions : Region.t;
  global_deps : Dep_store.t;
  stop : bool Atomic.t;
  kill : bool Atomic.t;
  (* Hard abort (deadline expiry): workers exit at their next pop even
     with chunks still queued.  A worker crash does NOT set this —
     survivors keep processing so the salvage merge is as complete as
     possible. *)
  virtual_mode : bool;  (* no domains; workers advance via worker_step *)
  obs : Obs.t;  (* producer writes telemetry domain 0 *)
  bp_rng : Rng.t;  (* Sample backpressure coin, seeded from Config.seed *)
  mutable deadline_at : float;  (* absolute wall clock; infinity = no watchdog *)
  mutable abort_reasons : Health.abort_reason list;  (* detection order *)
  mutable dropped_chunks : int;
  mutable dropped_events : int;
  mutable vsched : vsched option;
  mutable domains : unit Domain.t array;
  mutable chunks_pushed : int;
  mutable last_redistribution_check : int;  (* chunks_pushed at the last check *)
  mutable extra_chunks : int;  (* allocated beyond the initial pool *)
  account : (Ddp_util.Mem_account.t * string) option;
}

type result = {
  deps : Dep_store.t;
  regions : Region.t;
  health : Health.t;
  chunks : int;
  redistributions : int;
  per_worker_events : int array;
  per_worker_busy : float array;
  signature_bytes : int;
  queue_bytes : int;
  chunk_bytes : int;
  dispatch_bytes : int;
}

(* -- worker side --------------------------------------------------------- *)

let process_chunk w chunk =
  let n = Chunk.length chunk in
  for i = 0 to n - 1 do
    let addr = Chunk.addr chunk i in
    let op = Chunk.op chunk i in
    if op = Chunk.op_read then
      Algo.Over_signature.on_read w.algo ~addr ~payload:(Chunk.payload chunk i)
        ~time:(Chunk.time chunk i)
    else if op = Chunk.op_write then
      Algo.Over_signature.on_write w.algo ~addr ~payload:(Chunk.payload chunk i)
        ~time:(Chunk.time chunk i)
    else Algo.Over_signature.on_free w.algo ~addr
  done;
  w.events <- w.events + n

(* Benchmark-only perturbation hook: busy-spin a fraction of each
   chunk's measured process time after processing it.  Exists so the CI
   perf ratchet can prove it catches regressions — `make
   bench-ratchet-selftest` seeds DDP_PERTURB_WORKER=0.10 and expects the
   worker_step_ns gate to fail.  Read once; 0.0 (unset) costs one float
   compare per chunk. *)
let perturb_worker =
  lazy
    (match Sys.getenv_opt "DDP_PERTURB_WORKER" with
    | Some s -> ( match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> 0.0)
    | None -> 0.0)

(* Consume one popped chunk: the worker's unit of progress, shared by the
   domain loop and the virtual scheduler's worker_step. *)
let consume (w : worker) chunk =
  let on = Obs.enabled w.obs in
  let dom = w.id + 1 in
  if on then Obs.enter w.obs ~dom Obs.Tag.Process;
  let n = Chunk.length chunk in
  let t0 = Clock.now () in
  process_chunk w chunk;
  let t1 = Clock.now () in
  (let f = Lazy.force perturb_worker in
   if f > 0.0 then begin
     let until = t1 +. ((t1 -. t0) *. f) in
     while Clock.now () < until do
       ()
     done
   end);
  w.busy <- w.busy +. (Clock.now () -. t0);
  Chunk.clear chunk;
  Atomic.incr w.processed;
  (* Recycle; if the return queue is full the chunk is dropped and the
     producer will allocate a fresh one. *)
  let recycled = w.recycle_q.try_push chunk in
  if on then begin
    let d = Obs.leave w.obs ~dom ~arg:n in
    Obs.observe w.obs ~dom Obs.H.process_ns d;
    Obs.add w.obs ~dom Obs.C.busy_ns d;
    Obs.add w.obs ~dom Obs.C.events_processed n;
    Obs.incr w.obs ~dom Obs.C.chunks_processed;
    if not recycled then Obs.incr w.obs ~dom Obs.C.recycle_drops
  end

let is_dead w = match Atomic.get w.status with Alive -> false | Crashed _ -> true

(* The worker-side exception boundary: any exception (including an
   injected {!Fault.Injected_crash}) is captured — text + backtrace —
   into the worker's status cell, and the worker retires instead of
   taking the whole process down.  Returns false on death.  A chunk
   popped but not processed stays counted in [pushed - processed], so
   the salvage accounting sees it as unprocessed. *)
let guarded_consume (w : worker) chunk =
  match
    match w.faults with
    | Some f when Fault.take_crash f ~worker:w.id -> raise (Fault.Injected_crash w.id)
    | _ -> consume w chunk
  with
  | () -> true
  | exception e ->
    let bt = Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ()) in
    Atomic.set w.status
      (Crashed { Health.worker = w.id; exn_text = Printexc.to_string e; backtrace = bt });
    if Obs.enabled w.obs then begin
      let dom = w.id + 1 in
      (* The exception may have escaped between consume's enter and
         leave; cancel the orphaned Process frame so the stack stays
         balanced for the Worker root span. *)
      if Obs.current_tag w.obs ~dom = Some Obs.Tag.Process then Obs.cancel w.obs ~dom;
      Obs.incr w.obs ~dom Obs.C.worker_crashes
    end;
    false

let worker_loop stop kill w =
  (* Root frame for the worker domain: everything the domain allocates
     while looping — backoff closures, signature growth, boxing in
     process_chunk not covered by a Process frame — is attributed to
     Worker, so the per-stage table's total tracks the process-global
     allocation.  bind_domain lets Gc.Memprof callbacks on this domain
     find this cell. *)
  let dom = w.id + 1 in
  let on = Obs.enabled w.obs in
  if on then begin
    Obs.bind_domain w.obs ~dom;
    Obs.enter w.obs ~dom Obs.Tag.Worker
  end;
  let spins = ref 0 in
  let running = ref true in
  while !running && not (Atomic.get kill) do
    match w.work_q.pop () with
    | Some chunk ->
      spins := 0;
      if not (guarded_consume w chunk) then running := false
    | None ->
      if Atomic.get stop && Atomic.get w.pushed = Atomic.get w.processed then running := false
      else begin
        incr spins;
        backoff !spins
      end
  done;
  if on then ignore (Obs.leave w.obs ~dom ~arg:w.id : int)

(* -- producer side ------------------------------------------------------- *)

(* Pool allocations (chunks, queues, dispatch maps) get their own
   category regardless of the caller-supplied one. *)
let charge t n =
  match t.account with
  | Some (acct, _) -> Ddp_util.Mem_account.add acct "pools" n
  | None -> ()

let acquire_chunk t w =
  match w.recycle_q.pop () with
  | Some c -> c
  | None ->
    t.extra_chunks <- t.extra_chunks + 1;
    if Obs.enabled t.obs then Obs.incr t.obs ~dom:0 Obs.C.extra_chunks;
    let c = Chunk.create ~capacity:t.config.chunk_size in
    charge t (Chunk.bytes c);
    c

(* -- supervisor ----------------------------------------------------------- *)

(* The supervisor is not a separate thread: the producer runs these
   checks at its chunk-granularity blocking points (flush, queue-full
   retries, drain waits).  Pure atomic reads when healthy; the
   per-access hot path never sees any of it. *)

let abort_code = function
  | Health.Worker_crash -> 0
  | Health.Deadline _ -> 1
  | Health.Stream_corrupt _ -> 2

(* Record an abort reason once per constructor; a deadline abort also
   sets [kill] so workers exit at their next pop. *)
let note_abort t reason =
  let same a b =
    match (a, b) with
    | Health.Worker_crash, Health.Worker_crash -> true
    | Health.Deadline _, Health.Deadline _ -> true
    | Health.Stream_corrupt _, Health.Stream_corrupt _ -> true
    | _ -> false
  in
  if not (List.exists (same reason) t.abort_reasons) then begin
    t.abort_reasons <- t.abort_reasons @ [ reason ];
    (match reason with Health.Deadline _ -> Atomic.set t.kill true | _ -> ());
    if Obs.enabled t.obs then begin
      Obs.incr t.obs ~dom:0 Obs.C.aborts;
      Obs.instant t.obs ~dom:0 Obs.Tag.Abort ~arg:(abort_code reason)
    end
  end

let aborted t = t.abort_reasons <> []

let deadline_passed t = t.deadline_at < infinity && Clock.now () >= t.deadline_at

(* One supervisor beat: notice dead workers and an expired deadline. *)
let supervise t =
  Array.iter (fun w -> if is_dead w then note_abort t Health.Worker_crash) t.workers;
  if deadline_passed t then
    note_abort t (Health.Deadline (match t.config.deadline with Some d -> d | None -> 0.0))

(* Exact drop accounting, mirrored into Obs so the two can be compared
   in tests. *)
let account_drop t ~events =
  t.dropped_chunks <- t.dropped_chunks + 1;
  t.dropped_events <- t.dropped_events + events;
  if Obs.enabled t.obs then begin
    Obs.incr t.obs ~dom:0 Obs.C.bp_dropped_chunks;
    Obs.add t.obs ~dom:0 Obs.C.bp_dropped_events events
  end

(* Virtual mode: advance worker [w_id] by one chunk.  Returns false when
   its queue is empty (or the worker has crashed).  Only meaningful
   without domains — with real workers running this would violate SPSC
   single-consumer ownership. *)
let worker_step t w_id =
  let w = t.workers.(w_id) in
  if is_dead w then false
  else
    match t.config.faults with
    | Some f when Fault.take_stall f ~worker:w_id ->
      false (* injected stall: the worker declines this opportunity *)
    | _ -> (
      match w.work_q.pop () with
      | Some chunk -> guarded_consume w chunk
      | None -> false)

(* One blocked-producer beat: under the virtual scheduler, hand control
   to the schedule chooser (which must advance the named worker); in
   virtual mode without a chooser, advance the blocked-on worker
   directly (a plain sequential schedule); with real domains, back off
   and retry. *)
let stall t reason spins =
  match t.vsched with
  | Some vs -> vs.on_stall reason
  | None ->
    if t.virtual_mode then (
      match reason with
      | Queue_full w | Drain_wait w -> ignore (worker_step t w : bool))
    else begin
      incr spins;
      backoff !spins
    end

let queue_depth t w_id =
  let w = t.workers.(w_id) in
  Atomic.get w.pushed - Atomic.get w.processed

(* Drain barrier: wait until every worker has consumed everything pushed
   to it.  Used by redistribution and at shutdown.  Supervised: a dead
   worker (or an expired deadline) releases the wait on that worker
   instead of spinning forever on a [processed] count that can no longer
   advance.  Returns true iff every worker fully drained. *)
let drain t =
  let on = Obs.enabled t.obs in
  if on then Obs.enter t.obs ~dom:0 Obs.Tag.Drain;
  let waited = ref 0 in
  let complete = ref true in
  Array.iter
    (fun w ->
      if Atomic.get w.pushed <> Atomic.get w.processed then begin
        incr waited;
        if on then Obs.enter t.obs ~dom:0 Obs.Tag.Drain_wait;
        let spins = ref 0 in
        let give_up = ref false in
        while (not !give_up) && Atomic.get w.pushed <> Atomic.get w.processed do
          supervise t;
          if is_dead w || Atomic.get t.kill then begin
            give_up := true;
            complete := false
          end
          else stall t (Drain_wait w.id) spins
        done;
        if on then begin
          let d = Obs.leave t.obs ~dom:0 ~arg:w.id in
          Obs.incr t.obs ~dom:0 Obs.C.drain_stalls;
          Obs.add t.obs ~dom:0 Obs.C.stall_ns d;
          Obs.observe t.obs ~dom:0 Obs.H.stall_ns d
        end
      end)
    t.workers;
  if on then ignore (Obs.leave t.obs ~dom:0 ~arg:!waited : int);
  !complete

(* Move the signature state of a redistributed address (Sec. IV-A).
   Safe only while drained. *)
let migrate t ~addr ~from_w ~to_w =
  let src = t.workers.(from_w) and dst = t.workers.(to_w) in
  let move src_store dst_store =
    let payload = Sig_store.probe src_store ~addr in
    if payload <> 0 then begin
      Sig_store.set dst_store ~addr ~payload ~time:(Sig_store.probe_time src_store ~addr);
      Sig_store.remove src_store ~addr
    end
  in
  move src.reads dst.reads;
  move src.writes dst.writes

(* Drop_oldest victim: remove the consumer's oldest queued chunk to make
   room.  The victim was counted in [pushed] and will never be
   processed, so the count is rolled back to keep the drain barrier
   invariant (pushed = processed once idle). *)
let steal_oldest t (w : worker) =
  match w.work_q.steal () with
  | None -> ()  (* the worker emptied its queue concurrently *)
  | Some victim ->
    Atomic.decr w.pushed;
    account_drop t ~events:(Chunk.length victim);
    Chunk.clear victim;
    ignore (w.recycle_q.try_push victim : bool)

(* Push one worker's open chunk (if non-empty) without triggering a
   redistribution check. *)
let flush_chunk t w_id =
  let chunk = t.open_chunks.(w_id) in
  if Chunk.length chunk > 0 then begin
    let w = t.workers.(w_id) in
    supervise t;
    if is_dead w || Atomic.get t.kill then begin
      (* The destination can no longer absorb work (dead partition, or a
         hard deadline abort): drop with exact accounting rather than
         block on a queue nobody will ever empty. *)
      account_drop t ~events:(Chunk.length chunk);
      Chunk.clear chunk
    end
    else begin
      let on = Obs.enabled t.obs in
      if on then Obs.enter t.obs ~dom:0 Obs.Tag.Flush;
      (* Fault injection (chunk granularity, compiled to one match when
         off): simulated corruption and back-pressure storms. *)
      (match t.config.faults with
      | Some f ->
        if Fault.take_truncation f then Chunk.truncate chunk (Chunk.length chunk - 1);
        let storm = Fault.take_queue_full f in
        let spins = ref 0 in
        for _ = 1 to storm do
          stall t (Queue_full w_id) spins
        done
      | None -> ());
      (match t.vsched with Some vs -> vs.on_chunk w_id | None -> ());
      (* The occupancy must be read before the push: once the chunk is in
         the queue the consumer may clear it concurrently. *)
      let occupancy = Chunk.length chunk in
      Atomic.incr w.pushed;
      let delivered = ref (w.work_q.try_push chunk) in
      let dropped = ref false in
      if not !delivered then begin
        (* Blocked on a full queue: the backpressure policy decides, per
           queue-full event, between waiting and shedding.  One span for
           the whole wait (never one event per spin — that would flood
           the ring), with the retry count as a counter. *)
        if on then Obs.enter t.obs ~dom:0 Obs.Tag.Queue_full;
        let retries = ref 0 in
        let spins = ref 0 in
        let abandon () =
          Atomic.decr w.pushed;
          account_drop t ~events:occupancy;
          Chunk.clear chunk;
          dropped := true
        in
        let shed =
          match t.config.backpressure with
          | Config.Block | Config.Drop_oldest -> fun () -> false
          | Config.Drop_new -> fun () -> true
          | Config.Sample p -> fun () -> Rng.float t.bp_rng 1.0 < p
        in
        let oldest = t.config.backpressure = Config.Drop_oldest in
        while (not !delivered) && not !dropped do
          if shed () then abandon ()
          else begin
            supervise t;
            if is_dead w || Atomic.get t.kill then abandon ()
            else begin
              if oldest then steal_oldest t w
              else begin
                incr retries;
                stall t (Queue_full w_id) spins
              end;
              if w.work_q.try_push chunk then delivered := true
            end
          end
        done;
        if on then begin
          let d = Obs.leave t.obs ~dom:0 ~arg:w_id in
          Obs.incr t.obs ~dom:0 Obs.C.queue_full_stalls;
          Obs.add t.obs ~dom:0 Obs.C.queue_push_retries !retries;
          Obs.add t.obs ~dom:0 Obs.C.stall_ns d;
          Obs.observe t.obs ~dom:0 Obs.H.stall_ns d
        end
      end;
      if !delivered then begin
        t.open_chunks.(w_id) <- acquire_chunk t w;
        t.chunks_pushed <- t.chunks_pushed + 1;
        if on then begin
          ignore (Obs.leave t.obs ~dom:0 ~arg:w_id : int);
          Obs.incr t.obs ~dom:0 Obs.C.chunks_pushed;
          Obs.add t.obs ~dom:0 Obs.C.chunk_events occupancy;
          Obs.observe t.obs ~dom:0 Obs.H.chunk_occupancy occupancy
        end
      end
      else if on then
        (* Dropped by backpressure: the Flush frame is accounted (its
           allocation is real) but no span is emitted — the trace shows
           only delivered flushes, as before. *)
        Obs.cancel t.obs ~dom:0
    end
  end

(* One check per [interval] pushed chunks.  The trigger compares against
   the count at the last check rather than testing [chunks_pushed mod
   interval = 0]: several chunks can flush in one call path (full-chunk
   flush plus the flush-all inside a redistribution barrier), so the
   counter may step over a multiple — or sit exactly on one across
   several calls — making the modulo test skip intervals or fire twice
   at the same count. *)
let maybe_redistribute t =
  if aborted t then ()
    (* Redistribution is pointless (and migration unsafe without a full
       drain) once the run is degraded; the salvage path skips it. *)
  else begin
    let interval = t.config.redistribution_interval in
    let forced =
      match t.config.faults with
      | Some f -> Fault.take_forced_redistribution f
      | None -> false
    in
    if forced || (interval > 0 && t.chunks_pushed - t.last_redistribution_check >= interval)
    then begin
      t.last_redistribution_check <- t.chunks_pushed;
      let moves_needed =
        if forced then Dispatch.force_rebalance t.dispatch else Dispatch.rebalance t.dispatch
      in
      match moves_needed with
      | [] -> ()
      | moves ->
        let on = Obs.enabled t.obs in
        if on then Obs.enter t.obs ~dom:0 Obs.Tag.Redistribute;
        (* Accesses to a moved address may still sit in open chunks routed
           under the old assignment: flush everything, let the old owners
           consume it, and only then migrate signature state.  Without this
           barrier the old owner would process in-flight accesses against a
           signature whose slots were just migrated away. *)
        Array.iteri (fun w_id _ -> flush_chunk t w_id) t.open_chunks;
        (* Migrate only after a complete drain: a partial drain (worker
           death / deadline mid-barrier) leaves in-flight accesses that
           must not cross a signature migration. *)
        if drain t then
          List.iter (fun (addr, from_w, to_w) -> migrate t ~addr ~from_w ~to_w) moves;
        if on then begin
          let n = List.length moves in
          ignore (Obs.leave t.obs ~dom:0 ~arg:n : int);
          Obs.incr t.obs ~dom:0 Obs.C.redistributions;
          Obs.add t.obs ~dom:0 Obs.C.migrated_addrs n;
          Obs.observe t.obs ~dom:0 Obs.H.redistribute_moves n
        end
    end
  end

let flush t w_id =
  flush_chunk t w_id;
  maybe_redistribute t

let route t ~addr ~op ~payload ~time =
  Dispatch.note_access t.dispatch addr;
  let w = Dispatch.worker_of t.dispatch addr in
  let chunk = t.open_chunks.(w) in
  Chunk.push chunk ~addr ~op ~payload ~time;
  if Chunk.is_full chunk then flush t w

(* -- construction -------------------------------------------------------- *)

let create ?account ?(virtual_mode = false) (config : Config.t) =
  (match config.backpressure with
  | Config.Drop_oldest when config.lock_free ->
    invalid_arg
      "Parallel_profiler.create: Drop_oldest backpressure requires lock-based queues \
       (lock_free = false) — a producer cannot pop an SPSC ring"
  | Config.Sample p when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg "Parallel_profiler.create: Sample backpressure probability must be in [0,1]"
  | _ -> ());
  let nw = max 1 config.workers in
  let obs = match config.obs with Some o -> o | None -> Obs.disabled in
  let sig_account = Option.map (fun (a, _) -> (a, "signatures")) account in
  let slots = Config.slots_per_worker { config with workers = nw } in
  let workers =
    Array.init nw (fun id ->
        let reads = Sig_store.create ?account:sig_account ~slots () in
        let writes = Sig_store.create ?account:sig_account ~slots () in
        let deps = Dep_store.create ?account:(Option.map (fun (a, _) -> (a, "deps-local")) account) () in
        let algo =
          Algo.Over_signature.create ~track_init:config.track_init
            ~war_requires_prior_write:config.war_requires_prior_write
            ~check_timestamps:config.check_timestamps ~reads ~writes ~deps ()
        in
        {
          id;
          work_q = make_queue ~lock_free:config.lock_free ~capacity:config.queue_capacity;
          recycle_q = make_queue ~lock_free:config.lock_free ~capacity:config.queue_capacity;
          reads;
          writes;
          algo;
          deps;
          pushed = Atomic.make 0;
          processed = Atomic.make 0;
          status = Atomic.make Alive;
          faults = config.faults;
          events = 0;
          busy = 0.0;
          obs;
        })
  in
  let regions = Region.create () in
  let global_deps =
    Dep_store.create ?account:(Option.map (fun (a, _) -> (a, "deps-global")) account) ()
  in
  {
    config = { config with workers = nw };
    workers;
    dispatch =
      Dispatch.create ~workers:nw ~sample:config.stats_sample ~hot_set_size:config.hot_set_size;
    open_chunks = Array.map (fun _ -> Chunk.create ~capacity:config.chunk_size) workers;
    regions;
    global_deps;
    stop = Atomic.make false;
    kill = Atomic.make false;
    virtual_mode;
    obs;
    bp_rng = Rng.create config.seed;
    deadline_at = (match config.deadline with Some d -> Clock.now () +. d | None -> infinity);
    abort_reasons = [];
    dropped_chunks = 0;
    dropped_events = 0;
    vsched = None;
    domains = [||];
    chunks_pushed = 0;
    last_redistribution_check = 0;
    extra_chunks = 0;
    account;
  }

let set_vsched t vs =
  if not t.virtual_mode then
    invalid_arg "Parallel_profiler.set_vsched: profiler was not created with ~virtual_mode";
  t.vsched <- Some vs

let start t =
  (* Charge the fixed pools once: open chunks and queues. *)
  Array.iter (fun c -> charge t (Chunk.bytes c)) t.open_chunks;
  Array.iter (fun w -> charge t (w.work_q.q_bytes + w.recycle_q.q_bytes)) t.workers;
  (* The deadline clock runs from here, not from create. *)
  (match t.config.deadline with
  | Some d -> t.deadline_at <- Clock.now () +. d
  | None -> ());
  (* Virtual mode runs everything on the calling domain: workers advance
     only through worker_step, driven by the vsched callbacks. *)
  if not t.virtual_mode then
    t.domains <-
      Array.map (fun w -> Domain.spawn (fun () -> worker_loop t.stop t.kill w)) t.workers

(* Same class subscriptions as the serial profiler: Memory and the free
   half of Alloc route into chunks, Region feeds the shared tracker on
   the producer domain; Frame/Sync stay unsubscribed. *)
let handler t =
  let memory : Event.memory_handler =
    {
      on_read =
        (fun ~addr ~loc ~var ~thread ~time ~locked:_ ->
          route t ~addr ~op:Chunk.op_read ~payload:(Payload.pack_unsafe ~loc ~var ~thread) ~time);
      on_write =
        (fun ~addr ~loc ~var ~thread ~time ~locked:_ ->
          route t ~addr ~op:Chunk.op_write ~payload:(Payload.pack_unsafe ~loc ~var ~thread) ~time);
    }
  in
  let alloc : Event.alloc_handler =
    {
      on_alloc = (fun ~base:_ ~len:_ ~var:_ -> ());
      on_free =
        (fun ~base ~len ~var:_ ->
          if t.config.lifetime_analysis then
            for a = base to base + len - 1 do
              route t ~addr:a ~op:Chunk.op_free ~payload:1 ~time:0
            done);
    }
  in
  Ddp_minir.Handler.make ~memory
    ~region:(Serial_profiler.region_handler t.regions)
    ~alloc ()

let hooks t = Ddp_minir.Handler.hooks (handler t)

let finish t =
  Array.iteri (fun w_id _ -> flush t w_id) t.open_chunks;
  let _fully_drained = drain t in
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  (* Domains have joined: worker status cells are final.  A crash on the
     very last chunk is caught here even if no producer blocking point
     observed it mid-run. *)
  supervise t;
  let faults =
    Array.to_list t.workers
    |> List.filter_map (fun w ->
           match Atomic.get w.status with Alive -> None | Crashed f -> Some f)
  in
  let unprocessed =
    Array.fold_left
      (fun acc (w : worker) -> acc + max 0 (Atomic.get w.pushed - Atomic.get w.processed))
      0 t.workers
  in
  let reasons =
    t.abort_reasons
    @
    match Region.corruption t.regions with
    | Some msg -> [ Health.Stream_corrupt msg ]
    | None -> []
  in
  let health =
    Health.degraded ~reasons ~faults
      {
        Health.dropped_chunks = t.dropped_chunks;
        dropped_events = t.dropped_events;
        dead_partitions = List.length faults;
        unprocessed_chunks = unprocessed;
      }
  in
  let on = Obs.enabled t.obs in
  if on && unprocessed > 0 then Obs.add t.obs ~dom:0 Obs.C.unprocessed_chunks unprocessed;
  if on then Obs.enter t.obs ~dom:0 Obs.Tag.Merge;
  (* Salvage merge: every *surviving* worker's partition.  A crashed
     worker's signature pair is suspect mid-chunk, so its partition is
     counted lost rather than merged. *)
  Array.iter
    (fun (w : worker) ->
      if not (is_dead w) then Dep_store.merge_into ~src:w.deps ~dst:t.global_deps)
    t.workers;
  if on then begin
    let d = Obs.leave t.obs ~dom:0 ~arg:(Array.length t.workers) in
    Obs.add t.obs ~dom:0 Obs.C.merge_ns d;
    (* Domains have joined: folding per-access-structure statistics into
       the worker cells is now race-free. *)
    Array.iter
      (fun (w : worker) ->
        let dom = w.id + 1 in
        Obs.add t.obs ~dom Obs.C.sig_occupied
          (Sig_store.occupied w.reads + Sig_store.occupied w.writes);
        Obs.add t.obs ~dom Obs.C.sig_overwrites
          (Sig_store.overwrites w.reads + Sig_store.overwrites w.writes);
        let add_ops (pushes, fails, pops, empties) =
          Obs.add t.obs ~dom:0 Obs.C.queue_pushes pushes;
          Obs.add t.obs ~dom:0 Obs.C.queue_push_failures fails;
          Obs.add t.obs ~dom:0 Obs.C.queue_pops pops;
          Obs.add t.obs ~dom:0 Obs.C.queue_pop_empties empties
        in
        add_ops (w.work_q.op_counts ());
        add_ops (w.recycle_q.op_counts ()))
      t.workers;
    Obs.add t.obs ~dom:0 Obs.C.bytes_signatures
      (Array.fold_left
         (fun acc (w : worker) -> acc + Sig_store.bytes w.reads + Sig_store.bytes w.writes)
         0 t.workers);
    Obs.add t.obs ~dom:0 Obs.C.bytes_queues
      (Array.fold_left
         (fun acc (w : worker) -> acc + w.work_q.q_bytes + w.recycle_q.q_bytes)
         0 t.workers);
    Obs.add t.obs ~dom:0 Obs.C.bytes_chunks
      ((Array.length t.open_chunks + t.extra_chunks) * Chunk.bytes t.open_chunks.(0));
    Obs.add t.obs ~dom:0 Obs.C.bytes_dispatch (Dispatch.bytes t.dispatch);
    Obs.add t.obs ~dom:0 Obs.C.dispatch_overrides (Dispatch.override_count t.dispatch);
    Obs.add t.obs ~dom:0 Obs.C.dispatch_stats_entries (Dispatch.stats_entries t.dispatch)
  end;
  charge t (Dispatch.bytes t.dispatch);
  {
    deps = t.global_deps;
    regions = t.regions;
    health;
    chunks = t.chunks_pushed;
    redistributions = Dispatch.redistributions t.dispatch;
    per_worker_events = Array.map (fun (w : worker) -> w.events) t.workers;
    per_worker_busy = Array.map (fun (w : worker) -> w.busy) t.workers;
    signature_bytes =
      Array.fold_left (fun acc (w : worker) -> acc + Sig_store.bytes w.reads + Sig_store.bytes w.writes) 0
        t.workers;
    queue_bytes = Array.fold_left (fun acc (w : worker) -> acc + w.work_q.q_bytes + w.recycle_q.q_bytes) 0 t.workers;
    chunk_bytes =
      (Array.length t.open_chunks + t.extra_chunks) * Chunk.bytes t.open_chunks.(0);
    dispatch_bytes = Dispatch.bytes t.dispatch;
  }

(* Profile one program end to end under the parallel profiler. *)
let profile ?account ?(config = Config.default) ?sched_seed ?input_seed ?symtab prog =
  let t = create ?account config in
  start t;
  let stats = Ddp_minir.Interp.run ~hooks:(hooks t) ?sched_seed ?input_seed ?symtab prog in
  let result = finish t in
  (result, stats)
