(** The parallel profiler (paper Sec. IV, Fig. 2): producer/worker
    pipeline over OCaml 5 domains with per-worker lock-free SPSC chunk
    queues (or the lock-based variant), modulo address distribution,
    hot-address redistribution and end-of-run merge of thread-local
    dependence maps.

    The pipeline is supervised: worker exceptions are contained in
    per-worker status cells, a configurable deadline
    ([Config.deadline]) aborts stuck runs, queue-full handling follows
    [Config.backpressure], and {!finish} always returns — salvaging the
    surviving workers' partitions and reporting any degradation as the
    result's {!Health.t} with exact loss accounting. *)

type t

(** Producer-side blocking points, visible to the virtual scheduler. *)
type stall =
  | Queue_full of int  (** worker id whose bounded queue rejected a push *)
  | Drain_wait of int  (** worker id the drain barrier is waiting on *)

(** Deterministic single-domain scheduling callbacks.  [on_chunk w] is an
    interleaving opportunity before each push to worker [w]; [on_stall]
    fires when the producer is blocked and must advance the named worker
    via {!worker_step} (injected worker stalls excepted — budgets keep
    them finite). *)
type vsched = {
  on_chunk : int -> unit;
  on_stall : stall -> unit;
}

type result = {
  deps : Dep_store.t;  (** merged global dependence map (survivors only) *)
  regions : Region.t;
  health : Health.t;
      (** [Complete], or [Partial] with abort reasons, per-worker crash
          diagnostics and the exact loss summary *)
  chunks : int;
  redistributions : int;
  per_worker_events : int array;  (** feeds the makespan model *)
  per_worker_busy : float array;
  signature_bytes : int;
  queue_bytes : int;
  chunk_bytes : int;
  dispatch_bytes : int;
}

val create : ?account:Ddp_util.Mem_account.t * string -> ?virtual_mode:bool -> Config.t -> t
(** [virtual_mode] (default false) builds the full pipeline — chunks,
    bounded queues, dispatch, redistribution — but spawns no domains:
    workers advance only through {!worker_step}, so every interleaving
    of producer and worker progress is chosen explicitly (and
    deterministically) by the {!vsched} callbacks. *)

val set_vsched : t -> vsched -> unit
(** Install the schedule chooser (virtual mode only; call before any
    event reaches {!hooks}). *)

val worker_step : t -> int -> bool
(** Virtual mode: pop and process one chunk on the given worker.
    [false] when its queue is empty, the worker declined (injected
    stall), or the worker crashed (contained; see the result health). *)

val queue_depth : t -> int -> int
(** Chunks pushed to but not yet processed by the given worker. *)

val start : t -> unit
(** Spawn the worker domains (no-op in virtual mode). *)

val hooks : t -> Ddp_minir.Event.hooks
(** Producer-side instrumentation hooks; attach to an interpreter run
    between {!start} and {!finish}. *)

val finish : t -> result
(** Flush, stop workers, join domains, merge local dependence maps.
    Never raises on degradation: crashes, deadline expiry and dropped
    chunks are salvaged into a [Partial] result health (use
    {!Health.strict} for fail-fast semantics). *)

val profile :
  ?account:Ddp_util.Mem_account.t * string ->
  ?config:Config.t ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Ddp_minir.Symtab.t ->
  Ddp_minir.Ast.program ->
  result * Ddp_minir.Interp.stats
