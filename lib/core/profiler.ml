(* Unified façade: a thin registry-driven wrapper tying an {!Engine}
   (picked by mode name) to a {!Source} (live run or recorded trace),
   optionally tee-ing the stream into extra sinks, and flattening the
   engine's outcome into one record with the common fields the CLI,
   examples and benches consume.  Benches still drive the individual
   profilers directly when they need finer control. *)

module Interp = Ddp_minir.Interp
module Symtab = Ddp_minir.Symtab

(* Referencing Engines forces the built-in registrations; baseline
   engines register via Ddp_baselines.Baseline_engines.register. *)
let _builtin = Engines.builtin

type outcome = {
  engine : string;
  deps : Dep_store.t;
  regions : Region.t;
  health : Health.t;
  symtab : Symtab.t;
  run_stats : Interp.stats;
  store_bytes : int;
  extra : Engine.extra;
  parallel : Parallel_profiler.result option;
  mt_delayed : int;  (* accesses that went through the MT reorder buffer *)
  elapsed : float;  (* wall-clock of the instrumented run, seconds *)
  notes : string list;  (* degradations worth surfacing (e.g. memprof unavailable) *)
}

let modes () = List.map (fun (e : Engine.t) -> (e.Engine.name, e.Engine.description)) (Engine.all ())

let rec parallel_of = function
  | Engines.Parallel_result r -> Some r
  | Engine.Mt { inner; _ } -> parallel_of inner
  | _ -> None

let mt_delayed_of = function Engine.Mt { delayed; _ } -> delayed | _ -> 0

let report ?show_threads outcome =
  Report.render ?show_threads ~health:outcome.health
    ~var_name:(Symtab.var_name outcome.symtab)
    ~deps:outcome.deps ~regions:outcome.regions ()

(* [mt] wraps the chosen engine with the Sec. V machinery (no-op when the
   mode is already MT-wrapped, i.e. "mt"); [obs] wraps it with the
   telemetry hub. *)
let run ?(mode = "serial") ?(config = Config.default) ?(mt = false) ?obs ?account ?tee
    (source : Source.t) =
  let engine = Engine.get mode in
  let engine = if mt && mode <> "mt" then Engine.with_mt engine else engine in
  let engine = match obs with Some o -> Engine.with_obs o engine | None -> engine in
  (* Memprof sampling brackets the whole session (engine construction
     included) and degrades to a note on runtimes without statmemprof:
     the span-boundary attribution still fills the per-stage table. *)
  let memprof =
    match obs with
    | Some o when config.Config.memprof_rate > 0.0 ->
      Ddp_obs.Memprof_attr.start ~rate:config.Config.memprof_rate o
    | _ -> Ddp_obs.Memprof_attr.Disabled
  in
  let session = engine.Engine.create ?account config in
  let hooks =
    match tee with None -> session.Engine.hooks | Some h -> Sink.tee session.Engine.hooks h
  in
  let t0 = Ddp_util.Clock.now () in
  let sr =
    try source.Source.run hooks
    with e ->
      (* A failing source (e.g. a truncated trace file) must not leak the
         engine's resources — the parallel engine spawns domains in
         [create], and only [finish] stops and joins them.  The original
         backtrace is preserved across the cleanup. *)
      let bt = Printexc.get_raw_backtrace () in
      (try ignore (session.Engine.finish () : Engine.outcome) with _ -> ());
      Ddp_obs.Memprof_attr.stop memprof;
      Printexc.raise_with_backtrace e bt
  in
  let eo = session.Engine.finish () in
  Ddp_obs.Memprof_attr.stop memprof;
  let elapsed = Ddp_util.Clock.now () -. t0 in
  {
    engine = mode;
    deps = eo.Engine.deps;
    regions = eo.Engine.regions;
    health = eo.Engine.health;
    symtab = sr.Source.symtab;
    run_stats = sr.Source.stats;
    store_bytes = eo.Engine.store_bytes;
    extra = eo.Engine.extra;
    parallel = parallel_of eo.Engine.extra;
    mt_delayed = mt_delayed_of eo.Engine.extra;
    elapsed;
    notes =
      (match memprof with
      | Ddp_obs.Memprof_attr.Unavailable msg -> [ "memprof sampling " ^ msg ]
      | Ddp_obs.Memprof_attr.Running | Ddp_obs.Memprof_attr.Disabled -> []);
  }

let profile ?mode ?config ?mt ?obs ?account ?sched_seed ?input_seed ?symtab prog =
  run ?mode ?config ?mt ?obs ?account (Source.live ?sched_seed ?input_seed ?symtab prog)
