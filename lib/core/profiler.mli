(** Unified profiling façade: a thin registry-driven wrapper tying an
    {!Engine} (picked by mode name) to a {!Source} (live run or recorded
    trace).  The public entry point for examples and the CLI.

    Built-in modes are "serial", "perfect", "parallel" and "mt"; the
    baseline stores register "shadow", "hashtable" and "stride" via
    [Ddp_baselines.Baseline_engines.register].  {!Engine.register} adds
    custom engines. *)

type outcome = {
  engine : string;  (** mode name the run used *)
  deps : Dep_store.t;
  regions : Region.t;
  health : Health.t;
      (** [Complete], or [Partial] with loss accounting; engines salvage
          instead of raising (use {!Health.strict} to fail fast) *)
  symtab : Ddp_minir.Symtab.t;
  run_stats : Ddp_minir.Interp.stats;
      (** synthesized from the events when the source is a trace *)
  store_bytes : int;  (** access-store footprint at end of run *)
  extra : Engine.extra;  (** engine-specific stats *)
  parallel : Parallel_profiler.result option;
      (** convenience projection of [extra] for the "parallel" engine *)
  mt_delayed : int;  (** accesses that went through the MT reorder buffer *)
  elapsed : float;
  notes : string list;
      (** degradations worth surfacing to the user, e.g. memprof
          sampling requested but unavailable on this runtime *)
}

val modes : unit -> (string * string) list
(** Registered (mode, description) pairs, in registration order. *)

val run :
  ?mode:string ->
  ?config:Config.t ->
  ?mt:bool ->
  ?obs:Ddp_obs.Obs.t ->
  ?account:Ddp_util.Mem_account.t * string ->
  ?tee:Ddp_minir.Event.hooks ->
  Source.t ->
  outcome
(** Feed [source] through the engine registered under [mode] (default
    "serial").  [mt] wraps the engine with the Sec. V machinery (no-op
    for mode "mt", which is already wrapped); [obs] wraps it with the
    telemetry hub ({!Engine.with_obs}); [tee] additionally streams
    every event into the given sink (e.g. a trace recorder) in the same
    pass.  @raise Invalid_argument on unknown modes. *)

val profile :
  ?mode:string ->
  ?config:Config.t ->
  ?mt:bool ->
  ?obs:Ddp_obs.Obs.t ->
  ?account:Ddp_util.Mem_account.t * string ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Ddp_minir.Symtab.t ->
  Ddp_minir.Ast.program ->
  outcome
(** [run] over a live interpretation of the program.  [symtab] pre-interns
    variable ids (for static pruning plans); see {!Source.live}. *)

val report : ?show_threads:bool -> outcome -> string
(** Paper-style (Fig. 1 / Fig. 3) textual report. *)
