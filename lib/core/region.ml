(* Runtime control-flow information (paper Sec. III-A).

   Two jobs:
   - a registry of control regions (loops) with entry counts and total
     iterations, feeding the BGN/END lines of the Fig.-1-style report;
   - a per-thread stack of *active* regions with activation and
     current-iteration timestamps, which is what the loop-parallelism
     analysis consults to decide whether a dependence is loop-carried:
     a dependence is carried by an active loop iff its source executed
     during this activation but before the current iteration began. *)

module Loc = Ddp_minir.Loc

type info = {
  mutable end_loc : Loc.t;
  mutable entries : int;
  mutable iterations : int;
}

type active = {
  a_loc : Loc.t;
  activation_time : int;
  mutable cur_iter_time : int;
  mutable iters_seen : int;
}

type t = {
  registry : (Loc.t, info) Hashtbl.t;
  stacks : (int, active list ref) Hashtbl.t;  (* thread -> innermost-first *)
  (* Unmatched iteration/exit events mark the stream corrupt instead of
     aborting the run: the anomalous event is dropped (or the stack
     unwound to the nearest matching frame), counted here, and the run
     finishes with a partial-health verdict carrying [first_anomaly]. *)
  mutable anomalies : int;
  mutable first_anomaly : string option;
}

let create () =
  { registry = Hashtbl.create 64; stacks = Hashtbl.create 8; anomalies = 0; first_anomaly = None }

let note_anomaly t msg =
  t.anomalies <- t.anomalies + 1;
  if t.first_anomaly = None then t.first_anomaly <- Some msg

let anomalies t = t.anomalies
let corruption t = t.first_anomaly

let stack t thread =
  match Hashtbl.find_opt t.stacks thread with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add t.stacks thread s;
    s

let on_enter t ~loc ~thread ~time =
  let s = stack t thread in
  s := { a_loc = loc; activation_time = time; cur_iter_time = time; iters_seen = 0 } :: !s

let on_iter t ~loc ~thread ~time =
  match !(stack t thread) with
  | a :: _ when a.a_loc = loc ->
    a.cur_iter_time <- time;
    a.iters_seen <- a.iters_seen + 1
  | _ ->
    (* Stray iteration: ignore it — timestamps of the (absent or
       mismatched) region are unaffected, only the stream is flagged. *)
    note_anomaly t
      (Printf.sprintf "iteration event for %s on thread %d without matching active region"
         (Loc.to_string loc) thread)

let on_exit t ~loc ~end_loc ~iterations ~thread =
  let s = stack t thread in
  (match !s with
  | a :: rest when a.a_loc = loc -> s := rest
  | frames ->
    (* Mismatched exit.  If the frame exists deeper in the stack (some
       inner enter/exit pairs were lost), unwind through it so later
       well-formed events keep matching; otherwise drop the event. *)
    note_anomaly t
      (Printf.sprintf "exit event for %s on thread %d without matching active region"
         (Loc.to_string loc) thread);
    let rec unwind = function
      | [] -> None
      | a :: rest when a.a_loc = loc -> Some rest
      | _ :: rest -> unwind rest
    in
    (match unwind frames with Some rest -> s := rest | None -> ()));
  match Hashtbl.find_opt t.registry loc with
  | Some info ->
    info.entries <- info.entries + 1;
    info.iterations <- info.iterations + iterations;
    info.end_loc <- end_loc
  | None -> Hashtbl.add t.registry loc { end_loc; entries = 1; iterations }

let active_stack t ~thread = !(stack t thread)

(* Innermost active region of [thread] in which a source executed at
   [src_time] counts as a *previous* iteration. *)
let carrying_regions t ~thread ~src_time =
  List.filter
    (fun a -> src_time >= a.activation_time && src_time < a.cur_iter_time)
    !(stack t thread)

let find t loc = Hashtbl.find_opt t.registry loc

let fold t f init = Hashtbl.fold (fun loc info acc -> f loc info acc) t.registry init

(* (begin_loc, info) sorted by location, for the reporter. *)
let to_sorted_list t =
  fold t (fun loc info acc -> (loc, info) :: acc) []
  |> List.sort (fun (a, _) (b, _) -> Loc.compare a b)
