(** Runtime control-flow information: a registry of loop regions (for the
    BGN/END report lines) and per-thread active-region stacks with
    iteration timestamps (for loop-carried-dependence classification). *)

module Loc = Ddp_minir.Loc

type info = {
  mutable end_loc : Loc.t;
  mutable entries : int;  (** times the region was entered *)
  mutable iterations : int;  (** total iterations over all entries *)
}

type active = {
  a_loc : Loc.t;
  activation_time : int;
  mutable cur_iter_time : int;
  mutable iters_seen : int;
}

type t

val create : unit -> t
val on_enter : t -> loc:Loc.t -> thread:int -> time:int -> unit

val on_iter : t -> loc:Loc.t -> thread:int -> time:int -> unit
(** An iteration event with no matching active region is dropped and
    counted as an anomaly (see {!corruption}) instead of raising. *)

val on_exit : t -> loc:Loc.t -> end_loc:Loc.t -> iterations:int -> thread:int -> unit
(** A mismatched exit unwinds to the nearest matching frame (or drops
    the event) and counts an anomaly instead of raising. *)

val anomalies : t -> int
(** Unmatched iteration/exit events absorbed so far. *)

val corruption : t -> string option
(** [Some msg] (the first anomaly) when the region stream was corrupt;
    engines fold this into the run's partial-health verdict. *)

val active_stack : t -> thread:int -> active list
(** Innermost first. *)

val carrying_regions : t -> thread:int -> src_time:int -> active list
(** Active regions of [thread] for which an access at [src_time] belongs
    to a previous iteration of the current activation. *)

val find : t -> Loc.t -> info option
val fold : t -> (Loc.t -> info -> 'a -> 'a) -> 'a -> 'a
val to_sorted_list : t -> (Loc.t * info) list
