(* Textual dependence report in the format of the paper's Fig. 1 (serial)
   and Fig. 3 (parallel):

     1:60 BGN loop
     1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
     1:63 NOM {RAW 1:59|temp1} {RAW 1:67|temp1}
     1:74 END loop 1200

   With [show_threads], sinks are printed "4:58|2" and sources carry the
   thread id ("{WAR 4:77|2|iter}"). *)

module Loc = Ddp_minir.Loc

(* Sink key: (location, thread).  Thread participates only in
   [show_threads] mode. *)
module Sink = struct
  type t = Loc.t * int

  let compare (l1, t1) (l2, t2) =
    let c = Loc.compare l1 l2 in
    if c <> 0 then c else Int.compare t1 t2
end

module Sink_map = Map.Make (Sink)
module Loc_map = Map.Make (Int)

let deps_per_line = 4

let sink_to_string ~show_threads (loc, thread) =
  if show_threads then Printf.sprintf "%s|%d" (Loc.to_string loc) thread else Loc.to_string loc

let render ?(show_threads = false) ?(health = Health.Complete) ~var_name ~(deps : Dep_store.t)
    ~(regions : Region.t) () =
  let buf = Buffer.create 4096 in
  (* A degraded run leads with a banner so the report can never be
     mistaken for a complete dependence set. *)
  (match health with
  | Health.Complete -> ()
  | Health.Partial d ->
    Buffer.add_string buf "# PARTIAL RESULT — dependence set is a subset of the truth\n";
    List.iter
      (fun r ->
        Buffer.add_string buf (Printf.sprintf "# reason: %s\n" (Health.reason_to_string r)))
      d.Health.reasons;
    List.iter
      (fun (f : Health.worker_fault) ->
        Buffer.add_string buf (Printf.sprintf "# worker %d crashed: %s\n" f.worker f.exn_text))
      d.Health.faults;
    Buffer.add_string buf (Printf.sprintf "# loss: %s\n" (Health.loss_to_string d.Health.loss)));
  (* Group dependences by sink. *)
  let groups =
    Dep_store.fold deps
      (fun dep _count acc ->
        let key = (Dep.sink_loc dep, if show_threads then Dep.sink_thread dep else 0) in
        let existing = Option.value (Sink_map.find_opt key acc) ~default:[] in
        Sink_map.add key (dep :: existing) acc)
      Sink_map.empty
  in
  (* Region begin/end lines. *)
  let begins, ends =
    Region.fold regions
      (fun loc info (b, e) ->
        (Loc_map.add loc info b, Loc_map.add info.Region.end_loc (loc, info) e))
      (Loc_map.empty, Loc_map.empty)
  in
  (* All lines that must appear, in (file, line, thread) order. *)
  let lines =
    let of_groups = List.map (fun ((loc, _), _) -> loc) (Sink_map.bindings groups) in
    let of_begins = List.map fst (Loc_map.bindings begins) in
    let of_ends = List.map fst (Loc_map.bindings ends) in
    List.sort_uniq Loc.compare (of_groups @ of_begins @ of_ends)
  in
  let print_group sink deps_list =
    let sink_str = sink_to_string ~show_threads sink in
    let sorted = List.sort Dep.compare deps_list in
    let rendered = List.map (Dep.to_string ~show_threads ~var_name) sorted in
    let rec chunks = function
      | [] -> []
      | l ->
        let rec take n = function
          | x :: rest when n > 0 ->
            let taken, dropped = take (n - 1) rest in
            (x :: taken, dropped)
          | rest -> ([], rest)
        in
        let head, tail = take deps_per_line l in
        head :: chunks tail
    in
    List.iteri
      (fun i chunk ->
        if i = 0 then Buffer.add_string buf (Printf.sprintf "%s NOM " sink_str)
        else Buffer.add_string buf (String.make (String.length sink_str + 5) ' ');
        Buffer.add_string buf (String.concat " " chunk);
        Buffer.add_char buf '\n')
      (chunks rendered)
  in
  List.iter
    (fun loc ->
      (match Loc_map.find_opt loc begins with
      | Some _ -> Buffer.add_string buf (Printf.sprintf "%s BGN loop\n" (Loc.to_string loc))
      | None -> ());
      Sink_map.iter
        (fun ((l, _) as sink) ds -> if l = loc then print_group sink ds)
        groups;
      match Loc_map.find_opt loc ends with
      | Some (_begin_loc, info) ->
        Buffer.add_string buf
          (Printf.sprintf "%s END loop %d\n" (Loc.to_string loc) info.Region.iterations)
      | None -> ())
    lines;
  Buffer.contents buf

(* Summary counts per dependence kind, handy for CLI output. *)
let kind_counts (deps : Dep_store.t) =
  Dep_store.fold deps
    (fun dep _ (raw, war, waw, init, races) ->
      let races = if dep.Dep.race then races + 1 else races in
      match dep.Dep.kind with
      | Dep.RAW -> (raw + 1, war, waw, init, races)
      | Dep.WAR -> (raw, war + 1, waw, init, races)
      | Dep.WAW -> (raw, war, waw + 1, init, races)
      | Dep.INIT -> (raw, war, waw, init + 1, races))
    (0, 0, 0, 0, 0)
