(** Textual dependence report in the paper's Fig. 1 / Fig. 3 format. *)

val render :
  ?show_threads:bool ->
  ?health:Health.t ->
  var_name:(int -> string) ->
  deps:Dep_store.t ->
  regions:Region.t ->
  unit ->
  string
(** [health] (default [Complete]) prepends a [# PARTIAL RESULT] banner
    with reasons and loss accounting when the run was degraded. *)

val kind_counts : Dep_store.t -> int * int * int * int * int
(** (RAW, WAR, WAW, INIT, race-flagged) distinct dependence counts. *)
