(* The serial profiler (paper Sec. III): Algorithm 1 applied inline to the
   instrumentation stream of a single run.  Works over either the real
   signature or the perfect signature; the two constructors return the
   same first-class record so callers are store-agnostic.

   The serial profiler also accepts multi-threaded targets (events then
   carry real thread ids); with [check_timestamps] it applies the race
   flagging of Sec. V-B. *)

module Event = Ddp_minir.Event
module Handler = Ddp_minir.Handler

type t = {
  hooks : Event.hooks;
  deps : Dep_store.t;
  regions : Region.t;
  set_observer : Algo.dep_observer -> unit;
  store_bytes : unit -> int;
  release : unit -> unit;
  fold_obs : Ddp_obs.Obs.t -> unit;
      (* fold end-of-run store statistics into telemetry domain 0 *)
}

(* The serial profiler subscribes to exactly these classes; frame and
   sync events are dropped by the fused null closures. *)
let consumed_classes = Event.Class.[ Memory; Region; Alloc ]

let region_handler regions : Event.region_handler =
  {
    on_region_enter =
      (fun ~loc ~kind:Event.Loop ~thread ~time -> Region.on_enter regions ~loc ~thread ~time);
    on_region_iter = (fun ~loc ~thread ~time -> Region.on_iter regions ~loc ~thread ~time);
    on_region_exit =
      (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time:_ ->
        Region.on_exit regions ~loc ~end_loc ~iterations ~thread);
  }

let make_handler (type a) (module A : Algo.S with type t = a) (algo : a) regions
    ~(lifetime : bool) ~(section_level : bool) =
  (* Set-based profiling (Sec. VI-B): attribute the access to the
     innermost active loop region instead of the statement. *)
  let effective_loc ~loc ~thread =
    if not section_level then loc
    else
      match Region.active_stack regions ~thread with
      | a :: _ -> a.Region.a_loc
      | [] -> loc
  in
  let memory : Event.memory_handler =
    {
      on_read =
        (fun ~addr ~loc ~var ~thread ~time ~locked:_ ->
          let loc = effective_loc ~loc ~thread in
          A.on_read algo ~addr ~payload:(Payload.pack_unsafe ~loc ~var ~thread) ~time);
      on_write =
        (fun ~addr ~loc ~var ~thread ~time ~locked:_ ->
          let loc = effective_loc ~loc ~thread in
          A.on_write algo ~addr ~payload:(Payload.pack_unsafe ~loc ~var ~thread) ~time);
    }
  in
  let alloc : Event.alloc_handler =
    {
      on_alloc = (fun ~base:_ ~len:_ ~var:_ -> ());
      on_free =
        (fun ~base ~len ~var:_ ->
          if lifetime then
            for a = base to base + len - 1 do
              A.on_free algo ~addr:a
            done);
    }
  in
  Handler.make ~memory ~region:(region_handler regions) ~alloc ()

let make_hooks (type a) (module A : Algo.S with type t = a) (algo : a) regions
    ~(lifetime : bool) ~(section_level : bool) =
  Handler.hooks (make_handler (module A) algo regions ~lifetime ~section_level)

let create_signature ?account (config : Config.t) =
  let deps = Dep_store.create ?account () in
  let regions = Region.create () in
  let sig_account = Option.map (fun (a, _) -> (a, "signatures")) account in
  let reads = Sig_store.create ?account:sig_account ~slots:config.slots () in
  let writes = Sig_store.create ?account:sig_account ~slots:config.slots () in
  let algo =
    Algo.Over_signature.create ~track_init:config.track_init
      ~war_requires_prior_write:config.war_requires_prior_write
      ~check_timestamps:config.check_timestamps ~reads ~writes ~deps ()
  in
  let hooks =
    make_hooks (module Algo.Over_signature) algo regions ~lifetime:config.lifetime_analysis
      ~section_level:config.section_level
  in
  {
    hooks;
    deps;
    regions;
    set_observer = Algo.Over_signature.set_observer algo;
    store_bytes = (fun () -> Sig_store.bytes reads + Sig_store.bytes writes);
    release =
      (fun () ->
        Sig_store.release reads;
        Sig_store.release writes);
    fold_obs =
      (fun obs ->
        let module Obs = Ddp_obs.Obs in
        if Obs.enabled obs then begin
          (* The serial engine's only stage besides the Run frame itself:
             the end-of-run statistics fold gets a Merge frame so serial
             runs also show a finalize stage (and attribute its
             allocation) in the self-profiling exports. *)
          Obs.enter obs ~dom:0 Obs.Tag.Merge;
          Obs.add obs ~dom:0 Obs.C.sig_occupied
            (Sig_store.occupied reads + Sig_store.occupied writes);
          Obs.add obs ~dom:0 Obs.C.sig_overwrites
            (Sig_store.overwrites reads + Sig_store.overwrites writes);
          Obs.add obs ~dom:0 Obs.C.bytes_signatures
            (Sig_store.bytes reads + Sig_store.bytes writes);
          let d = Obs.leave obs ~dom:0 ~arg:1 in
          Obs.add obs ~dom:0 Obs.C.merge_ns d
        end);
  }

let create_perfect ?account (config : Config.t) =
  let deps = Dep_store.create ?account () in
  let regions = Region.create () in
  let store_account = Option.map (fun (a, _) -> (a, "perfect-store")) account in
  let reads = Perfect_sig.create ?account:store_account () in
  let writes = Perfect_sig.create ?account:store_account () in
  let algo =
    Algo.Over_perfect.create ~track_init:config.track_init
      ~war_requires_prior_write:config.war_requires_prior_write
      ~check_timestamps:config.check_timestamps ~reads ~writes ~deps ()
  in
  let hooks =
    make_hooks (module Algo.Over_perfect) algo regions ~lifetime:config.lifetime_analysis
      ~section_level:config.section_level
  in
  {
    hooks;
    deps;
    regions;
    set_observer = Algo.Over_perfect.set_observer algo;
    store_bytes = (fun () -> Perfect_sig.bytes reads + Perfect_sig.bytes writes);
    release = (fun () -> ());
    fold_obs = (fun _ -> () (* the perfect store has no slot statistics *));
  }

(* Convenience: profile one program end to end. *)
let profile ?account ?(config = Config.default) ?(perfect = false) ?sched_seed ?input_seed
    ?symtab prog =
  let p = if perfect then create_perfect ?account config else create_signature ?account config in
  let stats = Ddp_minir.Interp.run ~hooks:p.hooks ?sched_seed ?input_seed ?symtab prog in
  (p, stats)
