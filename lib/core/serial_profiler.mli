(** The serial profiler (paper Sec. III): Algorithm 1 applied inline to
    one run's instrumentation stream, over either the real or the perfect
    signature. *)

type t = {
  hooks : Ddp_minir.Event.hooks;  (** attach to an interpreter run *)
  deps : Dep_store.t;
  regions : Region.t;
  set_observer : Algo.dep_observer -> unit;
  store_bytes : unit -> int;
  release : unit -> unit;  (** return accounted signature bytes *)
  fold_obs : Ddp_obs.Obs.t -> unit;
      (** Fold end-of-run store statistics (signature occupancy,
          overwrite counts, bytes) into telemetry domain 0; no-op for
          the perfect store and on a disabled hub. *)
}

val create_signature : ?account:Ddp_util.Mem_account.t * string -> Config.t -> t
val create_perfect : ?account:Ddp_util.Mem_account.t * string -> Config.t -> t

val consumed_classes : Ddp_minir.Event.Class.t list
(** The classes a serial profiler subscribes to:
    [[Memory; Region; Alloc]]. *)

val region_handler : Region.t -> Ddp_minir.Event.region_handler
(** The standard region-class wiring into a {!Region} tracker. *)

val make_handler :
  (module Algo.S with type t = 'a) ->
  'a ->
  Region.t ->
  lifetime:bool ->
  section_level:bool ->
  Ddp_minir.Handler.t
(** Build the standard serial wiring (payload packing, region tracking,
    optional lifetime frees and set-based attribution) around any
    Algorithm-1 instance, as a per-class handler bundle — the building
    block for engine adapters over alternative stores (see {!Engine}). *)

val make_hooks :
  (module Algo.S with type t = 'a) ->
  'a ->
  Region.t ->
  lifetime:bool ->
  section_level:bool ->
  Ddp_minir.Event.hooks
(** [make_handler] fused into the flat hot-path record. *)

val profile :
  ?account:Ddp_util.Mem_account.t * string ->
  ?config:Config.t ->
  ?perfect:bool ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Ddp_minir.Symtab.t ->
  Ddp_minir.Ast.program ->
  t * Ddp_minir.Interp.stats
(** Profile one program end to end. *)
