(* The signature: a fixed-size hashed slot array (paper Sec. III-B).

   Unlike a bloom filter, each slot holds a full payload (the packed
   source location / variable / thread of the last access, see Payload)
   plus a timestamp, because building a dependence needs the source line,
   and the multi-threaded extension (Sec. V-B) needs access times.  A
   single hash function is used — the paper makes the same choice to keep
   element *removal* possible for the variable-lifetime analysis.

   Hash collisions overwrite: that is the deliberate approximation that
   trades bounded memory for a small false-positive/negative rate,
   quantified by Table I and predicted by Eq. (2). *)

type t = {
  slots : int array;  (* packed payloads; 0 = empty *)
  times : int array;
  size : int;
  mutable occupied : int;
  mutable overwrites : int;  (* sets that landed on an occupied slot *)
  account : (Ddp_util.Mem_account.t * string) option;
}

let bytes_per_slot = 16 (* two boxed-free int lanes *)

let create ?account ~slots () =
  if slots <= 0 then invalid_arg "Sig_store.create: slots must be positive";
  (match account with
  | Some (acct, cat) -> Ddp_util.Mem_account.add acct cat (slots * bytes_per_slot)
  | None -> ());
  {
    slots = Array.make slots 0;
    times = Array.make slots 0;
    size = slots;
    occupied = 0;
    overwrites = 0;
    account;
  }

let release t =
  match t.account with
  | Some (acct, cat) -> Ddp_util.Mem_account.sub acct cat (t.size * bytes_per_slot)
  | None -> ()

let size t = t.size
let occupied t = t.occupied
let overwrites t = t.overwrites

(* Fibonacci (multiplicative) hashing spreads consecutive addresses —
   the common case for array walks — across the table. *)
let index t addr = (addr * 0x2545F4914F6CDD1D land max_int) mod t.size

let probe t ~addr = t.slots.(index t addr)

let probe_time t ~addr = t.times.(index t addr)

let set t ~addr ~payload ~time =
  let i = index t addr in
  if t.slots.(i) = 0 then begin
    if payload <> 0 then t.occupied <- t.occupied + 1
  end
  else t.overwrites <- t.overwrites + 1;
  t.slots.(i) <- payload;
  t.times.(i) <- time

(* Variable-lifetime analysis support: drop the slot for a freed address.
   With one hash function this may also evict a colliding live entry —
   an accepted approximation (it can cause a false negative, never an
   unsound extra dependence). *)
let remove t ~addr =
  let i = index t addr in
  if t.slots.(i) <> 0 then t.occupied <- t.occupied - 1;
  t.slots.(i) <- 0;
  t.times.(i) <- 0

let clear t =
  Array.fill t.slots 0 t.size 0;
  Array.fill t.times 0 t.size 0;
  t.occupied <- 0

(* Raw slot access, used by the parallel profiler to migrate signature
   state when a hot address is redistributed to another worker
   (Sec. IV-A). *)
let slot_of_index t i = (t.slots.(i), t.times.(i))

let set_index t i ~payload ~time =
  if t.slots.(i) = 0 && payload <> 0 then t.occupied <- t.occupied + 1
  else if t.slots.(i) <> 0 && payload = 0 then t.occupied <- t.occupied - 1;
  t.slots.(i) <- payload;
  t.times.(i) <- time

let bytes t = t.size * bytes_per_slot
