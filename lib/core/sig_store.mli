(** The signature: a fixed-size hashed slot array holding the packed
    payload and timestamp of the last access that mapped to each slot
    (paper Sec. III-B).  Collisions overwrite — the bounded-memory
    approximation quantified by Table I. *)

type t

val create : ?account:Ddp_util.Mem_account.t * string -> slots:int -> unit -> t
val release : t -> unit
(** Return the accounted bytes (call when discarding a signature). *)

val size : t -> int
val occupied : t -> int

val overwrites : t -> int
(** Sets that landed on an already-occupied slot: the same-address
    update / hash-collision rate the telemetry layer reports (a cheap
    proxy for Eq. (2)'s collision behaviour). *)

val index : t -> int -> int
(** The slot an address hashes to. *)

val probe : t -> addr:int -> int
(** Payload of the slot for [addr]; 0 when empty (membership check). *)

val probe_time : t -> addr:int -> int

val set : t -> addr:int -> payload:int -> time:int -> unit
(** Insertion: overwrites on collision. *)

val remove : t -> addr:int -> unit
(** Variable-lifetime analysis: clear the slot of a freed address (may
    evict a colliding live entry — causes false negatives only). *)

val clear : t -> unit

val slot_of_index : t -> int -> int * int
(** Raw [(payload, time)] of a slot, for redistribution migration. *)

val set_index : t -> int -> payload:int -> time:int -> unit

val bytes : t -> int
val bytes_per_slot : int
