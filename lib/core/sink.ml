(* Sink combinators over Event.hooks: compose what one pass over the
   instrumentation stream feeds.  [tee] lets a single run drive an
   engine, a trace recorder and any number of streaming analyses at
   once; [filter_thread] narrows a stream to selected threads before it
   reaches a consumer; [observe] adapts a per-event callback.

   Hooks are plain labelled closures, so combinators cost one indirect
   call per layer and allocate nothing on the hot path (except
   [observe], which materializes concrete events for its callback). *)

module Event = Ddp_minir.Event

let null = Event.null

let tee a b =
  {
    Event.on_read =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        a.Event.on_read ~addr ~loc ~var ~thread ~time ~locked;
        b.Event.on_read ~addr ~loc ~var ~thread ~time ~locked);
    on_write =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        a.Event.on_write ~addr ~loc ~var ~thread ~time ~locked;
        b.Event.on_write ~addr ~loc ~var ~thread ~time ~locked);
    on_region_enter =
      (fun ~loc ~kind ~thread ~time ->
        a.Event.on_region_enter ~loc ~kind ~thread ~time;
        b.Event.on_region_enter ~loc ~kind ~thread ~time);
    on_region_iter =
      (fun ~loc ~thread ~time ->
        a.Event.on_region_iter ~loc ~thread ~time;
        b.Event.on_region_iter ~loc ~thread ~time);
    on_region_exit =
      (fun ~loc ~end_loc ~kind ~iterations ~thread ~time ->
        a.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time;
        b.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time);
    on_alloc =
      (fun ~base ~len ~var ->
        a.Event.on_alloc ~base ~len ~var;
        b.Event.on_alloc ~base ~len ~var);
    on_free =
      (fun ~base ~len ~var ->
        a.Event.on_free ~base ~len ~var;
        b.Event.on_free ~base ~len ~var);
    on_call =
      (fun ~loc ~func ~thread ~time ->
        a.Event.on_call ~loc ~func ~thread ~time;
        b.Event.on_call ~loc ~func ~thread ~time);
    on_return =
      (fun ~func ~thread ~time ->
        a.Event.on_return ~func ~thread ~time;
        b.Event.on_return ~func ~thread ~time);
    on_thread_end =
      (fun ~thread ->
        a.Event.on_thread_end ~thread;
        b.Event.on_thread_end ~thread);
  }

let tee_all = function
  | [] -> null
  | first :: rest -> List.fold_left tee first rest

(* Allocation events carry no thread id and describe shared state, so
   they always pass through. *)
let filter_thread keep h =
  {
    Event.on_read =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        if keep thread then h.Event.on_read ~addr ~loc ~var ~thread ~time ~locked);
    on_write =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        if keep thread then h.Event.on_write ~addr ~loc ~var ~thread ~time ~locked);
    on_region_enter =
      (fun ~loc ~kind ~thread ~time ->
        if keep thread then h.Event.on_region_enter ~loc ~kind ~thread ~time);
    on_region_iter =
      (fun ~loc ~thread ~time -> if keep thread then h.Event.on_region_iter ~loc ~thread ~time);
    on_region_exit =
      (fun ~loc ~end_loc ~kind ~iterations ~thread ~time ->
        if keep thread then h.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time);
    on_alloc = (fun ~base ~len ~var -> h.Event.on_alloc ~base ~len ~var);
    on_free = (fun ~base ~len ~var -> h.Event.on_free ~base ~len ~var);
    on_call =
      (fun ~loc ~func ~thread ~time -> if keep thread then h.Event.on_call ~loc ~func ~thread ~time);
    on_return = (fun ~func ~thread ~time -> if keep thread then h.Event.on_return ~func ~thread ~time);
    on_thread_end = (fun ~thread -> if keep thread then h.Event.on_thread_end ~thread);
  }

let observe f =
  {
    Event.on_read =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        f (Event.Read { addr; loc; var; thread; time; locked }));
    on_write =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        f (Event.Write { addr; loc; var; thread; time; locked }));
    on_region_enter =
      (fun ~loc ~kind:Event.Loop ~thread ~time -> f (Event.Region_enter { loc; thread; time }));
    on_region_iter = (fun ~loc ~thread ~time -> f (Event.Region_iter { loc; thread; time }));
    on_region_exit =
      (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time ->
        f (Event.Region_exit { loc; end_loc; iterations; thread; time }));
    on_alloc = (fun ~base ~len ~var -> f (Event.Alloc { base; len; var }));
    on_free = (fun ~base ~len ~var -> f (Event.Free { base; len; var }));
    on_call = (fun ~loc ~func ~thread ~time -> f (Event.Call { loc; func; thread; time }));
    on_return = (fun ~func ~thread ~time -> f (Event.Return { func; thread; time }));
    on_thread_end = (fun ~thread -> f (Event.Thread_end { thread }));
  }

(* Telemetry event counting for Engine.with_obs: one branchless counter
   bump per access into the producer's cell (domain 0).  Non-access
   events pass through uncounted — the metrics track Fig. 2's access
   stream, not the region/call bookkeeping. *)
let obs_events obs =
  let module Obs = Ddp_obs.Obs in
  {
    Event.null with
    Event.on_read =
      (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ ->
        Obs.incr obs ~dom:0 Obs.C.events_read);
    on_write =
      (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ ->
        Obs.incr obs ~dom:0 Obs.C.events_write);
  }

let counter () =
  let n = ref 0 in
  let bump () = incr n in
  ( {
      Event.null with
      Event.on_read = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> bump ());
      on_write = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> bump ());
    },
    fun () -> !n )
