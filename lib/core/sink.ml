(* Sink combinators over Event.hooks: compose what one pass over the
   instrumentation stream feeds.  [tee] lets a single run drive an
   engine, a trace recorder and any number of streaming analyses at
   once; [filter_thread] narrows a stream to selected threads before it
   reaches a consumer; [observe] adapts a per-event callback.

   All combinators are built on [Handler], the algebra's
   compose/subscribe layer: fan-out is assembled class-by-class at
   composition time, so a combinator costs one indirect call per layer
   and allocates nothing on the hot path (except [observe], which
   materializes concrete events for its callback). *)

module Event = Ddp_minir.Event
module Handler = Ddp_minir.Handler

let null = Event.null

let tee a b = Handler.fuse [ Handler.of_hooks a; Handler.of_hooks b ]

(* [Handler.fuse [] == Event.null], so [tee_all [] == null] physically. *)
let tee_all sinks = Handler.fuse (List.map Handler.of_hooks sinks)

(* Pass-through policy, per event class:

   - [Memory], [Region], [Sync]: filtered — each event carries the
     thread that produced it.
   - [Frame]: filtered, *including* [on_thread_end] — a consumer that
     never saw thread t's accesses must not receive its retirement
     either (an unmatched thread-end would flush state the consumer
     never built, e.g. in the MT frontend's reorder window).
   - [Alloc]: always passes.  Allocation events carry no thread id and
     describe shared address-space state; dropping them would leave the
     consumer's lifetime tracking blind to memory that filtered threads
     still access. *)
let filter_thread keep h =
  Handler.hooks
    (Handler.make
       ~memory:
         {
           Event.on_read =
             (fun ~addr ~loc ~var ~thread ~time ~locked ->
               if keep thread then h.Event.on_read ~addr ~loc ~var ~thread ~time ~locked);
           on_write =
             (fun ~addr ~loc ~var ~thread ~time ~locked ->
               if keep thread then h.Event.on_write ~addr ~loc ~var ~thread ~time ~locked);
         }
       ~region:
         {
           Event.on_region_enter =
             (fun ~loc ~kind ~thread ~time ->
               if keep thread then h.Event.on_region_enter ~loc ~kind ~thread ~time);
           on_region_iter =
             (fun ~loc ~thread ~time ->
               if keep thread then h.Event.on_region_iter ~loc ~thread ~time);
           on_region_exit =
             (fun ~loc ~end_loc ~kind ~iterations ~thread ~time ->
               if keep thread then
                 h.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time);
         }
       ~frame:
         {
           Event.on_call =
             (fun ~loc ~func ~thread ~time ->
               if keep thread then h.Event.on_call ~loc ~func ~thread ~time);
           on_return =
             (fun ~func ~thread ~time ->
               if keep thread then h.Event.on_return ~func ~thread ~time);
           on_thread_end = (fun ~thread -> if keep thread then h.Event.on_thread_end ~thread);
         }
       ~alloc:(Event.alloc_of h)
       ~sync:
         {
           Event.on_sync =
             (fun ~kind ~obj ~thread ~time ->
               if keep thread then h.Event.on_sync ~kind ~obj ~thread ~time);
         }
       ())

(* The callback adapter as a full-subscription handler: every class is
   materialized, including Sync, so [observe] over a collector stays a
   faithful identity on any event stream. *)
let observe_handler f =
  Handler.make
    ~memory:
      {
        Event.on_read =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            f (Event.Read { addr; loc; var; thread; time; locked }));
        on_write =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            f (Event.Write { addr; loc; var; thread; time; locked }));
      }
    ~region:
      {
        Event.on_region_enter =
          (fun ~loc ~kind:Event.Loop ~thread ~time -> f (Event.Region_enter { loc; thread; time }));
        on_region_iter = (fun ~loc ~thread ~time -> f (Event.Region_iter { loc; thread; time }));
        on_region_exit =
          (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time ->
            f (Event.Region_exit { loc; end_loc; iterations; thread; time }));
      }
    ~frame:
      {
        Event.on_call = (fun ~loc ~func ~thread ~time -> f (Event.Call { loc; func; thread; time }));
        on_return = (fun ~func ~thread ~time -> f (Event.Return { func; thread; time }));
        on_thread_end = (fun ~thread -> f (Event.Thread_end { thread }));
      }
    ~alloc:
      {
        Event.on_alloc = (fun ~base ~len ~var -> f (Event.Alloc { base; len; var }));
        on_free = (fun ~base ~len ~var -> f (Event.Free { base; len; var }));
      }
    ~sync:
      {
        Event.on_sync = (fun ~kind ~obj ~thread ~time -> f (Event.Sync { kind; obj; thread; time }));
      }
    ()

let observe f = Handler.hooks (observe_handler f)

(* Telemetry event counting for Engine.with_obs: one branchless counter
   bump per access into the producer's cell (domain 0).  Subscribes to
   the Memory class only — the metrics track Fig. 2's access stream,
   not the region/call bookkeeping, and unsubscribed classes cost a
   null call. *)
let obs_events obs =
  let module Obs = Ddp_obs.Obs in
  Handler.hooks
    (Handler.make
       ~memory:
         {
           Event.on_read =
             (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ ->
               Obs.incr obs ~dom:0 Obs.C.events_read);
           on_write =
             (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ ->
               Obs.incr obs ~dom:0 Obs.C.events_write);
         }
       ())

let counter () =
  let n = ref 0 in
  let bump () = incr n in
  ( Handler.hooks
      (Handler.make
         ~memory:
           {
             Event.on_read = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> bump ());
             on_write = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> bump ());
           }
         ()),
    fun () -> !n )
