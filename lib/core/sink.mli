(** Sink combinators over {!Ddp_minir.Event.hooks}: compose what one pass
    over the instrumentation stream feeds — an engine, a trace recorder
    and streaming analyses simultaneously.  Built on
    {!Ddp_minir.Handler}, the algebra's compose/subscribe layer. *)

val null : Ddp_minir.Event.hooks

val tee : Ddp_minir.Event.hooks -> Ddp_minir.Event.hooks -> Ddp_minir.Event.hooks
(** Deliver every event to both sinks, left first. *)

val tee_all : Ddp_minir.Event.hooks list -> Ddp_minir.Event.hooks
(** Fan out to every sink in order.  [tee_all [] == null] (physically:
    the empty composition is {!Ddp_minir.Event.null} itself). *)

val filter_thread : (int -> bool) -> Ddp_minir.Event.hooks -> Ddp_minir.Event.hooks
(** Forward only events whose thread satisfies the predicate.
    Per-class policy: [Memory], [Region], [Frame] (including
    thread-end) and [Sync] events are filtered by the thread that
    produced them; [Alloc] events carry no thread id, describe shared
    address-space state, and always pass through. *)

val observe : (Ddp_minir.Event.t -> unit) -> Ddp_minir.Event.hooks
(** Adapt a per-event callback into a sink (materializes concrete
    events for every class; use for analyses, not hot paths). *)

val observe_handler : (Ddp_minir.Event.t -> unit) -> Ddp_minir.Handler.t
(** The same adapter as a handler bundle, for composition with
    {!Ddp_minir.Handler.fuse}. *)

val counter : unit -> Ddp_minir.Event.hooks * (unit -> int)
(** A sink counting read/write accesses (Memory class only), and its
    reader. *)

val obs_events : Ddp_obs.Obs.t -> Ddp_minir.Event.hooks
(** A sink bumping the telemetry hub's [events_read]/[events_write]
    counters (domain 0) per access; used by {!Engine.with_obs}.
    Subscribes to the Memory class only. *)
