(** Sink combinators over {!Ddp_minir.Event.hooks}: compose what one pass
    over the instrumentation stream feeds — an engine, a trace recorder
    and streaming analyses simultaneously. *)

val null : Ddp_minir.Event.hooks

val tee : Ddp_minir.Event.hooks -> Ddp_minir.Event.hooks -> Ddp_minir.Event.hooks
(** Deliver every event to both sinks, left first. *)

val tee_all : Ddp_minir.Event.hooks list -> Ddp_minir.Event.hooks

val filter_thread : (int -> bool) -> Ddp_minir.Event.hooks -> Ddp_minir.Event.hooks
(** Forward only events whose thread satisfies the predicate.
    Allocation events carry no thread and always pass through. *)

val observe : (Ddp_minir.Event.t -> unit) -> Ddp_minir.Event.hooks
(** Adapt a per-event callback into a sink (materializes concrete
    events; use for analyses, not hot paths). *)

val counter : unit -> Ddp_minir.Event.hooks * (unit -> int)
(** A sink counting read/write accesses, and its reader. *)

val obs_events : Ddp_obs.Obs.t -> Ddp_minir.Event.hooks
(** A sink bumping the telemetry hub's [events_read]/[events_write]
    counters (domain 0) per access; used by {!Engine.with_obs}. *)
