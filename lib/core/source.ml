(* The Source abstraction: where an instrumentation stream comes from.

   The paper's reuse story is "collect once, analyze many": the same
   dependence analysis must run over a live instrumented execution or
   over a previously recorded trace.  A source is a value that pushes one
   full stream into a hooks record and reports what it delivered, so any
   {!Engine} can consume either interchangeably. *)

module Event = Ddp_minir.Event
module Interp = Ddp_minir.Interp
module Symtab = Ddp_minir.Symtab
module Trace_file = Ddp_minir.Trace_file

type result = {
  symtab : Symtab.t;
  stats : Interp.stats;
  events : int;  (* instrumentation events delivered (accesses for live runs) *)
}

type t = {
  name : string;
  run : Event.hooks -> result;
}

let live ?sched_seed ?input_seed ?symtab prog =
  {
    name = "live";
    run =
      (fun hooks ->
        (* A caller-provided symtab lets ids be interned ahead of the run
           (interning is idempotent), so a static plan can name variables
           by id before any event exists. *)
        let symtab = match symtab with Some s -> s | None -> Symtab.create () in
        let stats = Interp.run ~hooks ?sched_seed ?input_seed ~symtab prog in
        { symtab; stats; events = stats.Interp.accesses });
  }

(* Replayed traces carry no interpreter statistics, so synthesize the
   Table-I quantities from the events themselves: #addresses from the
   allocation events, "lines" as distinct source locations seen.

   The synthesis must be total over class-sparse streams: a foreign
   trace carries only Memory (and possibly Alloc) events, so every
   quantity needs a well-defined value when its primary class is
   absent.  In particular, a stream with no allocation events derives
   #addresses from the distinct addresses actually accessed instead of
   reporting zero — downstream consumers (the Eq.-(2) collision model,
   reports) divide by it. *)
let stats_of_events events =
  let reads = ref 0 and writes = ref 0 and final_time = ref 0 in
  let allocated = ref false in
  let addrs = Hashtbl.create 256
  and accessed = Hashtbl.create 256
  and lines = Hashtbl.create 64 in
  let tick time = if time > !final_time then final_time := time in
  let loc_time loc time =
    Hashtbl.replace lines loc ();
    tick time
  in
  List.iter
    (fun e ->
      match e with
      | Event.Read { addr; loc; time; _ } ->
        incr reads;
        Hashtbl.replace accessed addr ();
        loc_time loc time
      | Event.Write { addr; loc; time; _ } ->
        incr writes;
        Hashtbl.replace accessed addr ();
        loc_time loc time
      | Event.Alloc { base; len; _ } ->
        allocated := true;
        for a = base to base + len - 1 do
          Hashtbl.replace addrs a ()
        done
      | Event.Region_enter { time; _ }
      | Event.Region_iter { time; _ }
      | Event.Region_exit { time; _ }
      | Event.Call { time; _ }
      | Event.Return { time; _ }
      | Event.Sync { time; _ } ->
        tick time
      | Event.Free _ | Event.Thread_end _ -> ())
    events;
  {
    Interp.reads = !reads;
    writes = !writes;
    accesses = !reads + !writes;
    addresses = (if !allocated then Hashtbl.length addrs else Hashtbl.length accessed);
    final_time = !final_time;
    lines = Hashtbl.length lines;
    sync_stalls = 0;
  }

let of_events ?(name = "events") ?symtab events =
  {
    name;
    run =
      (fun hooks ->
        Event.replay hooks events;
        let symtab = match symtab with Some s -> s | None -> Symtab.create () in
        { symtab; stats = stats_of_events events; events = List.length events });
  }

let of_trace ~path =
  {
    name = "trace:" ^ path;
    run =
      (fun hooks ->
        let events, symtab = Trace_file.load ~path in
        Event.replay hooks events;
        { symtab; stats = stats_of_events events; events = List.length events });
  }

(* Foreign traces (lackey dialect): the algebra's proof of modularity —
   a stream carrying only the Memory+Alloc classes, produced outside
   MiniIR entirely, running through any registered engine unchanged. *)
let of_foreign ~path =
  {
    name = "foreign:" ^ path;
    run =
      (fun hooks ->
        let events, symtab = Ddp_minir.Foreign.load ~path in
        Event.replay hooks events;
        { symtab; stats = stats_of_events events; events = List.length events });
  }

(* Synthetic streams (benches): the generator drives the hooks itself and
   returns the number of accesses it issued. *)
let of_fn ?(name = "generated") f =
  {
    name;
    run =
      (fun hooks ->
        let accesses = f hooks in
        let stats =
          {
            Interp.reads = 0;
            writes = 0;
            accesses;
            addresses = 0;
            final_time = 0;
            lines = 0;
            sync_stalls = 0;
          }
        in
        { symtab = Symtab.create (); stats; events = accesses });
  }
