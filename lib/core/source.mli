(** The Source abstraction: one full instrumentation stream, from a live
    MiniIR interpretation or a recorded trace, delivered into any hooks
    record — so every {!Engine} consumes either interchangeably
    ("collect once, analyze many"). *)

type result = {
  symtab : Ddp_minir.Symtab.t;
  stats : Ddp_minir.Interp.stats;
      (** Interpreter stats for live runs; synthesized from the events for
          replayed traces (addresses from allocations, lines as distinct
          locations seen). *)
  events : int;  (** events delivered (accesses for live runs) *)
}

type t = {
  name : string;
  run : Ddp_minir.Event.hooks -> result;
}

val live :
  ?sched_seed:int ->
  ?input_seed:int ->
  ?symtab:Ddp_minir.Symtab.t ->
  Ddp_minir.Ast.program ->
  t
(** Instrumented interpretation of [prog].  Pass [symtab] to pre-intern
    variable ids (interning is idempotent), e.g. for a static pruning
    plan that must name variables by id before the run. *)

val of_events : ?name:string -> ?symtab:Ddp_minir.Symtab.t -> Ddp_minir.Event.t list -> t
(** Replay a concrete event list. *)

val of_trace : path:string -> t
(** Load and replay a {!Ddp_minir.Trace_file}.  Loading happens when the
    source runs, so errors surface at replay time. *)

val of_foreign : path:string -> t
(** Load and replay a {!Ddp_minir.Foreign} lackey-style trace: a
    class-sparse stream (Memory+Alloc only) consumable by any engine.
    Stats are synthesized totally — no region or allocation events
    still yields well-defined (zero or derived) quantities. *)

val stats_of_events : Ddp_minir.Event.t list -> Ddp_minir.Interp.stats
(** The Table-I quantities synthesized from a concrete event stream;
    total over class-sparse streams (see {!of_foreign}). *)

val of_fn : ?name:string -> (Ddp_minir.Event.hooks -> int) -> t
(** Synthetic stream: the callback drives the hooks itself and returns
    the number of accesses it issued (used by the comparative benches). *)
