(* Bounded lock-free single-producer/single-consumer ring buffer.

   This is the queue of the paper's Fig. 2: the main thread (producer)
   pushes chunks of memory accesses, one dedicated worker (consumer) pops
   them.  Because each queue has exactly one producer and one consumer,
   unsynchronized index caching suffices: the producer owns [tail], the
   consumer owns [head], and each reads the other's index through an
   Atomic (OCaml atomics are SC, giving the release/acquire pairing that
   publishes element writes). *)

type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next index to pop; advanced by the consumer *)
  tail : int Atomic.t;  (* next index to push; advanced by the producer *)
  (* Plain op counters for telemetry.  Single-writer each: the producer
     owns pushes/push_failures, the consumer owns pops/pop_empties.
     They are read only after the domains have joined (op_counts). *)
  mutable pushes : int;
  mutable push_failures : int;
  mutable pops : int;
  mutable pop_empties : int;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ~capacity ~dummy =
  if capacity <= 0 then invalid_arg "Spsc_queue.create: capacity must be positive";
  let cap = next_pow2 capacity 1 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    pushes = 0;
    push_failures = 0;
    pops = 0;
    pop_empties = 0;
  }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let try_push t x =
  let tail = Atomic.get t.tail in
  let head = Atomic.get t.head in
  if tail - head > t.mask then begin
    t.push_failures <- t.push_failures + 1;
    false
  end
  else begin
    t.buf.(tail land t.mask) <- x;
    (* SC store: publishes the element write above. *)
    Atomic.set t.tail (tail + 1);
    t.pushes <- t.pushes + 1;
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  let tail = Atomic.get t.tail in
  if tail = head then begin
    t.pop_empties <- t.pop_empties + 1;
    None
  end
  else begin
    let x = t.buf.(head land t.mask) in
    t.buf.(head land t.mask) <- t.dummy;
    Atomic.set t.head (head + 1);
    t.pops <- t.pops + 1;
    Some x
  end

let is_empty t = length t = 0

(* Spin until there is room; the producer-side backpressure of the
   pipeline. *)
let push_blocking t x =
  while not (try_push t x) do
    Domain.cpu_relax ()
  done

let bytes t = (capacity t + 8) * 8

let op_counts t = (t.pushes, t.push_failures, t.pops, t.pop_empties)
