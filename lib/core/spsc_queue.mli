(** Bounded lock-free single-producer/single-consumer ring buffer: the
    per-worker chunk queue of the paper's parallel design (Fig. 2). *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** Capacity is rounded up to a power of two. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer side only.  [false] when full. *)

val push_blocking : 'a t -> 'a -> unit
(** Spin until pushed. *)

val try_pop : 'a t -> 'a option
(** Consumer side only. *)

val bytes : 'a t -> int

val op_counts : 'a t -> int * int * int * int
(** [(pushes, push_failures, pops, pop_empties)] — telemetry counters.
    Only meaningful once producer and consumer have quiesced. *)
