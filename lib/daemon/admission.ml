(* Admission control: a slot counter and the global queued-batch gauge
   behind atomics, so the accept path and every receiver thread can
   consult the ladder without a shared lock. *)

module Json = Ddp_obs.Json

type t = {
  max_sessions : int;
  degrade_watermark : int;
  active : int Atomic.t;
  queued : int Atomic.t;
  admitted : int Atomic.t;
  rejected : int Atomic.t;
  draining : bool Atomic.t;
}

let create ~max_sessions ~degrade_watermark () =
  {
    max_sessions = max 1 max_sessions;
    degrade_watermark = max 1 degrade_watermark;
    active = Atomic.make 0;
    queued = Atomic.make 0;
    admitted = Atomic.make 0;
    rejected = Atomic.make 0;
    draining = Atomic.make false;
  }

type verdict = Admit | Busy of { retry_after_ms : int; draining : bool }

(* Crude but monotone: the fuller the daemon, the longer the hint.  The
   client treats it as a floor under its own jittered backoff. *)
let retry_after_ms t =
  50 + (25 * Atomic.get t.active) + (5 * Atomic.get t.queued)

let rec try_admit t =
  if Atomic.get t.draining then begin
    Atomic.incr t.rejected;
    Busy { retry_after_ms = retry_after_ms t; draining = true }
  end
  else
    let a = Atomic.get t.active in
    if a >= t.max_sessions then begin
      Atomic.incr t.rejected;
      Busy { retry_after_ms = retry_after_ms t; draining = false }
    end
    else if Atomic.compare_and_set t.active a (a + 1) then begin
      Atomic.incr t.admitted;
      Admit
    end
    else try_admit t (* lost the race; re-examine *)

let release t = Atomic.decr t.active
let active t = Atomic.get t.active
let admitted_total t = Atomic.get t.admitted
let rejected_total t = Atomic.get t.rejected
let queue_delta t d = ignore (Atomic.fetch_and_add t.queued d : int)
let queued t = Atomic.get t.queued
let degraded t = Atomic.get t.queued >= t.degrade_watermark
let begin_drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining

let status_json t =
  Json.Obj
    [
      ("active", Json.Int (active t));
      ("max_sessions", Json.Int t.max_sessions);
      ("queued_batches", Json.Int (queued t));
      ("degrade_watermark", Json.Int t.degrade_watermark);
      ("degraded", Json.Bool (degraded t));
      ("draining", Json.Bool (draining t));
      ("admitted_total", Json.Int (admitted_total t));
      ("rejected_total", Json.Int (rejected_total t));
    ]
