(** Admission control and the daemon-level degradation ladder.

    Three rungs, crossed in order as load grows:
    {ol
    {- {b Normal} — every session runs the backpressure policy it asked
       for.}
    {- {b Degraded} — the global queued-batch gauge is at or above the
       watermark: tenants whose policy is [Block] are escalated to
       [Sample] so the daemon sheds load instead of wedging receivers
       (see {!Tenant}).}
    {- {b Refusing} — all session slots are taken (or the daemon is
       draining): HELLO gets a typed [BUSY retry-after-ms] reply and
       nobody already admitted pays anything.}} *)

type t

val create : max_sessions:int -> degrade_watermark:int -> unit -> t

type verdict = Admit | Busy of { retry_after_ms : int; draining : bool }

val try_admit : t -> verdict
(** Take a session slot if one is free and the daemon isn't draining. *)

val release : t -> unit
(** Give a slot back (session closed, however it ended). *)

val active : t -> int
val admitted_total : t -> int
val rejected_total : t -> int

val queue_delta : t -> int -> unit
(** Tenants report enqueue (+1) / dequeue (-1) of batches here. *)

val queued : t -> int
(** Global queued-batch gauge. *)

val degraded : t -> bool
(** Rung 2: gauge at or above the watermark. *)

val begin_drain : t -> unit
(** Rung 3 forever: stop admitting (SIGTERM drain). *)

val draining : t -> bool

val status_json : t -> Ddp_obs.Json.t
