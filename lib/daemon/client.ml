(* ddpd client: blocking calls, typed errors, seeded backoff. *)

module Config = Ddp_core.Config
module Dep = Ddp_core.Dep
module Dep_store = Ddp_core.Dep_store
module Health = Ddp_core.Health
module Trace_file = Ddp_minir.Trace_file
module Json = Ddp_obs.Json

type error = Unavailable of string | Refused of string | Protocol of string

let error_to_string = function
  | Unavailable s -> "daemon unavailable: " ^ s
  | Refused s -> "daemon refused: " ^ s
  | Protocol s -> "protocol error: " ^ s

type report = {
  session : int;
  complete : bool;
  reasons : string list;
  worker_faults : int;
  loss : Health.loss;
  deps : (Dep.t * int) list;
  distinct : int;
  occurrences : int;
  events_received : int;
  events_processed : int;
  escalations : int;
  counters : (string * int) list;
  elapsed : float;
  raw : Json.t;
}

let dep_key_set r =
  List.fold_left (fun acc (d, _) -> Dep_store.Key_set.add d acc) Dep_store.Key_set.empty r.deps

(* Full jitter: uniform over (0, min cap (base * 2^attempt)), floored by
   the server's retry-after hint.  Full jitter desynchronizes a thundering
   herd of rejected clients better than equal-jitter does. *)
let backoff_ms ~base_ms ~cap_ms ~rng ~floor_ms attempt =
  let ceiling = min cap_ms (base_ms * (1 lsl min attempt 20)) in
  max floor_ms (1 + Random.State.int rng (max 1 ceiling))

let policy_string = function
  | Config.Block -> "block"
  | Config.Drop_new -> "drop-new"
  | Config.Drop_oldest -> "drop-oldest"
  | Config.Sample p -> Printf.sprintf "sample:%g" p

(* -- connection with retry -------------------------------------------------- *)

let connect socket =
  (* daemon gone mid-write = typed error, not a SIGPIPE death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Ok fd
  with Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unix.error_message e)

(* Dial until admitted: retry connect failures and BUSY replies with
   jittered backoff; [hello] is re-sent on every attempt.  Returns the
   connected fd and the ADMIT key-values. *)
let dial ~retries ~base_ms ~cap_ms ~rng ~reply_timeout ~socket hello =
  let rec attempt i =
    let retry reason floor_ms =
      if i >= retries then Error (Unavailable (Printf.sprintf "%s after %d attempts" reason (i + 1)))
      else begin
        Thread.delay (float_of_int (backoff_ms ~base_ms ~cap_ms ~rng ~floor_ms i) /. 1000.0);
        attempt (i + 1)
      end
    in
    match connect socket with
    | Error msg -> retry (Printf.sprintf "connect failed (%s)" msg) 0
    | Ok fd -> (
      let give_up reason =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        reason
      in
      match
        Wire.write_frame fd Wire.Hello hello;
        Wire.read_frame ~deadline:(Unix.gettimeofday () +. reply_timeout) fd
      with
      | Some (Wire.Admit, payload) -> Ok (fd, Wire.kv_decode payload)
      | Some (Wire.Busy, payload) ->
        let kvs = try Wire.kv_decode payload with Wire.Protocol_error _ -> [] in
        let floor_ms =
          match Option.bind (Wire.kv_get kvs "retry-after-ms") int_of_string_opt with
          | Some ms when ms >= 0 -> ms
          | _ -> 0
        in
        ignore (give_up () : unit);
        retry "busy" floor_ms
      | Some (Wire.Err, msg) -> Error (give_up (Refused msg))
      | Some (ty, _) ->
        Error (give_up (Protocol (Printf.sprintf "unexpected %s reply to HELLO" (Wire.frame_name ty))))
      | None -> ignore (give_up () : unit); retry "connection closed" 0
      | exception Wire.Timeout -> ignore (give_up () : unit); retry "reply timeout" 0
      | exception Wire.Protocol_error msg -> Error (give_up (Protocol msg))
      | exception Unix.Unix_error (e, _, _) ->
        ignore (give_up () : unit);
        retry (Printf.sprintf "i/o error (%s)" (Unix.error_message e)) 0)
  in
  attempt 0

(* -- report parsing --------------------------------------------------------- *)

let parse_failure fmt = Printf.ksprintf (fun s -> Error (Protocol s)) fmt

let kind_of_string = function
  | "RAW" -> Some Dep.RAW
  | "WAR" -> Some Dep.WAR
  | "WAW" -> Some Dep.WAW
  | "INIT" -> Some Dep.INIT
  | _ -> None

let dep_of_json = function
  | Json.List [ Json.Str k; Json.Int sink; Json.Int src; Json.Bool race; Json.Int count ] -> (
    match kind_of_string k with
    | Some kind -> Some ({ Dep.kind; sink; src; race }, count)
    | None -> None)
  | _ -> None

let parse_report raw =
  let int k = Option.bind (Json.member k raw) Json.to_int in
  let req_int k = match int k with Some v -> Ok v | None -> parse_failure "report missing %S" k in
  let ( let* ) = Result.bind in
  let* session = req_int "session" in
  let* complete =
    match Json.member "complete" raw with
    | Some (Json.Bool b) -> Ok b
    | _ -> parse_failure "report missing \"complete\""
  in
  let reasons =
    match Option.bind (Json.member "reasons" raw) Json.to_list with
    | Some l -> List.filter_map Json.to_str l
    | None -> []
  in
  let loss_field k =
    match Option.bind (Json.member "loss" raw) (Json.member k) with
    | Some j -> Option.value (Json.to_int j) ~default:0
    | None -> 0
  in
  let loss =
    {
      Health.dropped_chunks = loss_field "dropped_chunks";
      dropped_events = loss_field "dropped_events";
      dead_partitions = loss_field "dead_partitions";
      unprocessed_chunks = loss_field "unprocessed_chunks";
    }
  in
  let* deps =
    match Option.bind (Json.member "deps" raw) Json.to_list with
    | None -> parse_failure "report missing \"deps\""
    | Some l -> (
      let parsed = List.map dep_of_json l in
      if List.mem None parsed then parse_failure "malformed dep entry in report"
      else Ok (List.filter_map Fun.id parsed))
  in
  let counters =
    match Json.member "counters" raw with
    | Some (Json.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v)) kvs
    | _ -> []
  in
  Ok
    {
      session;
      complete;
      reasons;
      worker_faults = Option.value (int "worker_faults") ~default:0;
      loss;
      deps;
      distinct = Option.value (int "distinct") ~default:(List.length deps);
      occurrences = Option.value (int "occurrences") ~default:0;
      events_received = Option.value (int "events_received") ~default:0;
      events_processed = Option.value (int "events_processed") ~default:0;
      escalations = Option.value (int "escalations") ~default:0;
      counters;
      elapsed =
        (match Option.bind (Json.member "elapsed" raw) Json.to_float with
        | Some f -> f
        | None -> 0.0);
      raw;
    }

(* -- public calls ----------------------------------------------------------- *)

let default_seed () = Hashtbl.hash (Unix.gettimeofday (), Unix.getpid ())

let submit ?(retries = 6) ?(base_ms = 25) ?(cap_ms = 2000) ?seed ?policy ?deadline ?inject_crash
    ?(chunk_bytes = 64 * 1024) ?(reply_timeout = 60.0) ~socket ~name ~mode ~events ~symtab () =
  let rng = Random.State.make [| (match seed with Some s -> s | None -> default_seed ()) |] in
  let hello =
    Wire.kv_encode
      (List.concat
         [
           [ ("name", name); ("mode", mode) ];
           (match policy with Some p -> [ ("policy", policy_string p) ] | None -> []);
           (match deadline with Some d -> [ ("deadline", Printf.sprintf "%g" d) ] | None -> []);
           (match inject_crash with
           | Some n when n > 0 -> [ ("inject-crash", string_of_int n) ]
           | _ -> []);
           (match seed with Some s -> [ ("seed", string_of_int s) ] | None -> []);
         ])
  in
  (* Encode before dialing: holding an admission slot (and the daemon's
     idle timer) while serializing a large trace would be self-inflicted
     starvation. *)
  let buf = Buffer.create 4096 in
  Trace_file.to_buffer buf events symtab;
  let bytes = Buffer.contents buf in
  match dial ~retries ~base_ms ~cap_ms ~rng ~reply_timeout ~socket hello with
  | Error e -> Error e
  | Ok (fd, _admit) ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let chunk = max 1 chunk_bytes in
    let read_report () =
      match Wire.read_frame ~deadline:(Unix.gettimeofday () +. reply_timeout) fd with
      | Some (Wire.Report, payload) -> (
        match Json.parse payload with
        | raw -> parse_report raw
        | exception Json.Parse_error msg -> Error (Protocol ("bad report JSON: " ^ msg)))
      | Some (Wire.Err, msg) -> Error (Refused msg)
      | Some (ty, _) ->
        Error (Protocol (Printf.sprintf "unexpected %s instead of REPORT" (Wire.frame_name ty)))
      | None -> Error (Protocol "daemon closed the connection before the report")
      | exception Wire.Timeout -> Error (Protocol "timed out waiting for the report")
      | exception Wire.Protocol_error msg -> Error (Protocol msg)
      | exception Unix.Unix_error (e, _, _) -> Error (Protocol ("i/o error: " ^ Unix.error_message e))
    in
    let stream () =
      let off = ref 0 in
      while !off < String.length bytes do
        let n = min chunk (String.length bytes - !off) in
        Wire.write_frame fd Wire.Data (String.sub bytes !off n);
        off := !off + n
      done;
      Wire.write_frame fd Wire.Fin ""
    in
    (match stream () with
    | () -> read_report ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      (* The daemon aborted the session mid-stream (deadline blown,
         corrupt frame, drain) and closed its end — but it sends the
         final Partial REPORT before closing, and those bytes are still
         sitting in our receive buffer.  Salvage the report; only a
         connection with nothing to read is a protocol error. *)
      read_report ()
    | exception Wire.Protocol_error msg -> Error (Protocol msg)
    | exception Unix.Unix_error (e, _, _) -> Error (Protocol ("i/o error: " ^ Unix.error_message e)))

let status ?(retries = 3) ?(base_ms = 25) ?(cap_ms = 1000) ?seed ?(reply_timeout = 10.0) ~socket () =
  let rng = Random.State.make [| (match seed with Some s -> s | None -> default_seed ()) |] in
  let rec attempt i =
    let retry reason =
      if i >= retries then Error (Unavailable (Printf.sprintf "%s after %d attempts" reason (i + 1)))
      else begin
        Thread.delay (float_of_int (backoff_ms ~base_ms ~cap_ms ~rng ~floor_ms:0 i) /. 1000.0);
        attempt (i + 1)
      end
    in
    match connect socket with
    | Error msg -> retry (Printf.sprintf "connect failed (%s)" msg)
    | Ok fd -> (
      Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      match
        Wire.write_frame fd Wire.Status_req "";
        Wire.read_frame ~deadline:(Unix.gettimeofday () +. reply_timeout) fd
      with
      | Some (Wire.Status_reply, payload) -> (
        match Json.parse payload with
        | j -> Ok j
        | exception Json.Parse_error msg -> Error (Protocol ("bad status JSON: " ^ msg)))
      | Some (Wire.Err, msg) -> Error (Refused msg)
      | Some (ty, _) ->
        Error (Protocol (Printf.sprintf "unexpected %s reply to STATUS" (Wire.frame_name ty)))
      | None -> Error (Protocol "daemon closed the connection before the status reply")
      | exception Wire.Timeout -> Error (Protocol "timed out waiting for status")
      | exception Wire.Protocol_error msg -> Error (Protocol msg)
      | exception Unix.Unix_error (e, _, _) -> Error (Protocol ("i/o error: " ^ Unix.error_message e)))
  in
  attempt 0
