(** Client side of [ddpd-wire/1]: submit a trace for profiling, scrape
    status.

    Connect failures and [BUSY] replies are retried with capped
    exponential backoff plus full jitter (seeded, so tests are
    deterministic); a server-supplied [retry-after-ms] hint is honored
    as a floor under the jittered delay.  Every other failure is a
    typed error, never an exception. *)

type error =
  | Unavailable of string
      (** could not get admitted: connect failures / BUSY, retries
          exhausted.  The payload says which and how many attempts. *)
  | Refused of string  (** the daemon replied ERR (e.g. unknown mode) *)
  | Protocol of string  (** framing violation or malformed reply *)

val error_to_string : error -> string

type report = {
  session : int;
  complete : bool;
  reasons : string list;
  worker_faults : int;
  loss : Ddp_core.Health.loss;
  deps : (Ddp_core.Dep.t * int) list;
  distinct : int;
  occurrences : int;
  events_received : int;
  events_processed : int;
  escalations : int;
  counters : (string * int) list;
  elapsed : float;
  raw : Ddp_obs.Json.t;  (** the whole ddpd-report/1 document *)
}

val dep_key_set : report -> Ddp_core.Dep_store.Key_set.t
(** For diffing a daemon report against a batch run's
    {!Ddp_core.Dep_store.key_set}. *)

val backoff_ms : base_ms:int -> cap_ms:int -> rng:Random.State.t -> floor_ms:int -> int -> int
(** [backoff_ms ~base_ms ~cap_ms ~rng ~floor_ms attempt]: full-jitter
    delay for the given 0-based attempt —
    [max floor (uniform (0, min cap (base * 2^attempt)))].  Exposed for
    tests. *)

val submit :
  ?retries:int ->
  ?base_ms:int ->
  ?cap_ms:int ->
  ?seed:int ->
  ?policy:Ddp_core.Config.backpressure ->
  ?deadline:float ->
  ?inject_crash:int ->
  ?chunk_bytes:int ->
  ?reply_timeout:float ->
  socket:string ->
  name:string ->
  mode:string ->
  events:Ddp_minir.Event.t list ->
  symtab:Ddp_minir.Symtab.t ->
  unit ->
  (report, error) result
(** Encode the events as a v2 trace, stream it in [chunk_bytes] DATA
    frames (default 64 KiB; small values exercise arbitrary re-framing)
    and return the parsed REPORT.  [inject_crash] asks the daemon to arm
    a crash budget against this very session (chaos testing). *)

val status :
  ?retries:int ->
  ?base_ms:int ->
  ?cap_ms:int ->
  ?seed:int ->
  ?reply_timeout:float ->
  socket:string ->
  unit ->
  (Ddp_obs.Json.t, error) result
(** Fetch the [ddpd-status/1] document. *)
