(* Fixed domain pool with a generation-counted sleep: a worker that
   scans the whole rotation without finding work re-checks the
   generation under the lock before parking, so a wake that raced with
   the scan is never lost. *)

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  mutable tenants : Tenant.t list;  (* rotation, newest last *)
  mutable generation : int;  (* bumped on every wake *)
  mutable stop : bool;
  rr : int Atomic.t;  (* global scan offset: fairness across workers *)
  mutable domains : unit Domain.t list;
  n_workers : int;
}

let wake t =
  Mutex.lock t.mu;
  t.generation <- t.generation + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let snapshot t =
  Mutex.lock t.mu;
  let ts = t.tenants and g = t.generation and stop = t.stop in
  Mutex.unlock t.mu;
  (ts, g, stop)

(* One scan over the rotation, starting at a rotating offset so workers
   spread over tenants instead of convoying on the first one.  One
   batch per tenant per visit = round-robin fairness. *)
let scan t ~worker tenants =
  let arr = Array.of_list tenants in
  let n = Array.length arr in
  if n = 0 then false
  else begin
    let start = Atomic.fetch_and_add t.rr 1 in
    let did = ref false in
    for i = 0 to n - 1 do
      let tenant = arr.((start + i) mod n) in
      if Tenant.pool_step tenant ~worker then did := true
    done;
    !did
  end

let worker_loop t ~worker =
  let parked_gen = ref (-1) in
  let running = ref true in
  while !running do
    let tenants, gen, stop = snapshot t in
    if stop then running := false
    else if scan t ~worker tenants then parked_gen := -1
    else begin
      (* nothing to do: park until the generation moves *)
      ignore !parked_gen;
      Mutex.lock t.mu;
      while t.generation = gen && not t.stop do
        Condition.wait t.cond t.mu
      done;
      Mutex.unlock t.mu
    end
  done

let create ~workers () =
  let n = max 1 workers in
  let t =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      tenants = [];
      generation = 0;
      stop = false;
      rr = Atomic.make 0;
      domains = [];
      n_workers = n;
    }
  in
  t.domains <- List.init n (fun i -> Domain.spawn (fun () -> worker_loop t ~worker:i));
  t

let add t tenant =
  Mutex.lock t.mu;
  t.tenants <- t.tenants @ [ tenant ];
  t.generation <- t.generation + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu

let remove t tenant =
  Mutex.lock t.mu;
  t.tenants <- List.filter (fun x -> x != tenant) t.tenants;
  Mutex.unlock t.mu

let shutdown t =
  Mutex.lock t.mu;
  let doms = t.domains in
  t.domains <- [];
  t.stop <- true;
  t.generation <- t.generation + 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  List.iter Domain.join doms

let workers t = t.n_workers
