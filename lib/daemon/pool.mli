(** The shared worker pool: W domains, fixed at daemon start, serving
    every admitted tenant round-robin — one batch per visit, so a deep
    queue cannot monopolize a worker.

    Workers never abort a tenant themselves and never see each other's
    tenants mid-batch: all engine access goes through
    {!Tenant.pool_step}'s busy CAS, and any exception a step raises is
    contained there.  An idle pool parks on a condition variable;
    {!wake} (called by tenants on enqueue) and {!shutdown} unpark it. *)

type t

val create : workers:int -> unit -> t
(** Spawns [max 1 workers] domains immediately. *)

val add : t -> Tenant.t -> unit
(** Enter a tenant into the rotation. *)

val remove : t -> Tenant.t -> unit
(** Drop a tenant from the rotation (it no longer yields work anyway
    once closed; this just keeps the scan short). *)

val wake : t -> unit

val shutdown : t -> unit
(** Stop and join all workers.  Idempotent.  Tenants still in rotation
    are left untouched (the server finalizes them separately). *)

val workers : t -> int
