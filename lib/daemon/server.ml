(* The daemon: admission -> tenant -> pool, glued to sockets.

   Threading model: one accept thread (select with a short tick so a
   stop request is noticed), one receiver thread per connection, W pool
   domains.  The receiver thread is the tenant's supervisor: it owns
   the socket, the decode path and finalization, so a misbehaving
   client damages exactly the thread and tenant dedicated to it. *)

module Config = Ddp_core.Config
module Fault = Ddp_core.Fault
module Json = Ddp_obs.Json

type config = {
  socket_path : string;
  workers : int;
  max_sessions : int;
  queue_budget : int;
  batch_size : int;
  idle_timeout : float;
  session_deadline : float option;
  degrade_watermark : int;
  drain_grace : float;
  metrics_out : string option;
  log : string -> unit;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    max_sessions = 8;
    queue_budget = 64;
    batch_size = 512;
    idle_timeout = 10.0;
    session_deadline = None;
    degrade_watermark = 256;
    drain_grace = 5.0;
    metrics_out = None;
    log = (fun _ -> ());
  }

type conn = {
  fd : Unix.file_descr;
  mutable tenant : Tenant.t option;  (* set once admitted *)
  thread_id : int;
}

type t = {
  cfg : config;
  lfd : Unix.file_descr;
  admission : Admission.t;
  pool : Pool.t;
  mu : Mutex.t;  (* conns / closed / next_id / threads *)
  mutable next_id : int;
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable closed_history : Json.t list;  (* newest first, bounded *)
  mutable accept_thread : Thread.t option;
  stop_requested : bool Atomic.t;
  mutable drained : bool;  (* stop () completed *)
  started : float;
}

let closed_history_cap = 32

let status_json t =
  Mutex.lock t.mu;
  let sessions = List.filter_map (fun c -> c.tenant) t.conns in
  let closed = t.closed_history in
  Mutex.unlock t.mu;
  Json.Obj
    [
      ("schema", Json.Str "ddpd-status/1");
      ("uptime", Json.Float (Ddp_util.Clock.now () -. t.started));
      ("workers", Json.Int (Pool.workers t.pool));
      ("admission", Admission.status_json t.admission);
      ("sessions", Json.List (List.map Tenant.status_json sessions));
      ("closed", Json.List closed);
    ]

(* -- per-connection handling ------------------------------------------------ *)

let closed_entry tenant (r : Tenant.result) =
  Json.Obj
    ([
       ("session", Json.Int (Tenant.id tenant));
       ("name", Json.Str (Tenant.name tenant));
       ("mode", Json.Str (Tenant.mode tenant));
     ]
    @
    match Tenant.result_json tenant r with
    | Json.Obj fields ->
      List.filter (fun (k, _) -> List.mem k [ "complete"; "reasons"; "loss"; "distinct" ]) fields
    | _ -> [])

let record_closed t tenant r =
  Mutex.lock t.mu;
  t.closed_history <-
    (let h = closed_entry tenant r :: t.closed_history in
     if List.length h > closed_history_cap then List.filteri (fun i _ -> i < closed_history_cap) h
     else h);
  Mutex.unlock t.mu

(* Finalize and send the REPORT if the peer is still writable; a dead
   peer only loses its own report. *)
let finish_and_report t conn tenant =
  let r = Tenant.finalize tenant in
  (try Wire.write_frame conn.fd Wire.Report (Json.to_string (Tenant.result_json tenant r))
   with Unix.Unix_error _ | Sys_error _ -> ());
  record_closed t tenant r;
  t.cfg.log
    (Printf.sprintf "session %d (%s): %s" (Tenant.id tenant) (Tenant.name tenant)
       (Ddp_core.Health.to_string r.Tenant.health))

let parse_hello t payload =
  let kvs = Wire.kv_decode payload in
  let get k = Wire.kv_get kvs k in
  let name = Option.value (get "name") ~default:"anon" in
  let mode = Option.value (get "mode") ~default:"serial" in
  let seed =
    match get "seed" with Some s -> int_of_string_opt s | None -> None
  in
  let backpressure =
    match get "policy" with
    | None | Some "block" -> Config.Block
    | Some "drop-new" -> Config.Drop_new
    | Some "drop-oldest" -> Config.Drop_oldest
    | Some s when String.length s > 7 && String.sub s 0 7 = "sample:" -> (
      match float_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some p when p >= 0.0 && p <= 1.0 -> Config.Sample p
      | _ -> raise (Wire.Protocol_error (Printf.sprintf "bad policy %S" s)))
    | Some s -> raise (Wire.Protocol_error (Printf.sprintf "bad policy %S" s))
  in
  let deadline =
    match get "deadline" with
    | Some s -> (
      match float_of_string_opt s with
      | Some d when d > 0.0 -> Some d
      | _ -> raise (Wire.Protocol_error (Printf.sprintf "bad deadline %S" s)))
    | None -> t.cfg.session_deadline
  in
  let faults =
    match get "inject-crash" with
    | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> Some (Fault.create ~crashes:n ())
      | _ -> None)
    | None -> None
  in
  let config =
    { Config.default with Config.backpressure; seed = Option.value seed ~default:Config.default.Config.seed }
  in
  (name, mode, config, deadline, faults)

let fresh_id t =
  Mutex.lock t.mu;
  let id = t.next_id in
  t.next_id <- id + 1;
  Mutex.unlock t.mu;
  id

let handle_session t conn tenant deadline_abs =
  let idle () = Unix.gettimeofday () +. t.cfg.idle_timeout in
  let frame_deadline () =
    match deadline_abs with None -> idle () | Some d -> Float.min (idle ()) d
  in
  let stall_seconds () =
    match deadline_abs with
    | Some d when Unix.gettimeofday () >= d -> (
      match t.cfg.session_deadline with Some s -> s | None -> t.cfg.idle_timeout)
    | _ -> t.cfg.idle_timeout
  in
  let rec loop () =
    match Wire.read_frame ~deadline:(frame_deadline ()) conn.fd with
    | Some (Wire.Data, bytes) -> (
      match Tenant.feed_data tenant bytes with
      | Ok () -> if Tenant.aborted tenant then finish_and_report t conn tenant else loop ()
      | Error _ -> finish_and_report t conn tenant)
    | Some (Wire.Fin, _) ->
      (match Tenant.finish_stream tenant with Ok () | Error _ -> ());
      finish_and_report t conn tenant
    | Some (Wire.Status_req, _) ->
      (* live mid-session scrape on the same connection *)
      (try Wire.write_frame conn.fd Wire.Status_reply (Json.to_string (status_json t))
       with Unix.Unix_error _ | Sys_error _ -> ());
      loop ()
    | Some (ty, _) ->
      Tenant.abort tenant (Tenant.Corrupt (Printf.sprintf "unexpected %s frame" (Wire.frame_name ty)));
      finish_and_report t conn tenant
    | None ->
      (* EOF before FIN: the peer vanished; salvage for the ledger even
         though nobody is listening for the report *)
      Tenant.abort tenant Tenant.Disconnected;
      let r = Tenant.finalize tenant in
      record_closed t tenant r
    | exception Wire.Timeout ->
      Tenant.abort tenant (Tenant.Stalled (stall_seconds ()));
      finish_and_report t conn tenant
    | exception Wire.Protocol_error msg ->
      Tenant.abort tenant (Tenant.Corrupt msg);
      finish_and_report t conn tenant
  in
  loop ()

let handle_conn t conn =
  let finally () =
    (match conn.tenant with
    | Some tenant ->
      Pool.remove t.pool tenant;
      Admission.release t.admission
    | None -> ());
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.mu;
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    Mutex.unlock t.mu
  in
  Fun.protect ~finally @@ fun () ->
  match Wire.read_frame ~deadline:(Unix.gettimeofday () +. t.cfg.idle_timeout) conn.fd with
  | None -> ()
  | Some (Wire.Status_req, _) ->
    Wire.write_frame conn.fd Wire.Status_reply (Json.to_string (status_json t))
  | Some (Wire.Hello, payload) -> (
    match parse_hello t payload with
    | exception Wire.Protocol_error msg -> Wire.write_frame conn.fd Wire.Err msg
    | name, mode, config, deadline, faults -> (
      match Admission.try_admit t.admission with
      | Admission.Busy { retry_after_ms; draining } ->
        Wire.write_frame conn.fd Wire.Busy
          (Wire.kv_encode
             [
               ("retry-after-ms", string_of_int retry_after_ms);
               ("draining", if draining then "1" else "0");
             ])
      | Admission.Admit -> (
        match
          Tenant.create ~id:(fresh_id t) ~name ~mode ~config ~queue_budget:t.cfg.queue_budget
            ~batch_size:t.cfg.batch_size ?faults
            ~degraded:(fun () -> Admission.degraded t.admission)
            ~on_queue_delta:(Admission.queue_delta t.admission)
            ~on_enqueue:(fun () -> Pool.wake t.pool)
            ()
        with
        | exception Invalid_argument msg ->
          Admission.release t.admission;
          Wire.write_frame conn.fd Wire.Err msg
        | tenant ->
          conn.tenant <- Some tenant;
          Pool.add t.pool tenant;
          Wire.write_frame conn.fd Wire.Admit
            (Wire.kv_encode [ ("session", string_of_int (Tenant.id tenant)) ]);
          let deadline_abs = Option.map (fun d -> Unix.gettimeofday () +. d) deadline in
          handle_session t conn tenant deadline_abs)))
  | Some (ty, _) ->
    Wire.write_frame conn.fd Wire.Err
      (Printf.sprintf "expected HELLO or STATUS, got %s" (Wire.frame_name ty))
  | exception Wire.Timeout -> ()
  | exception Wire.Protocol_error msg -> (
    try Wire.write_frame conn.fd Wire.Err msg with Unix.Unix_error _ | Sys_error _ -> ())

(* -- lifecycle -------------------------------------------------------------- *)

let accept_loop t =
  let tid = ref 0 in
  while not (Atomic.get t.stop_requested) do
    match Unix.select [ t.lfd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept t.lfd with
      | fd, _ ->
        incr tid;
        let conn = { fd; tenant = None; thread_id = !tid } in
        let th = Thread.create (fun () -> try handle_conn t conn with _ -> ()) () in
        Mutex.lock t.mu;
        t.conns <- conn :: t.conns;
        t.threads <- th :: t.threads;
        Mutex.unlock t.mu
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start cfg =
  (* A peer that dies mid-write must surface as EPIPE on that one
     connection, never as a process-killing SIGPIPE: one dead client
     taking down the daemon would be the exact cross-tenant failure
     this whole module exists to prevent. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen lfd 64
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      lfd;
      admission = Admission.create ~max_sessions:cfg.max_sessions ~degrade_watermark:cfg.degrade_watermark ();
      pool = Pool.create ~workers:cfg.workers ();
      mu = Mutex.create ();
      next_id = 1;
      conns = [];
      threads = [];
      closed_history = [];
      accept_thread = None;
      stop_requested = Atomic.make false;
      drained = false;
      started = Ddp_util.Clock.now ();
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  cfg.log (Printf.sprintf "ddpd listening on %s (%d workers, %d session slots)" cfg.socket_path
       cfg.workers cfg.max_sessions);
  t

let flush_metrics t =
  match t.cfg.metrics_out with
  | None -> ()
  | Some path ->
    (* crash-safe spool: a stop interrupted mid-write never leaves a
       truncated metrics file behind *)
    let tf = Ddp_util.Tmp_file.create ~path in
    (try
       output_string (Ddp_util.Tmp_file.oc tf) (Json.to_string (status_json t));
       output_char (Ddp_util.Tmp_file.oc tf) '\n';
       Ddp_util.Tmp_file.commit tf
     with e ->
       Ddp_util.Tmp_file.abort tf;
       raise e)

let request_stop t = Atomic.set t.stop_requested true

let stopping t = Atomic.get t.stop_requested

let stop t =
  Atomic.set t.stop_requested true;
  Mutex.lock t.mu;
  let already = t.drained in
  if not already then t.drained <- true;
  Mutex.unlock t.mu;
  if not already then begin
    Admission.begin_drain t.admission;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.lfd with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
    (* let in-flight sessions finish naturally *)
    let give_up = Unix.gettimeofday () +. t.cfg.drain_grace in
    while Admission.active t.admission > 0 && Unix.gettimeofday () < give_up do
      Thread.delay 0.02
    done;
    (* force-abort stragglers: they still get a salvaged Partial report *)
    Mutex.lock t.mu;
    let stragglers = t.conns in
    Mutex.unlock t.mu;
    List.iter
      (fun c ->
        (match c.tenant with
        | Some tenant -> Tenant.abort tenant (Tenant.Stalled t.cfg.drain_grace)
        | None -> ());
        try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      stragglers;
    Mutex.lock t.mu;
    let threads = t.threads in
    t.threads <- [];
    Mutex.unlock t.mu;
    List.iter (fun th -> try Thread.join th with _ -> ()) threads;
    Pool.shutdown t.pool;
    (try flush_metrics t with _ -> ());
    t.cfg.log "ddpd drained"
  end

let wait t =
  while not (Atomic.get t.stop_requested) do
    Thread.delay 0.05
  done;
  stop t
