(** The daemon itself: accept loop on a Unix-domain socket, one
    receiver thread per connection, one shared {!Pool} of worker
    domains, {!Admission} in front.

    Per-connection supervision: every way a session can go wrong —
    corrupt or truncated trace bytes, protocol junk, an engine crash, a
    stall past the idle/session deadline, a mid-stream disconnect —
    aborts {e that} tenant with a [Partial] verdict (the REPORT is still
    sent whenever the peer can be written to), releases its admission
    slot, and leaves every other session untouched.

    Graceful drain ({!stop}, wired to SIGTERM by the CLI): stop
    admitting (HELLO answers BUSY with [draining=1]), give in-flight
    sessions [drain_grace] seconds to finish naturally, then force-abort
    stragglers so they still get a salvaged [Partial] report, join all
    threads and the pool, flush metrics (spooled crash-safe through
    {!Ddp_util.Tmp_file}), close and unlink the socket. *)

type config = {
  socket_path : string;
  workers : int;  (** shared pool size (domains) *)
  max_sessions : int;  (** admission slots *)
  queue_budget : int;  (** max queued batches per session *)
  batch_size : int;  (** events per batch handed to the pool *)
  idle_timeout : float;  (** seconds between frames before a stall abort *)
  session_deadline : float option;  (** wall-clock budget per session *)
  degrade_watermark : int;  (** global queued batches that flips Degraded *)
  drain_grace : float;  (** seconds to let sessions finish on drain *)
  metrics_out : string option;  (** final status JSON, written on stop *)
  log : string -> unit;
}

val default_config : socket_path:string -> config

type t

val start : config -> t
(** Bind + listen (replacing any stale socket file), spawn the pool and
    the accept thread, return immediately. *)

val stop : t -> unit
(** Graceful drain as described above.  Idempotent; blocks until the
    daemon is fully down. *)

val stopping : t -> bool

val request_stop : t -> unit
(** Async-signal-safe stop request: flips a flag the main loop watches
    (see {!wait}); safe to call from a [Sys.Signal_handle]. *)

val wait : t -> unit
(** Block until {!request_stop} (or {!stop} from another thread), then
    run the drain.  The CLI's main thread lives here. *)

val status_json : t -> Ddp_obs.Json.t
(** The [ddpd-status/1] document (also what the STATUS verb returns). *)
