(* One profiling session inside the daemon.

   Division of labor (and of telemetry domains — the Obs hub is
   single-writer per domain):

     receiver (connection thread, obs domain 0)
       decodes DATA bytes incrementally, batches events, enqueues under
       the backpressure policy, owns every state transition, finishes
       the engine and builds the report;

     pool (shared worker domains, obs domain 1)
       [pool_step] only: takes the busy flag by CAS, pops one batch,
       replays it into the engine behind an exception boundary.

   The busy CAS serializes all engine access (receiver included: it
   takes the flag before [finish]), so although many pool domains may
   serve a tenant over its lifetime, the engine always observes one
   strictly ordered event stream — a surviving tenant's dependence set
   is identical to a serial batch run by construction.

   The loss ledger (plain fields under [mu]) is mirrored write-for-write
   into the obs counters of whichever domain does the damage, so
   [Partial.loss] and the scraped counters agree exactly — the chaos
   harness's headline check. *)

module Event = Ddp_minir.Event
module Trace_file = Ddp_minir.Trace_file
module Config = Ddp_core.Config
module Engine = Ddp_core.Engine
module Health = Ddp_core.Health
module Dep = Ddp_core.Dep
module Dep_store = Ddp_core.Dep_store
module Fault = Ddp_core.Fault
module Obs = Ddp_obs.Obs
module Json = Ddp_obs.Json

(* Force the built-in engine registrations: the daemon resolves modes
   through the same registry as the CLI, but nothing else in this
   library links Profiler. *)
let _builtin = Ddp_core.Engines.builtin

type state = Admitted | Streaming | Draining | Closed

let state_name = function
  | Admitted -> "admitted"
  | Streaming -> "streaming"
  | Draining -> "draining"
  | Closed -> "closed"

type abort_cause =
  | Corrupt of string
  | Stalled of float
  | Crashed of Health.worker_fault
  | Disconnected

type batch = Event.t list * int  (* events (in order), count *)

type t = {
  id : int;
  name : string;
  mode : string;
  base_policy : Config.backpressure;
  queue_budget : int;
  batch_size : int;
  faults : Fault.t option;
  degraded : unit -> bool;
  on_queue_delta : int -> unit;
  on_enqueue : unit -> unit;
  session : Engine.session;
  decoder : Trace_file.Stream.t;
  obs : Obs.t;
  rng : Random.State.t;
  started : float;
  mu : Mutex.t;
  cond : Condition.t;  (* queue space / abort / drain progress *)
  queue : batch Queue.t;
  busy : bool Atomic.t;
  (* receiver-only decode accumulation (no lock needed) *)
  mutable pending : Event.t list;  (* reversed *)
  mutable pending_n : int;
  mutable events_received : int;
  (* shared state under [mu] *)
  mutable st : state;
  mutable queued_batches : int;
  mutable abort_cause : abort_cause option;
  mutable escalations : int;
  mutable events_processed : int;
  (* loss ledger, mirrored into obs counters *)
  mutable dropped_chunks : int;
  mutable dropped_events : int;
  mutable unprocessed : int;
  mutable crash_faults : Health.worker_fault list;
}

(* The daemon multiplexes N sessions over one fixed pool; an engine that
   spawns its own domains per session would defeat that (and violate the
   pool's serial-access discipline). *)
let denied_modes = [ "parallel" ]

(* When the daemon as a whole is overloaded, lossless Block sessions are
   escalated to this sampling policy — shed load fairly before refusing
   admissions entirely. *)
let degrade_sample_p = 0.5

let create ~id ~name ~mode ~config ~queue_budget ~batch_size ?faults ~degraded ~on_queue_delta
    ~on_enqueue () =
  if List.mem mode denied_modes then
    invalid_arg (Printf.sprintf "mode %S runs its own domain pool; not allowed in the daemon" mode);
  let engine = Engine.get mode in
  let session = engine.Engine.create config in
  {
    id;
    name;
    mode;
    base_policy = config.Config.backpressure;
    queue_budget = max 1 queue_budget;
    batch_size = max 1 batch_size;
    faults;
    degraded;
    on_queue_delta;
    on_enqueue;
    session;
    decoder = Trace_file.Stream.create ();
    obs = Obs.create ~domains:2 ();
    rng = Random.State.make [| config.Config.seed; id; 0x5e55 |];
    started = Ddp_util.Clock.now ();
    mu = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    busy = Atomic.make false;
    pending = [];
    pending_n = 0;
    events_received = 0;
    st = Admitted;
    queued_batches = 0;
    abort_cause = None;
    escalations = 0;
    events_processed = 0;
    dropped_chunks = 0;
    dropped_events = 0;
    unprocessed = 0;
    crash_faults = [];
  }

let id t = t.id
let name t = t.name
let mode t = t.mode
let state t = t.st
let queued t = t.queued_batches
let escalations t = t.escalations
let aborted t = t.abort_cause <> None

let abort t cause =
  Mutex.lock t.mu;
  if t.abort_cause = None && t.st <> Closed then begin
    t.abort_cause <- Some cause;
    Condition.broadcast t.cond
  end;
  Mutex.unlock t.mu

(* -- receiver side: decode, batch, enqueue --------------------------------- *)

let drop_ledger t ~dom (_, n) =
  (* caller holds [mu] (dom 0) or the busy flag (dom 1) *)
  t.dropped_chunks <- t.dropped_chunks + 1;
  t.dropped_events <- t.dropped_events + n;
  Obs.incr t.obs ~dom Obs.C.bp_dropped_chunks;
  Obs.add t.obs ~dom Obs.C.bp_dropped_events n

(* Enqueue one full batch under the backpressure policy.  Returns once
   the batch is queued, dropped (with its loss accounted) or the tenant
   is aborted.  Blocking here blocks the connection thread, which is
   exactly socket backpressure on the client. *)
let enqueue_batch t ((_, n) as batch) =
  Mutex.lock t.mu;
  let escalated = ref false in
  let queued = ref false in
  let rec attempt () =
    if t.abort_cause <> None || t.st = Closed then ()
    else if t.queued_batches < t.queue_budget then begin
      Queue.add batch t.queue;
      t.queued_batches <- t.queued_batches + 1;
      Obs.incr t.obs ~dom:0 Obs.C.chunks_pushed;
      Obs.add t.obs ~dom:0 Obs.C.chunk_events n;
      t.on_queue_delta 1;
      queued := true
    end
    else begin
      (* queue full: apply the (possibly escalated) policy *)
      let policy =
        match t.base_policy with
        | Config.Block when t.degraded () ->
          if not !escalated then begin
            escalated := true;
            t.escalations <- t.escalations + 1
          end;
          Config.Sample degrade_sample_p
        | p -> p
      in
      match policy with
      | Config.Block ->
        Obs.incr t.obs ~dom:0 Obs.C.queue_full_stalls;
        Condition.wait t.cond t.mu;
        attempt ()
      | Config.Drop_new -> drop_ledger t ~dom:0 batch
      | Config.Drop_oldest ->
        let oldest = Queue.pop t.queue in
        t.queued_batches <- t.queued_batches - 1;
        t.on_queue_delta (-1);
        drop_ledger t ~dom:0 oldest;
        attempt ()
      | Config.Sample p ->
        if Random.State.float t.rng 1.0 < p then drop_ledger t ~dom:0 batch
        else begin
          Obs.incr t.obs ~dom:0 Obs.C.queue_full_stalls;
          Condition.wait t.cond t.mu;
          attempt ()
        end
    end
  in
  attempt ();
  Mutex.unlock t.mu;
  if !queued then t.on_enqueue ()

let flush_pending t =
  if t.pending_n > 0 then begin
    let batch = (List.rev t.pending, t.pending_n) in
    t.pending <- [];
    t.pending_n <- 0;
    enqueue_batch t batch
  end

(* Pull every currently decodable event out of the stream decoder.
   [Need_more] is the normal resting state between DATA frames. *)
let drain_decoder t =
  let continue = ref true in
  while !continue do
    match Trace_file.Stream.next t.decoder with
    | Trace_file.Stream.Event e ->
      t.pending <- e :: t.pending;
      t.pending_n <- t.pending_n + 1;
      t.events_received <- t.events_received + 1;
      if t.pending_n >= t.batch_size then flush_pending t
    | Trace_file.Stream.Need_more | Trace_file.Stream.Done -> continue := false
  done

let feed_data t data =
  if t.st = Admitted then t.st <- Streaming;
  match
    Trace_file.Stream.feed t.decoder data;
    drain_decoder t
  with
  | () -> Ok ()
  | exception Trace_file.Parse_error msg ->
    abort t (Corrupt msg);
    Error msg

let finish_stream t =
  match
    Trace_file.Stream.eof t.decoder;
    drain_decoder t;
    flush_pending t
  with
  | () ->
    t.st <- Draining;
    Ok ()
  | exception Trace_file.Parse_error msg ->
    abort t (Corrupt msg);
    Error msg

(* -- pool side: one batch per busy acquisition ----------------------------- *)

let take_batch t =
  Mutex.lock t.mu;
  let r =
    if t.abort_cause <> None || t.st = Closed || Queue.is_empty t.queue then None
    else begin
      let b = Queue.pop t.queue in
      t.queued_batches <- t.queued_batches - 1;
      t.on_queue_delta (-1);
      Condition.broadcast t.cond;
      Some b
    end
  in
  Mutex.unlock t.mu;
  r

let record_crash t ~worker ~exn_text ~backtrace batch =
  (* pool side: holds the busy flag, so dom 1 writes are serialized *)
  let wf = { Health.worker; exn_text; backtrace } in
  drop_ledger t ~dom:1 batch;
  Obs.incr t.obs ~dom:1 Obs.C.worker_crashes;
  Mutex.lock t.mu;
  t.crash_faults <- wf :: t.crash_faults;
  Mutex.unlock t.mu;
  abort t (Crashed wf)

let pool_step t ~worker =
  if not (Atomic.compare_and_set t.busy false true) then false
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.busy false)
      (fun () ->
        match take_batch t with
        | None -> false
        | Some ((events, n) as batch) ->
          (try
             (match t.faults with
             | Some f when Fault.take_crash f ~worker -> raise (Fault.Injected_crash worker)
             | _ -> ());
             Event.replay t.session.Engine.hooks events;
             Obs.add t.obs ~dom:1 Obs.C.events_processed n;
             Obs.incr t.obs ~dom:1 Obs.C.chunks_processed;
             Mutex.lock t.mu;
             t.events_processed <- t.events_processed + n;
             Mutex.unlock t.mu
           with e ->
             record_crash t ~worker ~exn_text:(Printexc.to_string e)
               ~backtrace:(Printexc.get_backtrace ()) batch);
          true)

(* -- finalization ----------------------------------------------------------- *)

type result = {
  health : Health.t;
  deps : (Dep.t * int) list;
  distinct : int;
  occurrences : int;
  events_received : int;
  events_processed : int;
  counters : (string * int) list;
  elapsed : float;
}

let reported_counters =
  Obs.C.
    [
      chunks_pushed;
      chunk_events;
      chunks_processed;
      events_processed;
      queue_full_stalls;
      bp_dropped_chunks;
      bp_dropped_events;
      unprocessed_chunks;
      worker_crashes;
    ]

let counters_of merged =
  List.map (fun id -> (Obs.C.names.(id), merged.(id))) reported_counters

let own_health t =
  (* caller: after the queue write-off, holding nothing *)
  let loss =
    {
      Health.no_loss with
      Health.dropped_chunks = t.dropped_chunks;
      dropped_events = t.dropped_events;
      unprocessed_chunks = t.unprocessed;
    }
  in
  let reasons =
    match t.abort_cause with
    | None -> []
    | Some (Corrupt msg) -> [ Health.Stream_corrupt msg ]
    | Some (Stalled s) -> [ Health.Deadline s ]
    | Some (Crashed _) -> [ Health.Worker_crash ]
    | Some Disconnected -> [ Health.Stream_corrupt "client disconnected mid-stream" ]
  in
  Health.degraded ~reasons ~faults:(List.rev t.crash_faults) loss

let finalize t =
  (* 1. wait for the pool to drain the queue (or for an abort) *)
  Mutex.lock t.mu;
  while t.queued_batches > 0 && t.abort_cause = None do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu;
  (* 2. exclusive engine access: once we hold the flag the pool is out
        for good (take_batch refuses Closed/aborted tenants) *)
  while not (Atomic.compare_and_set t.busy false true) do
    Thread.yield ()
  done;
  (* 3. write off whatever an abort left behind *)
  Mutex.lock t.mu;
  while not (Queue.is_empty t.queue) do
    ignore (Queue.pop t.queue : batch);
    t.queued_batches <- t.queued_batches - 1;
    t.on_queue_delta (-1);
    t.unprocessed <- t.unprocessed + 1;
    Obs.incr t.obs ~dom:0 Obs.C.unprocessed_chunks
  done;
  Mutex.unlock t.mu;
  if t.pending_n > 0 then begin
    (* decoded but never enqueued (abort cut the stream mid-batch) *)
    t.pending <- [];
    t.pending_n <- 0;
    t.unprocessed <- t.unprocessed + 1;
    Obs.incr t.obs ~dom:0 Obs.C.unprocessed_chunks
  end;
  (* 4. finish the engine and merge healths *)
  let eo =
    try t.session.Engine.finish ()
    with e ->
      (* engine teardown is inside the isolation boundary too *)
      let wf =
        { Health.worker = 0; exn_text = Printexc.to_string e; backtrace = Printexc.get_backtrace () }
      in
      Mutex.lock t.mu;
      t.crash_faults <- wf :: t.crash_faults;
      if t.abort_cause = None then t.abort_cause <- Some (Crashed wf);
      Mutex.unlock t.mu;
      {
        Engine.deps = Dep_store.create ();
        regions = Ddp_core.Region.create ();
        health = Health.degraded ~reasons:[ Health.Worker_crash ] Health.no_loss;
        store_bytes = 0;
        extra = Engine.No_extra;
      }
  in
  let health = Health.merge eo.Engine.health (own_health t) in
  let deps =
    Dep_store.to_list eo.Engine.deps |> List.sort (fun (a, _) (b, _) -> Dep.compare a b)
  in
  let snap = Obs.snapshot t.obs in
  Mutex.lock t.mu;
  t.st <- Closed;
  Condition.broadcast t.cond;
  Mutex.unlock t.mu;
  Atomic.set t.busy false;
  {
    health;
    deps;
    distinct = Dep_store.distinct eo.Engine.deps;
    occurrences = Dep_store.total_occurrences eo.Engine.deps;
    events_received = t.events_received;
    events_processed = t.events_processed;
    counters = counters_of snap.Obs.counters;
    elapsed = Ddp_util.Clock.now () -. t.started;
  }

(* -- JSON ------------------------------------------------------------------- *)

let loss_json (l : Health.loss) =
  Json.Obj
    [
      ("dropped_chunks", Json.Int l.Health.dropped_chunks);
      ("dropped_events", Json.Int l.Health.dropped_events);
      ("dead_partitions", Json.Int l.Health.dead_partitions);
      ("unprocessed_chunks", Json.Int l.Health.unprocessed_chunks);
    ]

let health_fields = function
  | Health.Complete ->
    [
      ("complete", Json.Bool true);
      ("reasons", Json.List []);
      ("worker_faults", Json.Int 0);
      ("loss", loss_json Health.no_loss);
    ]
  | Health.Partial d ->
    [
      ("complete", Json.Bool false);
      ( "reasons",
        Json.List (List.map (fun r -> Json.Str (Health.reason_to_string r)) d.Health.reasons) );
      ("worker_faults", Json.Int (List.length d.Health.faults));
      ("loss", loss_json d.Health.loss);
    ]

let dep_json (d, count) =
  Json.List
    [
      Json.Str (Dep.kind_to_string d.Dep.kind);
      Json.Int d.Dep.sink;
      Json.Int d.Dep.src;
      Json.Bool d.Dep.race;
      Json.Int count;
    ]

let result_json t (r : result) =
  Json.Obj
    ([
       ("schema", Json.Str "ddpd-report/1");
       ("session", Json.Int t.id);
       ("name", Json.Str t.name);
       ("mode", Json.Str t.mode);
     ]
    @ health_fields r.health
    @ [
        ("deps", Json.List (List.map dep_json r.deps));
        ("distinct", Json.Int r.distinct);
        ("occurrences", Json.Int r.occurrences);
        ("events_received", Json.Int r.events_received);
        ("events_processed", Json.Int r.events_processed);
        ("escalations", Json.Int t.escalations);
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
        ("elapsed", Json.Float r.elapsed);
      ])

let status_json t =
  (* live scrape: [counters_now] reads are unfenced but untorn *)
  let merged = Obs.counters_now t.obs in
  Json.Obj
    [
      ("session", Json.Int t.id);
      ("name", Json.Str t.name);
      ("mode", Json.Str t.mode);
      ("state", Json.Str (state_name t.st));
      ("queued", Json.Int t.queued_batches);
      ("escalations", Json.Int t.escalations);
      ("aborted", Json.Bool (t.abort_cause <> None));
      ("events_received", Json.Int t.events_received);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters_of merged)));
    ]
