(** One profiling session inside the daemon: its engine session,
    incremental trace decoder, bounded batch queue, private telemetry
    hub and health ledger.

    State machine: [Admitted -> Streaming -> Draining -> Closed].
    The connection (receiver) thread owns decoding and all state
    transitions; shared-pool workers only ever run {!pool_step}, which
    takes the per-tenant busy flag (an [Atomic] CAS) before touching the
    engine — so the engine observes a strictly serial event stream and a
    non-victim session's dependence set is {e by construction} identical
    to a serial batch run of the same trace.

    Fault isolation: every failure mode (corrupt frame, truncated
    trace, injected or genuine engine crash, stall, mid-stream
    disconnect) lands in {!abort}, which flips this tenant — and only
    this tenant — to a [Partial] verdict with exact loss accounting;
    the loss ledger is mirrored one-for-one into the tenant's own
    {!Ddp_obs.Obs} counters so external scrapes and the report agree to
    the event. *)

type state = Admitted | Streaming | Draining | Closed

val state_name : state -> string

type abort_cause =
  | Corrupt of string  (** undecodable/truncated trace bytes *)
  | Stalled of float  (** idle or session deadline (seconds) expired *)
  | Crashed of Ddp_core.Health.worker_fault  (** engine step raised *)
  | Disconnected  (** peer vanished before FIN *)

type t

val create :
  id:int ->
  name:string ->
  mode:string ->
  config:Ddp_core.Config.t ->
  queue_budget:int ->
  batch_size:int ->
  ?faults:Ddp_core.Fault.t ->
  degraded:(unit -> bool) ->
  on_queue_delta:(int -> unit) ->
  on_enqueue:(unit -> unit) ->
  unit ->
  t
(** Opens an engine session for [mode] (raises [Invalid_argument] on
    unknown modes — the server maps that to an ERR reply).  [degraded]
    is the daemon-level overload probe: while it returns [true], a
    [Block] backpressure policy is escalated to [Sample] instead of
    stalling the receiver.  [on_queue_delta] tracks this tenant's
    contribution to the global queued-batch gauge; [on_enqueue] wakes
    the worker pool. *)

val id : t -> int
val name : t -> string
val mode : t -> string
val state : t -> state
val queued : t -> int
val escalations : t -> int
(** Pushes where overload escalated this tenant's [Block] to [Sample]. *)

(** {2 Receiver side (connection thread)} *)

val feed_data : t -> string -> (unit, string) result
(** Decode one DATA payload (any byte split) and enqueue full batches
    under the backpressure policy.  [Error msg] means the bytes were
    malformed — the tenant has already been aborted as [Corrupt]. *)

val finish_stream : t -> (unit, string) result
(** FIN: declare input complete, flush the decoder's tail.  [Error] on
    a truncated trace (aborted as [Corrupt]). *)

val abort : t -> abort_cause -> unit
(** Idempotent (first cause wins): record the cause, wake all waiters;
    remaining queued work is written off by {!finalize}. *)

val aborted : t -> bool

type result = {
  health : Ddp_core.Health.t;
  deps : (Ddp_core.Dep.t * int) list;  (** sorted by {!Ddp_core.Dep.compare} *)
  distinct : int;
  occurrences : int;
  events_received : int;  (** decoded from the wire *)
  events_processed : int;  (** fed into the engine *)
  counters : (string * int) list;  (** obs projection; superset check of [loss] *)
  elapsed : float;
}

val finalize : t -> result
(** Drain (or write off) the queue, take the busy flag, finish the
    engine session, merge its health with this tenant's own degradation
    ledger, snapshot telemetry.  Call exactly once, from the receiver;
    transitions to [Closed]. *)

val result_json : t -> result -> Ddp_obs.Json.t
(** The [ddpd-report/1] REPORT payload. *)

val status_json : t -> Ddp_obs.Json.t
(** Live per-tenant entry for [ddpd-status/1] (lock-free counter reads;
    monitoring accuracy). *)

(** {2 Pool side (shared worker domains)} *)

val pool_step : t -> worker:int -> bool
(** Try to process one queued batch: take the busy flag (give up and
    return [false] if another worker holds it), pop, replay into the
    engine behind an exception boundary — a raise (genuine or injected
    via the session's {!Ddp_core.Fault} crash budget) aborts {e this}
    tenant as [Crashed] and never escapes.  Returns [true] if a batch
    was consumed (even one that crashed). *)
