(* ddpd-wire/1 framing: length-prefixed frames over a Unix-domain
   stream socket.  Deliberately boring — all robustness decisions
   (caps, typed errors, EOF-vs-cut distinction) live here so the
   session layer above never sees a raw byte. *)

type frame_type =
  | Hello
  | Data
  | Fin
  | Status_req
  | Admit
  | Busy
  | Err
  | Report
  | Status_reply

let frame_char = function
  | Hello -> 'H'
  | Data -> 'D'
  | Fin -> 'F'
  | Status_req -> 'S'
  | Admit -> 'A'
  | Busy -> 'B'
  | Err -> 'E'
  | Report -> 'R'
  | Status_reply -> 'T'

let frame_of_char = function
  | 'H' -> Some Hello
  | 'D' -> Some Data
  | 'F' -> Some Fin
  | 'S' -> Some Status_req
  | 'A' -> Some Admit
  | 'B' -> Some Busy
  | 'E' -> Some Err
  | 'R' -> Some Report
  | 'T' -> Some Status_reply
  | _ -> None

let frame_name = function
  | Hello -> "HELLO"
  | Data -> "DATA"
  | Fin -> "FIN"
  | Status_req -> "STATUS"
  | Admit -> "ADMIT"
  | Busy -> "BUSY"
  | Err -> "ERR"
  | Report -> "REPORT"
  | Status_reply -> "STATUS-REPLY"

exception Protocol_error of string
exception Timeout

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

(* Traces are streamed as many small DATA frames, so a single frame
   never needs to be huge; the cap turns a corrupt length prefix into a
   typed error instead of a giant allocation. *)
let max_payload = 8 * 1024 * 1024

let write_frame fd ty payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Wire.write_frame: payload too large";
  let b = Bytes.create (5 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.set b 4 (frame_char ty);
  Bytes.blit_string payload 0 b 5 n;
  let rec push off =
    if off < Bytes.length b then begin
      let w = Unix.write fd b off (Bytes.length b - off) in
      push (off + w)
    end
  in
  push 0

(* Read exactly [n] bytes, waiting on [deadline] (absolute wall-clock)
   before every chunk.  [allow_eof] permits clean EOF only before the
   first byte — EOF mid-frame is a cut, not a close. *)
let read_exact ?deadline ~allow_eof fd n =
  let b = Bytes.create n in
  let rec pull off =
    if off >= n then Some b
    else begin
      (match deadline with
      | None -> ()
      | Some d ->
        let rec wait () =
          let left = d -. Unix.gettimeofday () in
          if left <= 0.0 then raise Timeout;
          match Unix.select [ fd ] [] [] left with
          | [], _, _ -> raise Timeout
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ());
      match Unix.read fd b off (n - off) with
      | 0 -> if off = 0 && allow_eof then None else fail "connection cut mid-frame"
      | r -> pull (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pull off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        if off = 0 && allow_eof then None else fail "connection reset mid-frame"
    end
  in
  pull 0

let read_frame ?deadline fd =
  match read_exact ?deadline ~allow_eof:true fd 5 with
  | None -> None
  | Some hdr ->
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_payload then fail "frame length %d exceeds cap %d" len max_payload;
    let ty =
      match frame_of_char (Bytes.get hdr 4) with
      | Some ty -> ty
      | None -> fail "unknown frame type %C" (Bytes.get hdr 4)
    in
    let payload =
      if len = 0 then ""
      else
        match read_exact ?deadline ~allow_eof:false fd len with
        | Some b -> Bytes.unsafe_to_string b
        | None -> assert false
    in
    Some (ty, payload)

(* -- key-value payloads ---------------------------------------------------- *)

let kv_encode kvs =
  let b = Buffer.create 64 in
  List.iter
    (fun (k, v) ->
      if String.contains k '=' || String.contains k '\n' || String.contains v '\n' then
        invalid_arg "Wire.kv_encode: key/value with '=' or newline";
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b v;
      Buffer.add_char b '\n')
    kvs;
  Buffer.contents b

let kv_decode s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let kvs =
    List.map
      (fun line ->
        match String.index_opt line '=' with
        | None -> fail "bad key-value line %S" line
        | Some i ->
          (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1)))
      lines
  in
  List.iteri
    (fun i (k, _) ->
      List.iteri (fun j (k', _) -> if i < j && k = k' then fail "repeated key %S" k) kvs)
    kvs;
  kvs

let kv_get kvs k = List.assoc_opt k kvs
