(** [ddpd-wire/1]: the daemon's framing layer.

    A frame is [<len:4 BE><type:1><payload:len bytes>]; [len] covers the
    payload only and is capped ({!max_payload}) so a garbage length
    prefix is a typed {!Protocol_error}, never an allocation bomb.

    Conversation grammar (client to the left of the arrow):
    {v
      HELLO kv      ->  ADMIT kv | BUSY kv | ERR text
      DATA bytes*   ->  (trace v2 bytes, split at arbitrary boundaries)
      FIN           ->  REPORT json      (ddpd-report/1)
      STATUS        ->  STATUS_REPLY json (ddpd-status/1; instead of HELLO)
    v}

    Key-value payloads (HELLO/ADMIT/BUSY) are newline-separated
    [key=value] lines; values may not contain newlines. *)

type frame_type =
  | Hello
  | Data
  | Fin
  | Status_req
  | Admit
  | Busy
  | Err
  | Report
  | Status_reply

val frame_char : frame_type -> char
val frame_name : frame_type -> string

exception Protocol_error of string
(** Malformed framing: unknown type byte, oversized length, or a
    connection cut mid-frame. *)

exception Timeout
(** {!read_frame} gave up waiting (its [deadline] passed). *)

val max_payload : int

val write_frame : Unix.file_descr -> frame_type -> string -> unit
(** Raises [Unix.Unix_error] if the peer is gone (caller handles). *)

val read_frame : ?deadline:float -> Unix.file_descr -> (frame_type * string) option
(** Blocking read of one whole frame; [None] on clean EOF at a frame
    boundary.  [deadline] is absolute ({!Unix.gettimeofday} scale);
    crossing it raises {!Timeout}.  EOF inside a frame raises
    {!Protocol_error}. *)

val kv_encode : (string * string) list -> string

val kv_decode : string -> (string * string) list
(** Raises {!Protocol_error} on a line without [=] or a key repeated. *)

val kv_get : (string * string) list -> string -> string option
