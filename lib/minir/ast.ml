(* Abstract syntax of MiniIR, the small imperative language in which the
   synthetic NAS/Starbench workloads are written.

   Design notes:
   - every statement carries a mutable [line]; [number] assigns lines in
     textual (pre-order) order, like line numbers of a pretty-printed
     source file.  Loops additionally get a dedicated [end_line] so the
     reporter can print "END loop <iterations>" on its own line, exactly
     as in the paper's Fig. 1 (BGN at 1:60, END at 1:74);
   - [For] carries the ground-truth [parallel] annotation (the analogue of
     the OpenMP pragma in the paper's Table II) and the list of reduction
     variables an OpenMP reduction clause would privatize;
   - [Par] forks simulated threads (the pthread analogue); [Lock]/[Unlock]
     are explicit, as required by the paper's Sec. V. *)

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Load of string * expr  (* array[index] *)
  | Binop of Value.binop * expr * expr
  | Unop of Value.unop * expr
  | Intrinsic of string * expr list

type stmt = {
  mutable line : int;
  mutable end_line : int;  (* loops only; 0 elsewhere *)
  kind : kind;
}

and kind =
  | Local of string * expr  (* declare + initialize a scope-local scalar *)
  | Assign of string * expr  (* write an existing scalar *)
  | Store of string * expr * expr  (* array[index] = value *)
  | Array_decl of string * expr  (* allocate a scope-local array *)
  | Free of string  (* early explicit free of an array *)
  | If of expr * block * block
  | For of {
      index : string;
      lo : expr;
      hi : expr;  (* exclusive upper bound, re-evaluated each iteration *)
      step : expr;
      parallel : bool;  (* ground truth: is this loop parallelizable? *)
      reduction : string list;  (* variables an OpenMP reduction would privatize *)
      body : block;
    }
  | While of expr * block
  | Par of block list  (* fork one simulated thread per block, join all *)
  | Spawn of block  (* fork a child task; outstanding until the next Sync *)
  | Sync  (* join every task spawned so far in the enclosing frame *)
  | Lock of int
  | Unlock of int
  | Call_proc of string * expr list  (* procedure call (no return value) *)
  | Nop

and block = stmt list

(* Procedures: value parameters, no return value (results go through
   global arrays/scalars, C style).  The header line carries parameter
   writes in the profile, like a function prologue. *)
type func = {
  fname : string;
  params : string list;
  mutable header_line : int;
  fbody : block;
}

type program = {
  name : string;
  funcs : func list;
  body : block;
}

let mk kind = { line = 0; end_line = 0; kind }

(* Assign pre-order line numbers (main body first, then each procedure).
   Returns the number of lines used, the "LOC" analogue of Table I. *)
let number prog =
  let next = ref 0 in
  let fresh () =
    incr next;
    !next
  in
  let rec stmt s =
    s.line <- fresh ();
    match s.kind with
    | Local _ | Assign _ | Store _ | Array_decl _ | Free _ | Lock _ | Unlock _ | Nop
    | Sync | Call_proc _ -> ()
    | If (_, t, e) ->
      block t;
      block e
    | For f ->
      block f.body;
      s.end_line <- fresh ()
    | While (_, b) ->
      block b;
      s.end_line <- fresh ()
    | Par blocks -> List.iter block blocks
    | Spawn b -> block b
  and block b = List.iter stmt b in
  block prog.body;
  List.iter
    (fun f ->
      f.header_line <- fresh ();
      block f.fbody)
    prog.funcs;
  !next

(* Statement/loop census used by experiment harnesses. *)
type loop_info = {
  loop_line : int;
  loop_end_line : int;
  annotated_parallel : bool;
  reduction_vars : string list;
}

let loops prog =
  let acc = ref [] in
  let rec stmt s =
    match s.kind with
    | For f ->
      acc :=
        {
          loop_line = s.line;
          loop_end_line = s.end_line;
          annotated_parallel = f.parallel;
          reduction_vars = f.reduction;
        }
        :: !acc;
      block f.body
    | While (_, b) -> block b
    | If (_, t, e) ->
      block t;
      block e
    | Par blocks -> List.iter block blocks
    | Spawn b -> block b
    | Local _ | Assign _ | Store _ | Array_decl _ | Free _ | Lock _ | Unlock _ | Nop
    | Sync | Call_proc _ -> ()
  and block b = List.iter stmt b in
  block prog.body;
  List.iter (fun f -> block f.fbody) prog.funcs;
  List.rev !acc

let rec max_threads_block b =
  List.fold_left
    (fun acc s ->
      match s.kind with
      | Par blocks ->
        let inner =
          List.fold_left (fun m blk -> max m (max_threads_block blk)) 0 blocks
        in
        max acc (List.length blocks + inner)
      | If (_, t, e) -> max acc (max (max_threads_block t) (max_threads_block e))
      | For { body; _ } | While (_, body) -> max acc (max_threads_block body)
      (* Tasks are dynamic (a loop of spawns is unbounded); this static
         walk reports a lower bound: one child plus its body's forks. *)
      | Spawn blk -> max acc (1 + max_threads_block blk)
      | Local _ | Assign _ | Store _ | Array_decl _ | Free _ | Lock _ | Unlock _ | Nop
      | Sync | Call_proc _ -> acc)
    0 b

(* Number of simulated threads a program can run concurrently, main thread
   included. *)
let max_threads prog = 1 + max_threads_block prog.body

(* Does the program use fork-join task constructs anywhere (body or any
   procedure)?  Decides which interpreter runtime executes it. *)
let has_tasks prog =
  let rec stmt s =
    match s.kind with
    | Spawn _ | Sync -> true
    | If (_, t, e) -> block t || block e
    | For { body; _ } | While (_, body) -> block body
    | Par blocks -> List.exists block blocks
    | Local _ | Assign _ | Store _ | Array_decl _ | Free _ | Lock _ | Unlock _ | Nop
    | Call_proc _ -> false
  and block b = List.exists stmt b in
  block prog.body || List.exists (fun f -> block f.fbody) prog.funcs
