(** Abstract syntax of MiniIR, the small imperative language the synthetic
    workloads are written in.  See {!Builder} for the construction DSL. *)

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Load of string * expr
  | Binop of Value.binop * expr * expr
  | Unop of Value.unop * expr
  | Intrinsic of string * expr list

type stmt = {
  mutable line : int;  (** assigned by {!number} in pre-order *)
  mutable end_line : int;  (** loops only: the line of the closing brace *)
  kind : kind;
}

and kind =
  | Local of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | Array_decl of string * expr
  | Free of string
  | If of expr * block * block
  | For of {
      index : string;
      lo : expr;
      hi : expr;
      step : expr;
      parallel : bool;  (** ground-truth annotation (the OpenMP pragma analogue) *)
      reduction : string list;
      body : block;
    }
  | While of expr * block
  | Par of block list
  | Spawn of block  (** fork a child task; outstanding until the next [Sync] *)
  | Sync  (** join every task spawned so far in the enclosing frame *)
  | Lock of int
  | Unlock of int
  | Call_proc of string * expr list
  | Nop

and block = stmt list

(** Procedures: value parameters, no return value (results flow through
    global arrays/scalars, C style). *)
type func = {
  fname : string;
  params : string list;
  mutable header_line : int;  (** assigned by {!number} *)
  fbody : block;
}

type program = {
  name : string;
  funcs : func list;
  body : block;
}

val mk : kind -> stmt

val number : program -> int
(** Assign pre-order line numbers (loops get an extra end line); returns
    the total number of lines, the "LOC" analogue of Table I. *)

type loop_info = {
  loop_line : int;
  loop_end_line : int;
  annotated_parallel : bool;
  reduction_vars : string list;
}

val loops : program -> loop_info list
(** All [For] loops in textual order.  Call after {!number}. *)

val max_threads : program -> int
(** Simulated threads the program can run concurrently, main included.
    For task programs this is a static lower bound (a loop of spawns is
    dynamically unbounded). *)

val has_tasks : program -> bool
(** Does the program use [Spawn]/[Sync] anywhere?  Task programs run
    under the interpreter's fork-join scheduler and cannot contain
    [Par]. *)
