(* Construction DSL for MiniIR programs.

   Workloads read roughly like the C they imitate:

     let prog = B.program ~name:"saxpy" [
       B.arr "x" (B.i n); B.arr "y" (B.i n);
       B.for_ ~parallel:true "i" (B.i 0) (B.i n) (fun i ->
         [ B.store "y" i B.(idx "x" i *: f 2.0 +: idx "y" i) ]);
     ]
*)

open Ast

let i n = Int n
let f x = Float x
let v name = Var name
let idx arr e = Load (arr, e)

let ( +: ) a b = Binop (Value.Add, a, b)
let ( -: ) a b = Binop (Value.Sub, a, b)
let ( *: ) a b = Binop (Value.Mul, a, b)
let ( /: ) a b = Binop (Value.Div, a, b)
let ( %: ) a b = Binop (Value.Mod, a, b)
let ( <: ) a b = Binop (Value.Lt, a, b)
let ( <=: ) a b = Binop (Value.Le, a, b)
let ( >: ) a b = Binop (Value.Gt, a, b)
let ( >=: ) a b = Binop (Value.Ge, a, b)
let ( =: ) a b = Binop (Value.Eq, a, b)
let ( <>: ) a b = Binop (Value.Ne, a, b)
let ( &&: ) a b = Binop (Value.Band, a, b)
let ( ||: ) a b = Binop (Value.Bor, a, b)
let ( ^: ) a b = Binop (Value.Bxor, a, b)
let ( <<: ) a b = Binop (Value.Shl, a, b)
let ( >>: ) a b = Binop (Value.Shr, a, b)
let min_ a b = Binop (Value.Min, a, b)
let max_ a b = Binop (Value.Max, a, b)
let neg a = Unop (Value.Neg, a)
let not_ a = Unop (Value.Not, a)
let bnot a = Unop (Value.Bnot, a)
let call name args = Intrinsic (name, args)
let sqrt_ a = call "sqrt" [ a ]
let rand_ = call "rand" []
let rand_int bound = call "rand_int" [ bound ]

let local name e = mk (Local (name, e))

(* Assert a condition inside the target program (raises
   [Interp.Runtime_error] when it evaluates to 0) — used by tests and by
   workload self-checks. *)
let assert_ cond = mk (Local ("_assert", Intrinsic ("assert", [ cond ])))
let assign name e = mk (Assign (name, e))
let store arr index value = mk (Store (arr, index, value))
let arr name size = mk (Array_decl (name, size))
let free name = mk (Free name)
let if_ cond then_ else_ = mk (If (cond, then_, else_))
let nop = mk Nop

let for_ ?(parallel = false) ?(reduction = []) ?(step = Int 1) index lo hi body_fn =
  mk (For { index; lo; hi; step; parallel; reduction; body = body_fn (Var index) })

let while_ cond body = mk (While (cond, body))
let par blocks = mk (Par blocks)
let spawn body = mk (Spawn body)

(* Unlike [nop], a sync typically appears many times per program, and
   [number] mutates the statement record in place — so allocate fresh. *)
let sync () = mk Sync
let lock id = mk (Lock id)
let unlock id = mk (Unlock id)
let call_proc name args = mk (Call_proc (name, args))

(* Procedure definition; attach via [program ~funcs]. *)
let proc fname params fbody = { fname; params; header_line = 0; fbody }

(* Fork [n] threads, each running [body_fn tid_expr] with a thread-local
   scalar [tid_name] bound to its 0-based rank — the pthread-create idiom
   every parallel workload uses. *)
let par_n ?(tid_name = "tid") n body_fn =
  par
    (List.init n (fun rank ->
         local tid_name (i rank) :: body_fn (v tid_name) rank))

let program ?(funcs = []) ~name body =
  let prog = { name; funcs; body } in
  let (_ : int) = number prog in
  prog
