(* Instrumentation events, structured as a typed algebra.

   The interpreter plays the role of the paper's LLVM instrumentation
   pass.  Events are grouped into five *classes* — [Memory], [Region],
   [Frame], [Alloc] and [Sync] — and each class has its own small record
   of labelled callbacks (a per-class handler).  The fused [hooks]
   record the interpreter actually calls is the flat product of all
   five: hooks are plain labelled functions (not a variant) so the hot
   path allocates nothing.  See [Handler] for the compose/subscribe
   layer that builds a fused record from per-class subscriptions. *)

type region_kind = Loop
type sync_kind = Task_spawn | Task_join | Lock_acquire | Lock_release

(* -- event classes -------------------------------------------------------- *)

module Class = struct
  type t = Memory | Region | Frame | Alloc | Sync

  let all = [ Memory; Region; Frame; Alloc; Sync ]

  let name = function
    | Memory -> "memory"
    | Region -> "region"
    | Frame -> "frame"
    | Alloc -> "alloc"
    | Sync -> "sync"

  let of_name = function
    | "memory" -> Some Memory
    | "region" -> Some Region
    | "frame" -> Some Frame
    | "alloc" -> Some Alloc
    | "sync" -> Some Sync
    | _ -> None

  let compare = compare
  let equal = ( = )
end

(* -- per-class handler records -------------------------------------------- *)

type memory_handler = {
  on_read : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_write : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
}

type region_handler = {
  on_region_enter : loc:Loc.t -> kind:region_kind -> thread:int -> time:int -> unit;
  on_region_iter : loc:Loc.t -> thread:int -> time:int -> unit;
  on_region_exit :
    loc:Loc.t -> end_loc:Loc.t -> kind:region_kind -> iterations:int -> thread:int -> time:int -> unit;
}

type frame_handler = {
  on_call : loc:Loc.t -> func:int -> thread:int -> time:int -> unit;
  on_return : func:int -> thread:int -> time:int -> unit;
  on_thread_end : thread:int -> unit;
}

type alloc_handler = {
  on_alloc : base:int -> len:int -> var:int -> unit;
  on_free : base:int -> len:int -> var:int -> unit;
}

type sync_handler = {
  on_sync : kind:sync_kind -> obj:int -> thread:int -> time:int -> unit;
}

let null_memory =
  {
    on_read = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> ());
    on_write = (fun ~addr:_ ~loc:_ ~var:_ ~thread:_ ~time:_ ~locked:_ -> ());
  }

let null_region =
  {
    on_region_enter = (fun ~loc:_ ~kind:_ ~thread:_ ~time:_ -> ());
    on_region_iter = (fun ~loc:_ ~thread:_ ~time:_ -> ());
    on_region_exit = (fun ~loc:_ ~end_loc:_ ~kind:_ ~iterations:_ ~thread:_ ~time:_ -> ());
  }

let null_frame =
  {
    on_call = (fun ~loc:_ ~func:_ ~thread:_ ~time:_ -> ());
    on_return = (fun ~func:_ ~thread:_ ~time:_ -> ());
    on_thread_end = (fun ~thread:_ -> ());
  }

let null_alloc =
  {
    on_alloc = (fun ~base:_ ~len:_ ~var:_ -> ());
    on_free = (fun ~base:_ ~len:_ ~var:_ -> ());
  }

let null_sync = { on_sync = (fun ~kind:_ ~obj:_ ~thread:_ ~time:_ -> ()) }

(* -- the fused hot-path record -------------------------------------------- *)

type hooks = {
  on_read : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_write : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_region_enter : loc:Loc.t -> kind:region_kind -> thread:int -> time:int -> unit;
  on_region_iter : loc:Loc.t -> thread:int -> time:int -> unit;
  on_region_exit :
    loc:Loc.t -> end_loc:Loc.t -> kind:region_kind -> iterations:int -> thread:int -> time:int -> unit;
  on_alloc : base:int -> len:int -> var:int -> unit;
  on_free : base:int -> len:int -> var:int -> unit;
  on_call : loc:Loc.t -> func:int -> thread:int -> time:int -> unit;
      (* [loc] is the call site, [func] the interned procedure name *)
  on_return : func:int -> thread:int -> time:int -> unit;
  on_thread_end : thread:int -> unit;
  on_sync : kind:sync_kind -> obj:int -> thread:int -> time:int -> unit;
}

let fuse ~(memory : memory_handler) ~(region : region_handler) ~(frame : frame_handler)
    ~(alloc : alloc_handler) ~(sync : sync_handler) =
  {
    on_read = memory.on_read;
    on_write = memory.on_write;
    on_region_enter = region.on_region_enter;
    on_region_iter = region.on_region_iter;
    on_region_exit = region.on_region_exit;
    on_alloc = alloc.on_alloc;
    on_free = alloc.on_free;
    on_call = frame.on_call;
    on_return = frame.on_return;
    on_thread_end = frame.on_thread_end;
    on_sync = sync.on_sync;
  }

let null =
  fuse ~memory:null_memory ~region:null_region ~frame:null_frame ~alloc:null_alloc
    ~sync:null_sync

(* Per-class projections out of a fused record: the inverse of [fuse].
   Used by [Handler.of_hooks] and by sinks that restructure an existing
   hooks record class-by-class. *)
let memory_of (h : hooks) : memory_handler = { on_read = h.on_read; on_write = h.on_write }

let region_of (h : hooks) : region_handler =
  {
    on_region_enter = h.on_region_enter;
    on_region_iter = h.on_region_iter;
    on_region_exit = h.on_region_exit;
  }

let frame_of (h : hooks) : frame_handler =
  { on_call = h.on_call; on_return = h.on_return; on_thread_end = h.on_thread_end }

let alloc_of (h : hooks) : alloc_handler = { on_alloc = h.on_alloc; on_free = h.on_free }
let sync_of (h : hooks) : sync_handler = { on_sync = h.on_sync }

(* Concrete event values, used by tests and by trace-replay oracles. *)
type t =
  | Read of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Write of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Region_enter of { loc : Loc.t; thread : int; time : int }
  | Region_iter of { loc : Loc.t; thread : int; time : int }
  | Region_exit of { loc : Loc.t; end_loc : Loc.t; iterations : int; thread : int; time : int }
  | Alloc of { base : int; len : int; var : int }
  | Free of { base : int; len : int; var : int }
  | Call of { loc : Loc.t; func : int; thread : int; time : int }
  | Return of { func : int; thread : int; time : int }
  | Thread_end of { thread : int }
  | Sync of { kind : sync_kind; obj : int; thread : int; time : int }

let class_of = function
  | Read _ | Write _ -> Class.Memory
  | Region_enter _ | Region_iter _ | Region_exit _ -> Class.Region
  | Call _ | Return _ | Thread_end _ -> Class.Frame
  | Alloc _ | Free _ -> Class.Alloc
  | Sync _ -> Class.Sync

(* -- stable printer -------------------------------------------------------- *)

(* One constructor per line, stable across releases: ddpcheck embeds
   these lines in shrunk-counterexample dumps, and the format is pinned
   by a test.  Keep field order identical to the constructor. *)

let sync_kind_name = function
  | Task_spawn -> "task_spawn"
  | Task_join -> "task_join"
  | Lock_acquire -> "lock_acquire"
  | Lock_release -> "lock_release"

let to_string = function
  | Read { addr; loc; var; thread; time; locked } ->
    Printf.sprintf "Read addr=%d loc=%s var=%d thread=%d time=%d locked=%b" addr
      (Loc.to_string loc) var thread time locked
  | Write { addr; loc; var; thread; time; locked } ->
    Printf.sprintf "Write addr=%d loc=%s var=%d thread=%d time=%d locked=%b" addr
      (Loc.to_string loc) var thread time locked
  | Region_enter { loc; thread; time } ->
    Printf.sprintf "Region_enter loc=%s thread=%d time=%d" (Loc.to_string loc) thread time
  | Region_iter { loc; thread; time } ->
    Printf.sprintf "Region_iter loc=%s thread=%d time=%d" (Loc.to_string loc) thread time
  | Region_exit { loc; end_loc; iterations; thread; time } ->
    Printf.sprintf "Region_exit loc=%s end_loc=%s iterations=%d thread=%d time=%d"
      (Loc.to_string loc) (Loc.to_string end_loc) iterations thread time
  | Alloc { base; len; var } -> Printf.sprintf "Alloc base=%d len=%d var=%d" base len var
  | Free { base; len; var } -> Printf.sprintf "Free base=%d len=%d var=%d" base len var
  | Call { loc; func; thread; time } ->
    Printf.sprintf "Call loc=%s func=%d thread=%d time=%d" (Loc.to_string loc) func thread time
  | Return { func; thread; time } ->
    Printf.sprintf "Return func=%d thread=%d time=%d" func thread time
  | Thread_end { thread } -> Printf.sprintf "Thread_end thread=%d" thread
  | Sync { kind; obj; thread; time } ->
    Printf.sprintf "Sync kind=%s obj=%d thread=%d time=%d" (sync_kind_name kind) obj thread
      time

let pp ppf e = Format.pp_print_string ppf (to_string e)

let collector () =
  let acc = ref [] in
  let push e = acc := e :: !acc in
  let hooks =
    {
      on_read =
        (fun ~addr ~loc ~var ~thread ~time ~locked ->
          push (Read { addr; loc; var; thread; time; locked }));
      on_write =
        (fun ~addr ~loc ~var ~thread ~time ~locked ->
          push (Write { addr; loc; var; thread; time; locked }));
      on_region_enter = (fun ~loc ~kind:Loop ~thread ~time -> push (Region_enter { loc; thread; time }));
      on_region_iter = (fun ~loc ~thread ~time -> push (Region_iter { loc; thread; time }));
      on_region_exit =
        (fun ~loc ~end_loc ~kind:Loop ~iterations ~thread ~time ->
          push (Region_exit { loc; end_loc; iterations; thread; time }));
      on_alloc = (fun ~base ~len ~var -> push (Alloc { base; len; var }));
      on_free = (fun ~base ~len ~var -> push (Free { base; len; var }));
      on_call = (fun ~loc ~func ~thread ~time -> push (Call { loc; func; thread; time }));
      on_return = (fun ~func ~thread ~time -> push (Return { func; thread; time }));
      on_thread_end = (fun ~thread -> push (Thread_end { thread }));
      on_sync = (fun ~kind ~obj ~thread ~time -> push (Sync { kind; obj; thread; time }));
    }
  in
  (hooks, fun () -> List.rev !acc)

(* Replay a concrete event list into a hooks record: lets oracles and
   profilers consume recorded traces interchangeably with live runs. *)
let dispatch hooks e =
  match e with
  | Read { addr; loc; var; thread; time; locked } ->
    hooks.on_read ~addr ~loc ~var ~thread ~time ~locked
  | Write { addr; loc; var; thread; time; locked } ->
    hooks.on_write ~addr ~loc ~var ~thread ~time ~locked
  | Region_enter { loc; thread; time } -> hooks.on_region_enter ~loc ~kind:Loop ~thread ~time
  | Region_iter { loc; thread; time } -> hooks.on_region_iter ~loc ~thread ~time
  | Region_exit { loc; end_loc; iterations; thread; time } ->
    hooks.on_region_exit ~loc ~end_loc ~kind:Loop ~iterations ~thread ~time
  | Alloc { base; len; var } -> hooks.on_alloc ~base ~len ~var
  | Free { base; len; var } -> hooks.on_free ~base ~len ~var
  | Call { loc; func; thread; time } -> hooks.on_call ~loc ~func ~thread ~time
  | Return { func; thread; time } -> hooks.on_return ~func ~thread ~time
  | Thread_end { thread } -> hooks.on_thread_end ~thread
  | Sync { kind; obj; thread; time } -> hooks.on_sync ~kind ~obj ~thread ~time

let replay hooks events = List.iter (fun e -> dispatch hooks e) events
