(** Instrumentation events emitted by the MiniIR interpreter, structured
    as a typed algebra of event {e classes}.

    This is the contract between the "instrumented target program" (the
    interpreter, standing in for the paper's LLVM pass) and every
    profiler.  Events fall into five classes:

    {ul
    {- [Memory] — read/write accesses, the profiling hot path;}
    {- [Region] — loop-region enter/iter/exit boundaries;}
    {- [Frame] — call/return/thread-end control events;}
    {- [Alloc] — allocation/free lifetime events;}
    {- [Sync] — task/lock events, reserved for DAG race detection
       (never emitted by the current interpreter, but first-class in
       the vocabulary: serializable, printable, replayable).}}

    Each class has a small record of labelled callbacks (a per-class
    handler).  The fused {!hooks} record the interpreter calls is the
    flat product of all five; hooks are plain functions so the hot path
    allocates nothing.  Consumers should build hooks through
    {!Handler}, which lets a profiler or sink declare exactly which
    classes it subscribes to. *)

type region_kind = Loop

type sync_kind = Task_spawn | Task_join | Lock_acquire | Lock_release
(** Reserved vocabulary for the [Sync] class: OpenMP-style task
    spawn/join and lock acquire/release, keyed by an opaque object id. *)

(** Event classes: the subscription vocabulary of the algebra. *)
module Class : sig
  type t = Memory | Region | Frame | Alloc | Sync

  val all : t list
  (** Every class, in declaration order. *)

  val name : t -> string
  (** Stable lower-case name, used in trace headers and [list-modes]. *)

  val of_name : string -> t option
  val compare : t -> t -> int
  val equal : t -> t -> bool
end

(** {1 Per-class handlers} *)

type memory_handler = {
  on_read : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_write : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
}

type region_handler = {
  on_region_enter : loc:Loc.t -> kind:region_kind -> thread:int -> time:int -> unit;
  on_region_iter : loc:Loc.t -> thread:int -> time:int -> unit;
  on_region_exit :
    loc:Loc.t -> end_loc:Loc.t -> kind:region_kind -> iterations:int -> thread:int -> time:int -> unit;
}

type frame_handler = {
  on_call : loc:Loc.t -> func:int -> thread:int -> time:int -> unit;
  on_return : func:int -> thread:int -> time:int -> unit;
  on_thread_end : thread:int -> unit;
}

type alloc_handler = {
  on_alloc : base:int -> len:int -> var:int -> unit;
  on_free : base:int -> len:int -> var:int -> unit;
}

type sync_handler = {
  on_sync : kind:sync_kind -> obj:int -> thread:int -> time:int -> unit;
}

val null_memory : memory_handler
val null_region : region_handler
val null_frame : frame_handler
val null_alloc : alloc_handler
val null_sync : sync_handler

(** {1 The fused hot-path record} *)

type hooks = {
  on_read : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_write : addr:int -> loc:Loc.t -> var:int -> thread:int -> time:int -> locked:bool -> unit;
  on_region_enter : loc:Loc.t -> kind:region_kind -> thread:int -> time:int -> unit;
  on_region_iter : loc:Loc.t -> thread:int -> time:int -> unit;
  on_region_exit :
    loc:Loc.t -> end_loc:Loc.t -> kind:region_kind -> iterations:int -> thread:int -> time:int -> unit;
  on_alloc : base:int -> len:int -> var:int -> unit;
  on_free : base:int -> len:int -> var:int -> unit;
  on_call : loc:Loc.t -> func:int -> thread:int -> time:int -> unit;
      (** [loc] is the call site, [func] the interned procedure name *)
  on_return : func:int -> thread:int -> time:int -> unit;
  on_thread_end : thread:int -> unit;
  on_sync : kind:sync_kind -> obj:int -> thread:int -> time:int -> unit;
}

val null : hooks
(** Discards everything: the "uninstrumented" baseline run. *)

val fuse :
  memory:memory_handler ->
  region:region_handler ->
  frame:frame_handler ->
  alloc:alloc_handler ->
  sync:sync_handler ->
  hooks
(** Flatten five per-class handlers into one fused record.  Each field
    of the result {e is} the corresponding handler field (no wrapper
    closure), so fused dispatch compiles to the same direct calls as a
    hand-written record. *)

val memory_of : hooks -> memory_handler
val region_of : hooks -> region_handler
val frame_of : hooks -> frame_handler
val alloc_of : hooks -> alloc_handler
val sync_of : hooks -> sync_handler
(** Per-class projections: the inverse of {!fuse}.  Projection then
    re-fusing yields a record with physically identical fields. *)

(** {1 Concrete events} *)

(** Concrete events, for tests and replay oracles. *)
type t =
  | Read of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Write of { addr : int; loc : Loc.t; var : int; thread : int; time : int; locked : bool }
  | Region_enter of { loc : Loc.t; thread : int; time : int }
  | Region_iter of { loc : Loc.t; thread : int; time : int }
  | Region_exit of { loc : Loc.t; end_loc : Loc.t; iterations : int; thread : int; time : int }
  | Alloc of { base : int; len : int; var : int }
  | Free of { base : int; len : int; var : int }
  | Call of { loc : Loc.t; func : int; thread : int; time : int }
  | Return of { func : int; thread : int; time : int }
  | Thread_end of { thread : int }
  | Sync of { kind : sync_kind; obj : int; thread : int; time : int }

val class_of : t -> Class.t
(** The class a concrete event belongs to. *)

val sync_kind_name : sync_kind -> string
(** Stable lower-case name ([task_spawn], [lock_acquire], ...). *)

val to_string : t -> string
(** One event per line, stable format pinned by [test_event]: the
    constructor name followed by [field=value] pairs in declaration
    order.  Used verbatim in ddpcheck counterexample dumps. *)

val pp : Format.formatter -> t -> unit

val collector : unit -> hooks * (unit -> t list)
(** A hooks record that records events, and a function returning them in
    program order. *)

val dispatch : hooks -> t -> unit
(** Deliver one concrete event to a hooks record. *)

val replay : hooks -> t list -> unit
(** Feed a recorded trace into a hooks record. *)
