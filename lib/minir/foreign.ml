(* Foreign traces: a valgrind/lackey-style line dialect, the first
   external Source the event algebra admits.

   The dialect is deliberately minimal — what a binary-instrumentation
   tool that knows nothing about MiniIR can emit:

     L <addr>[,<size>]     load
     S <addr>[,<size>]     store
     M <addr>[,<size>]     modify (load then store)
     A <base>,<len>        allocation
     F <base>,<len>        free

   plus optional attribution markers that set sticky state for the
   events that follow (a tool with debug info can emit them; a tool
   without simply doesn't):

     = file <name>         current source file (escaped, interned)
     = line <n>            current source line
     = var <name>          current variable (escaped, interned)
     = thread <n>          current thread id

   Lines starting with '#' or '==' (valgrind banners) and 'I' lines
   (lackey instruction fetches) are ignored.  Addresses accept decimal
   or 0x-prefixed hex.  Sizes are accepted and ignored: MiniIR
   addresses are abstract cells, not bytes.

   An imported stream carries only the Memory and Alloc classes of the
   algebra.  Timestamps are synthesized monotonically (one tick per
   access), and dependence keys contain no timestamps, so a native
   stream exported with [export] and re-imported with [load] reproduces
   the native dependence set exactly: markers preserve loc/var/thread,
   the dialect preserves relative order, and that is all a dep key
   sees. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Attribution defaults for marker-less (genuinely foreign) traces. *)
let default_file = "foreign"
let default_var = "mem"

type state = {
  symtab : Symtab.t;
  mutable file : int;
  mutable line : int;
  mutable var : int;
  mutable thread : int;
  mutable time : int;
  mutable events : Event.t list;  (* reversed *)
}

let parse_int s =
  match int_of_string_opt s with Some n -> n | None -> fail "bad integer %S" s

(* "addr" or "addr,size"; the size is ignored. *)
let parse_addr s =
  match String.index_opt s ',' with
  | None -> parse_int s
  | Some i -> parse_int (String.sub s 0 i)

let parse_pair what s =
  match String.index_opt s ',' with
  | None -> fail "expected <%s>,<len> in %S" what s
  | Some i ->
    ( parse_int (String.sub s 0 i),
      parse_int (String.sub s (i + 1) (String.length s - i - 1)) )

let unescape raw =
  try Scanf.unescaped raw
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> fail "bad escaped name %S" raw

(* Line numbers are clamped into the packed-loc budget; a foreign tool's
   line 100000 still yields a valid, stable location. *)
let clamp_line n = max 1 (min n Loc.max_line)

let set_file st name =
  (* Symtab.file reserves id 0 for "no location", same as native locs. *)
  let id = Symtab.file st.symtab name in
  if id > Loc.max_file then fail "too many distinct files (max %d)" Loc.max_file;
  st.file <- id

let loc_of st = Loc.make ~file:st.file ~line:st.line

let marker st rest =
  match String.index_opt rest ' ' with
  | None -> fail "bad marker line %S" ("= " ^ rest)
  | Some sp ->
    let key = String.sub rest 0 sp in
    let value = String.sub rest (sp + 1) (String.length rest - sp - 1) in
    (match key with
    | "file" -> set_file st (unescape value)
    | "line" -> st.line <- clamp_line (parse_int value)
    | "var" -> st.var <- Ddp_util.Intern.intern st.symtab.Symtab.vars (unescape value)
    | "thread" -> st.thread <- parse_int value
    | _ -> fail "unknown marker %S" key)

let push st e = st.events <- e :: st.events

(* Defaults are interned lazily, only if an event needs them before any
   marker set the attribute.  A fully-markered trace (as [export]
   writes) therefore interns nothing beyond its markers, so id-order in
   the markers pins id-order in the resulting symtab. *)
let ensure_file st = if st.file < 0 then set_file st default_file

let ensure_var st =
  if st.var < 0 then st.var <- Ddp_util.Intern.intern st.symtab.Symtab.vars default_var

let access st ~write addr =
  ensure_file st;
  ensure_var st;
  st.time <- st.time + 1;
  let loc = loc_of st in
  let e =
    if write then
      Event.Write
        { addr; loc; var = st.var; thread = st.thread; time = st.time; locked = false }
    else
      Event.Read { addr; loc; var = st.var; thread = st.thread; time = st.time; locked = false }
  in
  push st e

let parse_line st line =
  let line = String.trim line in
  if line = "" then ()
  else if line.[0] = '#' then ()
  else if String.length line >= 2 && line.[0] = '=' && line.[1] = '=' then ()
    (* valgrind "==pid==" banner *)
  else
    match String.index_opt line ' ' with
    | None -> if line.[0] = 'I' then () else fail "malformed line %S" line
    | Some sp -> (
      let tag = String.sub line 0 sp in
      let rest = String.trim (String.sub line (sp + 1) (String.length line - sp - 1)) in
      match tag with
      | "L" -> access st ~write:false (parse_addr rest)
      | "S" -> access st ~write:true (parse_addr rest)
      | "M" ->
        (* modify = load then store of the same cell *)
        let addr = parse_addr rest in
        access st ~write:false addr;
        access st ~write:true addr
      | "A" ->
        let base, len = parse_pair "base" rest in
        ensure_var st;
        push st (Event.Alloc { base; len; var = st.var })
      | "F" ->
        let base, len = parse_pair "base" rest in
        ensure_var st;
        push st (Event.Free { base; len; var = st.var })
      | "=" -> marker st rest
      | "I" -> () (* lackey instruction fetch *)
      | _ -> fail "malformed line %S" line)

let create_state () =
  let symtab = Symtab.create () in
  { symtab; file = -1; line = 1; var = -1; thread = 0; time = 0; events = [] }

let parse_lines lines =
  let st = create_state () in
  List.iter (parse_line st) lines;
  (List.rev st.events, st.symtab)

let load ~path =
  let ic = open_in path in
  let st = create_state () in
  (try
     try
       while true do
         parse_line st (input_line ic)
       done
     with End_of_file -> ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     close_in ic;
     Printexc.raise_with_backtrace e bt);
  close_in ic;
  (List.rev st.events, st.symtab)

(* -- export ---------------------------------------------------------------- *)

(* Write a native event stream in the dialect, emitting attribution
   markers only when the state changes.  Only the Memory and Alloc
   classes can be expressed; everything else is dropped (the dialect is
   the intersection of what a foreign tool could have produced). *)
let export_events oc events (symtab : Symtab.t) =
  let cur_file = ref (-1) and cur_line = ref (-1) in
  let cur_var = ref (-1) and cur_thread = ref (-1) in
  let sync_attrs ~loc ~var ~thread =
    let file = Loc.file loc and line = clamp_line (Loc.line loc) in
    if file <> !cur_file then begin
      cur_file := file;
      Printf.fprintf oc "= file %s\n" (String.escaped (Symtab.file_name symtab file))
    end;
    if line <> !cur_line then begin
      cur_line := line;
      Printf.fprintf oc "= line %d\n" line
    end;
    if var <> !cur_var then begin
      cur_var := var;
      Printf.fprintf oc "= var %s\n" (String.escaped (Symtab.var_name symtab var))
    end;
    if thread <> !cur_thread then begin
      cur_thread := thread;
      Printf.fprintf oc "= thread %d\n" thread
    end
  in
  let sync_var ~var =
    if var <> !cur_var then begin
      cur_var := var;
      Printf.fprintf oc "= var %s\n" (String.escaped (Symtab.var_name symtab var))
    end
  in
  List.iter
    (fun e ->
      match e with
      | Event.Read { addr; loc; var; thread; _ } ->
        sync_attrs ~loc ~var ~thread;
        Printf.fprintf oc "L %d\n" addr
      | Event.Write { addr; loc; var; thread; _ } ->
        sync_attrs ~loc ~var ~thread;
        Printf.fprintf oc "S %d\n" addr
      | Event.Alloc { base; len; var } ->
        sync_var ~var;
        Printf.fprintf oc "A %d,%d\n" base len
      | Event.Free { base; len; var } ->
        sync_var ~var;
        Printf.fprintf oc "F %d,%d\n" base len
      | Event.Region_enter _ | Event.Region_iter _ | Event.Region_exit _ | Event.Call _
      | Event.Return _ | Event.Thread_end _ | Event.Sync _ ->
        ())
    events

(* Pin the whole native symtab up front: markers intern in encounter
   order, so replaying every name in id order reproduces the native ids
   exactly — dep-key payloads pack those ids, so this is what makes an
   export/import round trip key-identical, not merely name-identical. *)
let export_preamble oc (symtab : Symtab.t) =
  Printf.fprintf oc "# symtab preamble: pins interned ids in native order\n";
  Ddp_util.Intern.iter symtab.Symtab.files (fun _ name ->
      Printf.fprintf oc "= file %s\n" (String.escaped name));
  Ddp_util.Intern.iter symtab.Symtab.vars (fun _ name ->
      Printf.fprintf oc "= var %s\n" (String.escaped name))

let export ~path events symtab =
  let oc = open_out path in
  (try
     Printf.fprintf oc "# ddp foreign trace (lackey dialect)\n";
     export_preamble oc symtab;
     export_events oc events symtab
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
