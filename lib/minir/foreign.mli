(** Foreign traces: import/export of a valgrind/lackey-style line
    dialect — the first external {!Source} the event algebra admits.

    Dialect: [L <addr>]/[S <addr>]/[M <addr>] accesses (optional
    [,size] accepted and ignored), [A <base>,<len>]/[F <base>,<len>]
    allocation events, and sticky attribution markers
    [= file <name>], [= line <n>], [= var <name>], [= thread <n>].
    ['#'], ["=="] and ['I'] lines are ignored.  An imported stream
    carries only the [Memory] and [Alloc] classes; timestamps are
    synthesized monotonically.

    Dependence keys carry no timestamps, so [export] followed by
    [load] reproduces a native run's dependence set exactly: markers
    preserve loc/var/thread and the dialect preserves relative order. *)

exception Parse_error of string

val default_file : string
(** File name attributed to marker-less traces ("foreign"). *)

val default_var : string
(** Variable name attributed to marker-less traces ("mem"). *)

val load : path:string -> Event.t list * Symtab.t
(** Parse a foreign trace.  Raises {!Parse_error} on malformed input. *)

val parse_lines : string list -> Event.t list * Symtab.t
(** [load] over in-memory lines, for tests. *)

val export : path:string -> Event.t list -> Symtab.t -> unit
(** Write a native event stream in the dialect, with attribution
    markers emitted on change.  Only [Memory] and [Alloc] events are
    expressible; other classes are dropped.  A marker preamble replays
    the whole symtab in id order so an import re-interns identical ids
    (dep-key payloads pack ids, so the round trip is key-exact). *)
