(* The compose/subscribe layer of the event algebra.

   A [Handler.t] is a bundle of optional per-class handlers: [None]
   means "not subscribed" — events of that class are dropped at fuse
   time with a null closure, costing one indirect call and nothing
   else.  [fuse] flattens a subscription list into the single flat
   [Event.hooks] record the interpreter sees:

   - a class with no subscribers gets the shared null closure;
   - a class with exactly one subscriber gets that subscriber's
     closures *physically* (no wrapper, so the no-boxing hot-path
     contract survives composition);
   - a class with N subscribers gets pairwise-teed closures, built
     once at fuse time (never per event). *)

type t = {
  memory : Event.memory_handler option;
  region : Event.region_handler option;
  frame : Event.frame_handler option;
  alloc : Event.alloc_handler option;
  sync : Event.sync_handler option;
}

let none = { memory = None; region = None; frame = None; alloc = None; sync = None }

let make ?memory ?region ?frame ?alloc ?sync () = { memory; region; frame; alloc; sync }

let subscribes t (c : Event.Class.t) =
  match c with
  | Event.Class.Memory -> Option.is_some t.memory
  | Event.Class.Region -> Option.is_some t.region
  | Event.Class.Frame -> Option.is_some t.frame
  | Event.Class.Alloc -> Option.is_some t.alloc
  | Event.Class.Sync -> Option.is_some t.sync

let classes t = List.filter (subscribes t) Event.Class.all

(* Full subscription: every class of an existing fused record. *)
let of_hooks (h : Event.hooks) =
  {
    memory = Some (Event.memory_of h);
    region = Some (Event.region_of h);
    frame = Some (Event.frame_of h);
    alloc = Some (Event.alloc_of h);
    sync = Some (Event.sync_of h);
  }

(* -- per-class tee (fan-out built once, at composition time) -------------- *)

let tee_memory (a : Event.memory_handler) (b : Event.memory_handler) : Event.memory_handler =
  {
    Event.on_read =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        a.Event.on_read ~addr ~loc ~var ~thread ~time ~locked;
        b.Event.on_read ~addr ~loc ~var ~thread ~time ~locked);
    on_write =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        a.Event.on_write ~addr ~loc ~var ~thread ~time ~locked;
        b.Event.on_write ~addr ~loc ~var ~thread ~time ~locked);
  }

let tee_region (a : Event.region_handler) (b : Event.region_handler) : Event.region_handler =
  {
    Event.on_region_enter =
      (fun ~loc ~kind ~thread ~time ->
        a.Event.on_region_enter ~loc ~kind ~thread ~time;
        b.Event.on_region_enter ~loc ~kind ~thread ~time);
    on_region_iter =
      (fun ~loc ~thread ~time ->
        a.Event.on_region_iter ~loc ~thread ~time;
        b.Event.on_region_iter ~loc ~thread ~time);
    on_region_exit =
      (fun ~loc ~end_loc ~kind ~iterations ~thread ~time ->
        a.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time;
        b.Event.on_region_exit ~loc ~end_loc ~kind ~iterations ~thread ~time);
  }

let tee_frame (a : Event.frame_handler) (b : Event.frame_handler) : Event.frame_handler =
  {
    Event.on_call =
      (fun ~loc ~func ~thread ~time ->
        a.Event.on_call ~loc ~func ~thread ~time;
        b.Event.on_call ~loc ~func ~thread ~time);
    on_return =
      (fun ~func ~thread ~time ->
        a.Event.on_return ~func ~thread ~time;
        b.Event.on_return ~func ~thread ~time);
    on_thread_end =
      (fun ~thread ->
        a.Event.on_thread_end ~thread;
        b.Event.on_thread_end ~thread);
  }

let tee_alloc (a : Event.alloc_handler) (b : Event.alloc_handler) : Event.alloc_handler =
  {
    Event.on_alloc =
      (fun ~base ~len ~var ->
        a.Event.on_alloc ~base ~len ~var;
        b.Event.on_alloc ~base ~len ~var);
    on_free =
      (fun ~base ~len ~var ->
        a.Event.on_free ~base ~len ~var;
        b.Event.on_free ~base ~len ~var);
  }

let tee_sync (a : Event.sync_handler) (b : Event.sync_handler) : Event.sync_handler =
  {
    Event.on_sync =
      (fun ~kind ~obj ~thread ~time ->
        a.Event.on_sync ~kind ~obj ~thread ~time;
        b.Event.on_sync ~kind ~obj ~thread ~time);
  }

(* -- fusion ---------------------------------------------------------------- *)

let merge tee null_h subs =
  match subs with
  | [] -> null_h
  | [ h ] -> h (* single subscriber: its closures, physically *)
  | first :: rest -> List.fold_left tee first rest

let fuse handlers =
  match handlers with
  | [] -> Event.null (* physically: [fuse [] == Event.null] *)
  | _ ->
    let pick f = List.filter_map f handlers in
    Event.fuse
      ~memory:(merge tee_memory Event.null_memory (pick (fun h -> h.memory)))
      ~region:(merge tee_region Event.null_region (pick (fun h -> h.region)))
      ~frame:(merge tee_frame Event.null_frame (pick (fun h -> h.frame)))
      ~alloc:(merge tee_alloc Event.null_alloc (pick (fun h -> h.alloc)))
      ~sync:(merge tee_sync Event.null_sync (pick (fun h -> h.sync)))

let hooks t = fuse [ t ]

let pp_class_list cs =
  match cs with
  | [] -> "(none)"
  | cs -> String.concat "+" (List.map Event.Class.name cs)

let pp_classes ppf t = Format.pp_print_string ppf (pp_class_list (classes t))
