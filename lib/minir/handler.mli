(** Compose/subscribe layer of the event algebra.

    A handler bundles optional per-class callbacks — [None] means "not
    subscribed".  {!fuse} flattens a list of handlers into the single
    flat {!Event.hooks} record the interpreter calls.  Composition cost
    is paid once at fuse time, never per event:

    {ul
    {- no subscribers to a class → the shared null closure;}
    {- exactly one subscriber → that subscriber's closures, physically
       (no wrapper: the zero-allocation hot-path contract survives);}
    {- N subscribers → pairwise-teed closures built at fuse time.}}

    [fuse [] == Event.null] holds physically. *)

type t = {
  memory : Event.memory_handler option;
  region : Event.region_handler option;
  frame : Event.frame_handler option;
  alloc : Event.alloc_handler option;
  sync : Event.sync_handler option;
}

val none : t
(** Subscribed to nothing. *)

val make :
  ?memory:Event.memory_handler ->
  ?region:Event.region_handler ->
  ?frame:Event.frame_handler ->
  ?alloc:Event.alloc_handler ->
  ?sync:Event.sync_handler ->
  unit ->
  t
(** Subscribe to exactly the classes whose handler is given. *)

val subscribes : t -> Event.Class.t -> bool
val classes : t -> Event.Class.t list
(** The classes this handler consumes, in {!Event.Class.all} order. *)

val of_hooks : Event.hooks -> t
(** Full subscription wrapping an existing fused record: every class,
    each projected with {!Event.memory_of} and friends. *)

val fuse : t list -> Event.hooks
(** Flatten a subscription list into one fused hot-path record.
    [fuse []] returns [Event.null] itself. *)

val hooks : t -> Event.hooks
(** [hooks t = fuse [t]]. *)

val tee_memory : Event.memory_handler -> Event.memory_handler -> Event.memory_handler
val tee_region : Event.region_handler -> Event.region_handler -> Event.region_handler
val tee_frame : Event.frame_handler -> Event.frame_handler -> Event.frame_handler
val tee_alloc : Event.alloc_handler -> Event.alloc_handler -> Event.alloc_handler
val tee_sync : Event.sync_handler -> Event.sync_handler -> Event.sync_handler
(** Per-class fan-out: deliver to [a] then [b]. *)

val pp_class_list : Event.Class.t list -> string
(** ["memory+region+alloc"], or ["(none)"]. *)

val pp_classes : Format.formatter -> t -> unit
(** {!pp_class_list} of {!classes}. *)
