(* The MiniIR interpreter: the stand-in for the paper's LLVM
   instrumentation.  Every scalar/array load and store emits an event
   through [Event.hooks], carrying address, source line, variable id,
   thread id, a global timestamp and whether the thread holds a lock.

   Simulated threads ([Par] blocks) are run on OCaml 5 effects: each
   thread performs [Yield] at statement and loop-iteration boundaries and
   a seeded random scheduler picks the next runnable thread, so the
   interleaving — and hence every profiled trace — is deterministic and
   replayable for a given seed. *)

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type scalar_binding = { addr : int; var : int }
type array_binding = { base : int; len : int; avar : int; mutable freed : bool }

type binding =
  | Scalar of scalar_binding
  | Arr of array_binding

module Env = Map.Make (String)

type thread_state = {
  tid : int;
  mutable held : int list;  (* lock ids currently held, innermost first *)
  mutable depth : int;  (* procedure-call depth, for recursion guard *)
  scheduled : bool;  (* true inside a Par: Yield effects are meaningful *)
  (* Task runtime only (empty otherwise): one pending-children list per
     enclosing frame (program body / task body / procedure body),
     innermost first.  [Spawn] pushes into the head; [Sync] — explicit or
     the implicit one at frame exit — joins and clears the head. *)
  mutable frames : int list ref list;
  mutable waiting : int list;  (* child tids this task is stalled on at a Sync *)
}

(* -- effects-based cooperative threads ---------------------------------- *)

type _ Effect.t += Yield : unit Effect.t

type status = Finished | Paused of (unit, status) Effect.Deep.continuation

(* The fork-join task scheduler ([Spawn]/[Sync] programs).  Unlike
   [run_par]'s fixed thread array, tasks are created dynamically (a
   recursive fib spawns hundreds), so slots grow; [choose] picks among
   the currently runnable tasks — seeded-random by default, or an
   injected schedule for exhaustive-interleaving oracles. *)
type task_slot = {
  sts : thread_state;
  mutable st :
    [ `Not_started of (unit -> unit)
    | `Paused of (unit, status) Effect.Deep.continuation
    | `Finished ];
}

type task_sched = {
  mutable slots : task_slot array;  (* first [ntasks] entries are live *)
  mutable ntasks : int;
  mutable next_tid : int;
  tdone : (int, unit) Hashtbl.t;  (* finished task tids *)
  mutable live : int;  (* tasks not yet finished *)
  mutable stalls : int;  (* syncs that had to wait for an unfinished child *)
  choose : int -> int;  (* #runnable -> index of the task to step *)
}

type ctx = {
  hooks : Event.hooks;
  mem : Memory.t;
  symtab : Symtab.t;
  file : int;
  mutable time : int;
  mutable reads : int;
  mutable writes : int;
  sched_rng : Ddp_util.Rng.t;
  prog_rng : Ddp_util.Rng.t;
  locks : (int, int) Hashtbl.t;  (* lock id -> owner tid *)
  funcs : (string, Ast.func) Hashtbl.t;
  mutable globals : binding Env.t;  (* top-level bindings, visible to procedures *)
  mutable tasks : task_sched option;  (* Some iff running a Spawn/Sync program *)
}

let max_call_depth = 200
let max_tasks = 200_000

type stats = {
  reads : int;
  writes : int;
  accesses : int;
  addresses : int;
  final_time : int;
  lines : int;
  sync_stalls : int;
}

let yield ts = if ts.scheduled then Effect.perform Yield

let spawn fn =
  Effect.Deep.match_with
    (fun () ->
      fn ();
      Finished)
    ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some (fun (k : (a, status) Effect.Deep.continuation) -> Paused k)
          | _ -> None);
    }

(* -- task scheduler bookkeeping ------------------------------------------ *)

let add_task sched sts fn =
  if sched.ntasks >= max_tasks then error "task limit (%d) exceeded" max_tasks;
  let slot = { sts; st = `Not_started fn } in
  if sched.ntasks = Array.length sched.slots then begin
    let grown = Array.make (max 8 (2 * Array.length sched.slots)) slot in
    Array.blit sched.slots 0 grown 0 sched.ntasks;
    sched.slots <- grown
  end;
  sched.slots.(sched.ntasks) <- slot;
  sched.ntasks <- sched.ntasks + 1;
  sched.live <- sched.live + 1

(* A task is runnable unless it is parked at a [Sync] whose children have
   not all finished.  (Lock waiters poll, so they stay runnable.) *)
let task_runnable sched slot =
  match slot.st with
  | `Finished -> false
  | `Not_started _ | `Paused _ ->
    List.for_all (Hashtbl.mem sched.tdone) slot.sts.waiting

(* -- event emission ------------------------------------------------------ *)

let tick (ctx : ctx) =
  let t = ctx.time in
  ctx.time <- t + 1;
  t

let emit_read (ctx : ctx) ts ~addr ~loc ~var =
  ctx.reads <- ctx.reads + 1;
  ctx.hooks.on_read ~addr ~loc ~var ~thread:ts.tid ~time:(tick ctx) ~locked:(ts.held <> [])

let emit_write (ctx : ctx) ts ~addr ~loc ~var =
  ctx.writes <- ctx.writes + 1;
  ctx.hooks.on_write ~addr ~loc ~var ~thread:ts.tid ~time:(tick ctx) ~locked:(ts.held <> [])

(* -- bindings ------------------------------------------------------------ *)

let lookup env name =
  match Env.find_opt name env with
  | Some b -> b
  | None -> error "undefined variable %S" name

let scalar env name =
  match lookup env name with
  | Scalar s -> s
  | Arr _ -> error "%S is an array, expected a scalar" name

let array env name =
  match lookup env name with
  | Arr a -> if a.freed then error "use of freed array %S" name else a
  | Scalar _ -> error "%S is a scalar, expected an array" name

(* -- expressions --------------------------------------------------------- *)

let intrinsic ctx name args =
  let one () = match args with [ x ] -> x | _ -> error "%s expects 1 argument" name in
  let f1 g = Value.F (g (Value.to_float (one ()))) in
  match name with
  | "sqrt" -> f1 sqrt
  | "sin" -> f1 sin
  | "cos" -> f1 cos
  | "exp" -> f1 exp
  | "log" -> f1 log
  | "floor" -> f1 Float.round
  | "abs" -> (
    match one () with Value.I n -> Value.I (abs n) | Value.F x -> Value.F (Float.abs x))
  | "int" -> Value.I (Value.to_int (one ()))
  | "float" -> Value.F (Value.to_float (one ()))
  | "assert" ->
    if not (Value.truth (one ())) then error "assertion failed in target program";
    Value.I 1
  | "rand" ->
    if args <> [] then error "rand expects no arguments";
    Value.F (Ddp_util.Rng.float ctx.prog_rng 1.0)
  | "rand_int" -> Value.I (Ddp_util.Rng.int ctx.prog_rng (Value.to_int (one ())))
  | _ -> error "unknown intrinsic %S" name

let rec eval ctx ts env ~line e =
  let loc = Loc.make ~file:ctx.file ~line in
  match e with
  | Ast.Int n -> Value.I n
  | Ast.Float x -> Value.F x
  | Ast.Var name ->
    let s = scalar env name in
    emit_read ctx ts ~addr:s.addr ~loc ~var:s.var;
    Memory.get ctx.mem s.addr
  | Ast.Load (name, ix) ->
    let a = array env name in
    let i = Value.to_int (eval ctx ts env ~line ix) in
    if i < 0 || i >= a.len then error "array %S: index %d out of bounds [0,%d)" name i a.len;
    emit_read ctx ts ~addr:(a.base + i) ~loc ~var:a.avar;
    Memory.get ctx.mem (a.base + i)
  | Ast.Binop (op, l, r) ->
    let lv = eval ctx ts env ~line l in
    let rv = eval ctx ts env ~line r in
    Value.binop op lv rv
  | Ast.Unop (op, x) -> Value.unop op (eval ctx ts env ~line x)
  | Ast.Intrinsic (name, args) ->
    let vals = List.map (eval ctx ts env ~line) args in
    intrinsic ctx name vals

(* -- statements ---------------------------------------------------------- *)

let alloc_scalar ctx env name ~line:_ =
  let addr = Memory.alloc ctx.mem 1 in
  let var = Symtab.var ctx.symtab name in
  ctx.hooks.on_alloc ~base:addr ~len:1 ~var;
  (Env.add name (Scalar { addr; var }) env, Scalar { addr; var })

let free_binding ctx = function
  | Scalar { addr; var } ->
    ctx.hooks.on_free ~base:addr ~len:1 ~var;
    Memory.free ctx.mem ~base:addr ~len:1
  | Arr a ->
    if not a.freed then begin
      a.freed <- true;
      ctx.hooks.on_free ~base:a.base ~len:a.len ~var:a.avar;
      Memory.free ctx.mem ~base:a.base ~len:a.len
    end

(* Join every child spawned so far in [ts]'s innermost frame: park until
   they have all finished (each wait is a [Yield] back to the scheduler,
   which will not resume us while [waiting] has unfinished tids), then
   emit one [Task_join] per child in spawn order.  Outside the task
   runtime the frame stack is empty and this is a no-op. *)
let task_sync ctx ts =
  match ts.frames with
  | [] -> ()
  | pending :: _ ->
    let sched = match ctx.tasks with Some s -> s | None -> assert false in
    let children = List.rev !pending in
    pending := [];
    let unfinished () =
      List.filter (fun tid -> not (Hashtbl.mem sched.tdone tid)) children
    in
    (match unfinished () with
    | [] -> ()
    | _ :: _ ->
      sched.stalls <- sched.stalls + 1;
      let rec wait () =
        match unfinished () with
        | [] -> ts.waiting <- []
        | w ->
          ts.waiting <- w;
          Effect.perform Yield;
          wait ()
      in
      wait ());
    List.iter
      (fun child ->
        ctx.hooks.on_sync ~kind:Event.Task_join ~obj:child ~thread:ts.tid ~time:ctx.time)
      children

let rec exec_stmt ctx ts env scope (s : Ast.stmt) =
  yield ts;
  let line = s.line in
  let loc = Loc.make ~file:ctx.file ~line in
  match s.kind with
  | Ast.Nop -> env
  | Ast.Local (name, e) ->
    let v = eval ctx ts env ~line e in
    let env, b = alloc_scalar ctx env name ~line in
    (match b with
    | Scalar { addr; var } ->
      emit_write ctx ts ~addr ~loc ~var;
      Memory.set ctx.mem addr v
    | Arr _ -> assert false);
    scope := b :: !scope;
    env
  | Ast.Assign (name, e) ->
    let v = eval ctx ts env ~line e in
    let sc = scalar env name in
    emit_write ctx ts ~addr:sc.addr ~loc ~var:sc.var;
    Memory.set ctx.mem sc.addr v;
    env
  | Ast.Store (name, ix, e) ->
    let a = array env name in
    let i = Value.to_int (eval ctx ts env ~line ix) in
    if i < 0 || i >= a.len then error "array %S: index %d out of bounds [0,%d)" name i a.len;
    let v = eval ctx ts env ~line e in
    emit_write ctx ts ~addr:(a.base + i) ~loc ~var:a.avar;
    Memory.set ctx.mem (a.base + i) v;
    env
  | Ast.Array_decl (name, size) ->
    let len = Value.to_int (eval ctx ts env ~line size) in
    if len <= 0 then error "array %S: size must be positive, got %d" name len;
    let base = Memory.alloc ctx.mem len in
    let var = Symtab.var ctx.symtab name in
    ctx.hooks.on_alloc ~base ~len ~var;
    let b = Arr { base; len; avar = var; freed = false } in
    scope := b :: !scope;
    Env.add name b env
  | Ast.Free name ->
    let a = array env name in
    free_binding ctx (Arr a);
    env
  | Ast.If (cond, then_, else_) ->
    let c = eval ctx ts env ~line cond in
    if Value.truth c then exec_block ctx ts env then_ else exec_block ctx ts env else_;
    env
  | Ast.For { index; lo; hi; step; body; parallel = _; reduction = _ } ->
    let end_loc = Loc.make ~file:ctx.file ~line:s.end_line in
    let lo_v = eval ctx ts env ~line lo in
    let env', b = alloc_scalar ctx env index ~line in
    let idx = match b with Scalar sc -> sc | Arr _ -> assert false in
    emit_write ctx ts ~addr:idx.addr ~loc ~var:idx.var;
    Memory.set ctx.mem idx.addr lo_v;
    ctx.hooks.on_region_enter ~loc ~kind:Event.Loop ~thread:ts.tid ~time:ctx.time;
    let iterations = ref 0 in
    let continue_ () =
      let hi_v = eval ctx ts env' ~line hi in
      emit_read ctx ts ~addr:idx.addr ~loc ~var:idx.var;
      let iv = Memory.get ctx.mem idx.addr in
      Value.truth (Value.binop Value.Lt iv hi_v)
    in
    while continue_ () do
      ctx.hooks.on_region_iter ~loc ~thread:ts.tid ~time:ctx.time;
      incr iterations;
      yield ts;
      exec_block ctx ts env' body;
      (* increment: i = i + step, attributed to the header line *)
      let step_v = eval ctx ts env' ~line step in
      emit_read ctx ts ~addr:idx.addr ~loc ~var:idx.var;
      let iv = Memory.get ctx.mem idx.addr in
      emit_write ctx ts ~addr:idx.addr ~loc ~var:idx.var;
      Memory.set ctx.mem idx.addr (Value.binop Value.Add iv step_v)
    done;
    ctx.hooks.on_region_exit ~loc ~end_loc ~kind:Event.Loop ~iterations:!iterations
      ~thread:ts.tid ~time:ctx.time;
    free_binding ctx b;
    env
  | Ast.While (cond, body) ->
    let end_loc = Loc.make ~file:ctx.file ~line:s.end_line in
    ctx.hooks.on_region_enter ~loc ~kind:Event.Loop ~thread:ts.tid ~time:ctx.time;
    let iterations = ref 0 in
    while Value.truth (eval ctx ts env ~line cond) do
      ctx.hooks.on_region_iter ~loc ~thread:ts.tid ~time:ctx.time;
      incr iterations;
      yield ts;
      exec_block ctx ts env body
    done;
    ctx.hooks.on_region_exit ~loc ~end_loc ~kind:Event.Loop ~iterations:!iterations
      ~thread:ts.tid ~time:ctx.time;
    env
  | Ast.Lock id ->
    acquire ctx ts id;
    env
  | Ast.Unlock id ->
    release ctx ts id;
    env
  | Ast.Par blocks ->
    if ctx.tasks <> None then error "Par and Spawn cannot be mixed";
    if ts.scheduled then error "nested Par is not supported";
    run_par ctx ts env blocks;
    env
  | Ast.Spawn body -> (
    match ctx.tasks with
    | None -> error "Spawn outside the task runtime"
    | Some sched ->
      let pending =
        match ts.frames with p :: _ -> p | [] -> error "Spawn outside the task runtime"
      in
      let child_tid = sched.next_tid in
      sched.next_tid <- child_tid + 1;
      let cts =
        {
          tid = child_tid;
          held = [];
          depth = ts.depth;  (* inherited: bounds runaway spawn-recursion too *)
          scheduled = true;
          frames = [ ref [] ];  (* the task body is itself a frame *)
          waiting = [];
        }
      in
      let fn () = exec_frame ctx cts env body in
      add_task sched cts fn;
      pending := child_tid :: !pending;
      ctx.hooks.on_sync ~kind:Event.Task_spawn ~obj:child_tid ~thread:ts.tid ~time:ctx.time;
      env)
  | Ast.Sync ->
    task_sync ctx ts;
    env
  | Ast.Call_proc (name, args) ->
    let f =
      match Hashtbl.find_opt ctx.funcs name with
      | Some f -> f
      | None -> error "call to undefined procedure %S" name
    in
    if List.length args <> List.length f.Ast.params then
      error "procedure %S expects %d argument(s), got %d" name (List.length f.Ast.params)
        (List.length args);
    if ts.depth >= max_call_depth then error "call depth limit (%d) exceeded" max_call_depth;
    let arg_vals = List.map (eval ctx ts env ~line) args in
    let fid = Symtab.var ctx.symtab name in
    ctx.hooks.on_call ~loc ~func:fid ~thread:ts.tid ~time:ctx.time;
    ts.depth <- ts.depth + 1;
    (* Frame: globals + parameters; parameter writes are attributed to the
       procedure's header line, like a prologue. *)
    let header_loc = Loc.make ~file:ctx.file ~line:f.Ast.header_line in
    let scope = ref [] in
    let fenv =
      List.fold_left2
        (fun env pname v ->
          let env, b = alloc_scalar ctx env pname ~line:f.Ast.header_line in
          (match b with
          | Scalar { addr; var } ->
            emit_write ctx ts ~addr ~loc:header_loc ~var;
            Memory.set ctx.mem addr v
          | Arr _ -> assert false);
          scope := b :: !scope;
          env)
        ctx.globals f.Ast.params arg_vals
    in
    (* Task runtime: a procedure body is a frame — children spawned
       inside it are implicitly joined before the call returns (the
       Cilk rule), so a callee can never leak running tasks. *)
    if ctx.tasks <> None then begin
      ts.frames <- ref [] :: ts.frames;
      exec_frame ctx ts fenv f.Ast.fbody;
      ts.frames <- List.tl ts.frames
    end
    else exec_block ctx ts fenv f.Ast.fbody;
    List.iter (free_binding ctx) !scope;
    ts.depth <- ts.depth - 1;
    ctx.hooks.on_return ~func:fid ~thread:ts.tid ~time:ctx.time;
    env

and exec_block ctx ts env block =
  let scope = ref [] in
  let final_env = List.fold_left (fun env s -> exec_stmt ctx ts env scope s) env block in
  ignore final_env;
  (* Scope exit: free in reverse declaration order. *)
  List.iter (free_binding ctx) !scope

(* A frame body in the task runtime: run the block, implicitly sync the
   frame's children, and only then free the block's locals — a pending
   child may still be reading them. *)
and exec_frame ctx ts env block =
  let scope = ref [] in
  let final_env = List.fold_left (fun env s -> exec_stmt ctx ts env scope s) env block in
  ignore final_env;
  task_sync ctx ts;
  List.iter (free_binding ctx) !scope

and acquire ctx ts id =
  let rec try_take () =
    match Hashtbl.find_opt ctx.locks id with
    | None ->
      Hashtbl.replace ctx.locks id ts.tid;
      ts.held <- id :: ts.held;
      ctx.hooks.on_sync ~kind:Event.Lock_acquire ~obj:id ~thread:ts.tid ~time:ctx.time
    | Some owner when owner = ts.tid -> error "thread %d re-locking lock %d" ts.tid id
    | Some _ ->
      if not ts.scheduled then error "main thread deadlocked on lock %d" id;
      Effect.perform Yield;
      try_take ()
  in
  try_take ()

and release ctx ts id =
  (match Hashtbl.find_opt ctx.locks id with
  | Some owner when owner = ts.tid -> Hashtbl.remove ctx.locks id
  | Some _ | None -> error "thread %d unlocking lock %d it does not hold" ts.tid id);
  ts.held <- List.filter (fun l -> l <> id) ts.held;
  ctx.hooks.on_sync ~kind:Event.Lock_release ~obj:id ~thread:ts.tid ~time:ctx.time

(* Fork one simulated thread per block (tids 1..n; the main thread is 0),
   interleave them with the seeded scheduler, join all. *)
and run_par ctx parent env blocks =
  let n = List.length blocks in
  let states =
    Array.of_list
      (List.mapi
         (fun i block ->
           let ts =
             { tid = i + 1; held = []; depth = 0; scheduled = true; frames = []; waiting = [] }
           in
           `Not_started (ts, fun () -> exec_block ctx ts env block))
         blocks)
  in
  (* Par is fork-join too: bracket the arms with the same Sync vocabulary
     tasks use, so Sync-consuming engines see one uniform shape.  Engines
     that don't subscribe to the class get null calls. *)
  for i = 1 to n do
    ctx.hooks.on_sync ~kind:Event.Task_spawn ~obj:i ~thread:parent.tid ~time:ctx.time
  done;
  let remaining = ref n in
  let max_steps = ref 0 in
  while !remaining > 0 do
    incr max_steps;
    if !max_steps > 100_000_000 then error "scheduler: livelock suspected";
    let pick = Ddp_util.Rng.int ctx.sched_rng n in
    (* Walk from a random start to the first non-finished thread: cheap and
       probabilistically fair. *)
    let rec find k =
      let i = (pick + k) mod n in
      match states.(i) with `Finished -> find (k + 1) | _ -> i
    in
    let i = find 0 in
    (match states.(i) with
    | `Not_started (ts, fn) -> (
      match spawn fn with
      | Finished ->
        ctx.hooks.on_thread_end ~thread:ts.tid;
        decr remaining;
        states.(i) <- `Finished
      | Paused k -> states.(i) <- `Paused (ts, k))
    | `Paused (ts, k) -> (
      match Effect.Deep.continue k () with
      | Finished ->
        ctx.hooks.on_thread_end ~thread:ts.tid;
        decr remaining;
        states.(i) <- `Finished
      | Paused k' -> states.(i) <- `Paused (ts, k'))
    | `Finished -> assert false)
  done;
  for i = 1 to n do
    ctx.hooks.on_sync ~kind:Event.Task_join ~obj:i ~thread:parent.tid ~time:ctx.time
  done

(* -- entry point --------------------------------------------------------- *)

(* The fork-join driver for [Spawn]/[Sync] programs: the whole top-level
   body runs as the root task (tid 0) under the dynamic scheduler, so
   spawn points interleave with their continuations exactly like any
   other pair of tasks.  When the root finishes, its implicit sync has
   (transitively) joined everything, so no task outlives the run. *)
let run_tasks ctx prog choose =
  let sched =
    {
      slots = [||];
      ntasks = 0;
      next_tid = 1;
      tdone = Hashtbl.create 64;
      live = 0;
      stalls = 0;
      choose;
    }
  in
  ctx.tasks <- Some sched;
  let root =
    { tid = 0; held = []; depth = 0; scheduled = true; frames = [ ref [] ]; waiting = [] }
  in
  let top_scope = ref [] in
  let root_fn () =
    let (_ : binding Env.t) =
      List.fold_left
        (fun env s ->
          let env' = exec_stmt ctx root env top_scope s in
          ctx.globals <- env';
          env')
        Env.empty prog.Ast.body
    in
    task_sync ctx root;  (* implicit program-end sync *)
    List.iter (free_binding ctx) !top_scope
  in
  add_task sched root root_fn;
  let steps = ref 0 in
  let runnable = ref [] in
  while sched.live > 0 do
    incr steps;
    if !steps > 100_000_000 then error "task scheduler: livelock suspected";
    runnable := [];
    for i = sched.ntasks - 1 downto 0 do
      if task_runnable sched sched.slots.(i) then runnable := i :: !runnable
    done;
    let n = List.length !runnable in
    if n = 0 then error "task deadlock: %d task(s) blocked at sync" sched.live;
    let choice = sched.choose n in
    if choice < 0 || choice >= n then
      error "schedule chose %d out of %d runnable task(s)" choice n;
    let slot = sched.slots.(List.nth !runnable choice) in
    let finish () =
      Hashtbl.replace sched.tdone slot.sts.tid ();
      slot.st <- `Finished;
      sched.live <- sched.live - 1;
      ctx.hooks.on_thread_end ~thread:slot.sts.tid
    in
    match slot.st with
    | `Not_started fn -> (
      match spawn fn with
      | Finished -> finish ()
      | Paused k -> slot.st <- `Paused k)
    | `Paused k -> (
      match Effect.Deep.continue k () with
      | Finished -> finish ()
      | Paused k' -> slot.st <- `Paused k')
    | `Finished -> assert false
  done;
  sched.stalls

let run ?(hooks = Event.null) ?(sched_seed = 42) ?(input_seed = 7) ?schedule ?symtab prog =
  let symtab = match symtab with Some s -> s | None -> Symtab.create () in
  let file = Symtab.file symtab prog.Ast.name in
  if file > Loc.max_file then error "too many distinct programs in one symtab";
  let lines = Ast.number prog in
  if lines > Loc.max_line then error "program too long: %d lines" lines;
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem funcs f.Ast.fname then error "duplicate procedure %S" f.Ast.fname;
      Hashtbl.add funcs f.Ast.fname f)
    prog.Ast.funcs;
  let ctx =
    {
      hooks;
      mem = Memory.create ();
      symtab;
      file;
      time = 0;
      reads = 0;
      writes = 0;
      sched_rng = Ddp_util.Rng.create sched_seed;
      prog_rng = Ddp_util.Rng.create input_seed;
      locks = Hashtbl.create 8;
      funcs;
      globals = Env.empty;
      tasks = None;
    }
  in
  let sync_stalls =
    if Ast.has_tasks prog then begin
      let choose =
        match schedule with
        | Some f -> f
        | None -> fun n -> Ddp_util.Rng.int ctx.sched_rng n
      in
      run_tasks ctx prog choose
    end
    else begin
      let ts =
        { tid = 0; held = []; depth = 0; scheduled = false; frames = []; waiting = [] }
      in
      (* The top-level scope is special: bindings become globals, visible to
         procedures, and are freed only when the program ends. *)
      let top_scope = ref [] in
      let (_ : binding Env.t) =
        List.fold_left
          (fun env s ->
            let env' = exec_stmt ctx ts env top_scope s in
            ctx.globals <- env';
            env')
          Env.empty prog.Ast.body
      in
      List.iter (free_binding ctx) !top_scope;
      hooks.on_thread_end ~thread:0;
      0
    end
  in
  {
    reads = ctx.reads;
    writes = ctx.writes;
    accesses = ctx.reads + ctx.writes;
    addresses = Memory.high_water ctx.mem;
    final_time = ctx.time;
    lines;
    sync_stalls;
  }

let trace ?sched_seed ?input_seed ?schedule ?symtab prog =
  let hooks, get = Event.collector () in
  let stats = run ~hooks ?sched_seed ?input_seed ?schedule ?symtab prog in
  (get (), stats)
