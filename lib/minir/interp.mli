(** The instrumenting MiniIR interpreter — the reproduction's analogue of
    the paper's LLVM instrumentation pass.

    Simulated threads are interleaved by a seeded deterministic scheduler
    built on OCaml 5 effects, so profiled traces are replayable. *)

exception Runtime_error of string

type stats = {
  reads : int;
  writes : int;
  accesses : int;  (** reads + writes: "#accesses" of Table I *)
  addresses : int;  (** distinct cells allocated: "#addresses" of Table I *)
  final_time : int;
  lines : int;  (** numbered source lines: the "LOC" analogue *)
  sync_stalls : int;
      (** task programs: syncs that had to wait for an unfinished child
          (0 when every child happened to finish first, and always 0 for
          non-task programs) *)
}

val run :
  ?hooks:Event.hooks ->
  ?sched_seed:int ->
  ?input_seed:int ->
  ?schedule:(int -> int) ->
  ?symtab:Symtab.t ->
  Ast.program ->
  stats
(** Execute a program, delivering instrumentation events to [hooks]
    (default: none — the "uninstrumented" baseline).  [sched_seed] drives
    the thread interleaving, [input_seed] the [rand]/[rand_int]
    intrinsics.  Numbers the program's lines as a side effect.

    Programs using [Spawn]/[Sync] run under a fork-join task scheduler:
    the top-level body is the root task (tid 0), every frame (program,
    task body, procedure body) implicitly syncs its children on exit, and
    [Task_spawn]/[Task_join] [Sync] events are emitted — plus
    [Lock_acquire]/[Lock_release] from [Lock]/[Unlock] everywhere.
    [schedule] overrides the seeded scheduler for task programs: given
    the number of currently runnable tasks [n], it must return a pick in
    [\[0, n)] — the hook exhaustive-interleaving oracles use to force
    every schedule of a small program.  Mixing [Par] with tasks is a
    runtime error. *)

val trace :
  ?sched_seed:int ->
  ?input_seed:int ->
  ?schedule:(int -> int) ->
  ?symtab:Symtab.t ->
  Ast.program ->
  Event.t list * stats
(** Run and collect the full event trace (tests and oracles only — the
    trace of a real workload is large). *)
