(* Trace files: record one run's instrumentation stream to disk and
   replay it later into any profiler or analysis.

   This supports the paper's reuse story operationally — the whole point
   of a generic profiler is that one collection serves many analyses, and
   a persisted trace lets those analyses run without re-executing the
   (slow) instrumented program.

   Format (version 2): a line-oriented text file.
     ddp-trace 2
     %class <name> <tag>...   (one per event class, self-describing)
     <event lines>
     %var <id> <name>         (symbol table, written after the events)
     %file <id> <name>
     %end                     (seal: absent means truncated)
   Event lines are single characters plus integer fields; locations are
   stored packed (they are plain ints).  The [%class] header maps each
   event class of the algebra to the tags it owns, so a reader can skip
   events of a declared-but-unknown class instead of dying on them —
   adding a class is a header change, not a format break.  Variable and
   file names may contain no newlines; names are written escaped with
   String.escaped.

   Version 1 (no [%class] header, no Sync events) is still read
   bit-for-bit by [load]; [save ~version:`V1] writes it for tests.

   Parsing is built on {!Stream}, an incremental push decoder: callers
   feed byte chunks split at arbitrary boundaries (the daemon receives
   traces as network frames) and pull decoded events; input ending
   mid-line yields [Need_more], never a parse error.  [load] is the
   whole-file specialization. *)

let magic_v1 = "ddp-trace 1"
let magic = "ddp-trace 2"

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* -- the class/tag vocabulary --------------------------------------------- *)

(* Tags owned by each class, in event-declaration order.  This is the
   v2 header; v1 files implicitly use the same map minus [Sync]. *)
let class_tags = function
  | Event.Class.Memory -> [ 'R'; 'W' ]
  | Event.Class.Region -> [ 'B'; 'I'; 'E' ]
  | Event.Class.Frame -> [ 'C'; 'T'; 'X' ]
  | Event.Class.Alloc -> [ 'A'; 'F' ]
  | Event.Class.Sync -> [ 'Y' ]

let sync_kind_int = function
  | Event.Task_spawn -> 0
  | Event.Task_join -> 1
  | Event.Lock_acquire -> 2
  | Event.Lock_release -> 3

let sync_kind_of_int = function
  | 0 -> Some Event.Task_spawn
  | 1 -> Some Event.Task_join
  | 2 -> Some Event.Lock_acquire
  | 3 -> Some Event.Lock_release
  | _ -> None

(* -- writing --------------------------------------------------------------- *)

(* The writer is parameterized over a string sink so the same emitter
   serves [out_channel] recording and in-memory encoding ([to_buffer],
   which the daemon client uses to frame traces for the wire). *)

let emit_class_header emit =
  List.iter
    (fun c ->
      emit (Printf.sprintf "%%class %s" (Event.Class.name c));
      List.iter (fun tag -> emit (Printf.sprintf " %c" tag)) (class_tags c);
      emit "\n")
    Event.Class.all

let write_class_header oc = emit_class_header (output_string oc)
let bool_int b = if b then 1 else 0

(* Streaming hooks: events go straight to the sink, O(1) memory.
   Built class-by-class so the writer is itself a handler composition. *)
let emitter_handler emit =
  let p fmt = Printf.ksprintf emit fmt in
  Handler.make
    ~memory:
      {
        Event.on_read =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            p "R %d %d %d %d %d %d\n" addr loc var thread time (bool_int locked));
        on_write =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            p "W %d %d %d %d %d %d\n" addr loc var thread time (bool_int locked));
      }
    ~region:
      {
        Event.on_region_enter =
          (fun ~loc ~kind:Event.Loop ~thread ~time -> p "B %d %d %d\n" loc thread time);
        on_region_iter = (fun ~loc ~thread ~time -> p "I %d %d %d\n" loc thread time);
        on_region_exit =
          (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time ->
            p "E %d %d %d %d %d\n" loc end_loc iterations thread time);
      }
    ~frame:
      {
        Event.on_call =
          (fun ~loc ~func ~thread ~time -> p "C %d %d %d %d\n" loc func thread time);
        on_return = (fun ~func ~thread ~time -> p "T %d %d %d\n" func thread time);
        on_thread_end = (fun ~thread -> p "X %d\n" thread);
      }
    ~alloc:
      {
        Event.on_alloc = (fun ~base ~len ~var -> p "A %d %d %d\n" base len var);
        on_free = (fun ~base ~len ~var -> p "F %d %d %d\n" base len var);
      }
    ~sync:
      {
        Event.on_sync =
          (fun ~kind ~obj ~thread ~time ->
            p "Y %d %d %d %d\n" (sync_kind_int kind) obj thread time);
      }
    ()

let recorder_handler oc = emitter_handler (output_string oc)
let recorder oc = Handler.hooks (recorder_handler oc)

let emit_symtab emit (symtab : Symtab.t) =
  Ddp_util.Intern.iter symtab.Symtab.vars (fun id name ->
      emit (Printf.sprintf "%%var %d %s\n" id (String.escaped name)));
  Ddp_util.Intern.iter symtab.Symtab.files (fun id name ->
      emit (Printf.sprintf "%%file %d %s\n" id (String.escaped name)))

let write_symtab oc symtab = emit_symtab (output_string oc) symtab

(* v2 files end with a sentinel, so truncation anywhere — even a cut
   that happens to leave a parseable final line — is always detected. *)
let end_sentinel = "%end"

(* Encode a complete v2 trace into a buffer: what [save] writes to disk,
   as bytes in memory. *)
let to_buffer buf events symtab =
  let emit = Buffer.add_string buf in
  emit magic;
  emit "\n";
  emit_class_header emit;
  Event.replay (Handler.hooks (emitter_handler emit)) events;
  emit_symtab emit symtab;
  emit end_sentinel;
  emit "\n"

(* Streaming recording handle: lets a caller tee an arbitrary event
   stream (live run or replay) into a trace file while it also feeds a
   profiler, then seal the file with the run's symbol table.

   Crash-safe via {!Ddp_util.Tmp_file}: events stream into
   [path ^ ".tmp"], and only a successful [finish_recording] renames it
   into place (atomic on POSIX).  An interrupted or aborted recording
   therefore never leaves a truncated file at [path] for a later [load]
   to reject, and a CLI that calls
   [Ddp_util.Tmp_file.install_signal_cleanup] doesn't even leave the
   [.tmp] behind on SIGINT/SIGTERM. *)
type recording = { tf : Ddp_util.Tmp_file.t; rec_hooks : Event.hooks; mutable closed : bool }

let start_recording ~path =
  let tf = Ddp_util.Tmp_file.create ~path in
  let oc = Ddp_util.Tmp_file.oc tf in
  output_string oc magic;
  output_char oc '\n';
  write_class_header oc;
  { tf; rec_hooks = recorder oc; closed = false }

let recording_hooks r = r.rec_hooks

let abort_recording r =
  if not r.closed then begin
    r.closed <- true;
    Ddp_util.Tmp_file.abort r.tf
  end

let finish_recording r symtab =
  if r.closed then invalid_arg "Trace_file.finish_recording: already closed";
  let oc = Ddp_util.Tmp_file.oc r.tf in
  write_symtab oc symtab;
  output_string oc end_sentinel;
  output_char oc '\n';
  r.closed <- true;
  Ddp_util.Tmp_file.commit r.tf

(* Record a program run to [path]; returns the run's stats. *)
let record ?sched_seed ?input_seed ~path prog =
  let r = start_recording ~path in
  let symtab = Symtab.create () in
  (try
     let (_ : Interp.stats) =
       Interp.run ~hooks:r.rec_hooks ?sched_seed ?input_seed ~symtab prog
     in
     ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     abort_recording r;
     Printexc.raise_with_backtrace e bt);
  finish_recording r symtab

(* Write an explicit event list (plus symtab) to [path].  [`V1] emits
   the legacy header-less format for compat testing; it cannot express
   [Sync] events and rejects them. *)
let save ?(version = `V2) ~path events symtab =
  let oc = open_out path in
  (try
     (match version with
     | `V2 ->
       output_string oc magic;
       output_char oc '\n';
       write_class_header oc
     | `V1 ->
       List.iter
         (fun e ->
           match e with
           | Event.Sync _ ->
             invalid_arg "Trace_file.save: version 1 cannot express Sync events"
           | _ -> ())
         events;
       output_string oc magic_v1;
       output_char oc '\n');
     Event.replay (recorder oc) events;
     write_symtab oc symtab;
     (match version with
     | `V2 ->
       output_string oc end_sentinel;
       output_char oc '\n'
     | `V1 -> ())
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

(* -- loading --------------------------------------------------------------- *)

let parse_ints line start =
  String.split_on_char ' ' (String.sub line start (String.length line - start))
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match int_of_string_opt s with
         | Some n -> n
         | None -> fail "bad integer %S in line %S" s line)

(* Incremental push decoder.  Bytes go in via [feed] in chunks cut at
   arbitrary boundaries; decoded events come out via [next].  A partial
   line at the end of the fed input is held back (not an error) until
   either more bytes complete it or [eof] declares the input finished —
   at which point the held-back tail is parsed exactly as [input_line]
   would have delivered it (a final line needs no trailing newline).
   Symbol-table and class-header lines update internal state instead of
   producing events; the accumulated {!symtab} is valid once [next]
   returns [Done]. *)
module Stream = struct
  type step = Event of Event.t | Need_more | Done

  type t = {
    mutable cur : string;  (* chunk being scanned *)
    mutable pos : int;  (* cursor into [cur] *)
    chunks : string Queue.t;  (* fed, not yet scanned *)
    partial : Buffer.t;  (* line fragment spanning chunk boundaries *)
    events : Event.t Queue.t;
    symtab : Symtab.t;
    mutable version : int;
    mutable saw_magic : bool;
    mutable sealed : bool;
    mutable finished : bool;
    mutable at_eof : bool;
    mutable skip_tags : char list;
    mutable pending_vars : (int * string) list;
    mutable pending_files : (int * string) list;
  }

  let create () =
    {
      cur = "";
      pos = 0;
      chunks = Queue.create ();
      partial = Buffer.create 256;
      events = Queue.create ();
      symtab = Symtab.create ();
      version = 1;
      saw_magic = false;
      sealed = false;
      finished = false;
      at_eof = false;
      skip_tags = [];
      pending_vars = [];
      pending_files = [];
    }

  let feed t s =
    if t.at_eof then invalid_arg "Trace_file.Stream.feed: after eof";
    if s <> "" then Queue.add s t.chunks

  let eof t = t.at_eof <- true

  (* Pull the next complete line (consuming its '\n'), or — once [eof]
     has been declared — the unterminated tail, exactly as [input_line]
     delivers a final line with no trailing newline.  O(1) amortized per
     byte: each byte is copied at most once into [partial]. *)
  let rec take_line t =
    if t.pos >= String.length t.cur then
      if Queue.is_empty t.chunks then
        if t.at_eof && Buffer.length t.partial > 0 then begin
          let line = Buffer.contents t.partial in
          Buffer.clear t.partial;
          Some line
        end
        else None
      else begin
        t.cur <- Queue.pop t.chunks;
        t.pos <- 0;
        take_line t
      end
    else
      match String.index_from_opt t.cur t.pos '\n' with
      | Some i ->
        let line =
          if Buffer.length t.partial = 0 then String.sub t.cur t.pos (i - t.pos)
          else begin
            Buffer.add_substring t.partial t.cur t.pos (i - t.pos);
            let l = Buffer.contents t.partial in
            Buffer.clear t.partial;
            l
          end
        in
        t.pos <- i + 1;
        Some line
      | None ->
        Buffer.add_substring t.partial t.cur t.pos (String.length t.cur - t.pos);
        t.pos <- String.length t.cur;
        take_line t

  let parse_class_decl t line rest =
    match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
    | [] -> fail "bad class line %S" line
    | name :: tags ->
      let tags =
        List.map
          (fun s -> if String.length s = 1 then s.[0] else fail "bad class tag %S in %S" s line)
          tags
      in
      (match Event.Class.of_name name with
      | Some c ->
        (* a known class must own exactly the tags we expect, or the
           writer speaks a different dialect of "version 2" *)
        if tags <> class_tags c then fail "class %S declares unexpected tags in %S" name line
      | None -> t.skip_tags <- tags @ t.skip_tags)

  let push t e = Queue.add e t.events

  let parse_line t line =
    if t.sealed then fail "content after %%end sentinel: %S" line
    else if line = "" then ()
    else if line = end_sentinel then
      if t.version >= 2 then t.sealed <- true
      else fail "end sentinel in a version-1 trace"
    else if line.[0] = '%' then begin
      match String.index_opt line ' ' with
      | None -> fail "bad symtab line %S" line
      | Some sp1 -> (
        let kind = String.sub line 1 (sp1 - 1) in
        let rest = String.sub line (sp1 + 1) (String.length line - sp1 - 1) in
        if kind = "class" then
          if t.version >= 2 then parse_class_decl t line rest
          else fail "class header in a version-1 trace: %S" line
        else
          match String.index_opt rest ' ' with
          | None -> fail "bad symtab line %S" line
          | Some sp2 ->
            let id =
              match int_of_string_opt (String.sub rest 0 sp2) with
              | Some id -> id
              | None -> fail "bad symtab id in line %S" line
            in
            let name =
              let raw = String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) in
              try Scanf.unescaped raw
              with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                fail "bad escaped name %S in line %S" raw line
            in
            if kind = "var" then t.pending_vars <- (id, name) :: t.pending_vars
            else if kind = "file" then t.pending_files <- (id, name) :: t.pending_files
            else fail "unknown symtab kind %S" kind)
    end
    else begin
      let tag = line.[0] in
      let ints = parse_ints line 1 in
      match (tag, ints) with
      | 'R', [ addr; loc; var; thread; time; locked ] ->
        push t (Event.Read { addr; loc; var; thread; time; locked = locked <> 0 })
      | 'W', [ addr; loc; var; thread; time; locked ] ->
        push t (Event.Write { addr; loc; var; thread; time; locked = locked <> 0 })
      | 'B', [ loc; thread; time ] -> push t (Event.Region_enter { loc; thread; time })
      | 'I', [ loc; thread; time ] -> push t (Event.Region_iter { loc; thread; time })
      | 'E', [ loc; end_loc; iterations; thread; time ] ->
        push t (Event.Region_exit { loc; end_loc; iterations; thread; time })
      | 'A', [ base; len; var ] -> push t (Event.Alloc { base; len; var })
      | 'F', [ base; len; var ] -> push t (Event.Free { base; len; var })
      | 'C', [ loc; func; thread; time ] -> push t (Event.Call { loc; func; thread; time })
      | 'T', [ func; thread; time ] -> push t (Event.Return { func; thread; time })
      | 'X', [ thread ] -> push t (Event.Thread_end { thread })
      | 'Y', [ kind; obj; thread; time ] when t.version >= 2 -> (
        match sync_kind_of_int kind with
        | Some kind -> push t (Event.Sync { kind; obj; thread; time })
        | None -> fail "unknown sync kind in line %S" line)
      | _ ->
        if List.mem tag t.skip_tags then () (* declared by an unknown class: skip *)
        else fail "malformed event line %S" line
    end

  let consume_line t line =
    if not t.saw_magic then begin
      if line = magic then t.version <- 2
      else if line = magic_v1 then t.version <- 1
      else fail "bad magic %S (expected %S)" line magic;
      t.saw_magic <- true
    end
    else parse_line t line

  (* Install the pending symbol table once the input is complete: names
     must land at the recorded ids, so insert in id order. *)
  let finalize t =
    if not t.saw_magic then fail "empty trace file";
    if t.version >= 2 && not t.sealed then fail "truncated trace: missing %%end sentinel";
    let insert intern pending =
      List.sort compare pending
      |> List.iteri (fun expected (id, name) ->
             if id <> expected then fail "non-dense symtab ids in trace";
             let actual = Ddp_util.Intern.intern intern name in
             if actual <> id then fail "symtab id mismatch for %S" name)
    in
    insert t.symtab.Symtab.vars t.pending_vars;
    insert t.symtab.Symtab.files t.pending_files;
    t.finished <- true

  let rec next t =
    if not (Queue.is_empty t.events) then Event (Queue.pop t.events)
    else if t.finished then Done
    else
      match take_line t with
      | Some line ->
        consume_line t line;
        next t
      | None ->
        if not t.at_eof then Need_more
        else begin
          finalize t;
          Done
        end

  let symtab t = t.symtab
  let is_sealed t = t.sealed
end

let load ~path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let s = Stream.create () in
  Stream.feed s contents;
  Stream.eof s;
  let events = ref [] in
  let rec drain () =
    match Stream.next s with
    | Stream.Event e ->
      events := e :: !events;
      drain ()
    | Stream.Done -> ()
    | Stream.Need_more -> assert false (* eof was declared *)
  in
  drain ();
  (List.rev !events, Stream.symtab s)
