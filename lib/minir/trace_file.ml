(* Trace files: record one run's instrumentation stream to disk and
   replay it later into any profiler or analysis.

   This supports the paper's reuse story operationally — the whole point
   of a generic profiler is that one collection serves many analyses, and
   a persisted trace lets those analyses run without re-executing the
   (slow) instrumented program.

   Format (version 2): a line-oriented text file.
     ddp-trace 2
     %class <name> <tag>...   (one per event class, self-describing)
     <event lines>
     %var <id> <name>         (symbol table, written after the events)
     %file <id> <name>
     %end                     (seal: absent means truncated)
   Event lines are single characters plus integer fields; locations are
   stored packed (they are plain ints).  The [%class] header maps each
   event class of the algebra to the tags it owns, so a reader can skip
   events of a declared-but-unknown class instead of dying on them —
   adding a class is a header change, not a format break.  Variable and
   file names may contain no newlines; names are written escaped with
   String.escaped.

   Version 1 (no [%class] header, no Sync events) is still read
   bit-for-bit by [load]; [save ~version:`V1] writes it for tests. *)

let magic_v1 = "ddp-trace 1"
let magic = "ddp-trace 2"

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* -- the class/tag vocabulary --------------------------------------------- *)

(* Tags owned by each class, in event-declaration order.  This is the
   v2 header; v1 files implicitly use the same map minus [Sync]. *)
let class_tags = function
  | Event.Class.Memory -> [ 'R'; 'W' ]
  | Event.Class.Region -> [ 'B'; 'I'; 'E' ]
  | Event.Class.Frame -> [ 'C'; 'T'; 'X' ]
  | Event.Class.Alloc -> [ 'A'; 'F' ]
  | Event.Class.Sync -> [ 'Y' ]

let sync_kind_int = function
  | Event.Task_spawn -> 0
  | Event.Task_join -> 1
  | Event.Lock_acquire -> 2
  | Event.Lock_release -> 3

let sync_kind_of_int = function
  | 0 -> Some Event.Task_spawn
  | 1 -> Some Event.Task_join
  | 2 -> Some Event.Lock_acquire
  | 3 -> Some Event.Lock_release
  | _ -> None

let write_class_header oc =
  List.iter
    (fun c ->
      Printf.fprintf oc "%%class %s" (Event.Class.name c);
      List.iter (fun tag -> Printf.fprintf oc " %c" tag) (class_tags c);
      output_char oc '\n')
    Event.Class.all

(* -- recording ------------------------------------------------------------ *)

let bool_int b = if b then 1 else 0

(* Streaming hooks: events go straight to the channel, O(1) memory.
   Built class-by-class so the writer is itself a handler composition. *)
let recorder_handler oc =
  let p fmt = Printf.fprintf oc fmt in
  Handler.make
    ~memory:
      {
        Event.on_read =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            p "R %d %d %d %d %d %d\n" addr loc var thread time (bool_int locked));
        on_write =
          (fun ~addr ~loc ~var ~thread ~time ~locked ->
            p "W %d %d %d %d %d %d\n" addr loc var thread time (bool_int locked));
      }
    ~region:
      {
        Event.on_region_enter =
          (fun ~loc ~kind:Event.Loop ~thread ~time -> p "B %d %d %d\n" loc thread time);
        on_region_iter = (fun ~loc ~thread ~time -> p "I %d %d %d\n" loc thread time);
        on_region_exit =
          (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time ->
            p "E %d %d %d %d %d\n" loc end_loc iterations thread time);
      }
    ~frame:
      {
        Event.on_call =
          (fun ~loc ~func ~thread ~time -> p "C %d %d %d %d\n" loc func thread time);
        on_return = (fun ~func ~thread ~time -> p "T %d %d %d\n" func thread time);
        on_thread_end = (fun ~thread -> p "X %d\n" thread);
      }
    ~alloc:
      {
        Event.on_alloc = (fun ~base ~len ~var -> p "A %d %d %d\n" base len var);
        on_free = (fun ~base ~len ~var -> p "F %d %d %d\n" base len var);
      }
    ~sync:
      {
        Event.on_sync =
          (fun ~kind ~obj ~thread ~time ->
            p "Y %d %d %d %d\n" (sync_kind_int kind) obj thread time);
      }
    ()

let recorder oc = Handler.hooks (recorder_handler oc)

let write_symtab oc (symtab : Symtab.t) =
  Ddp_util.Intern.iter symtab.Symtab.vars (fun id name ->
      Printf.fprintf oc "%%var %d %s\n" id (String.escaped name));
  Ddp_util.Intern.iter symtab.Symtab.files (fun id name ->
      Printf.fprintf oc "%%file %d %s\n" id (String.escaped name))

(* v2 files end with a sentinel, so truncation anywhere — even a cut
   that happens to leave a parseable final line — is always detected. *)
let end_sentinel = "%end"

(* Streaming recording handle: lets a caller tee an arbitrary event
   stream (live run or replay) into a trace file while it also feeds a
   profiler, then seal the file with the run's symbol table.

   Crash-safe: events stream into [path ^ ".tmp"], and only a successful
   [finish_recording] renames it into place (atomic on POSIX).  An
   interrupted or aborted recording therefore never leaves a truncated
   file at [path] for a later [load] to reject — at worst it leaves a
   [.tmp] that the next recording overwrites. *)
type recording = {
  oc : out_channel;
  path : string;
  tmp_path : string;
  rec_hooks : Event.hooks;
  mutable closed : bool;
}

let start_recording ~path =
  let tmp_path = path ^ ".tmp" in
  let oc = open_out tmp_path in
  output_string oc magic;
  output_char oc '\n';
  write_class_header oc;
  { oc; path; tmp_path; rec_hooks = recorder oc; closed = false }

let recording_hooks r = r.rec_hooks

let abort_recording r =
  if not r.closed then begin
    r.closed <- true;
    close_out r.oc;
    try Sys.remove r.tmp_path with Sys_error _ -> ()
  end

let finish_recording r symtab =
  if r.closed then invalid_arg "Trace_file.finish_recording: already closed";
  write_symtab r.oc symtab;
  output_string r.oc end_sentinel;
  output_char r.oc '\n';
  r.closed <- true;
  close_out r.oc;
  Sys.rename r.tmp_path r.path

(* Record a program run to [path]; returns the run's stats. *)
let record ?sched_seed ?input_seed ~path prog =
  let r = start_recording ~path in
  let symtab = Symtab.create () in
  (try
     let (_ : Interp.stats) =
       Interp.run ~hooks:r.rec_hooks ?sched_seed ?input_seed ~symtab prog
     in
     ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     abort_recording r;
     Printexc.raise_with_backtrace e bt);
  finish_recording r symtab

(* Write an explicit event list (plus symtab) to [path].  [`V1] emits
   the legacy header-less format for compat testing; it cannot express
   [Sync] events and rejects them. *)
let save ?(version = `V2) ~path events symtab =
  let oc = open_out path in
  (try
     (match version with
     | `V2 ->
       output_string oc magic;
       output_char oc '\n';
       write_class_header oc
     | `V1 ->
       List.iter
         (fun e ->
           match e with
           | Event.Sync _ ->
             invalid_arg "Trace_file.save: version 1 cannot express Sync events"
           | _ -> ())
         events;
       output_string oc magic_v1;
       output_char oc '\n');
     Event.replay (recorder oc) events;
     write_symtab oc symtab;
     (match version with
     | `V2 ->
       output_string oc end_sentinel;
       output_char oc '\n'
     | `V1 -> ())
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

(* -- loading --------------------------------------------------------------- *)

let parse_ints line start =
  String.split_on_char ' ' (String.sub line start (String.length line - start))
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match int_of_string_opt s with
         | Some n -> n
         | None -> fail "bad integer %S in line %S" s line)

let load ~path =
  let ic = open_in path in
  let events = ref [] in
  let symtab = Symtab.create () in
  (* names must land at the recorded ids: insert in id order *)
  let pending_vars = ref [] and pending_files = ref [] in
  (* v2 only: tags declared by a [%class] header whose class this reader
     does not know.  Events carrying such a tag are skipped — the header
     vouches that they are well-formed event lines of a future class. *)
  let skip_tags = ref [] in
  let version = ref 1 in
  let sealed = ref false in
  let parse_class_decl line rest =
    match String.split_on_char ' ' rest |> List.filter (fun s -> s <> "") with
    | [] -> fail "bad class line %S" line
    | name :: tags ->
      let tags =
        List.map
          (fun s -> if String.length s = 1 then s.[0] else fail "bad class tag %S in %S" s line)
          tags
      in
      (match Event.Class.of_name name with
      | Some c ->
        (* a known class must own exactly the tags we expect, or the
           writer speaks a different dialect of "version 2" *)
        if tags <> class_tags c then fail "class %S declares unexpected tags in %S" name line
      | None -> skip_tags := tags @ !skip_tags)
  in
  let parse_line line =
    if !sealed then fail "content after %%end sentinel: %S" line
    else if line = "" then ()
    else if line = end_sentinel then
      if !version >= 2 then sealed := true
      else fail "end sentinel in a version-1 trace"
    else if line.[0] = '%' then begin
      match String.index_opt line ' ' with
      | None -> fail "bad symtab line %S" line
      | Some sp1 -> (
        let kind = String.sub line 1 (sp1 - 1) in
        let rest = String.sub line (sp1 + 1) (String.length line - sp1 - 1) in
        if kind = "class" then
          if !version >= 2 then parse_class_decl line rest
          else fail "class header in a version-1 trace: %S" line
        else
          match String.index_opt rest ' ' with
          | None -> fail "bad symtab line %S" line
          | Some sp2 ->
            let id =
              match int_of_string_opt (String.sub rest 0 sp2) with
              | Some id -> id
              | None -> fail "bad symtab id in line %S" line
            in
            let name =
              let raw = String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) in
              try Scanf.unescaped raw
              with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                fail "bad escaped name %S in line %S" raw line
            in
            if kind = "var" then pending_vars := (id, name) :: !pending_vars
            else if kind = "file" then pending_files := (id, name) :: !pending_files
            else fail "unknown symtab kind %S" kind)
    end
    else begin
      let tag = line.[0] in
      let ints = parse_ints line 1 in
      match (tag, ints) with
      | 'R', [ addr; loc; var; thread; time; locked ] ->
        events := Event.Read { addr; loc; var; thread; time; locked = locked <> 0 } :: !events
      | 'W', [ addr; loc; var; thread; time; locked ] ->
        events := Event.Write { addr; loc; var; thread; time; locked = locked <> 0 } :: !events
      | 'B', [ loc; thread; time ] -> events := Event.Region_enter { loc; thread; time } :: !events
      | 'I', [ loc; thread; time ] -> events := Event.Region_iter { loc; thread; time } :: !events
      | 'E', [ loc; end_loc; iterations; thread; time ] ->
        events := Event.Region_exit { loc; end_loc; iterations; thread; time } :: !events
      | 'A', [ base; len; var ] -> events := Event.Alloc { base; len; var } :: !events
      | 'F', [ base; len; var ] -> events := Event.Free { base; len; var } :: !events
      | 'C', [ loc; func; thread; time ] -> events := Event.Call { loc; func; thread; time } :: !events
      | 'T', [ func; thread; time ] -> events := Event.Return { func; thread; time } :: !events
      | 'X', [ thread ] -> events := Event.Thread_end { thread } :: !events
      | 'Y', [ kind; obj; thread; time ] when !version >= 2 -> (
        match sync_kind_of_int kind with
        | Some kind -> events := Event.Sync { kind; obj; thread; time } :: !events
        | None -> fail "unknown sync kind in line %S" line)
      | _ ->
        if List.mem tag !skip_tags then () (* declared by an unknown class: skip *)
        else fail "malformed event line %S" line
    end
  in
  (try
     (match input_line ic with
     | l when l = magic -> version := 2
     | l when l = magic_v1 -> version := 1
     | l -> fail "bad magic %S (expected %S)" l magic
     | exception End_of_file -> fail "empty trace file");
     (try
        while true do
          parse_line (input_line ic)
        done
      with End_of_file -> ());
     if !version >= 2 && not !sealed then
       fail "truncated trace: missing %%end sentinel"
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     close_in ic;
     Printexc.raise_with_backtrace e bt);
  close_in ic;
  let insert intern pending =
    List.sort compare !pending
    |> List.iteri (fun expected (id, name) ->
           if id <> expected then fail "non-dense symtab ids in trace";
           let actual = Ddp_util.Intern.intern intern name in
           if actual <> id then fail "symtab id mismatch for %S" name)
  in
  insert symtab.Symtab.vars pending_vars;
  insert symtab.Symtab.files pending_files;
  (List.rev !events, symtab)
