(* Trace files: record one run's instrumentation stream to disk and
   replay it later into any profiler or analysis.

   This supports the paper's reuse story operationally — the whole point
   of a generic profiler is that one collection serves many analyses, and
   a persisted trace lets those analyses run without re-executing the
   (slow) instrumented program.

   Format: a line-oriented text file.
     ddp-trace 1
     <event lines>
     %var <id> <name>      (symbol table, written after the events)
     %file <id> <name>
   Event lines are single characters plus integer fields; locations are
   stored packed (they are plain ints).  Variable and file names may
   contain no newlines; names are written escaped with String.escaped. *)

let magic = "ddp-trace 1"

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* -- recording ------------------------------------------------------------ *)

let bool_int b = if b then 1 else 0

(* Streaming hooks: events go straight to the channel, O(1) memory. *)
let recorder oc =
  let p fmt = Printf.fprintf oc fmt in
  {
    Event.on_read =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        p "R %d %d %d %d %d %d\n" addr loc var thread time (bool_int locked));
    on_write =
      (fun ~addr ~loc ~var ~thread ~time ~locked ->
        p "W %d %d %d %d %d %d\n" addr loc var thread time (bool_int locked));
    on_region_enter = (fun ~loc ~kind:Event.Loop ~thread ~time -> p "B %d %d %d\n" loc thread time);
    on_region_iter = (fun ~loc ~thread ~time -> p "I %d %d %d\n" loc thread time);
    on_region_exit =
      (fun ~loc ~end_loc ~kind:Event.Loop ~iterations ~thread ~time ->
        p "E %d %d %d %d %d\n" loc end_loc iterations thread time);
    on_alloc = (fun ~base ~len ~var -> p "A %d %d %d\n" base len var);
    on_free = (fun ~base ~len ~var -> p "F %d %d %d\n" base len var);
    on_call = (fun ~loc ~func ~thread ~time -> p "C %d %d %d %d\n" loc func thread time);
    on_return = (fun ~func ~thread ~time -> p "T %d %d %d\n" func thread time);
    on_thread_end = (fun ~thread -> p "X %d\n" thread);
  }

let write_symtab oc (symtab : Symtab.t) =
  Ddp_util.Intern.iter symtab.Symtab.vars (fun id name ->
      Printf.fprintf oc "%%var %d %s\n" id (String.escaped name));
  Ddp_util.Intern.iter symtab.Symtab.files (fun id name ->
      Printf.fprintf oc "%%file %d %s\n" id (String.escaped name))

(* Streaming recording handle: lets a caller tee an arbitrary event
   stream (live run or replay) into a trace file while it also feeds a
   profiler, then seal the file with the run's symbol table.

   Crash-safe: events stream into [path ^ ".tmp"], and only a successful
   [finish_recording] renames it into place (atomic on POSIX).  An
   interrupted or aborted recording therefore never leaves a truncated
   file at [path] for a later [load] to reject — at worst it leaves a
   [.tmp] that the next recording overwrites. *)
type recording = {
  oc : out_channel;
  path : string;
  tmp_path : string;
  rec_hooks : Event.hooks;
  mutable closed : bool;
}

let start_recording ~path =
  let tmp_path = path ^ ".tmp" in
  let oc = open_out tmp_path in
  output_string oc magic;
  output_char oc '\n';
  { oc; path; tmp_path; rec_hooks = recorder oc; closed = false }

let recording_hooks r = r.rec_hooks

let abort_recording r =
  if not r.closed then begin
    r.closed <- true;
    close_out r.oc;
    try Sys.remove r.tmp_path with Sys_error _ -> ()
  end

let finish_recording r symtab =
  if r.closed then invalid_arg "Trace_file.finish_recording: already closed";
  write_symtab r.oc symtab;
  r.closed <- true;
  close_out r.oc;
  Sys.rename r.tmp_path r.path

(* Record a program run to [path]; returns the run's stats. *)
let record ?sched_seed ?input_seed ~path prog =
  let r = start_recording ~path in
  let symtab = Symtab.create () in
  (try
     let (_ : Interp.stats) =
       Interp.run ~hooks:r.rec_hooks ?sched_seed ?input_seed ~symtab prog
     in
     ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     abort_recording r;
     Printexc.raise_with_backtrace e bt);
  finish_recording r symtab

(* -- loading --------------------------------------------------------------- *)

let parse_ints line start =
  String.split_on_char ' ' (String.sub line start (String.length line - start))
  |> List.filter (fun s -> s <> "")
  |> List.map (fun s ->
         match int_of_string_opt s with
         | Some n -> n
         | None -> fail "bad integer %S in line %S" s line)

let load ~path =
  let ic = open_in path in
  let events = ref [] in
  let symtab = Symtab.create () in
  (* names must land at the recorded ids: insert in id order *)
  let pending_vars = ref [] and pending_files = ref [] in
  let parse_line line =
    if line = "" then ()
    else if line.[0] = '%' then begin
      match String.index_opt line ' ' with
      | None -> fail "bad symtab line %S" line
      | Some sp1 -> (
        let kind = String.sub line 1 (sp1 - 1) in
        let rest = String.sub line (sp1 + 1) (String.length line - sp1 - 1) in
        match String.index_opt rest ' ' with
        | None -> fail "bad symtab line %S" line
        | Some sp2 ->
          let id =
            match int_of_string_opt (String.sub rest 0 sp2) with
            | Some id -> id
            | None -> fail "bad symtab id in line %S" line
          in
          let name =
            let raw = String.sub rest (sp2 + 1) (String.length rest - sp2 - 1) in
            try Scanf.unescaped raw
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              fail "bad escaped name %S in line %S" raw line
          in
          if kind = "var" then pending_vars := (id, name) :: !pending_vars
          else if kind = "file" then pending_files := (id, name) :: !pending_files
          else fail "unknown symtab kind %S" kind)
    end
    else begin
      let tag = line.[0] in
      let ints = parse_ints line 1 in
      let ev =
        match (tag, ints) with
        | 'R', [ addr; loc; var; thread; time; locked ] ->
          Event.Read { addr; loc; var; thread; time; locked = locked <> 0 }
        | 'W', [ addr; loc; var; thread; time; locked ] ->
          Event.Write { addr; loc; var; thread; time; locked = locked <> 0 }
        | 'B', [ loc; thread; time ] -> Event.Region_enter { loc; thread; time }
        | 'I', [ loc; thread; time ] -> Event.Region_iter { loc; thread; time }
        | 'E', [ loc; end_loc; iterations; thread; time ] ->
          Event.Region_exit { loc; end_loc; iterations; thread; time }
        | 'A', [ base; len; var ] -> Event.Alloc { base; len; var }
        | 'F', [ base; len; var ] -> Event.Free { base; len; var }
        | 'C', [ loc; func; thread; time ] -> Event.Call { loc; func; thread; time }
        | 'T', [ func; thread; time ] -> Event.Return { func; thread; time }
        | 'X', [ thread ] -> Event.Thread_end { thread }
        | _ -> fail "malformed event line %S" line
      in
      events := ev :: !events
    end
  in
  (try
     (match input_line ic with
     | l when l = magic -> ()
     | l -> fail "bad magic %S (expected %S)" l magic
     | exception End_of_file -> fail "empty trace file");
     try
       while true do
         parse_line (input_line ic)
       done
     with End_of_file -> ()
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     close_in ic;
     Printexc.raise_with_backtrace e bt);
  close_in ic;
  let insert intern pending =
    List.sort compare !pending
    |> List.iteri (fun expected (id, name) ->
           if id <> expected then fail "non-dense symtab ids in trace";
           let actual = Ddp_util.Intern.intern intern name in
           if actual <> id then fail "symtab id mismatch for %S" name)
  in
  insert symtab.Symtab.vars pending_vars;
  insert symtab.Symtab.files pending_files;
  (List.rev !events, symtab)
