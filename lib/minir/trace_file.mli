(** Trace files: persist one run's instrumentation stream and replay it
    into any profiler or analysis — one collection, many analyses.

    Version 2 traces are self-describing: a [%class <name> <tag>...]
    header maps each event class of the algebra to the line tags it
    owns, so readers can skip events of declared-but-unknown classes.
    Version 1 traces (no header, no [Sync]) still load unchanged. *)

exception Parse_error of string

val class_tags : Event.Class.t -> char list
(** The line tags owned by each event class (the v2 header contents). *)

val recorder : out_channel -> Event.hooks
(** Streaming hooks that write each event to the channel (O(1) memory). *)

val recorder_handler : out_channel -> Handler.t
(** The same writer as a per-class handler bundle, for composition. *)

val write_symtab : out_channel -> Symtab.t -> unit

val to_buffer : Buffer.t -> Event.t list -> Symtab.t -> unit
(** Encode a complete v2 trace (header, events, symtab, [%end] seal)
    into a buffer — what {!save} writes to disk, as bytes in memory.
    The daemon client uses this to frame traces for the wire. *)

type recording
(** A trace file being written: tee {!recording_hooks} into any event
    stream, then seal with {!finish_recording}. *)

val start_recording : path:string -> recording
(** Opens [path ^ ".tmp"]; the trace appears at [path] only on a
    successful {!finish_recording} (atomic rename), so interrupted runs
    never leave truncated traces behind. *)

val recording_hooks : recording -> Event.hooks

val finish_recording : recording -> Symtab.t -> unit
(** Append the symbol table, close, and atomically rename into place. *)

val abort_recording : recording -> unit
(** Close and delete the temp file without publishing (error paths);
    idempotent. *)

val record : ?sched_seed:int -> ?input_seed:int -> path:string -> Ast.program -> unit
(** Run the program and record its full trace (with symbol table) to
    [path]. *)

val save : ?version:[ `V1 | `V2 ] -> path:string -> Event.t list -> Symtab.t -> unit
(** Write an explicit event list.  [`V1] (for compat tests) emits the
    legacy header-less format and rejects [Sync] events with
    [Invalid_argument]; default [`V2]. *)

val load : path:string -> Event.t list * Symtab.t
(** Parse a recorded trace, either version.  Raises {!Parse_error} on
    malformed input. *)

(** Incremental push decoder: feed byte chunks split at {e arbitrary}
    boundaries (network frames, partial reads) and pull decoded events.
    Input ending mid-line yields {!step.Need_more}, never an exception;
    {!Parse_error} is raised only for a line that is complete and
    malformed, or at {!eof} for a trace that is truncated as a whole
    (missing magic or [%end] seal).  [load] is the whole-file
    specialization of this decoder, with identical acceptance. *)
module Stream : sig
  type step =
    | Event of Event.t  (** one decoded event *)
    | Need_more  (** input exhausted mid-line: feed more bytes or declare {!eof} *)
    | Done  (** trace complete; {!symtab} is now valid *)

  type t

  val create : unit -> t

  val feed : t -> string -> unit
  (** Append a chunk of input.  Raises [Invalid_argument] after {!eof}. *)

  val eof : t -> unit
  (** Declare the input complete: no more {!feed} calls.  A final line
      needs no trailing newline (matching [input_line]). *)

  val next : t -> step
  (** Decode and return the next event.  Raises {!Parse_error} on
      malformed input as described above. *)

  val symtab : t -> Symtab.t
  (** The accumulated symbol table; fully populated once {!next} has
      returned [Done]. *)

  val is_sealed : t -> bool
  (** Whether the [%end] sentinel has been decoded (v2 only) — lets a
      server distinguish "client went quiet mid-trace" from "trace
      complete, awaiting FIN". *)
end
