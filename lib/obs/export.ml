(* Exporters over an {!Obs.snapshot}:

   - [chrome_trace]: the Chrome trace-event JSON format (loadable in
     Perfetto / chrome://tracing) with one track (tid) per pipeline
     domain — producer plus workers — complete spans ("X") for
     process/stall/redistribution phases and instants ("i") for
     zero-duration marks;
   - [metrics_json]: a flat machine-readable snapshot — merged counters,
     per-domain breakdowns, histograms, Mem_account high-water marks —
     that subsumes the ad-hoc per_worker_events/per_worker_busy/*_bytes
     reporting;
   - [pp_summary]: the human-readable run summary behind `ddprof stats`
     (imbalance, per-worker stall time, redistribution timeline).

   All iteration orders are fixed (registry order, sorted categories),
   so identical snapshots serialize byte-identically — the property the
   deterministic vpar golden tests pin. *)

module Stats = Ddp_util.Stats
module Hist = Stats.Histogram

let schema_version = "ddp-metrics/2"

let track_name dom = if dom = 0 then "producer" else Printf.sprintf "worker %d" (dom - 1)

(* GC phase tracks (runtime-events fusion) sit at tid 1000+ring so they
   never collide with pipeline domain tids. *)
let gc_tid ring = 1000 + ring

(* Chrome wants microseconds; both real (ns) and virtual (tick) clocks
   divide by 1000 so nesting survives the unit change. *)
let usec ts = float_of_int ts /. 1000.0

let chrome_trace ?(gc = []) (snap : Obs.snapshot) =
  let thread_meta ~tid ~name =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str name) ]);
      ]
  in
  let meta =
    List.map
      (fun dom -> thread_meta ~tid:dom ~name:(track_name dom))
      (List.init snap.Obs.n_domains Fun.id)
  in
  let gc_rings = List.sort_uniq compare (List.map (fun (p : Runtime_ev.phase) -> p.ring) gc) in
  let gc_meta =
    List.map (fun r -> thread_meta ~tid:(gc_tid r) ~name:(Printf.sprintf "gc ring %d" r)) gc_rings
  in
  (* Phase timestamps arrive already rebased to the hub epoch; events
     from before hub creation clamp to 0 rather than going negative. *)
  let gc_event (p : Runtime_ev.phase) =
    Json.Obj
      [
        ("name", Json.Str p.name);
        ("cat", Json.Str "gc");
        ("pid", Json.Int 0);
        ("tid", Json.Int (gc_tid p.ring));
        ("ts", Json.Float (usec (max 0 p.ts_ns)));
        ("ph", Json.Str "X");
        ("dur", Json.Float (usec p.dur_ns));
        ("args", Json.Obj [ ("ring", Json.Int p.ring) ]);
      ]
  in
  let event (e : Obs.event) =
    let common =
      [
        ("name", Json.Str (Obs.Tag.name e.tag));
        ("cat", Json.Str (if e.dom = 0 then "producer" else "worker"));
        ("pid", Json.Int 0);
        ("tid", Json.Int e.dom);
        ("ts", Json.Float (usec e.ts));
      ]
    in
    let phase =
      if e.is_span then [ ("ph", Json.Str "X"); ("dur", Json.Float (usec e.dur)) ]
      else [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
    in
    Json.Obj (common @ phase @ [ ("args", Json.Obj [ ("arg", Json.Int e.arg) ]) ])
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (meta @ gc_meta @ List.map event snap.Obs.events @ List.map gc_event gc) );
      ("displayTimeUnit", Json.Str "ns");
      ("otherData", Json.Obj [ ("dropped_events", Json.Int snap.Obs.dropped) ]);
    ]

let hist_json h =
  let buckets =
    List.rev
      (Hist.fold h
         (fun k ~count acc ->
           Json.List [ Json.Int (Hist.lower_bound k); Json.Int (Hist.upper_bound k); Json.Int count ]
           :: acc)
         [])
  in
  let percentiles =
    if Hist.count h = 0 then []
    else
      [
        ("p50", Json.Float (Hist.percentile h 50.0));
        ("p90", Json.Float (Hist.percentile h 90.0));
        ("p99", Json.Float (Hist.percentile h 99.0));
      ]
  in
  Json.Obj ([ ("count", Json.Int (Hist.count h)); ("buckets", Json.List buckets) ] @ percentiles)

let metrics_json ?account ?(extra = []) (snap : Obs.snapshot) =
  let counters =
    Array.to_list (Array.mapi (fun i name -> (name, Json.Int snap.Obs.counters.(i))) Obs.C.names)
  in
  let per_domain =
    (* Only the per-domain breakdowns a load-balance analysis needs; the
       rest are producer-only and already covered by the merged view. *)
    List.map
      (fun id ->
        ( Obs.C.names.(id),
          Json.List
            (Array.to_list (Array.map (fun v -> Json.Int v) (Obs.counter_per_domain snap id))) ))
      [ Obs.C.events_processed; Obs.C.busy_ns; Obs.C.sig_occupied; Obs.C.sig_overwrites ]
  in
  let hists =
    Array.to_list (Array.mapi (fun i name -> (name, hist_json snap.Obs.hists.(i))) Obs.H.names)
  in
  let mem =
    match account with
    | None -> []
    | Some acct ->
      let rows =
        Ddp_util.Mem_account.fold acct
          (fun cat ~current ~peak acc ->
            (cat, Json.Obj [ ("current", Json.Int current); ("peak", Json.Int peak) ]) :: acc)
          []
      in
      [
        ( "mem_account",
          Json.Obj
            (List.sort (fun (a, _) (b, _) -> String.compare a b) rows
            @ [ ("total_peak", Json.Int (Ddp_util.Mem_account.total_peak acct)) ]) );
      ]
  in
  (* The alloc section appears only on hubs that tracked allocation:
     alloc deltas are wall-world Gc state, so including (empty) arrays on
     virtual-clock runs would be noise, and omitting them keeps the vpar
     golden exports byte-identical. *)
  let alloc =
    if not snap.Obs.alloc_tracked then []
    else begin
      let rows =
        List.filter_map
          (fun tag ->
            let i = Obs.Tag.to_int tag in
            if snap.Obs.alloc_spans.(i) = 0 && snap.Obs.memprof_samples.(i) = 0 then None
            else
              Some
                ( Obs.Tag.name tag,
                  Json.Obj
                    [
                      ("bytes", Json.Int snap.Obs.alloc_bytes.(i));
                      ("spans", Json.Int snap.Obs.alloc_spans.(i));
                      ("minor_gcs", Json.Int snap.Obs.alloc_minor_gcs.(i));
                      ("major_gcs", Json.Int snap.Obs.alloc_major_gcs.(i));
                      ("memprof_samples", Json.Int snap.Obs.memprof_samples.(i));
                      ("memprof_words", Json.Int snap.Obs.memprof_words.(i));
                    ] ))
          (Array.to_list Obs.Tag.all)
      in
      [
        ( "alloc",
          Json.Obj (rows @ [ ("attributed_bytes", Json.Int (Obs.attributed_bytes snap)) ]) );
      ]
    end
  in
  Json.Obj
    ([
       ("schema", Json.Str schema_version);
       ("domains", Json.Int snap.Obs.n_domains);
       ("virtual_clock", Json.Bool snap.Obs.virtual_clock);
       ("dropped_events", Json.Int snap.Obs.dropped);
       ("counters", Json.Obj counters);
       ("per_domain", Json.Obj per_domain);
       ("histograms", Json.Obj hists);
     ]
    @ alloc @ mem @ extra)

(* Strict schema gate for consumers of saved metrics files: a missing or
   mismatched version is an error with an actionable message, not a
   best-effort parse (satellite of ISSUE 8). *)
let check_schema ?(expect = schema_version) json =
  match Json.member "schema" json with
  | None -> Error (Printf.sprintf "no \"schema\" field (expected %S)" expect)
  | Some v -> (
    match Json.to_str v with
    | Some s when s = expect -> Ok ()
    | Some s ->
      Error
        (Printf.sprintf "schema mismatch: file has %S, this ddprof reads %S — re-export with a matching ddprof"
           s expect)
    | None -> Error (Printf.sprintf "\"schema\" field is not a string (expected %S)" expect))

(* -- run summary ---------------------------------------------------------- *)

let pp_ns ppf ns =
  let f = float_of_int ns in
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.2fs" (f /. 1e9)
  else if ns >= 1_000_000 then Format.fprintf ppf "%.2fms" (f /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.1fus" (f /. 1e3)
  else Format.fprintf ppf "%dns" ns

(* Per-worker stall attribution comes from the trace ring (producer-side
   stall spans carry the worker id in [arg]); with a saturated ring the
   oldest spans are gone, so these are lower bounds — the merged
   [stall_ns] counter is exact. *)
let pp_summary ppf (snap : Obs.snapshot) =
  let nd = snap.Obs.n_domains in
  let workers = max 0 (nd - 1) in
  let events = Obs.counter_per_domain snap Obs.C.events_processed in
  let busy = Obs.counter_per_domain snap Obs.C.busy_ns in
  let stall_by_worker = Array.make (max 1 workers) 0 in
  let redistributions = ref [] in
  List.iter
    (fun (e : Obs.event) ->
      match e.tag with
      | Obs.Tag.Queue_full | Obs.Tag.Drain_wait ->
        if e.arg >= 0 && e.arg < workers then
          stall_by_worker.(e.arg) <- stall_by_worker.(e.arg) + e.dur
      | Obs.Tag.Redistribute -> redistributions := e :: !redistributions
      | _ -> ())
    snap.Obs.events;
  let unit_name = if snap.Obs.virtual_clock then "ticks" else "ns" in
  Format.fprintf ppf "pipeline summary (%d worker%s, timestamps in %s)@." workers
    (if workers = 1 then "" else "s")
    unit_name;
  Format.fprintf ppf "  chunks pushed        %d (%d events routed, %d extra chunks allocated)@."
    (Obs.counter snap Obs.C.chunks_pushed)
    (Obs.counter snap Obs.C.chunk_events)
    (Obs.counter snap Obs.C.extra_chunks);
  Format.fprintf ppf "  stalls               %d queue-full, %d drain (%a stalled, %d push retries)@."
    (Obs.counter snap Obs.C.queue_full_stalls)
    (Obs.counter snap Obs.C.drain_stalls)
    pp_ns
    (Obs.counter snap Obs.C.stall_ns)
    (Obs.counter snap Obs.C.queue_push_retries);
  Format.fprintf ppf "  redistributions      %d (%d addresses migrated)@."
    (Obs.counter snap Obs.C.redistributions)
    (Obs.counter snap Obs.C.migrated_addrs);
  if snap.Obs.dropped > 0 then
    Format.fprintf ppf "  trace ring           %d events dropped (oldest overwritten)@."
      snap.Obs.dropped;
  if workers > 0 then begin
    let loads = Array.sub events 1 workers in
    Format.fprintf ppf "  load imbalance       %.2f (max/mean worker events)@."
      (Stats.imbalance (Array.map float_of_int loads));
    Format.fprintf ppf "  %-8s %12s %12s %12s@." "worker" "events" "busy" "stall(seen)";
    for w = 0 to workers - 1 do
      Format.fprintf ppf "  %-8d %12d %12s %12s@." w events.(w + 1)
        (Format.asprintf "%a" pp_ns busy.(w + 1))
        (Format.asprintf "%a" pp_ns stall_by_worker.(w))
    done
  end;
  match List.rev !redistributions with
  | [] -> ()
  | rs ->
    Format.fprintf ppf "  redistribution timeline:@.";
    List.iter
      (fun (e : Obs.event) ->
        Format.fprintf ppf "    t=%-12s dur=%-10s migrated %d address%s@."
          (Format.asprintf "%a" pp_ns e.ts)
          (Format.asprintf "%a" pp_ns e.dur)
          e.arg
          (if e.arg = 1 then "" else "es"))
      rs

(* -- per-stage allocation table ------------------------------------------- *)

let pp_bytes ppf b =
  let f = float_of_int b in
  if b >= 1 lsl 30 then Format.fprintf ppf "%.2fGiB" (f /. 1073741824.0)
  else if b >= 1 lsl 20 then Format.fprintf ppf "%.2fMiB" (f /. 1048576.0)
  else if b >= 1 lsl 10 then Format.fprintf ppf "%.1fKiB" (f /. 1024.0)
  else Format.fprintf ppf "%dB" b

(* The attribution cross-check: per-stage self bytes summed over all
   domains, against an externally measured [Gc.quick_stat] delta for the
   whole run ([total_bytes]).  Coverage < 100% is allocation outside any
   open span (domain bootstrap, post-run export); > 100% means the
   caller's measurement window was narrower than the hub's. *)
let pp_alloc_table ?total_bytes ppf (snap : Obs.snapshot) =
  if not snap.Obs.alloc_tracked then
    Format.fprintf ppf "allocation attribution off (hub created without track_alloc)@."
  else begin
    let attributed = Obs.attributed_bytes snap in
    let events = Obs.counter snap Obs.C.events_processed in
    Format.fprintf ppf "per-stage allocation (self bytes, all domains)@.";
    Format.fprintf ppf "  %-18s %10s %8s %12s %12s %7s %9s %8s@." "stage" "bytes" "share"
      "bytes/span" "bytes/event" "spans" "minor-gc" "memprof";
    Array.iter
      (fun tag ->
        let i = Obs.Tag.to_int tag in
        let b = snap.Obs.alloc_bytes.(i) and s = snap.Obs.alloc_spans.(i) in
        if s > 0 || snap.Obs.memprof_samples.(i) > 0 then begin
          let share = if attributed > 0 then 100.0 *. float_of_int b /. float_of_int attributed else 0.0 in
          let per_span = if s > 0 then Format.asprintf "%a" pp_bytes (b / s) else "-" in
          let per_event =
            (* bytes/event only makes sense for the event-processing stage *)
            if tag = Obs.Tag.Process && events > 0 then
              Format.asprintf "%.1f" (float_of_int b /. float_of_int events)
            else "-"
          in
          Format.fprintf ppf "  %-18s %10s %7.1f%% %12s %12s %7d %9d %8d@." (Obs.Tag.name tag)
            (Format.asprintf "%a" pp_bytes b)
            share per_span per_event s
            snap.Obs.alloc_minor_gcs.(i)
            snap.Obs.memprof_samples.(i)
        end)
      Obs.Tag.all;
    Format.fprintf ppf "  %-18s %10s@." "total attributed" (Format.asprintf "%a" pp_bytes attributed);
    match total_bytes with
    | None -> ()
    | Some total when total > 0 ->
      Format.fprintf ppf "  %-18s %10s (coverage %.1f%% of Gc.quick_stat delta)@." "process total"
        (Format.asprintf "%a" pp_bytes total)
        (100.0 *. float_of_int attributed /. float_of_int total)
    | Some total -> Format.fprintf ppf "  %-18s %10dB@." "process total" total
  end
