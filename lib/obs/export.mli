(** Exporters over telemetry snapshots: Chrome trace-event JSON (one
    track per pipeline domain, loadable in Perfetto), a flat metrics
    JSON snapshot, and the human-readable summary behind
    [ddprof stats].  Iteration orders are fixed, so identical snapshots
    serialize byte-identically. *)

val chrome_trace : Obs.snapshot -> Json.t
(** Spans become complete events ("X"), zero-duration marks instants
    ("i"); pid is always 0, tid is the domain index, and thread_name
    metadata labels producer/worker tracks. *)

val metrics_json :
  ?account:Ddp_util.Mem_account.t -> ?extra:(string * Json.t) list -> Obs.snapshot -> Json.t
(** Merged counters, selected per-domain breakdowns, histograms (bucket
    triples [lo, hi, count] plus p50/p90/p99), and — when [account] is
    given — Mem_account categories with high-water marks.  [extra]
    appends caller context (engine, workload, ...) at the top level. *)

val pp_summary : Format.formatter -> Obs.snapshot -> unit
(** Run summary: stall totals, load imbalance (max/mean worker events),
    per-worker busy and stall time, redistribution timeline. *)

val pp_ns : Format.formatter -> int -> unit
(** Human-readable nanoseconds. *)
