(** Exporters over telemetry snapshots: Chrome trace-event JSON (one
    track per pipeline domain, loadable in Perfetto), a flat metrics
    JSON snapshot, and the human-readable summary behind
    [ddprof stats].  Iteration orders are fixed, so identical snapshots
    serialize byte-identically. *)

val schema_version : string
(** The metrics JSON schema this build writes and reads
    ("ddp-metrics/2"; /2 added the optional [alloc] section). *)

val chrome_trace : ?gc:Runtime_ev.phase list -> Obs.snapshot -> Json.t
(** Spans become complete events ("X"), zero-duration marks instants
    ("i"); pid is always 0, tid is the domain index, and thread_name
    metadata labels producer/worker tracks.  [gc] fuses runtime-events
    GC phases (timestamps already rebased to the hub epoch) as extra
    "gc ring N" tracks at tid 1000+ring. *)

val metrics_json :
  ?account:Ddp_util.Mem_account.t -> ?extra:(string * Json.t) list -> Obs.snapshot -> Json.t
(** Merged counters, selected per-domain breakdowns, histograms (bucket
    triples [lo, hi, count] plus p50/p90/p99), and — when [account] is
    given — Mem_account categories with high-water marks.  Snapshots
    from alloc-tracking hubs add an [alloc] section (per-stage self
    bytes, GC counts, memprof samples).  [extra] appends caller context
    (engine, workload, ...) at the top level. *)

val check_schema : ?expect:string -> Json.t -> (unit, string) result
(** Gate for consumers of saved metrics files: [Error msg] when the
    ["schema"] field is missing, non-string, or differs from [expect]
    (default {!schema_version}). *)

val pp_alloc_table : ?total_bytes:int -> Format.formatter -> Obs.snapshot -> unit
(** The per-stage allocation table (self bytes, share, bytes/span,
    bytes/event for the process stage, GC counts, memprof samples).
    [total_bytes] — an externally measured [Gc.quick_stat] allocation
    delta for the run — adds a coverage line cross-checking that the
    attributed total accounts for the process-global allocation. *)

val pp_summary : Format.formatter -> Obs.snapshot -> unit
(** Run summary: stall totals, load imbalance (max/mean worker events),
    per-worker busy and stall time, redistribution timeline. *)

val pp_ns : Format.formatter -> int -> unit
(** Human-readable nanoseconds. *)
