(* Minimal JSON: enough to write Chrome-trace and metrics files and to
   parse them back in tests and `ddprof check-trace`.  No external
   dependency; integers are kept exact (separate from floats) so that
   deterministic runs serialize byte-identically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* -- writing -------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.12g is stable (same float -> same text) and round-trips every value
   the exporters produce (microsecond timestamps, percentiles). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* -- parsing -------------------------------------------------------------- *)

type parser_state = {
  s : string;
  mutable pos : int;
}

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %c" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
      if st.pos >= String.length st.s then fail st "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        if st.pos + 4 > String.length st.s then fail st "short \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let code = try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape" in
        (* The exporters only emit ASCII; anything above is replaced. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code) else Buffer.add_char buf '?'
      | _ -> fail st "bad escape");
      go ()
    end
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E' then
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with Some f -> Float f | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      expect st '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect st '}';
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected , or }"
      in
      Obj (members [])
    end
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      expect st ']';
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          expect st ',';
          items (v :: acc)
        | Some ']' ->
          expect st ']';
          List.rev (v :: acc)
        | _ -> fail st "expected , or ]"
      in
      List (items [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* -- accessors ------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None
