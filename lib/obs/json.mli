(** Minimal JSON reader/writer for the telemetry exporters (no external
    dependency).  Integers are exact, so deterministic runs serialize
    byte-identically. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact serialization. *)

val to_file : string -> t -> unit

val parse : string -> t
(** Raises {!Parse_error} on malformed input. *)

val of_file : string -> t

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects or missing keys. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
