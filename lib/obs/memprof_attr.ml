(* Statistical allocation sampling attributed to obs spans.

   [Gc.Memprof] callbacks run on the allocating domain at allocation
   time, so crediting the sample to [Obs.note_sample] (which resolves
   the calling domain's cell via [Obs.bind_domain] and reads its open
   span stack) attributes each sample to the innermost open stage —
   Process for worker-side boxing, Flush/Run for producer-side.

   Gate, don't assume: OCaml 5.0/5.1 ship the Memprof API but its
   [start] raises [Failure "not implemented in multicore"] at runtime
   (statmemprof only returned in 5.3).  Everything compiles against the
   API; at runtime we try to start and degrade to [Unavailable msg],
   leaving the span-boundary [Gc.allocated_bytes] attribution as the
   (always available) source of the per-stage table. *)

type status =
  | Running
  | Unavailable of string
  | Disabled

let start ~rate hub =
  if rate <= 0.0 || not (Obs.enabled hub) || not (Obs.alloc_tracked hub) then Disabled
  else begin
    let note (a : Gc.Memprof.allocation) =
      Obs.note_sample hub ~words:a.size ~samples:a.n_samples;
      None
    in
    match
      Gc.Memprof.start ~sampling_rate:rate ~callstack_size:0
        { Gc.Memprof.null_tracker with alloc_minor = note; alloc_major = note }
    with
    | () -> Running
    | exception Failure msg -> Unavailable msg
    | exception e -> Unavailable (Printexc.to_string e)
  end

let stop = function
  | Running -> ( try Gc.Memprof.stop () with _ -> ())
  | Unavailable _ | Disabled -> ()

let describe = function
  | Running -> "running"
  | Disabled -> "disabled"
  | Unavailable msg -> "unavailable: " ^ msg
