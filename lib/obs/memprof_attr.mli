(** [Gc.Memprof]-based allocation sampling attributed to the innermost
    open obs span of the allocating domain.

    The runtime gate matters: on OCaml 5.0–5.2 [Gc.Memprof.start] raises
    at runtime (statmemprof returned in 5.3), so {!start} degrades to
    [Unavailable] instead of crashing, and the span-boundary
    [Gc.allocated_bytes] attribution in {!Obs} remains the authoritative
    per-stage table. *)

type status =
  | Running  (** sampling active; samples land in the hub's memprof arrays *)
  | Unavailable of string  (** this runtime cannot sample; reason attached *)
  | Disabled  (** rate 0, hub disabled, or allocation tracking off *)

val start : rate:float -> Obs.t -> status
(** Try to start sampling at [rate] (samples per allocated word, e.g.
    1e-3).  Never raises. *)

val stop : status -> unit
(** Stop sampling if it was running.  Never raises. *)

val describe : status -> string
