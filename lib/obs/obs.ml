(* The telemetry hub: per-domain metric cells and bounded trace rings.

   Design constraints (ISSUE 3 / paper Sec. VI methodology):
   - multicore-safe without locks: every domain of the pipeline (the
     producer plus each worker) owns one [cell] and is its only writer;
     snapshots merge after the domains have joined;
   - a *disabled* hub costs one branch per telemetry call site — every
     emitting function starts with [if t.on] and takes no closure, so
     the hot path of an un-observed run is unchanged;
   - the trace rings are bounded and drop-oldest (overwrite) with a drop
     counter, so a bursty run can never block or grow without bound;
   - timestamps come from [Clock.monotonic_ns] (wall clock steps would
     corrupt span durations), or from a virtual tick counter so the
     deterministic single-domain scheduler (testkit vpar) produces
     byte-identical traces for identical seeds.

   Self-profiling (ISSUE 8): each cell additionally carries an *open-span
   stack* driven by {!enter}/{!leave}.  On a hub created with
   [~track_alloc:true] every frame captures [Gc.allocated_bytes] (which
   is domain-local on OCaml 5, so the single-writer discipline extends to
   allocation counters for free) and the global GC collection counts from
   [Gc.quick_stat]; leaving a frame attributes the *self* delta — the
   frame's delta minus whatever its nested children already claimed — to
   the frame's tag.  Because the producer's whole session sits under a
   Run frame and each worker loop under a Worker frame, the per-tag self
   bytes across all domains sum to (approximately) the process-global
   allocation of the run, which is the property `ddprof run
   --memprof-rate` cross-checks against a [Gc.quick_stat] delta.
   Allocation tracking is forced off under the Virtual clock: Gc state is
   wall-world and would break the byte-identical vpar exports. *)

module Stats = Ddp_util.Stats
module Clock = Ddp_util.Clock

(* -- event taxonomy ------------------------------------------------------- *)

module Tag = struct
  type t =
    | Flush  (* producer: one chunk handed to a worker; arg = worker id *)
    | Process  (* worker: pop->process of one chunk; arg = events in chunk *)
    | Queue_full  (* producer stalled on a full worker queue; arg = worker id *)
    | Drain_wait  (* producer waiting on one worker at a drain barrier; arg = worker id *)
    | Drain  (* full drain barrier; arg = workers waited on *)
    | Redistribute  (* hot-address redistribution; arg = migrated addresses *)
    | Merge  (* end-of-run merge of worker dependence maps; arg = workers *)
    | Run  (* whole instrumented run; arg = 0 *)
    | Abort  (* supervisor aborted the run; arg = reason code *)
    | Worker  (* one worker domain's whole consume loop; arg = worker id *)

  let all =
    [| Flush; Process; Queue_full; Drain_wait; Drain; Redistribute; Merge; Run; Abort; Worker |]

  let to_int = function
    | Flush -> 0
    | Process -> 1
    | Queue_full -> 2
    | Drain_wait -> 3
    | Drain -> 4
    | Redistribute -> 5
    | Merge -> 6
    | Run -> 7
    | Abort -> 8
    | Worker -> 9

  let of_int i = all.(i)

  let name = function
    | Flush -> "flush"
    | Process -> "process"
    | Queue_full -> "stall:queue-full"
    | Drain_wait -> "stall:drain"
    | Drain -> "drain-barrier"
    | Redistribute -> "redistribute"
    | Merge -> "merge"
    | Run -> "run"
    | Abort -> "abort"
    | Worker -> "worker-loop"

  let count = Array.length all
end

(* -- metric registry ------------------------------------------------------ *)

(* Fixed id spaces: counters and histograms are dense array indices, so
   an update is one array store.  Names drive the JSON export; keep the
   two lists in sync. *)

module C = struct
  let chunks_pushed = 0
  let chunk_events = 1
  let queue_push_retries = 2
  let queue_full_stalls = 3
  let drain_stalls = 4
  let redistributions = 5
  let migrated_addrs = 6
  let extra_chunks = 7
  let recycle_drops = 8
  let events_processed = 9
  let busy_ns = 10
  let stall_ns = 11
  let merge_ns = 12
  let run_ns = 13
  let events_read = 14
  let events_write = 15
  let sig_occupied = 16
  let sig_overwrites = 17
  let queue_pushes = 18
  let queue_push_failures = 19
  let queue_pops = 20
  let queue_pop_empties = 21
  let store_bytes = 22
  let bytes_signatures = 23
  let bytes_queues = 24
  let bytes_chunks = 25
  let bytes_dispatch = 26
  let dispatch_overrides = 27
  let dispatch_stats_entries = 28
  (* Supervision / graceful degradation (ISSUE 4). *)
  let bp_dropped_chunks = 29
  let bp_dropped_events = 30
  let worker_crashes = 31
  let unprocessed_chunks = 32
  let aborts = 33
  (* Hybrid static/dynamic engine (ISSUE 5). *)
  let static_pruned_events = 34
  let static_pruned_deps = 35
  (* Self-profiling (ISSUE 8): chunk consumption is counted on the worker
     side too, so a live sampler can derive queue occupancy as
     chunks_pushed - chunks_processed without touching the queues. *)
  let chunks_processed = 36

  let names =
    [|
      "chunks_pushed";
      "chunk_events";
      "queue_push_retries";
      "queue_full_stalls";
      "drain_stalls";
      "redistributions";
      "migrated_addrs";
      "extra_chunks";
      "recycle_drops";
      "events_processed";
      "busy_ns";
      "stall_ns";
      "merge_ns";
      "run_ns";
      "events_read";
      "events_write";
      "sig_occupied";
      "sig_overwrites";
      "queue_pushes";
      "queue_push_failures";
      "queue_pops";
      "queue_pop_empties";
      "store_bytes";
      "bytes_signatures";
      "bytes_queues";
      "bytes_chunks";
      "bytes_dispatch";
      "dispatch_overrides";
      "dispatch_stats_entries";
      "bp_dropped_chunks";
      "bp_dropped_events";
      "worker_crashes";
      "unprocessed_chunks";
      "aborts";
      "static_pruned_events";
      "static_pruned_deps";
      "chunks_processed";
    |]

  let n = Array.length names
end

module H = struct
  let chunk_occupancy = 0
  let flush_ns = 1
  let process_ns = 2
  let stall_ns = 3
  let redistribute_moves = 4

  let names = [| "chunk_occupancy"; "flush_ns"; "process_ns"; "stall_ns"; "redistribute_moves" |]
  let n = Array.length names
end

(* -- the hub -------------------------------------------------------------- *)

type clock_kind =
  | Monotonic
  | Virtual

(* Open-span stacks never exceed the pipeline's real nesting (Run >
   Redistribute > Flush > Queue_full is the deepest chain, depth 4);
   frames beyond the cap are counted but not recorded so a pathological
   caller degrades telemetry instead of crashing. *)
let stack_cap = 16

type cell = {
  counters : int array;
  hists : Stats.Histogram.t array;
  (* Trace ring: four parallel int lanes, overwrite-oldest.  ring_tag
     packs (Tag.to_int * 2 + span?1:0); ring_n counts every emit ever,
     so dropped = max 0 (ring_n - capacity). *)
  ring_ts : int array;
  ring_dur : int array;
  ring_tag : int array;
  ring_arg : int array;
  ring_mask : int;
  mutable ring_n : int;
  (* Open-span stack (enter/leave).  Parallel int lanes again: tag,
     entry timestamp, entry allocation counter, entry minor/major GC
     counts, and the bytes/collections already attributed to completed
     children of the frame. *)
  stack_tag : int array;
  stack_t0 : int array;
  stack_a0 : int array;
  stack_m0 : int array;
  stack_j0 : int array;
  stack_child_b : int array;
  stack_child_m : int array;
  stack_child_j : int array;
  mutable depth : int;
  (* Per-tag attribution, filled at leave/cancel time (self deltas). *)
  alloc_bytes : int array;
  alloc_spans : int array;
  alloc_minor_gcs : int array;
  alloc_major_gcs : int array;
  (* Gc.Memprof samples landed while a frame of this tag was innermost. *)
  memprof_samples : int array;
  memprof_words : int array;
}

type t = {
  on : bool;
  clock : clock_kind;
  track_alloc : bool;
  vtick : int Atomic.t;
  cells : cell array;
  t0 : int;  (* clock at creation: export subtracts it from timestamps *)
  dom_map : int array;  (* Domain.id land 255 -> telemetry dom (memprof attribution) *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let make_cell ~ring_capacity =
  let cap = next_pow2 (max 2 ring_capacity) 2 in
  {
    counters = Array.make C.n 0;
    hists = Array.init H.n (fun _ -> Stats.Histogram.create ());
    ring_ts = Array.make cap 0;
    ring_dur = Array.make cap 0;
    ring_tag = Array.make cap 0;
    ring_arg = Array.make cap 0;
    ring_mask = cap - 1;
    ring_n = 0;
    stack_tag = Array.make stack_cap 0;
    stack_t0 = Array.make stack_cap 0;
    stack_a0 = Array.make stack_cap 0;
    stack_m0 = Array.make stack_cap 0;
    stack_j0 = Array.make stack_cap 0;
    stack_child_b = Array.make stack_cap 0;
    stack_child_m = Array.make stack_cap 0;
    stack_child_j = Array.make stack_cap 0;
    depth = 0;
    alloc_bytes = Array.make Tag.count 0;
    alloc_spans = Array.make Tag.count 0;
    alloc_minor_gcs = Array.make Tag.count 0;
    alloc_major_gcs = Array.make Tag.count 0;
    memprof_samples = Array.make Tag.count 0;
    memprof_words = Array.make Tag.count 0;
  }

let disabled =
  {
    on = false;
    clock = Monotonic;
    track_alloc = false;
    vtick = Atomic.make 0;
    cells = [||];
    t0 = 0;
    dom_map = [||];
  }

let create ?(ring_capacity = 1 lsl 14) ?(clock = Monotonic) ?(track_alloc = false) ~domains () =
  if domains <= 0 then invalid_arg "Obs.create: domains must be positive";
  let t =
    {
      on = true;
      clock;
      (* Allocation deltas are wall-world Gc state: nondeterministic run
         to run, so they would break the vpar byte-identical exports. *)
      track_alloc = track_alloc && clock = Monotonic;
      vtick = Atomic.make 0;
      cells = Array.init domains (fun _ -> make_cell ~ring_capacity);
      t0 = 0;
      dom_map = Array.make 256 0;
    }
  in
  match clock with Monotonic -> { t with t0 = Clock.monotonic_ns () } | Virtual -> t

let enabled t = t.on
let domains t = Array.length t.cells
let clock_kind t = t.clock
let alloc_tracked t = t.track_alloc
let epoch_ns t = t.t0

(* Raw clock read; only meaningful on an enabled hub. *)
let now_raw t =
  match t.clock with
  | Monotonic -> Clock.monotonic_ns ()
  | Virtual -> Atomic.fetch_and_add t.vtick 1 + 1

let[@inline] now t = if t.on then now_raw t else 0

(* Out-of-range domain indices (an obs sized for fewer workers than the
   config asks for) alias to domain 0 rather than raising: telemetry
   must never take the pipeline down. *)
let[@inline] cell t dom = t.cells.(if dom >= 0 && dom < Array.length t.cells then dom else 0)

let[@inline] add t ~dom id v =
  if t.on then begin
    let c = cell t dom in
    c.counters.(id) <- c.counters.(id) + v
  end

let[@inline] incr t ~dom id = add t ~dom id 1

let[@inline] observe t ~dom id v = if t.on then Stats.Histogram.add (cell t dom).hists.(id) v

let emit c ~ts ~dur ~tag ~arg =
  let i = c.ring_n land c.ring_mask in
  c.ring_ts.(i) <- ts;
  c.ring_dur.(i) <- dur;
  c.ring_tag.(i) <- tag;
  c.ring_arg.(i) <- arg;
  c.ring_n <- c.ring_n + 1

let[@inline] instant t ~dom tag ~arg =
  if t.on then emit (cell t dom) ~ts:(now_raw t) ~dur:0 ~tag:(Tag.to_int tag * 2) ~arg

let[@inline] span t ~dom tag ~arg ~t0 =
  if not t.on then 0
  else begin
    let ts1 = now_raw t in
    let dur = if ts1 > t0 then ts1 - t0 else 0 in
    emit (cell t dom) ~ts:t0 ~dur ~tag:((Tag.to_int tag * 2) + 1) ~arg;
    dur
  end

(* -- open-span stack (enter/leave) ---------------------------------------- *)

(* [Gc.allocated_bytes] is domain-local on OCaml 5 (minor + major -
   promoted words of the calling domain), which is exactly the
   single-writer counter attribution needs.  It returns an exact integer
   as a float; runs stay far below 2^53 bytes. *)
let[@inline] alloc_now () = int_of_float (Gc.allocated_bytes ())

let enter t ~dom tag =
  if t.on then begin
    let c = cell t dom in
    let d = c.depth in
    if d < stack_cap then begin
      c.stack_tag.(d) <- Tag.to_int tag;
      c.stack_t0.(d) <- now_raw t;
      c.stack_child_b.(d) <- 0;
      c.stack_child_m.(d) <- 0;
      c.stack_child_j.(d) <- 0;
      if t.track_alloc then begin
        let gs = Gc.quick_stat () in
        c.stack_a0.(d) <- alloc_now ();
        c.stack_m0.(d) <- gs.Gc.minor_collections;
        c.stack_j0.(d) <- gs.Gc.major_collections
      end
    end;
    c.depth <- d + 1
  end

(* Pop the innermost frame: attribute its self allocation delta (frame
   delta minus what completed children already claimed) and optionally
   emit the span into the trace ring.  A leave without a matching enter
   is a silent no-op — telemetry must never take the pipeline down. *)
let pop t ~dom ~emit:do_emit ~arg =
  let c = cell t dom in
  let d = c.depth - 1 in
  if d < 0 then 0
  else begin
    c.depth <- d;
    if d >= stack_cap then 0
    else begin
      let tag = c.stack_tag.(d) in
      let t0 = c.stack_t0.(d) in
      let ts1 = now_raw t in
      let dur = if ts1 > t0 then ts1 - t0 else 0 in
      if t.track_alloc then begin
        let gs = Gc.quick_stat () in
        let db = alloc_now () - c.stack_a0.(d) in
        let dm = gs.Gc.minor_collections - c.stack_m0.(d) in
        let dj = gs.Gc.major_collections - c.stack_j0.(d) in
        c.alloc_bytes.(tag) <- c.alloc_bytes.(tag) + max 0 (db - c.stack_child_b.(d));
        c.alloc_minor_gcs.(tag) <- c.alloc_minor_gcs.(tag) + max 0 (dm - c.stack_child_m.(d));
        c.alloc_major_gcs.(tag) <- c.alloc_major_gcs.(tag) + max 0 (dj - c.stack_child_j.(d));
        c.alloc_spans.(tag) <- c.alloc_spans.(tag) + 1;
        if d > 0 then begin
          c.stack_child_b.(d - 1) <- c.stack_child_b.(d - 1) + db;
          c.stack_child_m.(d - 1) <- c.stack_child_m.(d - 1) + dm;
          c.stack_child_j.(d - 1) <- c.stack_child_j.(d - 1) + dj
        end
      end
      else if do_emit then c.alloc_spans.(tag) <- c.alloc_spans.(tag) + 1;
      if do_emit then emit c ~ts:t0 ~dur ~tag:((tag * 2) + 1) ~arg;
      dur
    end
  end

let leave t ~dom ~arg = if t.on then pop t ~dom ~emit:true ~arg else 0

let cancel t ~dom = if t.on then ignore (pop t ~dom ~emit:false ~arg:0 : int)

let current_tag t ~dom =
  if not t.on then None
  else begin
    let c = cell t dom in
    if c.depth > 0 && c.depth <= stack_cap then Some (Tag.of_int c.stack_tag.(c.depth - 1))
    else None
  end

(* -- memprof attribution hooks -------------------------------------------- *)

(* A Gc.Memprof tracker callback runs on the allocating domain, so it
   must find that domain's telemetry cell without help from the caller:
   each pipeline domain registers itself once ([bind_domain]) and the
   callback looks its own Domain.id up.  The map is a plain int array
   indexed by (id land 255): ids are process-unique and small, writes are
   one store, and a collision merely misattributes samples — never
   crashes. *)
let bind_domain t ~dom =
  if t.on then t.dom_map.((Domain.self () :> int) land 255) <- dom

let self_dom t = t.dom_map.((Domain.self () :> int) land 255)

let note_sample t ~words ~samples =
  if t.on && t.track_alloc then begin
    let c = cell t (self_dom t) in
    let tag =
      if c.depth > 0 && c.depth <= stack_cap then c.stack_tag.(c.depth - 1)
      else Tag.to_int Tag.Run
    in
    c.memprof_samples.(tag) <- c.memprof_samples.(tag) + samples;
    c.memprof_words.(tag) <- c.memprof_words.(tag) + words
  end

(* -- live (racy) monitoring reads ----------------------------------------- *)

(* Merged counters read while the pipeline is still running: each slot is
   a plain int the owning domain stores without fences, so the values may
   be stale — but OCaml's memory model guarantees no tearing on immediate
   int array slots, and every counter is monotone, so a sampler sees a
   (possibly slightly old) consistent-enough view.  For exact numbers use
   {!snapshot} after the domains have joined. *)
let counters_now t =
  let out = Array.make C.n 0 in
  Array.iter
    (fun (c : cell) ->
      for i = 0 to C.n - 1 do
        out.(i) <- out.(i) + c.counters.(i)
      done)
    t.cells;
  out

(* -- snapshot ------------------------------------------------------------- *)

type event = {
  dom : int;
  tag : Tag.t;
  is_span : bool;
  ts : int;  (* relative to the hub's creation *)
  dur : int;
  arg : int;
}

type snapshot = {
  n_domains : int;
  counters : int array;  (* merged over domains; indexed by C ids *)
  per_domain : int array array;  (* per_domain.(dom).(counter id) *)
  hists : Stats.Histogram.t array;  (* merged; indexed by H ids *)
  events : event list;  (* all domains, sorted by (ts, dom) *)
  dropped : int;
  virtual_clock : bool;
  alloc_tracked : bool;
  alloc_bytes : int array;  (* merged self bytes, indexed by Tag.to_int *)
  alloc_spans : int array;
  alloc_minor_gcs : int array;
  alloc_major_gcs : int array;
  memprof_samples : int array;
  memprof_words : int array;
}

let snapshot t =
  let nd = Array.length t.cells in
  let counters = Array.make C.n 0 in
  let per_domain = Array.init nd (fun d -> Array.copy t.cells.(d).counters) in
  Array.iter (fun pd -> Array.iteri (fun i v -> counters.(i) <- counters.(i) + v) pd) per_domain;
  let hists = Array.init H.n (fun _ -> Stats.Histogram.create ()) in
  Array.iter
    (fun (c : cell) ->
      Array.iteri (fun i h -> Stats.Histogram.merge_into ~src:h ~dst:hists.(i)) c.hists)
    t.cells;
  let merge_tags field =
    let out = Array.make Tag.count 0 in
    Array.iter
      (fun (c : cell) -> Array.iteri (fun i v -> out.(i) <- out.(i) + v) (field c))
      t.cells;
    out
  in
  let dropped = ref 0 in
  let events = ref [] in
  Array.iteri
    (fun dom (c : cell) ->
      let cap = c.ring_mask + 1 in
      dropped := !dropped + max 0 (c.ring_n - cap);
      let first = max 0 (c.ring_n - cap) in
      for k = c.ring_n - 1 downto first do
        let i = k land c.ring_mask in
        events :=
          {
            dom;
            tag = Tag.of_int (c.ring_tag.(i) / 2);
            is_span = c.ring_tag.(i) land 1 = 1;
            ts = c.ring_ts.(i) - t.t0;
            dur = c.ring_dur.(i);
            arg = c.ring_arg.(i);
          }
          :: !events
      done)
    t.cells;
  let events =
    List.stable_sort
      (fun a b ->
        let c = compare a.ts b.ts in
        if c <> 0 then c else compare a.dom b.dom)
      !events
  in
  {
    n_domains = nd;
    counters;
    per_domain;
    hists;
    events;
    dropped = !dropped;
    virtual_clock = (t.clock = Virtual);
    alloc_tracked = t.track_alloc;
    alloc_bytes = merge_tags (fun c -> c.alloc_bytes);
    alloc_spans = merge_tags (fun c -> c.alloc_spans);
    alloc_minor_gcs = merge_tags (fun c -> c.alloc_minor_gcs);
    alloc_major_gcs = merge_tags (fun c -> c.alloc_major_gcs);
    memprof_samples = merge_tags (fun c -> c.memprof_samples);
    memprof_words = merge_tags (fun c -> c.memprof_words);
  }

let counter snap id = snap.counters.(id)

let counter_per_domain snap id = Array.map (fun pd -> pd.(id)) snap.per_domain

let attributed_bytes snap = Array.fold_left ( + ) 0 snap.alloc_bytes
