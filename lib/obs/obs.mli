(** The telemetry hub: lock-free per-domain metric cells (counters +
    log2 histograms) and bounded drop-oldest trace rings, merged at
    snapshot time.

    Every domain of the profiling pipeline (producer = domain 0, worker
    [w] = domain [w+1]) is the single writer of its own cell, so the hot
    path needs no synchronization.  A disabled hub ({!disabled}) costs
    one branch per call site.

    Self-profiling (ISSUE 8): each cell also carries an open-span stack
    ({!enter}/{!leave}/{!cancel}).  On a hub created with
    [~track_alloc:true] every frame boundary captures the domain-local
    [Gc.allocated_bytes] counter and the global GC collection counts, so
    leaving a frame attributes the frame's *self* allocation (delta minus
    nested children) to its tag — a per-stage bytes table whose total
    matches the process-global allocation of the run. *)

(** Event taxonomy of the trace rings. *)
module Tag : sig
  type t =
    | Flush  (** producer: one chunk handed to a worker; arg = worker id *)
    | Process  (** worker: pop->process of one chunk; arg = events in chunk *)
    | Queue_full  (** producer stalled on a full worker queue; arg = worker id *)
    | Drain_wait  (** producer waiting on one worker at a drain barrier *)
    | Drain  (** full drain barrier; arg = workers waited on *)
    | Redistribute  (** hot-address redistribution; arg = migrated addresses *)
    | Merge  (** end-of-run merge of worker dependence maps *)
    | Run  (** whole instrumented run *)
    | Abort  (** supervisor aborted the run; arg = reason code *)
    | Worker  (** one worker domain's whole consume loop; arg = worker id *)

  val all : t array
  val to_int : t -> int
  val of_int : int -> t
  val name : t -> string

  val count : int
  (** number of tags; the length of per-tag attribution arrays *)
end

(** Counter ids (dense array indices; see [names]). *)
module C : sig
  val chunks_pushed : int
  val chunk_events : int
  val queue_push_retries : int
  val queue_full_stalls : int
  val drain_stalls : int
  val redistributions : int
  val migrated_addrs : int
  val extra_chunks : int
  val recycle_drops : int
  val events_processed : int
  val busy_ns : int
  val stall_ns : int
  val merge_ns : int
  val run_ns : int
  val events_read : int
  val events_write : int
  val sig_occupied : int
  val sig_overwrites : int
  val queue_pushes : int
  val queue_push_failures : int
  val queue_pops : int
  val queue_pop_empties : int
  val store_bytes : int
  val bytes_signatures : int
  val bytes_queues : int
  val bytes_chunks : int
  val bytes_dispatch : int
  val dispatch_overrides : int
  val dispatch_stats_entries : int
  val bp_dropped_chunks : int
  val bp_dropped_events : int
  val worker_crashes : int
  val unprocessed_chunks : int
  val aborts : int

  val static_pruned_events : int
  (** accesses the hybrid engine dropped on static independence proof *)

  val static_pruned_deps : int
  (** distinct (location, var, is-write) access sites pruning silenced *)

  val chunks_processed : int
  (** chunks consumed worker-side; [chunks_pushed - chunks_processed]
      approximates live queue occupancy for the progress sampler *)

  val names : string array
  val n : int
end

(** Histogram ids. *)
module H : sig
  val chunk_occupancy : int
  val flush_ns : int
  val process_ns : int
  val stall_ns : int
  val redistribute_moves : int
  val names : string array
  val n : int
end

type clock_kind =
  | Monotonic  (** [Clock.monotonic_ns]; real profiling runs *)
  | Virtual
      (** deterministic tick counter: the vpar virtual scheduler produces
          byte-identical traces for identical seeds *)

type t

val disabled : t
(** The always-off hub: every operation is one branch and a return. *)

val create :
  ?ring_capacity:int -> ?clock:clock_kind -> ?track_alloc:bool -> domains:int -> unit -> t
(** [domains] = producer + workers (so [workers + 1] for the parallel
    pipeline, 1 for serial engines).  [ring_capacity] (default 2^14)
    is per-domain and rounded up to a power of two.  [track_alloc]
    (default false) turns on per-stage allocation/GC attribution at
    {!enter}/{!leave} boundaries; it is forced off under the [Virtual]
    clock because Gc state is nondeterministic run to run. *)

val enabled : t -> bool
val domains : t -> int
val clock_kind : t -> clock_kind

val alloc_tracked : t -> bool
(** whether this hub attributes allocation at span boundaries *)

val epoch_ns : t -> int
(** The monotonic clock value at hub creation; event timestamps are
    relative to it.  0 under the Virtual clock. *)

val now : t -> int
(** Current timestamp (ns, or virtual ticks); 0 on a disabled hub. *)

val add : t -> dom:int -> int -> int -> unit
(** [add t ~dom id v] bumps counter [id] in [dom]'s cell.  Only the
    owning domain may call this for a given [dom]. *)

val incr : t -> dom:int -> int -> unit

val observe : t -> dom:int -> int -> int -> unit
(** Add a sample to histogram [id]. *)

val instant : t -> dom:int -> Tag.t -> arg:int -> unit
(** Emit a zero-duration event into [dom]'s trace ring. *)

val span : t -> dom:int -> Tag.t -> arg:int -> t0:int -> int
(** Emit a span that started at [t0] (a prior {!now}) and ends now.
    Returns the duration (0 on a disabled hub).  Stackless: no
    allocation attribution; prefer {!enter}/{!leave} inside the
    pipeline. *)

val enter : t -> dom:int -> Tag.t -> unit
(** Push an open span frame onto [dom]'s stack, capturing the entry
    timestamp and (when {!alloc_tracked}) the allocation/GC counters.
    Only the owning domain may call this. *)

val leave : t -> dom:int -> arg:int -> int
(** Pop the innermost frame: emit its span into the trace ring and
    attribute its self allocation delta to its tag.  Returns the span
    duration (0 on a disabled hub or unmatched leave). *)

val cancel : t -> dom:int -> unit
(** Pop the innermost frame *without* emitting a trace event, still
    attributing its allocation (for spans that turn out not to be
    delivered, e.g. a flush dropped by backpressure). *)

val current_tag : t -> dom:int -> Tag.t option
(** The innermost open span's tag, if any. *)

val bind_domain : t -> dom:int -> unit
(** Register the *calling* OS domain as telemetry domain [dom], so
    asynchronous callbacks (Gc.Memprof trackers) running on it can find
    its cell.  Each pipeline domain calls this once at startup. *)

val note_sample : t -> words:int -> samples:int -> unit
(** Credit a Gc.Memprof allocation sample to the calling domain's
    innermost open span (or Run when none is open).  No-op unless
    {!alloc_tracked}. *)

val counters_now : t -> int array
(** Merged counters read live, while the pipeline may still be running.
    Monitoring only: values can be slightly stale (plain unfenced int
    reads — no tearing, but no ordering either).  For exact numbers use
    {!snapshot} after the domains have joined. *)

type event = {
  dom : int;
  tag : Tag.t;
  is_span : bool;
  ts : int;  (** relative to hub creation *)
  dur : int;
  arg : int;
}

type snapshot = {
  n_domains : int;
  counters : int array;  (** merged over domains; indexed by {!C} ids *)
  per_domain : int array array;
  hists : Ddp_util.Stats.Histogram.t array;  (** merged; indexed by {!H} ids *)
  events : event list;  (** sorted by (ts, dom) *)
  dropped : int;  (** ring overwrites across all domains *)
  virtual_clock : bool;
  alloc_tracked : bool;  (** whether the alloc arrays below carry data *)
  alloc_bytes : int array;  (** self bytes per stage, indexed by [Tag.to_int] *)
  alloc_spans : int array;  (** spans attributed per stage *)
  alloc_minor_gcs : int array;  (** minor collections ending inside the stage *)
  alloc_major_gcs : int array;
  memprof_samples : int array;  (** Gc.Memprof samples landed per stage *)
  memprof_words : int array;
}

val snapshot : t -> snapshot
(** Merge all cells.  Call only after worker domains have joined (the
    rings are single-writer, not torn-read-safe mid-run). *)

val counter : snapshot -> int -> int
val counter_per_domain : snapshot -> int -> int array

val attributed_bytes : snapshot -> int
(** Sum of [alloc_bytes] over all stages: the allocation the span stacks
    accounted for, to cross-check against a [Gc.quick_stat] delta. *)
