(* Live progress sampler: a monitoring domain that periodically reads
   the hub's merged counters ([Obs.counters_now] — racy-but-monotone by
   design) and renders them as an in-place status line and/or an NDJSON
   stream, the scrape format the planned ddpd daemon will serve.

   The sampler never writes to the hub and never blocks the pipeline:
   it sleeps, reads plain int arrays, formats, and prints.  [stop] sets
   an atomic flag, joins the domain, and emits one final sample from the
   caller so even a run shorter than one interval produces at least one
   NDJSON line. *)

module Clock = Ddp_util.Clock

let schema = "ddp-progress/1"

type sink = {
  status : (string -> unit) option;  (* in-place status line *)
  out : out_channel option;  (* NDJSON stream *)
}

type t = {
  hub : Obs.t;
  sink : sink;
  interval : float;
  expect_events : int option;  (* for the ETA, when the caller knows *)
  stop_flag : bool Atomic.t;
  mutable sampler : unit Domain.t option;
  t_start_ns : int;
  mutable last_t : float;  (* seconds since start, previous sample *)
  mutable last_events : int;
}

(* One NDJSON object per sample; keep keys sorted-stable so the stream
   diffs cleanly.  eta_s is null until a rate and a target exist. *)
let render_json ~t_s ~events ~rate ~queue_chunks ~dropped_events ~crashes ~eta =
  let eta_field = match eta with None -> "null" | Some s -> Printf.sprintf "%.1f" s in
  Printf.sprintf
    {|{"schema":"%s","t_s":%.3f,"events":%d,"events_per_s":%.0f,"queue_chunks":%d,"dropped_events":%d,"worker_crashes":%d,"eta_s":%s}|}
    schema t_s events rate queue_chunks dropped_events crashes eta_field

let render_status ~t_s ~events ~rate ~queue_chunks ~dropped_events ~crashes ~eta =
  let eta_str = match eta with None -> "" | Some s -> Printf.sprintf " | eta %.0fs" s in
  let health = if crashes = 0 then "workers ok" else Printf.sprintf "%d worker CRASHES" crashes in
  Printf.sprintf "\r[ddprof] %6.1fs | %.2e ev | %8.0f ev/s | q=%-3d | drops=%d | %s%s%!" t_s
    (float_of_int events) rate queue_chunks dropped_events health eta_str

let sample t =
  let c = Obs.counters_now t.hub in
  let t_s = float_of_int (Clock.monotonic_ns () - t.t_start_ns) /. 1e9 in
  let events = c.(Obs.C.events_processed) in
  let dt = t_s -. t.last_t in
  let rate = if dt > 1e-9 then float_of_int (events - t.last_events) /. dt else 0.0 in
  t.last_t <- t_s;
  t.last_events <- events;
  let queue_chunks = max 0 (c.(Obs.C.chunks_pushed) - c.(Obs.C.chunks_processed)) in
  let dropped_events = c.(Obs.C.bp_dropped_events) in
  let crashes = c.(Obs.C.worker_crashes) in
  let eta =
    match t.expect_events with
    | Some target when rate > 1.0 && target > events ->
        Some (float_of_int (target - events) /. rate)
    | _ -> None
  in
  (match t.sink.out with
  | Some oc ->
      output_string oc
        (render_json ~t_s ~events ~rate ~queue_chunks ~dropped_events ~crashes ~eta);
      output_char oc '\n';
      flush oc
  | None -> ());
  match t.sink.status with
  | Some put -> put (render_status ~t_s ~events ~rate ~queue_chunks ~dropped_events ~crashes ~eta)
  | None -> ()

let loop t =
  while not (Atomic.get t.stop_flag) do
    (* Sleep in small slices so stop is responsive even with a long
       interval. *)
    let slept = ref 0.0 in
    while (not (Atomic.get t.stop_flag)) && !slept < t.interval do
      let step = Float.min 0.05 (t.interval -. !slept) in
      Unix.sleepf step;
      slept := !slept +. step
    done;
    if not (Atomic.get t.stop_flag) then sample t
  done

let start ?(interval = 0.5) ?expect_events ?status ?out hub =
  let t =
    {
      hub;
      sink = { status; out };
      interval = Float.max 0.01 interval;
      expect_events;
      stop_flag = Atomic.make false;
      sampler = None;
      t_start_ns = Clock.monotonic_ns ();
      last_t = 0.0;
      last_events = 0;
    }
  in
  if Obs.enabled hub then t.sampler <- Some (Domain.spawn (fun () -> loop t));
  t

let stop t =
  Atomic.set t.stop_flag true;
  (match t.sampler with
  | Some d ->
      Domain.join d;
      t.sampler <- None
  | None -> ());
  (* Final sample from the caller's domain: by now the pipeline domains
     have joined (ddprof stops progress after Profiler.run returns), so
     this one is exact, and every run emits >= 1 line. *)
  if Obs.enabled t.hub then sample t;
  match t.sink.status with Some put -> put "\n" | None -> ()
