(** Live progress sampler: a monitoring domain that periodically renders
    the hub's merged counters (events/s, queue occupancy, backpressure
    drops, worker health, ETA) as an in-place status line and/or an
    NDJSON stream ([schema] "ddp-progress/1", one object per line).

    Read-only and racy by design: it uses [Obs.counters_now], so values
    may be slightly stale; the final sample emitted by {!stop} (after
    the pipeline domains joined) is exact.  {!stop} always emits that
    final sample, so even a sub-interval run produces >= 1 line. *)

val schema : string
(** "ddp-progress/1" — the value of each line's ["schema"] field. *)

type t

val start :
  ?interval:float ->
  ?expect_events:int ->
  ?status:(string -> unit) ->
  ?out:out_channel ->
  Obs.t ->
  t
(** Spawn the sampler domain (no-op on a disabled hub).  [interval]
    (default 0.5s, floor 10ms) is the sampling period; [expect_events]
    enables the ETA estimate; [status] receives the rendered in-place
    line (e.g. prerr_string); [out] receives NDJSON lines (the channel
    stays owned by the caller and is not closed). *)

val stop : t -> unit
(** Stop and join the sampler, then emit one exact final sample from the
    calling domain.  Call after the profiled run returned. *)
