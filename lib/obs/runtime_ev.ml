(* Self-monitoring consumer for OCaml 5 Runtime_events: GC phase spans
   on the same timeline as the obs trace rings.

   [Runtime_events.start] turns on the runtime's own per-domain ring
   buffers; [create_cursor None] attaches to the *current* process, so
   no files or external tooling are involved.  Ring timestamps are
   CLOCK_MONOTONIC nanoseconds — the same base as Clock.monotonic_ns
   (clock_stubs.c), so rebasing against [Obs.epoch_ns] puts GC phases
   and obs spans on one Chrome-trace timeline.

   Single-consumer discipline: [poll]/[finish] must be called from one
   domain (ddprof polls from the main domain after the run).  The
   runtime's rings hold the last 2^16 events per domain; a long run can
   overwrite unread entries, which the [lost] counter reports rather
   than hides. *)

type phase = {
  ring : int;  (* runtime-events ring id, approximately the domain index *)
  name : string;  (* Runtime_events.runtime_phase_name *)
  ts_ns : int;  (* absolute CLOCK_MONOTONIC ns of phase begin *)
  dur_ns : int;
}

type t = {
  cursor : Runtime_events.cursor;
  callbacks : Runtime_events.Callbacks.t;
  phases : phase list ref;  (* completed, reverse order *)
  lost : int ref;
}

let ns_of ts = Int64.to_int (Runtime_events.Timestamp.to_int64 ts)

let start () =
  match
    Runtime_events.start ();
    Runtime_events.create_cursor None
  with
  | cursor ->
      let starts : (int * Runtime_events.runtime_phase, int) Hashtbl.t = Hashtbl.create 64 in
      let phases = ref [] in
      let lost = ref 0 in
      let runtime_begin ring ts phase = Hashtbl.replace starts (ring, phase) (ns_of ts) in
      let runtime_end ring ts phase =
        match Hashtbl.find_opt starts (ring, phase) with
        | None -> ()
        | Some t0 ->
            Hashtbl.remove starts (ring, phase);
            let t1 = ns_of ts in
            phases :=
              {
                ring;
                name = Runtime_events.runtime_phase_name phase;
                ts_ns = t0;
                dur_ns = max 0 (t1 - t0);
              }
              :: !phases
      in
      let lost_events _ring n = lost := !lost + n in
      let callbacks = Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ~lost_events () in
      Some { cursor; callbacks; phases; lost }
  | exception _ -> None

let poll t = try ignore (Runtime_events.read_poll t.cursor t.callbacks None : int) with _ -> ()

let lost t = !(t.lost)

let finish t =
  poll t;
  (try Runtime_events.free_cursor t.cursor with _ -> ());
  List.rev !(t.phases)
