(** Self-monitoring consumer for OCaml 5 [Runtime_events]: collects GC
    phase begin/end pairs from the runtime's own ring buffers so they
    can be fused onto the obs Chrome-trace timeline.

    Timestamps are absolute CLOCK_MONOTONIC nanoseconds — the same base
    as [Clock.monotonic_ns] — so callers rebase with [Obs.epoch_ns].

    Single consumer: call {!poll}/{!finish} from one domain only. *)

type phase = {
  ring : int;  (** runtime-events ring id (≈ domain index) *)
  name : string;  (** e.g. "minor", "major_slice", "stw_leader" *)
  ts_ns : int;  (** absolute monotonic ns of phase begin *)
  dur_ns : int;
}

type t

val start : unit -> t option
(** Enable the runtime's event rings and attach a self cursor.  [None]
    if this runtime cannot (never raises). *)

val poll : t -> unit
(** Drain currently buffered events.  The runtime keeps the last 2^16
    events per domain; poll often enough or accept {!lost}. *)

val lost : t -> int
(** Events the runtime overwrote before we read them. *)

val finish : t -> phase list
(** Final poll, release the cursor, return completed phases in
    chronological order. *)
