(* Affine subscript arithmetic and the ZIV / strong-SIV / GCD dependence
   tests.  Everything here errs toward [true] ("may alias"): a [false]
   answer is a proof of independence, used by the analyzer to *omit* an
   edge, so only the refutations need to be airtight. *)

type form = {
  c : int;
  terms : (int * int) list; (* (loop uid, coeff), sorted by uid, coeff <> 0 *)
}

type t = Affine of form | Top

let const c = Affine { c; terms = [] }
let var uid = Affine { c = 0; terms = [ (uid, 1) ] }
let is_top = function Top -> true | Affine _ -> false

let norm terms =
  terms
  |> List.filter (fun (_, k) -> k <> 0)
  |> List.sort (fun (u, _) (v, _) -> compare u v)

(* Merge two uid-sorted term lists with [op] on coefficients. *)
let merge op a b =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (u, k) -> Hashtbl.replace tbl u k) a;
  List.iter
    (fun (u, k) ->
      let prev = try Hashtbl.find tbl u with Not_found -> 0 in
      Hashtbl.replace tbl u (op prev k))
    b;
  Hashtbl.fold (fun u k acc -> (u, k) :: acc) tbl [] |> norm

let add a b =
  match (a, b) with
  | Affine x, Affine y -> Affine { c = x.c + y.c; terms = merge ( + ) x.terms y.terms }
  | _ -> Top

let neg = function
  | Affine x -> Affine { c = -x.c; terms = List.map (fun (u, k) -> (u, -k)) x.terms }
  | Top -> Top

let sub a b = add a (neg b)

let scale k = function
  | Affine x ->
      Affine { c = k * x.c; terms = norm (List.map (fun (u, q) -> (u, k * q)) x.terms) }
  | Top -> Top

let mul a b =
  match (a, b) with
  | Affine { c = k; terms = [] }, other | other, Affine { c = k; terms = [] } ->
      scale k other
  | _ -> Top

let to_string = function
  | Top -> "<non-affine>"
  | Affine { c; terms } ->
      let ts = List.map (fun (u, k) -> Printf.sprintf "%+d*i%d" k u) terms in
      String.concat "" (string_of_int c :: ts)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let gcd_list = List.fold_left gcd 0

(* Does [c + sum(k_i * x_i) = 0] have an integer solution with every x_i
   ranging over Z?  (Linear Diophantine: solvable iff the gcd of the
   coefficients divides c; no coefficients means the equation is [c = 0].) *)
let solvable ~coeffs ~c = match gcd_list coeffs with 0 -> c = 0 | g -> c mod g = 0

let same_iter_alias a b =
  match sub a b with
  | Top -> true (* non-affine: assume alias *)
  | Affine { c; terms } -> solvable ~coeffs:(List.map snd terms) ~c

let carried_alias ~carrier ?trip ?step a b =
  match (a, b) with
  | Top, _ | _, Top -> true
  | Affine fa, Affine fb -> (
      let coeff f = try List.assoc carrier f.terms with Not_found -> 0 in
      let ka = coeff fa and kb = coeff fb in
      let strip f = { f with terms = List.remove_assoc carrier f.terms } in
      (* The two iterations bind the carrier index to distinct symbols i
         and j (i <> j); everything else subtracts as usual. *)
      match sub (Affine (strip fa)) (Affine (strip fb)) with
      | Top -> true
      | Affine { c; terms } -> (
          let free = List.map snd terms in
          (* Equation: ka*i - kb*j + sum(free) + c = 0, with i <> j. *)
          match () with
          | _ when ka = 0 && kb = 0 ->
              (* Neither subscript moves with the carrier: any same-cell
                 solution works across iterations too. *)
              solvable ~coeffs:free ~c
          | _ when ka = kb && free = [] ->
              (* Strong SIV: the index-value distance d = c / ka must be
                 integral and nonzero; with a literal step it must also be
                 a whole number of iterations, fewer than the trip count
                 when that is known too. *)
              c <> 0 && c mod ka = 0
              &&
              let d = c / ka in
              (match step with
              | Some st when st <> 0 ->
                  d mod st = 0
                  && (match trip with Some t -> abs (d / st) < t | None -> true)
              | _ -> true)
          | _ ->
              (* GCD test over ka*i - kb*j + free.  Whenever it is
                 solvable, a solution with i <> j also exists: shifting
                 along the lattice moves i - j by a nonzero amount (by
                 ka <> kb, or through any free coefficient). *)
              solvable ~coeffs:(ka :: -kb :: free) ~c))
