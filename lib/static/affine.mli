(** Affine subscript forms and the classic dependence tests (ZIV, strong
    SIV, GCD) the static analyzer applies to array accesses inside [For]
    loops.

    A form is [c + sum(coeff_i * loop_i)] over *valid* loop indices: a
    [For] index with literal [lo] and [step] that the body never
    reassigns.  Anything else degrades to {!Top}, which aliases
    everything — conservatism, never unsoundness.

    Any loop uid appearing in both of two subscripts necessarily encloses
    both accesses, so equal coefficients cancel under subtraction; every
    residual coefficient is treated as ranging over all of Z, which only
    ever adds solutions.  A [false] from either alias test is therefore a
    proof of independence. *)

type form = {
  c : int;
  terms : (int * int) list;  (** (loop uid, coefficient), uid-sorted, coeff <> 0 *)
}

type t =
  | Affine of form
  | Top  (** non-affine: may alias any cell of the region *)

val const : int -> t
val var : int -> t  (** a loop index, by uid *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t  (** affine only when one side is constant *)

val is_top : t -> bool
val to_string : t -> string

val same_iter_alias : t -> t -> bool
(** May the two subscripts address the same cell within the same
    activation of every shared enclosing loop?  ZIV when no variables
    remain after subtraction, GCD otherwise. *)

val carried_alias : carrier:int -> ?trip:int -> ?step:int -> t -> t -> bool
(** May the subscripts address the same cell in two {e different}
    iterations of loop [carrier]?  The carrier's index is split into two
    symbols with nonzero difference: strong SIV when the carrier
    coefficients agree, GCD otherwise.  When the loop's literal [step]
    (and trip count [trip]) are known, the SIV distance must additionally
    be a multiple of the step (shorter than the trip). *)
