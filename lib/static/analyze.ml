(* The whole-program static dependence analyzer.

   Model: every access site (one read or write leaf of one statement) is
   placed on an execution-tree path — a list of steps from the program
   root.  [Seq k] is the k-th sequencing slot of a block-like context,
   [Loop u] enters one activation of loop [u], [Alt k] the k-th branch
   of an [If], [Par k] the k-th arm of a [Par].  Comparing two paths at
   their first divergence yields the pair's ordering relation
   (ordered / mutually-exclusive / concurrent), and the [Loop] steps in
   the shared prefix below the region's declaration scope are the loops
   that can carry a dependence between them.

   Calls: a non-recursive callee is inlined at each call site (its
   leaves get the call site's path as prefix, its env is the caller's
   globals snapshot plus fresh param regions, exactly the interpreter's
   scoping).  Call components that can recurse are flattened — "souped"
   — under a synthetic Loop step with Top subscripts, making every pair
   inside the component conservatively dependent in both directions.

   Soundness stance: everything here may over-approximate, never
   under-approximate, the dependences the dynamic profiler reports
   under its default configuration (INIT edges excluded).  The only
   two refinements that remove candidate edges — affine disproof and
   clearance-based carried-RAW refutation — are individually proven
   sound (see Affine and Reach); the [mutant] flag exists to break
   this on purpose for the fire drill. *)

module Ast = Ddp_minir.Ast
module Value = Ddp_minir.Value
module Dep = Ddp_core.Dep
module Names = Dataflow.Names
module SMap = Map.Make (String)
module ISet = Set.Make (Int)

type step = Seq of int | Loop of int | Alt of int | Par of int

type access = { a_write : bool; a_line : int; a_sub : Affine.t; a_path : step list }

type region = {
  r_name : string;
  r_scalar : bool;
  r_refinable : bool;  (* CFG facts for r_name apply to these accesses *)
  r_scope : int;  (* path-prefix length at declaration *)
  mutable r_accs : access list;
}

(* One meta per syntactic loop statement (keyed by header line); several
   loop uids (one per inlined instantiation) may map to the same meta. *)
type loop_meta = {
  lm_header : int;
  lm_end : int;
  lm_is_for : bool;
  lm_annotated : bool;
  lm_reduction : string list;
  lm_trip : int option;  (* literal trip count, if bounds are literals *)
  lm_step : int option;  (* literal step *)
  lm_straight : (int * string * Ast.expr) list;  (* direct-body Assigns *)
  mutable lm_names : Names.t;  (* scalars accessed within the loop *)
}

type emut = { mutable must : bool; mutable carr : ISet.t (* carrier header lines *) }

type st = {
  mutable next_uid : int;
  mutable regions : region list;
  mutable n_acc : int;
  meta_by_header : (int, loop_meta) Hashtbl.t;
  meta_by_uid : (int, loop_meta) Hashtbl.t;
  mutable metas : loop_meta list;  (* creation order *)
  assigns : (int, string * Ast.expr) Hashtbl.t;  (* line -> Assign *)
  funcs : (string, Ast.func) Hashtbl.t;
  recursive : (string, bool) Hashtbl.t;
  mutable active : loop_meta list;  (* enclosing loops, innermost first *)
  mutable globals : binding SMap.t;  (* env before current top-level stmt *)
  edges : (Dep.kind * int * int * string, emut) Hashtbl.t;
  mutant : bool;
}

and binding = { b_reg : region; b_idx : int option (* loop uid when a valid index *) }

(* ------------------------------------------------------------------ *)
(* Cursors and paths                                                   *)

type cursor = { cpre : step list; mutable cpos : int }

let slot cu =
  let p = cu.cpos in
  cu.cpos <- p + 1;
  cu.cpre @ [ Seq p ]

let fresh st =
  let u = st.next_uid in
  st.next_uid <- u + 1;
  u

let new_region st ~name ~scalar ~refinable ~scope =
  let r = { r_name = name; r_scalar = scalar; r_refinable = refinable; r_scope = scope; r_accs = [] } in
  st.regions <- r :: st.regions;
  r

let emit st (r : region) ~write ~line ~sub ~path =
  r.r_accs <- { a_write = write; a_line = line; a_sub = sub; a_path = path } :: r.r_accs;
  st.n_acc <- st.n_acc + 1;
  if r.r_scalar then
    List.iter (fun m -> m.lm_names <- Names.add r.r_name m.lm_names) st.active

(* ------------------------------------------------------------------ *)
(* Affine view of a subscript under an environment                     *)

let rec aff env (e : Ast.expr) : Affine.t =
  match e with
  | Ast.Int k -> Affine.const k
  | Ast.Var x -> (
      match SMap.find_opt x env with
      | Some { b_idx = Some u; _ } -> Affine.var u
      | _ -> Affine.Top)
  | Ast.Binop (Value.Add, a, b) -> Affine.add (aff env a) (aff env b)
  | Ast.Binop (Value.Sub, a, b) -> Affine.sub (aff env a) (aff env b)
  | Ast.Binop (Value.Mul, a, b) -> Affine.mul (aff env a) (aff env b)
  | Ast.Unop (Value.Neg, a) -> Affine.neg (aff env a)
  | _ -> Affine.Top

(* Emit the scalar reads of an expression; array loads inside emit both
   the index reads and the array-element read. *)
let rec expr_reads st cu env ~line (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Float _ -> ()
  | Ast.Var x -> (
      match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:false ~line ~sub:(Affine.const 0) ~path:(slot cu)
      | None -> ())
  | Ast.Load (x, ix) -> (
      expr_reads st cu env ~line ix;
      match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:false ~line ~sub:(aff env ix) ~path:(slot cu)
      | None -> ())
  | Ast.Binop (_, l, r) ->
      expr_reads st cu env ~line l;
      expr_reads st cu env ~line r
  | Ast.Unop (_, e) -> expr_reads st cu env ~line e
  | Ast.Intrinsic (_, args) -> List.iter (expr_reads st cu env ~line) args

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)

let rec block_callees acc (b : Ast.block) = List.fold_left stmt_callees acc b

and stmt_callees acc (s : Ast.stmt) =
  match s.kind with
  | Ast.Call_proc (g, _) -> g :: acc
  | Ast.If (_, t, e) -> block_callees (block_callees acc t) e
  | Ast.For { body; _ } -> block_callees acc body
  | Ast.While (_, b) -> block_callees acc b
  | Ast.Par bs -> List.fold_left block_callees acc bs
  | Ast.Spawn b -> block_callees acc b
  | _ -> acc

let reachable_funcs funcs seeds =
  let seen = Hashtbl.create 8 in
  let rec go g =
    if (not (Hashtbl.mem seen g)) && Hashtbl.mem funcs g then begin
      Hashtbl.replace seen g ();
      let f : Ast.func = Hashtbl.find funcs g in
      List.iter go (block_callees [] f.fbody)
    end
  in
  List.iter go seeds;
  seen

let compute_recursive st (prog : Ast.program) =
  List.iter
    (fun (f : Ast.func) ->
      let from_callees = reachable_funcs st.funcs (block_callees [] f.fbody) in
      Hashtbl.replace st.recursive f.fname (Hashtbl.mem from_callees f.fname))
    prog.funcs

let is_recursive st g = try Hashtbl.find st.recursive g with Not_found -> false

(* ------------------------------------------------------------------ *)
(* Loop metas                                                          *)

let get_meta st ~header ~end_ ~is_for ~annotated ~reduction ~trip ~step ~straight =
  match Hashtbl.find_opt st.meta_by_header header with
  | Some m -> m
  | None ->
      let m =
        {
          lm_header = header;
          lm_end = end_;
          lm_is_for = is_for;
          lm_annotated = annotated;
          lm_reduction = reduction;
          lm_trip = trip;
          lm_step = step;
          lm_straight = straight;
          lm_names = Names.empty;
        }
      in
      Hashtbl.replace st.meta_by_header header m;
      st.metas <- m :: st.metas;
      m

let assigns_index index (b : Ast.block) =
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Assign (x, _) | Ast.Local (x, _) -> x = index
    | Ast.If (_, t, e) -> List.exists stmt t || List.exists stmt e
    | Ast.For f -> f.index = index || List.exists stmt f.body
    | Ast.While (_, b) -> List.exists stmt b
    | Ast.Par bs -> List.exists (List.exists stmt) bs
    | Ast.Spawn b -> List.exists stmt b
    | Ast.Call_proc _ ->
        (* Callees write globals; if the index name is also a global the
           summary-level may-write could hit it.  Be conservative. *)
        true
    | _ -> false
  in
  List.exists stmt b

(* ------------------------------------------------------------------ *)
(* Extraction walk                                                     *)

let rec do_block st cu env (b : Ast.block) = ignore (List.fold_left (do_stmt st cu) env b)

and do_stmt st cu env (s : Ast.stmt) : binding SMap.t =
  match s.kind with
  | Ast.Nop | Ast.Lock _ | Ast.Unlock _ | Ast.Free _ -> env
  | Ast.Local (x, e) ->
      expr_reads st cu env ~line:s.line e;
      let r = new_region st ~name:x ~scalar:true ~refinable:true ~scope:(List.length cu.cpre) in
      emit st r ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu);
      SMap.add x { b_reg = r; b_idx = None } env
  | Ast.Assign (x, e) ->
      expr_reads st cu env ~line:s.line e;
      (match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu)
      | None -> ());
      env
  | Ast.Store (x, ix, e) ->
      expr_reads st cu env ~line:s.line ix;
      expr_reads st cu env ~line:s.line e;
      (match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:true ~line:s.line ~sub:(aff env ix) ~path:(slot cu)
      | None -> ());
      env
  | Ast.Array_decl (x, sz) ->
      expr_reads st cu env ~line:s.line sz;
      let r = new_region st ~name:x ~scalar:false ~refinable:false ~scope:(List.length cu.cpre) in
      SMap.add x { b_reg = r; b_idx = None } env
  | Ast.If (c, t, e) ->
      expr_reads st cu env ~line:s.line c;
      let pa = slot cu in
      do_block st { cpre = pa @ [ Alt 0 ]; cpos = 0 } env t;
      do_block st { cpre = pa @ [ Alt 1 ]; cpos = 0 } env e;
      env
  | Ast.While (c, b) ->
      let uid = fresh st in
      let m =
        get_meta st ~header:s.line ~end_:s.end_line ~is_for:false ~annotated:false
          ~reduction:[] ~trip:None ~step:None ~straight:[]
      in
      Hashtbl.replace st.meta_by_uid uid m;
      let pw = slot cu in
      let cyc = { cpre = pw @ [ Loop uid ]; cpos = 0 } in
      st.active <- m :: st.active;
      expr_reads st cyc env ~line:s.line c;
      ignore (List.fold_left (do_stmt st cyc) env b);
      st.active <- List.tl st.active;
      (* The final, failing condition evaluation happens after the last
         activation — model its reads outside the cycle. *)
      expr_reads st cu env ~line:s.line c;
      env
  | Ast.For f ->
      expr_reads st cu env ~line:s.line f.lo;
      let trip = Cfg.trip_literal f.lo f.hi f.step in
      let stepl = match f.step with Ast.Int k when k <> 0 -> Some k | _ -> None in
      let uid = fresh st in
      let straight =
        List.filter_map
          (fun (b : Ast.stmt) ->
            match b.kind with Ast.Assign (x, e) -> Some (b.line, x, e) | _ -> None)
          f.body
      in
      let m =
        get_meta st ~header:s.line ~end_:s.end_line ~is_for:true ~annotated:f.parallel
          ~reduction:f.reduction ~trip ~step:stepl ~straight
      in
      Hashtbl.replace st.meta_by_uid uid m;
      let ridx =
        new_region st ~name:f.index ~scalar:true ~refinable:true
          ~scope:(List.length cu.cpre)
      in
      emit st ridx ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu);
      let valid_idx = not (assigns_index f.index f.body) in
      let env' =
        SMap.add f.index
          { b_reg = ridx; b_idx = (if valid_idx then Some uid else None) }
          env
      in
      let pf = slot cu in
      let cyc = { cpre = pf @ [ Loop uid ]; cpos = 0 } in
      st.active <- m :: st.active;
      (* One activation: condition (hi reads + index read), body, then
         increment (step reads + index read + index write) — all
         attributed to the header line, as the interpreter does. *)
      expr_reads st cyc env' ~line:s.line f.hi;
      emit st ridx ~write:false ~line:s.line ~sub:(Affine.const 0) ~path:(slot cyc);
      ignore (List.fold_left (do_stmt st cyc) env' f.body);
      expr_reads st cyc env' ~line:s.line f.step;
      emit st ridx ~write:false ~line:s.line ~sub:(Affine.const 0) ~path:(slot cyc);
      emit st ridx ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cyc);
      st.active <- List.tl st.active;
      (* Final failing condition evaluation, outside the cycle. *)
      expr_reads st cu env' ~line:s.line f.hi;
      emit st ridx ~write:false ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu);
      env
  | Ast.Par bs ->
      let pp = slot cu in
      List.iteri (fun k b -> do_block st { cpre = pp @ [ Par k ]; cpos = 0 } env b) bs;
      env
  | Ast.Spawn b ->
      (* The task body may run anywhere between this spawn and the
         enclosing sync, so it must not be sequenced against anything
         outside it: a uniquely-numbered [Par] step replacing the [Seq]
         slot makes every (body, outside) pair diverge into [Conc] —
         edges in both directions, an over-approximation of every
         schedule.  (Unlike [Par] arms we deliberately do not consume a
         [Seq] slot: that would order the body before its block's
         continuation, which only holds after the sync.) *)
      let u = fresh st in
      do_block st { cpre = cu.cpre @ [ Par u ]; cpos = 0 } env b;
      env
  | Ast.Sync -> env
  | Ast.Call_proc (g, args) ->
      List.iter (expr_reads st cu env ~line:s.line) args;
      (match Hashtbl.find_opt st.funcs g with
      | None -> ()
      | Some fn -> if is_recursive st g then soup st cu g else inline st cu fn);
      env

(* Inline one activation of a non-recursive callee.  The callee env is
   the caller's *globals* snapshot plus fresh param regions — matching
   interp, which builds the callee env from ctx.globals + params. *)
and inline st cu (fn : Ast.func) =
  let pc = slot cu in
  let icur = { cpre = pc; cpos = 0 } in
  let scope = List.length pc in
  let fenv =
    List.fold_left
      (fun e p ->
        let r = new_region st ~name:p ~scalar:true ~refinable:true ~scope in
        emit st r ~write:true ~line:fn.header_line ~sub:(Affine.const 0) ~path:(slot icur);
        SMap.add p { b_reg = r; b_idx = None } e)
      st.globals fn.params
  in
  ignore (List.fold_left (do_stmt st icur) fenv fn.fbody)

(* Flatten a possibly-recursive call component under one synthetic Loop
   step.  Every leaf of every reachable function lands in the same
   cycle with Top subscripts; locals of the component get fresh,
   non-refinable regions scoped outside the cycle, so all pairs inside
   the component are conservatively dependent in both directions. *)
and soup st cu g =
  let pc = slot cu in
  let uid = fresh st in
  (* no meta for uid: trip unknown, step unknown, no refinement *)
  let cyc = { cpre = pc @ [ Loop uid ]; cpos = 0 } in
  let scope = List.length pc in
  let reach = reachable_funcs st.funcs [ g ] in
  let locals = Hashtbl.create 16 in
  let local_region x =
    match Hashtbl.find_opt locals x with
    | Some r -> r
    | None ->
        let r = new_region st ~name:x ~scalar:false ~refinable:false ~scope in
        Hashtbl.replace locals x r;
        r
  in
  (* Emit to the component-local region and, if the name is also a
     global, to the global region too: a soup name may denote either. *)
  let touch ?(force_local = false) ~write ~line x =
    let p = slot cyc in
    emit st (local_region x) ~write ~line ~sub:Affine.Top ~path:p;
    if not force_local then
      match SMap.find_opt x st.globals with
      | Some b -> emit st b.b_reg ~write ~line ~sub:Affine.Top ~path:(slot cyc)
      | None -> ()
  in
  let rec expr ~line (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Float _ -> ()
    | Ast.Var x -> touch ~write:false ~line x
    | Ast.Load (x, ix) ->
        expr ~line ix;
        touch ~write:false ~line x
    | Ast.Binop (_, l, r) ->
        expr ~line l;
        expr ~line r
    | Ast.Unop (_, e) -> expr ~line e
    | Ast.Intrinsic (_, args) -> List.iter (expr ~line) args
  in
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Nop | Ast.Lock _ | Ast.Unlock _ | Ast.Free _ -> ()
    | Ast.Local (x, e) | Ast.Assign (x, e) ->
        expr ~line:s.line e;
        touch ~write:true ~line:s.line x
    | Ast.Store (x, ix, e) ->
        expr ~line:s.line ix;
        expr ~line:s.line e;
        touch ~write:true ~line:s.line x
    | Ast.Array_decl (_, sz) -> expr ~line:s.line sz
    | Ast.If (c, t, e) ->
        expr ~line:s.line c;
        List.iter stmt t;
        List.iter stmt e
    | Ast.For f ->
        expr ~line:s.line f.lo;
        expr ~line:s.line f.hi;
        expr ~line:s.line f.step;
        touch ~force_local:true ~write:true ~line:s.line f.index;
        touch ~force_local:true ~write:false ~line:s.line f.index;
        List.iter stmt f.body
    | Ast.While (c, b) ->
        expr ~line:s.line c;
        List.iter stmt b
    | Ast.Par bs -> List.iter (List.iter stmt) bs
    | Ast.Spawn b -> List.iter stmt b
    | Ast.Sync -> ()
    | Ast.Call_proc (h, args) ->
        List.iter (expr ~line:s.line) args;
        (* The callee body is flattened once below; model only the
           per-call param writes here. *)
        (match Hashtbl.find_opt st.funcs h with
        | Some hf when Hashtbl.mem reach h ->
            List.iter
              (fun p -> touch ~force_local:true ~write:true ~line:hf.header_line p)
              hf.params
        | Some hf -> ignore hf
        | None -> ())
  in
  Hashtbl.iter
    (fun name () ->
      match Hashtbl.find_opt st.funcs name with
      | None -> ()
      | Some (f : Ast.func) ->
          List.iter
            (fun p -> touch ~force_local:true ~write:true ~line:f.header_line p)
            f.params;
          List.iter stmt f.fbody)
    reach

(* ------------------------------------------------------------------ *)
(* Pair analysis                                                       *)

type rel = Before | After | Excl | Conc

(* First divergence of two paths; collects carrier uids in the shared
   prefix at depth >= [scope].  Defensive default is Conc (sound: it
   yields edges in both directions). *)
let relate scope (a : access) (b : access) =
  let rec go i carr pa pb =
    match (pa, pb) with
    | x :: pa', y :: pb' when x = y ->
        let carr = match x with Loop u when i >= scope -> u :: carr | _ -> carr in
        go (i + 1) carr pa' pb'
    | Seq p :: _, Seq q :: _ -> (carr, if p < q then Before else After)
    | Alt p :: _, Alt q :: _ when p <> q -> (carr, Excl)
    | Par p :: _, Par q :: _ when p <> q -> (carr, Conc)
    | _ -> (carr, Conc)
  in
  go 0 [] a.a_path b.a_path

let self_carriers scope (a : access) =
  let rec go i acc = function
    | [] -> acc
    | Loop u :: tl when i >= scope -> go (i + 1) (u :: acc) tl
    | _ :: tl -> go (i + 1) acc tl
  in
  go 0 [] a.a_path

let kind_of ~(src : access) ~(sink : access) =
  match (src.a_write, sink.a_write) with
  | true, true -> Some Dep.WAW
  | true, false -> Some Dep.RAW
  | false, true -> Some Dep.WAR
  | false, false -> None

let note st ?(must = false) ?carrier ~kind ~src ~sink ~var () =
  let key = (kind, src, sink, var) in
  let e =
    match Hashtbl.find_opt st.edges key with
    | Some e -> e
    | None ->
        let e = { must = false; carr = ISet.empty } in
        Hashtbl.replace st.edges key e;
        e
  in
  if must then e.must <- true;
  match carrier with Some h -> e.carr <- ISet.add h e.carr | None -> ()

let carrier_info st u =
  match Hashtbl.find_opt st.meta_by_uid u with
  | Some m -> (m.lm_trip, m.lm_step, Some m.lm_header)
  | None -> (None, None, None)

(* A carried RAW into [sink_line] is refuted when the sink's loop-body
   reads of the region's name are provably killed by a definite def on
   every path from the loop entry (see Reach.refuted_sinks). *)
let raw_refuted reach stable (r : region) header sink_line =
  r.r_scalar && r.r_refinable
  && Names.mem r.r_name stable
  && List.mem sink_line (Reach.refuted_sinks reach ~header ~name:r.r_name)

let pair st reach stable (r : region) (a : access) (b : access) =
  let carr, rel = relate r.r_scope a b in
  let same_iter src sink =
    match kind_of ~src ~sink with
    | Some kind when Affine.same_iter_alias src.a_sub sink.a_sub ->
        note st ~kind ~src:src.a_line ~sink:sink.a_line ~var:r.r_name ()
    | _ -> ()
  in
  (match rel with
  | Before -> same_iter a b
  | After -> same_iter b a
  | Conc ->
      same_iter a b;
      same_iter b a
  | Excl -> ());
  if not st.mutant then
    List.iter
      (fun u ->
        let trip, step, header = carrier_info st u in
        let eligible = match trip with Some t -> t >= 2 | None -> true in
        if eligible && Affine.carried_alias ~carrier:u ?trip ?step a.a_sub b.a_sub then
          let carried src sink =
            match kind_of ~src ~sink with
            | Some kind ->
                let refuted =
                  kind = Dep.RAW
                  &&
                  match header with
                  | Some h -> raw_refuted reach stable r h sink.a_line
                  | None -> false
                in
                if not refuted then
                  note st
                    ?carrier:(match header with Some h -> Some h | None -> None)
                    ~kind ~src:src.a_line ~sink:sink.a_line ~var:r.r_name ()
            | None -> ()
          in
          carried a b;
          carried b a)
      carr

let self_pair st (r : region) (a : access) =
  if a.a_write && not st.mutant then
    List.iter
      (fun u ->
        let trip, step, header = carrier_info st u in
        let eligible = match trip with Some t -> t >= 2 | None -> true in
        if eligible && Affine.carried_alias ~carrier:u ?trip ?step a.a_sub a.a_sub then
          note st
            ?carrier:(match header with Some h -> Some h | None -> None)
            ~kind:Dep.WAW ~src:a.a_line ~sink:a.a_line ~var:r.r_name ())
      (self_carriers r.r_scope a)

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

let is_red_op (op : Value.binop) ~left =
  match op with
  | Value.Add | Value.Mul | Value.Min | Value.Max -> true
  | Value.Sub -> left (* s = s - e reduces; s = e - s does not *)
  | _ -> false

let reduction_shaped st ~var ~line =
  match Hashtbl.find_opt st.assigns line with
  | Some (x, Ast.Binop (op, Ast.Var y, rhs))
    when x = var && y = var && is_red_op op ~left:true ->
      not (Names.mem var (Cfg.scalars_of_expr rhs))
  | Some (x, Ast.Binop (op, lhs, Ast.Var y))
    when x = var && y = var && is_red_op op ~left:false ->
      not (Names.mem var (Cfg.scalars_of_expr lhs))
  | _ -> false

(* Must-serial evidence: the offender is a straight-line self-assign
   [s = f(s, ...)] in the loop body, the loop definitely runs >= 2
   iterations, and the CFG proves that assign is the only write to [s]
   in the loop (no may-defs).  Then iteration k's read of [s] is fed by
   iteration k-1's write in every run: a genuine carried RAW. *)
let serial_proof st reach stable (m : loop_meta) (e : Static_dep.edge) =
  e.Static_dep.e_src = e.Static_dep.e_sink
  && (match m.lm_trip with Some t -> t >= 2 | None -> false)
  && List.exists
       (fun (l, x, rhs) ->
         l = e.Static_dep.e_src
         && x = e.Static_dep.e_var
         && Names.mem x (Cfg.scalars_of_expr rhs))
       m.lm_straight
  && (not (reduction_shaped st ~var:e.Static_dep.e_var ~line:e.Static_dep.e_src))
  && Names.mem e.Static_dep.e_var stable
  && Reach.loop_defs reach ~header:m.lm_header ~name:e.Static_dep.e_var
     = Some ([ e.Static_dep.e_src ], false)

let verdict_of st reach stable (m : loop_meta) (all_edges : Static_dep.edge list) =
  let offenders =
    List.filter
      (fun (e : Static_dep.edge) ->
        e.Static_dep.e_kind = Dep.RAW
        && List.mem m.lm_header e.Static_dep.e_carriers
        && e.Static_dep.e_src <> m.lm_header (* induction-variable cycle *)
        && not
             (e.Static_dep.e_src = e.Static_dep.e_sink
             && List.mem e.Static_dep.e_var m.lm_reduction))
      all_edges
  in
  let verdict =
    match m.lm_trip with
    | Some t when t <= 1 -> Static_dep.Parallel (* a single iteration carries nothing *)
    | _ ->
        if offenders = [] then Static_dep.Parallel
        else if List.exists (serial_proof st reach stable m) offenders then
          Static_dep.Serial
        else if
          List.for_all
            (fun (e : Static_dep.edge) ->
              e.Static_dep.e_src = e.Static_dep.e_sink
              && reduction_shaped st ~var:e.Static_dep.e_var ~line:e.Static_dep.e_src)
            offenders
        then Static_dep.Reduction
        else Static_dep.Unknown
  in
  (verdict, offenders)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let fill_assigns tbl (prog : Ast.program) =
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Assign (x, e) -> Hashtbl.replace tbl s.line (x, e)
    | Ast.If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | Ast.For f -> List.iter stmt f.body
    | Ast.While (_, b) -> List.iter stmt b
    | Ast.Par bs -> List.iter (List.iter stmt) bs
    | Ast.Spawn b -> List.iter stmt b
    | _ -> ()
  in
  List.iter stmt prog.body;
  List.iter (fun (f : Ast.func) -> List.iter stmt f.fbody) prog.funcs

let analyze ?(mutant = false) (prog : Ast.program) : Static_dep.t =
  ignore (Ast.number prog);
  let st =
    {
      next_uid = 0;
      regions = [];
      n_acc = 0;
      meta_by_header = Hashtbl.create 16;
      meta_by_uid = Hashtbl.create 16;
      metas = [];
      assigns = Hashtbl.create 64;
      funcs = Hashtbl.create 8;
      recursive = Hashtbl.create 8;
      active = [];
      globals = SMap.empty;
      edges = Hashtbl.create 256;
      mutant;
    }
  in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace st.funcs f.fname f) prog.funcs;
  compute_recursive st prog;
  fill_assigns st.assigns prog;
  (* Extraction: thread the env through top-level statements, keeping
     st.globals = env *before* the current statement (interp updates
     ctx.globals only after each top-level statement completes). *)
  let root = { cpre = []; cpos = 0 } in
  ignore
    (List.fold_left
       (fun env s ->
         st.globals <- env;
         do_stmt st root env s)
       SMap.empty prog.body);
  (* CFG dataflow facts *)
  let reach = Reach.solve (Cfg.build prog) in
  let stable = Cfg.stable_scalars prog in
  (* Pairwise tests per region *)
  List.iter
    (fun r ->
      let accs = Array.of_list r.r_accs in
      let n = Array.length accs in
      for i = 0 to n - 1 do
        self_pair st r accs.(i);
        for j = i + 1 to n - 1 do
          pair st reach stable r accs.(i) accs.(j)
        done
      done)
    st.regions;
  (* Must-RAW claims from reaching definitions *)
  List.iter
    (fun (m : Reach.must_raw) ->
      note st ~must:true ~kind:Dep.RAW ~src:m.m_src ~sink:m.m_sink ~var:m.m_name ())
    (Reach.must_raws reach ~stable);
  let edges =
    Hashtbl.fold
      (fun (kind, src, sink, var) (e : emut) acc ->
        {
          Static_dep.e_kind = kind;
          e_src = src;
          e_sink = sink;
          e_var = var;
          e_must = e.must;
          e_carriers = ISet.elements e.carr;
        }
        :: acc)
      st.edges []
    |> List.sort (fun (a : Static_dep.edge) b ->
           compare
             (a.Static_dep.e_src, a.Static_dep.e_sink, a.Static_dep.e_kind, a.Static_dep.e_var)
             (b.Static_dep.e_src, b.Static_dep.e_sink, b.Static_dep.e_kind, b.Static_dep.e_var))
  in
  let loops =
    st.metas
    |> List.filter (fun m -> m.lm_is_for)
    |> List.sort (fun a b -> compare a.lm_header b.lm_header)
    |> List.map (fun m ->
           let verdict, offenders = verdict_of st reach stable m edges in
           let live =
             Names.inter (Reach.entry_live reach ~header:m.lm_header) m.lm_names
           in
           {
             Static_dep.v_header = m.lm_header;
             v_end = m.lm_end;
             v_annotated = m.lm_annotated;
             v_reduction = m.lm_reduction;
             v_verdict = verdict;
             v_offenders = offenders;
             v_live = Names.elements live;
           })
  in
  let touched =
    List.fold_left
      (fun s (e : Static_dep.edge) -> Names.add e.Static_dep.e_var s)
      Names.empty edges
  in
  let declared =
    List.fold_left (fun s (r : region) -> Names.add r.r_name s) Names.empty st.regions
  in
  let prunable = Names.elements (Names.diff declared touched) in
  {
    Static_dep.prog = prog.name;
    edges;
    loops;
    prunable;
    stats =
      {
        Static_dep.s_regions = List.length st.regions;
        s_accesses = st.n_acc;
        s_may = List.length edges;
        s_must = List.length (List.filter (fun (e : Static_dep.edge) -> e.Static_dep.e_must) edges);
      };
  }
