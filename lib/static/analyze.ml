(* The whole-program static dependence analyzer.

   Model: every access site (one read or write leaf of one statement) is
   placed on an execution-tree path — a list of steps from the program
   root.  [Seq k] is the k-th sequencing slot of a block-like context,
   [Loop u] enters one activation of loop [u], [Alt k] the k-th branch
   of an [If], [Par k] the k-th arm of a [Par].  Comparing two paths at
   their first divergence yields the pair's ordering relation
   (ordered / mutually-exclusive / concurrent), and the [Loop] steps in
   the shared prefix below the region's declaration scope are the loops
   that can carry a dependence between them.

   Calls: a non-recursive callee is inlined at each call site (its
   leaves get the call site's path as prefix, its env is the caller's
   globals snapshot plus fresh param regions, exactly the interpreter's
   scoping).  Call components that can recurse are flattened — "souped"
   — under a synthetic Loop step with Top subscripts, making every pair
   inside the component conservatively dependent in both directions.

   Soundness stance: everything here may over-approximate, never
   under-approximate, the dependences the dynamic profiler reports
   under its default configuration (INIT edges excluded).  The only
   two refinements that remove candidate edges — affine disproof and
   clearance-based carried-RAW refutation — are individually proven
   sound (see Affine and Reach); the [mutant] flag exists to break
   this on purpose for the fire drill. *)

module Ast = Ddp_minir.Ast
module Value = Ddp_minir.Value
module Dep = Ddp_core.Dep
module Names = Dataflow.Names
module SMap = Map.Make (String)
module ISet = Set.Make (Int)

type step = Seq of int | Loop of int | Alt of int | Par of int

type access = {
  a_write : bool;
  a_line : int;
  a_sub : Affine.t;
  a_path : step list;
  a_strand : Spdag.strand;  (* SP-skeleton position at emission *)
  a_must : bool;  (* executes in every complete run *)
}

type region = {
  r_name : string;
  r_scalar : bool;
  r_refinable : bool;  (* CFG facts for r_name apply to these accesses *)
  r_scope : int;  (* path-prefix length at declaration *)
  mutable r_accs : access list;
}

(* One meta per syntactic loop statement (keyed by header line); several
   loop uids (one per inlined instantiation) may map to the same meta. *)
type loop_meta = {
  lm_header : int;
  lm_end : int;
  lm_is_for : bool;
  lm_annotated : bool;
  lm_reduction : string list;
  lm_trip : int option;  (* literal trip count, if bounds are literals *)
  lm_step : int option;  (* literal step *)
  lm_lo : int option;  (* literal lower bound *)
  lm_straight : (int * string * Ast.expr) list;  (* direct-body Assigns *)
  mutable lm_names : Names.t;  (* scalars accessed within the loop *)
}

type emut = {
  mutable must : bool;
  mutable carr : ISet.t;  (* carrier header lines *)
  mutable race : Static_dep.race option;
}

type st = {
  mutable next_uid : int;
  mutable regions : region list;
  mutable n_acc : int;
  meta_by_header : (int, loop_meta) Hashtbl.t;
  meta_by_uid : (int, loop_meta) Hashtbl.t;
  mutable metas : loop_meta list;  (* creation order *)
  assigns : (int, string * Ast.expr) Hashtbl.t;  (* line -> Assign *)
  funcs : (string, Ast.func) Hashtbl.t;
  recursive : (string, bool) Hashtbl.t;
  mutable active : loop_meta list;  (* enclosing loops, innermost first *)
  mutable globals : binding SMap.t;  (* env before current top-level stmt *)
  edges : (Dep.kind * int * int * string, emut) Hashtbl.t;
  mutable sp : Spdag.node;  (* current static task of the walk *)
  mutable in_must : bool;  (* current position executes in every complete run *)
  mutable spawn_lines : ISet.t;  (* Spawn statement lines, for verdicts *)
  race_sites : (int, Static_dep.race) Hashtbl.t;  (* site line -> worst race *)
  mutant : bool;
  lockset_mutant : bool;
}

and binding = { b_reg : region; b_idx : int option (* loop uid when a valid index *) }

(* ------------------------------------------------------------------ *)
(* Cursors and paths                                                   *)

type cursor = { cpre : step list; mutable cpos : int }

let slot cu =
  let p = cu.cpos in
  cu.cpos <- p + 1;
  cu.cpre @ [ Seq p ]

let fresh st =
  let u = st.next_uid in
  st.next_uid <- u + 1;
  u

let new_region st ~name ~scalar ~refinable ~scope =
  let r = { r_name = name; r_scalar = scalar; r_refinable = refinable; r_scope = scope; r_accs = [] } in
  st.regions <- r :: st.regions;
  r

let emit st (r : region) ~write ~line ~sub ~path =
  r.r_accs <-
    {
      a_write = write;
      a_line = line;
      a_sub = sub;
      a_path = path;
      a_strand = Spdag.strand st.sp;
      a_must = st.in_must;
    }
    :: r.r_accs;
  st.n_acc <- st.n_acc + 1;
  if r.r_scalar then
    List.iter (fun m -> m.lm_names <- Names.add r.r_name m.lm_names) st.active

(* ------------------------------------------------------------------ *)
(* Affine view of a subscript under an environment                     *)

let rec aff env (e : Ast.expr) : Affine.t =
  match e with
  | Ast.Int k -> Affine.const k
  | Ast.Var x -> (
      match SMap.find_opt x env with
      | Some { b_idx = Some u; _ } -> Affine.var u
      | _ -> Affine.Top)
  | Ast.Binop (Value.Add, a, b) -> Affine.add (aff env a) (aff env b)
  | Ast.Binop (Value.Sub, a, b) -> Affine.sub (aff env a) (aff env b)
  | Ast.Binop (Value.Mul, a, b) -> Affine.mul (aff env a) (aff env b)
  | Ast.Unop (Value.Neg, a) -> Affine.neg (aff env a)
  | _ -> Affine.Top

(* Emit the scalar reads of an expression; array loads inside emit both
   the index reads and the array-element read. *)
let rec expr_reads st cu env ~line (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Float _ -> ()
  | Ast.Var x -> (
      match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:false ~line ~sub:(Affine.const 0) ~path:(slot cu)
      | None -> ())
  | Ast.Load (x, ix) -> (
      expr_reads st cu env ~line ix;
      match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:false ~line ~sub:(aff env ix) ~path:(slot cu)
      | None -> ())
  | Ast.Binop (_, l, r) ->
      expr_reads st cu env ~line l;
      expr_reads st cu env ~line r
  | Ast.Unop (_, e) -> expr_reads st cu env ~line e
  | Ast.Intrinsic (_, args) -> List.iter (expr_reads st cu env ~line) args

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)

let rec block_callees acc (b : Ast.block) = List.fold_left stmt_callees acc b

and stmt_callees acc (s : Ast.stmt) =
  match s.kind with
  | Ast.Call_proc (g, _) -> g :: acc
  | Ast.If (_, t, e) -> block_callees (block_callees acc t) e
  | Ast.For { body; _ } -> block_callees acc body
  | Ast.While (_, b) -> block_callees acc b
  | Ast.Par bs -> List.fold_left block_callees acc bs
  | Ast.Spawn b -> block_callees acc b
  | _ -> acc

let reachable_funcs funcs seeds =
  let seen = Hashtbl.create 8 in
  let rec go g =
    if (not (Hashtbl.mem seen g)) && Hashtbl.mem funcs g then begin
      Hashtbl.replace seen g ();
      let f : Ast.func = Hashtbl.find funcs g in
      List.iter go (block_callees [] f.fbody)
    end
  in
  List.iter go seeds;
  seen

let compute_recursive st (prog : Ast.program) =
  List.iter
    (fun (f : Ast.func) ->
      let from_callees = reachable_funcs st.funcs (block_callees [] f.fbody) in
      Hashtbl.replace st.recursive f.fname (Hashtbl.mem from_callees f.fname))
    prog.funcs

let is_recursive st g = try Hashtbl.find st.recursive g with Not_found -> false

(* ------------------------------------------------------------------ *)
(* Loop metas                                                          *)

let get_meta st ~header ~end_ ~is_for ~annotated ~reduction ~trip ~step ~lo ~straight =
  match Hashtbl.find_opt st.meta_by_header header with
  | Some m -> m
  | None ->
      let m =
        {
          lm_header = header;
          lm_end = end_;
          lm_is_for = is_for;
          lm_annotated = annotated;
          lm_reduction = reduction;
          lm_trip = trip;
          lm_step = step;
          lm_lo = lo;
          lm_straight = straight;
          lm_names = Names.empty;
        }
      in
      Hashtbl.replace st.meta_by_header header m;
      st.metas <- m :: st.metas;
      m

let assigns_index index (b : Ast.block) =
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Assign (x, _) | Ast.Local (x, _) -> x = index
    | Ast.If (_, t, e) -> List.exists stmt t || List.exists stmt e
    | Ast.For f -> f.index = index || List.exists stmt f.body
    | Ast.While (_, b) -> List.exists stmt b
    | Ast.Par bs -> List.exists (List.exists stmt) bs
    | Ast.Spawn b -> List.exists stmt b
    | Ast.Call_proc _ ->
        (* Callees write globals; if the index name is also a global the
           summary-level may-write could hit it.  Be conservative. *)
        true
    | _ -> false
  in
  List.exists stmt b

(* ------------------------------------------------------------------ *)
(* Extraction walk                                                     *)

let rec do_block st cu env (b : Ast.block) = ignore (List.fold_left (do_stmt st cu) env b)

and do_stmt st cu env (s : Ast.stmt) : binding SMap.t =
  match s.kind with
  | Ast.Nop | Ast.Lock _ | Ast.Unlock _ | Ast.Free _ -> env
  | Ast.Local (x, e) ->
      expr_reads st cu env ~line:s.line e;
      let r = new_region st ~name:x ~scalar:true ~refinable:true ~scope:(List.length cu.cpre) in
      emit st r ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu);
      SMap.add x { b_reg = r; b_idx = None } env
  | Ast.Assign (x, e) ->
      expr_reads st cu env ~line:s.line e;
      (match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu)
      | None -> ());
      env
  | Ast.Store (x, ix, e) ->
      expr_reads st cu env ~line:s.line ix;
      expr_reads st cu env ~line:s.line e;
      (match SMap.find_opt x env with
      | Some b -> emit st b.b_reg ~write:true ~line:s.line ~sub:(aff env ix) ~path:(slot cu)
      | None -> ());
      env
  | Ast.Array_decl (x, sz) ->
      expr_reads st cu env ~line:s.line sz;
      let r = new_region st ~name:x ~scalar:false ~refinable:false ~scope:(List.length cu.cpre) in
      SMap.add x { b_reg = r; b_idx = None } env
  | Ast.If (c, t, e) ->
      expr_reads st cu env ~line:s.line c;
      let pa = slot cu in
      let entry = Spdag.save st.sp in
      let must0 = st.in_must in
      st.in_must <- false;
      let walk_arm k b =
        Spdag.restore st.sp entry;
        let sc = Spdag.enter_scope st.sp in
        do_block st { cpre = pa @ [ Alt k ]; cpos = 0 } env b;
        Spdag.exit_scope st.sp sc ~loop:false;
        Spdag.save st.sp
      in
      let tip_t = walk_arm 0 t in
      let tip_e = walk_arm 1 e in
      Spdag.restore st.sp entry;
      Spdag.merge st.sp ~entry [ tip_t; tip_e ];
      st.in_must <- must0;
      env
  | Ast.While (c, b) ->
      let uid = fresh st in
      let m =
        get_meta st ~header:s.line ~end_:s.end_line ~is_for:false ~annotated:false
          ~reduction:[] ~trip:None ~step:None ~lo:None ~straight:[]
      in
      Hashtbl.replace st.meta_by_uid uid m;
      let pw = slot cu in
      let cyc = { cpre = pw @ [ Loop uid ]; cpos = 0 } in
      st.active <- m :: st.active;
      let must0 = st.in_must in
      st.in_must <- false;
      let entry = Spdag.save st.sp in
      let sc = Spdag.enter_scope st.sp in
      expr_reads st cyc env ~line:s.line c;
      ignore (List.fold_left (do_stmt st cyc) env b);
      Spdag.exit_scope st.sp sc ~loop:true;
      Spdag.merge st.sp ~entry [ Spdag.save st.sp ];
      st.in_must <- must0;
      st.active <- List.tl st.active;
      (* The final, failing condition evaluation happens after the last
         activation — model its reads outside the cycle. *)
      expr_reads st cu env ~line:s.line c;
      env
  | Ast.For f ->
      expr_reads st cu env ~line:s.line f.lo;
      let trip = Cfg.trip_literal f.lo f.hi f.step in
      let stepl = match f.step with Ast.Int k when k <> 0 -> Some k | _ -> None in
      let lol = match f.lo with Ast.Int k -> Some k | _ -> None in
      let uid = fresh st in
      let straight =
        List.filter_map
          (fun (b : Ast.stmt) ->
            match b.kind with Ast.Assign (x, e) -> Some (b.line, x, e) | _ -> None)
          f.body
      in
      let m =
        get_meta st ~header:s.line ~end_:s.end_line ~is_for:true ~annotated:f.parallel
          ~reduction:f.reduction ~trip ~step:stepl ~lo:lol ~straight
      in
      Hashtbl.replace st.meta_by_uid uid m;
      let ridx =
        new_region st ~name:f.index ~scalar:true ~refinable:true
          ~scope:(List.length cu.cpre)
      in
      emit st ridx ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu);
      let valid_idx = not (assigns_index f.index f.body) in
      let env' =
        SMap.add f.index
          { b_reg = ridx; b_idx = (if valid_idx then Some uid else None) }
          env
      in
      (* The bound/step expressions are also evaluated with the index one
         step past the last body value (the failing condition), so any
         array subscript inside them must not claim the body's iteration
         range: degrade the index to Top there. *)
      let env_x = SMap.add f.index { b_reg = ridx; b_idx = None } env in
      let pf = slot cu in
      let cyc = { cpre = pf @ [ Loop uid ]; cpos = 0 } in
      st.active <- m :: st.active;
      let must0 = st.in_must in
      st.in_must <- (must0 && match trip with Some t -> t >= 1 | None -> false);
      let entry = Spdag.save st.sp in
      let sc = Spdag.enter_scope st.sp in
      (* One activation: condition (hi reads + index read), body, then
         increment (step reads + index read + index write) — all
         attributed to the header line, as the interpreter does. *)
      expr_reads st cyc env_x ~line:s.line f.hi;
      emit st ridx ~write:false ~line:s.line ~sub:(Affine.const 0) ~path:(slot cyc);
      ignore (List.fold_left (do_stmt st cyc) env' f.body);
      expr_reads st cyc env_x ~line:s.line f.step;
      emit st ridx ~write:false ~line:s.line ~sub:(Affine.const 0) ~path:(slot cyc);
      emit st ridx ~write:true ~line:s.line ~sub:(Affine.const 0) ~path:(slot cyc);
      Spdag.exit_scope st.sp sc ~loop:true;
      Spdag.merge st.sp ~entry [ Spdag.save st.sp ];
      st.in_must <- must0;
      st.active <- List.tl st.active;
      (* Final failing condition evaluation, outside the cycle. *)
      expr_reads st cu env_x ~line:s.line f.hi;
      emit st ridx ~write:false ~line:s.line ~sub:(Affine.const 0) ~path:(slot cu);
      env
  | Ast.Par bs ->
      let pp = slot cu in
      let arms =
        List.mapi
          (fun k b ->
            let arm = Spdag.par_arm st.sp ~site:s.line in
            let outer = st.sp in
            st.sp <- arm;
            do_block st { cpre = pp @ [ Par k ]; cpos = 0 } env b;
            Spdag.finish arm;
            st.sp <- outer;
            arm)
          bs
      in
      Spdag.par_done st.sp arms;
      env
  | Ast.Spawn b ->
      (* The task body may run anywhere between this spawn and the
         enclosing sync, so it must not be sequenced against anything
         outside it: a uniquely-numbered [Par] step replacing the [Seq]
         slot makes every (body, outside) pair diverge into [Conc] —
         edges in both directions, an over-approximation of every
         schedule.  (Unlike [Par] arms we deliberately do not consume a
         [Seq] slot: that would order the body before its block's
         continuation, which only holds after the sync.)  The SP
         skeleton then refines: the child's window closes at the join
         the interpreter guarantees (explicit Sync or frame exit). *)
      let u = fresh st in
      st.spawn_lines <- ISet.add s.line st.spawn_lines;
      let child = Spdag.spawn st.sp ~site:s.line in
      let outer = st.sp in
      st.sp <- child;
      do_block st { cpre = cu.cpre @ [ Par u ]; cpos = 0 } env b;
      Spdag.finish child;
      st.sp <- outer;
      env
  | Ast.Sync ->
      Spdag.sync st.sp;
      env
  | Ast.Call_proc (g, args) ->
      List.iter (expr_reads st cu env ~line:s.line) args;
      (match Hashtbl.find_opt st.funcs g with
      | None -> ()
      | Some fn -> if is_recursive st g then soup st cu g else inline st cu fn);
      env

(* Inline one activation of a non-recursive callee.  The callee env is
   the caller's *globals* snapshot plus fresh param regions — matching
   interp, which builds the callee env from ctx.globals + params. *)
and inline st cu (fn : Ast.func) =
  let pc = slot cu in
  let icur = { cpre = pc; cpos = 0 } in
  let scope = List.length pc in
  (* A procedure body is a task frame (the Cilk rule): children it
     spawns are implicitly joined before the call returns. *)
  Spdag.enter_frame st.sp;
  let fenv =
    List.fold_left
      (fun e p ->
        let r = new_region st ~name:p ~scalar:true ~refinable:true ~scope in
        emit st r ~write:true ~line:fn.header_line ~sub:(Affine.const 0) ~path:(slot icur);
        SMap.add p { b_reg = r; b_idx = None } e)
      st.globals fn.params
  in
  ignore (List.fold_left (do_stmt st icur) fenv fn.fbody);
  Spdag.exit_frame st.sp

(* Flatten a possibly-recursive call component under one synthetic Loop
   step.  Every leaf of every reachable function lands in the same
   cycle with Top subscripts; locals of the component get fresh,
   non-refinable regions scoped outside the cycle, so all pairs inside
   the component are conservatively dependent in both directions. *)
and soup st cu g =
  let pc = slot cu in
  let uid = fresh st in
  (* no meta for uid: trip unknown, step unknown, no refinement *)
  let cyc = { cpre = pc @ [ Loop uid ]; cpos = 0 } in
  let scope = List.length pc in
  let reach = reachable_funcs st.funcs [ g ] in
  (* Task constructs anywhere in the component make every pair inside
     it potentially parallel; their lines are the race-attribution
     sites of the soup node. *)
  let sites = ref ISet.empty in
  let rec scan_sites (s : Ast.stmt) =
    match s.kind with
    | Ast.Spawn b ->
        sites := ISet.add s.line !sites;
        st.spawn_lines <- ISet.add s.line st.spawn_lines;
        List.iter scan_sites b
    | Ast.Par bs ->
        sites := ISet.add s.line !sites;
        List.iter (List.iter scan_sites) bs
    | Ast.If (_, t, e) ->
        List.iter scan_sites t;
        List.iter scan_sites e
    | Ast.For f -> List.iter scan_sites f.body
    | Ast.While (_, b) -> List.iter scan_sites b
    | _ -> ()
  in
  Hashtbl.iter
    (fun name () ->
      match Hashtbl.find_opt st.funcs name with
      | Some (f : Ast.func) -> List.iter scan_sites f.fbody
      | None -> ())
    reach;
  let snode =
    Spdag.soup st.sp ~sites:(ISet.elements !sites)
      ~parallel:(not (ISet.is_empty !sites))
  in
  let outer_sp = st.sp and must0 = st.in_must in
  st.sp <- snode;
  st.in_must <- false;
  let locals = Hashtbl.create 16 in
  let local_region x =
    match Hashtbl.find_opt locals x with
    | Some r -> r
    | None ->
        let r = new_region st ~name:x ~scalar:false ~refinable:false ~scope in
        Hashtbl.replace locals x r;
        r
  in
  (* Emit to the component-local region and, if the name is also a
     global, to the global region too: a soup name may denote either. *)
  let touch ?(force_local = false) ~write ~line x =
    let p = slot cyc in
    emit st (local_region x) ~write ~line ~sub:Affine.Top ~path:p;
    if not force_local then
      match SMap.find_opt x st.globals with
      | Some b -> emit st b.b_reg ~write ~line ~sub:Affine.Top ~path:(slot cyc)
      | None -> ()
  in
  let rec expr ~line (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Float _ -> ()
    | Ast.Var x -> touch ~write:false ~line x
    | Ast.Load (x, ix) ->
        expr ~line ix;
        touch ~write:false ~line x
    | Ast.Binop (_, l, r) ->
        expr ~line l;
        expr ~line r
    | Ast.Unop (_, e) -> expr ~line e
    | Ast.Intrinsic (_, args) -> List.iter (expr ~line) args
  in
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Nop | Ast.Lock _ | Ast.Unlock _ | Ast.Free _ -> ()
    | Ast.Local (x, e) | Ast.Assign (x, e) ->
        expr ~line:s.line e;
        touch ~write:true ~line:s.line x
    | Ast.Store (x, ix, e) ->
        expr ~line:s.line ix;
        expr ~line:s.line e;
        touch ~write:true ~line:s.line x
    | Ast.Array_decl (_, sz) -> expr ~line:s.line sz
    | Ast.If (c, t, e) ->
        expr ~line:s.line c;
        List.iter stmt t;
        List.iter stmt e
    | Ast.For f ->
        expr ~line:s.line f.lo;
        expr ~line:s.line f.hi;
        expr ~line:s.line f.step;
        touch ~force_local:true ~write:true ~line:s.line f.index;
        touch ~force_local:true ~write:false ~line:s.line f.index;
        List.iter stmt f.body
    | Ast.While (c, b) ->
        expr ~line:s.line c;
        List.iter stmt b
    | Ast.Par bs -> List.iter (List.iter stmt) bs
    | Ast.Spawn b -> List.iter stmt b
    | Ast.Sync -> ()
    | Ast.Call_proc (h, args) ->
        List.iter (expr ~line:s.line) args;
        (* The callee body is flattened once below; model only the
           per-call param writes here. *)
        (match Hashtbl.find_opt st.funcs h with
        | Some hf when Hashtbl.mem reach h ->
            List.iter
              (fun p -> touch ~force_local:true ~write:true ~line:hf.header_line p)
              hf.params
        | Some hf -> ignore hf
        | None -> ())
  in
  Hashtbl.iter
    (fun name () ->
      match Hashtbl.find_opt st.funcs name with
      | None -> ()
      | Some (f : Ast.func) ->
          List.iter
            (fun p -> touch ~force_local:true ~write:true ~line:f.header_line p)
            f.params;
          List.iter stmt f.fbody)
    reach;
  st.sp <- outer_sp;
  st.in_must <- must0

(* ------------------------------------------------------------------ *)
(* Pair analysis                                                       *)

type rel = Before | After | Excl | Conc

(* First divergence of two paths; collects carrier uids in the shared
   prefix at depth >= [scope].  Defensive default is Conc (sound: it
   yields edges in both directions). *)
let relate scope (a : access) (b : access) =
  let rec go i carr pa pb =
    match (pa, pb) with
    | x :: pa', y :: pb' when x = y ->
        let carr = match x with Loop u when i >= scope -> u :: carr | _ -> carr in
        go (i + 1) carr pa' pb'
    | Seq p :: _, Seq q :: _ -> (carr, if p < q then Before else After)
    | Alt p :: _, Alt q :: _ when p <> q -> (carr, Excl)
    | Par p :: _, Par q :: _ when p <> q -> (carr, Conc)
    | _ -> (carr, Conc)
  in
  go 0 [] a.a_path b.a_path

let self_carriers scope (a : access) =
  let rec go i acc = function
    | [] -> acc
    | Loop u :: tl when i >= scope -> go (i + 1) (u :: acc) tl
    | _ :: tl -> go (i + 1) acc tl
  in
  go 0 [] a.a_path

let kind_of ~(src : access) ~(sink : access) =
  match (src.a_write, sink.a_write) with
  | true, true -> Some Dep.WAW
  | true, false -> Some Dep.RAW
  | false, true -> Some Dep.WAR
  | false, false -> None

let race_level = function Static_dep.Race_may -> 1 | Static_dep.Race_must -> 2

let note st ?(must = false) ?carrier ?race ~kind ~src ~sink ~var () =
  let key = (kind, src, sink, var) in
  let e =
    match Hashtbl.find_opt st.edges key with
    | Some e -> e
    | None ->
        let e = { must = false; carr = ISet.empty; race = None } in
        Hashtbl.replace st.edges key e;
        e
  in
  if must then e.must <- true;
  (match race with
  | Some rc
    when match e.race with None -> true | Some r0 -> race_level rc > race_level r0 ->
      e.race <- Some rc
  | _ -> ());
  match carrier with Some h -> e.carr <- ISet.add h e.carr | None -> ()

(* Attribute a race to the Spawn/Par sites on the SP-skeleton root path
   of either endpoint, keeping the worst level per site. *)
let attribute st rc (a : access) (b : access) =
  let mark site =
    match Hashtbl.find_opt st.race_sites site with
    | Some r0 when race_level r0 >= race_level rc -> ()
    | _ -> Hashtbl.replace st.race_sites site rc
  in
  List.iter mark (Spdag.sites_of a.a_strand);
  List.iter mark (Spdag.sites_of b.a_strand)

let carrier_info st u =
  match Hashtbl.find_opt st.meta_by_uid u with
  | Some m -> (m.lm_trip, m.lm_step, Some m.lm_header)
  | None -> (None, None, None)

(* A carried RAW into [sink_line] is refuted when the sink's loop-body
   reads of the region's name are provably killed by a definite def on
   every path from the loop entry (see Reach.refuted_sinks). *)
let raw_refuted reach stable (r : region) header sink_line =
  r.r_scalar && r.r_refinable
  && Names.mem r.r_name stable
  && List.mem sink_line (Reach.refuted_sinks reach ~header ~name:r.r_name)

(* ------------------------------------------------------------------ *)
(* Value-range disproof and must-alias over literal loop bounds        *)

type rng = Rng_empty | Rng of int * int

let uid_range st u =
  match Hashtbl.find_opt st.meta_by_uid u with
  | Some { lm_lo = Some lo; lm_step = Some s; lm_trip = Some t; _ } ->
      if t = 0 then Some Rng_empty
      else
        let last = lo + ((t - 1) * s) in
        Some (Rng (min lo last, max lo last))
  | _ -> None

(* The interval of values an affine subscript can take, when every loop
   index in it has literal bounds.  [Rng_empty] means the access cannot
   execute at all (a zero-trip loop body). *)
let range_of st (a : Affine.t) =
  match a with
  | Affine.Top -> None
  | Affine.Affine { c; terms } ->
      let rec go lo hi = function
        | [] -> Some (Rng (lo, hi))
        | (u, k) :: tl -> (
            match uid_range st u with
            | Some Rng_empty -> Some Rng_empty
            | Some (Rng (vlo, vhi)) ->
                let x = k * vlo and y = k * vhi in
                go (lo + min x y) (hi + max x y) tl
            | None -> None)
      in
      go c c terms

(* Two accesses with provably disjoint value ranges can never touch the
   same cell: no dependence and no race, whatever the schedule. *)
let ranges_disjoint st a b =
  match (range_of st a, range_of st b) with
  | Some Rng_empty, _ | _, Some Rng_empty -> true
  | Some (Rng (alo, ahi)), Some (Rng (blo, bhi)) -> ahi < blo || bhi < alo
  | _ -> false

(* Is [v] one of the values loop [u]'s index actually takes? *)
let iter_value st u v =
  match Hashtbl.find_opt st.meta_by_uid u with
  | Some { lm_lo = Some lo; lm_step = Some s; lm_trip = Some t; _ } when s <> 0 ->
      (v - lo) mod s = 0
      &&
      let j = (v - lo) / s in
      j >= 0 && j < t
  | _ -> false

(* Do the two subscripts provably address a common cell in some run?
   Either they are the same affine form (shared indices cancel — valid
   only within one activation, which [Race_must]'s exactness premise
   guarantees), or they differ by one index term whose loop provably
   reaches the solving value. *)
let must_alias st a b =
  match Affine.sub a b with
  | Affine.Affine { c = 0; terms = [] } -> true
  | Affine.Affine { c; terms = [ (u, k) ] } when k <> 0 && c mod k = 0 ->
      iter_value st u (-c / k)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Race classification                                                 *)

(* Mirror of the dag engine's race rule: a dependence is race-flagged
   unless the strands are ordered or *both* endpoints hold a lock (any
   lock, not necessarily a common one).  [Race_must] strengthens a
   warning into a proof: both endpoints execute in every run, their
   strands are exactly (not conservatively) parallel, the cells
   provably coincide, and one side provably never holds a lock. *)
let race_of st locks (a : access) (b : access) =
  if st.lockset_mutant then None
  else if not (Spdag.mhp a.a_strand b.a_strand) then None
  else
    let musta = Lockset.must_held locks ~line:a.a_line
    and mustb = Lockset.must_held locks ~line:b.a_line in
    if (not (Lockset.ISet.is_empty musta)) && not (Lockset.ISet.is_empty mustb)
    then None
    else
      let must =
        a.a_must && b.a_must
        && Spdag.exact a.a_strand && Spdag.exact b.a_strand
        && must_alias st a.a_sub b.a_sub
        && (Lockset.ISet.is_empty (Lockset.may_held locks ~line:a.a_line)
           || Lockset.ISet.is_empty (Lockset.may_held locks ~line:b.a_line))
      in
      Some (if must then Static_dep.Race_must else Static_dep.Race_may)

let pair st locks reach stable (r : region) (a : access) (b : access) =
  if ranges_disjoint st a.a_sub b.a_sub then ()
  else begin
    let carr, rel = relate r.r_scope a b in
    let srel = Spdag.relate a.a_strand b.a_strand in
    (* Refine against the SP skeleton, in both directions.  Parallel
       strands make the textual order meaningless: a spawned body and
       the code after the spawn may execute either way round, so an
       ordered path relation degrades to Conc (edges both ways, each
       race-flagged).  Conversely a loop-independent Conc pair refines
       to the SP order: a task joined by a sync runs before everything
       after the join.  Shared carrier loops forbid that refinement —
       iteration k of one side and iteration k+1 of the other can
       execute in the reverse order. *)
    let rel =
      match (srel, rel) with
      | Spdag.S_par, (Before | After) -> Conc
      | Spdag.S_before, Conc when carr = [] -> Before
      | Spdag.S_after, Conc when carr = [] -> After
      | _ -> rel
    in
    let race = race_of st locks a b in
    let hit = ref false in
    let note' ?carrier ~kind ~src ~sink () =
      hit := true;
      note st ?carrier ?race ~kind ~src ~sink ~var:r.r_name ()
    in
    let same_iter src sink =
      match kind_of ~src ~sink with
      | Some kind when Affine.same_iter_alias src.a_sub sink.a_sub ->
          note' ~kind ~src:src.a_line ~sink:sink.a_line ()
      | _ -> ()
    in
    (match rel with
    | Before -> same_iter a b
    | After -> same_iter b a
    | Conc ->
        same_iter a b;
        same_iter b a
    | Excl -> ());
    if not st.mutant then
      List.iter
        (fun u ->
          let trip, step, header = carrier_info st u in
          let eligible = match trip with Some t -> t >= 2 | None -> true in
          if eligible && Affine.carried_alias ~carrier:u ?trip ?step a.a_sub b.a_sub
          then
            let carried src sink =
              match kind_of ~src ~sink with
              | Some kind ->
                  let refuted =
                    (* Clearance reasoning assumes the iteration's own
                       def executes before the use with nothing in
                       between; a parallel src can write exactly there,
                       so MHP pairs keep the edge. *)
                    kind = Dep.RAW
                    && srel <> Spdag.S_par
                    &&
                    match header with
                    | Some h -> raw_refuted reach stable r h sink.a_line
                    | None -> false
                  in
                  if not refuted then
                    note'
                      ?carrier:(match header with Some h -> Some h | None -> None)
                      ~kind ~src:src.a_line ~sink:sink.a_line ()
              | None -> ()
            in
            carried a b;
            carried b a)
        carr;
    match (race, !hit) with Some rc, true -> attribute st rc a b | _ -> ()
  end

let self_pair st locks (r : region) (a : access) =
  if a.a_write && not st.mutant then begin
    (* Two dynamic instances of one write racing each other: possible
       only for a multi-instance strand, refuted when every instance
       holds a lock.  Never [Race_must] — multi-instance is inexact. *)
    let race =
      if st.lockset_mutant then None
      else if
        Spdag.self_par a.a_strand
        && Lockset.ISet.is_empty (Lockset.must_held locks ~line:a.a_line)
      then Some Static_dep.Race_may
      else None
    in
    let hit = ref false in
    List.iter
      (fun u ->
        let trip, step, header = carrier_info st u in
        let eligible = match trip with Some t -> t >= 2 | None -> true in
        if eligible && Affine.carried_alias ~carrier:u ?trip ?step a.a_sub a.a_sub
        then begin
          hit := true;
          note st
            ?carrier:(match header with Some h -> Some h | None -> None)
            ?race ~kind:Dep.WAW ~src:a.a_line ~sink:a.a_line ~var:r.r_name ()
        end)
      (self_carriers r.r_scope a);
    match (race, !hit) with Some rc, true -> attribute st rc a a | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

let is_red_op (op : Value.binop) ~left =
  match op with
  | Value.Add | Value.Mul | Value.Min | Value.Max -> true
  | Value.Sub -> left (* s = s - e reduces; s = e - s does not *)
  | _ -> false

let reduction_shaped st ~var ~line =
  match Hashtbl.find_opt st.assigns line with
  | Some (x, Ast.Binop (op, Ast.Var y, rhs))
    when x = var && y = var && is_red_op op ~left:true ->
      not (Names.mem var (Cfg.scalars_of_expr rhs))
  | Some (x, Ast.Binop (op, lhs, Ast.Var y))
    when x = var && y = var && is_red_op op ~left:false ->
      not (Names.mem var (Cfg.scalars_of_expr lhs))
  | _ -> false

(* Must-serial evidence: the offender is a straight-line self-assign
   [s = f(s, ...)] in the loop body, the loop definitely runs >= 2
   iterations, and the CFG proves that assign is the only write to [s]
   in the loop (no may-defs).  Then iteration k's read of [s] is fed by
   iteration k-1's write in every run: a genuine carried RAW. *)
let serial_proof st reach stable (m : loop_meta) (e : Static_dep.edge) =
  e.Static_dep.e_src = e.Static_dep.e_sink
  && (match m.lm_trip with Some t -> t >= 2 | None -> false)
  && List.exists
       (fun (l, x, rhs) ->
         l = e.Static_dep.e_src
         && x = e.Static_dep.e_var
         && Names.mem x (Cfg.scalars_of_expr rhs))
       m.lm_straight
  && (not (reduction_shaped st ~var:e.Static_dep.e_var ~line:e.Static_dep.e_src))
  && Names.mem e.Static_dep.e_var stable
  && Reach.loop_defs reach ~header:m.lm_header ~name:e.Static_dep.e_var
     = Some ([ e.Static_dep.e_src ], false)

let verdict_of st reach stable (m : loop_meta) (all_edges : Static_dep.edge list) =
  let offenders =
    List.filter
      (fun (e : Static_dep.edge) ->
        e.Static_dep.e_kind = Dep.RAW
        && List.mem m.lm_header e.Static_dep.e_carriers
        && e.Static_dep.e_src <> m.lm_header (* induction-variable cycle *)
        && not
             (e.Static_dep.e_src = e.Static_dep.e_sink
             && List.mem e.Static_dep.e_var m.lm_reduction))
      all_edges
  in
  let verdict =
    match m.lm_trip with
    | Some t when t <= 1 -> Static_dep.Parallel (* a single iteration carries nothing *)
    | _ ->
        if offenders = [] then Static_dep.Parallel
        else if List.exists (serial_proof st reach stable m) offenders then
          Static_dep.Serial
        else if
          List.for_all
            (fun (e : Static_dep.edge) ->
              e.Static_dep.e_src = e.Static_dep.e_sink
              && reduction_shaped st ~var:e.Static_dep.e_var ~line:e.Static_dep.e_src)
            offenders
        then Static_dep.Reduction
        else Static_dep.Unknown
  in
  (verdict, offenders)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let fill_assigns tbl (prog : Ast.program) =
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Assign (x, e) -> Hashtbl.replace tbl s.line (x, e)
    | Ast.If (_, t, e) ->
        List.iter stmt t;
        List.iter stmt e
    | Ast.For f -> List.iter stmt f.body
    | Ast.While (_, b) -> List.iter stmt b
    | Ast.Par bs -> List.iter (List.iter stmt) bs
    | Ast.Spawn b -> List.iter stmt b
    | _ -> ()
  in
  List.iter stmt prog.body;
  List.iter (fun (f : Ast.func) -> List.iter stmt f.fbody) prog.funcs

let analyze ?(mutant = false) ?(lockset_mutant = false) (prog : Ast.program) :
    Static_dep.t =
  ignore (Ast.number prog);
  let st =
    {
      next_uid = 0;
      regions = [];
      n_acc = 0;
      meta_by_header = Hashtbl.create 16;
      meta_by_uid = Hashtbl.create 16;
      metas = [];
      assigns = Hashtbl.create 64;
      funcs = Hashtbl.create 8;
      recursive = Hashtbl.create 8;
      active = [];
      globals = SMap.empty;
      edges = Hashtbl.create 256;
      sp = Spdag.create ();
      in_must = true;
      spawn_lines = ISet.empty;
      race_sites = Hashtbl.create 8;
      mutant;
      lockset_mutant;
    }
  in
  List.iter (fun (f : Ast.func) -> Hashtbl.replace st.funcs f.fname f) prog.funcs;
  compute_recursive st prog;
  fill_assigns st.assigns prog;
  (* Extraction: thread the env through top-level statements, keeping
     st.globals = env *before* the current statement (interp updates
     ctx.globals only after each top-level statement completes). *)
  let root = { cpre = []; cpos = 0 } in
  ignore
    (List.fold_left
       (fun env s ->
         st.globals <- env;
         do_stmt st root env s)
       SMap.empty prog.body);
  (* Implicit program-end sync: the root task joins everything. *)
  Spdag.finish st.sp;
  (* CFG dataflow facts *)
  let cfgs = Cfg.build prog in
  let reach = Reach.solve cfgs in
  let locks = Lockset.solve prog cfgs in
  let stable = Cfg.stable_scalars prog in
  (* Pairwise tests per region *)
  List.iter
    (fun r ->
      let accs = Array.of_list r.r_accs in
      let n = Array.length accs in
      for i = 0 to n - 1 do
        self_pair st locks r accs.(i);
        for j = i + 1 to n - 1 do
          pair st locks reach stable r accs.(i) accs.(j)
        done
      done)
    st.regions;
  (* Must-RAW claims from reaching definitions *)
  List.iter
    (fun (m : Reach.must_raw) ->
      note st ~must:true ~kind:Dep.RAW ~src:m.m_src ~sink:m.m_sink ~var:m.m_name ())
    (Reach.must_raws reach ~stable);
  let edges =
    Hashtbl.fold
      (fun (kind, src, sink, var) (e : emut) acc ->
        {
          Static_dep.e_kind = kind;
          e_src = src;
          e_sink = sink;
          e_var = var;
          e_must = e.must;
          e_carriers = ISet.elements e.carr;
          e_race = e.race;
        }
        :: acc)
      st.edges []
    |> List.sort (fun (a : Static_dep.edge) b ->
           compare
             (a.Static_dep.e_src, a.Static_dep.e_sink, a.Static_dep.e_kind, a.Static_dep.e_var)
             (b.Static_dep.e_src, b.Static_dep.e_sink, b.Static_dep.e_kind, b.Static_dep.e_var))
  in
  let loops =
    st.metas
    |> List.filter (fun m -> m.lm_is_for)
    |> List.sort (fun a b -> compare a.lm_header b.lm_header)
    |> List.map (fun m ->
           let verdict, offenders = verdict_of st reach stable m edges in
           let live =
             Names.inter (Reach.entry_live reach ~header:m.lm_header) m.lm_names
           in
           {
             Static_dep.v_header = m.lm_header;
             v_end = m.lm_end;
             v_annotated = m.lm_annotated;
             v_reduction = m.lm_reduction;
             v_verdict = verdict;
             v_offenders = offenders;
             v_live = Names.elements live;
           })
  in
  let touched =
    List.fold_left
      (fun s (e : Static_dep.edge) -> Names.add e.Static_dep.e_var s)
      Names.empty edges
  in
  let declared =
    List.fold_left (fun s (r : region) -> Names.add r.r_name s) Names.empty st.regions
  in
  let prunable = Names.elements (Names.diff declared touched) in
  let spawns =
    ISet.elements st.spawn_lines
    |> List.map (fun line ->
           let v =
             match Hashtbl.find_opt st.race_sites line with
             | None -> Static_dep.Race_free
             | Some Static_dep.Race_must -> Static_dep.Racy
             | Some Static_dep.Race_may -> Static_dep.Race_unknown
           in
           { Static_dep.sv_line = line; sv_verdict = v })
  in
  {
    Static_dep.prog = prog.name;
    edges;
    loops;
    spawns;
    prunable;
    stats =
      {
        Static_dep.s_regions = List.length st.regions;
        s_accesses = st.n_acc;
        s_may = List.length edges;
        s_must = List.length (List.filter (fun (e : Static_dep.edge) -> e.Static_dep.e_must) edges);
        s_race_may =
          List.length
            (List.filter (fun (e : Static_dep.edge) -> e.Static_dep.e_race <> None) edges);
        s_race_must =
          List.length
            (List.filter
               (fun (e : Static_dep.edge) -> e.Static_dep.e_race = Some Static_dep.Race_must)
               edges);
      };
  }
