(** The whole-program static dependence analyzer.

    [analyze prog] extracts every scalar/array access site of [prog]
    into an execution-tree path model (sequencing, loop, branch and
    [Par] steps), runs pairwise dependence tests per storage region —
    affine subscript tests (ZIV / strong SIV / GCD) for array accesses
    under literal-bound [For] loops, conservative Top aliasing
    otherwise — and refines/strengthens the result with the CFG
    dataflow facts of {!Reach} (must-RAW claims, carried-RAW sink
    refutation, must-serial evidence).

    Soundness contract (checked by [ddpcheck soundness]): for every
    program, the returned may-edge set is a superset of the dependences
    any execution under the default profiler configuration reports
    (excluding INIT), and every must edge occurs in every complete
    run.  Non-recursive calls are inlined; recursive call components
    are "souped" under a synthetic carrier so every intra-component
    pair is conservatively both-directions dependent. *)

val analyze : ?mutant:bool -> Ddp_minir.Ast.program -> Static_dep.t
(** [mutant] deliberately breaks the analysis (drops all loop-carried
    edges) — the fire-drill hook proving the soundness checker can
    catch an unsound analyzer.  Never set it in production code. *)
