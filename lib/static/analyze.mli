(** The whole-program static dependence analyzer.

    [analyze prog] extracts every scalar/array access site of [prog]
    into an execution-tree path model (sequencing, loop, branch and
    [Par] steps), runs pairwise dependence tests per storage region —
    affine subscript tests (ZIV / strong SIV / GCD) for array accesses
    under literal-bound [For] loops, value-range disproof over literal
    loop bounds, conservative Top aliasing otherwise — and
    refines/strengthens the result with the CFG dataflow facts of
    {!Reach} (must-RAW claims, carried-RAW sink refutation, must-serial
    evidence).

    Task-parallel programs additionally get a static race lint: the walk
    builds an SP skeleton ({!Spdag}) mirroring the interpreter's task
    runtime, a lockset dataflow ({!Lockset}) over the CFG, and flags
    every edge whose endpoints may run in parallel without both being
    provably lock-protected as [Race_may] — [Race_must] when the race is
    proved to occur.  Each [Spawn] statement receives a verdict.

    Soundness contract (checked by [ddpcheck soundness] and [ddpcheck
    races]): for every program, the returned may-edge set is a superset
    of the dependences any execution under the default profiler
    configuration reports (excluding INIT), every must edge occurs in
    every complete run, and every dependence the dag engine race-flags
    on any schedule lies in the race-flagged edge set.  Non-recursive
    calls are inlined; recursive call components are "souped" under a
    synthetic carrier so every intra-component pair is conservatively
    both-directions dependent. *)

val analyze :
  ?mutant:bool -> ?lockset_mutant:bool -> Ddp_minir.Ast.program -> Static_dep.t
(** [mutant] deliberately breaks the analysis (drops all loop-carried
    edges); [lockset_mutant] breaks the race lint (treats every access
    as lock-protected, so no race is ever reported).  Both are
    fire-drill hooks proving the soundness checkers can catch an
    unsound analyzer.  Never set them in production code. *)
