(* Statement-grained control-flow graphs for MiniIR routines.

   The node layout for [For] mirrors lib/minir/interp.ml exactly: an init
   node (lo reads + index write), a condition node (hi reads + index
   read) that is both loop entry and exit, the body, and an increment
   node (step reads + index read/write) closing the back edge — all
   attributed to the header line, as the interpreter attributes them.
   [Par] arms are modeled as alternative paths: that is sound for the
   analyses built on top (may-defs for reaching definitions, and the
   clearance pass only ever *refutes* along same-thread program order). *)

module Ast = Ddp_minir.Ast
module Names = Dataflow.Names

type lock_op =
  | Acquire of int
  | Release of int
  | Clear  (* task/arm entry: a fresh thread starts with no locks held *)

type node = {
  id : int;
  line : int;
  uses : Names.t;
  defs : Names.t;
  gen_only : Names.t;
  is_call : bool;
  callee : string option;
  lock : lock_op option;
  must : bool;
  mutable succs : int list;
  mutable preds : int list;
}

type loop = { l_header : int; l_entry : int; l_members : int list }

type t = {
  routine : string;
  nodes : node array;
  entry : int;
  exits : int list;
  loops : loop list;
}

type summary = { s_reads : Names.t; s_writes : Names.t }

let rec expr_scalars acc (e : Ast.expr) =
  match e with
  | Int _ | Float _ -> acc
  | Var x -> Names.add x acc
  | Load (_, ix) -> expr_scalars acc ix
  | Binop (_, l, r) -> expr_scalars (expr_scalars acc l) r
  | Unop (_, e) -> expr_scalars acc e
  | Intrinsic (_, args) -> List.fold_left expr_scalars acc args

let scalars_of_expr e = expr_scalars Names.empty e
let scalars_of_exprs es = List.fold_left expr_scalars Names.empty es

let trip_literal lo hi step =
  match (lo, hi, step) with
  | Ast.Int l, Ast.Int h, Ast.Int s ->
      if s > 0 then Some (max 0 ((h - l + s - 1) / s))
      else if l >= h then Some 0
      else None (* nonpositive step on a nonempty range: diverges *)
  | _ -> None

let empty_summary = { s_reads = Names.empty; s_writes = Names.empty }

let summaries (prog : Ast.program) =
  let tbl = Hashtbl.create 8 in
  let find g = try Hashtbl.find tbl g with Not_found -> empty_summary in
  let effect_of (f : Ast.func) =
    let reads = ref Names.empty and writes = ref Names.empty in
    let note locals e =
      Names.iter
        (fun x -> if not (Names.mem x locals) then reads := Names.add x !reads)
        (scalars_of_expr e)
    in
    let rec stmt locals (s : Ast.stmt) =
      match s.kind with
      | Local (x, e) ->
          note locals e;
          Names.add x locals
      | Assign (x, e) ->
          note locals e;
          if not (Names.mem x locals) then writes := Names.add x !writes;
          locals
      | Store (_, ix, e) ->
          note locals ix;
          note locals e;
          locals
      | Array_decl (x, sz) ->
          note locals sz;
          Names.add x locals
      | Free _ | Lock _ | Unlock _ | Nop -> locals
      | If (c, t, e) ->
          note locals c;
          ignore (block locals t);
          ignore (block locals e);
          locals
      | For f ->
          note locals f.lo;
          let inner = Names.add f.index locals in
          note inner f.hi;
          note inner f.step;
          ignore (block inner f.body);
          locals
      | While (c, b) ->
          note locals c;
          ignore (block locals b);
          locals
      | Par bs ->
          List.iter (fun b -> ignore (block locals b)) bs;
          locals
      | Spawn b ->
          ignore (block locals b);
          locals
      | Sync -> locals
      | Call_proc (g, args) ->
          List.iter (note locals) args;
          (* Callee effects hit top-level globals regardless of our
             locals (MiniIR calls see ctx.globals + params only). *)
          let sg = find g in
          reads := Names.union !reads sg.s_reads;
          writes := Names.union !writes sg.s_writes;
          locals
    and block locals b = List.fold_left stmt locals b in
    ignore (block (Names.of_list f.params) f.fbody);
    { s_reads = !reads; s_writes = !writes }
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ast.func) ->
        let s = effect_of f in
        let old = find f.fname in
        if not (Names.equal s.s_reads old.s_reads && Names.equal s.s_writes old.s_writes)
        then begin
          Hashtbl.replace tbl f.fname s;
          changed := true
        end)
      prog.funcs
  done;
  tbl

let stable_scalars (prog : Ast.program) =
  let count = Hashtbl.create 32 and freed = ref Names.empty in
  let decl x = Hashtbl.replace count x (1 + try Hashtbl.find count x with Not_found -> 0) in
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Local (x, _) | Array_decl (x, _) -> decl x
    | Free x -> freed := Names.add x !freed
    | If (_, t, e) ->
        block t;
        block e
    | For f ->
        decl f.index;
        block f.body
    | While (_, b) -> block b
    | Par bs -> List.iter block bs
    | Spawn b -> block b
    | Assign _ | Store _ | Lock _ | Unlock _ | Nop | Sync | Call_proc _ -> ()
  and block b = List.iter stmt b in
  block prog.body;
  List.iter
    (fun (f : Ast.func) ->
      List.iter decl f.params;
      block f.fbody)
    prog.funcs;
  Hashtbl.fold
    (fun x n acc -> if n = 1 && not (Names.mem x !freed) then Names.add x acc else acc)
    count Names.empty

let build (prog : Ast.program) =
  let sums = summaries prog in
  let summary g = try Hashtbl.find sums g with Not_found -> empty_summary in
  let routine name formals body =
    let nodes_tbl = Hashtbl.create 64 in
    let counter = ref 0 in
    let loops = ref [] in
    let add ~line ~uses ~defs ?(gen = Names.empty) ?(call = false) ?callee ?lock ~must () =
      let id = !counter in
      incr counter;
      Hashtbl.replace nodes_tbl id
        {
          id;
          line;
          uses;
          defs;
          gen_only = gen;
          is_call = call;
          callee;
          lock;
          must;
          succs = [];
          preds = [];
        };
      id
    in
    let node id = Hashtbl.find nodes_tbl id in
    let connect preds id =
      List.iter
        (fun p ->
          let pn = node p in
          pn.succs <- id :: pn.succs;
          (node id).preds <- p :: (node id).preds)
        preds
    in
    let members lo hi = List.init (hi - lo + 1) (fun i -> lo + i) in
    let rec stmt ~must preds (s : Ast.stmt) : int list =
      match s.kind with
      | Nop | Free _ -> preds
      | Lock k | Unlock k ->
          let op = match s.kind with Ast.Lock _ -> Acquire k | _ -> Release k in
          let id =
            add ~line:s.line ~uses:Names.empty ~defs:Names.empty ~lock:op ~must ()
          in
          connect preds id;
          [ id ]
      | Local (x, e) | Assign (x, e) ->
          let id =
            add ~line:s.line ~uses:(scalars_of_expr e) ~defs:(Names.singleton x) ~must ()
          in
          connect preds id;
          [ id ]
      | Store (x, ix, e) ->
          (* The store hits the region named [x]; if [x] is in fact a
             scalar (Store s[0] is legal MiniIR), that is an address
             write reaching definitions must not see through — model it
             as a may-def so it widens facts without killing them. *)
          let uses = Names.union (scalars_of_expr ix) (scalars_of_expr e) in
          let id =
            add ~line:s.line ~uses ~defs:Names.empty ~gen:(Names.singleton x) ~must ()
          in
          connect preds id;
          [ id ]
      | Array_decl (_, sz) ->
          let id = add ~line:s.line ~uses:(scalars_of_expr sz) ~defs:Names.empty ~must () in
          connect preds id;
          [ id ]
      | If (c, t, e) ->
          let cid = add ~line:s.line ~uses:(scalars_of_expr c) ~defs:Names.empty ~must () in
          connect preds cid;
          let td = block ~must:false [ cid ] t in
          let ed = block ~must:false [ cid ] e in
          td @ ed
      | While (c, b) ->
          let cid = add ~line:s.line ~uses:(scalars_of_expr c) ~defs:Names.empty ~must () in
          connect preds cid;
          let bd = block ~must:false [ cid ] b in
          connect bd cid;
          loops :=
            { l_header = s.line; l_entry = cid; l_members = members cid (!counter - 1) }
            :: !loops;
          [ cid ]
      | For f ->
          let pre =
            add ~line:s.line ~uses:(scalars_of_expr f.lo)
              ~defs:(Names.singleton f.index) ~must ()
          in
          connect preds pre;
          let cid =
            add ~line:s.line
              ~uses:(Names.add f.index (scalars_of_expr f.hi))
              ~defs:Names.empty ~must ()
          in
          connect [ pre ] cid;
          let trip = trip_literal f.lo f.hi f.step in
          let body_must = must && (match trip with Some t -> t >= 1 | None -> false) in
          let bd = block ~must:body_must [ cid ] f.body in
          let inc =
            add ~line:s.line
              ~uses:(Names.add f.index (scalars_of_expr f.step))
              ~defs:(Names.singleton f.index) ~must:body_must ()
          in
          connect bd inc;
          connect [ inc ] cid;
          loops :=
            { l_header = s.line; l_entry = cid; l_members = members cid inc } :: !loops;
          [ cid ]
      (* Par arms and spawned bodies run on a fresh thread that starts
         with no locks held: a [Clear] pseudo-node at each entry resets
         the lockset dataflow without touching the scalar facts. *)
      | Par bs ->
          List.concat_map
            (fun b ->
              let cl =
                add ~line:s.line ~uses:Names.empty ~defs:Names.empty ~lock:Clear
                  ~must:false ()
              in
              connect preds cl;
              block ~must:false [ cl ] b)
            bs
      (* A spawned body may run anywhere between the spawn point and the
         enclosing sync: treat it like a may-taken branch (its defs are
         may-defs reaching the continuation) whose exits merge with the
         straight-line path. *)
      | Spawn b ->
          let cl =
            add ~line:s.line ~uses:Names.empty ~defs:Names.empty ~lock:Clear
              ~must:false ()
          in
          connect preds cl;
          block ~must:false [ cl ] b @ preds
      | Sync -> preds
      | Call_proc (g, args) ->
          let sg = summary g in
          let uses = Names.union (scalars_of_exprs args) sg.s_reads in
          let id =
            add ~line:s.line ~uses ~defs:Names.empty ~gen:sg.s_writes ~call:true
              ~callee:g ~must ()
          in
          connect preds id;
          [ id ]
    and block ~must preds b = List.fold_left (fun p s -> stmt ~must p s) preds b in
    let entry =
      add ~line:0 ~uses:Names.empty ~defs:(Names.of_list formals) ~must:true ()
    in
    let exits = block ~must:true [ entry ] body in
    let nodes = Array.init !counter (fun i -> node i) in
    { routine = name; nodes; entry; exits; loops = List.rev !loops }
  in
  routine "main" [] prog.body
  :: List.map (fun (f : Ast.func) -> routine f.fname f.params f.fbody) prog.funcs
