(** Control-flow graphs over MiniIR, one per routine (the top-level block
    plus each [func]), with the scalar use/def sets the dataflow passes in
    {!Reach} consume.

    Nodes are statement-grained.  [For] loops expand into the same three
    header nodes the interpreter's event stream exhibits (init, condition,
    increment, all at the header line); [Par] arms become parallel
    alternative path families; [Call_proc] collapses into one call node
    carrying the callee's transitive global-scalar summary, whose writes
    are {e may}-defs ([gen_only]) — they generate definitions but never
    kill, keeping reaching-definition facts sound across calls. *)

module Names = Dataflow.Names

type lock_op =
  | Acquire of int  (** [Lock k] *)
  | Release of int  (** [Unlock k] *)
  | Clear
      (** [Spawn]-body / [Par]-arm entry: a fresh thread holds no locks *)

type node = {
  id : int;
  line : int;
  uses : Names.t;  (** scalar names the node reads (array element reads excluded) *)
  defs : Names.t;  (** definite scalar writes: gen + kill *)
  gen_only : Names.t;  (** may-writes via calls: gen, never kill *)
  is_call : bool;
  callee : string option;  (** the called function, on call nodes *)
  lock : lock_op option;  (** lockset transfer, on lock pseudo-nodes *)
  must : bool;
      (** node executes in every complete run of the routine: not under
          [If]/[While]/[Par], and only under [For]s with literal trip >= 1 *)
  mutable succs : int list;
  mutable preds : int list;
}

type loop = {
  l_header : int;  (** source line of the [For]/[While] statement *)
  l_entry : int;  (** condition node id — target of the back edge *)
  l_members : int list;  (** node ids forming the cycle body (entry..latch) *)
}

type t = {
  routine : string;  (** ["main"] or the function name *)
  nodes : node array;  (** indexed by node id *)
  entry : int;
  exits : int list;
  loops : loop list;
}

type summary = {
  s_reads : Names.t;  (** global scalars a call may read, transitively *)
  s_writes : Names.t;  (** global scalars a call may write, transitively *)
}

val scalars_of_expr : Ddp_minir.Ast.expr -> Names.t
(** Scalar names read when evaluating the expression (subscript scalars
    included, array names excluded). *)

val trip_literal :
  Ddp_minir.Ast.expr -> Ddp_minir.Ast.expr -> Ddp_minir.Ast.expr -> int option
(** Iteration count of [for (i = lo; i < hi; i += step)] when all three
    bounds are integer literals; [None] when unknown (or non-terminating). *)

val summaries : Ddp_minir.Ast.program -> (string, summary) Hashtbl.t
(** Transitive global-scalar effect summary per function, by fixpoint
    over the (possibly recursive) call graph.  Callee effects name
    top-level globals: MiniIR callees see [ctx.globals], never the
    caller's locals. *)

val stable_scalars : Ddp_minir.Ast.program -> Names.t
(** Names declared exactly once program-wide ([Local], [Array_decl],
    [For] index or parameter) and never [Free]d.  Shadowing-free, so
    name-keyed dataflow facts about them translate to address facts;
    the must-dependence and liveness-refinement passes are gated on
    this set. *)

val build : Ddp_minir.Ast.program -> t list
(** CFGs for the whole program: main first, then one per function, in
    declaration order. *)
