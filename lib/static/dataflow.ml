(* Generic monotone worklist solver.  All the scalar analyses in this
   library (reaching definitions, liveness, definition clearance) are
   instances over small lattices, so one chaotic-iteration loop serves
   them all. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val bottom : t
  val join : t -> t -> t
end

module Make (L : LATTICE) = struct
  let solve ~nodes ~deps ~transfer ?(init = fun _ -> L.bottom) () =
    let in_v = Hashtbl.create 64 and out_v = Hashtbl.create 64 in
    let get tbl n = try Hashtbl.find tbl n with Not_found -> L.bottom in
    List.iter
      (fun n ->
        Hashtbl.replace in_v n (init n);
        Hashtbl.replace out_v n (transfer n (init n)))
      nodes;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun n ->
          let i =
            List.fold_left (fun acc d -> L.join acc (get out_v d)) (init n) (deps n)
          in
          if not (L.equal i (get in_v n)) then begin
            Hashtbl.replace in_v n i;
            Hashtbl.replace out_v n (transfer n i);
            changed := true
          end)
        nodes
    done;
    (get in_v, get out_v)
end

module Names = Set.Make (String)

module Name_set_lattice = struct
  type t = Names.t

  let equal = Names.equal
  let bottom = Names.empty
  let join = Names.union
end
