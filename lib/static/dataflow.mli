(** A small monotone-framework worklist solver, shared by the
    reaching-definitions, live-variables and definition-clearance passes
    in {!Reach}.  Direction-agnostic: pass successor edges for a forward
    problem and predecessor edges for a backward one. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val bottom : t
  val join : t -> t -> t
end

module Make (L : LATTICE) : sig
  val solve :
    nodes:int list ->
    deps:(int -> int list) ->
    transfer:(int -> L.t -> L.t) ->
    ?init:(int -> L.t) ->
    unit ->
    (int -> L.t) * (int -> L.t)
  (** [solve ~nodes ~deps ~transfer ~init ()] computes the least fixpoint
      of [in(n) = init n |_| join over d in deps n of out(d)] and
      [out(n) = transfer n (in n)].  Returns [(in_of, out_of)].  [deps]
      must only yield members of [nodes]; [init] defaults to bottom. *)
end

module Names : Set.S with type elt = string

module Name_set_lattice : LATTICE with type t = Names.t
