type plan = {
  symtab : Ddp_minir.Symtab.t;
  prune_ids : int list;
  prune_names : string list;
  report : Static_dep.t;
}

let plan prog =
  let report = Analyze.analyze prog in
  let symtab = Ddp_minir.Symtab.create () in
  let prune_ids = List.map (Ddp_minir.Symtab.var symtab) report.Static_dep.prunable in
  { symtab; prune_ids; prune_names = report.Static_dep.prunable; report }
