(** Glue between the static analyzer and the dynamic "hybrid" engine:
    pre-interns the statically proved dependence-free variables into a
    symbol table so the engine can skip their access events by id
    (Config.static_prune). *)

type plan = {
  symtab : Ddp_minir.Symtab.t;
      (** pass this same table to the profiler run (interning is
          idempotent, so pre-interning never changes later ids) *)
  prune_ids : int list;  (** var ids proved dependence-free *)
  prune_names : string list;
  report : Static_dep.t;  (** the full static analysis behind the plan *)
}

val plan : Ddp_minir.Ast.program -> plan
