(* Flow-sensitive lockset analysis over the CFG, on the generic
   Dataflow worklist solver.

   Two facts per program point, both as instances of the same union-join
   lattice over lock-id sets:

   - MUST-held: the locks held on *every* path to the point.  Encoded by
     complement — the solver propagates "may-NOT-held" sets (union-join,
     bottom = empty), and must-held(p) = universe \ may-not-held(p).
     Routine entries and thread entries ([Cfg.Clear]) seed the full
     universe: nothing is held for sure.
   - MAY-held: the locks held on *some* path (union-join directly).

   The race layer refutes a candidate when both endpoints MUST hold a
   lock — exactly the dag engine's rule, which clears a dependence when
   both accesses carry the locked bit (any lock, not necessarily a
   common one).  MAY-held works the other side: an endpoint with an
   empty may-set provably never holds a lock, an ingredient of
   [Race_must].

   Calls are handled interprocedurally by a fixpoint over routine entry
   seeds: a callee entry joins the lock state of every call site, and a
   call node whose callee (transitively) touches any lock clobbers the
   caller's facts — must-held drops to nothing, may-held widens to the
   universe.  Sound both ways; exact for lock-free callees. *)

module Ast = Ddp_minir.Ast
module ISet = Set.Make (Int)

module Lock_lattice = struct
  type t = ISet.t

  let equal = ISet.equal
  let bottom = ISet.empty
  let join = ISet.union
end

module Solver = Dataflow.Make (Lock_lattice)

type t = {
  universe : ISet.t;
  (* per access line: union of may-not-held / may-held over every node
     at that line, across routines and call contexts *)
  not_held : (int, ISet.t) Hashtbl.t;
  may : (int, ISet.t) Hashtbl.t;
}

let lock_ids (prog : Ast.program) =
  let acc = ref ISet.empty in
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Lock k | Ast.Unlock k -> acc := ISet.add k !acc
    | Ast.If (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | Ast.For f -> List.iter stmt f.body
    | Ast.While (_, b) -> List.iter stmt b
    | Ast.Par bs -> List.iter (List.iter stmt) bs
    | Ast.Spawn b -> List.iter stmt b
    | _ -> ()
  in
  List.iter stmt prog.body;
  List.iter (fun (f : Ast.func) -> List.iter stmt f.fbody) prog.funcs;
  !acc

(* Does a function (transitively) execute any Lock/Unlock?  One boolean
   per function by fixpoint over the call graph. *)
let lock_touchers (prog : Ast.program) =
  let tbl = Hashtbl.create 8 in
  let touches g = try Hashtbl.find tbl g with Not_found -> false in
  let rec stmt (s : Ast.stmt) =
    match s.kind with
    | Ast.Lock _ | Ast.Unlock _ -> true
    | Ast.Call_proc (g, _) -> touches g
    | Ast.If (_, a, b) -> List.exists stmt a || List.exists stmt b
    | Ast.For f -> List.exists stmt f.body
    | Ast.While (_, b) -> List.exists stmt b
    | Ast.Par bs -> List.exists (List.exists stmt) bs
    | Ast.Spawn b -> List.exists stmt b
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ast.func) ->
        let v = List.exists stmt f.fbody in
        if v && not (touches f.fname) then begin
          Hashtbl.replace tbl f.fname true;
          changed := true
        end)
      prog.funcs
  done;
  touches

let merge_line tbl line s =
  let prev = try Hashtbl.find tbl line with Not_found -> ISet.empty in
  Hashtbl.replace tbl line (ISet.union prev s)

let solve (prog : Ast.program) (cfgs : Cfg.t list) =
  let universe = lock_ids prog in
  let t = { universe; not_held = Hashtbl.create 64; may = Hashtbl.create 64 } in
  if ISet.is_empty universe then t
  else begin
    let touches = lock_touchers prog in
    (* entry seeds per routine, grown by the interprocedural fixpoint:
       (may-not-held, may-held) at every call site of the routine *)
    let seeds : (string, ISet.t * ISet.t) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.replace seeds "main" (universe, ISet.empty);
    let seed name =
      try Hashtbl.find seeds name with Not_found -> (universe, ISet.empty)
    in
    let solve_routine (cfg : Cfg.t) =
      let nodes = List.init (Array.length cfg.nodes) Fun.id in
      let deps n = cfg.nodes.(n).Cfg.preds in
      let entry_nh, entry_may = seed cfg.routine in
      let transfer_of ~on_acquire ~on_release ~on_clear ~on_call n v =
        let node = cfg.nodes.(n) in
        match node.Cfg.lock with
        | Some (Cfg.Acquire k) -> on_acquire k v
        | Some (Cfg.Release k) -> on_release k v
        | Some Cfg.Clear -> on_clear v
        | None -> (
            match node.Cfg.callee with
            | Some g when touches g -> on_call v
            | _ -> if node.Cfg.is_call then on_call v else v)
      in
      (* may-not-held: Lock removes, Unlock adds, thread entry and
         lock-touching calls reset to "maybe nothing held" *)
      let nh_transfer =
        transfer_of
          ~on_acquire:(fun k v -> ISet.remove k v)
          ~on_release:(fun k v -> ISet.add k v)
          ~on_clear:(fun _ -> universe)
          ~on_call:(fun _ -> universe)
      in
      let nh_init n = if n = cfg.entry then entry_nh else ISet.empty in
      let nh_in, _ = Solver.solve ~nodes ~deps ~transfer:nh_transfer ~init:nh_init () in
      (* may-held: Lock adds, Unlock removes, thread entry resets to
         nothing, lock-touching calls widen to everything *)
      let may_transfer =
        transfer_of
          ~on_acquire:(fun k v -> ISet.add k v)
          ~on_release:(fun k v -> ISet.remove k v)
          ~on_clear:(fun _ -> ISet.empty)
          ~on_call:(fun _ -> universe)
      in
      let may_init n = if n = cfg.entry then entry_may else ISet.empty in
      let may_in, _ = Solver.solve ~nodes ~deps ~transfer:may_transfer ~init:may_init () in
      (* feed callee seeds with the state at each call site *)
      let changed = ref false in
      Array.iter
        (fun (node : Cfg.node) ->
          match node.Cfg.callee with
          | Some g ->
              let known = Hashtbl.mem seeds g in
              let snh, smay = seed g in
              let snh' = ISet.union snh (nh_in node.Cfg.id) in
              let smay' = ISet.union smay (may_in node.Cfg.id) in
              if (not known) || not (ISet.equal snh snh' && ISet.equal smay smay')
              then begin
                Hashtbl.replace seeds g (snh', smay');
                changed := true
              end
          | None -> ())
        cfg.nodes;
      (nh_in, may_in, !changed)
    in
    (* Interprocedural fixpoint: re-solve until no routine entry seed
       grows.  Seeds only ever grow (union) inside a finite universe, so
       this terminates; the round bound is belt and braces. *)
    let max_rounds =
      2 + (2 * List.length cfgs * (1 + ISet.cardinal universe))
    in
    let stable = ref false in
    let rounds = ref 0 in
    while (not !stable) && !rounds < max_rounds do
      incr rounds;
      stable := true;
      List.iter
        (fun cfg ->
          let _, _, changed = solve_routine cfg in
          if changed then stable := false)
        cfgs
    done;
    (* Final pass: record per-line facts (the IN state — an access runs
       under the locks held when its statement starts). *)
    List.iter
      (fun (cfg : Cfg.t) ->
        let nh_in, may_in, _ = solve_routine cfg in
        Array.iter
          (fun (node : Cfg.node) ->
            merge_line t.not_held node.Cfg.line (nh_in node.Cfg.id);
            merge_line t.may node.Cfg.line (may_in node.Cfg.id))
          cfg.nodes)
      cfgs;
    t
  end

(* Locks held on every path to every node at [line]; empty (no proof)
   for lines with no CFG node — e.g. inlined parameter writes. *)
let must_held t ~line =
  if ISet.is_empty t.universe then ISet.empty
  else
    match Hashtbl.find_opt t.not_held line with
    | Some nh -> ISet.diff t.universe nh
    | None -> ISet.empty

(* Locks possibly held at [line]; the full universe (no proof of
   lock-freedom) for lines with no CFG node. *)
let may_held t ~line =
  if ISet.is_empty t.universe then ISet.empty
  else match Hashtbl.find_opt t.may line with Some s -> s | None -> t.universe

let universe t = t.universe
