(** Flow-sensitive lockset dataflow over the CFG ({!Dataflow} worklist
    solver, union-join lattice over lock-id sets).

    Per source line, two facts:
    - {!must_held}: locks held on {e every} path to the line (computed
      by complement — the solver propagates may-not-held sets).  The
      race layer refutes a candidate when both endpoints must-hold a
      lock, matching the dag engine's both-locked rule.
    - {!may_held}: locks held on {e some} path.  An empty may-set is a
      proof the endpoint never holds a lock — an ingredient of
      [Race_must].

    Thread entries ([Spawn] bodies, [Par] arms) reset to the empty
    lockset via {!Cfg.Clear} pseudo-nodes; calls are interprocedural by
    a fixpoint over routine-entry seeds, with lock-touching callees
    clobbering the caller's facts.  Everything degrades toward "no
    proof", never toward a wrong proof. *)

module ISet : Set.S with type elt = int

type t

val solve : Ddp_minir.Ast.program -> Cfg.t list -> t

val must_held : t -> line:int -> ISet.t
(** Locks held on every path to every CFG node at [line]; empty when
    nothing is provable (including lines outside the CFG). *)

val may_held : t -> line:int -> ISet.t
(** Locks possibly held at [line]; the full universe when nothing is
    provable. *)

val universe : t -> ISet.t
(** Every lock id the program mentions. *)
