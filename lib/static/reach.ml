(* Reaching definitions, liveness and loop clearance over Cfg routines.

   Reaching definitions track, per scalar name, the set of node ids whose
   definition may be the last one on some path; the pseudo-id [-1] is the
   "uninitialized" bottom definition injected at routine entry.  Call
   nodes gen their may-written names without killing, so a may-write can
   widen a fact but never narrow one. *)

module Names = Dataflow.Names
module IS = Set.Make (Int)
module SM = Map.Make (String)

let bottom_def = -1

module Def_lattice = struct
  type t = IS.t SM.t

  let equal = SM.equal IS.equal
  let bottom = SM.empty

  let join a b =
    SM.union (fun _ x y -> Some (IS.union x y)) a b
end

module Def_flow = Dataflow.Make (Def_lattice)
module Live_flow = Dataflow.Make (Dataflow.Name_set_lattice)

type routine = {
  cfg : Cfg.t;
  rd_in : int -> Def_lattice.t;
  live_in : int -> Names.t;
}

type t = {
  routines : routine list;
  by_header : (int, routine * Cfg.loop) Hashtbl.t;
  clearance : (int * string, int list * int list) Hashtbl.t;
      (* (header, name) -> (use lines, upward-exposed use lines) *)
}

let ids (cfg : Cfg.t) = List.init (Array.length cfg.nodes) Fun.id

let reaching (cfg : Cfg.t) =
  let universe =
    Array.fold_left
      (fun acc (n : Cfg.node) ->
        Names.union acc (Names.union n.uses (Names.union n.defs n.gen_only)))
      Names.empty cfg.nodes
  in
  let at_entry =
    Names.fold (fun x m -> SM.add x (IS.singleton bottom_def) m) universe SM.empty
  in
  let transfer id m =
    let n = cfg.nodes.(id) in
    let m = Names.fold (fun x acc -> SM.add x (IS.singleton id) acc) n.defs m in
    Names.fold
      (fun x acc ->
        SM.update x
          (function None -> Some (IS.singleton id) | Some s -> Some (IS.add id s))
          acc)
      n.gen_only m
  in
  let init id = if id = cfg.entry then at_entry else SM.empty in
  let in_of, _ =
    Def_flow.solve ~nodes:(ids cfg)
      ~deps:(fun id -> cfg.nodes.(id).preds)
      ~transfer ~init ()
  in
  in_of

let liveness (cfg : Cfg.t) =
  (* Backward: feed successor live-ins as "deps"; the solver's transfer
     output is live-in, its join input live-out. *)
  let transfer id out =
    let n = cfg.nodes.(id) in
    Names.union n.uses (Names.diff out n.defs)
  in
  let _, live_in =
    Live_flow.solve ~nodes:(ids cfg) ~deps:(fun id -> cfg.nodes.(id).succs) ~transfer ()
  in
  live_in

let solve cfgs =
  let routines =
    List.map
      (fun cfg -> { cfg; rd_in = reaching cfg; live_in = liveness cfg })
      cfgs
  in
  let by_header = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (l : Cfg.loop) ->
          if not (Hashtbl.mem by_header l.l_header) then
            Hashtbl.add by_header l.l_header (r, l))
        r.cfg.loops)
    routines;
  { routines; by_header; clearance = Hashtbl.create 32 }

type must_raw = { m_src : int; m_sink : int; m_name : string }

let must_raws t ~stable =
  match t.routines with
  | [] -> []
  | main :: _ ->
      let cfg = main.cfg in
      let seen = Hashtbl.create 32 in
      let out = ref [] in
      Array.iter
        (fun (n : Cfg.node) ->
          if n.must && not n.is_call then
            Names.iter
              (fun x ->
                if Names.mem x stable then
                  let rd =
                    try SM.find x (main.rd_in n.id) with Not_found -> IS.empty
                  in
                  (* Claim only when every possibly-last write is a
                     definite def at one single source line. *)
                  if
                    (not (IS.is_empty rd))
                    && (not (IS.mem bottom_def rd))
                    && IS.for_all
                         (fun d ->
                           d <> n.id && Names.mem x cfg.nodes.(d).defs)
                         rd
                  then
                    let lines = IS.map (fun d -> cfg.nodes.(d).line) rd in
                    match IS.elements lines with
                    | [ src ] when src > 0 ->
                        let key = (src, n.line, x) in
                        if not (Hashtbl.mem seen key) then begin
                          Hashtbl.add seen key ();
                          out := { m_src = src; m_sink = n.line; m_name = x } :: !out
                        end
                    | _ -> ())
              n.uses)
        cfg.nodes;
      List.rev !out

let find_loop t ~header = Hashtbl.find_opt t.by_header header

let entry_live t ~header =
  match find_loop t ~header with
  | None -> Names.empty
  | Some (r, l) -> r.live_in l.l_entry

(* Forward boolean "still clear of a definite def" pass over the loop's
   induced cycle subgraph: true at the entry (the back edge just
   arrived), killed by definite defs, unaffected by may-defs.  Returns
   (use lines, upward-exposed use lines), memoized per (loop, name). *)
let clearance t ~header ~name =
  match find_loop t ~header with
  | None -> None
  | Some (r, l) -> (
      match Hashtbl.find_opt t.clearance (header, name) with
      | Some res -> Some res
      | None ->
          let cfg = r.cfg in
          let members = IS.of_list l.l_members in
          let module B = Dataflow.Make (struct
            type t = bool

            let equal = Bool.equal
            let bottom = false
            let join = ( || )
          end) in
          let clear_in, _ =
            B.solve ~nodes:l.l_members
              ~deps:(fun id ->
                List.filter (fun p -> IS.mem p members) cfg.nodes.(id).preds)
              ~transfer:(fun id c -> c && not (Names.mem name cfg.nodes.(id).defs))
              ~init:(fun id -> id = l.l_entry)
              ()
          in
          let pick keep =
            List.filter_map
              (fun id ->
                let n = cfg.nodes.(id) in
                if Names.mem name n.uses && keep id then Some n.line else None)
              l.l_members
            |> List.sort_uniq compare
          in
          let res = (pick (fun _ -> true), pick clear_in) in
          Hashtbl.replace t.clearance (header, name) res;
          Some res)

let exposed_lines t ~header ~name =
  Option.map snd (clearance t ~header ~name)

let refuted_sinks t ~header ~name =
  match clearance t ~header ~name with
  | None -> []
  | Some (uses, exposed) -> List.filter (fun l -> not (List.mem l exposed)) uses

let loop_defs t ~header ~name =
  match find_loop t ~header with
  | None -> None
  | Some (r, l) ->
      let cfg = r.cfg in
      let defs = ref [] and gen = ref false in
      List.iter
        (fun id ->
          let n = cfg.nodes.(id) in
          if Names.mem name n.defs then defs := n.line :: !defs;
          if Names.mem name n.gen_only then gen := true)
        l.l_members;
      Some (List.sort_uniq compare !defs, !gen)
