(** Solved dataflow facts over a program's CFGs: reaching definitions
    (for must-RAW edges), live variables (loop-entry liveness), and the
    per-loop definition-clearance pass that decides whether a use is
    upward-exposed to the loop's back edge.

    All facts are name-keyed; callers gate them on
    {!Cfg.stable_scalars} so that a name identifies one address
    lineage. *)

type t

val solve : Cfg.t list -> t
(** Solve reaching definitions and liveness on every routine (list as
    returned by {!Cfg.build}, main first).  Clearance is computed lazily
    per (loop, name) query and memoized. *)

type must_raw = { m_src : int; m_sink : int; m_name : string }
(** A RAW edge that occurs in {e every} complete run: the sink line
    executes unconditionally and every path to it has its last definite
    write of [m_name] at [m_src]. *)

val must_raws : t -> stable:Dataflow.Names.t -> must_raw list
(** Must-RAW edges of the main routine, deduplicated.  Restricted to
    [stable] names, to non-call uses, and to nodes outside [Par] arms;
    sound provided the program runs to completion. *)

val entry_live : t -> header:int -> Dataflow.Names.t
(** Scalars live at the entry (condition node) of the loop whose
    statement line is [header]; empty when the loop is unknown. *)

val exposed_lines : t -> header:int -> name:string -> int list option
(** Lines inside the loop at [header] where a use of [name] is reachable
    from the loop entry without passing a definite definition — i.e. the
    reads a previous iteration's write could still feed.  [None] when no
    loop with that header line exists. *)

val refuted_sinks : t -> header:int -> name:string -> int list
(** Member-node use lines of [name] that are {e not} upward-exposed:
    every path from the loop entry to such a use kills [name] with a
    definite definition first, so no previous-iteration write can be the
    read's immediate source.  Sound refutation set for carried RAW sinks;
    lines the loop's CFG does not model (e.g. inside callees) are never
    returned.  Empty when the loop is unknown. *)

val loop_defs : t -> header:int -> name:string -> (int list * bool) option
(** [(definite-def lines among the loop's members, any-may-def?)] for
    [name] in the loop at [header] — the evidence the must-serial verdict
    needs ("the only write in the loop is the self-assignment, and no
    call may touch it").  [None] when the loop is unknown. *)
