(* Static series-parallel skeleton for task-parallel MiniIR.

   The dynamic dag engine (lib/core/dag.ml) maintains one interval label
   per *task instance*; this module builds the same structure once, over
   the program text, during the analyzer's extraction walk.  A [node] is
   a static task — the whole program (root), one [Spawn] body, one [Par]
   arm, or one recursive call component ("soup") — and carries an
   interval [lo, hi] in its parent's step counter: the window of parent
   steps the task may overlap.  A [strand] is a (node, step) position;
   two strands compare exactly like dynamic dag labels: lift both to the
   deepest common node and compare intervals, in O(depth).

   Numbering mirrors the interpreter's task runtime:
   - a statement occupies the node's current step [t];
   - [spawn] starts the child at [lo = t+1] and bumps the parent to
     [t+1], so everything textually before the spawn is ordered before
     the child and everything after overlaps it;
   - [sync] (and the implicit sync at every frame exit) closes the
     joined children at [hi = t] and bumps to [t+1], so everything after
     the sync is ordered after them.

   Conservatism, never unsoundness: a sync only resolves children whose
   spawn must-precedes it (same frame, spawn at or inside the sync's
   scope chain) — children spawned under a different branch stay open
   until the frame's implicit sync, which over-extends their window.  A
   child escaping a loop body is widened to the loop-entry step and
   marked [multi]: several of its instances may be live at once, so it
   is parallel with everything it overlaps, itself included. *)

type scope = { sc_entry : int; mutable sc_live : bool }

type node = {
  parent : node option;
  depth : int;
  sites : int list;  (* Spawn/Par statement lines that create this node *)
  mutable lo : int;  (* first parent step the task may overlap *)
  mutable hi : int;  (* last parent step (join); max_int while open *)
  mutable multi : bool;  (* several instances may be live at once *)
  mutable widened : bool;  (* interval stretched beyond the exact window *)
  mutable step : int;  (* this node's own strand counter *)
  mutable frames : frame list;  (* innermost first; base frame last *)
  mutable scopes : scope list;  (* open If/loop scopes of the innermost frame *)
}

and frame = {
  mutable pending : (node * scope list) list;
  saved_scopes : scope list;  (* the enclosing frame's chain, restored on exit *)
}

type strand = { s_node : node; s_step : int }

let create () =
  {
    parent = None;
    depth = 0;
    sites = [];
    lo = 0;
    hi = max_int;
    multi = false;
    widened = false;
    step = 0;
    frames = [ { pending = []; saved_scopes = [] } ];
    scopes = [];
  }

let strand n = { s_node = n; s_step = n.step }

let innermost n =
  match n.frames with f :: _ -> f | [] -> invalid_arg "Spdag: node has no frame"

(* ------------------------------------------------------------------ *)
(* Building: spawn / sync / frames                                     *)

let spawn parent ~site =
  let s = parent.step in
  parent.step <- s + 1;
  let child =
    {
      parent = Some parent;
      depth = parent.depth + 1;
      sites = [ site ];
      lo = s + 1;
      hi = max_int;
      multi = false;
      widened = false;
      step = 0;
      frames = [ { pending = []; saved_scopes = [] } ];
      scopes = [];
    }
  in
  let f = innermost parent in
  f.pending <- (child, parent.scopes) :: f.pending;
  child

(* [inside] iff the sync's scope chain is a suffix of the spawn's: the
   spawn happened at or inside every scope the sync is under, so if the
   spawn executed, the sync must follow it. *)
let rec is_suffix ~suffix l =
  if suffix == l then true
  else
    match (suffix, l) with
    | [], _ -> true
    | _, [] -> false
    | _, _ :: tl -> suffix == tl || is_suffix ~suffix tl

let join_child n (c, _) =
  c.hi <- n.step;
  if c.hi < c.lo then c.hi <- c.lo (* degenerate: spawned and joined at once *)

let sync n =
  let f = innermost n in
  let joined, open_ =
    List.partition (fun (_, sc) -> is_suffix ~suffix:n.scopes sc) f.pending
  in
  if joined <> [] then begin
    List.iter (join_child n) joined;
    n.step <- n.step + 1
  end;
  f.pending <- open_

let enter_frame n =
  let f = { pending = []; saved_scopes = n.scopes } in
  n.frames <- f :: n.frames;
  n.scopes <- []

(* A frame exit is an unconditional sync of everything the frame
   spawned, however deep the spawns were nested. *)
let exit_frame n =
  match n.frames with
  | [] | [ _ ] -> invalid_arg "Spdag.exit_frame: base frame"
  | f :: rest ->
      if f.pending <> [] then begin
        List.iter (join_child n) f.pending;
        n.step <- n.step + 1
      end;
      n.frames <- rest;
      n.scopes <- f.saved_scopes

(* Close a node at the end of its body: the implicit sync of its base
   frame (and, defensively, of any frame left open). *)
let finish n =
  let close f =
    if f.pending <> [] then begin
      List.iter (join_child n) f.pending;
      n.step <- n.step + 1
    end
  in
  List.iter close n.frames;
  n.frames <- [ { pending = []; saved_scopes = [] } ];
  n.scopes <- []

(* ------------------------------------------------------------------ *)
(* Building: scopes (If arms, loop bodies)                             *)

let save n = n.step
let restore n t = n.step <- t

let enter_scope n =
  let sc = { sc_entry = n.step; sc_live = true } in
  n.scopes <- sc :: n.scopes;
  sc

(* Leaving a scope re-tags its surviving children to the parent scope
   chain (a later, outer sync may still resolve them).  Leaving a *loop*
   scope additionally widens survivors back to the loop-entry step and
   marks them [multi]: the spawn re-executes every iteration with no
   intervening join, so instances pile up and overlap the whole body. *)
let exit_scope n sc ~loop =
  (match n.scopes with
  | s :: rest when s == sc ->
      sc.sc_live <- false;
      n.scopes <- rest
  | _ -> invalid_arg "Spdag.exit_scope: not the innermost scope");
  let f = innermost n in
  f.pending <-
    List.map
      (fun ((c, chain) as entry) ->
        if List.exists (fun s -> s == sc) chain then begin
          if loop then begin
            if c.lo > sc.sc_entry then begin
              c.lo <- sc.sc_entry;
              c.widened <- true
            end;
            c.multi <- true
          end;
          (c, n.scopes)
        end
        else entry)
      f.pending

(* After walking all arms of an [If] (each from the saved entry step):
   continue at the latest arm step, plus one when any arm moved, so a
   child joined inside one arm never shares a step with the
   continuation.  Loop bodies use the same rule with one "arm". *)
let merge n ~entry tips =
  let t = List.fold_left max entry tips in
  n.step <- (if t = entry then entry else t + 1)

(* ------------------------------------------------------------------ *)
(* Building: Par arms and recursive soups                              *)

let par_arm parent ~site =
  {
    parent = Some parent;
    depth = parent.depth + 1;
    sites = [ site ];
    lo = parent.step + 1;
    hi = max_int;
    multi = false;
    widened = false;
    step = 0;
    frames = [ { pending = []; saved_scopes = [] } ];
    scopes = [];
  }

let par_done parent arms =
  List.iter (fun a -> a.hi <- parent.step + 1) arms;
  parent.step <- parent.step + 2

(* A recursive call component collapses into one closed node: the call
   statement returns only after its frame's implicit sync, so the whole
   component sits strictly between the statements around the call.
   When the component contains a [Spawn] or [Par], any two positions
   inside it may run in parallel — the node is [multi]. *)
let soup parent ~sites ~parallel =
  let t = parent.step in
  parent.step <- t + 2;
  {
    parent = Some parent;
    depth = parent.depth + 1;
    sites;
    lo = t + 1;
    hi = t + 1;
    multi = parallel;
    widened = false;
    step = 0;
    frames = [ { pending = []; saved_scopes = [] } ];
    scopes = [];
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

type rel = S_same | S_before | S_after | S_par

let rec anc_multi n = n.multi || match n.parent with Some p -> anc_multi p | None -> false

let rec path_exact n =
  (not n.multi) && (not n.widened)
  && match n.parent with Some p -> path_exact p | None -> true

(* Lift a strand one node up: its window in the parent's counter. *)
let lift (n, _lo, _hi) =
  match n.parent with
  | Some p -> (p, n.lo, n.hi)
  | None -> invalid_arg "Spdag: lifting the root"

let relate a b =
  if a.s_node == b.s_node && a.s_step = b.s_step then
    if anc_multi a.s_node then S_par else S_same
  else begin
    let ra = ref (a.s_node, a.s_step, a.s_step) in
    let rb = ref (b.s_node, b.s_step, b.s_step) in
    let depth (n, _, _) = n.depth in
    while depth !ra > depth !rb do
      ra := lift !ra
    done;
    while depth !rb > depth !ra do
      rb := lift !rb
    done;
    let node (n, _, _) = n in
    while not (node !ra == node !rb) do
      ra := lift !ra;
      rb := lift !rb
    done;
    let meet, alo, ahi = !ra in
    let _, blo, bhi = !rb in
    if anc_multi meet then S_par
    else if ahi < blo then S_before
    else if bhi < alo then S_after
    else S_par
  end

let mhp a b = relate a b = S_par
let self_par a = anc_multi a.s_node
let exact a = path_exact a.s_node

let sites_of a =
  let rec go acc n =
    let acc = List.rev_append n.sites acc in
    match n.parent with Some p -> go acc p | None -> acc
  in
  go [] a.s_node

let rel_to_string = function
  | S_same -> "same"
  | S_before -> "before"
  | S_after -> "after"
  | S_par -> "par"
