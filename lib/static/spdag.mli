(** Static series-parallel skeleton: the analyzer-side mirror of the
    dynamic SP-DAG ({!Ddp_core.Dag}).

    The analyzer's extraction walk builds one {!node} per static task —
    program root, [Spawn] body, [Par] arm, recursive call component —
    and labels every access with a {!strand} (node + step).  Two strands
    then {!relate} exactly like dynamic dag labels: lift both to the
    deepest common node, compare overlap windows — O(depth), schedule
    independent.

    Everything over-approximates parallelism, never order: [S_before] /
    [S_after] are proofs that every pair of dynamic instances runs in
    that order; [S_par] merely means no such proof exists. *)

type node
type scope

type strand = { s_node : node; s_step : int }

val create : unit -> node
(** The root node (the program's main strand), with its base frame. *)

val strand : node -> strand
(** The current (node, step) position of the walk. *)

(** {2 Building — called by the extraction walk, mirroring interp} *)

val spawn : node -> site:int -> node
(** Start a child task at the current step: everything before the spawn
    is ordered before it, everything after overlaps it until a sync
    resolves it.  Registers the child in the innermost frame. *)

val sync : node -> unit
(** Explicit [Sync]: joins the innermost frame's children whose spawn
    must-precede this point (spawned at or inside the sync's open scope
    chain).  Conditionally-reached children stay open — sound. *)

val enter_frame : node -> unit
(** A new task-pending frame: inlined procedure body. *)

val exit_frame : node -> unit
(** Implicit frame sync: unconditionally joins everything the frame
    spawned, then drops the frame. *)

val finish : node -> unit
(** Close a node at the end of its body (implicit sync of its base
    frame).  Call once per [Spawn] body / [Par] arm / program. *)

val save : node -> int
val restore : node -> int -> unit

val enter_scope : node -> scope
(** Open an [If]-arm or loop-body scope. *)

val exit_scope : node -> scope -> loop:bool -> unit
(** Close the innermost scope.  Survivor children are re-tagged to the
    enclosing chain; with [~loop:true] they are also widened back to the
    loop-entry step and marked multi-instance (the spawn re-executes
    each iteration with no intervening join). *)

val merge : node -> entry:int -> int list -> unit
(** After walking branch arms from [entry]: continue at the latest arm
    tip (+1 when any arm advanced). *)

val par_arm : node -> site:int -> node
(** One [Par] arm: all arms share the window [step+1, step+1]. *)

val par_done : node -> node list -> unit
(** Close all arms of a [Par] and advance past the join point. *)

val soup : node -> sites:int list -> parallel:bool -> node
(** One closed node for a recursive call component, strictly between the
    statements around the call; [parallel] (the component contains a
    [Spawn] or [Par]) makes every pair inside it mutually parallel. *)

(** {2 Queries — valid once the walk is complete} *)

type rel = S_same | S_before | S_after | S_par

val relate : strand -> strand -> rel
(** O(depth) comparison at the deepest common node.  Any multi-instance
    node at or above the meet forces [S_par]: the two positions may
    belong to different live instances of the same static task. *)

val mhp : strand -> strand -> bool
(** [relate a b = S_par]. *)

val self_par : strand -> bool
(** May two dynamic instances of this one position run in parallel?
    (Some node on its root path is multi-instance.) *)

val exact : strand -> bool
(** No widening and no multi-instance node on the root path: the
    strand's window is the exact dynamic one, so [S_par] against another
    exact strand is definite parallelism, not an over-approximation. *)

val sites_of : strand -> int list
(** [Spawn]/[Par] statement lines of every node on the root path — the
    sites a race at this strand is attributed to. *)

val rel_to_string : rel -> string
