(* Result representation for the static dependence analyzer.  The edge
   space deliberately matches Accuracy.Edge — (kind, src line, sink line,
   variable name) — so static and dynamic sets compare with ordinary set
   operations. *)

module Dep = Ddp_core.Dep
module Accuracy = Ddp_core.Accuracy
module Json = Ddp_obs.Json

type race = Race_may | Race_must

type edge = {
  e_kind : Dep.kind;
  e_src : int;
  e_sink : int;
  e_var : string;
  e_must : bool;
  e_carriers : int list;
  e_race : race option;
}

type verdict = Parallel | Reduction | Serial | Unknown

type race_verdict = Race_free | Racy | Race_unknown

type loop_verdict = {
  v_header : int;
  v_end : int;
  v_annotated : bool;
  v_reduction : string list;
  v_verdict : verdict;
  v_offenders : edge list;
  v_live : string list;
}

type spawn_verdict = { sv_line : int; sv_verdict : race_verdict }

type stats = {
  s_regions : int;
  s_accesses : int;
  s_may : int;
  s_must : int;
  s_race_may : int;
  s_race_must : int;
}

type t = {
  prog : string;
  edges : edge list;
  loops : loop_verdict list;
  spawns : spawn_verdict list;
  prunable : string list;
  stats : stats;
}

let verdict_to_string = function
  | Parallel -> "parallel"
  | Reduction -> "reduction"
  | Serial -> "serial"
  | Unknown -> "unknown"

let race_verdict_to_string = function
  | Race_free -> "race-free"
  | Racy -> "racy"
  | Race_unknown -> "unknown"

(* The whole-program verdict: provably silent, provably noisy, or
   neither.  [Par]-arm races count even though only [Spawn] statements
   get per-site verdicts. *)
let program_race_verdict t =
  if List.exists (fun e -> e.e_race = Some Race_must) t.edges then Racy
  else if List.exists (fun e -> e.e_race <> None) t.edges then Race_unknown
  else Race_free

let to_acc (e : edge) =
  { Accuracy.Edge.kind = e.e_kind; src_line = e.e_src; sink_line = e.e_sink; var = e.e_var }

let may_set t =
  List.fold_left (fun s e -> Accuracy.Edge_set.add (to_acc e) s) Accuracy.Edge_set.empty
    t.edges

let must_set t =
  List.fold_left
    (fun s e -> if e.e_must then Accuracy.Edge_set.add (to_acc e) s else s)
    Accuracy.Edge_set.empty t.edges

let race_set t =
  List.fold_left
    (fun s e -> if e.e_race <> None then Accuracy.Edge_set.add (to_acc e) s else s)
    Accuracy.Edge_set.empty t.edges

let race_must_set t =
  List.fold_left
    (fun s e ->
      if e.e_race = Some Race_must then Accuracy.Edge_set.add (to_acc e) s else s)
    Accuracy.Edge_set.empty t.edges

let edge_to_string e =
  Printf.sprintf "%s %s %s: %d -> %d%s%s"
    (if e.e_must then "must" else "may ")
    (Dep.kind_to_string e.e_kind) e.e_var e.e_src e.e_sink
    (match e.e_carriers with
    | [] -> ""
    | ls -> " carried@" ^ String.concat "," (List.map string_of_int ls))
    (match e.e_race with
    | None -> ""
    | Some Race_may -> " RACE?"
    | Some Race_must -> " RACE!")

let render t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "static dependences for %s\n" t.prog;
  Printf.bprintf b
    "regions %d, access sites %d, may edges %d (must %d), race edges %d (must %d)\n"
    t.stats.s_regions t.stats.s_accesses t.stats.s_may t.stats.s_must
    t.stats.s_race_may t.stats.s_race_must;
  List.iter (fun e -> Printf.bprintf b "  %s\n" (edge_to_string e)) t.edges;
  if t.spawns <> [] then begin
    Printf.bprintf b "spawns:\n";
    List.iter
      (fun sv ->
        Printf.bprintf b "  line %d: %s\n" sv.sv_line
          (race_verdict_to_string sv.sv_verdict))
      t.spawns
  end;
  Printf.bprintf b "loops:\n";
  List.iter
    (fun v ->
      Printf.bprintf b "  line %d-%d: %-9s (annotated %s)%s%s\n" v.v_header v.v_end
        (verdict_to_string v.v_verdict)
        (if v.v_annotated then "parallel" else "serial")
        (match v.v_live with
        | [] -> ""
        | ls -> Printf.sprintf " live-in: %s" (String.concat "," ls))
        (match v.v_offenders with
        | [] -> ""
        | os ->
            Printf.sprintf " offenders: %s"
              (String.concat "; " (List.map edge_to_string os))))
    t.loops;
  Printf.bprintf b "prunable: %s\n"
    (match t.prunable with [] -> "(none)" | vs -> String.concat " " vs);
  Buffer.contents b

let edge_json e =
  Json.Obj
    ([
       ("kind", Json.Str (Dep.kind_to_string e.e_kind));
       ("src", Json.Int e.e_src);
       ("sink", Json.Int e.e_sink);
       ("var", Json.Str e.e_var);
       ("must", Json.Bool e.e_must);
       ("carriers", Json.List (List.map (fun l -> Json.Int l) e.e_carriers));
     ]
    @
    match e.e_race with
    | None -> []
    | Some Race_may -> [ ("race", Json.Str "may") ]
    | Some Race_must -> [ ("race", Json.Str "must") ])

(* Version stamp for saved static reports, gated like ddp-metrics/2: the
   persistent dependence-graph consumer must refuse files it does not
   understand rather than best-effort parse them. *)
let schema_version = "ddp-static/1"

let check_schema ?(expect = schema_version) json =
  match Json.member "schema" json with
  | None -> Error (Printf.sprintf "no \"schema\" field (expected %S)" expect)
  | Some v -> (
      match Json.to_str v with
      | Some s when s = expect -> Ok ()
      | Some s ->
          Error
            (Printf.sprintf
               "schema mismatch: file has %S, this ddprof reads %S — re-export with a matching ddprof"
               s expect)
      | None ->
          Error (Printf.sprintf "\"schema\" field is not a string (expected %S)" expect))

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("program", Json.Str t.prog);
      ( "stats",
        Json.Obj
          [
            ("regions", Json.Int t.stats.s_regions);
            ("accesses", Json.Int t.stats.s_accesses);
            ("may_edges", Json.Int t.stats.s_may);
            ("must_edges", Json.Int t.stats.s_must);
            ("race_may_edges", Json.Int t.stats.s_race_may);
            ("race_must_edges", Json.Int t.stats.s_race_must);
          ] );
      ("race_verdict", Json.Str (race_verdict_to_string (program_race_verdict t)));
      ( "spawns",
        Json.List
          (List.map
             (fun sv ->
               Json.Obj
                 [
                   ("line", Json.Int sv.sv_line);
                   ("verdict", Json.Str (race_verdict_to_string sv.sv_verdict));
                 ])
             t.spawns) );
      ("edges", Json.List (List.map edge_json t.edges));
      ( "loops",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   ("line", Json.Int v.v_header);
                   ("end_line", Json.Int v.v_end);
                   ("verdict", Json.Str (verdict_to_string v.v_verdict));
                   ("annotated_parallel", Json.Bool v.v_annotated);
                   ("reduction", Json.List (List.map (fun r -> Json.Str r) v.v_reduction));
                   ("offenders", Json.List (List.map edge_json v.v_offenders));
                   ("live_in", Json.List (List.map (fun r -> Json.Str r) v.v_live));
                 ])
             t.loops) );
      ("prunable", Json.List (List.map (fun v -> Json.Str v) t.prunable));
    ]
