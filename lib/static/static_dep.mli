(** Results of the static dependence analysis: must/may dependence edges
    over (source line, variable name) pairs, per-loop parallelizability
    verdicts, and the list of variables proved dependence-free (the
    hybrid engine's pruning candidates). *)

module Dep = Ddp_core.Dep
module Accuracy = Ddp_core.Accuracy

type edge = {
  e_kind : Dep.kind;  (** RAW, WAR or WAW — never INIT *)
  e_src : int;  (** source line of the dependence source (earlier access) *)
  e_sink : int;  (** source line of the dependence sink (later access) *)
  e_var : string;  (** variable (region) name *)
  e_must : bool;  (** occurs in every complete run, not merely possibly *)
  e_carriers : int list;
      (** header lines of loops that may carry the edge across iterations;
          [[]] means loop-independent only *)
}

type verdict =
  | Parallel  (** no loop-carried dependence can exist *)
  | Reduction  (** carried scalar RAWs, all of recognized reduction shape *)
  | Serial  (** a carried RAW provably occurs (must-serial evidence) *)
  | Unknown  (** carried may-RAWs remain; nothing proved either way *)

type loop_verdict = {
  v_header : int;  (** [For] statement line *)
  v_end : int;  (** loop end line *)
  v_annotated : bool;  (** ground-truth [parallel] annotation *)
  v_reduction : string list;  (** reduction clause on the loop *)
  v_verdict : verdict;
  v_offenders : edge list;  (** carried RAWs surviving the exemptions *)
  v_live : string list;
      (** scalars accessed in the loop that are live at its entry
          (live-variable dataflow) — the values an iteration may inherit *)
}

type stats = {
  s_regions : int;  (** declared scalar/array regions modeled *)
  s_accesses : int;  (** static access sites extracted *)
  s_may : int;
  s_must : int;
}

type t = {
  prog : string;
  edges : edge list;  (** deduplicated, sorted by (src, sink, kind, var) *)
  loops : loop_verdict list;  (** [For] loops in textual order *)
  prunable : string list;  (** variables with no edge at all, sorted *)
  stats : stats;
}

val verdict_to_string : verdict -> string

val may_set : t -> Accuracy.Edge_set.t
(** All edges, projected into the {!Accuracy.Edge} comparison space. *)

val must_set : t -> Accuracy.Edge_set.t
(** Only the must edges. *)

val render : t -> string
(** Human-readable report (edges, loop verdicts, prunable variables). *)

val to_json : t -> Ddp_obs.Json.t
