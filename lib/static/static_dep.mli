(** Results of the static dependence analysis: must/may dependence edges
    over (source line, variable name) pairs, per-loop parallelizability
    verdicts, race-lint findings over the task constructs, and the list
    of variables proved dependence-free (the hybrid engines' pruning
    candidates). *)

module Dep = Ddp_core.Dep
module Accuracy = Ddp_core.Accuracy

type race =
  | Race_may
      (** endpoints may run in parallel and are not both provably
          lock-protected — a data-race warning *)
  | Race_must
      (** both accesses provably execute, provably alias, provably run
          in parallel, and at least one provably never holds a lock *)

type edge = {
  e_kind : Dep.kind;  (** RAW, WAR or WAW — never INIT *)
  e_src : int;  (** source line of the dependence source (earlier access) *)
  e_sink : int;  (** source line of the dependence sink (later access) *)
  e_var : string;  (** variable (region) name *)
  e_must : bool;  (** occurs in every complete run, not merely possibly *)
  e_carriers : int list;
      (** header lines of loops that may carry the edge across iterations;
          [[]] means loop-independent only *)
  e_race : race option;
      (** [Some _] when the endpoints may execute concurrently (statically
          parallel strands) without common lock protection *)
}

type verdict =
  | Parallel  (** no loop-carried dependence can exist *)
  | Reduction  (** carried scalar RAWs, all of recognized reduction shape *)
  | Serial  (** a carried RAW provably occurs (must-serial evidence) *)
  | Unknown  (** carried may-RAWs remain; nothing proved either way *)

type race_verdict =
  | Race_free  (** no may-race attributed — provably silent *)
  | Racy  (** a [Race_must] attributed — provably noisy *)
  | Race_unknown  (** may-races remain; nothing proved either way *)

type loop_verdict = {
  v_header : int;  (** [For] statement line *)
  v_end : int;  (** loop end line *)
  v_annotated : bool;  (** ground-truth [parallel] annotation *)
  v_reduction : string list;  (** reduction clause on the loop *)
  v_verdict : verdict;
  v_offenders : edge list;  (** carried RAWs surviving the exemptions *)
  v_live : string list;
      (** scalars accessed in the loop that are live at its entry
          (live-variable dataflow) — the values an iteration may inherit *)
}

type spawn_verdict = { sv_line : int; sv_verdict : race_verdict }
(** Per-[Spawn]-statement race verdict: races are attributed to the
    spawn/[Par] sites on the SP-skeleton path of either endpoint. *)

type stats = {
  s_regions : int;  (** declared scalar/array regions modeled *)
  s_accesses : int;  (** static access sites extracted *)
  s_may : int;
  s_must : int;
  s_race_may : int;  (** edges flagged [Race_may] or stronger *)
  s_race_must : int;  (** edges flagged [Race_must] *)
}

type t = {
  prog : string;
  edges : edge list;  (** deduplicated, sorted by (src, sink, kind, var) *)
  loops : loop_verdict list;  (** [For] loops in textual order *)
  spawns : spawn_verdict list;  (** [Spawn] statements in textual order *)
  prunable : string list;  (** variables with no edge at all, sorted *)
  stats : stats;
}

val verdict_to_string : verdict -> string
val race_verdict_to_string : race_verdict -> string

val program_race_verdict : t -> race_verdict
(** Whole-program verdict over all edges: [Racy] if any [Race_must],
    [Race_unknown] if any race flag at all, else [Race_free]. *)

val may_set : t -> Accuracy.Edge_set.t
(** All edges, projected into the {!Accuracy.Edge} comparison space. *)

val must_set : t -> Accuracy.Edge_set.t
(** Only the must edges. *)

val race_set : t -> Accuracy.Edge_set.t
(** Edges carrying any race flag.  Soundness contract: every dependence
    the dag engine race-flags on any schedule projects into this set. *)

val race_must_set : t -> Accuracy.Edge_set.t
(** Only the [Race_must] edges. *)

val render : t -> string
(** Human-readable report (edges, spawn verdicts, loop verdicts,
    prunable variables). *)

val schema_version : string
(** Version stamp written into {!to_json} output (["ddp-static/1"]). *)

val check_schema : ?expect:string -> Ddp_obs.Json.t -> (unit, string) result
(** Validate the ["schema"] field of a parsed static report against
    [expect] (default {!schema_version}); [Error] carries a message
    naming both versions. *)

val to_json : t -> Ddp_obs.Json.t
